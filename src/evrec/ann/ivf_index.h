// IVF (inverted-file) approximate nearest-neighbour index over
// representation vectors, for the "related events" serving surface: the
// paper's §4 caches precomputed vectors; finding similar events at product
// scale additionally needs a sublinear similarity index.
//
// Standard two-level design: a k-means coarse quantizer partitions the
// (L2-normalized) vectors into `num_lists` cells; a query scans only the
// `nprobe` nearest cells. Similarity is cosine (inner product on the
// normalized copies stored in the index).
//
// Storage is the flat blocked SoA layout (la::FlatVectorBlock): each cell
// keeps its member vectors in 8-wide interleaved blocks, so a cell scan
// runs the batched dot kernel — one sweep of the query scores 8 list
// members — instead of a per-vector pointer chase. Scores are float end
// to end, matching the serve/ scoring path.

#ifndef EVREC_ANN_IVF_INDEX_H_
#define EVREC_ANN_IVF_INDEX_H_

#include <vector>

#include "evrec/la/flat_block.h"
#include "evrec/util/check.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace ann {

struct IvfConfig {
  int num_lists = 16;     // coarse centroids
  int kmeans_iterations = 10;
  uint64_t seed = 61;
};

struct SearchResult {
  int id;
  float score;  // cosine similarity (float, like every serve/ score)
};

class IvfIndex {
 public:
  IvfIndex() = default;

  // Builds the index from `vectors` (ids are their positions). Vectors
  // are copied and L2-normalized; zero vectors are stored as-is and never
  // returned with positive scores.
  void Build(const std::vector<std::vector<float>>& vectors,
             const IvfConfig& config);

  // Same, from an existing flat block (e.g. the pipeline's precomputed
  // event-rep block) — no per-vector std::vector round trip.
  void Build(const la::FlatVectorBlock& vectors, const IvfConfig& config);

  bool built() const { return centroids_.size() > 0; }
  int size() const { return num_vectors_; }
  int dim() const { return dim_; }
  int num_lists() const { return centroids_.size(); }

  // Top-k by cosine similarity, scanning the `nprobe` closest lists.
  // Results are sorted by descending score, ties by ascending id.
  // `exclude` (optional id) is filtered out (self-queries).
  std::vector<SearchResult> Search(const std::vector<float>& query, int k,
                                   int nprobe, int exclude = -1) const;

  // Exact top-k — scans every list, which visits every vector exactly
  // once, so the per-vector scores are bit-identical to Search's. Ground
  // truth for recall measurement.
  std::vector<SearchResult> SearchExact(const std::vector<float>& query,
                                        int k, int exclude = -1) const;

  // Fraction of exact top-k retrieved by the approximate search.
  double RecallAtK(const std::vector<float>& query, int k, int nprobe) const;

 private:
  int num_vectors_ = 0;
  int dim_ = 0;
  la::FlatVectorBlock centroids_;            // one slot per cell
  std::vector<std::vector<int>> lists_;      // ids per cell
  std::vector<la::FlatVectorBlock> list_blocks_;  // vectors per cell
};

}  // namespace ann
}  // namespace evrec

#endif  // EVREC_ANN_IVF_INDEX_H_
