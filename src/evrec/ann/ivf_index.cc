#include "evrec/ann/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "evrec/la/vec_ops.h"

namespace evrec {
namespace ann {

namespace {

void Normalize(float* v, int dim) {
  float sqnorm = la::DotF(v, v, dim);
  if (sqnorm < 1e-24f) return;
  la::Scale(1.0f / std::sqrt(sqnorm), v, dim);
}

// Descending score, ties by ascending id: the same deterministic total
// order serve::TopK uses.
bool Better(const SearchResult& a, const SearchResult& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

}  // namespace

void IvfIndex::Build(const std::vector<std::vector<float>>& vectors,
                     const IvfConfig& config) {
  EVREC_CHECK(!vectors.empty());
  la::FlatVectorBlock block(static_cast<int>(vectors[0].size()));
  block.Resize(static_cast<int>(vectors.size()));
  for (size_t i = 0; i < vectors.size(); ++i) {
    EVREC_CHECK_EQ(vectors[i].size(), vectors[0].size());
    block.Set(static_cast<int>(i), vectors[i].data());
  }
  Build(block, config);
}

void IvfIndex::Build(const la::FlatVectorBlock& vectors,
                     const IvfConfig& config) {
  num_vectors_ = vectors.size();
  dim_ = vectors.dim();
  EVREC_CHECK_GT(num_vectors_, 0);
  EVREC_CHECK_GT(dim_, 0);

  // Normalized row-major working copy for k-means (the blocked layout is
  // built from it at the end).
  std::vector<float> data(static_cast<size_t>(num_vectors_) * dim_);
  for (int i = 0; i < num_vectors_; ++i) {
    float* row = data.data() + static_cast<size_t>(i) * dim_;
    vectors.CopyTo(i, row);
    Normalize(row, dim_);
  }
  auto row = [&](int id) {
    return data.data() + static_cast<size_t>(id) * dim_;
  };

  const int k = std::min(config.num_lists, num_vectors_);
  Rng rng(config.seed, 67);

  // k-means++ style seeding: first centroid random, rest from distinct
  // random picks (cheap variant adequate for a coarse quantizer).
  std::vector<std::vector<float>> centroids;
  std::vector<int> perm(static_cast<size_t>(num_vectors_));
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  for (int c = 0; c < k; ++c) {
    const float* v = row(perm[static_cast<size_t>(c)]);
    centroids.emplace_back(v, v + dim_);
  }

  auto nearest = [&](const float* v) {
    int best = 0;
    float best_score = -2.0f;
    for (size_t c = 0; c < centroids.size(); ++c) {
      float s = la::DotF(centroids[c].data(), v, dim_);
      if (s > best_score) {
        best_score = s;
        best = static_cast<int>(c);
      }
    }
    return best;
  };

  std::vector<int> assignment(static_cast<size_t>(num_vectors_), 0);
  for (int iter = 0; iter < config.kmeans_iterations; ++iter) {
    // Assign.
    for (int i = 0; i < num_vectors_; ++i) {
      assignment[static_cast<size_t>(i)] = nearest(row(i));
    }
    // Update (spherical k-means: mean then renormalize). Double sums keep
    // the centroid update robust to summation order.
    std::vector<std::vector<double>> sums(
        centroids.size(), std::vector<double>(static_cast<size_t>(dim_)));
    std::vector<int> counts(centroids.size(), 0);
    for (int i = 0; i < num_vectors_; ++i) {
      int c = assignment[static_cast<size_t>(i)];
      const float* v = row(i);
      for (int d = 0; d < dim_; ++d) {
        sums[static_cast<size_t>(c)][static_cast<size_t>(d)] += v[d];
      }
      ++counts[static_cast<size_t>(c)];
    }
    for (size_t c = 0; c < centroids.size(); ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid
      for (int d = 0; d < dim_; ++d) {
        centroids[c][static_cast<size_t>(d)] =
            static_cast<float>(sums[c][static_cast<size_t>(d)] / counts[c]);
      }
      Normalize(centroids[c].data(), dim_);
    }
  }

  // Freeze into the blocked layout: one slot per centroid, one block set
  // per cell's member vectors.
  centroids_.Reset(dim_);
  for (const auto& c : centroids) centroids_.Append(c.data());

  lists_.assign(centroids.size(), {});
  for (int i = 0; i < num_vectors_; ++i) {
    lists_[static_cast<size_t>(nearest(row(i)))].push_back(i);
  }
  list_blocks_.clear();
  list_blocks_.reserve(lists_.size());
  for (const auto& ids : lists_) {
    la::FlatVectorBlock lb(dim_);
    for (int id : ids) lb.Append(row(id));
    list_blocks_.push_back(std::move(lb));
  }
}

std::vector<SearchResult> IvfIndex::Search(const std::vector<float>& query,
                                           int k, int nprobe,
                                           int exclude) const {
  EVREC_CHECK(built());
  EVREC_CHECK_EQ(query.size(), static_cast<size_t>(dim_));
  std::vector<float> q(query);
  Normalize(q.data(), dim_);

  // Rank centroids by similarity (one batched sweep), take the top nprobe
  // lists. Ties break toward the lower cell index — deterministic.
  std::vector<float> cell_scores(static_cast<size_t>(num_lists()));
  centroids_.DotAll(q.data(), cell_scores.data());
  std::vector<std::pair<float, int>> cells;
  cells.reserve(cell_scores.size());
  for (size_t c = 0; c < cell_scores.size(); ++c) {
    cells.emplace_back(cell_scores[c], static_cast<int>(c));
  }
  nprobe = std::min<int>(nprobe, static_cast<int>(cells.size()));
  std::partial_sort(cells.begin(), cells.begin() + nprobe, cells.end(),
                    [](const std::pair<float, int>& a,
                       const std::pair<float, int>& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });

  // Scan each probed cell with the batched kernel: 8 list members per
  // sweep of the query.
  std::vector<SearchResult> results;
  float dots[la::FlatVectorBlock::kLane];
  for (int p = 0; p < nprobe; ++p) {
    const int cell = cells[static_cast<size_t>(p)].second;
    const std::vector<int>& ids = lists_[static_cast<size_t>(cell)];
    const la::FlatVectorBlock& lb = list_blocks_[static_cast<size_t>(cell)];
    for (int b = 0; b < lb.num_blocks(); ++b) {
      lb.DotBlock(b, q.data(), dots);
      const int begin = b * la::FlatVectorBlock::kLane;
      const int count = std::min(la::FlatVectorBlock::kLane,
                                 static_cast<int>(ids.size()) - begin);
      for (int l = 0; l < count; ++l) {
        int id = ids[static_cast<size_t>(begin + l)];
        if (id == exclude) continue;
        results.push_back({id, dots[l]});
      }
    }
  }
  int keep = std::min<int>(k, static_cast<int>(results.size()));
  std::partial_sort(results.begin(), results.begin() + keep, results.end(),
                    Better);
  results.resize(static_cast<size_t>(keep));
  return results;
}

std::vector<SearchResult> IvfIndex::SearchExact(
    const std::vector<float>& query, int k, int exclude) const {
  // Probing every list visits every vector exactly once, and a vector's
  // score does not depend on which block it sits in (lane accumulators are
  // independent), so this is a true exact scan with scores bit-identical
  // to the approximate path's.
  return Search(query, k, num_lists(), exclude);
}

double IvfIndex::RecallAtK(const std::vector<float>& query, int k,
                           int nprobe) const {
  auto exact = SearchExact(query, k);
  auto approx = Search(query, k, nprobe);
  if (exact.empty()) return 1.0;
  int hits = 0;
  for (const auto& e : exact) {
    for (const auto& a : approx) {
      if (a.id == e.id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(exact.size());
}

}  // namespace ann
}  // namespace evrec
