#include "evrec/ann/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace evrec {
namespace ann {

namespace {

void Normalize(float* v, int dim) {
  double norm = 0.0;
  for (int i = 0; i < dim; ++i) norm += static_cast<double>(v[i]) * v[i];
  if (norm < 1e-24) return;
  float inv = static_cast<float>(1.0 / std::sqrt(norm));
  for (int i = 0; i < dim; ++i) v[i] *= inv;
}

double Dot(const float* a, const float* b, int dim) {
  double s = 0.0;
  for (int i = 0; i < dim; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

}  // namespace

void IvfIndex::Build(const std::vector<std::vector<float>>& vectors,
                     const IvfConfig& config) {
  EVREC_CHECK(!vectors.empty());
  num_vectors_ = static_cast<int>(vectors.size());
  dim_ = static_cast<int>(vectors[0].size());
  EVREC_CHECK_GT(dim_, 0);

  data_.resize(static_cast<size_t>(num_vectors_) * dim_);
  for (int i = 0; i < num_vectors_; ++i) {
    EVREC_CHECK_EQ(vectors[static_cast<size_t>(i)].size(),
                   static_cast<size_t>(dim_));
    std::copy(vectors[static_cast<size_t>(i)].begin(),
              vectors[static_cast<size_t>(i)].end(),
              data_.begin() + static_cast<size_t>(i) * dim_);
    Normalize(data_.data() + static_cast<size_t>(i) * dim_, dim_);
  }

  const int k = std::min(config.num_lists, num_vectors_);
  Rng rng(config.seed, 67);

  // k-means++ style seeding: first centroid random, rest from distinct
  // random picks (cheap variant adequate for a coarse quantizer).
  centroids_.clear();
  std::vector<int> perm(static_cast<size_t>(num_vectors_));
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  for (int c = 0; c < k; ++c) {
    const float* v = Vector(perm[static_cast<size_t>(c)]);
    centroids_.emplace_back(v, v + dim_);
  }

  std::vector<int> assignment(static_cast<size_t>(num_vectors_), 0);
  for (int iter = 0; iter < config.kmeans_iterations; ++iter) {
    // Assign.
    for (int i = 0; i < num_vectors_; ++i) {
      assignment[static_cast<size_t>(i)] = NearestCentroid(Vector(i));
    }
    // Update (spherical k-means: mean then renormalize).
    std::vector<std::vector<double>> sums(
        centroids_.size(), std::vector<double>(static_cast<size_t>(dim_)));
    std::vector<int> counts(centroids_.size(), 0);
    for (int i = 0; i < num_vectors_; ++i) {
      int c = assignment[static_cast<size_t>(i)];
      const float* v = Vector(i);
      for (int d = 0; d < dim_; ++d) {
        sums[static_cast<size_t>(c)][static_cast<size_t>(d)] += v[d];
      }
      ++counts[static_cast<size_t>(c)];
    }
    for (size_t c = 0; c < centroids_.size(); ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid
      for (int d = 0; d < dim_; ++d) {
        centroids_[c][static_cast<size_t>(d)] =
            static_cast<float>(sums[c][static_cast<size_t>(d)] / counts[c]);
      }
      Normalize(centroids_[c].data(), dim_);
    }
  }

  lists_.assign(centroids_.size(), {});
  for (int i = 0; i < num_vectors_; ++i) {
    lists_[static_cast<size_t>(NearestCentroid(Vector(i)))].push_back(i);
  }
}

int IvfIndex::NearestCentroid(const float* v) const {
  int best = 0;
  double best_score = -2.0;
  for (size_t c = 0; c < centroids_.size(); ++c) {
    double s = Dot(centroids_[c].data(), v, dim_);
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

std::vector<SearchResult> IvfIndex::Search(const std::vector<float>& query,
                                           int k, int nprobe,
                                           int exclude) const {
  EVREC_CHECK(built());
  EVREC_CHECK_EQ(query.size(), static_cast<size_t>(dim_));
  std::vector<float> q(query);
  Normalize(q.data(), dim_);

  // Rank centroids by similarity, take the top nprobe lists.
  std::vector<std::pair<double, int>> cells;
  cells.reserve(centroids_.size());
  for (size_t c = 0; c < centroids_.size(); ++c) {
    cells.emplace_back(Dot(centroids_[c].data(), q.data(), dim_),
                       static_cast<int>(c));
  }
  nprobe = std::min<int>(nprobe, static_cast<int>(cells.size()));
  std::partial_sort(cells.begin(), cells.begin() + nprobe, cells.end(),
                    std::greater<>());

  std::vector<SearchResult> results;
  for (int p = 0; p < nprobe; ++p) {
    for (int id : lists_[static_cast<size_t>(cells[static_cast<size_t>(p)]
                                                 .second)]) {
      if (id == exclude) continue;
      results.push_back({id, Dot(Vector(id), q.data(), dim_)});
    }
  }
  int keep = std::min<int>(k, static_cast<int>(results.size()));
  std::partial_sort(results.begin(), results.begin() + keep, results.end(),
                    [](const SearchResult& a, const SearchResult& b) {
                      return a.score > b.score;
                    });
  results.resize(static_cast<size_t>(keep));
  return results;
}

std::vector<SearchResult> IvfIndex::SearchExact(
    const std::vector<float>& query, int k, int exclude) const {
  EVREC_CHECK(built());
  std::vector<float> q(query);
  Normalize(q.data(), dim_);
  std::vector<SearchResult> results;
  results.reserve(static_cast<size_t>(num_vectors_));
  for (int i = 0; i < num_vectors_; ++i) {
    if (i == exclude) continue;
    results.push_back({i, Dot(Vector(i), q.data(), dim_)});
  }
  int keep = std::min<int>(k, static_cast<int>(results.size()));
  std::partial_sort(results.begin(), results.begin() + keep, results.end(),
                    [](const SearchResult& a, const SearchResult& b) {
                      return a.score > b.score;
                    });
  results.resize(static_cast<size_t>(keep));
  return results;
}

double IvfIndex::RecallAtK(const std::vector<float>& query, int k,
                           int nprobe) const {
  auto exact = SearchExact(query, k);
  auto approx = Search(query, k, nprobe);
  if (exact.empty()) return 1.0;
  int hits = 0;
  for (const auto& e : exact) {
    for (const auto& a : approx) {
      if (a.id == e.id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(exact.size());
}

}  // namespace ann
}  // namespace evrec
