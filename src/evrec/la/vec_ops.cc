#include "evrec/la/vec_ops.h"

#include <cmath>
#include <cstring>

namespace evrec {
namespace la {

void Axpy(float alpha, const float* x, float* y, int n) {
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

float DotF(const float* x, const float* y, int n) {
  float s = 0.0f;
  for (int i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

void Scale(float alpha, float* x, int n) {
  for (int i = 0; i < n; ++i) x[i] *= alpha;
}

void Add(const float* a, const float* b, float* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void TanhForward(const float* x, float* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = std::tanh(x[i]);
}

void TanhBackward(const float* y, const float* dy, float* dx, int n) {
  for (int i = 0; i < n; ++i) dx[i] = dy[i] * (1.0f - y[i] * y[i]);
}

void Zero(float* x, int n) { std::memset(x, 0, sizeof(float) * n); }

float Norm(const float* x, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += static_cast<double>(x[i]) * x[i];
  return static_cast<float>(std::sqrt(s));
}

}  // namespace la
}  // namespace evrec
