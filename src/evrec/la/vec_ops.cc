#include "evrec/la/vec_ops.h"

#include <cmath>
#include <cstring>

namespace evrec {
namespace la {

void Axpy(float alpha, const float* __restrict x, float* __restrict y,
          int n) {
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

float DotF(const float* __restrict x, const float* __restrict y, int n) {
  // Four independent accumulators: strict FP forbids the compiler from
  // reassociating a single running sum, so the lanes are explicit.
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

void Scale(float alpha, float* __restrict x, int n) {
  for (int i = 0; i < n; ++i) x[i] *= alpha;
}

void Add(const float* __restrict a, const float* __restrict b,
         float* __restrict out, int n) {
  for (int i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void TanhForward(const float* __restrict x, float* __restrict out, int n) {
  for (int i = 0; i < n; ++i) out[i] = std::tanh(x[i]);
}

void TanhBackward(const float* __restrict y, const float* __restrict dy,
                  float* __restrict dx, int n) {
  for (int i = 0; i < n; ++i) dx[i] = dy[i] * (1.0f - y[i] * y[i]);
}

void TanhBackwardAccum(const float* __restrict y, const float* __restrict dy,
                       float* __restrict dx, int n) {
  for (int i = 0; i < n; ++i) dx[i] += dy[i] * (1.0f - y[i] * y[i]);
}

void FusedGradInput(float dyi, const float* __restrict x,
                    const float* __restrict w, float* __restrict gw,
                    float* __restrict dx, int n) {
  for (int i = 0; i < n; ++i) {
    gw[i] += dyi * x[i];
    dx[i] += dyi * w[i];
  }
}

void Zero(float* x, int n) {
  // n == 0 usually means x is a null data() of an empty vector; memset is
  // UB on null even with a zero length.
  if (n > 0) std::memset(x, 0, sizeof(float) * n);
}

float Norm(const float* __restrict x, int n) {
  double s0 = 0.0, s1 = 0.0;
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    s0 += static_cast<double>(x[i]) * x[i];
    s1 += static_cast<double>(x[i + 1]) * x[i + 1];
  }
  for (; i < n; ++i) s0 += static_cast<double>(x[i]) * x[i];
  return static_cast<float>(std::sqrt(s0 + s1));
}

}  // namespace la
}  // namespace evrec
