#include "evrec/la/vec_ops.h"

#include <cmath>
#include <cstring>

#include "evrec/la/simd/dispatch.h"

namespace evrec {
namespace la {

// Every hot kernel forwards to the dispatched ISA tier (see
// simd/dispatch.h). All tiers are bit-identical, so callers see one
// deterministic result regardless of CPU, EVREC_SIMD, or thread count.

void Axpy(float alpha, const float* x, float* y, int n) {
  simd::ActiveKernels().axpy(alpha, x, y, n);
}

float DotF(const float* x, const float* y, int n) {
  return simd::ActiveKernels().dot(x, y, n);
}

void DotAndNorms(const float* a, const float* b, int n, float* dot,
                 float* a_sqnorm, float* b_sqnorm) {
  simd::ActiveKernels().dot_and_norms(a, b, n, dot, a_sqnorm, b_sqnorm);
}

void Scale(float alpha, float* x, int n) {
  simd::ActiveKernels().scale(alpha, x, n);
}

void Add(const float* a, const float* b, float* out, int n) {
  simd::ActiveKernels().add(a, b, out, n);
}

void TanhForward(const float* x, float* out, int n) {
  simd::ActiveKernels().tanh_forward(x, out, n);
}

void TanhBackward(const float* y, const float* dy, float* dx, int n) {
  simd::ActiveKernels().tanh_backward(y, dy, dx, n);
}

void TanhBackwardAccum(const float* y, const float* dy, float* dx, int n) {
  simd::ActiveKernels().tanh_backward_accum(y, dy, dx, n);
}

void FusedGradInput(float dyi, const float* x, const float* w, float* gw,
                    float* dx, int n) {
  simd::ActiveKernels().fused_grad_input(dyi, x, w, gw, dx, n);
}

void Zero(float* x, int n) {
  // n == 0 usually means x is a null data() of an empty vector; memset is
  // UB on null even with a zero length.
  if (n > 0) std::memset(x, 0, sizeof(float) * n);
}

float Norm(const float* x, int n) {
  // Double accumulation; cold path (weight-norm diagnostics), so it stays
  // scalar and out of the dispatch table.
  double s0 = 0.0, s1 = 0.0;
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    s0 += static_cast<double>(x[i]) * x[i];
    s1 += static_cast<double>(x[i + 1]) * x[i + 1];
  }
  for (; i < n; ++i) s0 += static_cast<double>(x[i]) * x[i];
  return static_cast<float>(std::sqrt(s0 + s1));
}

}  // namespace la
}  // namespace evrec
