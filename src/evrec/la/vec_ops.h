// Flat float-span kernels used by the NN layers. Each entry point
// forwards to the SIMD kernel layer (la/simd/): an ISA tier — AVX2, SSE2,
// or the scalar reference — is selected once at startup by runtime CPU
// detection (overridable with EVREC_SIMD=avx2|sse2|scalar), and every
// tier implements the same fixed 8-lane accumulator structure, so the
// results are bit-identical regardless of which tier runs. See
// simd/scalar_impl.h for the determinism contract and DESIGN.md §14 for
// the full argument.
//
// Note the lane-blocked reductions fix a DIFFERENT summation order than a
// sequential loop; every caller that needs reproducibility gets it from
// "same kernel, same input => same bits", not from matching a naive
// sequential order.

#ifndef EVREC_LA_VEC_OPS_H_
#define EVREC_LA_VEC_OPS_H_

#include <cstddef>

namespace evrec {
namespace la {

// y += alpha * x
void Axpy(float alpha, const float* x, float* y, int n);

// <x, y>
float DotF(const float* x, const float* y, int n);

// One-pass <a,b>, |a|^2, |b|^2 (float accumulation, 8-lane scheme). The
// float counterpart of util::DotAndNorms for the serving-side scoring
// paths that stay in float end to end.
void DotAndNorms(const float* a, const float* b, int n, float* dot,
                 float* a_sqnorm, float* b_sqnorm);

// x *= alpha
void Scale(float alpha, float* x, int n);

// out = a + b; out may alias a or b (pure element-wise).
void Add(const float* a, const float* b, float* out, int n);

// out[i] = tanh(x[i]), evaluated with the shared rational-polynomial
// approximation (simd/tanh_poly.h; max error well under 1e-6) so the
// SIMD tiers and the scalar reference produce identical bits.
void TanhForward(const float* x, float* out, int n);

// dx[i] = dy[i] * (1 - y[i]^2), where y = tanh(x) (uses the activation,
// not the pre-activation, so callers keep only the forward output).
void TanhBackward(const float* y, const float* dy, float* dx, int n);

// Fused tanh backward + accumulate: dx[i] += dy[i] * (1 - y[i]^2). Saves
// the separate Axpy pass when the destination already accumulates.
void TanhBackwardAccum(const float* y, const float* dy, float* dx, int n);

// The linear-layer backward row kernel, fused: for one output coordinate
// with upstream gradient dyi,
//   gw[i] += dyi * x[i]      (weight-row gradient)
//   dx[i] += dyi * w[i]      (input gradient through the same row)
// One pass reads x and w once instead of two separate Axpy-style sweeps.
// All four spans must be disjoint.
void FusedGradInput(float dyi, const float* x, const float* w, float* gw,
                    float* dx, int n);

// Fills with zeros.
void Zero(float* x, int n);

// L2 norm.
float Norm(const float* x, int n);

}  // namespace la
}  // namespace evrec

#endif  // EVREC_LA_VEC_OPS_H_
