// Flat float-span kernels used by the NN layers. All loops are written so
// the compiler auto-vectorizes them without -ffast-math: element-wise
// kernels carry __restrict spans (no aliasing analysis needed), and
// reductions accumulate into four independent lanes so the strict-FP
// compiler is free to keep one partial sum per SIMD lane. Sizes in this
// project are small (16-512), so a hand-rolled BLAS is not warranted.
//
// Note the lane-blocked reductions fix a DIFFERENT summation order than a
// sequential loop; every caller that needs reproducibility gets it from
// "same kernel, same input => same bits", not from matching the scalar
// order.

#ifndef EVREC_LA_VEC_OPS_H_
#define EVREC_LA_VEC_OPS_H_

#include <cstddef>

namespace evrec {
namespace la {

// y += alpha * x
void Axpy(float alpha, const float* x, float* y, int n);

// <x, y>
float DotF(const float* x, const float* y, int n);

// x *= alpha
void Scale(float alpha, float* x, int n);

// out = a + b
void Add(const float* a, const float* b, float* out, int n);

// out[i] = tanh(x[i])
void TanhForward(const float* x, float* out, int n);

// dx[i] = dy[i] * (1 - y[i]^2), where y = tanh(x) (uses the activation,
// not the pre-activation, so callers keep only the forward output).
void TanhBackward(const float* y, const float* dy, float* dx, int n);

// Fused tanh backward + accumulate: dx[i] += dy[i] * (1 - y[i]^2). Saves
// the separate Axpy pass when the destination already accumulates.
void TanhBackwardAccum(const float* y, const float* dy, float* dx, int n);

// The linear-layer backward row kernel, fused: for one output coordinate
// with upstream gradient dyi,
//   gw[i] += dyi * x[i]      (weight-row gradient)
//   dx[i] += dyi * w[i]      (input gradient through the same row)
// One pass reads x and w once instead of two separate Axpy-style sweeps.
// All four spans must be disjoint.
void FusedGradInput(float dyi, const float* x, const float* w, float* gw,
                    float* dx, int n);

// Fills with zeros.
void Zero(float* x, int n);

// L2 norm.
float Norm(const float* x, int n);

}  // namespace la
}  // namespace evrec

#endif  // EVREC_LA_VEC_OPS_H_
