// Flat float-span kernels used by the NN layers. All loops are written so
// the compiler auto-vectorizes them; sizes in this project are small
// (64-512), so a hand-rolled BLAS is not warranted.

#ifndef EVREC_LA_VEC_OPS_H_
#define EVREC_LA_VEC_OPS_H_

#include <cstddef>

namespace evrec {
namespace la {

// y += alpha * x
void Axpy(float alpha, const float* x, float* y, int n);

// <x, y>
float DotF(const float* x, const float* y, int n);

// x *= alpha
void Scale(float alpha, float* x, int n);

// out = a + b
void Add(const float* a, const float* b, float* out, int n);

// out[i] = tanh(x[i])
void TanhForward(const float* x, float* out, int n);

// dx[i] = dy[i] * (1 - y[i]^2), where y = tanh(x) (uses the activation,
// not the pre-activation, so callers keep only the forward output).
void TanhBackward(const float* y, const float* dy, float* dx, int n);

// Fills with zeros.
void Zero(float* x, int n);

// L2 norm.
float Norm(const float* x, int n);

}  // namespace la
}  // namespace evrec

#endif  // EVREC_LA_VEC_OPS_H_
