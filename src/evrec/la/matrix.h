// Dense row-major float matrix with the handful of operations the NN and
// GBDT code needs: gemv (plain and transposed), rank-1 accumulation for
// gradients, and serialization. Dimensions are fixed at construction.

#ifndef EVREC_LA_MATRIX_H_
#define EVREC_LA_MATRIX_H_

#include <vector>

#include "evrec/util/binary_io.h"
#include "evrec/util/check.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace la {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0f) {
    EVREC_CHECK_GE(rows, 0);
    EVREC_CHECK_GE(cols, 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float* Row(int r) {
    EVREC_CHECK_LT(r, rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  const float* Row(int r) const {
    EVREC_CHECK_LT(r, rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  float& At(int r, int c) {
    EVREC_CHECK_LT(r, rows_);
    EVREC_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float At(int r, int c) const {
    EVREC_CHECK_LT(r, rows_);
    EVREC_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void SetZero();

  // Reshapes to rows x cols, reusing the existing allocation when it is
  // large enough (contents are zeroed either way). Per-example scratch
  // matrices (conv windows, pre-pool activations) call this every Forward,
  // so growing documents pay one allocation and the steady state pays
  // none.
  void Resize(int rows, int cols);

  // Xavier/Glorot uniform init: U(-s, s) with s = sqrt(6 / (fan_in+fan_out)).
  void XavierInit(Rng& rng);

  // Uniform init in [-scale, scale]; used for embedding tables.
  void UniformInit(Rng& rng, float scale);

  // out = M * x       (out: rows_, x: cols_)
  void Gemv(const float* x, float* out) const;

  // out += M^T * y    (out: cols_, y: rows_) — the backward pass of Gemv.
  void GemvTransposedAccum(const float* y, float* out) const;

  // M += alpha * y * x^T (y: rows_, x: cols_) — gradient accumulation.
  void AddOuter(float alpha, const float* y, const float* x);

  // In-place M += alpha * other (same shape).
  void AddScaled(float alpha, const Matrix& other);

  // Frobenius norm.
  double FrobeniusNorm() const;

  void Serialize(BinaryWriter& w) const;
  static Matrix Deserialize(BinaryReader& r);

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  int rows_;
  int cols_;
  std::vector<float> data_;
};

}  // namespace la
}  // namespace evrec

#endif  // EVREC_LA_MATRIX_H_
