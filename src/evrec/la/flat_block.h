// Contiguous, 64-byte-aligned SoA storage for a set of equal-dimension
// float vectors, laid out for the 8-wide batched scoring kernels.
//
// Vectors are grouped into blocks of kLane = 8. Inside block b, the 8
// member vectors are interleaved dimension-major:
//
//   data[ b * dim * 8  +  d * 8  +  lane ]  =  element d of vector
//                                              (b * 8 + lane)
//
// so one sweep of a query vector q scores all 8 lane vectors with
// perfectly sequential 32-byte loads (one cache line holds element d and
// d+1 for all 8 lanes) and no horizontal reduction: lane l's dot product
// accumulates independently over d. That makes the batched kernels both
// the fastest and the easiest to keep bit-identical across ISA tiers.
//
// Slots past size() within the last block are zero-filled padding, so the
// kernels can always process whole blocks.

#ifndef EVREC_LA_FLAT_BLOCK_H_
#define EVREC_LA_FLAT_BLOCK_H_

#include <memory>
#include <vector>

namespace evrec {
namespace la {

class FlatVectorBlock {
 public:
  static constexpr int kLane = 8;

  FlatVectorBlock() = default;
  explicit FlatVectorBlock(int dim) { Reset(dim); }

  FlatVectorBlock(FlatVectorBlock&&) = default;
  FlatVectorBlock& operator=(FlatVectorBlock&&) = default;
  FlatVectorBlock(const FlatVectorBlock&) = delete;
  FlatVectorBlock& operator=(const FlatVectorBlock&) = delete;

  // Drops all vectors and fixes the dimension.
  void Reset(int dim);

  int dim() const { return dim_; }
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int num_blocks() const { return (size_ + kLane - 1) / kLane; }

  // Grows (or shrinks) to n slots; new slots are zero vectors.
  void Resize(int n);

  // Appends a copy of v (length dim()) and returns its slot index.
  int Append(const float* v);
  int Append(const std::vector<float>& v);

  // Overwrites slot i with v (length dim()).
  void Set(int i, const float* v);

  // Reads slot i back out (gather; not a hot path).
  void CopyTo(int i, float* out) const;
  std::vector<float> Get(int i) const;

  // Base pointer of block b (dim()*8 floats). The allocation is 64-byte
  // aligned; block b starts b*dim()*32 bytes in, so every block is at
  // least 32-byte aligned (the kernels use unaligned loads regardless).
  const float* BlockData(int b) const {
    return data_.get() + static_cast<size_t>(b) * dim_ * kLane;
  }

  // out[i] = <q, vector i> for all i in [0, size()), via the dispatched
  // dot_block8 kernel. q has length dim().
  void DotAll(const float* q, float* out) const;

  // out[i] = cosine(q, vector i): dot / sqrt(|q|^2 |v_i|^2), 0 when either
  // norm underflows (matches util::CosineSimilarity's zero guard). The
  // candidate norms are recomputed in the same sweep as the dots, so the
  // block is read exactly once.
  void CosineAll(const float* q, float* out) const;

  // Scores one block of 8 slots: scores8[l] = cosine(q, vector b*8+l).
  // q_sqnorm is <q, q> (compute once per query with la::DotF). Padding
  // lanes score 0. This is the shard unit for parallel scoring.
  void CosineBlock(int b, const float* q, float q_sqnorm,
                   float* scores8) const;

  // Dot products for one block of 8 slots (for pre-normalized vectors
  // where the dot IS the cosine, e.g. the IVF index).
  void DotBlock(int b, const float* q, float* dots8) const;

 private:
  void EnsureBlockCapacity(int blocks);

  struct FreeDeleter {
    void operator()(float* p) const;
  };

  int dim_ = 0;
  int size_ = 0;
  int cap_blocks_ = 0;
  std::unique_ptr<float[], FreeDeleter> data_;
};

}  // namespace la
}  // namespace evrec

#endif  // EVREC_LA_FLAT_BLOCK_H_
