#include "evrec/la/flat_block.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "evrec/la/simd/dispatch.h"
#include "evrec/util/check.h"

namespace evrec {
namespace la {

namespace {
constexpr int kAlign = 64;
// Matches util::CosineSimilarity's degenerate-vector guard (float range:
// the smallest positive squared norm of a nonzero float vector is far
// above 1e-24f only for normal values, but the guard exists to catch
// all-zero vectors, which produce an exact 0.0f).
constexpr float kMinSqNorm = 1e-24f;
}  // namespace

void FlatVectorBlock::FreeDeleter::operator()(float* p) const {
  std::free(p);
}

void FlatVectorBlock::Reset(int dim) {
  EVREC_CHECK_GE(dim, 0);
  dim_ = dim;
  size_ = 0;
  cap_blocks_ = 0;
  data_.reset();
}

void FlatVectorBlock::EnsureBlockCapacity(int blocks) {
  if (blocks <= cap_blocks_) return;
  int new_cap = cap_blocks_ < 4 ? 4 : cap_blocks_;
  while (new_cap < blocks) new_cap *= 2;
  size_t floats = static_cast<size_t>(new_cap) * dim_ * kLane;
  size_t bytes = floats * sizeof(float);
  // aligned_alloc requires the size to be a multiple of the alignment.
  bytes = (bytes + kAlign - 1) / kAlign * kAlign;
  float* p = static_cast<float*>(std::aligned_alloc(kAlign, bytes));
  EVREC_CHECK(p != nullptr);
  size_t used = static_cast<size_t>(num_blocks()) * dim_ * kLane;
  if (used > 0) std::memcpy(p, data_.get(), used * sizeof(float));
  std::memset(p + used, 0, bytes - used * sizeof(float));
  data_.reset(p);
  cap_blocks_ = new_cap;
}

void FlatVectorBlock::Resize(int n) {
  EVREC_CHECK_GE(n, 0);
  EnsureBlockCapacity((n + kLane - 1) / kLane);
  // Invariant: every slot at index >= size_ holds zeros (fresh allocations
  // are zeroed; shrinking re-zeroes below), so growing needs no writes and
  // the padding lanes of the last block are always valid.
  for (int i = n; i < size_; ++i) Set(i, nullptr);
  size_ = n;
}

int FlatVectorBlock::Append(const float* v) {
  int i = size_;
  EnsureBlockCapacity(i / kLane + 1);
  ++size_;
  Set(i, v);
  return i;
}

int FlatVectorBlock::Append(const std::vector<float>& v) {
  EVREC_CHECK_EQ(static_cast<int>(v.size()), dim_);
  return Append(v.data());
}

void FlatVectorBlock::Set(int i, const float* v) {
  EVREC_CHECK_GE(i, 0);
  EVREC_CHECK_LT(i, size_);
  float* base = data_.get() +
                static_cast<size_t>(i / kLane) * dim_ * kLane + (i % kLane);
  if (v == nullptr) {
    for (int d = 0; d < dim_; ++d) base[static_cast<size_t>(d) * kLane] = 0.0f;
    return;
  }
  for (int d = 0; d < dim_; ++d) base[static_cast<size_t>(d) * kLane] = v[d];
}

void FlatVectorBlock::CopyTo(int i, float* out) const {
  EVREC_CHECK_GE(i, 0);
  EVREC_CHECK_LT(i, size_);
  const float* base = data_.get() +
                      static_cast<size_t>(i / kLane) * dim_ * kLane +
                      (i % kLane);
  for (int d = 0; d < dim_; ++d) out[d] = base[static_cast<size_t>(d) * kLane];
}

std::vector<float> FlatVectorBlock::Get(int i) const {
  std::vector<float> out(dim_);
  CopyTo(i, out.data());
  return out;
}

void FlatVectorBlock::DotAll(const float* q, float* out) const {
  const simd::KernelTable& k = simd::ActiveKernels();
  float dots[kLane];
  for (int b = 0; b < num_blocks(); ++b) {
    k.dot_block8(q, BlockData(b), dim_, dots);
    int count = size_ - b * kLane;
    if (count > kLane) count = kLane;
    for (int l = 0; l < count; ++l) out[b * kLane + l] = dots[l];
  }
}

void FlatVectorBlock::CosineAll(const float* q, float* out) const {
  const float q2 = simd::ActiveKernels().dot(q, q, dim_);
  float scores[kLane];
  for (int b = 0; b < num_blocks(); ++b) {
    CosineBlock(b, q, q2, scores);
    int count = size_ - b * kLane;
    if (count > kLane) count = kLane;
    for (int l = 0; l < count; ++l) out[b * kLane + l] = scores[l];
  }
}

void FlatVectorBlock::CosineBlock(int b, const float* q, float q_sqnorm,
                                  float* scores8) const {
  float dots[kLane], sqns[kLane];
  simd::ActiveKernels().dot_sqn_block8(q, BlockData(b), dim_, dots, sqns);
  for (int l = 0; l < kLane; ++l) {
    if (q_sqnorm < kMinSqNorm || sqns[l] < kMinSqNorm) {
      scores8[l] = 0.0f;
    } else {
      scores8[l] = dots[l] / std::sqrt(q_sqnorm * sqns[l]);
    }
  }
}

void FlatVectorBlock::DotBlock(int b, const float* q, float* dots8) const {
  simd::ActiveKernels().dot_block8(q, BlockData(b), dim_, dots8);
}

}  // namespace la
}  // namespace evrec
