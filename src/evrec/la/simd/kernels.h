// The kernel table: one function pointer per hot float kernel, with one
// table per ISA tier (scalar / SSE2 / AVX2). Every tier implements the
// SAME fixed 8-lane accumulator structure (see scalar_impl.h), so for a
// given input every tier produces bit-identical output. The active table
// is selected once at startup by dispatch.cc; callers never touch tiers
// directly.

#ifndef EVREC_LA_SIMD_KERNELS_H_
#define EVREC_LA_SIMD_KERNELS_H_

namespace evrec {
namespace la {
namespace simd {

struct KernelTable {
  // <x, y> with the 8-lane blocked reduction.
  float (*dot)(const float* x, const float* y, int n);
  // One-pass <a,b>, |a|^2, |b|^2 (all float, 8-lane scheme each).
  void (*dot_and_norms)(const float* a, const float* b, int n, float* dot,
                        float* a_sqnorm, float* b_sqnorm);
  // y += alpha * x
  void (*axpy)(float alpha, const float* x, float* y, int n);
  // x *= alpha
  void (*scale)(float alpha, float* x, int n);
  // out = a + b
  void (*add)(const float* a, const float* b, float* out, int n);
  // out[i] = tanh(x[i]) via the shared rational polynomial (tanh_poly.h).
  void (*tanh_forward)(const float* x, float* out, int n);
  // dx[i] = dy[i] * (1 - y[i]^2)
  void (*tanh_backward)(const float* y, const float* dy, float* dx, int n);
  // dx[i] += dy[i] * (1 - y[i]^2)
  void (*tanh_backward_accum)(const float* y, const float* dy, float* dx,
                              int n);
  // gw[i] += dyi * x[i]; dx[i] += dyi * w[i]
  void (*fused_grad_input)(float dyi, const float* x, const float* w,
                           float* gw, float* dx, int n);
  // out = M x for row-major M (rows x cols); 8-lane reduction per row.
  void (*gemv)(const float* m, int rows, int cols, const float* x,
               float* out);
  // out += M^T y; skips rows with y[r] == 0 (common for sparse gradients).
  void (*gemv_transposed_accum)(const float* m, int rows, int cols,
                                const float* y, float* out);
  // M += alpha * y * x^T; skips rows with alpha * y[r] == 0.
  void (*add_outer)(float* m, int rows, int cols, float alpha,
                    const float* y, const float* x);
  // dots[l] = <q, v_l> for the 8 vectors interleaved in one flat block
  // (layout: block[d * 8 + l] = element d of vector l). Lane l accumulates
  // sequentially over d, so there is no cross-lane reduction at all and
  // every tier is trivially bit-identical.
  void (*dot_block8)(const float* q, const float* block, int dim,
                     float* dots);
  // Same sweep, also producing sqns[l] = |v_l|^2 (for cosine scoring).
  void (*dot_sqn_block8)(const float* q, const float* block, int dim,
                         float* dots, float* sqns);
};

// Tier accessors. ScalarTable() always exists; the x86 tiers return
// nullptr when the translation unit was compiled for a non-x86 target.
const KernelTable* ScalarTable();
const KernelTable* Sse2Table();
const KernelTable* Avx2Table();

}  // namespace simd
}  // namespace la
}  // namespace evrec

#endif  // EVREC_LA_SIMD_KERNELS_H_
