// SSE2 tier: 4-wide vectors, so the fixed 8-lane accumulator structure
// maps onto two __m128 registers (lanes 0-3 and 4-7). Reductions spill
// both registers to a float[8] and run the scalar tail + Reduce8 tree
// from scalar_impl.h, so every intermediate rounding matches the scalar
// reference. SSE2 is part of the x86-64 baseline, so this translation
// unit needs no special compile flags.

#include "evrec/la/simd/kernels.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include "evrec/la/simd/scalar_impl.h"
#include "evrec/la/simd/tanh_poly.h"

namespace evrec {
namespace la {
namespace simd {
namespace {

float Sse2Dot(const float* x, const float* y, int n) {
  __m128 a0 = _mm_setzero_ps();
  __m128 a1 = _mm_setzero_ps();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    a0 = _mm_add_ps(a0, _mm_mul_ps(_mm_loadu_ps(x + i), _mm_loadu_ps(y + i)));
    a1 = _mm_add_ps(
        a1, _mm_mul_ps(_mm_loadu_ps(x + i + 4), _mm_loadu_ps(y + i + 4)));
  }
  alignas(16) float s[8];
  _mm_store_ps(s, a0);
  _mm_store_ps(s + 4, a1);
  for (; i < n; ++i) s[i & 7] += x[i] * y[i];
  return Reduce8(s);
}

void Sse2DotAndNorms(const float* a, const float* b, int n, float* dot,
                     float* a_sqnorm, float* b_sqnorm) {
  __m128 d0 = _mm_setzero_ps(), d1 = _mm_setzero_ps();
  __m128 na0 = _mm_setzero_ps(), na1 = _mm_setzero_ps();
  __m128 nb0 = _mm_setzero_ps(), nb1 = _mm_setzero_ps();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128 va0 = _mm_loadu_ps(a + i), va1 = _mm_loadu_ps(a + i + 4);
    __m128 vb0 = _mm_loadu_ps(b + i), vb1 = _mm_loadu_ps(b + i + 4);
    d0 = _mm_add_ps(d0, _mm_mul_ps(va0, vb0));
    d1 = _mm_add_ps(d1, _mm_mul_ps(va1, vb1));
    na0 = _mm_add_ps(na0, _mm_mul_ps(va0, va0));
    na1 = _mm_add_ps(na1, _mm_mul_ps(va1, va1));
    nb0 = _mm_add_ps(nb0, _mm_mul_ps(vb0, vb0));
    nb1 = _mm_add_ps(nb1, _mm_mul_ps(vb1, vb1));
  }
  alignas(16) float sd[8], sa[8], sb[8];
  _mm_store_ps(sd, d0);
  _mm_store_ps(sd + 4, d1);
  _mm_store_ps(sa, na0);
  _mm_store_ps(sa + 4, na1);
  _mm_store_ps(sb, nb0);
  _mm_store_ps(sb + 4, nb1);
  for (; i < n; ++i) {
    sd[i & 7] += a[i] * b[i];
    sa[i & 7] += a[i] * a[i];
    sb[i & 7] += b[i] * b[i];
  }
  *dot = Reduce8(sd);
  *a_sqnorm = Reduce8(sa);
  *b_sqnorm = Reduce8(sb);
}

void Sse2Axpy(float alpha, const float* x, float* y, int n) {
  const __m128 va = _mm_set1_ps(alpha);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(
        y + i,
        _mm_add_ps(_mm_loadu_ps(y + i), _mm_mul_ps(va, _mm_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void Sse2Scale(float alpha, float* x, int n) {
  const __m128 va = _mm_set1_ps(alpha);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(x + i, _mm_mul_ps(_mm_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void Sse2Add(const float* a, const float* b, float* out, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(out + i,
                  _mm_add_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

// Vector TanhPoly: the identical clamp/Horner/divide chain from
// tanh_poly.h, four elements at a time.
__m128 Sse2TanhPacket(__m128 x) {
  x = _mm_max_ps(x, _mm_set1_ps(-kTanhClamp));
  x = _mm_min_ps(x, _mm_set1_ps(kTanhClamp));
  const __m128 x2 = _mm_mul_ps(x, x);
  __m128 p = _mm_set1_ps(kTanhAlpha13);
  p = _mm_add_ps(_mm_mul_ps(p, x2), _mm_set1_ps(kTanhAlpha11));
  p = _mm_add_ps(_mm_mul_ps(p, x2), _mm_set1_ps(kTanhAlpha9));
  p = _mm_add_ps(_mm_mul_ps(p, x2), _mm_set1_ps(kTanhAlpha7));
  p = _mm_add_ps(_mm_mul_ps(p, x2), _mm_set1_ps(kTanhAlpha5));
  p = _mm_add_ps(_mm_mul_ps(p, x2), _mm_set1_ps(kTanhAlpha3));
  p = _mm_add_ps(_mm_mul_ps(p, x2), _mm_set1_ps(kTanhAlpha1));
  p = _mm_mul_ps(p, x);
  __m128 q = _mm_set1_ps(kTanhBeta6);
  q = _mm_add_ps(_mm_mul_ps(q, x2), _mm_set1_ps(kTanhBeta4));
  q = _mm_add_ps(_mm_mul_ps(q, x2), _mm_set1_ps(kTanhBeta2));
  q = _mm_add_ps(_mm_mul_ps(q, x2), _mm_set1_ps(kTanhBeta0));
  return _mm_div_ps(p, q);
}

void Sse2TanhForward(const float* x, float* out, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(out + i, Sse2TanhPacket(_mm_loadu_ps(x + i)));
  }
  for (; i < n; ++i) out[i] = TanhPoly(x[i]);
}

void Sse2TanhBackward(const float* y, const float* dy, float* dx, int n) {
  const __m128 one = _mm_set1_ps(1.0f);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 vy = _mm_loadu_ps(y + i);
    _mm_storeu_ps(dx + i,
                  _mm_mul_ps(_mm_loadu_ps(dy + i),
                             _mm_sub_ps(one, _mm_mul_ps(vy, vy))));
  }
  for (; i < n; ++i) dx[i] = dy[i] * (1.0f - y[i] * y[i]);
}

void Sse2TanhBackwardAccum(const float* y, const float* dy, float* dx,
                           int n) {
  const __m128 one = _mm_set1_ps(1.0f);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 vy = _mm_loadu_ps(y + i);
    __m128 g = _mm_mul_ps(_mm_loadu_ps(dy + i),
                          _mm_sub_ps(one, _mm_mul_ps(vy, vy)));
    _mm_storeu_ps(dx + i, _mm_add_ps(_mm_loadu_ps(dx + i), g));
  }
  for (; i < n; ++i) dx[i] += dy[i] * (1.0f - y[i] * y[i]);
}

void Sse2FusedGradInput(float dyi, const float* x, const float* w, float* gw,
                        float* dx, int n) {
  const __m128 vd = _mm_set1_ps(dyi);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(gw + i,
                  _mm_add_ps(_mm_loadu_ps(gw + i),
                             _mm_mul_ps(vd, _mm_loadu_ps(x + i))));
    _mm_storeu_ps(dx + i,
                  _mm_add_ps(_mm_loadu_ps(dx + i),
                             _mm_mul_ps(vd, _mm_loadu_ps(w + i))));
  }
  for (; i < n; ++i) {
    gw[i] += dyi * x[i];
    dx[i] += dyi * w[i];
  }
}

void Sse2Gemv(const float* m, int rows, int cols, const float* x,
              float* out) {
  for (int r = 0; r < rows; ++r) {
    out[r] = Sse2Dot(m + static_cast<long>(r) * cols, x, cols);
  }
}

void Sse2GemvTransposedAccum(const float* m, int rows, int cols,
                             const float* y, float* out) {
  for (int r = 0; r < rows; ++r) {
    float yr = y[r];
    if (yr == 0.0f) continue;
    Sse2Axpy(yr, m + static_cast<long>(r) * cols, out, cols);
  }
}

void Sse2AddOuter(float* m, int rows, int cols, float alpha, const float* y,
                  const float* x) {
  for (int r = 0; r < rows; ++r) {
    float ay = alpha * y[r];
    if (ay == 0.0f) continue;
    Sse2Axpy(ay, x, m + static_cast<long>(r) * cols, cols);
  }
}

void Sse2DotBlock8(const float* q, const float* block, int dim,
                   float* dots) {
  __m128 a0 = _mm_setzero_ps();
  __m128 a1 = _mm_setzero_ps();
  for (int d = 0; d < dim; ++d) {
    const float* col = block + static_cast<long>(d) * 8;
    const __m128 qd = _mm_set1_ps(q[d]);
    a0 = _mm_add_ps(a0, _mm_mul_ps(qd, _mm_loadu_ps(col)));
    a1 = _mm_add_ps(a1, _mm_mul_ps(qd, _mm_loadu_ps(col + 4)));
  }
  _mm_storeu_ps(dots, a0);
  _mm_storeu_ps(dots + 4, a1);
}

void Sse2DotSqnBlock8(const float* q, const float* block, int dim,
                      float* dots, float* sqns) {
  __m128 a0 = _mm_setzero_ps(), a1 = _mm_setzero_ps();
  __m128 n0 = _mm_setzero_ps(), n1 = _mm_setzero_ps();
  for (int d = 0; d < dim; ++d) {
    const float* col = block + static_cast<long>(d) * 8;
    const __m128 c0 = _mm_loadu_ps(col);
    const __m128 c1 = _mm_loadu_ps(col + 4);
    const __m128 qd = _mm_set1_ps(q[d]);
    a0 = _mm_add_ps(a0, _mm_mul_ps(qd, c0));
    a1 = _mm_add_ps(a1, _mm_mul_ps(qd, c1));
    n0 = _mm_add_ps(n0, _mm_mul_ps(c0, c0));
    n1 = _mm_add_ps(n1, _mm_mul_ps(c1, c1));
  }
  _mm_storeu_ps(dots, a0);
  _mm_storeu_ps(dots + 4, a1);
  _mm_storeu_ps(sqns, n0);
  _mm_storeu_ps(sqns + 4, n1);
}

}  // namespace

const KernelTable* Sse2Table() {
  static const KernelTable table = {
      Sse2Dot,
      Sse2DotAndNorms,
      Sse2Axpy,
      Sse2Scale,
      Sse2Add,
      Sse2TanhForward,
      Sse2TanhBackward,
      Sse2TanhBackwardAccum,
      Sse2FusedGradInput,
      Sse2Gemv,
      Sse2GemvTransposedAccum,
      Sse2AddOuter,
      Sse2DotBlock8,
      Sse2DotSqnBlock8,
  };
  return &table;
}

}  // namespace simd
}  // namespace la
}  // namespace evrec

#else  // !defined(__SSE2__)

namespace evrec {
namespace la {
namespace simd {
const KernelTable* Sse2Table() { return nullptr; }
}  // namespace simd
}  // namespace la
}  // namespace evrec

#endif
