// AVX2 tier: 8-wide vectors, so the fixed 8-lane accumulator structure is
// exactly one __m256 register. Reductions spill the register to a
// float[8] and run the scalar tail + Reduce8 tree from scalar_impl.h.
//
// Deliberately NO FMA: _mm256_fmadd_ps rounds once where mul+add rounds
// twice, which would make this tier's bits diverge from the scalar
// reference and break the cross-ISA determinism contract. The measured
// win from 8-wide mul+add is already the bulk of the speedup.
//
// This file is compiled with -mavx2 (see la/CMakeLists.txt); the dispatch
// layer guarantees these functions only run on CPUs with AVX2.

#include "evrec/la/simd/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "evrec/la/simd/scalar_impl.h"
#include "evrec/la/simd/tanh_poly.h"

namespace evrec {
namespace la {
namespace simd {
namespace {

float Avx2Dot(const float* x, const float* y, int n) {
  __m256 acc = _mm256_setzero_ps();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  alignas(32) float s[8];
  _mm256_store_ps(s, acc);
  for (; i < n; ++i) s[i & 7] += x[i] * y[i];
  return Reduce8(s);
}

void Avx2DotAndNorms(const float* a, const float* b, int n, float* dot,
                     float* a_sqnorm, float* b_sqnorm) {
  __m256 d = _mm256_setzero_ps();
  __m256 na = _mm256_setzero_ps();
  __m256 nb = _mm256_setzero_ps();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 va = _mm256_loadu_ps(a + i);
    __m256 vb = _mm256_loadu_ps(b + i);
    d = _mm256_add_ps(d, _mm256_mul_ps(va, vb));
    na = _mm256_add_ps(na, _mm256_mul_ps(va, va));
    nb = _mm256_add_ps(nb, _mm256_mul_ps(vb, vb));
  }
  alignas(32) float sd[8], sa[8], sb[8];
  _mm256_store_ps(sd, d);
  _mm256_store_ps(sa, na);
  _mm256_store_ps(sb, nb);
  for (; i < n; ++i) {
    sd[i & 7] += a[i] * b[i];
    sa[i & 7] += a[i] * a[i];
    sb[i & 7] += b[i] * b[i];
  }
  *dot = Reduce8(sd);
  *a_sqnorm = Reduce8(sa);
  *b_sqnorm = Reduce8(sb);
}

void Avx2Axpy(float alpha, const float* x, float* y, int n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i,
                     _mm256_add_ps(_mm256_loadu_ps(y + i),
                                   _mm256_mul_ps(va, _mm256_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void Avx2Scale(float alpha, float* x, int n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void Avx2Add(const float* a, const float* b, float* out, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

// Vector TanhPoly: the identical clamp/Horner/divide chain from
// tanh_poly.h, eight elements at a time (mul+add, never fmadd).
__m256 Avx2TanhPacket(__m256 x) {
  x = _mm256_max_ps(x, _mm256_set1_ps(-kTanhClamp));
  x = _mm256_min_ps(x, _mm256_set1_ps(kTanhClamp));
  const __m256 x2 = _mm256_mul_ps(x, x);
  __m256 p = _mm256_set1_ps(kTanhAlpha13);
  p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(kTanhAlpha11));
  p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(kTanhAlpha9));
  p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(kTanhAlpha7));
  p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(kTanhAlpha5));
  p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(kTanhAlpha3));
  p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(kTanhAlpha1));
  p = _mm256_mul_ps(p, x);
  __m256 q = _mm256_set1_ps(kTanhBeta6);
  q = _mm256_add_ps(_mm256_mul_ps(q, x2), _mm256_set1_ps(kTanhBeta4));
  q = _mm256_add_ps(_mm256_mul_ps(q, x2), _mm256_set1_ps(kTanhBeta2));
  q = _mm256_add_ps(_mm256_mul_ps(q, x2), _mm256_set1_ps(kTanhBeta0));
  return _mm256_div_ps(p, q);
}

void Avx2TanhForward(const float* x, float* out, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, Avx2TanhPacket(_mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) out[i] = TanhPoly(x[i]);
}

void Avx2TanhBackward(const float* y, const float* dy, float* dx, int n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(dx + i,
                     _mm256_mul_ps(_mm256_loadu_ps(dy + i),
                                   _mm256_sub_ps(one, _mm256_mul_ps(vy, vy))));
  }
  for (; i < n; ++i) dx[i] = dy[i] * (1.0f - y[i] * y[i]);
}

void Avx2TanhBackwardAccum(const float* y, const float* dy, float* dx,
                           int n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vy = _mm256_loadu_ps(y + i);
    __m256 g = _mm256_mul_ps(_mm256_loadu_ps(dy + i),
                             _mm256_sub_ps(one, _mm256_mul_ps(vy, vy)));
    _mm256_storeu_ps(dx + i, _mm256_add_ps(_mm256_loadu_ps(dx + i), g));
  }
  for (; i < n; ++i) dx[i] += dy[i] * (1.0f - y[i] * y[i]);
}

void Avx2FusedGradInput(float dyi, const float* x, const float* w, float* gw,
                        float* dx, int n) {
  const __m256 vd = _mm256_set1_ps(dyi);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(gw + i,
                     _mm256_add_ps(_mm256_loadu_ps(gw + i),
                                   _mm256_mul_ps(vd, _mm256_loadu_ps(x + i))));
    _mm256_storeu_ps(dx + i,
                     _mm256_add_ps(_mm256_loadu_ps(dx + i),
                                   _mm256_mul_ps(vd, _mm256_loadu_ps(w + i))));
  }
  for (; i < n; ++i) {
    gw[i] += dyi * x[i];
    dx[i] += dyi * w[i];
  }
}

void Avx2Gemv(const float* m, int rows, int cols, const float* x,
              float* out) {
  for (int r = 0; r < rows; ++r) {
    out[r] = Avx2Dot(m + static_cast<long>(r) * cols, x, cols);
  }
}

void Avx2GemvTransposedAccum(const float* m, int rows, int cols,
                             const float* y, float* out) {
  for (int r = 0; r < rows; ++r) {
    float yr = y[r];
    if (yr == 0.0f) continue;
    Avx2Axpy(yr, m + static_cast<long>(r) * cols, out, cols);
  }
}

void Avx2AddOuter(float* m, int rows, int cols, float alpha, const float* y,
                  const float* x) {
  for (int r = 0; r < rows; ++r) {
    float ay = alpha * y[r];
    if (ay == 0.0f) continue;
    Avx2Axpy(ay, x, m + static_cast<long>(r) * cols, cols);
  }
}

void Avx2DotBlock8(const float* q, const float* block, int dim,
                   float* dots) {
  __m256 acc = _mm256_setzero_ps();
  for (int d = 0; d < dim; ++d) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_set1_ps(q[d]),
                           _mm256_loadu_ps(block + static_cast<long>(d) * 8)));
  }
  _mm256_storeu_ps(dots, acc);
}

void Avx2DotSqnBlock8(const float* q, const float* block, int dim,
                      float* dots, float* sqns) {
  __m256 acc = _mm256_setzero_ps();
  __m256 nrm = _mm256_setzero_ps();
  for (int d = 0; d < dim; ++d) {
    const __m256 col = _mm256_loadu_ps(block + static_cast<long>(d) * 8);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(q[d]), col));
    nrm = _mm256_add_ps(nrm, _mm256_mul_ps(col, col));
  }
  _mm256_storeu_ps(dots, acc);
  _mm256_storeu_ps(sqns, nrm);
}

}  // namespace

const KernelTable* Avx2Table() {
  static const KernelTable table = {
      Avx2Dot,
      Avx2DotAndNorms,
      Avx2Axpy,
      Avx2Scale,
      Avx2Add,
      Avx2TanhForward,
      Avx2TanhBackward,
      Avx2TanhBackwardAccum,
      Avx2FusedGradInput,
      Avx2Gemv,
      Avx2GemvTransposedAccum,
      Avx2AddOuter,
      Avx2DotBlock8,
      Avx2DotSqnBlock8,
  };
  return &table;
}

}  // namespace simd
}  // namespace la
}  // namespace evrec

#else  // !defined(__AVX2__)

namespace evrec {
namespace la {
namespace simd {
const KernelTable* Avx2Table() { return nullptr; }
}  // namespace simd
}  // namespace la
}  // namespace evrec

#endif
