#include "evrec/la/simd/dispatch.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace evrec {
namespace la {
namespace simd {
namespace {

bool CpuSupports(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSse2:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case SimdLevel::kAvx2:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      // __builtin_cpu_supports folds in the OSXSAVE/XGETBV check, so this
      // is false when the OS does not save ymm state.
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* TableFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return Avx2Table();
    case SimdLevel::kSse2:
      return Sse2Table();
    case SimdLevel::kScalar:
      return ScalarTable();
  }
  return ScalarTable();
}

SimdLevel BestAvailable() {
  if (SimdLevelAvailable(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  if (SimdLevelAvailable(SimdLevel::kSse2)) return SimdLevel::kSse2;
  return SimdLevel::kScalar;
}

SimdLevel DetectLevel() {
  SimdLevel level = BestAvailable();
  const char* env = std::getenv("EVREC_SIMD");
  if (env == nullptr || env[0] == '\0') return level;
  SimdLevel requested;
  if (std::strcmp(env, "avx2") == 0) {
    requested = SimdLevel::kAvx2;
  } else if (std::strcmp(env, "sse2") == 0) {
    requested = SimdLevel::kSse2;
  } else if (std::strcmp(env, "scalar") == 0) {
    requested = SimdLevel::kScalar;
  } else {
    std::fprintf(stderr,
                 "[evrec] EVREC_SIMD=%s not recognized "
                 "(want avx2|sse2|scalar); using %s\n",
                 env, SimdLevelName(level));
    return level;
  }
  if (!SimdLevelAvailable(requested)) {
    std::fprintf(stderr,
                 "[evrec] EVREC_SIMD=%s not available on this CPU/build; "
                 "using %s\n",
                 env, SimdLevelName(level));
    return level;
  }
  return requested;
}

struct Active {
  const KernelTable* table;
  SimdLevel level;
};

Active& ActiveSlot() {
  static Active active = [] {
    SimdLevel level = DetectLevel();
    return Active{TableFor(level), level};
  }();
  return active;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kScalar:
      return "scalar";
  }
  return "unknown";
}

bool SimdLevelAvailable(SimdLevel level) {
  return TableFor(level) != nullptr && CpuSupports(level);
}

SimdLevel ActiveSimdLevel() { return ActiveSlot().level; }

const KernelTable& ActiveKernels() { return *ActiveSlot().table; }

void SetSimdLevelForTesting(SimdLevel level) {
  if (!SimdLevelAvailable(level)) {
    std::fprintf(stderr,
                 "[evrec] SetSimdLevelForTesting(%s): level unavailable; "
                 "keeping %s\n",
                 SimdLevelName(level), SimdLevelName(ActiveSlot().level));
    return;
  }
  ActiveSlot() = Active{TableFor(level), level};
}

}  // namespace simd
}  // namespace la
}  // namespace evrec
