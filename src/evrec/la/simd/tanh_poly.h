// Rational-polynomial tanh shared by every kernel tier.
//
// std::tanh cannot be used in the SIMD tiers (libm is scalar and its exact
// bits vary across implementations), so all tiers — including the scalar
// reference — evaluate the same degree-13/6 rational approximation with an
// identical operation chain: clamp, Horner numerator, Horner denominator,
// one divide. Each step is a single-rounded float op in every tier (the
// kernel library is built with -ffp-contract=off, so no FMA contraction),
// which makes the scalar and vector results bit-identical by construction.
//
// The coefficients are the classic Cephes-derived fit used by Eigen's
// generic packet tanh: max error vs. true tanh is well under 1e-6 over the
// clamped range, and the approximation saturates to exactly the same value
// on both sides of the clamp.
//
// NaN inputs clamp to -kTanhClamp (the comparisons below are ordered the
// same way minps/maxps resolve NaN), so the output stays finite; training
// guardrails reject non-finite values before they reach the kernels.

#ifndef EVREC_LA_SIMD_TANH_POLY_H_
#define EVREC_LA_SIMD_TANH_POLY_H_

namespace evrec {
namespace la {
namespace simd {

inline constexpr float kTanhClamp = 7.90531110763549805f;

inline constexpr float kTanhAlpha1 = 4.89352455891786e-03f;
inline constexpr float kTanhAlpha3 = 6.37261928875436e-04f;
inline constexpr float kTanhAlpha5 = 1.48572235717979e-05f;
inline constexpr float kTanhAlpha7 = 5.12229709037114e-08f;
inline constexpr float kTanhAlpha9 = -8.60467152213735e-11f;
inline constexpr float kTanhAlpha11 = 2.00018790482477e-13f;
inline constexpr float kTanhAlpha13 = -2.76076847742355e-16f;

inline constexpr float kTanhBeta0 = 4.89352518554385e-03f;
inline constexpr float kTanhBeta2 = 2.26843463243900e-03f;
inline constexpr float kTanhBeta4 = 1.18534705686654e-04f;
inline constexpr float kTanhBeta6 = 1.19825839466702e-06f;

// Scalar reference evaluation. The two clamp ternaries are written to
// match maxps/minps operand semantics exactly: max(a, b) = (a > b) ? a : b
// and min(a, b) = (a < b) ? a : b, with the value being clamped in the
// first position.
inline float TanhPoly(float x) {
  x = (x > -kTanhClamp) ? x : -kTanhClamp;
  x = (x < kTanhClamp) ? x : kTanhClamp;
  const float x2 = x * x;
  float p = kTanhAlpha13;
  p = p * x2 + kTanhAlpha11;
  p = p * x2 + kTanhAlpha9;
  p = p * x2 + kTanhAlpha7;
  p = p * x2 + kTanhAlpha5;
  p = p * x2 + kTanhAlpha3;
  p = p * x2 + kTanhAlpha1;
  p = p * x;
  float q = kTanhBeta6;
  q = q * x2 + kTanhBeta4;
  q = q * x2 + kTanhBeta2;
  q = q * x2 + kTanhBeta0;
  return p / q;
}

}  // namespace simd
}  // namespace la
}  // namespace evrec

#endif  // EVREC_LA_SIMD_TANH_POLY_H_
