// Scalar tier: the reference implementations from scalar_impl.h, exposed
// through a KernelTable. Always available; the parity tests in
// tests/kernel_test.cc compare every other tier against this one.

#include "evrec/la/simd/kernels.h"
#include "evrec/la/simd/scalar_impl.h"

namespace evrec {
namespace la {
namespace simd {

const KernelTable* ScalarTable() {
  static const KernelTable table = {
      ScalarDot,
      ScalarDotAndNorms,
      ScalarAxpy,
      ScalarScale,
      ScalarAdd,
      ScalarTanhForward,
      ScalarTanhBackward,
      ScalarTanhBackwardAccum,
      ScalarFusedGradInput,
      ScalarGemv,
      ScalarGemvTransposedAccum,
      ScalarAddOuter,
      ScalarDotBlock8,
      ScalarDotSqnBlock8,
  };
  return &table;
}

}  // namespace simd
}  // namespace la
}  // namespace evrec
