// Runtime kernel dispatch: pick the widest ISA tier the CPU supports,
// once, at first kernel use. The choice NEVER changes numerical results —
// every tier produces bit-identical output (see scalar_impl.h) — it only
// changes speed, which is why the selected level does not participate in
// the model fingerprint or any cache key.
//
// Override for testing/debugging with EVREC_SIMD=avx2|sse2|scalar (read
// once per process). Requesting a tier the CPU or build does not support
// falls back to the best available tier with a warning on stderr.

#ifndef EVREC_LA_SIMD_DISPATCH_H_
#define EVREC_LA_SIMD_DISPATCH_H_

#include "evrec/la/simd/kernels.h"

namespace evrec {
namespace la {
namespace simd {

enum class SimdLevel { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

const char* SimdLevelName(SimdLevel level);

// True when the tier is compiled in AND the running CPU supports it.
// kScalar is always available.
bool SimdLevelAvailable(SimdLevel level);

// The level the process is running (after detection + EVREC_SIMD).
SimdLevel ActiveSimdLevel();

// The active kernel table. Selected once; subsequent calls are a load.
const KernelTable& ActiveKernels();

// Repoints the active table at a specific tier so one test process can
// sweep every tier (the EVREC_SIMD override is read only once). The level
// must be available. Not thread-safe: call only from single-threaded test
// or bench setup, never while kernels may be executing elsewhere.
void SetSimdLevelForTesting(SimdLevel level);

}  // namespace simd
}  // namespace la
}  // namespace evrec

#endif  // EVREC_LA_SIMD_DISPATCH_H_
