// The canonical scalar kernels: the bit-exact reference every SIMD tier
// must reproduce, and the tail code the SIMD tiers share.
//
// The determinism contract (see DESIGN.md §14):
//   * Reductions run 8 fixed lanes. Lane l accumulates the terms at
//     indices i with i % 8 == l, in increasing i. The tail (n % 8
//     trailing elements) lands in lanes 0..(n%8 - 1) of the same array.
//   * The lanes are combined with one fixed scalar tree:
//       ((s0+s1) + (s2+s3)) + ((s4+s5) + (s6+s7))
//     The SIMD tiers spill their vector accumulators to a float[8] and
//     run the identical scalar tail + tree, so the full op sequence —
//     including every intermediate rounding — is the same in all tiers.
//   * Element-wise kernels perform the same per-element op chain in every
//     tier; no accumulation order exists to diverge.
//   * No FMA anywhere: a fused multiply-add rounds once where mul+add
//     rounds twice, which would split scalar from SIMD bits. The library
//     is compiled with -ffp-contract=off and the AVX2 tier deliberately
//     uses mul+add intrinsics even when the CPU offers FMA.

#ifndef EVREC_LA_SIMD_SCALAR_IMPL_H_
#define EVREC_LA_SIMD_SCALAR_IMPL_H_

#include "evrec/la/simd/tanh_poly.h"

namespace evrec {
namespace la {
namespace simd {

// The one fixed lane-combining tree. Every reduction in every tier
// funnels through this exact expression.
inline float Reduce8(const float* s) {
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

inline float ScalarDot(const float* x, const float* y, int n) {
  float s[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int l = 0; l < 8; ++l) s[l] += x[i + l] * y[i + l];
  }
  for (; i < n; ++i) s[i & 7] += x[i] * y[i];
  return Reduce8(s);
}

inline void ScalarDotAndNorms(const float* a, const float* b, int n,
                              float* dot, float* a_sqnorm, float* b_sqnorm) {
  float sd[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  float sa[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  float sb[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int l = 0; l < 8; ++l) {
      sd[l] += a[i + l] * b[i + l];
      sa[l] += a[i + l] * a[i + l];
      sb[l] += b[i + l] * b[i + l];
    }
  }
  for (; i < n; ++i) {
    sd[i & 7] += a[i] * b[i];
    sa[i & 7] += a[i] * a[i];
    sb[i & 7] += b[i] * b[i];
  }
  *dot = Reduce8(sd);
  *a_sqnorm = Reduce8(sa);
  *b_sqnorm = Reduce8(sb);
}

inline void ScalarAxpy(float alpha, const float* x, float* y, int n) {
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

inline void ScalarScale(float alpha, float* x, int n) {
  for (int i = 0; i < n; ++i) x[i] *= alpha;
}

inline void ScalarAdd(const float* a, const float* b, float* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

inline void ScalarTanhForward(const float* x, float* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = TanhPoly(x[i]);
}

inline void ScalarTanhBackward(const float* y, const float* dy, float* dx,
                               int n) {
  for (int i = 0; i < n; ++i) dx[i] = dy[i] * (1.0f - y[i] * y[i]);
}

inline void ScalarTanhBackwardAccum(const float* y, const float* dy,
                                    float* dx, int n) {
  for (int i = 0; i < n; ++i) dx[i] += dy[i] * (1.0f - y[i] * y[i]);
}

inline void ScalarFusedGradInput(float dyi, const float* x, const float* w,
                                 float* gw, float* dx, int n) {
  for (int i = 0; i < n; ++i) {
    gw[i] += dyi * x[i];
    dx[i] += dyi * w[i];
  }
}

inline void ScalarGemv(const float* m, int rows, int cols, const float* x,
                       float* out) {
  for (int r = 0; r < rows; ++r) {
    out[r] = ScalarDot(m + static_cast<long>(r) * cols, x, cols);
  }
}

inline void ScalarGemvTransposedAccum(const float* m, int rows, int cols,
                                      const float* y, float* out) {
  for (int r = 0; r < rows; ++r) {
    float yr = y[r];
    // Value-dependent but ISA-independent skip: sparse upstream gradients
    // (ReLU masks, padded rows) make most y[r] exactly zero.
    if (yr == 0.0f) continue;
    ScalarAxpy(yr, m + static_cast<long>(r) * cols, out, cols);
  }
}

inline void ScalarAddOuter(float* m, int rows, int cols, float alpha,
                           const float* y, const float* x) {
  for (int r = 0; r < rows; ++r) {
    float ay = alpha * y[r];
    if (ay == 0.0f) continue;
    ScalarAxpy(ay, x, m + static_cast<long>(r) * cols, cols);
  }
}

inline void ScalarDotBlock8(const float* q, const float* block, int dim,
                            float* dots) {
  float acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (int d = 0; d < dim; ++d) {
    const float* col = block + static_cast<long>(d) * 8;
    const float qd = q[d];
    for (int l = 0; l < 8; ++l) acc[l] += qd * col[l];
  }
  for (int l = 0; l < 8; ++l) dots[l] = acc[l];
}

inline void ScalarDotSqnBlock8(const float* q, const float* block, int dim,
                               float* dots, float* sqns) {
  float acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  float nrm[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (int d = 0; d < dim; ++d) {
    const float* col = block + static_cast<long>(d) * 8;
    const float qd = q[d];
    for (int l = 0; l < 8; ++l) {
      acc[l] += qd * col[l];
      nrm[l] += col[l] * col[l];
    }
  }
  for (int l = 0; l < 8; ++l) {
    dots[l] = acc[l];
    sqns[l] = nrm[l];
  }
}

}  // namespace simd
}  // namespace la
}  // namespace evrec

#endif  // EVREC_LA_SIMD_SCALAR_IMPL_H_
