#include "evrec/la/matrix.h"

#include <cmath>
#include <cstring>

namespace evrec {
namespace la {

void Matrix::SetZero() {
  std::memset(data_.data(), 0, data_.size() * sizeof(float));
}

void Matrix::XavierInit(Rng& rng) {
  double s = std::sqrt(6.0 / (rows_ + cols_ + 1e-12));
  for (auto& v : data_) v = static_cast<float>(rng.Uniform(-s, s));
}

void Matrix::UniformInit(Rng& rng, float scale) {
  for (auto& v : data_) v = static_cast<float>(rng.Uniform(-scale, scale));
}

void Matrix::Resize(int rows, int cols) {
  EVREC_CHECK_GE(rows, 0);
  EVREC_CHECK_GE(cols, 0);
  rows_ = rows;
  cols_ = cols;
  size_t n = static_cast<size_t>(rows) * cols;
  // assign() reuses capacity when possible and zero-fills.
  data_.assign(n, 0.0f);
}

void Matrix::Gemv(const float* __restrict x, float* __restrict out) const {
  const int cols = cols_;
  for (int r = 0; r < rows_; ++r) {
    const float* __restrict row = data_.data() + static_cast<size_t>(r) * cols;
    // Lane-blocked reduction; see vec_ops.h for why the lanes are explicit.
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
    int c = 0;
    for (; c + 4 <= cols; c += 4) {
      s0 += row[c] * x[c];
      s1 += row[c + 1] * x[c + 1];
      s2 += row[c + 2] * x[c + 2];
      s3 += row[c + 3] * x[c + 3];
    }
    for (; c < cols; ++c) s0 += row[c] * x[c];
    out[r] = (s0 + s1) + (s2 + s3);
  }
}

void Matrix::GemvTransposedAccum(const float* __restrict y,
                                 float* __restrict out) const {
  const int cols = cols_;
  for (int r = 0; r < rows_; ++r) {
    const float* __restrict row = data_.data() + static_cast<size_t>(r) * cols;
    float yr = y[r];
    if (yr == 0.0f) continue;
    for (int c = 0; c < cols; ++c) out[c] += yr * row[c];
  }
}

void Matrix::AddOuter(float alpha, const float* __restrict y,
                      const float* __restrict x) {
  const int cols = cols_;
  for (int r = 0; r < rows_; ++r) {
    float* __restrict row = data_.data() + static_cast<size_t>(r) * cols;
    float ay = alpha * y[r];
    if (ay == 0.0f) continue;
    for (int c = 0; c < cols; ++c) row[c] += ay * x[c];
  }
}

void Matrix::AddScaled(float alpha, const Matrix& other) {
  EVREC_CHECK(SameShape(other));
  float* __restrict dst = data_.data();
  const float* __restrict src = other.data_.data();
  const size_t n = data_.size();
  for (size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

void Matrix::Serialize(BinaryWriter& w) const {
  w.WriteMagic("MTRX");
  w.WriteI32(rows_);
  w.WriteI32(cols_);
  w.WriteFloatVector(data_);
}

Matrix Matrix::Deserialize(BinaryReader& r) {
  r.ExpectMagic("MTRX");
  int rows = r.ReadI32();
  int cols = r.ReadI32();
  Matrix m;
  if (!r.ok() || rows < 0 || cols < 0) return m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = r.ReadFloatVector();
  if (m.data_.size() != static_cast<size_t>(rows) * cols) {
    m = Matrix();  // corrupt; reader status already reflects short read
  }
  return m;
}

}  // namespace la
}  // namespace evrec
