#include "evrec/la/matrix.h"

#include <cmath>
#include <cstring>

namespace evrec {
namespace la {

void Matrix::SetZero() {
  std::memset(data_.data(), 0, data_.size() * sizeof(float));
}

void Matrix::XavierInit(Rng& rng) {
  double s = std::sqrt(6.0 / (rows_ + cols_ + 1e-12));
  for (auto& v : data_) v = static_cast<float>(rng.Uniform(-s, s));
}

void Matrix::UniformInit(Rng& rng, float scale) {
  for (auto& v : data_) v = static_cast<float>(rng.Uniform(-scale, scale));
}

void Matrix::Gemv(const float* x, float* out) const {
  for (int r = 0; r < rows_; ++r) {
    const float* row = data_.data() + static_cast<size_t>(r) * cols_;
    float s = 0.0f;
    for (int c = 0; c < cols_; ++c) s += row[c] * x[c];
    out[r] = s;
  }
}

void Matrix::GemvTransposedAccum(const float* y, float* out) const {
  for (int r = 0; r < rows_; ++r) {
    const float* row = data_.data() + static_cast<size_t>(r) * cols_;
    float yr = y[r];
    if (yr == 0.0f) continue;
    for (int c = 0; c < cols_; ++c) out[c] += yr * row[c];
  }
}

void Matrix::AddOuter(float alpha, const float* y, const float* x) {
  for (int r = 0; r < rows_; ++r) {
    float* row = data_.data() + static_cast<size_t>(r) * cols_;
    float ay = alpha * y[r];
    if (ay == 0.0f) continue;
    for (int c = 0; c < cols_; ++c) row[c] += ay * x[c];
  }
}

void Matrix::AddScaled(float alpha, const Matrix& other) {
  EVREC_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

void Matrix::Serialize(BinaryWriter& w) const {
  w.WriteMagic("MTRX");
  w.WriteI32(rows_);
  w.WriteI32(cols_);
  w.WriteFloatVector(data_);
}

Matrix Matrix::Deserialize(BinaryReader& r) {
  r.ExpectMagic("MTRX");
  int rows = r.ReadI32();
  int cols = r.ReadI32();
  Matrix m;
  if (!r.ok() || rows < 0 || cols < 0) return m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = r.ReadFloatVector();
  if (m.data_.size() != static_cast<size_t>(rows) * cols) {
    m = Matrix();  // corrupt; reader status already reflects short read
  }
  return m;
}

}  // namespace la
}  // namespace evrec
