#include "evrec/la/matrix.h"

#include <cmath>
#include <cstring>

#include "evrec/la/simd/dispatch.h"

namespace evrec {
namespace la {

void Matrix::SetZero() {
  std::memset(data_.data(), 0, data_.size() * sizeof(float));
}

void Matrix::XavierInit(Rng& rng) {
  double s = std::sqrt(6.0 / (rows_ + cols_ + 1e-12));
  for (auto& v : data_) v = static_cast<float>(rng.Uniform(-s, s));
}

void Matrix::UniformInit(Rng& rng, float scale) {
  for (auto& v : data_) v = static_cast<float>(rng.Uniform(-scale, scale));
}

void Matrix::Resize(int rows, int cols) {
  EVREC_CHECK_GE(rows, 0);
  EVREC_CHECK_GE(cols, 0);
  rows_ = rows;
  cols_ = cols;
  size_t n = static_cast<size_t>(rows) * cols;
  // assign() reuses capacity when possible and zero-fills.
  data_.assign(n, 0.0f);
}

// The three hot matrix kernels forward to the dispatched ISA tier (see
// simd/dispatch.h); all tiers produce bit-identical output.

void Matrix::Gemv(const float* __restrict x, float* __restrict out) const {
  simd::ActiveKernels().gemv(data_.data(), rows_, cols_, x, out);
}

void Matrix::GemvTransposedAccum(const float* __restrict y,
                                 float* __restrict out) const {
  simd::ActiveKernels().gemv_transposed_accum(data_.data(), rows_, cols_, y,
                                              out);
}

void Matrix::AddOuter(float alpha, const float* __restrict y,
                      const float* __restrict x) {
  simd::ActiveKernels().add_outer(data_.data(), rows_, cols_, alpha, y, x);
}

void Matrix::AddScaled(float alpha, const Matrix& other) {
  EVREC_CHECK(SameShape(other));
  float* __restrict dst = data_.data();
  const float* __restrict src = other.data_.data();
  const size_t n = data_.size();
  for (size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

void Matrix::Serialize(BinaryWriter& w) const {
  w.WriteMagic("MTRX");
  w.WriteI32(rows_);
  w.WriteI32(cols_);
  w.WriteFloatVector(data_);
}

Matrix Matrix::Deserialize(BinaryReader& r) {
  r.ExpectMagic("MTRX");
  int rows = r.ReadI32();
  int cols = r.ReadI32();
  Matrix m;
  if (!r.ok() || rows < 0 || cols < 0) return m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = r.ReadFloatVector();
  if (m.data_.size() != static_cast<size_t>(rows) * cols) {
    m = Matrix();  // corrupt; reader status already reflects short read
  }
  return m;
}

}  // namespace la
}  // namespace evrec
