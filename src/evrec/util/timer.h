// Wall-clock stopwatch for coarse phase timing in the pipeline and benches.

#ifndef EVREC_UTIL_TIMER_H_
#define EVREC_UTIL_TIMER_H_

#include <chrono>

namespace evrec {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace evrec

#endif  // EVREC_UTIL_TIMER_H_
