#include "evrec/util/csv_writer.h"

#include "evrec/util/string_util.h"

namespace evrec {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : file_(std::fopen(path.c_str(), "w")), num_columns_(header.size()) {
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for write: " + path);
    return;
  }
  WriteLine(header);
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::WriteLine(const std::vector<std::string>& fields) {
  if (!status_.ok() || file_ == nullptr) return;
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line += ',';
    // Quote fields containing separators; our numeric output never needs
    // escaping, but headers with free text might.
    if (fields[i].find_first_of(",\"\n") != std::string::npos) {
      line += '"';
      for (char c : fields[i]) {
        if (c == '"') line += '"';
        line += c;
      }
      line += '"';
    } else {
      line += fields[i];
    }
  }
  line += '\n';
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    status_ = Status::IoError("short write");
  }
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  EVREC_CHECK_EQ(fields.size(), num_columns_);
  WriteLine(fields);
}

void CsvWriter::WriteRow(const std::vector<double>& fields) {
  EVREC_CHECK_EQ(fields.size(), num_columns_);
  std::vector<std::string> text;
  text.reserve(fields.size());
  for (double v : fields) text.push_back(StrFormat("%.9g", v));
  WriteLine(text);
}

Status CsvWriter::Close() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0 && status_.ok()) {
      status_ = Status::IoError("close failed");
    }
    file_ = nullptr;
  }
  return status_;
}

}  // namespace evrec
