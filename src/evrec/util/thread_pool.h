// Fixed-size worker pool with work-stealing-free static sharding.
//
// ParallelFor(n, fn) runs fn(shard) for every shard in [0, n) and blocks
// until all shards finish. Shard s is executed by worker s % num_threads
// (the calling thread acts as worker 0), so the shard -> worker mapping is
// a pure function of (n, num_threads): no dynamic queue, no stealing, no
// scheduling nondeterminism. Callers that need results independent of the
// THREAD count as well (the trainers' determinism contract) additionally
// fix n itself and keep per-SHARD state, so only the wall-clock — never
// the arithmetic — depends on how many workers execute the shards.
//
// Exceptions thrown inside fn are captured; the one from the
// lowest-numbered failing shard is rethrown on the calling thread after
// every worker has quiesced (a worker abandons its remaining shards once
// one of them throws; other workers are unaffected).
//
// A pool with num_threads == 1 never spawns a thread: ParallelFor runs the
// shards inline on the caller, which keeps single-threaded configurations
// free of synchronization cost and trivially sanitizer-clean.
//
// Trace propagation: ParallelFor captures the caller's TraceContext and
// installs a per-shard copy (ShardTraceContext) around every fn(s) — on
// workers and on the inline path alike — so trace spans opened inside a
// shard attach to the caller's open span instead of starting a fresh
// trace at depth 0, with span ids that depend only on the shard index.

#ifndef EVREC_UTIL_THREAD_POOL_H_
#define EVREC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "evrec/util/trace_context.h"

namespace evrec {

class ThreadPool {
 public:
  // Spawns num_threads - 1 workers (the caller participates as worker 0).
  // Values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Blocks until fn(0), ..., fn(n - 1) have all returned. Reentrant calls
  // from inside fn are not supported. n <= 0 is a no-op.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  // Threads the hardware reports; used to size default pools. Never 0.
  static int HardwareThreads();

 private:
  // Runs shards worker, worker + stride, worker + 2*stride, ... of the
  // current job, capturing the first (lowest-shard) exception.
  void RunShards(int worker);
  void WorkerLoop(int worker);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  const std::function<void(int)>* job_fn_ = nullptr;  // valid while active
  TraceContext job_context_;  // caller's trace context, stable per job
  int job_shards_ = 0;
  uint64_t job_epoch_ = 0;   // bumped per ParallelFor; workers wait on it
  int active_workers_ = 0;   // workers still running the current job
  bool stopping_ = false;
  std::exception_ptr first_error_;
  int first_error_shard_ = -1;
};

}  // namespace evrec

#endif  // EVREC_UTIL_THREAD_POOL_H_
