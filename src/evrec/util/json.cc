#include "evrec/util/json.h"

#include <cctype>
#include <cstdlib>

namespace evrec {

namespace {

// Recursive-descent parser over a string view [pos, text.size()).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    Status st = ParseValue(&value, /*depth=*/0);
    if (!st.ok()) return st;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 96;

  Status Fail(const std::string& what) const {
    return Status::Corruption("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          out->kind = JsonValue::Kind::kNull;
          return Status::Ok();
        }
        return Fail("invalid keyword");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseKeyword(JsonValue* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Status::Ok();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Status::Ok();
    }
    return Fail("invalid keyword");
  }

  Status ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(start, &end);
    if (end == start) return Fail("invalid number");
    pos_ += static_cast<size_t>(end - start);
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = v;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape digit");
            }
          }
          // Our exporters only escape ASCII control characters; anything
          // wider is preserved as a replacement to keep the reader simple.
          out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      st = ParseValue(&value, depth + 1);
      if (!st.ok()) return st;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      Status st = ParseValue(&value, depth + 1);
      if (!st.ok()) return st;
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!IsObject()) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace evrec
