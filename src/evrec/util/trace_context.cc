#include "evrec/util/trace_context.h"

#include <pthread.h>

#include <atomic>
#include <cstring>

namespace evrec {

namespace {

thread_local TraceContext t_context;

std::atomic<uint64_t> g_next_trace_id{1};

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

const TraceContext& CurrentTraceContext() { return t_context; }

void SetCurrentTraceContext(const TraceContext& context) {
  t_context = context;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& context)
    : saved_(t_context) {
  t_context = context;
}

ScopedTraceContext::~ScopedTraceContext() { t_context = saved_; }

TraceContext ShardTraceContext(const TraceContext& parent, int shard) {
  TraceContext ctx = parent;
  // Disjoint sibling band per shard: a shard would have to open 2^32
  // sequential children to collide with its neighbour (or with children
  // the caller opens after the ParallelFor returns, which stay in the low
  // band because the caller's own child_seq is untouched).
  ctx.child_seq =
      parent.child_seq + ((static_cast<uint64_t>(shard) + 1) << 32);
  return ctx;
}

uint64_t NextTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

void ResetTraceIdsForTest(uint64_t next) {
  g_next_trace_id.store(next, std::memory_order_relaxed);
}

uint64_t DeriveSpanId(uint64_t trace_id, uint64_t parent_id,
                      const char* name, uint64_t ordinal) {
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, trace_id);
  hash = FnvMix(hash, parent_id);
  for (const char* p = name; *p != '\0'; ++p) {
    hash ^= static_cast<unsigned char>(*p);
    hash *= kFnvPrime;
  }
  hash = FnvMix(hash, ordinal);
  return hash == 0 ? 1 : hash;
}

int TraceThreadOrdinal() {
  static std::atomic<int> next_id{0};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

namespace {
// 16 bytes is the kernel's TASK_COMM_LEN, including the terminator.
thread_local char t_thread_name[16] = {0};
}  // namespace

void SetTraceThreadName(const char* name) {
  std::strncpy(t_thread_name, name, sizeof(t_thread_name) - 1);
  t_thread_name[sizeof(t_thread_name) - 1] = '\0';
#if defined(__linux__)
  pthread_setname_np(pthread_self(), t_thread_name);
#endif
}

const char* TraceThreadName() { return t_thread_name; }

}  // namespace evrec
