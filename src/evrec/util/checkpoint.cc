#include "evrec/util/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "evrec/util/check.h"
#include "evrec/util/crc32.h"
#include "evrec/util/logging.h"
#include "evrec/util/string_util.h"

namespace evrec {

namespace {

constexpr char kHeaderMagic[] = "EVCP";
constexpr char kSectionMagic[] = "SECT";
constexpr char kFooterMagic[] = "EVCF";

// Best-effort directory fsync: makes the rename itself durable on
// filesystems that need it. Failure is logged, not propagated — the data
// file is already synced and most failures here are EACCES on exotic
// mounts, not lost writes.
void SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  if (::fsync(fd) != 0) {
    EVREC_LOG(WARN) << "directory fsync failed for " << dir;
  }
  ::close(fd);
}

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status EnsureDir(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  // Walk the components so nested checkpoint dirs work out of the box.
  std::string built;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    built = path.substr(0, slash);
    pos = slash + 1;
    if (built.empty()) continue;  // leading '/'
    struct stat st;
    if (::stat(built.c_str(), &st) == 0) {
      if (!S_ISDIR(st.st_mode)) {
        return Status::IoError("not a directory: " + built);
      }
      continue;
    }
    if (::mkdir(built.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("mkdir failed: " + built);
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// CheckpointWriter

CheckpointWriter::CheckpointWriter(const std::string& path) : writer_(path) {
  writer_.WriteMagic(kHeaderMagic);
  writer_.WriteU32(kFormatVersion);
}

void CheckpointWriter::BeginSection(const std::string& name) {
  EVREC_CHECK(!in_section_) << "BeginSection inside an open section";
  EVREC_CHECK(!finished_) << "BeginSection after Finish";
  in_section_ = true;
  writer_.WriteMagic(kSectionMagic);
  writer_.ResetCrc();  // digest covers the name and the payload
  writer_.WriteString(name);
}

void CheckpointWriter::EndSection() {
  EVREC_CHECK(in_section_) << "EndSection without BeginSection";
  in_section_ = false;
  uint32_t crc = writer_.crc();
  section_crcs_.push_back(crc);
  writer_.WriteU32(crc);
}

BinaryWriter& CheckpointWriter::raw() {
  EVREC_CHECK(in_section_) << "checkpoint writes must be inside a section";
  return writer_;
}

Status CheckpointWriter::Finish() {
  EVREC_CHECK(!in_section_) << "Finish with an open section";
  EVREC_CHECK(!finished_) << "Finish called twice";
  finished_ = true;
  writer_.WriteMagic(kFooterMagic);
  writer_.WriteU32(static_cast<uint32_t>(section_crcs_.size()));
  // Footer digest over the little-endian section-CRC words: detects a
  // file truncated at a section boundary (sections individually valid,
  // but fewer of them than were written).
  uint32_t footer_crc = 0;
  for (uint32_t crc : section_crcs_) {
    footer_crc = Crc32(footer_crc, &crc, sizeof(crc));
  }
  writer_.WriteU32(footer_crc);
  return writer_.CloseWithSync();
}

// ---------------------------------------------------------------------------
// CheckpointReader

CheckpointReader::CheckpointReader(const std::string& path) : reader_(path) {
  reader_.ExpectMagic(kHeaderMagic);
  uint32_t version = reader_.ReadU32();
  if (ok() && version != CheckpointWriter::kFormatVersion) {
    forced_ = Status::Corruption(
        StrFormat("unsupported checkpoint version %u (want %u)", version,
                  CheckpointWriter::kFormatVersion));
  }
}

void CheckpointReader::EnterSection(const std::string& expected) {
  EVREC_CHECK(!in_section_) << "EnterSection inside an open section";
  in_section_ = true;
  reader_.ExpectMagic(kSectionMagic);
  reader_.ResetCrc();
  std::string name = reader_.ReadString();
  if (ok() && name != expected) {
    forced_ = Status::Corruption(StrFormat(
        "checkpoint section mismatch: want '%s' got '%s'", expected.c_str(),
        name.c_str()));
  }
}

void CheckpointReader::LeaveSection() {
  EVREC_CHECK(in_section_) << "LeaveSection without EnterSection";
  in_section_ = false;
  uint32_t computed = reader_.crc();
  uint32_t stored = reader_.ReadU32();
  if (ok() && computed != stored) {
    forced_ = Status::Corruption(StrFormat(
        "checkpoint section CRC mismatch: computed %08x stored %08x", computed,
        stored));
  }
  if (ok()) section_crcs_.push_back(stored);
}

BinaryReader& CheckpointReader::raw() {
  EVREC_CHECK(in_section_) << "checkpoint reads must be inside a section";
  return reader_;
}

Status CheckpointReader::Finish() {
  EVREC_CHECK(!in_section_) << "Finish with an open section";
  if (!forced_.ok()) return forced_;
  reader_.ExpectMagic(kFooterMagic);
  uint32_t num_sections = reader_.ReadU32();
  uint32_t stored_footer_crc = reader_.ReadU32();
  if (!reader_.ok()) return reader_.status();
  if (num_sections != section_crcs_.size()) {
    return Status::Corruption(
        StrFormat("checkpoint section count mismatch: footer says %u, read %u",
                  num_sections, static_cast<uint32_t>(section_crcs_.size())));
  }
  uint32_t footer_crc = 0;
  for (uint32_t crc : section_crcs_) {
    footer_crc = Crc32(footer_crc, &crc, sizeof(crc));
  }
  if (footer_crc != stored_footer_crc) {
    return Status::Corruption("checkpoint footer CRC mismatch");
  }
  if (reader_.remaining() != 0) {
    return Status::Corruption(
        StrFormat("checkpoint has %llu trailing bytes",
                  static_cast<unsigned long long>(reader_.remaining())));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Atomic commit

Status WriteFileAtomic(const std::string& path, const CheckpointWriteFn& fn,
                       IoFaultInjector* faults) {
  IoFaultInjector::Fault fault;
  if (faults != nullptr) fault = faults->Next();

  const std::string tmp = path + ".tmp";
  {
    CheckpointWriter writer(tmp);
    fn(writer);
    Status st = writer.Finish();
    if (!st.ok()) {
      std::remove(tmp.c_str());
      return st;
    }
  }

  if (fault.fail_write) {
    std::remove(tmp.c_str());
    return Status::IoError("injected write fault: commit failed for " + path);
  }
  if (fault.torn_bytes > 0) {
    // Publish a torn file: model a crash that lost the tail of the data
    // blocks. The next reader must detect this via CRC and fall back.
    uint64_t size = FileSize(tmp);
    uint64_t keep = fault.torn_bytes < size ? size - fault.torn_bytes : 0;
    if (::truncate(tmp.c_str(), static_cast<off_t>(keep)) != 0) {
      std::remove(tmp.c_str());
      return Status::IoError("injected torn write: truncate failed");
    }
  }

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed publishing " + path);
  }
  SyncDir(DirOf(path));
  if (fault.torn_bytes > 0) {
    return Status::IoError("injected torn write: published truncated " + path);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// CheckpointManager

CheckpointManager::CheckpointManager(const CheckpointOptions& options)
    : options_(options) {
  EVREC_CHECK(!options_.prefix.empty()) << "checkpoint prefix required";
  init_status_ = EnsureDir(options_.dir);
  if (init_status_.ok()) LoadManifestOrScan();
}

std::string CheckpointManager::PathForStep(int64_t step) const {
  return options_.dir + "/" +
         StrFormat("%s_%010lld.bin", options_.prefix.c_str(),
                   static_cast<long long>(step));
}

std::string CheckpointManager::ManifestPath() const {
  return options_.dir + "/" + options_.prefix + "_MANIFEST.bin";
}

Status CheckpointManager::WriteManifest() const {
  // The manifest is a convenience index; it is written atomically but
  // without fault injection — losing it degrades to the directory scan.
  return WriteFileAtomic(ManifestPath(), [this](CheckpointWriter& w) {
    w.BeginSection("manifest");
    w.raw().WriteU32(static_cast<uint32_t>(entries_.size()));
    for (const CheckpointInfo& e : entries_) {
      w.raw().WriteU64(static_cast<uint64_t>(e.step));
      w.raw().WriteF64(e.metric);
    }
    w.EndSection();
  });
}

void CheckpointManager::LoadManifestOrScan() {
  entries_.clear();
  const std::string manifest = ManifestPath();
  if (FileExists(manifest)) {
    CheckpointReader r(manifest);
    r.EnterSection("manifest");
    uint32_t n = r.raw().ReadU32();
    std::vector<CheckpointInfo> loaded;
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      CheckpointInfo info;
      info.step = static_cast<int64_t>(r.raw().ReadU64());
      info.metric = r.raw().ReadF64();
      info.path = PathForStep(info.step);
      loaded.push_back(info);
    }
    r.LeaveSection();
    if (r.ok() && r.Finish().ok()) {
      // Trust only entries whose files still exist (a crash between file
      // deletion and manifest rewrite leaves stale rows).
      for (const CheckpointInfo& e : loaded) {
        if (FileExists(e.path)) entries_.push_back(e);
      }
      std::sort(entries_.begin(), entries_.end(),
                [](const CheckpointInfo& a, const CheckpointInfo& b) {
                  return a.step < b.step;
                });
      return;
    }
    EVREC_LOG(WARN) << "checkpoint manifest unreadable ("
                    << (r.ok() ? "footer invalid" : r.status().ToString())
                    << "); rebuilding from directory scan";
  }
  // Fallback: scan for `<prefix>_<digits>.bin`. Metrics are unknown, so
  // scanned entries carry +inf and can never be selected as "best".
  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) return;
  const std::string want_prefix = options_.prefix + "_";
  while (struct dirent* ent = ::readdir(dir)) {
    std::string name = ent->d_name;
    if (name.size() <= want_prefix.size() + 4) continue;
    if (name.compare(0, want_prefix.size(), want_prefix) != 0) continue;
    if (name.compare(name.size() - 4, 4, ".bin") != 0) continue;
    std::string digits =
        name.substr(want_prefix.size(), name.size() - want_prefix.size() - 4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;  // skips the manifest and foreign files
    }
    CheckpointInfo info;
    info.step = std::atoll(digits.c_str());
    info.metric = std::numeric_limits<double>::infinity();
    info.path = options_.dir + "/" + name;
    entries_.push_back(info);
  }
  ::closedir(dir);
  std::sort(entries_.begin(), entries_.end(),
            [](const CheckpointInfo& a, const CheckpointInfo& b) {
              return a.step < b.step;
            });
}

Status CheckpointManager::Write(int64_t step, double metric,
                                const CheckpointWriteFn& fn) {
  EVREC_RETURN_IF_ERROR(init_status_);
  const std::string path = PathForStep(step);
  Status st = WriteFileAtomic(path, fn, options_.fault_injector);
  if (!st.ok()) return st;

  CheckpointInfo info;
  info.step = step;
  info.metric = metric;
  info.path = path;
  auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [step](const CheckpointInfo& e) { return e.step == step; });
  if (it != entries_.end()) {
    *it = info;
  } else {
    entries_.insert(
        std::upper_bound(entries_.begin(), entries_.end(), info,
                         [](const CheckpointInfo& a, const CheckpointInfo& b) {
                           return a.step < b.step;
                         }),
        info);
  }
  ApplyRetention();
  return WriteManifest();
}

void CheckpointManager::ApplyRetention() {
  if (options_.keep_last <= 0) return;
  if (entries_.size() <= static_cast<size_t>(options_.keep_last)) return;

  size_t best_idx = entries_.size();  // sentinel: none
  if (options_.keep_best) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (best_idx == entries_.size() ||
          entries_[i].metric < entries_[best_idx].metric) {
        best_idx = i;
      }
    }
  }
  size_t first_kept = entries_.size() - static_cast<size_t>(options_.keep_last);
  std::vector<CheckpointInfo> kept;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i >= first_kept || i == best_idx) {
      kept.push_back(entries_[i]);
    } else {
      if (std::remove(entries_[i].path.c_str()) != 0) {
        EVREC_LOG(WARN) << "failed to delete expired checkpoint "
                        << entries_[i].path;
      }
    }
  }
  entries_ = std::move(kept);
}

StatusOr<CheckpointInfo> CheckpointManager::LoadLatestValid(
    const CheckpointReadFn& fn) {
  corrupt_skipped_ = 0;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    CheckpointReader reader(it->path);
    Status st = fn(reader);
    if (st.ok() && reader.ok()) st = reader.Finish();
    if (st.ok() && reader.ok()) return *it;
    ++corrupt_skipped_;
    EVREC_LOG(WARN) << "checkpoint " << it->path << " rejected ("
                    << (st.ok() ? reader.status().ToString() : st.ToString())
                    << "); falling back to previous";
  }
  return Status::NotFound("no valid checkpoint in " + options_.dir);
}

std::vector<CheckpointInfo> CheckpointManager::ListCheckpoints() const {
  std::vector<CheckpointInfo> out(entries_.rbegin(), entries_.rend());
  return out;
}

StatusOr<CheckpointInfo> CheckpointManager::Best() const {
  if (entries_.empty()) {
    return Status::NotFound("no checkpoints in " + options_.dir);
  }
  const CheckpointInfo* best = nullptr;
  for (const CheckpointInfo& e : entries_) {
    if (best == nullptr || e.metric < best->metric) best = &e;
  }
  return *best;
}

}  // namespace evrec
