// Small string helpers shared across modules (tokenizers, CSV, report
// printing). Deliberately allocation-light; hot paths use string_view.

#ifndef EVREC_UTIL_STRING_UTIL_H_
#define EVREC_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace evrec {

// Splits `text` on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitAndTrim(std::string_view text,
                                           std::string_view delims);

// Lowercases ASCII letters in place; non-ASCII bytes pass through.
std::string AsciiToLower(std::string_view text);

// True if every byte is ASCII alphanumeric.
bool IsAsciiAlnum(std::string_view text);

// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// True if `text` starts with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

}  // namespace evrec

#endif  // EVREC_UTIL_STRING_UTIL_H_
