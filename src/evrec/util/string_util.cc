#include "evrec/util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace evrec {

std::vector<std::string_view> SplitAndTrim(std::string_view text,
                                           std::string_view delims) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    bool is_delim =
        i == text.size() || delims.find(text[i]) != std::string_view::npos;
    if (is_delim) {
      if (i > start) out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool IsAsciiAlnum(std::string_view text) {
  for (char c : text) {
    if (!std::isalnum(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace evrec
