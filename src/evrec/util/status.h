// Status / StatusOr: lightweight error propagation for fallible operations
// (file IO, model deserialization, user-supplied configuration). Modeled on
// the Abseil / RocksDB pattern; the library does not throw exceptions.

#ifndef EVREC_UTIL_STATUS_H_
#define EVREC_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "evrec/util/check.h"

namespace evrec {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kFailedPrecondition,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
};

// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

// Value-type error carrier. Cheap to copy when OK (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// StatusOr<T>: either a value or a non-OK Status. Access to the value of a
// failed StatusOr is a fatal error (EVREC_CHECK).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : payload_(std::move(status)) {  // NOLINT
    EVREC_CHECK(!std::get<Status>(payload_).ok())
        << "StatusOr constructed from OK status without a value";
  }
  StatusOr(T value) : payload_(std::move(value)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  Status status() const& {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }
  Status status() && {
    if (ok()) return Status::Ok();
    return std::move(std::get<Status>(payload_));
  }

  const T& value() const& {
    EVREC_CHECK(ok()) << "value() on failed StatusOr: " << status().ToString();
    return std::get<T>(payload_);
  }
  T& value() & {
    EVREC_CHECK(ok()) << "value() on failed StatusOr: " << status().ToString();
    return std::get<T>(payload_);
  }
  T&& value() && {
    EVREC_CHECK(ok()) << "value() on failed StatusOr: " << status().ToString();
    return std::move(std::get<T>(payload_));
  }

  // Returns the held value, or `default_value` when this holds an error.
  T value_or(T default_value) const& {
    return ok() ? std::get<T>(payload_) : std::move(default_value);
  }
  T value_or(T default_value) && {
    return ok() ? std::move(std::get<T>(payload_))
                : std::move(default_value);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> payload_;
};

// Propagates a non-OK status to the caller.
#define EVREC_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::evrec::Status _evrec_status = (expr);    \
    if (!_evrec_status.ok()) return _evrec_status; \
  } while (0)

}  // namespace evrec

#endif  // EVREC_UTIL_STATUS_H_
