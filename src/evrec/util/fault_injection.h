// Training-side fault injection — the util sibling of serve::FaultInjector
// (PR 1), aimed at the artifact-durability path instead of the request
// path. Two pieces:
//
//   IoFaultInjector   draws one seeded decision per checkpoint commit:
//                     fail the write outright (disk error) or publish a
//                     torn file (the tail chopped off, modelling a crash
//                     after rename but before the data blocks hit disk on
//                     a filesystem without ordered journaling). A replay
//                     with the same seed injects the identical sequence,
//                     so recovery tests are deterministic.
//
//   CrashPoints       named process-wide trigger points. Tests arm a
//                     point ("trainer.epoch_end", N); the Nth time the
//                     training loop passes the hook it aborts as if the
//                     process had been preempted, leaving whatever
//                     checkpoints were already committed. Resuming from
//                     those checkpoints must then reproduce the
//                     uninterrupted run bit for bit.
//
// Both are no-ops when not configured, so production paths pay one branch.

#ifndef EVREC_UTIL_FAULT_INJECTION_H_
#define EVREC_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "evrec/util/rng.h"

namespace evrec {

struct IoFaultConfig {
  double write_error_rate = 0.0;  // P(commit fails with IoError)
  double torn_write_rate = 0.0;   // P(published file is truncated)
  uint32_t max_torn_bytes = 64;   // 1..N bytes chopped from the tail
  uint64_t seed = 2017;
};

class IoFaultInjector {
 public:
  explicit IoFaultInjector(const IoFaultConfig& config)
      : config_(config), rng_(config.seed, /*stream=*/83) {}

  struct Fault {
    bool fail_write = false;  // commit reports IoError, nothing published
    uint64_t torn_bytes = 0;  // truncate the published file by this much
  };

  // Draws the decision for the next commit. Consumes a fixed number of
  // draws regardless of outcome so the sequence stays aligned across
  // configuration tweaks (same discipline as serve::FaultInjector).
  Fault Next();

  uint64_t decisions() const { return decisions_; }
  const IoFaultConfig& config() const { return config_; }

 private:
  IoFaultConfig config_;
  Rng rng_;
  uint64_t decisions_ = 0;
};

// Registry of named crash points. Thread-safe; hooks in library code call
// Fire() which is false until a test arms the point. Firing is one-shot:
// once triggered, the point disarms (a resumed run does not re-crash).
class CrashPoints {
 public:
  static CrashPoints* Global();

  // Arms `name` to fire on the `after_hits`-th call to Fire(name)
  // (1-based; after_hits <= 0 disarms).
  void Arm(const std::string& name, int after_hits);

  // Counts a hit; returns true exactly once, when the armed threshold is
  // reached. Unarmed points always return false.
  bool Fire(const std::string& name);

  // Disarms everything and clears hit counts (test isolation).
  void Reset();

 private:
  struct Point {
    int after_hits = 0;  // 0 = disarmed
    int hits = 0;
    bool fired = false;
  };

  std::mutex mu_;
  std::map<std::string, Point> points_;
};

}  // namespace evrec

#endif  // EVREC_UTIL_FAULT_INJECTION_H_
