// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (data generation, weight
// initialization, SGD shuffling, GBDT subsampling, Gibbs sampling) draws
// from an explicitly seeded Rng so that experiments are reproducible
// bit-for-bit across runs. The core generator is PCG32 (O'Neill 2014):
// small state, good statistical quality, cheap to fork into independent
// streams.

#ifndef EVREC_UTIL_RNG_H_
#define EVREC_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "evrec/util/binary_io.h"
#include "evrec/util/check.h"

namespace evrec {

// Complete generator state. Two Rngs with equal states produce identical
// draw sequences forever; checkpoints persist this so a resumed training
// run replays the exact stochastic trajectory of an uninterrupted one.
struct RngState {
  uint64_t state = 0;
  uint64_t inc = 0;

  bool operator==(const RngState& other) const {
    return state == other.state && inc == other.inc;
  }
  bool operator!=(const RngState& other) const { return !(*this == other); }
};

class Rng {
 public:
  // Seeds the generator. `stream` selects one of 2^63 independent sequences.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1)
      : state_(0), inc_((stream << 1u) | 1u) {
    NextU32();
    state_ += seed;
    NextU32();
  }

  // Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  uint64_t NextU64() {
    return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  }

  // Uniform integer in [0, bound). Uses Lemire-style rejection to avoid
  // modulo bias. bound must be > 0.
  uint32_t UniformU32(uint32_t bound) {
    EVREC_CHECK_GT(bound, 0u);
    uint32_t threshold = (~bound + 1u) % bound;
    while (true) {
      uint32_t r = NextU32();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    EVREC_CHECK_LE(lo, hi);
    return lo + static_cast<int>(
                    UniformU32(static_cast<uint32_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1) with full 53-bit mantissa resolution.
  double UniformDouble() {
    uint64_t hi = NextU32() >> 5;  // 27 bits
    uint64_t lo = NextU32() >> 6;  // 26 bits
    return static_cast<double>((hi << 26) | lo) *
           (1.0 / 9007199254740992.0);  // 2^-53
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  // Bernoulli(p).
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Standard normal via Box-Muller (no cached second value: keeps the
  // generator state a pure function of draw count).
  double Normal() {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  // Exponential with the given rate (mean 1/rate).
  double Exponential(double rate) {
    EVREC_CHECK_GT(rate, 0.0);
    double u = UniformDouble();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / rate;
  }

  // Gamma(shape, 1) via Marsaglia-Tsang; used to build Dirichlet draws.
  double Gamma(double shape) {
    EVREC_CHECK_GT(shape, 0.0);
    if (shape < 1.0) {
      // Boost via Gamma(shape + 1) * U^{1/shape}.
      double u = UniformDouble();
      if (u < 1e-300) u = 1e-300;
      return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    double d = shape - 1.0 / 3.0;
    double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
      double x = Normal();
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      double u = UniformDouble();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
      if (u < 1e-300) u = 1e-300;
      if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return d * v;
      }
    }
  }

  // Symmetric Dirichlet(alpha) over `dim` categories.
  std::vector<double> Dirichlet(double alpha, int dim) {
    EVREC_CHECK_GT(dim, 0);
    std::vector<double> out(static_cast<size_t>(dim));
    double sum = 0.0;
    for (auto& x : out) {
      x = Gamma(alpha);
      sum += x;
    }
    if (sum <= 0.0) sum = 1.0;
    for (auto& x : out) x /= sum;
    return out;
  }

  // Samples an index from unnormalized non-negative weights.
  int Categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    EVREC_CHECK_GT(total, 0.0);
    double r = UniformDouble() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return static_cast<int>(i);
    }
    return static_cast<int>(weights.size()) - 1;
  }

  // Zipf-like popularity rank sample over [0, n): P(i) ~ 1/(i+1)^s.
  // Uses inverse-CDF over a precomputable distribution; for small n the
  // direct loop is fine and keeps this header-only.
  int Zipf(int n, double s) {
    EVREC_CHECK_GT(n, 0);
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += std::pow(i + 1.0, -s);
    double r = UniformDouble() * total;
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
      acc += std::pow(i + 1.0, -s);
      if (r < acc) return i;
    }
    return n - 1;
  }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformU32(static_cast<uint32_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Forks an independent generator; child streams never collide with the
  // parent sequence because PCG streams are parameterized by `inc_`.
  Rng Fork(uint64_t stream_tag) {
    return Rng(NextU64(), stream_tag * 2654435761ULL + 0x9e3779b9ULL);
  }

  // ---- state capture / checkpointing ----

  RngState SaveState() const { return {state_, inc_}; }
  void RestoreState(const RngState& s) {
    state_ = s.state;
    inc_ = s.inc;
  }
  static Rng FromState(const RngState& s) {
    Rng r;
    r.RestoreState(s);
    return r;
  }

  void Serialize(BinaryWriter& w) const {
    w.WriteMagic("RNGS");
    w.WriteU64(state_);
    w.WriteU64(inc_);
  }
  // Restores into *this; on corrupt input the reader status is set and the
  // generator is left untouched.
  void Deserialize(BinaryReader& r) {
    r.ExpectMagic("RNGS");
    uint64_t state = r.ReadU64();
    uint64_t inc = r.ReadU64();
    if (r.ok()) RestoreState({state, inc});
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace evrec

#endif  // EVREC_UTIL_RNG_H_
