// Tiny CSV emitter used by the bench harnesses to dump figure series
// (P/R curves) so they can be plotted outside the repo. Values are written
// with enough precision to round-trip floats.

#ifndef EVREC_UTIL_CSV_WRITER_H_
#define EVREC_UTIL_CSV_WRITER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "evrec/util/status.h"

namespace evrec {

class CsvWriter {
 public:
  // Opens `path` and writes the header row. Check status() before use.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  // Writes one data row; the field count must match the header.
  void WriteRow(const std::vector<std::string>& fields);
  void WriteRow(const std::vector<double>& fields);

  Status Close();
  const Status& status() const { return status_; }

 private:
  void WriteLine(const std::vector<std::string>& fields);

  std::FILE* file_;
  size_t num_columns_;
  Status status_;
};

}  // namespace evrec

#endif  // EVREC_UTIL_CSV_WRITER_H_
