#include "evrec/util/fault_injection.h"

namespace evrec {

IoFaultInjector::Fault IoFaultInjector::Next() {
  ++decisions_;
  Fault fault;
  // Fixed draw order keeps the stream aligned across outcomes.
  bool fail = rng_.Bernoulli(config_.write_error_rate);
  bool torn = rng_.Bernoulli(config_.torn_write_rate);
  uint32_t chop =
      1u + rng_.UniformU32(config_.max_torn_bytes > 0 ? config_.max_torn_bytes
                                                      : 1u);
  if (fail) {
    fault.fail_write = true;
  } else if (torn) {
    fault.torn_bytes = chop;
  }
  return fault;
}

CrashPoints* CrashPoints::Global() {
  static CrashPoints* instance = new CrashPoints();
  return instance;
}

void CrashPoints::Arm(const std::string& name, int after_hits) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[name];
  p.after_hits = after_hits > 0 ? after_hits : 0;
  p.hits = 0;
  p.fired = false;
}

bool CrashPoints::Fire(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return false;
  Point& p = it->second;
  if (p.after_hits <= 0 || p.fired) return false;
  if (++p.hits >= p.after_hits) {
    p.fired = true;
    return true;
  }
  return false;
}

void CrashPoints::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

}  // namespace evrec
