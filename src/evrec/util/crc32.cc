#include "evrec/util/crc32.h"

namespace evrec {

namespace {

// 256-entry table for polynomial 0xEDB88320, built once on first use.
struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(uint32_t crc, const void* data, size_t n) {
  static const Crc32Table table;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace evrec
