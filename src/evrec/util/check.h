// Assertion macros for programmer errors.
//
// EVREC_CHECK(cond) aborts the process with a diagnostic when `cond` is
// false. These are enabled in all build modes: the library is used for
// research reproduction, where a loud failure beats silent corruption.
// Use Status/StatusOr (status.h) for errors caused by external input.

#ifndef EVREC_UTIL_CHECK_H_
#define EVREC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace evrec {
namespace internal {

// Formats and prints a fatal check failure, then aborts. Kept out-of-line
// in spirit (small static) so the macro body stays cheap on the happy path.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "[EVREC FATAL] %s:%d: check failed: %s %s\n", file,
               line, expr, message.c_str());
  std::fflush(stderr);
  std::abort();
}

// Stream collector so call sites can write EVREC_CHECK(x) << "detail".
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace evrec

#define EVREC_CHECK(cond)                                              \
  if (cond) {                                                          \
  } else                                                               \
    ::evrec::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define EVREC_CHECK_EQ(a, b) EVREC_CHECK((a) == (b))
#define EVREC_CHECK_NE(a, b) EVREC_CHECK((a) != (b))
#define EVREC_CHECK_LT(a, b) EVREC_CHECK((a) < (b))
#define EVREC_CHECK_LE(a, b) EVREC_CHECK((a) <= (b))
#define EVREC_CHECK_GT(a, b) EVREC_CHECK((a) > (b))
#define EVREC_CHECK_GE(a, b) EVREC_CHECK((a) >= (b))

#endif  // EVREC_UTIL_CHECK_H_
