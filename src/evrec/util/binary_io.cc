#include "evrec/util/binary_io.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "evrec/util/crc32.h"
#include "evrec/util/string_util.h"

namespace evrec {

namespace {
// Secondary cap on element counts, applied after the remaining-file-size
// bound: even a length prefix consistent with the file size is refused
// beyond this (no legitimate artifact stores 2^28 elements in one field).
constexpr uint32_t kMaxVectorElements = 1u << 28;
}  // namespace

BinaryWriter::BinaryWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "wb")) {
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for write: " + path);
  }
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryWriter::WriteRaw(const void* data, size_t n) {
  if (!status_.ok() || file_ == nullptr) return;
  if (std::fwrite(data, 1, n, file_) != n) {
    status_ = Status::IoError("short write");
    return;
  }
  crc_ = Crc32(crc_, data, n);
  bytes_written_ += n;
}

void BinaryWriter::WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  WriteRaw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  WriteRaw(v.data(), v.size() * sizeof(double));
}

void BinaryWriter::WriteI32Vector(const std::vector<int32_t>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  WriteRaw(v.data(), v.size() * sizeof(int32_t));
}

void BinaryWriter::WriteMagic(const char tag[4]) { WriteRaw(tag, 4); }

Status BinaryWriter::Close() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0 && status_.ok()) {
      status_ = Status::IoError("close failed");
    }
    file_ = nullptr;
  }
  return status_;
}

Status BinaryWriter::CloseWithSync() {
  if (file_ != nullptr && status_.ok()) {
    if (std::fflush(file_) != 0) {
      status_ = Status::IoError("flush failed");
    } else if (::fsync(::fileno(file_)) != 0) {
      status_ = Status::IoError("fsync failed");
    }
  }
  return Close();
}

BinaryReader::BinaryReader(const std::string& path)
    : file_(std::fopen(path.c_str(), "rb")) {
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for read: " + path);
    return;
  }
  struct stat st;
  if (::fstat(::fileno(file_), &st) == 0) {
    file_size_ = static_cast<uint64_t>(st.st_size);
  }
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryReader::ReadRaw(void* data, size_t n) {
  if (!status_.ok() || file_ == nullptr) {
    std::memset(data, 0, n);
    return;
  }
  if (std::fread(data, 1, n, file_) != n) {
    status_ = Status::Corruption("short read");
    std::memset(data, 0, n);
    return;
  }
  crc_ = Crc32(crc_, data, n);
  offset_ += n;
}

bool BinaryReader::CheckLengthPrefix(uint32_t n, size_t elem_size,
                                     const char* what) {
  if (!status_.ok()) return false;
  // Bound by the bytes actually left first: a hostile prefix in a torn or
  // bit-flipped file must fail cleanly, not attempt the allocation.
  uint64_t need = static_cast<uint64_t>(n) * elem_size;
  if (need > remaining()) {
    status_ = Status::Corruption(StrFormat(
        "%s length %u exceeds remaining file bytes (%llu needed, %llu left)",
        what, n, static_cast<unsigned long long>(need),
        static_cast<unsigned long long>(remaining())));
    return false;
  }
  if (n > kMaxVectorElements) {
    status_ = Status::Corruption(StrFormat("%s length implausible", what));
    return false;
  }
  return true;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

int32_t BinaryReader::ReadI32() {
  int32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

float BinaryReader::ReadF32() {
  float v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

double BinaryReader::ReadF64() {
  double v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  uint32_t n = ReadU32();
  if (!CheckLengthPrefix(n, 1, "string")) return {};
  std::string s(n, '\0');
  ReadRaw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::ReadFloatVector() {
  uint32_t n = ReadU32();
  if (!CheckLengthPrefix(n, sizeof(float), "float vector")) return {};
  std::vector<float> v(n);
  ReadRaw(v.data(), n * sizeof(float));
  return v;
}

std::vector<double> BinaryReader::ReadDoubleVector() {
  uint32_t n = ReadU32();
  if (!CheckLengthPrefix(n, sizeof(double), "double vector")) return {};
  std::vector<double> v(n);
  ReadRaw(v.data(), n * sizeof(double));
  return v;
}

std::vector<int32_t> BinaryReader::ReadI32Vector() {
  uint32_t n = ReadU32();
  if (!CheckLengthPrefix(n, sizeof(int32_t), "i32 vector")) return {};
  std::vector<int32_t> v(n);
  ReadRaw(v.data(), n * sizeof(int32_t));
  return v;
}

void BinaryReader::ExpectMagic(const char tag[4]) {
  char buf[4] = {0, 0, 0, 0};
  ReadRaw(buf, 4);
  if (status_.ok() && std::memcmp(buf, tag, 4) != 0) {
    status_ = Status::Corruption(
        StrFormat("magic mismatch: want %.4s got %.4s", tag, buf));
  }
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

uint64_t FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) return 0;
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace evrec
