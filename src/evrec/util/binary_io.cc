#include "evrec/util/binary_io.h"

#include <sys/stat.h>

#include <cstring>

#include "evrec/util/string_util.h"

namespace evrec {

namespace {
// Refuses absurd element counts so a corrupt length prefix cannot trigger a
// multi-gigabyte allocation.
constexpr uint32_t kMaxVectorElements = 1u << 28;
}  // namespace

BinaryWriter::BinaryWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "wb")) {
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for write: " + path);
  }
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryWriter::WriteRaw(const void* data, size_t n) {
  if (!status_.ok() || file_ == nullptr) return;
  if (std::fwrite(data, 1, n, file_) != n) {
    status_ = Status::IoError("short write");
  }
}

void BinaryWriter::WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  WriteRaw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  WriteRaw(v.data(), v.size() * sizeof(double));
}

void BinaryWriter::WriteI32Vector(const std::vector<int32_t>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  WriteRaw(v.data(), v.size() * sizeof(int32_t));
}

void BinaryWriter::WriteMagic(const char tag[4]) { WriteRaw(tag, 4); }

Status BinaryWriter::Close() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0 && status_.ok()) {
      status_ = Status::IoError("close failed");
    }
    file_ = nullptr;
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path)
    : file_(std::fopen(path.c_str(), "rb")) {
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for read: " + path);
  }
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryReader::ReadRaw(void* data, size_t n) {
  if (!status_.ok() || file_ == nullptr) {
    std::memset(data, 0, n);
    return;
  }
  if (std::fread(data, 1, n, file_) != n) {
    status_ = Status::Corruption("short read");
    std::memset(data, 0, n);
  }
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

int32_t BinaryReader::ReadI32() {
  int32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

float BinaryReader::ReadF32() {
  float v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

double BinaryReader::ReadF64() {
  double v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  uint32_t n = ReadU32();
  if (n > kMaxVectorElements) {
    status_ = Status::Corruption("string length implausible");
    return {};
  }
  std::string s(n, '\0');
  ReadRaw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::ReadFloatVector() {
  uint32_t n = ReadU32();
  if (n > kMaxVectorElements) {
    status_ = Status::Corruption("vector length implausible");
    return {};
  }
  std::vector<float> v(n);
  ReadRaw(v.data(), n * sizeof(float));
  return v;
}

std::vector<double> BinaryReader::ReadDoubleVector() {
  uint32_t n = ReadU32();
  if (n > kMaxVectorElements) {
    status_ = Status::Corruption("vector length implausible");
    return {};
  }
  std::vector<double> v(n);
  ReadRaw(v.data(), n * sizeof(double));
  return v;
}

std::vector<int32_t> BinaryReader::ReadI32Vector() {
  uint32_t n = ReadU32();
  if (n > kMaxVectorElements) {
    status_ = Status::Corruption("vector length implausible");
    return {};
  }
  std::vector<int32_t> v(n);
  ReadRaw(v.data(), n * sizeof(int32_t));
  return v;
}

void BinaryReader::ExpectMagic(const char tag[4]) {
  char buf[4] = {0, 0, 0, 0};
  ReadRaw(buf, 4);
  if (status_.ok() && std::memcmp(buf, tag, 4) != 0) {
    status_ = Status::Corruption(
        StrFormat("magic mismatch: want %.4s got %.4s", tag, buf));
  }
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace evrec
