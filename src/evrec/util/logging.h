// Minimal leveled logger writing to stderr.
//
// Usage:  EVREC_LOG(INFO) << "trained epoch " << epoch;
// Levels: DEBUG < INFO < WARN < ERROR. The global threshold defaults to INFO
// and can be changed with SetLogLevel (e.g. tests silence INFO chatter).

#ifndef EVREC_UTIL_LOGGING_H_
#define EVREC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace evrec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace evrec

#define EVREC_LOG_DEBUG ::evrec::LogLevel::kDebug
#define EVREC_LOG_INFO ::evrec::LogLevel::kInfo
#define EVREC_LOG_WARN ::evrec::LogLevel::kWarn
#define EVREC_LOG_ERROR ::evrec::LogLevel::kError

#define EVREC_LOG(severity) \
  ::evrec::internal::LogMessage(EVREC_LOG_##severity, __FILE__, __LINE__)

#endif  // EVREC_UTIL_LOGGING_H_
