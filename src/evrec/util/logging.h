// Minimal leveled logger writing to stderr.
//
// Usage:  EVREC_LOG(INFO) << "trained epoch " << epoch;
// Levels: DEBUG < INFO < WARN < ERROR. The global threshold defaults to INFO
// and can be changed with SetLogLevel (e.g. tests silence INFO chatter).
//
// Multithread-safe: each record is assembled in full in the LogMessage
// destructor and emitted with a single locked fwrite, so concurrent
// threads never interleave within a line. Every line carries an ISO-8601
// UTC timestamp and a compact per-thread id:
//
//   [I 2026-08-06T12:34:56.789Z t1 trainer.cc:65] rep epoch 0 ...
//
// EVREC_LOG_EVERY_N(severity, n) emits only every n-th hit of that call
// site (thread-safe occurrence counting) — use it for per-candidate /
// per-row warnings that would otherwise flood stderr under a fault storm.

#ifndef EVREC_UTIL_LOGGING_H_
#define EVREC_UTIL_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

namespace evrec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Redirects log output to `stream` (tests capture and inspect records
// this way); nullptr restores the default, stderr.
void SetLogStream(std::FILE* stream);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  // Rate-limited variant: enabled only when the call site's occurrence
  // count (pre-increment value) is a multiple of `every_n`.
  LogMessage(LogLevel level, const char* file, int line,
             std::atomic<uint64_t>& occurrences, uint64_t every_n);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace evrec

#define EVREC_LOG_DEBUG ::evrec::LogLevel::kDebug
#define EVREC_LOG_INFO ::evrec::LogLevel::kInfo
#define EVREC_LOG_WARN ::evrec::LogLevel::kWarn
#define EVREC_LOG_ERROR ::evrec::LogLevel::kError

#define EVREC_LOG(severity) \
  ::evrec::internal::LogMessage(EVREC_LOG_##severity, __FILE__, __LINE__)

// The immediately-invoked lambda gives each expansion site its own static
// occurrence counter while keeping the whole macro a single expression, so
// it composes with un-braced if/else exactly like EVREC_LOG.
#define EVREC_LOG_EVERY_N(severity, n)                               \
  ::evrec::internal::LogMessage(                                     \
      EVREC_LOG_##severity, __FILE__, __LINE__,                      \
      []() -> ::std::atomic<::std::uint64_t>& {                      \
        static ::std::atomic<::std::uint64_t> occurrences{0};        \
        return occurrences;                                          \
      }(),                                                           \
      static_cast<::std::uint64_t>(n))

#endif  // EVREC_UTIL_LOGGING_H_
