// Request-scoped trace identity, propagated across threads.
//
// A TraceContext names the span under which new work should attach: the
// trace it belongs to, the innermost open span (the parent of any span
// opened next), the depth that next span will record, and the sibling
// ordinal it will be assigned. The context is thread-local; obs::ScopedSpan
// pushes/pops it, and ThreadPool::ParallelFor captures the caller's context
// and re-installs a per-shard copy in every worker, so spans opened inside
// parallel shards report their true parent instead of starting a fresh
// trace at depth 0 on each worker thread.
//
// Identifiers are deterministic, never random: trace ids come from a
// process-wide counter (requests and training runs open roots sequentially,
// so the sequence is stable across runs), and span ids are a pure hash of
// (trace id, parent id, name, sibling ordinal). ParallelFor gives shard s
// the sibling band s << 32, so the ids — like everything else in the
// engine — are identical for any thread count. This file lives in util
// (not obs) because ThreadPool needs it and obs already depends on util.

#ifndef EVREC_UTIL_TRACE_CONTEXT_H_
#define EVREC_UTIL_TRACE_CONTEXT_H_

#include <atomic>
#include <cstdint>

namespace evrec {

// One link of the symbolic stack the sampling profiler charges costs to:
// the chain of open span names from the root down to the innermost span
// (obs/profile.h). A frame is owned by the ScopedSpan that opened it and
// outlives every child — including children running on pool workers,
// because ParallelFor blocks the caller until all shards return. The
// accumulator pointers let a closing child charge its duration and its
// allocation window back to the owning span without the owner having to
// poll; they point at atomics inside the owner so cross-thread children
// (shards) can add concurrently, and the sums stay thread-count
// independent because addition commutes.
struct ProfileFrame {
  const char* name = nullptr;            // span name (string literal)
  const ProfileFrame* parent = nullptr;  // enclosing span's frame
  std::atomic<int64_t>* child_micros = nullptr;
  std::atomic<uint64_t>* child_alloc_bytes = nullptr;
  std::atomic<uint64_t>* child_alloc_count = nullptr;
  int thread = 0;  // TraceThreadOrdinal() of the opening thread
};

struct TraceContext {
  uint64_t trace_id = 0;   // 0 = no active trace; next span starts one
  uint64_t span_id = 0;    // innermost open span; 0 = next span is a root
  int depth = 0;           // depth the next span opened will record
  uint64_t child_seq = 0;  // sibling ordinal assigned to the next child
  // Innermost open span's profile frame (null when no span is open).
  // Propagated across ParallelFor exactly like the ids above, so costs
  // incurred inside a shard fold into the caller's symbolic stack.
  const ProfileFrame* frame = nullptr;
};

// The calling thread's current context (a zero context when no span is
// open on this thread).
const TraceContext& CurrentTraceContext();
void SetCurrentTraceContext(const TraceContext& context);

// RAII install/restore, used by ParallelFor around each shard.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

// The context shard `shard` of a ParallelFor runs under: the caller's
// parent span, with sibling ordinals moved into a disjoint per-shard band
// so ids depend on the shard index, never on which worker executed it.
TraceContext ShardTraceContext(const TraceContext& parent, int shard);

// Next process-wide trace id (1-based, monotone). Roots are opened from
// sequential call sites, so the assignment order — and therefore every id
// in a replay — is reproducible.
uint64_t NextTraceId();
// Rewinds the trace-id counter (test isolation only).
void ResetTraceIdsForTest(uint64_t next = 1);

// Deterministic span id: FNV-1a over (trace, parent, name, ordinal),
// nudged away from 0 (0 means "no span").
uint64_t DeriveSpanId(uint64_t trace_id, uint64_t parent_id,
                      const char* name, uint64_t ordinal);

// Compact monotone per-thread ordinal (first thread to ask is 1), used to
// assign exporter tracks. Display-only: analysis must never depend on it.
int TraceThreadOrdinal();

// Names the calling thread for log records and debugger/TSan/procfs views
// ("evrec-w3"): copies the name into thread-local storage (truncated to 15
// chars, the kernel limit) and applies it to the OS thread. Display-only,
// like the ordinal.
void SetTraceThreadName(const char* name);
// The name set on the calling thread, or "" when it was never named.
const char* TraceThreadName();

}  // namespace evrec

#endif  // EVREC_UTIL_TRACE_CONTEXT_H_
