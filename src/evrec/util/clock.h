// Injectable clock. Every time-dependent policy in the library — serve's
// deadline budgets, retry backoff, circuit-breaker cool-down, and the
// observability layer's trace spans and epoch timers — reads time through
// this interface so tests and fault-replay runs can drive a simulated
// clock deterministically instead of sleeping for real.
//
// Lives in util (not serve) because obs/ and serve/ both depend on it;
// serve/clock.h re-exports these names into evrec::serve for existing
// callers.

#ifndef EVREC_UTIL_CLOCK_H_
#define EVREC_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace evrec {

class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() = 0;

  // Blocks (or simulates blocking) for `micros`; used by retry backoff.
  virtual void SleepMicros(int64_t micros) = 0;
};

// Real wall clock backed by steady_clock.
class SystemClock : public Clock {
 public:
  int64_t NowMicros() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void SleepMicros(int64_t micros) override {
    if (micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
    }
  }

  static SystemClock* Instance() {
    static SystemClock clock;
    return &clock;
  }
};

// Manually advanced clock: sleeps advance simulated time instantly, so a
// replay of thousands of faulted requests runs in milliseconds and is
// bit-reproducible.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() override { return now_; }
  void SleepMicros(int64_t micros) override {
    if (micros > 0) now_ += micros;
  }
  void Advance(int64_t micros) { now_ += micros; }

 private:
  int64_t now_;
};

// Per-request deadline: a fixed budget measured from construction.
class DeadlineBudget {
 public:
  DeadlineBudget(Clock* clock, int64_t budget_micros)
      : clock_(clock), deadline_(clock->NowMicros() + budget_micros) {}

  int64_t RemainingMicros() const { return deadline_ - clock_->NowMicros(); }
  bool Exhausted() const { return RemainingMicros() <= 0; }
  int64_t deadline_micros() const { return deadline_; }

 private:
  Clock* clock_;
  int64_t deadline_;
};

}  // namespace evrec

#endif  // EVREC_UTIL_CLOCK_H_
