#include "evrec/util/thread_pool.h"

#include <algorithm>

namespace evrec {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  job_ready_.notify_all();
  for (auto& t : workers_) t.join();
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::RunShards(int worker) {
  // job_fn_ and job_shards_ are stable for the duration of the job: the
  // caller only clears them after every worker has decremented
  // active_workers_.
  const std::function<void(int)>& fn = *job_fn_;
  const int n = job_shards_;
  for (int s = worker; s < n; s += num_threads_) {
    try {
      fn(s);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_shard_ < 0 || s < first_error_shard_) {
        first_error_ = std::current_exception();
        first_error_shard_ = s;
      }
      return;  // abandon this worker's remaining shards
    }
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ready_.wait(lock, [&] {
        return stopping_ || job_epoch_ != seen_epoch;
      });
      if (stopping_) return;
      seen_epoch = job_epoch_;
    }
    RunShards(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) job_done_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (num_threads_ == 1 || n == 1) {
    // Inline fast path: no synchronization, exceptions propagate directly.
    for (int s = 0; s < n; ++s) fn(s);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_shards_ = n;
    active_workers_ = num_threads_ - 1;
    first_error_ = nullptr;
    first_error_shard_ = -1;
    ++job_epoch_;
  }
  job_ready_.notify_all();
  RunShards(/*worker=*/0);

  std::unique_lock<std::mutex> lock(mu_);
  job_done_.wait(lock, [&] { return active_workers_ == 0; });
  job_fn_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    first_error_shard_ = -1;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace evrec
