#include "evrec/util/thread_pool.h"

#include <algorithm>
#include <cstdio>

namespace evrec {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  job_ready_.notify_all();
  for (auto& t : workers_) t.join();
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::RunShards(int worker) {
  // job_fn_ and job_shards_ are stable for the duration of the job: the
  // caller only clears them after every worker has decremented
  // active_workers_.
  const std::function<void(int)>& fn = *job_fn_;
  const int n = job_shards_;
  for (int s = worker; s < n; s += num_threads_) {
    try {
      // Each shard runs under the caller's trace context so spans opened
      // inside attach to the caller's open span (same banding as the
      // inline path: ids never depend on which worker ran the shard).
      ScopedTraceContext trace_scope(ShardTraceContext(job_context_, s));
      fn(s);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_shard_ < 0 || s < first_error_shard_) {
        first_error_ = std::current_exception();
        first_error_shard_ = s;
      }
      return;  // abandon this worker's remaining shards
    }
  }
}

void ThreadPool::WorkerLoop(int worker) {
  // Name the OS thread so profiles, TSan reports, /proc views, and log
  // records identify pool workers instead of anonymous tids.
  char name[16];
  std::snprintf(name, sizeof(name), "evrec-w%d", worker);
  SetTraceThreadName(name);
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ready_.wait(lock, [&] {
        return stopping_ || job_epoch_ != seen_epoch;
      });
      if (stopping_) return;
      seen_epoch = job_epoch_;
    }
    RunShards(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) job_done_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  const TraceContext caller_context = CurrentTraceContext();
  // After the job, the caller's sibling counter advances past every band
  // this job handed out, so spans opened by the NEXT ParallelFor under the
  // same parent (e.g. per-batch shard spans in a training loop) derive
  // distinct ids. Deterministic: depends only on n, never on threads.
  TraceContext after_job = caller_context;
  after_job.child_seq =
      caller_context.child_seq + static_cast<uint64_t>(n);
  if (num_threads_ == 1 || n == 1) {
    // Inline fast path: no synchronization, exceptions propagate directly.
    // Shards still get their banded trace contexts so span ids are
    // identical to what a multi-threaded pool would assign.
    for (int s = 0; s < n; ++s) {
      ScopedTraceContext trace_scope(ShardTraceContext(caller_context, s));
      fn(s);
    }
    SetCurrentTraceContext(after_job);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_context_ = caller_context;
    job_shards_ = n;
    active_workers_ = num_threads_ - 1;
    first_error_ = nullptr;
    first_error_shard_ = -1;
    ++job_epoch_;
  }
  job_ready_.notify_all();
  RunShards(/*worker=*/0);

  std::unique_lock<std::mutex> lock(mu_);
  job_done_.wait(lock, [&] { return active_workers_ == 0; });
  job_fn_ = nullptr;
  SetCurrentTraceContext(after_job);
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    first_error_shard_ = -1;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace evrec
