// Binary serialization primitives for model checkpoints and cached
// experiment artifacts. Format: little-endian POD fields, length-prefixed
// strings/vectors, with a caller-supplied magic tag checked on read so a
// truncated or mismatched file surfaces as Status::Corruption instead of
// garbage weights.

#ifndef EVREC_UTIL_BINARY_IO_H_
#define EVREC_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "evrec/util/status.h"

namespace evrec {

// Streaming writer. Not thread-safe. Fails fast: the first IO error sticks
// and every later call is a no-op, so callers check status() once at Close.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteDoubleVector(const std::vector<double>& v);
  void WriteI32Vector(const std::vector<int32_t>& v);

  // Writes a 4-byte section tag (e.g. "EVRC"); the reader verifies it.
  void WriteMagic(const char tag[4]);

  Status Close();
  const Status& status() const { return status_; }

 private:
  void WriteRaw(const void* data, size_t n);

  std::FILE* file_;
  Status status_;
};

// Streaming reader mirroring BinaryWriter.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  ~BinaryReader();

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  uint32_t ReadU32();
  uint64_t ReadU64();
  int32_t ReadI32();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<double> ReadDoubleVector();
  std::vector<int32_t> ReadI32Vector();

  // Reads 4 bytes and fails with Corruption if they differ from `tag`.
  void ExpectMagic(const char tag[4]);

  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

 private:
  void ReadRaw(void* data, size_t n);

  std::FILE* file_;
  Status status_;
};

// True if a regular file exists at `path`.
bool FileExists(const std::string& path);

}  // namespace evrec

#endif  // EVREC_UTIL_BINARY_IO_H_
