// Binary serialization primitives for model checkpoints and cached
// experiment artifacts. Format: little-endian POD fields, length-prefixed
// strings/vectors, with a caller-supplied magic tag checked on read so a
// truncated or mismatched file surfaces as Status::Corruption instead of
// garbage weights.
//
// Both streams keep a resettable running CRC-32 of the bytes they move;
// the checkpoint section layer (util/checkpoint.h) resets it at a section
// boundary and compares the digest against the stored one, so any bit
// flip inside a section is caught without a second pass over the file.
// The reader additionally knows the file size and refuses any length
// prefix that exceeds the bytes actually left, so a corrupt prefix can
// never trigger a multi-gigabyte allocation.

#ifndef EVREC_UTIL_BINARY_IO_H_
#define EVREC_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "evrec/util/status.h"

namespace evrec {

// Streaming writer. Not thread-safe. Fails fast: the first IO error sticks
// and every later call is a no-op, so callers check status() once at Close.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteDoubleVector(const std::vector<double>& v);
  void WriteI32Vector(const std::vector<int32_t>& v);

  // Writes a 4-byte section tag (e.g. "EVRC"); the reader verifies it.
  void WriteMagic(const char tag[4]);

  // Running CRC-32 of every byte written since the last ResetCrc (or
  // construction). The checkpoint layer brackets each section with these.
  uint32_t crc() const { return crc_; }
  void ResetCrc() { crc_ = 0; }
  uint64_t bytes_written() const { return bytes_written_; }

  Status Close();
  // Close with durability: fflush + fsync before fclose, so the bytes are
  // on stable storage when this returns OK. Required before an atomic
  // rename is allowed to publish the file (see util/checkpoint.h).
  Status CloseWithSync();
  const Status& status() const { return status_; }

 private:
  void WriteRaw(const void* data, size_t n);

  std::FILE* file_;
  Status status_;
  uint32_t crc_ = 0;
  uint64_t bytes_written_ = 0;
};

// Streaming reader mirroring BinaryWriter.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  ~BinaryReader();

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  uint32_t ReadU32();
  uint64_t ReadU64();
  int32_t ReadI32();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<double> ReadDoubleVector();
  std::vector<int32_t> ReadI32Vector();

  // Reads 4 bytes and fails with Corruption if they differ from `tag`.
  void ExpectMagic(const char tag[4]);

  // Running CRC-32 of every byte read since the last ResetCrc; mirrors the
  // writer so section digests can be recomputed while streaming.
  uint32_t crc() const { return crc_; }
  void ResetCrc() { crc_ = 0; }

  // Total size of the file and the bytes not yet consumed. Length
  // prefixes are validated against remaining() before any allocation.
  uint64_t file_size() const { return file_size_; }
  uint64_t remaining() const {
    return offset_ <= file_size_ ? file_size_ - offset_ : 0;
  }

  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

  // Marks the stream corrupt from a higher layer's structural check (e.g.
  // a deserialized shape that does not match its target). Sticky like IO
  // errors: the first failure wins.
  void MarkCorrupt(std::string msg) {
    if (status_.ok()) status_ = Status::Corruption(std::move(msg));
  }

 private:
  void ReadRaw(void* data, size_t n);
  // Validates a count prefix of `n` elements of `elem_size` bytes against
  // the bytes left in the file; sets Corruption and returns false when the
  // prefix is hostile (prevents the multi-GB allocation on corrupt input).
  bool CheckLengthPrefix(uint32_t n, size_t elem_size, const char* what);

  std::FILE* file_;
  Status status_;
  uint32_t crc_ = 0;
  uint64_t file_size_ = 0;
  uint64_t offset_ = 0;
};

// True if a regular file exists at `path`.
bool FileExists(const std::string& path);

// Size in bytes of the regular file at `path`, or 0 if it does not exist.
uint64_t FileSize(const std::string& path);

}  // namespace evrec

#endif  // EVREC_UTIL_BINARY_IO_H_
