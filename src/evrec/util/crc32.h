// CRC-32 (IEEE 802.3 / zlib polynomial 0xEDB88320), incremental.
//
// Used by the checkpoint subsystem to checksum serialized sections so a
// torn write or a flipped bit in a cold artifact surfaces as
// Status::Corruption at load time instead of as garbage weights. The
// interface is the standard running-crc contract: start from 0, feed
// ranges in order, equal inputs give equal digests on every platform
// (byte-order independent — the table is defined over bytes).

#ifndef EVREC_UTIL_CRC32_H_
#define EVREC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace evrec {

// Extends `crc` (0 for a fresh digest) with `n` bytes at `data`.
uint32_t Crc32(uint32_t crc, const void* data, size_t n);

}  // namespace evrec

#endif  // EVREC_UTIL_CRC32_H_
