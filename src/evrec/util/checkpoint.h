// Crash-safe checkpoint subsystem.
//
// Three layers, bottom up:
//
//  1. CheckpointWriter / CheckpointReader — a checksummed-section format
//     on top of BinaryWriter/BinaryReader. A checkpoint file is
//
//         "EVCP" u32 version
//         repeat: "SECT" string name <typed payload> u32 crc32
//         "EVCF" u32 num_sections u32 footer_crc
//
//     Each section's CRC-32 covers its name and payload bytes; the footer
//     CRC covers the per-section digests, so a file that validates has
//     every byte accounted for. Any bit flip or truncation surfaces as
//     Status::Corruption on read — never as garbage weights.
//
//  2. WriteFileAtomic — the durable commit protocol shared by checkpoints
//     and the rep-model disk cache: serialize to `<path>.tmp`, fsync the
//     file, rename into place, best-effort fsync the directory. A crash
//     at any instant leaves either the old file or the new file, never a
//     half-written one at the published path.
//
//  3. CheckpointManager — a directory of numbered checkpoints plus a
//     manifest. Write() commits `<prefix>_<step>.bin` atomically and
//     applies retention (keep the newest K plus the best-metric one);
//     LoadLatestValid() walks newest→oldest, CRC-verifying each file, and
//     returns the first that loads cleanly — a truncated or corrupt
//     latest checkpoint falls back to its predecessor instead of
//     poisoning the run. If the manifest itself is unreadable the manager
//     rebuilds its view by scanning the directory.
//
// The manager is not thread-safe; training loops drive it from the
// coordinator thread. An optional IoFaultInjector (util/fault_injection.h)
// makes commits fail or publish torn files deterministically, so recovery
// is tested the same way serving degradation is.

#ifndef EVREC_UTIL_CHECKPOINT_H_
#define EVREC_UTIL_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "evrec/util/binary_io.h"
#include "evrec/util/fault_injection.h"
#include "evrec/util/status.h"

namespace evrec {

// Creates `path` (and missing parents) as a directory; OK if it exists.
Status EnsureDir(const std::string& path);

// Section-writing wrapper. Typed payload writes go through raw(); the
// wrapper brackets them with checksummed section boundaries. Misuse
// (unbalanced Begin/End, writes outside a section) is an EVREC_CHECK.
class CheckpointWriter {
 public:
  static constexpr uint32_t kFormatVersion = 1;

  explicit CheckpointWriter(const std::string& path);

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  void BeginSection(const std::string& name);
  void EndSection();

  // The underlying typed writer, valid only between Begin/EndSection.
  BinaryWriter& raw();

  // Writes the footer and closes with fsync. Must be called exactly once,
  // with no open section.
  Status Finish();

  const Status& status() const { return writer_.status(); }

 private:
  BinaryWriter writer_;
  std::vector<uint32_t> section_crcs_;
  bool in_section_ = false;
  bool finished_ = false;
};

// Mirrors CheckpointWriter. Callers deserialize into temporaries and only
// commit them after Finish() returns OK — section CRCs are verified at
// LeaveSection, but a file is trusted only once the footer checks out.
class CheckpointReader {
 public:
  explicit CheckpointReader(const std::string& path);

  CheckpointReader(const CheckpointReader&) = delete;
  CheckpointReader& operator=(const CheckpointReader&) = delete;

  // Fails with Corruption if the next section's name differs from
  // `expected`.
  void EnterSection(const std::string& expected);
  // Verifies the section CRC against the stored digest.
  void LeaveSection();

  BinaryReader& raw();

  // Verifies the footer (section count + footer CRC) and that the file
  // has no trailing bytes.
  Status Finish();

  const Status& status() const {
    return forced_.ok() ? reader_.status() : forced_;
  }
  bool ok() const { return reader_.ok() && forced_.ok(); }

 private:
  BinaryReader reader_;
  // Structural failures (version/section-name/CRC mismatch) detected by
  // this layer; sticky like the underlying reader status.
  Status forced_;
  std::vector<uint32_t> section_crcs_;
  bool in_section_ = false;
};

using CheckpointWriteFn = std::function<void(CheckpointWriter&)>;
// Returns OK only when the payload deserialized cleanly; any non-OK reader
// status after the callback also invalidates the file.
using CheckpointReadFn = std::function<Status(CheckpointReader&)>;

// The atomic commit protocol (layer 2 above). `faults`, when set, may
// deterministically fail the commit or truncate the published file.
Status WriteFileAtomic(const std::string& path, const CheckpointWriteFn& fn,
                       IoFaultInjector* faults = nullptr);

struct CheckpointInfo {
  int64_t step = -1;
  // Validation metric at `step`; lower is better. Checkpoints recovered by
  // directory scan (manifest lost) carry +infinity — never "best".
  double metric = 0.0;
  std::string path;
};

struct CheckpointOptions {
  std::string dir;
  std::string prefix = "ckpt";
  int keep_last = 3;       // newest K checkpoints retained
  bool keep_best = true;   // additionally retain the best-metric one
  IoFaultInjector* fault_injector = nullptr;  // not owned; test hook
};

class CheckpointManager {
 public:
  explicit CheckpointManager(const CheckpointOptions& options);

  // Non-OK when the directory could not be created; Write() refuses work
  // in that state.
  const Status& init_status() const { return init_status_; }

  // Serializes via `fn` and commits atomically, then updates the manifest
  // and applies retention.
  Status Write(int64_t step, double metric, const CheckpointWriteFn& fn);

  // Newest→oldest: CRC-verifies each checkpoint and hands it to `fn`;
  // returns the first that loads cleanly. Invalid files are skipped with a
  // warning, not deleted. NotFound when no valid checkpoint exists.
  // corrupt_skipped() reports how many files the last call rejected.
  StatusOr<CheckpointInfo> LoadLatestValid(const CheckpointReadFn& fn);

  // Checkpoints rejected (corrupt/truncated/unreadable) during the most
  // recent LoadLatestValid call; trainers surface this in the obs registry
  // (the util layer cannot depend on obs).
  int corrupt_skipped() const { return corrupt_skipped_; }

  // Known checkpoints, newest first.
  std::vector<CheckpointInfo> ListCheckpoints() const;

  // Best-metric checkpoint, or NotFound.
  StatusOr<CheckpointInfo> Best() const;

  const CheckpointOptions& options() const { return options_; }

 private:
  std::string PathForStep(int64_t step) const;
  std::string ManifestPath() const;
  Status WriteManifest() const;
  void LoadManifestOrScan();
  void ApplyRetention();

  CheckpointOptions options_;
  Status init_status_;
  std::vector<CheckpointInfo> entries_;  // ascending by step
  int corrupt_skipped_ = 0;
};

}  // namespace evrec

#endif  // EVREC_UTIL_CHECKPOINT_H_
