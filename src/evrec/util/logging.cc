#include "evrec/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace evrec {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level),
      file_(file),
      line_(line) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level_), Basename(file_),
               line_, stream_.str().c_str());
}

}  // namespace internal
}  // namespace evrec
