#include "evrec/util/logging.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

#include "evrec/util/trace_context.h"

namespace evrec {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<std::FILE*> g_log_stream{nullptr};  // nullptr -> stderr

// Serializes the final fwrite so records from concurrent threads never
// interleave. stdio's own stream lock would also do, but one record can
// legitimately exceed stdio's internal buffering; an explicit mutex keeps
// the guarantee independent of libc behaviour.
std::mutex g_write_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

// Compact monotone thread ids: the first thread to log is t1, the next t2…
// (std::thread::id prints as an opaque 15-digit handle; a small ordinal is
// what a human diffing two interleaved request logs actually wants.)
int ThreadOrdinal() {
  static std::atomic<int> next_id{0};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

// ISO-8601 UTC with millisecond precision: 2026-08-06T12:34:56.789Z
void FormatTimestamp(char* buf, size_t buf_size) {
  using namespace std::chrono;
  auto now = system_clock::now();
  std::time_t secs = system_clock::to_time_t(now);
  int millis = static_cast<int>(
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000);
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  size_t n = std::strftime(buf, buf_size, "%Y-%m-%dT%H:%M:%S", &tm_utc);
  std::snprintf(buf + n, buf_size - n, ".%03dZ", millis);
}

bool LevelEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_log_level.load(std::memory_order_relaxed);
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogStream(std::FILE* stream) {
  g_log_stream.store(stream, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(LevelEnabled(level)), level_(level), file_(file), line_(line) {}

LogMessage::LogMessage(LogLevel level, const char* file, int line,
                       std::atomic<uint64_t>& occurrences, uint64_t every_n)
    : LogMessage(level, file, line) {
  // Count every hit (even suppressed-by-level ones) so the sampling period
  // is stable regardless of the level threshold flipping mid-run.
  uint64_t seen = occurrences.fetch_add(1, std::memory_order_relaxed);
  if (every_n > 1 && seen % every_n != 0) enabled_ = false;
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  char timestamp[40];
  FormatTimestamp(timestamp, sizeof(timestamp));
  // Assemble the entire record first; emit with one locked write.
  std::ostringstream record;
  record << '[' << LevelTag(level_) << ' ' << timestamp << " t"
         << ThreadOrdinal();
  // Named threads (pool workers: "evrec-w3") log as t4/evrec-w3 — the
  // ordinal keeps records diffable, the name says who the thread is.
  const char* thread_name = TraceThreadName();
  if (thread_name[0] != '\0') record << '/' << thread_name;
  record << ' ' << Basename(file_) << ':' << line_ << "] " << stream_.str()
         << '\n';
  std::string line = record.str();
  std::FILE* out = g_log_stream.load(std::memory_order_relaxed);
  if (out == nullptr) out = stderr;
  {
    std::lock_guard<std::mutex> lock(g_write_mutex);
    std::fwrite(line.data(), 1, line.size(), out);
    std::fflush(out);
  }
}

}  // namespace internal
}  // namespace evrec
