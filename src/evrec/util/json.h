// Minimal JSON reader for the library's own exporters (Chrome trace
// dumps, BENCH_*.json, metric snapshots). Full standard grammar — objects,
// arrays, strings with escapes, numbers, true/false/null — parsed into a
// plain value tree; hostile input (truncation, deep nesting, bad escapes)
// surfaces as Status::Corruption, never UB. Object keys keep file order;
// duplicate keys keep both entries (Find returns the first).

#ifndef EVREC_UTIL_JSON_H_
#define EVREC_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "evrec/util/status.h"

namespace evrec {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsBool() const { return kind == Kind::kBool; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsObject() const { return kind == Kind::kObject; }

  // First member with this key, or nullptr (also nullptr on non-objects).
  const JsonValue* Find(const std::string& key) const;

  // number_value when a number, `fallback` otherwise.
  double NumberOr(double fallback) const {
    return IsNumber() ? number_value : fallback;
  }
};

// Parses exactly one JSON document (trailing whitespace allowed, trailing
// garbage rejected).
StatusOr<JsonValue> ParseJson(const std::string& text);

}  // namespace evrec

#endif  // EVREC_UTIL_JSON_H_
