// Numerically careful scalar helpers used across the NN, GBDT, and topic
// model code. All reductions that mix exponentials use the max-shift trick.

#ifndef EVREC_UTIL_MATH_UTIL_H_
#define EVREC_UTIL_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "evrec/util/check.h"

namespace evrec {

// Numerically stable log(sum_i exp(x_i)). Empty input is a caller bug.
inline double LogSumExp(const std::vector<double>& xs) {
  EVREC_CHECK(!xs.empty());
  double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

inline float LogSumExp(const float* xs, int n) {
  EVREC_CHECK_GT(n, 0);
  float m = xs[0];
  for (int i = 1; i < n; ++i) m = std::max(m, xs[i]);
  float sum = 0.0f;
  for (int i = 0; i < n; ++i) sum += std::exp(xs[i] - m);
  return m + std::log(sum);
}

// Logistic sigmoid with clamping so exp never overflows.
inline double Sigmoid(double x) {
  if (x >= 0) {
    double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(x);
  return z / (1.0 + z);
}

// log(sigmoid(x)) computed without catastrophic cancellation.
inline double LogSigmoid(double x) {
  if (x >= 0) return -std::log1p(std::exp(-x));
  return x - std::log1p(std::exp(x));
}

// Clamps `p` into (eps, 1-eps) before taking logs in cross-entropy code.
inline double ClampProb(double p, double eps = 1e-12) {
  return std::min(1.0 - eps, std::max(eps, p));
}

// Binary cross-entropy for a single observation.
inline double CrossEntropy(double label, double p) {
  p = ClampProb(p);
  return -(label * std::log(p) + (1.0 - label) * std::log(1.0 - p));
}

// Squared L2 norm / dot product over float spans.
inline double SquaredNorm(const float* x, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += static_cast<double>(x[i]) * x[i];
  return s;
}

inline double Dot(const float* a, const float* b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

// Cosine similarity with a zero-vector guard: returns 0 when either side
// has near-zero norm (a degenerate but reachable case for empty documents).
inline double CosineSimilarity(const float* a, const float* b, int n) {
  double na = SquaredNorm(a, n);
  double nb = SquaredNorm(b, n);
  if (na < 1e-24 || nb < 1e-24) return 0.0;
  return Dot(a, b, n) / std::sqrt(na * nb);
}

// Mean of a double vector (0 for empty input).
inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

// Euclidean distance between 2-d points; used for geo features.
inline double EuclideanDistance2D(double x1, double y1, double x2,
                                  double y2) {
  double dx = x1 - x2;
  double dy = y1 - y2;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace evrec

#endif  // EVREC_UTIL_MATH_UTIL_H_
