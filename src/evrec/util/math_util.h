// Numerically careful scalar helpers used across the NN, GBDT, and topic
// model code. All reductions that mix exponentials use the max-shift trick.

#ifndef EVREC_UTIL_MATH_UTIL_H_
#define EVREC_UTIL_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "evrec/util/check.h"

namespace evrec {

// Numerically stable log(sum_i exp(x_i)). Empty input is a caller bug.
inline double LogSumExp(const std::vector<double>& xs) {
  EVREC_CHECK(!xs.empty());
  double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

// Float log-sum-exp, kept entirely in single precision: the max scan, the
// shifted exponentials, and the final log all use the float overloads of
// std::exp / std::log so the result is a pure float computation (no silent
// promotion to double and back, which would make the value depend on which
// translation unit inlined it).
inline float LogSumExp(const float* xs, int n) {
  EVREC_CHECK_GT(n, 0);
  float m = xs[0];
  for (int i = 1; i < n; ++i) m = std::max(m, xs[i]);
  if (!std::isfinite(m)) return m;
  float sum = 0.0f;
  for (int i = 0; i < n; ++i) sum += std::exp(xs[i] - m);
  return m + std::log(sum);
}

// Fused max + shifted-exp-sum state for single-pass ("online")
// log-sum-exp: feed values with Update, read max/argmax/sum at any point.
// When a new maximum arrives the partial sum is rescaled by
// exp(old_max - new_max), so the invariant sum == sum_i exp(x_i - max)
// holds after every step. One pass instead of the classic two (max scan,
// then exp sum) — this is what the soft-max pooling hot loop uses, where
// the two-pass form walks the pre-pool matrix column-wise (strided) twice.
struct OnlineLogSumExp {
  float max = -std::numeric_limits<float>::infinity();
  float sum = 0.0f;  // sum of exp(x - max) over values seen so far
  int argmax = -1;
  int count = 0;

  void Update(float x) {
    if (x > max) {
      sum = sum * std::exp(max - x) + 1.0f;  // exp(max-x) is 0 on first hit
      max = x;
      argmax = count;
    } else {
      sum += std::exp(x - max);
    }
    ++count;
  }

  // log sum_i exp(x_i); requires at least one Update.
  float Value() const { return max + std::log(sum); }
};

// Single-pass float log-sum-exp over a span (fused max+sum variant of
// LogSumExp above). Empty input is a caller bug.
inline float FusedLogSumExp(const float* xs, int n) {
  EVREC_CHECK_GT(n, 0);
  OnlineLogSumExp lse;
  for (int i = 0; i < n; ++i) lse.Update(xs[i]);
  return lse.Value();
}

// Logistic sigmoid with clamping so exp never overflows.
inline double Sigmoid(double x) {
  if (x >= 0) {
    double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(x);
  return z / (1.0 + z);
}

// log(sigmoid(x)) computed without catastrophic cancellation.
inline double LogSigmoid(double x) {
  if (x >= 0) return -std::log1p(std::exp(-x));
  return x - std::log1p(std::exp(x));
}

// Clamps `p` into (eps, 1-eps) before taking logs in cross-entropy code.
inline double ClampProb(double p, double eps = 1e-12) {
  return std::min(1.0 - eps, std::max(eps, p));
}

// Binary cross-entropy for a single observation.
inline double CrossEntropy(double label, double p) {
  p = ClampProb(p);
  return -(label * std::log(p) + (1.0 - label) * std::log(1.0 - p));
}

// Squared L2 norm / dot product over float spans. Two independent double
// accumulators per reduction: strict FP will not reassociate a single
// running sum, so the lanes are explicit (see la/vec_ops.h).
inline double SquaredNorm(const float* __restrict x, int n) {
  double s0 = 0.0, s1 = 0.0;
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    s0 += static_cast<double>(x[i]) * x[i];
    s1 += static_cast<double>(x[i + 1]) * x[i + 1];
  }
  for (; i < n; ++i) s0 += static_cast<double>(x[i]) * x[i];
  return s0 + s1;
}

inline double Dot(const float* __restrict a, const float* __restrict b,
                  int n) {
  double s0 = 0.0, s1 = 0.0;
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    s0 += static_cast<double>(a[i]) * b[i];
    s1 += static_cast<double>(a[i + 1]) * b[i + 1];
  }
  for (; i < n; ++i) s0 += static_cast<double>(a[i]) * b[i];
  return s0 + s1;
}

// Fused single-pass <a,b>, |a|^2, |b|^2 — the cosine-similarity kernel
// reads both spans once instead of three times.
inline void DotAndNorms(const float* __restrict a, const float* __restrict b,
                        int n, double* dot, double* na2, double* nb2) {
  double d0 = 0.0, d1 = 0.0, a0 = 0.0, a1 = 0.0, b0 = 0.0, b1 = 0.0;
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    d0 += static_cast<double>(a[i]) * b[i];
    d1 += static_cast<double>(a[i + 1]) * b[i + 1];
    a0 += static_cast<double>(a[i]) * a[i];
    a1 += static_cast<double>(a[i + 1]) * a[i + 1];
    b0 += static_cast<double>(b[i]) * b[i];
    b1 += static_cast<double>(b[i + 1]) * b[i + 1];
  }
  for (; i < n; ++i) {
    d0 += static_cast<double>(a[i]) * b[i];
    a0 += static_cast<double>(a[i]) * a[i];
    b0 += static_cast<double>(b[i]) * b[i];
  }
  *dot = d0 + d1;
  *na2 = a0 + a1;
  *nb2 = b0 + b1;
}

// Cosine similarity with a zero-vector guard: returns 0 when either side
// has near-zero norm (a degenerate but reachable case for empty documents).
inline double CosineSimilarity(const float* a, const float* b, int n) {
  double dot, na, nb;
  DotAndNorms(a, b, n, &dot, &na, &nb);
  if (na < 1e-24 || nb < 1e-24) return 0.0;
  return dot / std::sqrt(na * nb);
}

// Mean of a double vector (0 for empty input).
inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

// Euclidean distance between 2-d points; used for geo features.
inline double EuclideanDistance2D(double x1, double y1, double x2,
                                  double y2) {
  double dx = x1 - x2;
  double dy = y1 - y2;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace evrec

#endif  // EVREC_UTIL_MATH_UTIL_H_
