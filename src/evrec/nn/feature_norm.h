// Fixed feature standardization: y = (x - mean) / std, calibrated once
// from a sample of training documents and frozen.
//
// Why it exists: pooling over the many windows of a long document
// concentrates (extreme-value statistics) — each channel's pooled value
// lands near a channel-dependent but document-INDEPENDENT constant, so all
// document vectors share one dominant direction, every cosine starts
// near 1, and the contrastive loss stalls in a collapsed equilibrium.
// Removing the corpus mean and rescaling per channel leaves exactly the
// document-specific fluctuation, at unit scale, which is the signal the
// joint model needs. Production recommenders apply the same input
// standardization; the paper does not discuss it (its Torch stack
// presumably normalized inputs).
//
// The layer is a frozen affine map: backward multiplies by 1/std.

#ifndef EVREC_NN_FEATURE_NORM_H_
#define EVREC_NN_FEATURE_NORM_H_

#include <vector>

#include "evrec/util/binary_io.h"
#include "evrec/util/check.h"

namespace evrec {
namespace nn {

class FeatureNorm {
 public:
  // Identity transform of the given width until Calibrate is called.
  explicit FeatureNorm(int dim = 0)
      : mean_(static_cast<size_t>(dim), 0.0f),
        inv_std_(static_cast<size_t>(dim), 1.0f) {}

  int dim() const { return static_cast<int>(mean_.size()); }
  bool calibrated() const { return calibrated_; }

  // Fits mean/std per dimension from sample rows (each of size dim()).
  // Dimensions with near-zero variance get inv_std = 1 (pass-through).
  void Calibrate(const std::vector<std::vector<float>>& samples);

  // y[i] = (x[i] - mean[i]) * inv_std[i]; in-place allowed (y == x).
  void Forward(const float* x, float* y) const;

  // dx[i] = dy[i] * inv_std[i]; in-place allowed.
  void Backward(const float* dy, float* dx) const;

  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& inv_std() const { return inv_std_; }

  void Serialize(BinaryWriter& w) const;
  static FeatureNorm Deserialize(BinaryReader& r);

 private:
  bool calibrated_ = false;
  std::vector<float> mean_;
  std::vector<float> inv_std_;
};

}  // namespace nn
}  // namespace evrec

#endif  // EVREC_NN_FEATURE_NORM_H_
