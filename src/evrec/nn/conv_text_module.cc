#include "evrec/nn/conv_text_module.h"

#include <algorithm>
#include <cmath>

#include "evrec/la/vec_ops.h"

namespace evrec {
namespace nn {

const char* PoolTypeName(PoolType type) {
  switch (type) {
    case PoolType::kLogSumExp:
      return "logsumexp";
    case PoolType::kMax:
      return "max";
    case PoolType::kMean:
      return "mean";
  }
  return "unknown";
}

ConvTextModule::ConvTextModule(std::shared_ptr<EmbeddingTable> table,
                               int window_size, int out_dim, PoolType pool)
    : table_(std::move(table)),
      window_size_(window_size),
      pool_(pool),
      conv_(window_size * (table_ ? table_->dim() : 1), out_dim) {
  EVREC_CHECK(table_ != nullptr);
  EVREC_CHECK_GT(window_size, 0);
  EVREC_CHECK_GT(out_dim, 0);
}

void ConvTextModule::Forward(const text::EncodedText& input,
                             ConvContext* ctx) const {
  const int emb = table_->dim();
  const int k = out_dim();
  const int d = window_size_;
  ctx->token_ids = input.token_ids;
  ctx->word_index = input.word_index;
  ctx->output.assign(static_cast<size_t>(k), 0.0f);
  ctx->argmax_window.assign(static_cast<size_t>(k), 0);

  const int n = input.size();
  if (n == 0) {
    ctx->empty = true;
    ctx->num_windows = 0;
    return;
  }
  ctx->empty = false;
  const int num_windows = std::max(1, n - d + 1);
  ctx->num_windows = num_windows;
  ctx->windows = la::Matrix(num_windows, d * emb);
  ctx->pre_pool = la::Matrix(num_windows, k);

  for (int i = 0; i < num_windows; ++i) {
    float* win = ctx->windows.Row(i);
    for (int p = 0; p < d; ++p) {
      int tok_pos = i + p;
      if (tok_pos < n) {
        const float* v = table_->Vector(input.token_ids[tok_pos]);
        std::copy(v, v + emb, win + p * emb);
      }
      // else: already zero (right padding for n < d)
    }
    conv_.Forward(win, ctx->pre_pool.Row(i));
  }

  // Pool each output dimension over windows.
  for (int c = 0; c < k; ++c) {
    float max_v = ctx->pre_pool.At(0, c);
    int argmax = 0;
    for (int i = 1; i < num_windows; ++i) {
      float v = ctx->pre_pool.At(i, c);
      if (v > max_v) {
        max_v = v;
        argmax = i;
      }
    }
    ctx->argmax_window[c] = argmax;
    switch (pool_) {
      case PoolType::kLogSumExp: {
        // Log-MEAN-exp: the paper's log-sum-exp shifted by -log(#windows).
        // The raw sum adds the same +log(n) offset to every output
        // dimension, which (a) points all pooled vectors toward the
        // all-ones direction, making initial cosines ~1 regardless of
        // content, and (b) saturates the downstream tanh layers so
        // gradients vanish. The shift is constant per example, leaves the
        // soft-max semantics and the max-window attribution unchanged, and
        // keeps the gradient field identical.
        float sum = 0.0f;
        for (int i = 0; i < num_windows; ++i) {
          sum += std::exp(ctx->pre_pool.At(i, c) - max_v);
        }
        ctx->output[c] =
            max_v + std::log(sum / static_cast<float>(num_windows));
        break;
      }
      case PoolType::kMax:
        ctx->output[c] = max_v;
        break;
      case PoolType::kMean: {
        float sum = 0.0f;
        for (int i = 0; i < num_windows; ++i) {
          sum += ctx->pre_pool.At(i, c);
        }
        ctx->output[c] = sum / static_cast<float>(num_windows);
        break;
      }
    }
  }
}

void ConvTextModule::Backward(const float* dout, const ConvContext& ctx) {
  if (ctx.empty) return;
  const int emb = table_->dim();
  const int k = out_dim();
  const int d = window_size_;
  const int n = static_cast<int>(ctx.token_ids.size());
  const int num_windows = ctx.num_windows;

  // d(pool)/d(pre_pool) per window.
  la::Matrix dpre(num_windows, k);
  for (int c = 0; c < k; ++c) {
    switch (pool_) {
      case PoolType::kLogSumExp: {
        // Softmax over windows for this channel. output = lse - log(n),
        // so the true log-sum-exp is output + log(n).
        float lse = ctx.output[c] +
                    std::log(static_cast<float>(num_windows));
        for (int i = 0; i < num_windows; ++i) {
          float alpha = std::exp(ctx.pre_pool.At(i, c) - lse);
          dpre.At(i, c) = dout[c] * alpha;
        }
        break;
      }
      case PoolType::kMax:
        dpre.At(ctx.argmax_window[c], c) = dout[c];
        break;
      case PoolType::kMean: {
        float g = dout[c] / static_cast<float>(num_windows);
        for (int i = 0; i < num_windows; ++i) dpre.At(i, c) = g;
        break;
      }
    }
  }

  std::vector<float> dwindow(static_cast<size_t>(d) * emb);
  for (int i = 0; i < num_windows; ++i) {
    la::Zero(dwindow.data(), d * emb);
    conv_.Backward(ctx.windows.Row(i), dpre.Row(i), dwindow.data());
    for (int p = 0; p < d; ++p) {
      int tok_pos = i + p;
      if (tok_pos >= n) break;
      table_->AccumulateGrad(ctx.token_ids[tok_pos], dwindow.data() + p * emb);
    }
  }
}

void ConvTextModule::Serialize(BinaryWriter& w) const {
  w.WriteMagic("CONV");
  w.WriteI32(window_size_);
  w.WriteI32(static_cast<int>(pool_));
  conv_.Serialize(w);
}

ConvTextModule ConvTextModule::Deserialize(
    BinaryReader& r, std::shared_ptr<EmbeddingTable> table) {
  r.ExpectMagic("CONV");
  int window_size = r.ReadI32();
  int pool = r.ReadI32();
  LinearLayer conv = LinearLayer::Deserialize(r);
  int out_dim = conv.out_dim();
  ConvTextModule m(std::move(table), window_size > 0 ? window_size : 1,
                   out_dim, static_cast<PoolType>(pool));
  if (r.ok()) {
    m.conv_ = std::move(conv);
  }
  return m;
}

}  // namespace nn
}  // namespace evrec
