#include "evrec/nn/conv_text_module.h"

#include <algorithm>
#include <cmath>

#include "evrec/la/vec_ops.h"

namespace evrec {
namespace nn {

const char* PoolTypeName(PoolType type) {
  switch (type) {
    case PoolType::kLogSumExp:
      return "logsumexp";
    case PoolType::kMax:
      return "max";
    case PoolType::kMean:
      return "mean";
  }
  return "unknown";
}

ConvTextModule::ConvTextModule(std::shared_ptr<EmbeddingTable> table,
                               int window_size, int out_dim, PoolType pool)
    : table_(std::move(table)),
      window_size_(window_size),
      pool_(pool),
      conv_(window_size * (table_ ? table_->dim() : 1), out_dim) {
  EVREC_CHECK(table_ != nullptr);
  EVREC_CHECK_GT(window_size, 0);
  EVREC_CHECK_GT(out_dim, 0);
}

void ConvTextModule::Forward(const text::EncodedText& input,
                             ConvContext* ctx) const {
  const int emb = table_->dim();
  const int k = out_dim();
  const int d = window_size_;
  ctx->token_ids = input.token_ids;
  ctx->word_index = input.word_index;
  ctx->output.assign(static_cast<size_t>(k), 0.0f);
  ctx->argmax_window.assign(static_cast<size_t>(k), 0);

  const int n = input.size();
  if (n == 0) {
    ctx->empty = true;
    ctx->num_windows = 0;
    return;
  }
  ctx->empty = false;
  const int num_windows = std::max(1, n - d + 1);
  ctx->num_windows = num_windows;
  ctx->windows.Resize(num_windows, d * emb);
  ctx->pre_pool.Resize(num_windows, k);

  for (int i = 0; i < num_windows; ++i) {
    float* win = ctx->windows.Row(i);
    for (int p = 0; p < d; ++p) {
      int tok_pos = i + p;
      if (tok_pos < n) {
        const float* v = table_->Vector(input.token_ids[tok_pos]);
        std::copy(v, v + emb, win + p * emb);
      }
      // else: already zero (right padding for n < d)
    }
    conv_.Forward(win, ctx->pre_pool.Row(i));
  }

  // Pool over windows. All variants walk pre_pool row-major in a single
  // pass (the old code walked every column twice, strided).
  const float inv_windows = 1.0f / static_cast<float>(num_windows);
  switch (pool_) {
    case PoolType::kLogSumExp: {
      // Log-MEAN-exp: the paper's log-sum-exp shifted by -log(#windows).
      // The raw sum adds the same +log(n) offset to every output
      // dimension, which (a) points all pooled vectors toward the
      // all-ones direction, making initial cosines ~1 regardless of
      // content, and (b) saturates the downstream tanh layers so
      // gradients vanish. The shift is constant per example, leaves the
      // soft-max semantics and the max-window attribution unchanged, and
      // keeps the gradient field identical. The per-channel running
      // max+sum state is the fused OnlineLogSumExp recurrence.
      ctx->pool_state.assign(static_cast<size_t>(k), OnlineLogSumExp());
      OnlineLogSumExp* states = ctx->pool_state.data();
      for (int i = 0; i < num_windows; ++i) {
        const float* row = ctx->pre_pool.Row(i);
        for (int c = 0; c < k; ++c) states[c].Update(row[c]);
      }
      for (int c = 0; c < k; ++c) {
        ctx->argmax_window[c] = states[c].argmax;
        ctx->output[c] = states[c].max + std::log(states[c].sum * inv_windows);
      }
      break;
    }
    case PoolType::kMax: {
      const float* row0 = ctx->pre_pool.Row(0);
      std::copy(row0, row0 + k, ctx->output.begin());
      for (int i = 1; i < num_windows; ++i) {
        const float* row = ctx->pre_pool.Row(i);
        for (int c = 0; c < k; ++c) {
          if (row[c] > ctx->output[c]) {
            ctx->output[c] = row[c];
            ctx->argmax_window[c] = i;
          }
        }
      }
      break;
    }
    case PoolType::kMean: {
      // Track the max alongside the sum so argmax attribution stays
      // available; pool_state doubles as the max/argmax scratch.
      ctx->pool_state.assign(static_cast<size_t>(k), OnlineLogSumExp());
      OnlineLogSumExp* states = ctx->pool_state.data();
      for (int i = 0; i < num_windows; ++i) {
        const float* row = ctx->pre_pool.Row(i);
        for (int c = 0; c < k; ++c) {
          if (row[c] > states[c].max) {
            states[c].max = row[c];
            states[c].argmax = i;
          }
          ctx->output[c] += row[c];
        }
      }
      for (int c = 0; c < k; ++c) {
        ctx->argmax_window[c] = states[c].argmax;
        ctx->output[c] *= inv_windows;
      }
      break;
    }
  }
}

void ConvTextModule::ComputePoolGrad(const float* dout,
                                     const ConvContext& ctx) const {
  const int k = out_dim();
  const int num_windows = ctx.num_windows;
  ctx.dpre.Resize(num_windows, k);
  switch (pool_) {
    case PoolType::kLogSumExp: {
      // Softmax over windows per channel. output = lse - log(n), so the
      // true log-sum-exp is output + log(n). Row-major single pass.
      const float log_n = std::log(static_cast<float>(num_windows));
      for (int i = 0; i < num_windows; ++i) {
        const float* pre = ctx.pre_pool.Row(i);
        float* dp = ctx.dpre.Row(i);
        for (int c = 0; c < k; ++c) {
          float alpha = std::exp(pre[c] - (ctx.output[c] + log_n));
          dp[c] = dout[c] * alpha;
        }
      }
      break;
    }
    case PoolType::kMax:
      for (int c = 0; c < k; ++c) {
        ctx.dpre.At(ctx.argmax_window[c], c) = dout[c];
      }
      break;
    case PoolType::kMean: {
      const float inv = 1.0f / static_cast<float>(num_windows);
      for (int i = 0; i < num_windows; ++i) {
        float* dp = ctx.dpre.Row(i);
        for (int c = 0; c < k; ++c) dp[c] = dout[c] * inv;
      }
      break;
    }
  }
}

void ConvTextModule::Backward(const float* dout, const ConvContext& ctx) {
  if (ctx.empty) return;
  const int emb = table_->dim();
  const int d = window_size_;
  const int n = static_cast<int>(ctx.token_ids.size());

  ComputePoolGrad(dout, ctx);

  ctx.dwindow.assign(static_cast<size_t>(d) * emb, 0.0f);
  for (int i = 0; i < ctx.num_windows; ++i) {
    la::Zero(ctx.dwindow.data(), d * emb);
    conv_.Backward(ctx.windows.Row(i), ctx.dpre.Row(i), ctx.dwindow.data());
    for (int p = 0; p < d; ++p) {
      int tok_pos = i + p;
      if (tok_pos >= n) break;
      table_->AccumulateGrad(ctx.token_ids[tok_pos],
                             ctx.dwindow.data() + p * emb);
    }
  }
}

void ConvTextModule::Backward(const float* dout, const ConvContext& ctx,
                              LinearLayer::Gradients* conv_grads,
                              EmbeddingTable::Gradients* table_grads) const {
  if (ctx.empty) return;
  const int emb = table_->dim();
  const int d = window_size_;
  const int n = static_cast<int>(ctx.token_ids.size());

  ComputePoolGrad(dout, ctx);

  ctx.dwindow.assign(static_cast<size_t>(d) * emb, 0.0f);
  for (int i = 0; i < ctx.num_windows; ++i) {
    la::Zero(ctx.dwindow.data(), d * emb);
    conv_.Backward(ctx.windows.Row(i), ctx.dpre.Row(i), ctx.dwindow.data(),
                   conv_grads);
    for (int p = 0; p < d; ++p) {
      int tok_pos = i + p;
      if (tok_pos >= n) break;
      table_->AccumulateGrad(ctx.token_ids[tok_pos],
                             ctx.dwindow.data() + p * emb, 1.0f, table_grads);
    }
  }
}

void ConvTextModule::Serialize(BinaryWriter& w) const {
  w.WriteMagic("CONV");
  w.WriteI32(window_size_);
  w.WriteI32(static_cast<int>(pool_));
  conv_.Serialize(w);
}

ConvTextModule ConvTextModule::Deserialize(
    BinaryReader& r, std::shared_ptr<EmbeddingTable> table) {
  r.ExpectMagic("CONV");
  int window_size = r.ReadI32();
  int pool = r.ReadI32();
  LinearLayer conv = LinearLayer::Deserialize(r);
  int out_dim = conv.out_dim();
  ConvTextModule m(std::move(table), window_size > 0 ? window_size : 1,
                   out_dim, static_cast<PoolType>(pool));
  if (r.ok()) {
    m.conv_ = std::move(conv);
  }
  return m;
}

}  // namespace nn
}  // namespace evrec
