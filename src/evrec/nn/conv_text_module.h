// Convolutional feature extraction module (paper §3.1, Figure 2).
//
// Pipeline: token ids -> shared lookup table -> sliding windows of
// `window_size` consecutive token vectors (concatenated) -> convolution
// matrix M_c (out_dim x window_size*emb_dim) -> pooling over windows.
//
// The paper pools with log-sum-exp ("soft max-pooling"):
//   v_k = v*_k + log sum_i exp(v'_{w_i,k} - v*_k),  v*_k = max_i v'_{w_i,k}
// We implement the shift-invariant log-MEAN-exp variant (subtract
// log(#windows)): identical gradients and max-window semantics, but
// without the constant per-example offset that otherwise dominates cosine
// similarity and saturates the tanh head (see the comment in Forward).
// Max and mean pooling are provided for the ablation bench.
//
// Sequences shorter than the window are right-padded with zero vectors so
// every non-empty document produces at least one window; an empty document
// yields an all-zero output vector (documented convention — cosine treats
// it as "no information").
//
// Forward state lives in a caller-owned ConvContext so one module can be
// evaluated on several inputs before Backward (Siamese training pushes two
// documents through shared weights per step).

#ifndef EVREC_NN_CONV_TEXT_MODULE_H_
#define EVREC_NN_CONV_TEXT_MODULE_H_

#include <memory>
#include <vector>

#include "evrec/la/matrix.h"
#include "evrec/nn/embedding_table.h"
#include "evrec/nn/linear_layer.h"
#include "evrec/text/encoder.h"
#include "evrec/util/math_util.h"

namespace evrec {
namespace nn {

enum class PoolType { kLogSumExp = 0, kMax = 1, kMean = 2 };

const char* PoolTypeName(PoolType type);

// Per-example forward cache. Matrices and scratch vectors are resized in
// place, so a context reused across examples stops allocating once it has
// seen the largest document — the training hot loop holds one context per
// shard and performs no per-pair heap allocation.
struct ConvContext {
  std::vector<int> token_ids;        // copy of the encoded input
  std::vector<int> word_index;       // provenance for attribution
  int num_windows = 0;
  bool empty = false;                // true when the document had no tokens
  la::Matrix windows;                // num_windows x (window_size*emb_dim)
  la::Matrix pre_pool;               // num_windows x out_dim
  std::vector<float> output;         // out_dim
  std::vector<int> argmax_window;    // out_dim; window achieving the max

  // Scratch reused across calls. `mutable` because it is workspace, not
  // logical state: Backward takes the context by const reference (the
  // cached activations really are read-only there) but still needs
  // somewhere to stage the pooling gradient without allocating.
  mutable std::vector<OnlineLogSumExp> pool_state;  // out_dim
  mutable la::Matrix dpre;                          // num_windows x out_dim
  mutable std::vector<float> dwindow;               // window_size*emb_dim
};

class ConvTextModule {
 public:
  // `table` is shared among the modules of a feature-extraction bank and
  // stepped once by the owner; Step() here updates only the convolution.
  ConvTextModule(std::shared_ptr<EmbeddingTable> table, int window_size,
                 int out_dim, PoolType pool = PoolType::kLogSumExp);

  int window_size() const { return window_size_; }
  int out_dim() const { return conv_.out_dim(); }
  int emb_dim() const { return table_->dim(); }
  PoolType pool_type() const { return pool_; }
  const EmbeddingTable& table() const { return *table_; }
  std::shared_ptr<EmbeddingTable> shared_table() const { return table_; }

  void XavierInit(Rng& rng) { conv_.XavierInit(rng); }

  // Runs the module; fills `ctx` (including argmax_window for attribution).
  void Forward(const text::EncodedText& input, ConvContext* ctx) const;

  // Accumulates gradients into the convolution layer and the shared
  // embedding table. `dout` has out_dim entries; `ctx` must come from a
  // matching Forward on this module.
  void Backward(const float* dout, const ConvContext& ctx);

  // Same math into external buffers; the module and its shared table stay
  // read-only, so shards may run this concurrently on private buffers
  // (see nn/linear_layer.h for the reduction contract).
  void Backward(const float* dout, const ConvContext& ctx,
                LinearLayer::Gradients* conv_grads,
                EmbeddingTable::Gradients* table_grads) const;

  // A zeroed buffer shaped for the convolution layer (the shared table's
  // buffer is made once by the owning bank, not per module).
  LinearLayer::Gradients MakeConvGradients() const {
    return conv_.MakeGradients();
  }
  void AccumulateConvGradients(LinearLayer::Gradients* grads) {
    conv_.AccumulateGradients(grads);
  }

  // Updates the convolution parameters only (the shared table is stepped
  // by the bank that owns it).
  void EnableAdagrad() { conv_.EnableAdagrad(); }
  void Step(float lr) { conv_.Step(lr); }
  void ZeroGrad() { conv_.ZeroGrad(); }

  const LinearLayer& conv() const { return conv_; }
  LinearLayer& mutable_conv() { return conv_; }

  void Serialize(BinaryWriter& w) const;
  // The embedding table is serialized by the owning bank; Deserialize
  // re-attaches the provided shared table.
  static ConvTextModule Deserialize(BinaryReader& r,
                                    std::shared_ptr<EmbeddingTable> table);

 private:
  // Fills ctx.dpre with d(pool)/d(pre_pool) scaled by dout.
  void ComputePoolGrad(const float* dout, const ConvContext& ctx) const;

  std::shared_ptr<EmbeddingTable> table_;
  int window_size_;
  PoolType pool_;
  LinearLayer conv_;
};

}  // namespace nn
}  // namespace evrec

#endif  // EVREC_NN_CONV_TEXT_MODULE_H_
