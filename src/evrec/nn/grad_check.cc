#include "evrec/nn/grad_check.h"

#include <algorithm>
#include <cmath>

namespace evrec {
namespace nn {

double NumericGradient(const std::function<double()>& loss_fn, float* param,
                       double eps) {
  float original = *param;
  *param = static_cast<float>(original + eps);
  double plus = loss_fn();
  *param = static_cast<float>(original - eps);
  double minus = loss_fn();
  *param = original;
  return (plus - minus) / (2.0 * eps);
}

double RelativeError(double a, double b) {
  double denom = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) / denom;
}

}  // namespace nn
}  // namespace evrec
