// Skip-gram with negative sampling (word2vec-style) over token sequences —
// the unsupervised lookup-table initialization the paper mentions in
// §3.2.1: "some lookup table values can be partially initialized from
// other sources such as a general embedding trained on text corpus
// [22], [26]".
//
// Trains the supplied EmbeddingTable in place as the input ("center")
// matrix; the output ("context") matrix is internal and discarded.
// Negative sampling uses the unigram^(3/4) distribution.

#ifndef EVREC_NN_SGNS_H_
#define EVREC_NN_SGNS_H_

#include <vector>

#include "evrec/nn/embedding_table.h"

namespace evrec {
namespace nn {

struct SgnsConfig {
  int window = 4;              // context half-window in tokens
  int negatives = 4;           // negative samples per positive
  float learning_rate = 0.025f;
  int epochs = 3;
  double unigram_power = 0.75;
  uint64_t seed = 71;
};

struct SgnsStats {
  std::vector<double> train_loss;  // mean logistic loss per epoch
  long long pairs_trained = 0;
};

// `corpus` holds token-id sequences over `table`'s vocabulary; ids outside
// [0, vocab) are skipped.
SgnsStats PretrainEmbeddings(EmbeddingTable* table,
                             const std::vector<std::vector<int>>& corpus,
                             const SgnsConfig& config, Rng& rng);

}  // namespace nn
}  // namespace evrec

#endif  // EVREC_NN_SGNS_H_
