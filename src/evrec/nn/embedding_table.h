// Trainable token lookup table (paper §3.1: "maps each token into a feature
// vector by a lookup table operation"; the table is part of the network
// parameters and trained by backprop).
//
// Gradients are sparse: only rows touched since the last Step carry
// gradient, tracked with a touched-row list so Step/ZeroGrad cost is
// proportional to the minibatch footprint, not the vocabulary size.

#ifndef EVREC_NN_EMBEDDING_TABLE_H_
#define EVREC_NN_EMBEDDING_TABLE_H_

#include <vector>

#include "evrec/la/matrix.h"
#include "evrec/util/binary_io.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace nn {

class EmbeddingTable {
 public:
  EmbeddingTable(int vocab_size, int dim);

  int vocab_size() const { return table_.rows(); }
  int dim() const { return table_.cols(); }

  // Random init in [-scale, scale]; paper: "randomly initialized".
  void RandomInit(Rng& rng, float scale = 0.1f);

  // Detached sparse gradient buffer: a dense row store plus the touched-row
  // list, so clearing and folding cost O(minibatch footprint) exactly like
  // the internal accumulator. Shard-private instances let data-parallel
  // trainers backprop concurrently against shared read-only parameters
  // (see nn/linear_layer.h).
  struct Gradients {
    la::Matrix grad;  // vocab x dim
    std::vector<int> touched;
    std::vector<uint8_t> is_touched;

    const float* Row(int id) const { return grad.Row(id); }
    void Clear();
  };

  const float* Vector(int id) const { return table_.Row(id); }
  float* MutableVector(int id) { return table_.Row(id); }
  const float* GradRow(int id) const { return grad_.Row(id); }

  // grad_row(id) += scale * grad
  void AccumulateGrad(int id, const float* grad, float scale = 1.0f);

  // Same accumulation into an external buffer; const, thread-safe across
  // disjoint buffers.
  void AccumulateGrad(int id, const float* grad, float scale,
                      Gradients* grads) const;

  // A zeroed buffer shaped like this table.
  Gradients MakeGradients() const;

  // Folds `grads`' touched rows into the internal accumulator (in the
  // buffer's touch order) and clears it. Single-threaded, fixed-order.
  void AccumulateGradients(Gradients* grads);

  // Enables Adagrad updates: step becomes
  //   accum += grad^2;  table -= lr * grad / sqrt(accum + eps)
  // Adaptive per-coordinate rates are what make sparse lookup tables
  // trainable in few epochs; plain SGD starves rare tokens.
  void EnableAdagrad();
  bool adagrad_enabled() const { return adagrad_; }

  // table -= lr * grad over touched rows (Adagrad-scaled when enabled),
  // then clears the gradient.
  void Step(float lr);

  void ZeroGrad();

  // Number of rows with pending gradient (test/diagnostic hook).
  int num_touched() const { return static_cast<int>(touched_.size()); }

  void Serialize(BinaryWriter& w) const;
  static EmbeddingTable Deserialize(BinaryReader& r);

  // Adagrad accumulator state, persisted by checkpoints only (see
  // nn/linear_layer.h).
  void SerializeOptimizer(BinaryWriter& w) const;
  void DeserializeOptimizer(BinaryReader& r);

 private:
  la::Matrix table_;
  la::Matrix grad_;
  la::Matrix accum_;  // Adagrad accumulators (empty unless enabled)
  bool adagrad_ = false;
  std::vector<int> touched_;
  std::vector<uint8_t> is_touched_;
};

}  // namespace nn
}  // namespace evrec

#endif  // EVREC_NN_EMBEDDING_TABLE_H_
