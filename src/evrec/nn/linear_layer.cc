#include "evrec/nn/linear_layer.h"

#include <cmath>

#include "evrec/la/vec_ops.h"

namespace evrec {
namespace nn {

LinearLayer::LinearLayer(int in_dim, int out_dim, bool has_bias)
    : weight_(out_dim, in_dim),
      weight_grad_(out_dim, in_dim),
      bias_(static_cast<size_t>(out_dim), 0.0f),
      bias_grad_(static_cast<size_t>(out_dim), 0.0f),
      has_bias_(has_bias) {
  EVREC_CHECK_GT(in_dim, 0);
  EVREC_CHECK_GT(out_dim, 0);
}

void LinearLayer::XavierInit(Rng& rng) { weight_.XavierInit(rng); }

void LinearLayer::Forward(const float* x, float* y) const {
  weight_.Gemv(x, y);
  if (has_bias_) {
    la::Add(y, bias_.data(), y, out_dim());
  }
}

namespace {

// Shared body of both Backward overloads: accumulate dW += dy x^T,
// db += dy, and (when dx != nullptr) dx += W^T dy. The weight-gradient and
// input-gradient rows are fused into one pass over x / W per output
// coordinate (la::FusedGradInput), halving the memory traffic of the
// separate AddOuter + GemvTransposedAccum sweeps.
void BackwardInto(const la::Matrix& weight, bool has_bias, const float* x,
                  const float* dy, float* dx, la::Matrix* weight_grad,
                  std::vector<float>* bias_grad) {
  const int out = weight.rows();
  const int in = weight.cols();
  if (dx != nullptr) {
    for (int r = 0; r < out; ++r) {
      if (dy[r] == 0.0f) continue;
      la::FusedGradInput(dy[r], x, weight.Row(r), weight_grad->Row(r), dx,
                         in);
    }
  } else {
    weight_grad->AddOuter(1.0f, dy, x);
  }
  if (has_bias) {
    la::Axpy(1.0f, dy, bias_grad->data(), out);
  }
}

}  // namespace

void LinearLayer::Backward(const float* x, const float* dy, float* dx) {
  BackwardInto(weight_, has_bias_, x, dy, dx, &weight_grad_, &bias_grad_);
}

void LinearLayer::Backward(const float* x, const float* dy, float* dx,
                           Gradients* grads) const {
  grads->used = true;
  BackwardInto(weight_, has_bias_, x, dy, dx, &grads->weight, &grads->bias);
}

void LinearLayer::Gradients::Clear() {
  weight.SetZero();
  la::Zero(bias.data(), static_cast<int>(bias.size()));
  used = false;
}

LinearLayer::Gradients LinearLayer::MakeGradients() const {
  Gradients g;
  g.weight = la::Matrix(weight_.rows(), weight_.cols());
  if (has_bias_) g.bias.assign(bias_.size(), 0.0f);
  return g;
}

void LinearLayer::AccumulateGradients(Gradients* grads) {
  if (grads->used) {
    weight_grad_.AddScaled(1.0f, grads->weight);
    if (has_bias_) {
      la::Axpy(1.0f, grads->bias.data(), bias_grad_.data(), out_dim());
    }
    grads->Clear();
  }
}

void LinearLayer::EnableAdagrad() {
  if (!adagrad_) {
    weight_accum_ = la::Matrix(weight_.rows(), weight_.cols());
    bias_accum_.assign(bias_.size(), 0.0f);
    adagrad_ = true;
  }
}

void LinearLayer::Step(float lr) {
  constexpr float kEps = 1e-8f;
  if (adagrad_) {
    float* w = weight_.data();
    float* g = weight_grad_.data();
    float* a = weight_accum_.data();
    size_t n = weight_.size();
    for (size_t i = 0; i < n; ++i) {
      a[i] += g[i] * g[i];
      w[i] -= lr * g[i] / std::sqrt(a[i] + kEps);
    }
    weight_grad_.SetZero();
    if (has_bias_) {
      for (int i = 0; i < out_dim(); ++i) {
        size_t si = static_cast<size_t>(i);
        bias_accum_[si] += bias_grad_[si] * bias_grad_[si];
        bias_[si] -= lr * bias_grad_[si] / std::sqrt(bias_accum_[si] + kEps);
      }
      la::Zero(bias_grad_.data(), out_dim());
    }
    return;
  }
  weight_.AddScaled(-lr, weight_grad_);
  weight_grad_.SetZero();
  if (has_bias_) {
    la::Axpy(-lr, bias_grad_.data(), bias_.data(), out_dim());
    la::Zero(bias_grad_.data(), out_dim());
  }
}

void LinearLayer::ZeroGrad() {
  weight_grad_.SetZero();
  la::Zero(bias_grad_.data(), out_dim());
}

void LinearLayer::Serialize(BinaryWriter& w) const {
  w.WriteMagic("LINL");
  w.WriteI32(has_bias_ ? 1 : 0);
  weight_.Serialize(w);
  w.WriteFloatVector(bias_);
}

void LinearLayer::SerializeOptimizer(BinaryWriter& w) const {
  w.WriteMagic("LOPT");
  w.WriteI32(adagrad_ ? 1 : 0);
  if (adagrad_) {
    weight_accum_.Serialize(w);
    w.WriteFloatVector(bias_accum_);
  }
}

void LinearLayer::DeserializeOptimizer(BinaryReader& r) {
  r.ExpectMagic("LOPT");
  int adagrad = r.ReadI32();
  if (!r.ok() || adagrad == 0) return;
  la::Matrix accum = la::Matrix::Deserialize(r);
  std::vector<float> bias_accum = r.ReadFloatVector();
  if (!r.ok()) return;
  if (accum.rows() != weight_.rows() || accum.cols() != weight_.cols() ||
      bias_accum.size() != bias_.size()) {
    r.MarkCorrupt("optimizer state shape does not match layer");
    return;
  }
  EnableAdagrad();
  weight_accum_ = std::move(accum);
  bias_accum_ = std::move(bias_accum);
}

LinearLayer LinearLayer::Deserialize(BinaryReader& r) {
  r.ExpectMagic("LINL");
  int has_bias = r.ReadI32();
  la::Matrix weight = la::Matrix::Deserialize(r);
  std::vector<float> bias = r.ReadFloatVector();
  int out_dim = weight.rows() > 0 ? weight.rows() : 1;
  int in_dim = weight.cols() > 0 ? weight.cols() : 1;
  LinearLayer l(in_dim, out_dim, has_bias != 0);
  if (r.ok() && weight.rows() > 0) {
    l.weight_ = std::move(weight);
    l.weight_grad_ = la::Matrix(l.weight_.rows(), l.weight_.cols());
    if (bias.size() == static_cast<size_t>(l.weight_.rows())) {
      l.bias_ = std::move(bias);
    }
  }
  return l;
}

}  // namespace nn
}  // namespace evrec
