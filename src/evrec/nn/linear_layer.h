// Affine layer y = Wx + b with accumulated gradients. Forward is
// re-entrant (no per-example state); the caller retains the input and
// passes it back to Backward, which keeps the layer usable from several
// contexts at once (needed by the Siamese pre-trainer, which pushes two
// inputs through shared weights before stepping).
//
// Gradient state comes in two flavors:
//   * the layer's internal accumulator (the classic Backward/Step pair),
//     used by the single-context training paths and by Step's optimizer;
//   * an external LinearLayer::Gradients buffer, written by the const
//     Backward overload. Data-parallel trainers give each shard its own
//     buffer (parameters stay shared and read-only during the batch) and
//     fold the buffers into the internal accumulator in fixed shard order
//     via AccumulateGradients before a single Step.

#ifndef EVREC_NN_LINEAR_LAYER_H_
#define EVREC_NN_LINEAR_LAYER_H_

#include <vector>

#include "evrec/la/matrix.h"
#include "evrec/util/binary_io.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace nn {

class LinearLayer {
 public:
  // Detached gradient buffer for one layer (see file comment). `used`
  // lets reducers skip buffers no pair of the shard ever touched.
  struct Gradients {
    la::Matrix weight;        // out x in
    std::vector<float> bias;  // out (empty when the layer has no bias)
    bool used = false;

    void Clear();
  };

  LinearLayer(int in_dim, int out_dim, bool has_bias = true);

  int in_dim() const { return weight_.cols(); }
  int out_dim() const { return weight_.rows(); }

  void XavierInit(Rng& rng);

  // y = Wx + b. `y` must hold out_dim floats.
  void Forward(const float* x, float* y) const;

  // Accumulates dW += dy x^T, db += dy and, if dx != nullptr,
  // dx += W^T dy. `x` must be the input passed to the matching Forward.
  void Backward(const float* x, const float* dy, float* dx);

  // Same math, but into an external buffer; the layer itself is untouched,
  // so any number of threads may run this concurrently on disjoint
  // buffers.
  void Backward(const float* x, const float* dy, float* dx,
                Gradients* grads) const;

  // A zeroed buffer shaped for this layer.
  Gradients MakeGradients() const;

  // Folds `grads` into the internal accumulator and clears it. Call from
  // one thread, in fixed shard order, for deterministic reduction.
  void AccumulateGradients(Gradients* grads);

  // Enables Adagrad updates (see EmbeddingTable::EnableAdagrad).
  void EnableAdagrad();

  // param -= lr * grad (Adagrad-scaled when enabled); clears gradients.
  void Step(float lr);
  void ZeroGrad();

  const la::Matrix& weight() const { return weight_; }
  la::Matrix& mutable_weight() { return weight_; }
  const std::vector<float>& bias() const { return bias_; }
  std::vector<float>& mutable_bias() { return bias_; }
  const la::Matrix& weight_grad() const { return weight_grad_; }
  const std::vector<float>& bias_grad() const { return bias_grad_; }

  void Serialize(BinaryWriter& w) const;
  static LinearLayer Deserialize(BinaryReader& r);

  // Optimizer (Adagrad accumulator) state, kept out of Serialize so model
  // artifacts stay lean; checkpoints persist it so a resumed run steps
  // with the exact per-coordinate rates of the uninterrupted one.
  void SerializeOptimizer(BinaryWriter& w) const;
  void DeserializeOptimizer(BinaryReader& r);

 private:
  la::Matrix weight_;       // out x in
  la::Matrix weight_grad_;  // out x in
  la::Matrix weight_accum_;
  std::vector<float> bias_;
  std::vector<float> bias_grad_;
  std::vector<float> bias_accum_;
  bool has_bias_;
  bool adagrad_ = false;
};

}  // namespace nn
}  // namespace evrec

#endif  // EVREC_NN_LINEAR_LAYER_H_
