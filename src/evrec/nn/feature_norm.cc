#include "evrec/nn/feature_norm.h"

#include <cmath>

namespace evrec {
namespace nn {

void FeatureNorm::Calibrate(const std::vector<std::vector<float>>& samples) {
  EVREC_CHECK(!samples.empty());
  const size_t d = mean_.size();
  EVREC_CHECK_EQ(samples[0].size(), d);
  std::vector<double> sum(d, 0.0), sq(d, 0.0);
  for (const auto& row : samples) {
    EVREC_CHECK_EQ(row.size(), d);
    for (size_t i = 0; i < d; ++i) {
      sum[i] += row[i];
      sq[i] += static_cast<double>(row[i]) * row[i];
    }
  }
  const double n = static_cast<double>(samples.size());
  for (size_t i = 0; i < d; ++i) {
    double mu = sum[i] / n;
    double var = sq[i] / n - mu * mu;
    mean_[i] = static_cast<float>(mu);
    inv_std_[i] =
        var > 1e-10 ? static_cast<float>(1.0 / std::sqrt(var)) : 1.0f;
  }
  calibrated_ = true;
}

void FeatureNorm::Forward(const float* x, float* y) const {
  const int d = dim();
  for (int i = 0; i < d; ++i) {
    y[i] = (x[i] - mean_[static_cast<size_t>(i)]) *
           inv_std_[static_cast<size_t>(i)];
  }
}

void FeatureNorm::Backward(const float* dy, float* dx) const {
  const int d = dim();
  for (int i = 0; i < d; ++i) {
    dx[i] = dy[i] * inv_std_[static_cast<size_t>(i)];
  }
}

void FeatureNorm::Serialize(BinaryWriter& w) const {
  w.WriteMagic("FNRM");
  w.WriteI32(calibrated_ ? 1 : 0);
  w.WriteFloatVector(mean_);
  w.WriteFloatVector(inv_std_);
}

FeatureNorm FeatureNorm::Deserialize(BinaryReader& r) {
  r.ExpectMagic("FNRM");
  FeatureNorm n;
  n.calibrated_ = r.ReadI32() != 0;
  n.mean_ = r.ReadFloatVector();
  n.inv_std_ = r.ReadFloatVector();
  if (n.inv_std_.size() != n.mean_.size()) {
    n = FeatureNorm();
  }
  return n;
}

}  // namespace nn
}  // namespace evrec
