// Numeric gradient checking for backprop tests. Central differences on a
// caller-supplied scalar loss closure; the analytic gradient of every layer
// in this library is validated against it in tests/nn_test.cc.

#ifndef EVREC_NN_GRAD_CHECK_H_
#define EVREC_NN_GRAD_CHECK_H_

#include <functional>

namespace evrec {
namespace nn {

// Estimates d(loss)/d(*param) by central differences with step `eps`.
// The closure must recompute the loss from scratch (the parameter is
// perturbed in place and restored before returning).
double NumericGradient(const std::function<double()>& loss_fn, float* param,
                       double eps = 1e-3);

// Relative error |a - b| / max(1, |a|, |b|); the standard grad-check metric.
double RelativeError(double a, double b);

}  // namespace nn
}  // namespace evrec

#endif  // EVREC_NN_GRAD_CHECK_H_
