#include "evrec/nn/embedding_table.h"

#include <cmath>

#include "evrec/la/vec_ops.h"

namespace evrec {
namespace nn {

EmbeddingTable::EmbeddingTable(int vocab_size, int dim)
    : table_(vocab_size, dim),
      grad_(vocab_size, dim),
      is_touched_(static_cast<size_t>(vocab_size), 0) {
  EVREC_CHECK_GT(vocab_size, 0);
  EVREC_CHECK_GT(dim, 0);
}

void EmbeddingTable::RandomInit(Rng& rng, float scale) {
  table_.UniformInit(rng, scale);
}

void EmbeddingTable::AccumulateGrad(int id, const float* grad, float scale) {
  EVREC_CHECK_GE(id, 0);
  EVREC_CHECK_LT(id, vocab_size());
  if (!is_touched_[static_cast<size_t>(id)]) {
    is_touched_[static_cast<size_t>(id)] = 1;
    touched_.push_back(id);
  }
  la::Axpy(scale, grad, grad_.Row(id), dim());
}

void EmbeddingTable::AccumulateGrad(int id, const float* grad, float scale,
                                    Gradients* grads) const {
  EVREC_CHECK_GE(id, 0);
  EVREC_CHECK_LT(id, vocab_size());
  if (!grads->is_touched[static_cast<size_t>(id)]) {
    grads->is_touched[static_cast<size_t>(id)] = 1;
    grads->touched.push_back(id);
  }
  la::Axpy(scale, grad, grads->grad.Row(id), dim());
}

EmbeddingTable::Gradients EmbeddingTable::MakeGradients() const {
  Gradients g;
  g.grad = la::Matrix(vocab_size(), dim());
  g.is_touched.assign(static_cast<size_t>(vocab_size()), 0);
  return g;
}

void EmbeddingTable::Gradients::Clear() {
  for (int id : touched) {
    la::Zero(grad.Row(id), grad.cols());
    is_touched[static_cast<size_t>(id)] = 0;
  }
  touched.clear();
}

void EmbeddingTable::AccumulateGradients(Gradients* grads) {
  for (int id : grads->touched) {
    AccumulateGrad(id, grads->grad.Row(id));
  }
  grads->Clear();
}

void EmbeddingTable::EnableAdagrad() {
  if (!adagrad_) {
    accum_ = la::Matrix(vocab_size(), dim());
    adagrad_ = true;
  }
}

void EmbeddingTable::Step(float lr) {
  constexpr float kEps = 1e-8f;
  for (int id : touched_) {
    float* row = table_.Row(id);
    float* g = grad_.Row(id);
    if (adagrad_) {
      float* a = accum_.Row(id);
      for (int d = 0; d < dim(); ++d) {
        a[d] += g[d] * g[d];
        row[d] -= lr * g[d] / std::sqrt(a[d] + kEps);
      }
    } else {
      la::Axpy(-lr, g, row, dim());
    }
    la::Zero(g, dim());
    is_touched_[static_cast<size_t>(id)] = 0;
  }
  touched_.clear();
}

void EmbeddingTable::ZeroGrad() {
  for (int id : touched_) {
    la::Zero(grad_.Row(id), dim());
    is_touched_[static_cast<size_t>(id)] = 0;
  }
  touched_.clear();
}

void EmbeddingTable::Serialize(BinaryWriter& w) const {
  w.WriteMagic("EMBT");
  table_.Serialize(w);
}

void EmbeddingTable::SerializeOptimizer(BinaryWriter& w) const {
  w.WriteMagic("EOPT");
  w.WriteI32(adagrad_ ? 1 : 0);
  if (adagrad_) accum_.Serialize(w);
}

void EmbeddingTable::DeserializeOptimizer(BinaryReader& r) {
  r.ExpectMagic("EOPT");
  int adagrad = r.ReadI32();
  if (!r.ok() || adagrad == 0) return;
  la::Matrix accum = la::Matrix::Deserialize(r);
  if (!r.ok()) return;
  if (accum.rows() != table_.rows() || accum.cols() != table_.cols()) {
    r.MarkCorrupt("optimizer state shape does not match embedding table");
    return;
  }
  EnableAdagrad();
  accum_ = std::move(accum);
}

EmbeddingTable EmbeddingTable::Deserialize(BinaryReader& r) {
  r.ExpectMagic("EMBT");
  la::Matrix table = la::Matrix::Deserialize(r);
  int rows = table.rows() > 0 ? table.rows() : 1;
  int cols = table.cols() > 0 ? table.cols() : 1;
  EmbeddingTable t(rows, cols);
  if (r.ok() && table.rows() > 0) {
    t.table_ = std::move(table);
    t.grad_ = la::Matrix(t.table_.rows(), t.table_.cols());
    t.is_touched_.assign(static_cast<size_t>(t.table_.rows()), 0);
  }
  return t;
}

}  // namespace nn
}  // namespace evrec
