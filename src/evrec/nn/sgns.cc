#include "evrec/nn/sgns.h"

#include <cmath>

#include "evrec/la/vec_ops.h"
#include "evrec/util/math_util.h"

namespace evrec {
namespace nn {

SgnsStats PretrainEmbeddings(EmbeddingTable* table,
                             const std::vector<std::vector<int>>& corpus,
                             const SgnsConfig& config, Rng& rng) {
  EVREC_CHECK(table != nullptr);
  const int vocab = table->vocab_size();
  const int dim = table->dim();
  SgnsStats stats;

  // Unigram^power negative-sampling table (alias-free: cumulative scan).
  std::vector<double> weights(static_cast<size_t>(vocab), 0.0);
  for (const auto& doc : corpus) {
    for (int id : doc) {
      if (id >= 0 && id < vocab) weights[static_cast<size_t>(id)] += 1.0;
    }
  }
  double total = 0.0;
  for (auto& w : weights) {
    w = std::pow(w, config.unigram_power);
    total += w;
  }
  if (total <= 0.0) return stats;  // empty corpus
  std::vector<double> cumulative(weights.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    cumulative[i] = acc;
  }
  auto sample_negative = [&]() {
    double r = rng.UniformDouble() * acc;
    auto it = std::lower_bound(cumulative.begin(), cumulative.end(), r);
    return static_cast<int>(it - cumulative.begin());
  };

  // Output (context) embeddings, zero-initialized per word2vec convention.
  la::Matrix context(vocab, dim);

  std::vector<float> center_grad(static_cast<size_t>(dim));
  float lr = config.learning_rate;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    long long pairs = 0;
    for (const auto& doc : corpus) {
      const int n = static_cast<int>(doc.size());
      for (int i = 0; i < n; ++i) {
        int center = doc[static_cast<size_t>(i)];
        if (center < 0 || center >= vocab) continue;
        int lo = std::max(0, i - config.window);
        int hi = std::min(n - 1, i + config.window);
        for (int j = lo; j <= hi; ++j) {
          if (j == i) continue;
          int ctx = doc[static_cast<size_t>(j)];
          if (ctx < 0 || ctx >= vocab) continue;

          la::Zero(center_grad.data(), dim);
          float* v_center = table->MutableVector(center);

          // One positive + `negatives` negatives, SGD applied immediately
          // (the standard word2vec update).
          for (int s = 0; s <= config.negatives; ++s) {
            int target = s == 0 ? ctx : sample_negative();
            double label = s == 0 ? 1.0 : 0.0;
            float* v_ctx = context.Row(target);
            double score = 0.0;
            for (int d = 0; d < dim; ++d) score += v_center[d] * v_ctx[d];
            double p = Sigmoid(score);
            epoch_loss += CrossEntropy(label, p);
            float g = static_cast<float>(p - label);
            for (int d = 0; d < dim; ++d) {
              center_grad[static_cast<size_t>(d)] += g * v_ctx[d];
              v_ctx[d] -= lr * g * v_center[d];
            }
          }
          la::Axpy(-lr, center_grad.data(), v_center, dim);
          ++pairs;
        }
      }
    }
    stats.pairs_trained += pairs;
    stats.train_loss.push_back(
        pairs == 0 ? 0.0
                   : epoch_loss / (static_cast<double>(pairs) *
                                   (1 + config.negatives)));
    lr *= 0.7f;
  }
  return stats;
}

}  // namespace nn
}  // namespace evrec
