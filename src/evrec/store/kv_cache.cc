#include "evrec/store/kv_cache.h"

#include <memory>

#include "evrec/util/check.h"

namespace evrec {
namespace store {

ShardedKvCache::ShardedKvCache(int num_shards, size_t capacity_per_shard)
    : capacity_per_shard_(capacity_per_shard) {
  EVREC_CHECK_GT(num_shards, 0);
  EVREC_CHECK_GT(capacity_per_shard, 0u);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool ShardedKvCache::Get(uint64_t key, std::vector<float>* value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Refresh recency.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (value != nullptr) *value = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ShardedKvCache::Put(uint64_t key, std::vector<float> value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > capacity_per_shard_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ShardedKvCache::Invalidate(uint64_t key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  shard.lru.erase(it->second);
  shard.index.erase(it);
  return true;
}

void ShardedKvCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

CacheStats ShardedKvCache::Stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace store
}  // namespace evrec
