// Sharded in-memory LRU key-value cache storing float vectors — a
// laptop-scale stand-in for the distributed data store (TAO [29]) the
// paper uses to cache user and event representation vectors: "User and
// event vectors are only computed upon creation and important information
// change. They can be cached in distributed data store ... for quick
// access at recommendation time."
//
// Keys are 64-bit ids; sharding is by key hash, each shard holds an
// independent LRU list guarded by its own mutex.

#ifndef EVREC_STORE_KV_CACHE_H_
#define EVREC_STORE_KV_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace evrec {
namespace store {

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class ShardedKvCache {
 public:
  // `capacity_per_shard` entries are retained per shard; the least
  // recently used entry is evicted on overflow.
  ShardedKvCache(int num_shards, size_t capacity_per_shard);

  // Copies the value out on hit and refreshes recency.
  bool Get(uint64_t key, std::vector<float>* value);

  // Inserts or overwrites.
  void Put(uint64_t key, std::vector<float> value);

  // Removes a key (e.g. "important information change" invalidation).
  bool Invalidate(uint64_t key);

  void Clear();

  CacheStats Stats() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard {
    std::mutex mu;
    // MRU at front. unordered_map points into the list.
    std::list<std::pair<uint64_t, std::vector<float>>> lru;
    std::unordered_map<
        uint64_t,
        std::list<std::pair<uint64_t, std::vector<float>>>::iterator>
        index;
  };

  Shard& ShardFor(uint64_t key) {
    // Fibonacci hashing spreads sequential ids across shards.
    uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    return *shards_[h % shards_.size()];
  }

  size_t capacity_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> evictions_{0};
};

}  // namespace store
}  // namespace evrec

#endif  // EVREC_STORE_KV_CACHE_H_
