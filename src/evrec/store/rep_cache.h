// RepVectorCache: compute-through cache for representation vectors. Keys
// combine an entity kind tag with the entity id so user and event vectors
// share one store, mirroring the paper's serving design (precompute on
// creation / information change, look up at recommendation time).

#ifndef EVREC_STORE_REP_CACHE_H_
#define EVREC_STORE_REP_CACHE_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>

#include "evrec/store/kv_cache.h"

namespace evrec {
namespace store {

enum class EntityKind : uint64_t { kUser = 1, kEvent = 2 };

// Stable composite key.
inline uint64_t EntityKey(EntityKind kind, int id) {
  return (static_cast<uint64_t>(kind) << 48) | static_cast<uint64_t>(
             static_cast<uint32_t>(id));
}

class RepVectorCache {
 public:
  RepVectorCache(int num_shards, size_t capacity_per_shard)
      : cache_(num_shards, capacity_per_shard) {}

  using ComputeFn = std::function<std::vector<float>()>;

  // Returns the cached vector, or computes, stores, and returns it.
  // Concurrent misses on the same key are coalesced: one caller runs
  // `compute`, the others block on a per-key latch and share its result
  // (cache-stampede guard for the serving path).
  std::vector<float> GetOrCompute(EntityKind kind, int id,
                                  const ComputeFn& compute);

  // Lookup without compute-through; returns false on miss.
  bool TryGet(EntityKind kind, int id, std::vector<float>* out) {
    return cache_.Get(EntityKey(kind, id), out);
  }

  // Precomputes and stores ("computed upon creation").
  void Precompute(EntityKind kind, int id, std::vector<float> vector) {
    cache_.Put(EntityKey(kind, id), std::move(vector));
  }

  // Drops a vector ("important information change").
  bool Invalidate(EntityKind kind, int id) {
    return cache_.Invalidate(EntityKey(kind, id));
  }

  CacheStats Stats() const { return cache_.Stats(); }

 private:
  // One latch per in-flight computation; owner computes, joiners wait.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::vector<float> value;
  };

  ShardedKvCache cache_;
  std::mutex inflight_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<InFlight>> inflight_;
};

}  // namespace store
}  // namespace evrec

#endif  // EVREC_STORE_REP_CACHE_H_
