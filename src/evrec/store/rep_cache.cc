#include "evrec/store/rep_cache.h"

namespace evrec {
namespace store {

std::vector<float> RepVectorCache::GetOrCompute(EntityKind kind, int id,
                                                const ComputeFn& compute) {
  uint64_t key = EntityKey(kind, id);
  std::vector<float> value;
  if (cache_.Get(key, &value)) return value;

  std::shared_ptr<InFlight> latch;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
      latch = std::make_shared<InFlight>();
      inflight_.emplace(key, latch);
      owner = true;
    } else {
      latch = it->second;
    }
  }

  if (!owner) {
    std::unique_lock<std::mutex> lock(latch->mu);
    latch->cv.wait(lock, [&] { return latch->done; });
    return latch->value;
  }

  // A previous owner may have finished between our miss and the claim.
  if (!cache_.Get(key, &value)) {
    value = compute();
    cache_.Put(key, value);
  }
  {
    std::lock_guard<std::mutex> lock(latch->mu);
    latch->value = value;
    latch->done = true;
  }
  latch->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(key);
  }
  return value;
}

}  // namespace store
}  // namespace evrec
