#include "evrec/store/rep_cache.h"

namespace evrec {
namespace store {

std::vector<float> RepVectorCache::GetOrCompute(EntityKind kind, int id,
                                                const ComputeFn& compute) {
  uint64_t key = EntityKey(kind, id);
  std::vector<float> value;
  if (cache_.Get(key, &value)) return value;
  value = compute();
  cache_.Put(key, value);
  return value;
}

}  // namespace store
}  // namespace evrec
