// L2-regularized logistic regression — the alternative combiner the paper
// discusses in §5.2: "the integration choice can be different for
// different types of combiner models. For example, for logistic
// regression, one may need to design additional interaction features and
// include multiple types of summary scores."
//
// Unlike the GBDT, a linear model cannot discover feature interactions on
// its own, which is exactly what bench_extensions demonstrates: LR with
// raw representation vectors underperforms LR with the similarity score,
// while the GBDT is indifferent.
//
// Features are standardized internally (z-scaling fitted on the training
// matrix) so the single learning rate behaves across heterogeneous
// feature scales.

#ifndef EVREC_GBDT_LOGISTIC_REGRESSION_H_
#define EVREC_GBDT_LOGISTIC_REGRESSION_H_

#include <vector>

#include "evrec/gbdt/data_matrix.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace gbdt {

struct LogisticRegressionConfig {
  int epochs = 40;
  double learning_rate = 0.1;
  double l2 = 1e-4;        // per-example weight penalty
  int batch_size = 32;
  uint64_t seed = 31;
};

class LogisticRegression {
 public:
  LogisticRegression() = default;

  // Trains from scratch; returns mean train logloss per epoch.
  std::vector<double> Train(const DataMatrix& features,
                            const std::vector<float>& labels,
                            const LogisticRegressionConfig& config);

  double PredictProbability(const float* row) const;
  std::vector<double> PredictProbabilities(const DataMatrix& features) const;

  int num_features() const { return static_cast<int>(weights_.size()); }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  double Score(const float* row) const;

  std::vector<double> weights_;
  double bias_ = 0.0;
  // Standardization fitted on the training matrix.
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace gbdt
}  // namespace evrec

#endif  // EVREC_GBDT_LOGISTIC_REGRESSION_H_
