// Gradient-boosted decision trees with logistic (cross-entropy) loss — the
// combiner prediction model of paper §4. The paper's configuration is 200
// trees with 12 leaves each, trained by stochastic gradient boosting [28]
// minimizing cross-entropy over observed (user, event) pairs; this trainer
// adds the standard Newton-step leaf values and row subsampling.

#ifndef EVREC_GBDT_GBDT_H_
#define EVREC_GBDT_GBDT_H_

#include <string>
#include <vector>

#include "evrec/gbdt/data_matrix.h"
#include "evrec/gbdt/tree.h"
#include "evrec/util/checkpoint.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace gbdt {

struct GbdtConfig {
  int num_trees = 200;
  int max_leaves = 12;
  double learning_rate = 0.1;
  double lambda = 1.0;          // L2 on leaf values
  double subsample = 0.8;       // stochastic boosting row fraction
  int min_samples_leaf = 20;
  int max_bins = 64;
  uint64_t seed = 13;

  // Crash safety (inert when `checkpoints` is null): commit the boosted
  // ensemble and rng state every `checkpoint_every` trees; with `resume`,
  // continue from the newest valid checkpoint. Row scores are rebuilt by
  // replaying tree predictions in commit order, which reproduces the
  // incremental float accumulation exactly, so a resumed fit is
  // bit-identical to an uninterrupted one.
  CheckpointManager* checkpoints = nullptr;
  int checkpoint_every = 25;
  bool resume = false;
};

struct GbdtTrainStats {
  std::vector<double> train_logloss;  // after each tree
  bool interrupted = false;    // crash point fired mid-run
  int resumed_from_tree = -1;  // -1 = fresh fit
  bool diverged = false;       // non-finite logloss; fit stopped
};

class GbdtModel {
 public:
  GbdtModel() : base_score_(0.0f), num_features_(0) {}

  // Trains from scratch on (features, labels in {0,1}).
  GbdtTrainStats Train(const DataMatrix& features,
                       const std::vector<float>& labels,
                       const GbdtConfig& config);

  // Probability of the positive class.
  double PredictProbability(const float* row) const;
  std::vector<double> PredictProbabilities(const DataMatrix& features) const;

  // Raw additive score (logit).
  double PredictScore(const float* row) const;

  int num_trees() const { return static_cast<int>(trees_.size()); }
  int num_features() const { return num_features_; }
  const RegressionTree& tree(int i) const {
    return trees_[static_cast<size_t>(i)];
  }

  // Total split gain per feature, normalized to sum to 1 (empty if the
  // model has no splits).
  std::vector<double> FeatureImportance() const;

  void Serialize(BinaryWriter& w) const;
  static GbdtModel Deserialize(BinaryReader& r);

 private:
  float base_score_;  // prior logit
  int num_features_;
  std::vector<RegressionTree> trees_;
};

}  // namespace gbdt
}  // namespace evrec

#endif  // EVREC_GBDT_GBDT_H_
