#include "evrec/gbdt/gbdt.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "evrec/gbdt/binner.h"
#include "evrec/gbdt/tree_builder.h"
#include "evrec/obs/metrics.h"
#include "evrec/obs/profile.h"
#include "evrec/util/fault_injection.h"
#include "evrec/obs/trace.h"
#include "evrec/util/logging.h"
#include "evrec/util/math_util.h"

namespace evrec {
namespace gbdt {

GbdtTrainStats GbdtModel::Train(const DataMatrix& features,
                                const std::vector<float>& labels,
                                const GbdtConfig& config) {
  EVREC_SPAN("gbdt.train");
  const int n = features.num_rows();
  EVREC_CHECK_GT(n, 0);
  EVREC_CHECK_EQ(labels.size(), static_cast<size_t>(n));
  num_features_ = features.num_cols();
  trees_.clear();

  // Prior: log-odds of the positive rate.
  double pos = 0.0;
  for (float y : labels) pos += y;
  double rate = ClampProb(pos / n, 1e-6);
  base_score_ = static_cast<float>(std::log(rate / (1.0 - rate)));

  QuantileBinner binner(features, config.max_bins);
  BinnedMatrix binned = binner.Transform(features);

  TreeParams tree_params;
  tree_params.max_leaves = config.max_leaves;
  tree_params.lambda = config.lambda;
  tree_params.min_samples_leaf = config.min_samples_leaf;
  tree_params.leaf_scale = config.learning_rate;
  TreeBuilder builder(binned, binner, tree_params);

  std::vector<double> scores(static_cast<size_t>(n), base_score_);
  std::vector<float> grad(static_cast<size_t>(n));
  std::vector<float> hess(static_cast<size_t>(n));
  std::vector<int> all_rows(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) all_rows[static_cast<size_t>(i)] = i;

  Rng rng(config.seed, /*stream=*/77);
  GbdtTrainStats stats;
  stats.train_logloss.reserve(static_cast<size_t>(config.num_trees));
  // Per-iteration loss curve; successive Train() calls append fresh
  // 0-based runs, so a fit's curve is the suffix starting at its last x=0.
  obs::Series* loss_series =
      obs::MetricRegistry::Global()->GetSeries("gbdt.train_logloss");

  int start_tree = 0;
  if (config.checkpoints != nullptr && config.resume) {
    uint32_t next_tree = 0;
    uint64_t ck_rows = 0;
    int32_t ck_features = 0;
    RngState ck_rng;
    GbdtModel ck_model;
    std::vector<double> ck_loss;
    auto loaded = config.checkpoints->LoadLatestValid(
        [&](CheckpointReader& r) {
          r.EnterSection("meta");
          next_tree = r.raw().ReadU32();
          ck_rows = r.raw().ReadU64();
          ck_features = r.raw().ReadI32();
          ck_rng.state = r.raw().ReadU64();
          ck_rng.inc = r.raw().ReadU64();
          r.LeaveSection();
          r.EnterSection("model");
          ck_model = GbdtModel::Deserialize(r.raw());
          r.LeaveSection();
          r.EnterSection("stats");
          ck_loss = r.raw().ReadDoubleVector();
          r.LeaveSection();
          return r.status();
        });
    if (loaded.ok() && ck_rows == static_cast<uint64_t>(n) &&
        ck_features == num_features_ &&
        ck_model.num_trees() == static_cast<int>(next_tree) &&
        ck_model.base_score_ == base_score_) {
      trees_ = std::move(ck_model.trees_);
      // Rebuild the additive scores by replaying trees in commit order —
      // the same float association the incremental loop produced.
      for (int i = 0; i < n; ++i) {
        double s = base_score_;
        for (const auto& tree : trees_) s += tree.Predict(features.Row(i));
        scores[static_cast<size_t>(i)] = s;
      }
      rng.RestoreState(ck_rng);
      stats.train_logloss = ck_loss;
      start_tree = static_cast<int>(next_tree);
      stats.resumed_from_tree = start_tree;
      EVREC_LOG(INFO) << "gbdt resumed at tree " << start_tree << " from "
                      << loaded->path;
    } else if (loaded.ok()) {
      trees_.clear();
      EVREC_LOG(WARN) << "gbdt checkpoint incompatible with this dataset; "
                      << "training fresh";
    } else {
      EVREC_LOG(INFO) << "no valid gbdt checkpoint ("
                      << loaded.status().ToString() << "); training fresh";
    }
  }

  // Per-tree cost series: boosting is sequential on the calling thread, so
  // a clock + thread-local tally window around each iteration captures the
  // full tree's time and heap traffic.
  obs::Series* tree_micros_series =
      obs::MetricRegistry::Global()->GetSeries("gbdt.tree_micros");
  obs::Series* tree_alloc_series =
      obs::MetricRegistry::Global()->GetSeries("gbdt.tree_alloc_bytes");

  std::vector<int> sampled;
  for (int t = start_tree; t < config.num_trees; ++t) {
    obs::ScopedSpan tree_span("gbdt.tree");
    tree_span.AddTag("tree", std::to_string(t));
    const int64_t tree_start = obs::CurrentClock()->NowMicros();
    const obs::ThreadCostSnapshot tree_cost_open = obs::ThreadCost();
    // Logistic loss derivatives w.r.t. the additive score.
    for (int i = 0; i < n; ++i) {
      double p = Sigmoid(scores[static_cast<size_t>(i)]);
      grad[static_cast<size_t>(i)] =
          static_cast<float>(p - labels[static_cast<size_t>(i)]);
      hess[static_cast<size_t>(i)] = static_cast<float>(p * (1.0 - p));
    }

    const std::vector<int>* rows = &all_rows;
    if (config.subsample < 1.0) {
      sampled.clear();
      for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(config.subsample)) sampled.push_back(i);
      }
      if (sampled.size() >=
          static_cast<size_t>(2 * config.min_samples_leaf)) {
        rows = &sampled;
      }
    }

    RegressionTree tree = builder.Build(grad, hess, *rows);
    // Update every row's score with the new tree (not just sampled rows).
    double logloss = 0.0;
    for (int i = 0; i < n; ++i) {
      scores[static_cast<size_t>(i)] += tree.Predict(features.Row(i));
      double p = Sigmoid(scores[static_cast<size_t>(i)]);
      logloss += CrossEntropy(labels[static_cast<size_t>(i)], p);
    }
    stats.train_logloss.push_back(logloss / n);
    loss_series->Append(static_cast<double>(t), logloss / n);
    trees_.push_back(std::move(tree));
    tree_micros_series->Append(
        static_cast<double>(t),
        static_cast<double>(obs::CurrentClock()->NowMicros() - tree_start));
    tree_alloc_series->Append(
        static_cast<double>(t),
        static_cast<double>(obs::ThreadCost().alloc_bytes -
                            tree_cost_open.alloc_bytes));

    if (!std::isfinite(logloss)) {
      obs::MetricRegistry::Global()
          ->GetCounter("trainer.nonfinite_epochs")
          ->Increment();
      stats.diverged = true;
      EVREC_LOG(ERROR) << "gbdt tree " << t
                       << " produced non-finite logloss; stopping";
      break;
    }
    if (config.checkpoints != nullptr &&
        (t + 1) % std::max(1, config.checkpoint_every) == 0) {
      Status st = config.checkpoints->Write(
          t + 1, logloss / n, [&](CheckpointWriter& w) {
            w.BeginSection("meta");
            w.raw().WriteU32(static_cast<uint32_t>(t + 1));
            w.raw().WriteU64(static_cast<uint64_t>(n));
            w.raw().WriteI32(num_features_);
            RngState now = rng.SaveState();
            w.raw().WriteU64(now.state);
            w.raw().WriteU64(now.inc);
            w.EndSection();
            w.BeginSection("model");
            Serialize(w.raw());
            w.EndSection();
            w.BeginSection("stats");
            w.raw().WriteDoubleVector(stats.train_logloss);
            w.EndSection();
          });
      obs::MetricRegistry::Global()
          ->GetCounter(st.ok() ? "checkpoint.writes"
                               : "checkpoint.write_failures")
          ->Increment();
      if (!st.ok()) {
        EVREC_LOG(WARN) << "gbdt checkpoint write failed: " << st.ToString();
      }
    }
    if (CrashPoints::Global()->Fire("gbdt.tree_end")) {
      stats.interrupted = true;
      EVREC_LOG(WARN) << "crash point 'gbdt.tree_end' fired after tree " << t
                      << "; aborting fit";
      break;
    }
  }
  EVREC_LOG(INFO) << "gbdt trained " << trees_.size() << " trees, final "
                  << "train logloss="
                  << (stats.train_logloss.empty() ? 0.0
                                                  : stats.train_logloss.back());
  return stats;
}

double GbdtModel::PredictScore(const float* row) const {
  double s = base_score_;
  for (const auto& t : trees_) s += t.Predict(row);
  return s;
}

double GbdtModel::PredictProbability(const float* row) const {
  return Sigmoid(PredictScore(row));
}

std::vector<double> GbdtModel::PredictProbabilities(
    const DataMatrix& features) const {
  std::vector<double> out(static_cast<size_t>(features.num_rows()));
  for (int i = 0; i < features.num_rows(); ++i) {
    out[static_cast<size_t>(i)] = PredictProbability(features.Row(i));
  }
  return out;
}

std::vector<double> GbdtModel::FeatureImportance() const {
  std::vector<double> imp(static_cast<size_t>(num_features_), 0.0);
  for (const auto& t : trees_) t.AccumulateFeatureGain(&imp);
  double total = 0.0;
  for (double v : imp) total += v;
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

void GbdtModel::Serialize(BinaryWriter& w) const {
  w.WriteMagic("GBDT");
  w.WriteF32(base_score_);
  w.WriteI32(num_features_);
  w.WriteI32(static_cast<int>(trees_.size()));
  for (const auto& t : trees_) t.Serialize(w);
}

GbdtModel GbdtModel::Deserialize(BinaryReader& r) {
  GbdtModel m;
  r.ExpectMagic("GBDT");
  m.base_score_ = r.ReadF32();
  m.num_features_ = r.ReadI32();
  int n = r.ReadI32();
  if (!r.ok() || n < 0) return m;
  m.trees_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n && r.ok(); ++i) {
    m.trees_.push_back(RegressionTree::Deserialize(r));
  }
  return m;
}

}  // namespace gbdt
}  // namespace evrec
