// Best-first (leaf-wise) regression tree construction over binned features
// with second-order (Newton) statistics, the scheme used by modern GBDT
// implementations. The paper's combiner uses 12-leaf trees; leaf-wise
// growth reproduces that capacity exactly.
//
// Split gain (XGBoost-style, lambda-regularized):
//   gain = G_L^2/(H_L+l) + G_R^2/(H_R+l) - G^2/(H+l)
// Child histograms use the subtraction trick: the larger child's histogram
// is parent minus the directly-built smaller child.

#ifndef EVREC_GBDT_TREE_BUILDER_H_
#define EVREC_GBDT_TREE_BUILDER_H_

#include <vector>

#include "evrec/gbdt/binner.h"
#include "evrec/gbdt/tree.h"

namespace evrec {
namespace gbdt {

struct TreeParams {
  int max_leaves = 12;
  double lambda = 1.0;          // L2 regularization on leaf values
  double min_split_gain = 1e-6;
  int min_samples_leaf = 20;
  double leaf_scale = 1.0;      // shrinkage baked into leaf values
};

class TreeBuilder {
 public:
  // `binned`/`binner` describe the training design matrix; both must
  // outlive the builder.
  TreeBuilder(const BinnedMatrix& binned, const QuantileBinner& binner,
              const TreeParams& params);

  // Builds one tree fitting -grad/hess. `rows` selects the (possibly
  // subsampled) training rows.
  RegressionTree Build(const std::vector<float>& grad,
                       const std::vector<float>& hess,
                       const std::vector<int>& rows);

 private:
  struct Histogram {
    // Indexed [feature * max_bins + bin].
    std::vector<double> g;
    std::vector<double> h;
    std::vector<int> count;

    void Resize(size_t n) {
      g.assign(n, 0.0);
      h.assign(n, 0.0);
      count.assign(n, 0);
    }
    void SubtractFrom(const Histogram& parent, const Histogram& sibling);
  };

  struct Split {
    double gain = -1.0;
    int feature = -1;
    int bin_threshold = -1;
    double left_g = 0.0, left_h = 0.0;
    int left_count = 0;
  };

  // A grown-but-unsplit leaf tracked by the best-first queue.
  struct Leaf {
    int node_id;
    int begin, end;  // range in row_order_
    double sum_g, sum_h;
    Histogram hist;
    Split best;
  };

  void BuildHistogram(int begin, int end, const std::vector<float>& grad,
                      const std::vector<float>& hess, Histogram* out) const;
  Split FindBestSplit(const Histogram& hist, double sum_g, double sum_h,
                      int count) const;
  double LeafValue(double sum_g, double sum_h) const;

  const BinnedMatrix& binned_;
  const QuantileBinner& binner_;
  TreeParams params_;
  std::vector<int> row_order_;  // working permutation of training rows
};

}  // namespace gbdt
}  // namespace evrec

#endif  // EVREC_GBDT_TREE_BUILDER_H_
