#include "evrec/gbdt/binner.h"

#include <algorithm>

namespace evrec {
namespace gbdt {

QuantileBinner::QuantileBinner(const DataMatrix& data, int max_bins)
    : max_bins_(max_bins) {
  EVREC_CHECK_GE(max_bins, 2);
  EVREC_CHECK_LE(max_bins, 256);
  EVREC_CHECK_GT(data.num_rows(), 0);
  const int n = data.num_rows();
  upper_bounds_.resize(static_cast<size_t>(data.num_cols()));

  std::vector<float> column(static_cast<size_t>(n));
  for (int c = 0; c < data.num_cols(); ++c) {
    for (int r = 0; r < n; ++r) column[static_cast<size_t>(r)] = data.At(r, c);
    std::sort(column.begin(), column.end());

    // Candidate boundaries at quantile positions; dedupe equal values so a
    // low-cardinality feature gets one bin per distinct value.
    std::vector<float>& bounds = upper_bounds_[static_cast<size_t>(c)];
    for (int b = 1; b < max_bins_; ++b) {
      size_t idx = static_cast<size_t>(
          static_cast<double>(b) * n / max_bins_);
      if (idx >= static_cast<size_t>(n)) idx = static_cast<size_t>(n) - 1;
      float v = column[idx];
      if (bounds.empty() || v > bounds.back()) bounds.push_back(v);
    }
    // A boundary equal to the max value would leave the last bin empty but
    // is harmless; a constant column yields zero boundaries (single bin).
    if (!bounds.empty() && bounds.back() >= column.back()) {
      bounds.pop_back();
    }
  }
}

uint8_t QuantileBinner::BinOf(int c, float value) const {
  const auto& bounds = upper_bounds_[static_cast<size_t>(c)];
  // First bin whose upper bound is >= value; rows in bin b satisfy
  // value <= UpperBound(c, b).
  auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<uint8_t>(it - bounds.begin());
}

BinnedMatrix QuantileBinner::Transform(const DataMatrix& data) const {
  EVREC_CHECK_EQ(data.num_cols(), num_features());
  BinnedMatrix out;
  out.num_rows = data.num_rows();
  out.num_cols = data.num_cols();
  out.codes.resize(static_cast<size_t>(out.num_rows) * out.num_cols);
  for (int c = 0; c < out.num_cols; ++c) {
    uint8_t* col = out.codes.data() + static_cast<size_t>(c) * out.num_rows;
    for (int r = 0; r < out.num_rows; ++r) {
      col[r] = BinOf(c, data.At(r, c));
    }
  }
  return out;
}

}  // namespace gbdt
}  // namespace evrec
