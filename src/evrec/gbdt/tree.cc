#include "evrec/gbdt/tree.h"

namespace evrec {
namespace gbdt {

int RegressionTree::num_leaves() const {
  int n = 0;
  for (const auto& node : nodes_) {
    if (node.is_leaf) ++n;
  }
  return n;
}

float RegressionTree::Predict(const float* row) const {
  if (nodes_.empty()) return 0.0f;
  int i = 0;
  while (!nodes_[static_cast<size_t>(i)].is_leaf) {
    const TreeNode& n = nodes_[static_cast<size_t>(i)];
    i = (row[n.feature] <= n.threshold) ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(i)].leaf_value;
}

void RegressionTree::AccumulateFeatureGain(
    std::vector<double>* importance) const {
  for (const auto& n : nodes_) {
    if (!n.is_leaf && n.feature >= 0 &&
        n.feature < static_cast<int>(importance->size())) {
      (*importance)[static_cast<size_t>(n.feature)] += n.gain;
    }
  }
}

void RegressionTree::Serialize(BinaryWriter& w) const {
  w.WriteMagic("TREE");
  w.WriteI32(static_cast<int>(nodes_.size()));
  for (const auto& n : nodes_) {
    w.WriteI32(n.is_leaf ? 1 : 0);
    w.WriteI32(n.feature);
    w.WriteF32(n.threshold);
    w.WriteI32(n.left);
    w.WriteI32(n.right);
    w.WriteF32(n.gain);
    w.WriteF32(n.leaf_value);
  }
}

RegressionTree RegressionTree::Deserialize(BinaryReader& r) {
  RegressionTree t;
  r.ExpectMagic("TREE");
  int n = r.ReadI32();
  if (!r.ok() || n < 0) return t;
  t.nodes_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n && r.ok(); ++i) {
    TreeNode node;
    node.is_leaf = r.ReadI32() != 0;
    node.feature = r.ReadI32();
    node.threshold = r.ReadF32();
    node.left = r.ReadI32();
    node.right = r.ReadI32();
    node.gain = r.ReadF32();
    node.leaf_value = r.ReadF32();
    t.nodes_.push_back(node);
  }
  return t;
}

}  // namespace gbdt
}  // namespace evrec
