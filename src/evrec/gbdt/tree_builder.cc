#include "evrec/gbdt/tree_builder.h"

#include <algorithm>
#include <memory>

namespace evrec {
namespace gbdt {

void TreeBuilder::Histogram::SubtractFrom(const Histogram& parent,
                                          const Histogram& sibling) {
  size_t n = parent.g.size();
  Resize(n);
  for (size_t i = 0; i < n; ++i) {
    g[i] = parent.g[i] - sibling.g[i];
    h[i] = parent.h[i] - sibling.h[i];
    count[i] = parent.count[i] - sibling.count[i];
  }
}

TreeBuilder::TreeBuilder(const BinnedMatrix& binned,
                         const QuantileBinner& binner,
                         const TreeParams& params)
    : binned_(binned), binner_(binner), params_(params) {
  EVREC_CHECK_GE(params.max_leaves, 2);
}

void TreeBuilder::BuildHistogram(int begin, int end,
                                 const std::vector<float>& grad,
                                 const std::vector<float>& hess,
                                 Histogram* out) const {
  const int num_features = binned_.num_cols;
  const int bins = binner_.max_bins();
  out->Resize(static_cast<size_t>(num_features) * bins);
  for (int c = 0; c < num_features; ++c) {
    const uint8_t* col = binned_.Column(c);
    double* hg = out->g.data() + static_cast<size_t>(c) * bins;
    double* hh = out->h.data() + static_cast<size_t>(c) * bins;
    int* hc = out->count.data() + static_cast<size_t>(c) * bins;
    for (int i = begin; i < end; ++i) {
      int r = row_order_[static_cast<size_t>(i)];
      uint8_t b = col[r];
      hg[b] += grad[static_cast<size_t>(r)];
      hh[b] += hess[static_cast<size_t>(r)];
      ++hc[b];
    }
  }
}

TreeBuilder::Split TreeBuilder::FindBestSplit(const Histogram& hist,
                                              double sum_g, double sum_h,
                                              int count) const {
  const int num_features = binned_.num_cols;
  const int bins = binner_.max_bins();
  const double lambda = params_.lambda;
  auto score = [lambda](double g, double h) { return g * g / (h + lambda); };

  Split best;
  const double parent_score = score(sum_g, sum_h);
  for (int c = 0; c < num_features; ++c) {
    const int nbins = binner_.NumBins(c);
    if (nbins < 2) continue;
    const double* hg = hist.g.data() + static_cast<size_t>(c) * bins;
    const double* hh = hist.h.data() + static_cast<size_t>(c) * bins;
    const int* hc = hist.count.data() + static_cast<size_t>(c) * bins;
    double lg = 0.0, lh = 0.0;
    int lc = 0;
    for (int b = 0; b + 1 < nbins; ++b) {
      lg += hg[b];
      lh += hh[b];
      lc += hc[b];
      int rc = count - lc;
      if (lc < params_.min_samples_leaf || rc < params_.min_samples_leaf) {
        continue;
      }
      double gain =
          score(lg, lh) + score(sum_g - lg, sum_h - lh) - parent_score;
      if (gain > best.gain) {
        best.gain = gain;
        best.feature = c;
        best.bin_threshold = b;
        best.left_g = lg;
        best.left_h = lh;
        best.left_count = lc;
      }
    }
  }
  return best;
}

double TreeBuilder::LeafValue(double sum_g, double sum_h) const {
  return params_.leaf_scale * (-sum_g / (sum_h + params_.lambda));
}

RegressionTree TreeBuilder::Build(const std::vector<float>& grad,
                                  const std::vector<float>& hess,
                                  const std::vector<int>& rows) {
  EVREC_CHECK(!rows.empty());
  row_order_ = rows;
  RegressionTree tree;

  double root_g = 0.0, root_h = 0.0;
  for (int r : rows) {
    root_g += grad[static_cast<size_t>(r)];
    root_h += hess[static_cast<size_t>(r)];
  }

  TreeNode root_node;
  root_node.is_leaf = true;
  root_node.leaf_value = static_cast<float>(LeafValue(root_g, root_h));
  int root_id = tree.AddNode(root_node);

  auto root = std::make_unique<Leaf>();
  root->node_id = root_id;
  root->begin = 0;
  root->end = static_cast<int>(rows.size());
  root->sum_g = root_g;
  root->sum_h = root_h;
  BuildHistogram(root->begin, root->end, grad, hess, &root->hist);
  root->best =
      FindBestSplit(root->hist, root_g, root_h, root->end - root->begin);

  // Best-first frontier. Linear scan for the max-gain leaf: the frontier
  // never exceeds max_leaves (12 here), so a heap buys nothing.
  std::vector<std::unique_ptr<Leaf>> frontier;
  frontier.push_back(std::move(root));
  int num_leaves = 1;

  while (num_leaves < params_.max_leaves) {
    int best_idx = -1;
    double best_gain = params_.min_split_gain;
    for (size_t i = 0; i < frontier.size(); ++i) {
      if (frontier[i]->best.gain > best_gain) {
        best_gain = frontier[i]->best.gain;
        best_idx = static_cast<int>(i);
      }
    }
    if (best_idx < 0) break;  // nothing left worth splitting

    std::unique_ptr<Leaf> leaf = std::move(frontier[static_cast<size_t>(best_idx)]);
    frontier.erase(frontier.begin() + best_idx);
    const Split& split = leaf->best;

    // Partition the row range: bin <= threshold goes left.
    const uint8_t* col = binned_.Column(split.feature);
    auto mid_it = std::stable_partition(
        row_order_.begin() + leaf->begin, row_order_.begin() + leaf->end,
        [&](int r) { return col[r] <= split.bin_threshold; });
    int mid = static_cast<int>(mid_it - row_order_.begin());
    EVREC_CHECK_EQ(mid - leaf->begin, split.left_count);

    auto left = std::make_unique<Leaf>();
    auto right = std::make_unique<Leaf>();
    left->begin = leaf->begin;
    left->end = mid;
    left->sum_g = split.left_g;
    left->sum_h = split.left_h;
    right->begin = mid;
    right->end = leaf->end;
    right->sum_g = leaf->sum_g - split.left_g;
    right->sum_h = leaf->sum_h - split.left_h;

    // Histogram subtraction: build the smaller child directly.
    if (left->end - left->begin <= right->end - right->begin) {
      BuildHistogram(left->begin, left->end, grad, hess, &left->hist);
      right->hist.SubtractFrom(leaf->hist, left->hist);
    } else {
      BuildHistogram(right->begin, right->end, grad, hess, &right->hist);
      left->hist.SubtractFrom(leaf->hist, right->hist);
    }

    // Materialize the split in the tree.
    TreeNode left_node, right_node;
    left_node.is_leaf = true;
    left_node.leaf_value =
        static_cast<float>(LeafValue(left->sum_g, left->sum_h));
    right_node.is_leaf = true;
    right_node.leaf_value =
        static_cast<float>(LeafValue(right->sum_g, right->sum_h));
    left->node_id = tree.AddNode(left_node);
    right->node_id = tree.AddNode(right_node);

    TreeNode& parent = tree.MutableNode(leaf->node_id);
    parent.is_leaf = false;
    parent.feature = split.feature;
    parent.threshold = binner_.UpperBound(split.feature, split.bin_threshold);
    parent.left = left->node_id;
    parent.right = right->node_id;
    parent.gain = static_cast<float>(split.gain);

    left->best = FindBestSplit(left->hist, left->sum_g, left->sum_h,
                               left->end - left->begin);
    right->best = FindBestSplit(right->hist, right->sum_g, right->sum_h,
                                right->end - right->begin);
    frontier.push_back(std::move(left));
    frontier.push_back(std::move(right));
    ++num_leaves;
  }
  return tree;
}

}  // namespace gbdt
}  // namespace evrec
