// Dense row-major feature matrix consumed by the GBDT trainer and by the
// feature assembler that builds combiner inputs.

#ifndef EVREC_GBDT_DATA_MATRIX_H_
#define EVREC_GBDT_DATA_MATRIX_H_

#include <vector>

#include "evrec/util/check.h"

namespace evrec {
namespace gbdt {

class DataMatrix {
 public:
  DataMatrix() : num_rows_(0), num_cols_(0) {}
  DataMatrix(int num_rows, int num_cols)
      : num_rows_(num_rows), num_cols_(num_cols),
        values_(static_cast<size_t>(num_rows) * num_cols, 0.0f) {
    EVREC_CHECK_GE(num_rows, 0);
    EVREC_CHECK_GT(num_cols, 0);
  }

  int num_rows() const { return num_rows_; }
  int num_cols() const { return num_cols_; }

  float At(int r, int c) const {
    EVREC_CHECK_LT(r, num_rows_);
    EVREC_CHECK_LT(c, num_cols_);
    return values_[static_cast<size_t>(r) * num_cols_ + c];
  }
  void Set(int r, int c, float v) {
    EVREC_CHECK_LT(r, num_rows_);
    EVREC_CHECK_LT(c, num_cols_);
    values_[static_cast<size_t>(r) * num_cols_ + c] = v;
  }

  const float* Row(int r) const {
    EVREC_CHECK_LT(r, num_rows_);
    return values_.data() + static_cast<size_t>(r) * num_cols_;
  }
  float* MutableRow(int r) {
    EVREC_CHECK_LT(r, num_rows_);
    return values_.data() + static_cast<size_t>(r) * num_cols_;
  }

 private:
  int num_rows_;
  int num_cols_;
  std::vector<float> values_;
};

}  // namespace gbdt
}  // namespace evrec

#endif  // EVREC_GBDT_DATA_MATRIX_H_
