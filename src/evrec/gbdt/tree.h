// Regression tree produced by the boosting trainer. Internal nodes split on
// "feature value <= threshold"; leaves carry the additive score
// contribution. Prediction works on raw (un-binned) feature rows so a
// trained model is independent of the training-time binner.

#ifndef EVREC_GBDT_TREE_H_
#define EVREC_GBDT_TREE_H_

#include <vector>

#include "evrec/util/binary_io.h"
#include "evrec/util/check.h"

namespace evrec {
namespace gbdt {

struct TreeNode {
  bool is_leaf = true;
  // Internal node fields.
  int feature = -1;
  float threshold = 0.0f;   // raw-value threshold: go left if value <= it
  int left = -1;
  int right = -1;
  float gain = 0.0f;        // split gain, for feature importance
  // Leaf field.
  float leaf_value = 0.0f;
};

class RegressionTree {
 public:
  RegressionTree() = default;

  // Node 0 is the root; an empty tree predicts 0.
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_leaves() const;
  const TreeNode& node(int i) const {
    return nodes_[static_cast<size_t>(i)];
  }

  int AddNode(const TreeNode& node) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }
  TreeNode& MutableNode(int i) { return nodes_[static_cast<size_t>(i)]; }

  float Predict(const float* row) const;

  // Adds each internal node's gain to importance[feature].
  void AccumulateFeatureGain(std::vector<double>* importance) const;

  void Serialize(BinaryWriter& w) const;
  static RegressionTree Deserialize(BinaryReader& r);

 private:
  std::vector<TreeNode> nodes_;
};

}  // namespace gbdt
}  // namespace evrec

#endif  // EVREC_GBDT_TREE_H_
