// Quantile binning for histogram-based tree construction (the LightGBM /
// XGBoost-hist approach): each feature is discretized into at most
// `max_bins` bins whose boundaries are training-set quantiles. Split search
// then scans bin histograms instead of sorted raw values.

#ifndef EVREC_GBDT_BINNER_H_
#define EVREC_GBDT_BINNER_H_

#include <cstdint>
#include <vector>

#include "evrec/gbdt/data_matrix.h"

namespace evrec {
namespace gbdt {

// Column-major bin codes: code(r, c) = codes[c * num_rows + r].
struct BinnedMatrix {
  int num_rows = 0;
  int num_cols = 0;
  std::vector<uint8_t> codes;

  uint8_t Code(int r, int c) const {
    return codes[static_cast<size_t>(c) * num_rows + r];
  }
  const uint8_t* Column(int c) const {
    return codes.data() + static_cast<size_t>(c) * num_rows;
  }
};

class QuantileBinner {
 public:
  // Learns per-feature bin boundaries from `data`. `max_bins` <= 256.
  QuantileBinner(const DataMatrix& data, int max_bins);

  int max_bins() const { return max_bins_; }
  int num_features() const { return static_cast<int>(upper_bounds_.size()); }

  // Number of distinct bins actually used by feature `c` (1 for constant
  // features).
  int NumBins(int c) const {
    return static_cast<int>(upper_bounds_[static_cast<size_t>(c)].size()) + 1;
  }

  // Raw-value upper boundary of bin `b` for feature `c`: rows with
  // value <= bound fall in bins [0..b]. The last bin is unbounded.
  float UpperBound(int c, int b) const {
    return upper_bounds_[static_cast<size_t>(c)][static_cast<size_t>(b)];
  }

  // Bin code of a raw value.
  uint8_t BinOf(int c, float value) const;

  // Bins a whole matrix (must have the same feature count).
  BinnedMatrix Transform(const DataMatrix& data) const;

 private:
  int max_bins_;
  // upper_bounds_[c] is sorted ascending; size NumBins(c) - 1.
  std::vector<std::vector<float>> upper_bounds_;
};

}  // namespace gbdt
}  // namespace evrec

#endif  // EVREC_GBDT_BINNER_H_
