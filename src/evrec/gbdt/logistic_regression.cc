#include "evrec/gbdt/logistic_regression.h"

#include <cmath>
#include <numeric>

#include "evrec/util/check.h"
#include "evrec/util/math_util.h"

namespace evrec {
namespace gbdt {

double LogisticRegression::Score(const float* row) const {
  double s = bias_;
  for (size_t i = 0; i < weights_.size(); ++i) {
    double z = (row[i] - mean_[i]) * inv_std_[i];
    s += weights_[i] * z;
  }
  return s;
}

double LogisticRegression::PredictProbability(const float* row) const {
  return Sigmoid(Score(row));
}

std::vector<double> LogisticRegression::PredictProbabilities(
    const DataMatrix& features) const {
  std::vector<double> out(static_cast<size_t>(features.num_rows()));
  for (int r = 0; r < features.num_rows(); ++r) {
    out[static_cast<size_t>(r)] = PredictProbability(features.Row(r));
  }
  return out;
}

std::vector<double> LogisticRegression::Train(
    const DataMatrix& features, const std::vector<float>& labels,
    const LogisticRegressionConfig& config) {
  const int n = features.num_rows();
  const int d = features.num_cols();
  EVREC_CHECK_GT(n, 0);
  EVREC_CHECK_EQ(labels.size(), static_cast<size_t>(n));

  // Fit standardization.
  mean_.assign(static_cast<size_t>(d), 0.0);
  inv_std_.assign(static_cast<size_t>(d), 1.0);
  for (int r = 0; r < n; ++r) {
    const float* row = features.Row(r);
    for (int c = 0; c < d; ++c) mean_[static_cast<size_t>(c)] += row[c];
  }
  for (auto& m : mean_) m /= n;
  std::vector<double> var(static_cast<size_t>(d), 0.0);
  for (int r = 0; r < n; ++r) {
    const float* row = features.Row(r);
    for (int c = 0; c < d; ++c) {
      double delta = row[c] - mean_[static_cast<size_t>(c)];
      var[static_cast<size_t>(c)] += delta * delta;
    }
  }
  for (int c = 0; c < d; ++c) {
    double v = var[static_cast<size_t>(c)] / n;
    inv_std_[static_cast<size_t>(c)] = v > 1e-10 ? 1.0 / std::sqrt(v) : 1.0;
  }

  weights_.assign(static_cast<size_t>(d), 0.0);
  // Start from the prior log-odds so the intercept needs no burn-in.
  double pos = 0.0;
  for (float y : labels) pos += y;
  double rate = ClampProb(pos / n, 1e-6);
  bias_ = std::log(rate / (1.0 - rate));

  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Rng rng(config.seed, 53);

  std::vector<double> losses;
  std::vector<double> grad(static_cast<size_t>(d));
  double lr = config.learning_rate;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    double total = 0.0;
    std::fill(grad.begin(), grad.end(), 0.0);
    double bias_grad = 0.0;
    int batch_count = 0;
    for (int i = 0; i < n; ++i) {
      int r = order[static_cast<size_t>(i)];
      const float* row = features.Row(r);
      double p = Sigmoid(Score(row));
      double y = labels[static_cast<size_t>(r)];
      total += CrossEntropy(y, p);
      double err = p - y;
      for (int c = 0; c < d; ++c) {
        double z = (row[c] - mean_[static_cast<size_t>(c)]) *
                   inv_std_[static_cast<size_t>(c)];
        grad[static_cast<size_t>(c)] +=
            err * z + config.l2 * weights_[static_cast<size_t>(c)];
      }
      bias_grad += err;
      ++batch_count;
      if (batch_count == config.batch_size || i + 1 == n) {
        double scale = lr / batch_count;
        for (int c = 0; c < d; ++c) {
          weights_[static_cast<size_t>(c)] -=
              scale * grad[static_cast<size_t>(c)];
          grad[static_cast<size_t>(c)] = 0.0;
        }
        bias_ -= scale * bias_grad;
        bias_grad = 0.0;
        batch_count = 0;
      }
    }
    losses.push_back(total / n);
    lr *= 0.95;
  }
  return losses;
}

}  // namespace gbdt
}  // namespace evrec
