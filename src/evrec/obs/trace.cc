#include "evrec/obs/trace.h"

#include <atomic>
#include <cstdio>

#include "evrec/util/string_util.h"

namespace evrec {
namespace obs {

namespace {

std::atomic<Clock*> g_clock{nullptr};

// Per-thread span nesting depth.
thread_local int t_span_depth = 0;

}  // namespace

void SetClock(Clock* clock) {
  g_clock.store(clock, std::memory_order_release);
}

Clock* CurrentClock() {
  Clock* clock = g_clock.load(std::memory_order_acquire);
  return clock != nullptr ? clock : SystemClock::Instance();
}

void TraceLog::Record(SpanEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<SpanEvent> TraceLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void TraceLog::DumpJsonLines(std::ostream& os) const {
  for (const SpanEvent& e : Snapshot()) {
    os << StrFormat(
        "{\"name\": \"%s\", \"depth\": %d, \"start_us\": %lld, "
        "\"dur_us\": %lld}\n",
        e.name.c_str(), e.depth, static_cast<long long>(e.start_micros),
        static_cast<long long>(e.duration_micros));
  }
}

Status TraceLog::DumpJsonLines(const std::string& path) const {
  std::string out;
  for (const SpanEvent& e : Snapshot()) {
    out += StrFormat(
        "{\"name\": \"%s\", \"depth\": %d, \"start_us\": %lld, "
        "\"dur_us\": %lld}\n",
        e.name.c_str(), e.depth, static_cast<long long>(e.start_micros),
        static_cast<long long>(e.duration_micros));
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  int close_rc = std::fclose(f);
  if (written != out.size() || close_rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

void TraceLog::DumpText(std::ostream& os) const {
  for (const SpanEvent& e : Snapshot()) {
    os << StrFormat("%*s%s: %.3f ms\n", e.depth * 2, "", e.name.c_str(),
                    static_cast<double>(e.duration_micros) / 1000.0);
  }
}

TraceLog* TraceLog::Global() {
  static TraceLog* log = new TraceLog();
  return log;
}

ScopedSpan::ScopedSpan(const char* name, MetricRegistry* registry,
                       TraceLog* log)
    : name_(name),
      registry_(registry != nullptr ? registry : MetricRegistry::Global()),
      log_(log != nullptr ? log : TraceLog::Global()),
      start_micros_(CurrentClock()->NowMicros()),
      depth_(t_span_depth++) {}

ScopedSpan::~ScopedSpan() {
  --t_span_depth;
  int64_t duration = CurrentClock()->NowMicros() - start_micros_;
  SpanEvent event;
  event.name = name_;
  event.depth = depth_;
  event.start_micros = start_micros_;
  event.duration_micros = duration;
  log_->Record(std::move(event));
  registry_->GetHistogram(std::string("span.") + name_)
      ->Record(static_cast<double>(duration));
}

}  // namespace obs
}  // namespace evrec
