#include "evrec/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>

#include "evrec/obs/profile.h"
#include "evrec/util/logging.h"
#include "evrec/util/string_util.h"

namespace evrec {
namespace obs {

namespace {

std::atomic<Clock*> g_clock{nullptr};

// Innermost open span on this thread (for AddSpanTag / ActiveTraceId).
thread_local ScopedSpan* t_active_span = nullptr;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

std::string HexId(uint64_t id) {
  return StrFormat("%016llx", static_cast<unsigned long long>(id));
}

std::string TagsJson(const SpanEvent& e) {
  std::string out = "{";
  for (size_t i = 0; i < e.tags.size(); ++i) {
    out += StrFormat("%s\"%s\": \"%s\"", i == 0 ? "" : ", ",
                     JsonEscape(e.tags[i].first).c_str(),
                     JsonEscape(e.tags[i].second).c_str());
  }
  out += "}";
  return out;
}

std::string SpanJsonLine(const SpanEvent& e) {
  return StrFormat(
      "{\"name\": \"%s\", \"depth\": %d, \"start_us\": %lld, "
      "\"dur_us\": %lld, \"trace\": \"%s\", \"span\": \"%s\", "
      "\"parent\": \"%s\", \"thread\": %d, \"tags\": %s}\n",
      JsonEscape(e.name).c_str(), e.depth,
      static_cast<long long>(e.start_micros),
      static_cast<long long>(e.duration_micros), HexId(e.trace_id).c_str(),
      HexId(e.span_id).c_str(), HexId(e.parent_id).c_str(), e.thread,
      TagsJson(e).c_str());
}

Status WriteWholeFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  int close_rc = std::fclose(f);
  if (written != bytes.size() || close_rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace

void SetClock(Clock* clock) {
  g_clock.store(clock, std::memory_order_release);
}

Clock* CurrentClock() {
  Clock* clock = g_clock.load(std::memory_order_acquire);
  return clock != nullptr ? clock : SystemClock::Instance();
}

// ---------- TraceLog ----------

TraceLog::TraceLog(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

void TraceLog::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, capacity);
}

void TraceLog::SetSampler(const TailSamplerConfig& sampler) {
  std::lock_guard<std::mutex> lock(mu_);
  sampler_ = sampler;
}

TailSamplerConfig TraceLog::sampler() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampler_;
}

void TraceLog::MarkKeep(uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_[trace_id].keep = true;
}

bool TraceLog::SamplerKeeps(const TailSamplerConfig& sampler,
                            uint64_t trace_id) {
  if (sampler.keep_fraction >= 1.0) return true;
  if (sampler.keep_fraction <= 0.0) return false;
  // Splitmix64-style scramble of (seed, trace id): the keep set is a pure
  // function of the pair, so replays and different thread counts agree.
  uint64_t x = trace_id + 0x9e3779b97f4a7c15ull * (sampler.seed + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  double unit = static_cast<double>(x >> 11) *
                (1.0 / static_cast<double>(1ull << 53));
  return unit < sampler.keep_fraction;
}

void TraceLog::AppendRetainedLocked(SpanEvent event) {
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
    MetricRegistry::Global()->GetCounter("trace.dropped")->Increment();
    EVREC_LOG_EVERY_N(WARN, 4096)
        << "trace ring buffer full (capacity " << capacity_
        << "); dropping oldest spans (" << dropped_ << " dropped so far)";
  }
  events_.push_back(std::move(event));
}

void TraceLog::FinalizeTraceLocked(uint64_t trace_id) {
  auto it = pending_.find(trace_id);
  if (it == pending_.end()) return;
  PendingTrace trace = std::move(it->second);
  pending_.erase(it);
  if (trace.keep || SamplerKeeps(sampler_, trace_id)) {
    for (SpanEvent& e : trace.spans) AppendRetainedLocked(std::move(e));
  } else {
    ++sampled_out_;
    MetricRegistry::Global()->GetCounter("trace.sampled_out")->Increment();
  }
}

void TraceLog::Record(SpanEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (event.trace_id == 0) {
    // Hand-built event with no trace identity: retain directly (the
    // sampler only reasons about whole traces).
    AppendRetainedLocked(std::move(event));
    return;
  }
  const bool is_root = event.parent_id == 0;
  const uint64_t trace_id = event.trace_id;
  PendingTrace& pending = pending_[trace_id];
  pending.spans.push_back(std::move(event));
  if (pending.spans.size() > capacity_) {
    // A single runaway trace (a long training run) must not hold
    // unbounded memory while its root stays open.
    pending.spans.pop_front();
    ++dropped_;
    MetricRegistry::Global()->GetCounter("trace.dropped")->Increment();
    EVREC_LOG_EVERY_N(WARN, 4096)
        << "trace " << trace_id << " exceeds span capacity " << capacity_
        << "; dropping its oldest spans";
  }
  if (is_root) FinalizeTraceLocked(trace_id);
}

std::vector<SpanEvent> TraceLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SpanEvent>(events_.begin(), events_.end());
}

size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t TraceLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t TraceLog::sampled_out() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_out_;
}

void TraceLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  pending_.clear();
  dropped_ = 0;
  sampled_out_ = 0;
}

void TraceLog::DumpJsonLines(std::ostream& os) const {
  for (const SpanEvent& e : Snapshot()) os << SpanJsonLine(e);
}

Status TraceLog::DumpJsonLines(const std::string& path) const {
  std::string out;
  for (const SpanEvent& e : Snapshot()) out += SpanJsonLine(e);
  return WriteWholeFile(path, out);
}

void TraceLog::DumpText(std::ostream& os) const {
  for (const SpanEvent& e : Snapshot()) {
    os << StrFormat("%*s%s: %.3f ms\n", e.depth * 2, "", e.name.c_str(),
                    static_cast<double>(e.duration_micros) / 1000.0);
  }
}

void TraceLog::DumpChromeTrace(std::ostream& os) const {
  std::vector<SpanEvent> events = Snapshot();
  // Deterministic event order: chronological, ties broken by ids (span
  // ids are unique within a trace, trace ids across the process).
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_micros != b.start_micros) {
                return a.start_micros < b.start_micros;
              }
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              return a.span_id < b.span_id;
            });
  os << "{\"traceEvents\": [\n"
     << "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
        "\"args\": {\"name\": \"evrec\"}}";
  for (const SpanEvent& e : events) {
    std::string args = StrFormat(
        "{\"trace\": \"%s\", \"span\": \"%s\", \"parent\": \"%s\", "
        "\"depth\": \"%d\"",
        HexId(e.trace_id).c_str(), HexId(e.span_id).c_str(),
        HexId(e.parent_id).c_str(), e.depth);
    for (const auto& [key, value] : e.tags) {
      args += StrFormat(", \"%s\": \"%s\"", JsonEscape(key).c_str(),
                        JsonEscape(value).c_str());
    }
    args += "}";
    os << StrFormat(
        ",\n{\"name\": \"%s\", \"cat\": \"evrec\", \"ph\": \"X\", "
        "\"ts\": %lld, \"dur\": %lld, \"pid\": 1, \"tid\": %d, "
        "\"args\": %s}",
        JsonEscape(e.name).c_str(), static_cast<long long>(e.start_micros),
        static_cast<long long>(e.duration_micros), e.thread, args.c_str());
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

Status TraceLog::DumpChromeTrace(const std::string& path) const {
  std::ostringstream os;
  DumpChromeTrace(os);
  return WriteWholeFile(path, os.str());
}

TraceLog* TraceLog::Global() {
  static TraceLog* log = new TraceLog();
  return log;
}

// ---------- ScopedSpan ----------

ScopedSpan::ScopedSpan(const char* name, MetricRegistry* registry,
                       TraceLog* log)
    : name_(name),
      registry_(registry != nullptr ? registry : MetricRegistry::Global()),
      log_(log != nullptr ? log : TraceLog::Global()),
      saved_(CurrentTraceContext()) {
  const bool new_trace = saved_.trace_id == 0;
  trace_id_ = new_trace ? NextTraceId() : saved_.trace_id;
  parent_id_ = saved_.span_id;
  depth_ = saved_.depth;
  // A root's identity comes from its fresh trace id alone — the outer
  // sibling counter is thread history, and folding it in would make root
  // ids depend on what else ran on this thread earlier.
  span_id_ = DeriveSpanId(trace_id_, parent_id_, name,
                          new_trace ? 0 : saved_.child_seq);
  // Profiler cost scope: link this span's frame under the parent's (the
  // saved context carries the parent frame across threads) and expose it
  // to children through the inner context.
  frame_.name = name;
  frame_.parent = saved_.frame;
  frame_.child_micros = &child_micros_;
  frame_.child_alloc_bytes = &child_alloc_bytes_;
  frame_.child_alloc_count = &child_alloc_count_;
  frame_.thread = TraceThreadOrdinal();
  TraceContext inner;
  inner.trace_id = trace_id_;
  inner.span_id = span_id_;
  inner.depth = depth_ + 1;
  inner.child_seq = 0;
  inner.frame = &frame_;
  SetCurrentTraceContext(inner);
  prev_active_ = t_active_span;
  t_active_span = this;
  const ThreadCostSnapshot open_cost = ThreadCost();
  open_alloc_bytes_ = open_cost.alloc_bytes;
  open_alloc_count_ = open_cost.alloc_count;
  start_micros_ = CurrentClock()->NowMicros();
}

ScopedSpan::~ScopedSpan() {
  t_active_span = prev_active_;
  // Restore the parent frame with its sibling counter advanced, so the
  // next span at this level gets a distinct deterministic ordinal. Closing
  // a root restores the empty context untouched: the next root gets a new
  // trace id anyway, and leaving child_seq at zero keeps root span ids
  // independent of how many traces this thread has already run.
  TraceContext restored = saved_;
  if (saved_.trace_id != 0) restored.child_seq = saved_.child_seq + 1;
  SetCurrentTraceContext(restored);

  int64_t duration = CurrentClock()->NowMicros() - start_micros_;

  // Profiler cost accounting. The allocation window is read before any
  // bookkeeping below allocates, and everything after this line runs
  // tally-suppressed: span bookkeeping is not request work, and letting
  // it tally would make a parent's self-allocation depend on which thread
  // a child's destructor ran on.
  const ThreadCostSnapshot close_cost = ThreadCost();
  ScopedTallySuppress suppress;
  const uint64_t window_bytes = close_cost.alloc_bytes - open_alloc_bytes_;
  const uint64_t window_count = close_cost.alloc_count - open_alloc_count_;
  const uint64_t child_bytes =
      child_alloc_bytes_.load(std::memory_order_relaxed);
  const uint64_t child_count =
      child_alloc_count_.load(std::memory_order_relaxed);
  int64_t self_micros =
      duration - child_micros_.load(std::memory_order_relaxed);
  if (self_micros < 0) {
    self_micros = 0;  // cross-thread children can out-sum wall time
  }
  const uint64_t self_bytes =
      window_bytes > child_bytes ? window_bytes - child_bytes : 0;
  const uint64_t self_count =
      window_count > child_count ? window_count - child_count : 0;
  if (frame_.parent != nullptr) {
    frame_.parent->child_micros->fetch_add(duration,
                                           std::memory_order_relaxed);
    if (frame_.parent->thread == TraceThreadOrdinal()) {
      // Same-thread child: the parent's own window contains this whole
      // window, so hand it up for subtraction. A cross-thread child's
      // allocations never entered the parent's window in the first place
      // — which is exactly why self-bytes come out identical at any
      // thread count.
      frame_.parent->child_alloc_bytes->fetch_add(window_bytes,
                                                  std::memory_order_relaxed);
      frame_.parent->child_alloc_count->fetch_add(window_count,
                                                  std::memory_order_relaxed);
    }
  }
  Profiler::Global()->ChargeSpan(&frame_, self_micros, self_bytes,
                                 self_count);

  SpanEvent event;
  event.name = name_;
  event.trace_id = trace_id_;
  event.span_id = span_id_;
  event.parent_id = parent_id_;
  event.depth = depth_;
  event.thread = TraceThreadOrdinal();
  event.start_micros = start_micros_;
  event.duration_micros = duration;
  event.tags = std::move(tags_);
  log_->Record(std::move(event));
  registry_->GetHistogram(std::string("span.") + name_)
      ->RecordWithExemplar(static_cast<double>(duration), trace_id_);
}

void ScopedSpan::AddTag(const std::string& key, std::string value) {
  tags_.emplace_back(key, std::move(value));
}

void ScopedSpan::KeepTrace() { log_->MarkKeep(trace_id_); }

void AddSpanTag(const std::string& key, std::string value) {
  if (t_active_span != nullptr) {
    t_active_span->AddTag(key, std::move(value));
  }
}

uint64_t ActiveTraceId() {
  return t_active_span != nullptr ? t_active_span->trace_id_ : 0;
}

}  // namespace obs
}  // namespace evrec
