#include "evrec/obs/slo.h"

#include <algorithm>

#include "evrec/obs/profile.h"
#include "evrec/util/check.h"
#include "evrec/util/logging.h"
#include "evrec/util/string_util.h"

namespace evrec {
namespace obs {

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
    case AlertState::kResolved: return "resolved";
  }
  return "unknown";
}

std::vector<BurnRateRule> DefaultBurnRateRules(int64_t time_scale) {
  EVREC_CHECK_GT(time_scale, 0);
  BurnRateRule fast;
  fast.name = "fast";
  fast.short_window_micros = 5 * 60 * 1000000LL / time_scale;
  fast.long_window_micros = 60 * 60 * 1000000LL / time_scale;
  fast.threshold = 14.4;
  fast.pending_micros = 2 * 60 * 1000000LL / time_scale;
  fast.resolve_micros = 15 * 60 * 1000000LL / time_scale;
  BurnRateRule slow;
  slow.name = "slow";
  slow.short_window_micros = 6 * 3600 * 1000000LL / time_scale;
  slow.long_window_micros = 72 * 3600 * 1000000LL / time_scale;
  slow.threshold = 1.0;
  slow.pending_micros = 30 * 60 * 1000000LL / time_scale;
  slow.resolve_micros = 60 * 60 * 1000000LL / time_scale;
  return {fast, slow};
}

// ---------- Slo ----------

Slo::Slo(const SloConfig& config, Clock* clock, MetricRegistry* registry)
    : config_(config), clock_(clock),
      total_(clock, config.window), bad_(clock, config.window) {
  EVREC_CHECK(clock != nullptr);
  EVREC_CHECK(registry != nullptr);
  EVREC_CHECK(config_.objective > 0.0 && config_.objective < 1.0)
      << "SLO objective must be in (0, 1)";
  EVREC_CHECK(!config_.rules.empty())
      << "SLO '" << config_.name << "' declares no burn-rate rules";
  const int64_t capacity = config_.window.bucket_width_micros *
                           config_.window.num_buckets;
  rules_.resize(config_.rules.size());
  for (size_t r = 0; r < config_.rules.size(); ++r) {
    const BurnRateRule& rule = config_.rules[r];
    EVREC_CHECK_GT(rule.short_window_micros, 0);
    EVREC_CHECK(rule.short_window_micros <= rule.long_window_micros)
        << "rule '" << rule.name << "': short window exceeds long window";
    EVREC_CHECK(rule.long_window_micros <= capacity)
        << "SLO '" << config_.name << "' rule '" << rule.name
        << "': long window exceeds the ring capacity";
    rules_[r].fired_counter = registry->GetCounter(
        "slo." + config_.name + "." + rule.name + ".fired");
    rules_[r].resolved_counter = registry->GetCounter(
        "slo." + config_.name + "." + rule.name + ".resolved");
  }
}

void Slo::Record(bool good) {
  total_.Add(1);
  if (!good) bad_.Add(1);
}

double Slo::ErrorRate(int64_t window_micros) const {
  uint64_t total = total_.Sum(window_micros);
  if (total == 0) return 0.0;
  uint64_t bad = bad_.Sum(window_micros);
  return static_cast<double>(bad) / static_cast<double>(total);
}

double Slo::BurnRate(int64_t window_micros) const {
  double budget = 1.0 - config_.objective;
  return ErrorRate(window_micros) / budget;
}

void Slo::TransitionLocked(size_t r, AlertState to, double burn_short,
                           double burn_long,
                           std::vector<AlertEvent>* timeline) {
  RuleState& state = rules_[r];
  const BurnRateRule& rule = config_.rules[r];
  AlertEvent event;
  event.at_micros = clock_->NowMicros();
  event.slo = config_.name;
  event.rule = rule.name;
  event.from = state.state;
  event.to = to;
  event.burn_short = burn_short;
  event.burn_long = burn_long;
  if (to == AlertState::kFiring) {
    ++state.fired;
    state.fired_counter->Increment();
  } else if (to == AlertState::kResolved) {
    ++state.resolved;
    state.resolved_counter->Increment();
  }
  // Structured key=value record; firing/refiring is operator-urgent.
  (to == AlertState::kFiring ? EVREC_LOG(WARN) : EVREC_LOG(INFO))
      << "[slo] alert=" << config_.name << "/" << rule.name
      << " state=" << AlertStateName(state.state) << "->"
      << AlertStateName(to)
      << " burn_short=" << burn_short << " burn_long=" << burn_long
      << " threshold=" << rule.threshold;
  state.state = to;
  state.since_micros = event.at_micros;
  if (timeline != nullptr) timeline->push_back(std::move(event));
}

void Slo::Tick(std::vector<AlertEvent>* timeline) {
  // Burn rates read the rolling counters (their own locks) before taking
  // the rule-state lock.
  std::vector<double> shorts(config_.rules.size());
  std::vector<double> longs(config_.rules.size());
  for (size_t r = 0; r < config_.rules.size(); ++r) {
    shorts[r] = BurnRate(config_.rules[r].short_window_micros);
    longs[r] = BurnRate(config_.rules[r].long_window_micros);
  }
  int64_t now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t r = 0; r < config_.rules.size(); ++r) {
    const BurnRateRule& rule = config_.rules[r];
    RuleState& state = rules_[r];
    const bool cond =
        shorts[r] > rule.threshold && longs[r] > rule.threshold;
    switch (state.state) {
      case AlertState::kInactive:
        if (cond) {
          TransitionLocked(r, AlertState::kPending, shorts[r], longs[r],
                           timeline);
          if (now - state.since_micros >= rule.pending_micros) {
            TransitionLocked(r, AlertState::kFiring, shorts[r], longs[r],
                             timeline);
          }
        }
        break;
      case AlertState::kPending:
        if (!cond) {
          TransitionLocked(r, AlertState::kInactive, shorts[r], longs[r],
                           timeline);
        } else if (now - state.since_micros >= rule.pending_micros) {
          TransitionLocked(r, AlertState::kFiring, shorts[r], longs[r],
                           timeline);
        }
        break;
      case AlertState::kFiring:
        if (!cond) {
          TransitionLocked(r, AlertState::kResolved, shorts[r], longs[r],
                           timeline);
        }
        break;
      case AlertState::kResolved:
        if (cond) {
          // The problem came back before the quiet period elapsed: this is
          // the same episode, so it re-fires without re-pending.
          TransitionLocked(r, AlertState::kFiring, shorts[r], longs[r],
                           timeline);
        } else if (now - state.since_micros >= rule.resolve_micros) {
          TransitionLocked(r, AlertState::kInactive, shorts[r], longs[r],
                           timeline);
        }
        break;
    }
  }
}

bool Slo::AnyFiring() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const RuleState& state : rules_) {
    if (state.state == AlertState::kFiring) return true;
  }
  return false;
}

std::vector<Slo::RuleStatus> Slo::Status() const {
  std::vector<RuleStatus> out(config_.rules.size());
  for (size_t r = 0; r < config_.rules.size(); ++r) {
    out[r].rule = config_.rules[r];
    out[r].burn_short = BurnRate(config_.rules[r].short_window_micros);
    out[r].burn_long = BurnRate(config_.rules[r].long_window_micros);
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t r = 0; r < config_.rules.size(); ++r) {
    out[r].state = rules_[r].state;
    out[r].fired = rules_[r].fired;
    out[r].resolved = rules_[r].resolved;
  }
  return out;
}

// ---------- SloEngine ----------

SloEngine::SloEngine(Clock* clock, MetricRegistry* registry,
                     TraceLog* trace_log, Profiler* profiler)
    : clock_(clock),
      registry_(registry != nullptr ? registry : MetricRegistry::Global()),
      trace_log_(trace_log != nullptr ? trace_log : TraceLog::Global()),
      profiler_(profiler != nullptr ? profiler : Profiler::Global()) {
  EVREC_CHECK(clock != nullptr);
  firing_gauge_ = registry_->GetGauge("slo.alerts.firing");
}

Slo* SloEngine::AddObjective(const SloConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  slos_.push_back(std::make_unique<Slo>(config, clock_, registry_));
  return slos_.back().get();
}

void SloEngine::TickLocked() {
  int firing = 0;
  for (const auto& slo : slos_) {
    slo->Tick(&timeline_);
    if (slo->AnyFiring()) ++firing;
  }
  firing_gauge_->Set(static_cast<double>(firing));
}

void SloEngine::RecordRequest(bool error, int64_t latency_micros,
                              uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& slo : slos_) {
    switch (slo->config().kind) {
      case SloKind::kAvailability:
        slo->Record(!error);
        break;
      case SloKind::kLatency:
        slo->Record(latency_micros <=
                    slo->config().latency_threshold_micros);
        break;
    }
  }
  TickLocked();
  bool firing = false;
  for (const auto& slo : slos_) {
    if (slo->AnyFiring()) {
      firing = true;
      break;
    }
  }
  if (firing && trace_id != 0) {
    // The episode is live: keep this request's trace whatever the tail
    // sampler would have decided, and mirror the retention into the
    // profiler so the incident's flamegraph names the same trace ids.
    // An armed profiler starts collecting on the first degraded request.
    trace_log_->MarkKeep(trace_id);
    ++traces_marked_;
    profiler_->EnsureIncidentCollection();
    profiler_->MarkIncidentTrace(trace_id);
  }
}

void SloEngine::Tick() {
  std::lock_guard<std::mutex> lock(mu_);
  TickLocked();
}

bool SloEngine::AnyFiring() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& slo : slos_) {
    if (slo->AnyFiring()) return true;
  }
  return false;
}

uint64_t SloEngine::traces_marked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_marked_;
}

std::vector<AlertEvent> SloEngine::Timeline() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timeline_;
}

void SloEngine::DumpStatus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << StrFormat("%-14s %-12s %8s  %-6s %-9s %10s %10s %6s %9s\n", "slo",
                  "kind", "target", "rule", "state", "burn_short",
                  "burn_long", "fired", "resolved");
  for (const auto& slo : slos_) {
    const SloConfig& cfg = slo->config();
    for (const Slo::RuleStatus& rs : slo->Status()) {
      os << StrFormat(
          "%-14s %-12s %8s  %-6s %-9s %10s %10s %6llu %9llu\n",
          cfg.name.c_str(),
          cfg.kind == SloKind::kAvailability ? "availability" : "latency",
          FormatMetricValue(cfg.objective).c_str(), rs.rule.name.c_str(),
          AlertStateName(rs.state),
          FormatMetricValue(rs.burn_short).c_str(),
          FormatMetricValue(rs.burn_long).c_str(),
          static_cast<unsigned long long>(rs.fired),
          static_cast<unsigned long long>(rs.resolved));
    }
  }
}

void SloEngine::DumpTimeline(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (timeline_.empty()) {
    os << "  (no alert transitions)\n";
    return;
  }
  for (const AlertEvent& e : timeline_) {
    os << StrFormat("  t=%.3fs %s/%s %s -> %s (burn %s/%s)\n",
                    static_cast<double>(e.at_micros) / 1e6, e.slo.c_str(),
                    e.rule.c_str(), AlertStateName(e.from),
                    AlertStateName(e.to),
                    FormatMetricValue(e.burn_short).c_str(),
                    FormatMetricValue(e.burn_long).c_str());
  }
}

}  // namespace obs
}  // namespace evrec
