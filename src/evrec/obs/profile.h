// In-process sampling profiler with allocation accounting.
//
// Answers the question the metric/trace layers cannot: where, inside an
// instrumented span, CPU time and heap traffic actually go. Two collection
// modes feed one aggregate of folded stacks:
//
//   kReal           SIGPROF fires `sample_hz` times per second of consumed
//                   CPU time; the signal handler walks the real call stack
//                   (backtrace) and pushes raw PCs plus the interrupted
//                   thread's trace id into a bounded lock-free ring. The
//                   ring is drained and symbolized (dladdr) off the hot
//                   path — never inside the handler.
//
//   kDeterministic  No signals. Every closing trace span charges
//                   floor(self_micros / period) synthetic samples to its
//                   symbolic span-name stack (root;child;leaf), which
//                   util/trace_context propagates across ParallelFor
//                   shards exactly like trace ids. Under a FakeClock the
//                   exported profile is byte-identical across runs and
//                   across --threads — this is the mode every CLI demo and
//                   CI gate uses. An injectable tick source and a
//                   synthetic stack provider (RecordSynthetic) let tests
//                   replace the clock arithmetic entirely.
//
// Allocation accounting is mode-independent and always cheap: linking this
// library replaces the global operator new/delete (profile.cc) with
// versions that bump thread-local byte/count tallies before delegating to
// malloc/free. obs::ScopedSpan snapshots the tallies at open and charges
// its *self* window (own window minus same-thread children's windows) at
// close, so every stack in the profile carries heap traffic next to CPU
// samples, and serve::RecommendationService can tag each request with its
// allocation cost. The tallies count cumulative traffic, not live bytes —
// frees are free.
//
// Signal-safety rules (kReal): the handler touches only POD thread-locals,
// lock-free atomics, backtrace() (primed once at Start so its lazy dlopen
// happens outside the handler), and memcpy; it saves/restores errno and
// never allocates, locks, or formats.
//
// SLO coupling: Arm() stores a config without collecting. While any burn-
// rate alert is firing, SloEngine::RecordRequest force-enables collection
// (EnsureIncidentCollection) and retains the degraded request's trace id
// in the profile (MarkIncidentTrace) — the profile-side mirror of
// TraceLog::MarkKeep — so an operator gets a flamegraph of the incident,
// not just a burn rate.

#ifndef EVREC_OBS_PROFILE_H_
#define EVREC_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "evrec/util/status.h"
#include "evrec/util/trace_context.h"

namespace evrec {
namespace obs {

struct ProfileConfig {
  // Samples per second of CPU time (kReal: SIGPROF rate; kDeterministic:
  // one synthetic sample per 1e6/sample_hz micros of span self-time).
  int sample_hz = 100;
  // kReal: capacity of the pending-sample ring (rounded up to a power of
  // two). Overflow drops samples and counts them, never blocks.
  size_t ring_capacity = 8192;
  // kReal: stack frames kept per sample (hard cap 64).
  int max_frames = 48;
  // Bound on retained per-request cost entries; when full, the oldest
  // non-incident entry is evicted first (incident entries parallel trace
  // retention and survive as long as possible).
  size_t max_request_entries = 4096;
  // Auto-stop: collection turns itself off once this much observability-
  // clock time has elapsed since Start (0 = run until Stop). Deterministic
  // under a FakeClock.
  int64_t max_duration_micros = 0;
  // Where the CLI writes the text profile on exit (informational here).
  std::string out_path;
};

// One folded stack ("root;child;leaf") with its accumulated costs.
struct ProfileStackEntry {
  std::string stack;
  uint64_t samples = 0;
  int64_t self_micros = 0;  // kDeterministic only; 0 in kReal
  uint64_t alloc_bytes = 0;
  uint64_t alloc_count = 0;
};

// Per-request cost attribution, keyed by the request's trace id.
struct ProfileRequestEntry {
  uint64_t trace_id = 0;
  uint64_t cpu_samples = 0;
  uint64_t alloc_bytes = 0;
  // Retained because an SLO alert was firing when the request was served.
  bool forced = false;
};

// Cumulative (monotone) tallies of the calling thread. Deltas across a
// region give that region's same-thread cost; the serving layer snapshots
// around each request.
struct ThreadCostSnapshot {
  uint64_t alloc_bytes = 0;
  uint64_t alloc_count = 0;
  uint64_t cpu_samples = 0;
};
ThreadCostSnapshot ThreadCost();

// Suppresses allocation tallying on the calling thread while alive
// (nestable). The tracer and profiler wrap their own bookkeeping in this:
// internal allocations must not pollute the windows being measured — and,
// more subtly, must not make a parent's self-allocation depend on whether
// a child span's bookkeeping ran on the caller (--threads 1) or on a pool
// worker (--threads N), which would break export byte-identity.
class ScopedTallySuppress {
 public:
  ScopedTallySuppress();
  ~ScopedTallySuppress();

  ScopedTallySuppress(const ScopedTallySuppress&) = delete;
  ScopedTallySuppress& operator=(const ScopedTallySuppress&) = delete;
};

class Profiler {
 public:
  enum class Mode { kOff, kReal, kDeterministic };

  Profiler();
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Starts SIGPROF sampling. Fails if this (or another) Profiler is
  // already collecting in real mode — ITIMER_PROF is process-wide.
  Status Start(const ProfileConfig& config);
  // Starts deterministic (span-driven) collection. Never fails.
  void StartDeterministic(const ProfileConfig& config);
  // Stops collection (disarms the timer in kReal) and folds any pending
  // ring samples into the aggregate. The aggregate survives for export.
  void Stop();

  Mode mode() const;
  bool collecting() const;

  // Incident profiling: stores `config` without starting. The first
  // EnsureIncidentCollection() after arming starts deterministic
  // collection with the stored config; subsequent calls are no-ops while
  // collection is live. Unarmed and idle, both calls are no-ops.
  void Arm(const ProfileConfig& config);
  bool armed() const;
  void EnsureIncidentCollection();
  // Times incident collection was activated by a firing alert.
  uint64_t incident_activations() const;

  // Retains `trace_id` in the request table as an incident (forced) entry:
  // upgrades the entry if the id is already present, inserts a cost-less
  // placeholder otherwise (NoteRequest fills the cost in later). The
  // profile-side mirror of TraceLog::MarkKeep.
  void MarkIncidentTrace(uint64_t trace_id);

  // kDeterministic: charges a closing span's self cost to the symbolic
  // stack named by walking `leaf` to the root. Called by ScopedSpan.
  void ChargeSpan(const ProfileFrame* leaf, int64_t self_micros,
                  uint64_t alloc_bytes, uint64_t alloc_count);

  // Synthetic stack provider (tests): charges an explicit root-first
  // stack, bypassing spans and the tick source.
  void RecordSynthetic(const std::vector<std::string>& frames,
                       uint64_t samples, int64_t self_micros,
                       uint64_t alloc_bytes, uint64_t alloc_count);

  // Injectable tick source (kDeterministic): maps span self-time to a
  // sample count. Default: self_micros / (1e6 / sample_hz). nullptr
  // restores the default.
  using TickFn = std::function<uint64_t(int64_t self_micros)>;
  void SetTickSource(TickFn fn);

  // Records one served request's cost. Merges into an existing entry with
  // the same trace id (e.g. a MarkIncidentTrace placeholder) if it is the
  // most recent one; `forced` marks the entry incident-retained.
  void NoteRequest(uint64_t trace_id, uint64_t cpu_samples,
                   uint64_t alloc_bytes, bool forced);

  // kReal: folds pending ring samples into the aggregate (symbolizing
  // via dladdr) and returns how many were folded. Stop() and the
  // exporters call this; safe to call any time.
  size_t DrainPending();

  uint64_t total_samples() const;
  uint64_t dropped_samples() const;  // ring overflow (kReal)
  uint64_t total_alloc_bytes() const;
  uint64_t total_alloc_count() const;
  uint64_t forced_requests() const;

  // Aggregate views: stacks sorted lexicographically, requests in
  // retention order. Both deterministic for deterministic input.
  std::vector<ProfileStackEntry> StackEntries() const;
  std::vector<ProfileRequestEntry> RequestEntries() const;

  // Folded-stack export (`stack;frames N`), flamegraph.pl input, sorted.
  void WriteFolded(std::ostream& os) const;
  Status WriteFolded(const std::string& path) const;
  // Self-describing text profile (protobuf-less pprof-style: header
  // comments, one `stack`/`request` record per line). ParseProfileText
  // round-trips it.
  void WriteText(std::ostream& os) const;
  Status WriteText(const std::string& path) const;

  // Drops the aggregate, request table, and counters; keeps mode/config.
  void Clear();

  static Profiler* Global();

  // kReal machinery (ring + saved signal/timer state). Public only so the
  // file-local SIGPROF handler can reach the ring; not part of the API.
  struct RealState;

 private:
  struct StackCost {
    uint64_t samples = 0;
    int64_t self_micros = 0;
    uint64_t alloc_bytes = 0;
    uint64_t alloc_count = 0;
  };

  void AddCostLocked(const std::string& stack, const StackCost& cost);
  void NoteRequestLocked(uint64_t trace_id, uint64_t cpu_samples,
                         uint64_t alloc_bytes, bool forced);
  // Deterministic auto-stop: disables collection once the configured
  // duration has elapsed on the observability clock.
  void MaybeExpire();
  size_t DrainPendingLocked();
  void StopCollectionLocked();

  mutable std::mutex mu_;
  ProfileConfig config_;
  ProfileConfig armed_config_;
  std::atomic<int> mode_{static_cast<int>(Mode::kOff)};
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> incident_activations_{0};
  int64_t period_micros_ = 10000;
  int64_t start_micros_ = 0;
  TickFn tick_fn_;

  std::map<std::string, StackCost> stacks_;
  std::deque<ProfileRequestEntry> requests_;
  uint64_t forced_requests_ = 0;
  uint64_t total_samples_ = 0;
  uint64_t total_alloc_bytes_ = 0;
  uint64_t total_alloc_count_ = 0;
  // Applied to the ring's raw dropped counter so Clear() can zero the
  // reported value without touching an atomic a handler may be bumping.
  int64_t dropped_offset_ = 0;

  // Current ring (behind an opaque pointer so this header stays free of
  // <signal.h> / <execinfo.h>) plus rings retired by a later Start: a
  // signal delivered around a Stop may still be completing a slot write,
  // so old rings are kept until the Profiler itself dies.
  RealState* real_ = nullptr;
  std::vector<RealState*> retired_;
};

// ---------------------------------------------------------------------------
// Offline analysis (the `evrec_cli profile` subcommand).

struct ParsedProfile {
  std::string mode;
  int64_t period_micros = 0;
  uint64_t total_samples = 0;
  uint64_t dropped_samples = 0;
  uint64_t total_alloc_bytes = 0;
  uint64_t total_alloc_count = 0;
  std::vector<ProfileStackEntry> stacks;
  std::vector<ProfileRequestEntry> requests;
};

// Parses WriteText output. Unknown header lines are ignored (forward
// compatible); malformed records fail with kCorruption.
StatusOr<ParsedProfile> ParseProfileText(const std::string& text);

struct ProfileReportOptions {
  int top_n = 10;
};

// Human report: top-N frames by self and by total (inclusive) cost, the
// per-frame allocation table, and the request summary. Output depends only
// on the profile contents — never on thread ordinals or arrival order.
void WriteProfileReport(const ParsedProfile& profile,
                        const ProfileReportOptions& options, std::ostream& os);

// Re-emits the folded stacks of a parsed profile (flamegraph.pl input).
void WriteFoldedFromParsed(const ParsedProfile& profile, std::ostream& os);

}  // namespace obs
}  // namespace evrec

#endif  // EVREC_OBS_PROFILE_H_
