// MetricRegistry: the library's unified observability surface. A registry
// holds named metrics of four kinds:
//
//   Counter    monotone uint64 (requests served, errors seen)
//   Gauge      latest double (final loss, breaker state)
//   Histogram  fixed exponential buckets with p50/p95/p99 estimation
//              (latencies, per-candidate serve times)
//   Series     append-only (x, y) pairs (per-epoch loss / lr / grad-norm)
//
// All mutation paths are thread-safe: counters and histogram buckets are
// atomics, gauge stores are atomic, series appends lock. Lookup/creation
// locks a registry mutex and returns stable pointers (metrics are never
// deleted), so hot paths resolve a metric once and then update lock-free.
//
// Per-thread sharding: workers can record into private registries and
// Merge() them into a shared one; counters and histograms add, gauges take
// the incoming value, series concatenate.
//
// Exporters: DumpText (aligned human table) and DumpJson / ToJsonString
// (deterministic — names sorted, no wall timestamps — so a replay on a
// FakeClock produces byte-identical snapshots).

#ifndef EVREC_OBS_METRICS_H_
#define EVREC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "evrec/util/status.h"

namespace evrec {
namespace obs {

// Shortest-round-trip-ish float formatting shared by every deterministic
// exporter (JSON, text, OpenMetrics, status reports): integers print with
// no fraction, everything else as %.9g.
std::string FormatMetricValue(double v);

class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramOptions {
  // Bucket i (0-based) covers (upper(i-1), first_upper * growth^i]; one
  // extra overflow bucket catches everything beyond the last bound. The
  // defaults cover 1us .. ~134s in 28 power-of-two latency buckets.
  double first_upper = 1.0;
  double growth = 2.0;
  int num_buckets = 28;
};

// Fixed-bucket exponential histogram. Record() is lock-free; quantiles are
// estimated by linear interpolation inside the covering bucket and clamped
// to the observed [min, max], which keeps them exact for single-sample
// histograms and monotone in q always.
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options = HistogramOptions());

  void Record(double value) { RecordWithExemplar(value, 0); }

  // Records `value` and, when `exemplar_trace_id` is non-zero, stamps it as
  // the covering bucket's exemplar (last writer wins), linking e.g. a p99
  // bucket to a concrete trace in the TraceLog.
  void RecordWithExemplar(double value, uint64_t exemplar_trace_id);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double mean() const;

  // q in [0, 1]; returns 0 when empty.
  double Quantile(double q) const;

  // Adds another histogram's samples into this one. Bucket layouts must
  // match (same options) — EVREC_CHECKed.
  void Merge(const Histogram& other);

  int num_buckets() const { return static_cast<int>(bounds_.size()); }
  // Upper bound of bucket i; the final bucket is unbounded and reports the
  // observed max instead.
  double bucket_upper(int i) const;
  uint64_t bucket_count(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  // Trace id of the most recent exemplar-carrying sample that landed in
  // bucket i; 0 when the bucket has never seen one.
  uint64_t bucket_exemplar(int i) const {
    return exemplars_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  // The recorded value of that same exemplar sample (meaningful only when
  // bucket_exemplar(i) != 0); OpenMetrics exposition attaches it to the
  // bucket line.
  double bucket_exemplar_value(int i) const {
    return exemplar_values_[static_cast<size_t>(i)].load(
        std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;  // inclusive upper bounds, strictly rising
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1 slots
  std::vector<std::atomic<uint64_t>> exemplars_;  // trace id per bucket
  std::vector<std::atomic<double>> exemplar_values_;  // sample per bucket
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// Append-only (x, y) time series, e.g. (epoch, loss). Retention is bounded:
// once a series holds max_points, each append evicts the oldest point and
// bumps the process-wide `metrics.series_dropped` counter (with a
// rate-limited warning), so a long training run cannot grow the registry
// without limit.
class Series {
 public:
  // Default retention per series; ~1 MB of points at 16 bytes each.
  static constexpr size_t kDefaultMaxPoints = 65536;

  void Append(double x, double y);
  std::vector<std::pair<double, double>> Points() const;
  size_t size() const;

  // Total points evicted from this series since creation.
  uint64_t dropped() const;

  // Adjusts the cap (minimum 1); an over-full series evicts down to the new
  // cap on its next Append.
  void set_max_points(size_t max_points);
  size_t max_points() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<double, double>> points_;
  size_t start_ = 0;  // index of the logical head (evicted prefix)
  size_t max_points_ = kDefaultMaxPoints;
  uint64_t dropped_ = 0;
};

struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0, min = 0.0, max = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Find-or-create; returned pointers stay valid for the registry's
  // lifetime. Requesting an existing name with a different metric kind is
  // a programmer error (EVREC_CHECKed). Histogram options apply only on
  // first creation.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const HistogramOptions& options = HistogramOptions());
  Series* GetSeries(const std::string& name);

  // Folds a per-thread shard into this registry (see file comment).
  void Merge(const MetricRegistry& other);

  // Applies `max_points` to every existing series and to series created
  // later (the satellite cap for long training runs).
  void set_series_max_points(size_t max_points);

  // Snapshots for programmatic consumers (benches, tests).
  std::map<std::string, uint64_t> CounterValues() const;
  std::map<std::string, double> GaugeValues() const;
  std::map<std::string, HistogramSnapshot> HistogramValues() const;

  // Name-sorted stable pointers for bucket-level exporters (OpenMetrics);
  // valid for the registry's lifetime.
  std::vector<std::pair<std::string, const Histogram*>> HistogramEntries()
      const;

  // Human-readable aligned table of every metric.
  void DumpText(std::ostream& os) const;

  // Deterministic JSON snapshot (sorted names, fixed float formatting).
  std::string ToJsonString() const;
  Status DumpJson(const std::string& path) const;

  // Drops every metric. Outstanding pointers become dangling — only for
  // test isolation and process-level resets between runs.
  void Reset();

  // Process-wide default registry used when no explicit registry is
  // injected.
  static MetricRegistry* Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, HistogramOptions> histogram_options_;
  std::map<std::string, std::unique_ptr<Series>> series_;
  size_t series_max_points_ = Series::kDefaultMaxPoints;
};

}  // namespace obs
}  // namespace evrec

#endif  // EVREC_OBS_METRICS_H_
