// Offline analysis of exported Chrome trace-event files — the read side of
// TraceLog::DumpChromeTrace, shared by `evrec_cli trace` and tests.
//
//   ParseChromeTrace   Chrome trace JSON -> flat span list
//   ValidateSpans      structural invariants (monotone timestamps, parents
//                      present, one root per trace, child nested in parent)
//   AnalyzeSpans       human report: per-trace summary, critical path of
//                      the slowest trace, top-N slowest spans, self-time
//                      flat profile
//
// Every step is deterministic: spans are re-sorted by (trace, start, span)
// before analysis and thread ids are ignored, so a FakeClock replay prints
// byte-identical reports regardless of --threads.

#ifndef EVREC_OBS_TRACE_ANALYSIS_H_
#define EVREC_OBS_TRACE_ANALYSIS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "evrec/util/status.h"

namespace evrec {
namespace obs {

struct ParsedSpan {
  std::string name;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = trace root
  int64_t start_micros = 0;
  int64_t duration_micros = 0;
  int tid = 0;  // informational only; analysis ignores it
  // Tag key:value pairs from "args" (ids/depth excluded), file order.
  std::vector<std::pair<std::string, std::string>> tags;
};

// Parses a Chrome trace-event document ({"traceEvents": [...]} or a bare
// event array). Keeps "X" (complete) events; metadata ("M") and other
// phases are skipped. Corrupt JSON or events missing required fields
// produce Status::Corruption.
StatusOr<std::vector<ParsedSpan>> ParseChromeTrace(const std::string& text);

// Structural invariants over a parsed span list (file order):
//   - timestamps non-decreasing in file order (exporter sorts by start)
//   - durations >= 0
//   - every non-zero parent id names a span of the same trace
//   - exactly one root (parent 0) per trace
//   - children start/end inside their parent's [start, end] window
// First violation is returned as Status::Corruption.
Status ValidateSpans(const std::vector<ParsedSpan>& spans);

struct TraceAnalysisOptions {
  int top_n = 10;  // rows in the slowest-span table
};

// Writes the analysis report (see file comment) to `os`. The span list
// need not be pre-sorted; call ValidateSpans first if you want structural
// guarantees.
void AnalyzeSpans(const std::vector<ParsedSpan>& spans,
                  const TraceAnalysisOptions& options, std::ostream& os);

}  // namespace obs
}  // namespace evrec

#endif  // EVREC_OBS_TRACE_ANALYSIS_H_
