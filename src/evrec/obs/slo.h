// SLO engine: declared service-level objectives evaluated with
// Google-SRE-style multi-window burn-rate rules, driving an alert state
// machine.
//
// An objective declares what fraction of requests must be "good":
//
//   availability  good = the request completed without errors
//   latency       good = the request finished under a threshold
//
// The error budget is 1 - objective. The burn rate over a window is
//
//   burn = (bad / total over the window) / (1 - objective)
//
// i.e. how many times faster than sustainable the budget is being spent
// (burn 1.0 = exactly on budget). A rule pairs a long window (detection)
// with a short window (fast reset once the problem stops) and trips when
// BOTH exceed its threshold — the SRE workbook's 5m/1h fast-burn page and
// 6h/3d slow-burn ticket are the canonical instances; tests and the
// `evrec_cli monitor` demo scale the windows down so an episode plays out
// in simulated seconds.
//
// Each rule owns an alert state machine:
//
//   inactive --cond--> pending --held pending_micros--> firing
//   pending --!cond--> inactive
//   firing --!cond--> resolved --quiet resolve_micros--> inactive
//   resolved --cond--> firing          (flap: re-fires without re-pending)
//
// Every transition appends an AlertEvent to the engine's timeline, bumps a
// registry counter (slo.<objective>.<rule>.fired / .resolved), and emits a
// structured log line. While any alert is firing, every request observed
// by RecordRequest has its trace force-retained (TraceLog::MarkKeep), so
// the episode's traces survive tail sampling for postmortem analysis.
//
// Determinism: state depends only on the recorded request sequence and the
// clock readings at Tick() — under FakeClock an identical replay produces
// an identical timeline, for any thread count.

#ifndef EVREC_OBS_SLO_H_
#define EVREC_OBS_SLO_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "evrec/obs/metrics.h"
#include "evrec/obs/monitor.h"
#include "evrec/obs/trace.h"

namespace evrec {
namespace obs {

enum class SloKind { kAvailability, kLatency };

enum class AlertState { kInactive, kPending, kFiring, kResolved };
const char* AlertStateName(AlertState state);

struct BurnRateRule {
  std::string name = "fast";
  int64_t short_window_micros = 5 * 60 * 1000000LL;   // SRE: 5m
  int64_t long_window_micros = 60 * 60 * 1000000LL;   // SRE: 1h
  double threshold = 14.4;   // burn-rate both windows must exceed
  int64_t pending_micros = 0;   // condition must hold this long to fire
  int64_t resolve_micros = 0;   // condition must stay clear this long
};

// The SRE workbook's two-stage ladder (fast-burn page on 5m/1h at 14.4,
// slow-burn ticket on 6h/3d at 1.0), with every duration divided by
// `time_scale` so tests and demos replay an episode in simulated seconds.
std::vector<BurnRateRule> DefaultBurnRateRules(int64_t time_scale = 1);

struct SloConfig {
  std::string name;
  SloKind kind = SloKind::kAvailability;
  // Fraction of requests that must be good (error budget = 1 - objective).
  double objective = 0.999;
  // kLatency only: a request is good iff it finishes within this.
  int64_t latency_threshold_micros = 0;
  // Granularity/capacity of the good/bad rings; the capacity must cover
  // the longest rule window (EVREC_CHECKed).
  WindowOptions window;
  std::vector<BurnRateRule> rules;
};

// One alert transition, for the operator-facing timeline.
struct AlertEvent {
  int64_t at_micros = 0;
  std::string slo;
  std::string rule;
  AlertState from = AlertState::kInactive;
  AlertState to = AlertState::kInactive;
  double burn_short = 0.0;
  double burn_long = 0.0;
};

// A single declared objective: windowed good/bad accounting plus one alert
// state machine per rule. Use through SloEngine; exposed for tests.
class Slo {
 public:
  Slo(const SloConfig& config, Clock* clock, MetricRegistry* registry);
  Slo(const Slo&) = delete;
  Slo& operator=(const Slo&) = delete;

  void Record(bool good);

  // Burn rate over the trailing window (0 when the window saw no
  // requests: an idle service spends no budget).
  double BurnRate(int64_t window_micros) const;
  // Fraction of bad requests over the trailing window.
  double ErrorRate(int64_t window_micros) const;

  // Re-evaluates every rule at the current clock reading, appending any
  // transitions to `timeline` (may be null).
  void Tick(std::vector<AlertEvent>* timeline);

  bool AnyFiring() const;

  struct RuleStatus {
    BurnRateRule rule;
    AlertState state = AlertState::kInactive;
    double burn_short = 0.0;
    double burn_long = 0.0;
    uint64_t fired = 0;
    uint64_t resolved = 0;
  };
  std::vector<RuleStatus> Status() const;

  const SloConfig& config() const { return config_; }

 private:
  struct RuleState {
    AlertState state = AlertState::kInactive;
    int64_t since_micros = 0;  // entry time of the current state
    uint64_t fired = 0;
    uint64_t resolved = 0;
    Counter* fired_counter = nullptr;
    Counter* resolved_counter = nullptr;
  };

  void TransitionLocked(size_t r, AlertState to, double burn_short,
                        double burn_long, std::vector<AlertEvent>* timeline);

  SloConfig config_;
  Clock* clock_;
  RollingCounter total_;
  RollingCounter bad_;
  mutable std::mutex mu_;
  std::vector<RuleState> rules_;
};

class Profiler;

// Owns the declared objectives and the shared alert timeline; the serving
// layer feeds it one call per request.
class SloEngine {
 public:
  // Registry for transition counters (nullptr = process global); trace_log
  // for forced retention while firing (nullptr = TraceLog::Global());
  // profiler for incident profiling while firing (nullptr =
  // Profiler::Global() — a no-op unless the profiler was Arm()ed or is
  // already collecting).
  explicit SloEngine(Clock* clock, MetricRegistry* registry = nullptr,
                     TraceLog* trace_log = nullptr,
                     Profiler* profiler = nullptr);

  Slo* AddObjective(const SloConfig& config);

  // Feeds one served request into every objective (availability consumes
  // `error`, latency compares `latency_micros` to its threshold), then
  // re-evaluates alerts. While any alert is firing, `trace_id` (when
  // non-zero) is force-retained — call before the request's root span
  // closes.
  void RecordRequest(bool error, int64_t latency_micros,
                     uint64_t trace_id = 0);

  // Re-evaluates alerts without recording a request (idle time passing).
  void Tick();

  bool AnyFiring() const;

  // Traces force-retained because they were observed while firing. The
  // profiler's request table retains the same ids (forced entries), so
  // profile retention parallels trace retention entry for entry.
  uint64_t traces_marked() const;

  std::vector<AlertEvent> Timeline() const;
  const std::vector<std::unique_ptr<Slo>>& objectives() const {
    return slos_;
  }

  // Operator tables, deterministic under FakeClock: per-rule status and
  // the chronological transition timeline (timestamps in simulated
  // seconds).
  void DumpStatus(std::ostream& os) const;
  void DumpTimeline(std::ostream& os) const;

 private:
  void TickLocked();

  Clock* clock_;
  MetricRegistry* registry_;
  TraceLog* trace_log_;
  Profiler* profiler_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Slo>> slos_;
  std::vector<AlertEvent> timeline_;
  uint64_t traces_marked_ = 0;
  Gauge* firing_gauge_ = nullptr;
};

}  // namespace obs
}  // namespace evrec

#endif  // EVREC_OBS_SLO_H_
