#include "evrec/obs/openmetrics.h"

#include <sstream>

#include "evrec/util/string_util.h"

namespace evrec {
namespace obs {

namespace {

bool IsEnvMetric(const std::string& name) {
  return name.rfind("env.", 0) == 0;
}

// Human window label: whole seconds when possible, else ms, else us.
std::string WindowLabel(int64_t window_micros) {
  if (window_micros % 1000000 == 0) {
    return StrFormat("%llds",
                     static_cast<long long>(window_micros / 1000000));
  }
  if (window_micros % 1000 == 0) {
    return StrFormat("%lldms", static_cast<long long>(window_micros / 1000));
  }
  return StrFormat("%lldus", static_cast<long long>(window_micros));
}

void WriteHistogram(const std::string& name, const Histogram& h,
                    std::ostream& os) {
  os << "# TYPE " << name << " histogram\n";
  uint64_t cumulative = 0;
  const int nb = h.num_buckets();
  for (int b = 0; b <= nb; ++b) {
    cumulative += h.bucket_count(b);
    std::string le =
        b < nb ? FormatMetricValue(h.bucket_upper(b)) : std::string("+Inf");
    os << name << "_bucket{le=\"" << le << "\"} " << cumulative;
    uint64_t ex = h.bucket_exemplar(b);
    if (ex != 0) {
      // OpenMetrics exemplar: ties this bucket to a concrete trace in the
      // TraceLog (ids print exactly as the trace exporters do).
      os << " # {trace_id=\""
         << StrFormat("%016llx", static_cast<unsigned long long>(ex))
         << "\"} " << FormatMetricValue(h.bucket_exemplar_value(b));
    }
    os << "\n";
  }
  os << name << "_sum " << FormatMetricValue(h.sum()) << "\n";
  os << name << "_count " << h.count() << "\n";
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void WriteOpenMetrics(const MetricRegistry& registry, const Monitor* monitor,
                      std::ostream& os, const OpenMetricsOptions& options) {
  for (const auto& [name, value] : registry.CounterValues()) {
    if (!options.include_env && IsEnvMetric(name)) continue;
    std::string n = SanitizeMetricName(name);
    os << "# TYPE " << n << " counter\n";
    os << n << "_total " << value << "\n";
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    if (!options.include_env && IsEnvMetric(name)) continue;
    std::string n = SanitizeMetricName(name);
    os << "# TYPE " << n << " gauge\n";
    os << n << " " << FormatMetricValue(value) << "\n";
  }
  for (const auto& [name, h] : registry.HistogramEntries()) {
    if (!options.include_env && IsEnvMetric(name)) continue;
    WriteHistogram(SanitizeMetricName(name), *h, os);
  }
  // Series are training artifacts (per-epoch curves), not scrape-time
  // samples; the JSON dump carries them.

  if (monitor != nullptr) {
    const std::vector<int64_t> windows = monitor->report_windows();
    for (const auto& [name, counter] : monitor->Counters()) {
      if (!options.include_env && IsEnvMetric(name)) continue;
      std::string n = SanitizeMetricName(name) + "_rate";
      os << "# TYPE " << n << " gauge\n";
      for (int64_t w : windows) {
        os << n << "{window=\"" << WindowLabel(w) << "\"} "
           << FormatMetricValue(counter->Rate(w)) << "\n";
      }
    }
    for (const auto& [name, hist] : monitor->Histograms()) {
      if (!options.include_env && IsEnvMetric(name)) continue;
      std::string n = SanitizeMetricName(name) + "_window";
      os << "# TYPE " << n << " summary\n";
      for (int64_t w : windows) {
        const std::string wl = WindowLabel(w);
        HistogramSnapshot snap = hist->Snapshot(w);
        os << n << "{window=\"" << wl << "\",quantile=\"0.5\"} "
           << FormatMetricValue(snap.p50) << "\n";
        os << n << "{window=\"" << wl << "\",quantile=\"0.95\"} "
           << FormatMetricValue(snap.p95) << "\n";
        os << n << "{window=\"" << wl << "\",quantile=\"0.99\"} "
           << FormatMetricValue(snap.p99) << "\n";
        os << n << "_sum{window=\"" << wl << "\"} "
           << FormatMetricValue(snap.sum) << "\n";
        os << n << "_count{window=\"" << wl << "\"} " << snap.count << "\n";
      }
    }
  }
  os << "# EOF\n";
}

std::string ToOpenMetricsString(const MetricRegistry& registry,
                                const Monitor* monitor,
                                const OpenMetricsOptions& options) {
  std::ostringstream os;
  WriteOpenMetrics(registry, monitor, os, options);
  return os.str();
}

}  // namespace obs
}  // namespace evrec
