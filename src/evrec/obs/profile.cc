#include "evrec/obs/profile.h"

// This file defines the replacement global operator new/delete set (see
// the bottom of the file): new delegates to malloc and delete to free, as
// a matched pair. GCC inlines both into container call sites within this
// translation unit and flags the visible malloc/free pairing as
// mismatched; it is consistent by construction.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

#include <cxxabi.h>
#include <dlfcn.h>
#include <errno.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <sstream>
#include <string_view>

#include "evrec/obs/trace.h"
#include "evrec/util/string_util.h"

namespace evrec {
namespace obs {
namespace profile_internal {

// The allocation/sample tallies. Trivially-initialized PODs in .tbss, so
// they are readable from the very first allocation a thread makes and
// from inside a signal handler (initial-exec TLS: no lazy allocation, no
// __tls_get_addr malloc). Cumulative, never reset.
thread_local uint64_t t_alloc_bytes = 0;
thread_local uint64_t t_alloc_count = 0;
thread_local uint64_t t_cpu_samples = 0;
// Non-zero while tracer/profiler bookkeeping is running on this thread;
// such allocations bypass the tallies entirely.
thread_local int t_suppress = 0;

}  // namespace profile_internal

ThreadCostSnapshot ThreadCost() {
  ThreadCostSnapshot snap;
  snap.alloc_bytes = profile_internal::t_alloc_bytes;
  snap.alloc_count = profile_internal::t_alloc_count;
  snap.cpu_samples = profile_internal::t_cpu_samples;
  return snap;
}

ScopedTallySuppress::ScopedTallySuppress() {
  ++profile_internal::t_suppress;
}

ScopedTallySuppress::~ScopedTallySuppress() {
  --profile_internal::t_suppress;
}

namespace {

constexpr int kMaxFramesCap = 64;

std::string HexId(uint64_t id) {
  return StrFormat("%016llx", static_cast<unsigned long long>(id));
}

Status WriteWholeFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  int close_rc = std::fclose(f);
  if (written != bytes.size() || close_rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

std::string SymbolizePc(void* pc) {
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string out(demangled);
      std::free(demangled);
      return out;
    }
    return info.dli_sname;
  }
  return StrFormat("0x%zx", reinterpret_cast<size_t>(pc));
}

}  // namespace

// ---------------------------------------------------------------------------
// Real-mode state: a Vyukov-style bounded MPMC ring the SIGPROF handler
// enqueues into (per-slot sequence numbers; a full ring drops the sample
// and counts it — the handler never blocks or allocates).

struct Profiler::RealState {
  struct Slot {
    std::atomic<uint64_t> seq{0};
    uint64_t trace_id = 0;
    int depth = 0;
    void* pc[kMaxFramesCap];
  };

  explicit RealState(size_t capacity) : size(capacity), mask(capacity - 1) {
    slots.reset(new Slot[capacity]);
    for (size_t i = 0; i < capacity; ++i) {
      slots[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  size_t size;
  size_t mask;
  std::unique_ptr<Slot[]> slots;
  std::atomic<uint64_t> head{0};
  uint64_t tail = 0;  // guarded by the owning Profiler's mu_
  std::atomic<uint64_t> dropped{0};
  int max_frames = 48;
  struct sigaction old_action;
  struct itimerval old_timer;
  // Symbol cache (guarded by mu_): dladdr + demangle once per unique PC.
  std::map<void*, std::string> symbols;
};

namespace {

// The profiler whose ring the SIGPROF handler feeds (null = ignore the
// signal). Cleared by Stop before the handler is uninstalled, so a signal
// racing a Stop finds null and returns.
std::atomic<Profiler::RealState*> g_real_active{nullptr};

// Async-signal-safe by construction: POD TLS bump, lock-free ring claim,
// backtrace (primed at Start), memcpy. Saves/restores errno because the
// interrupted code may be between a syscall and its errno check.
void ProfSignalHandler(int /*signo*/, siginfo_t* /*info*/, void* /*ctx*/) {
  const int saved_errno = errno;
  Profiler::RealState* rs = g_real_active.load(std::memory_order_acquire);
  if (rs != nullptr) {
    profile_internal::t_cpu_samples += 1;
    uint64_t pos = rs->head.load(std::memory_order_relaxed);
    for (;;) {
      Profiler::RealState::Slot& slot = rs->slots[pos & rs->mask];
      const uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const int64_t dif =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        if (rs->head.compare_exchange_weak(pos, pos + 1,
                                           std::memory_order_relaxed)) {
          void* frames[kMaxFramesCap + 2];
          int depth = backtrace(frames, rs->max_frames + 2);
          // Skip the handler and the kernel's signal trampoline so the
          // stack starts at the interrupted frame.
          const int skip = depth > 2 ? 2 : 0;
          depth -= skip;
          slot.trace_id = CurrentTraceContext().trace_id;
          slot.depth = depth;
          if (depth > 0) {
            std::memcpy(slot.pc, frames + skip,
                        sizeof(void*) * static_cast<size_t>(depth));
          }
          slot.seq.store(pos + 1, std::memory_order_release);
          break;
        }
      } else if (dif < 0) {
        rs->dropped.fetch_add(1, std::memory_order_relaxed);
        break;
      } else {
        pos = rs->head.load(std::memory_order_relaxed);
      }
    }
  }
  errno = saved_errno;
}

}  // namespace

// ---------------------------------------------------------------------------
// Profiler

Profiler::Profiler() = default;

Profiler::~Profiler() {
  Stop();
  delete real_;
  for (RealState* ring : retired_) {
    delete ring;
  }
}

Profiler::Mode Profiler::mode() const {
  return static_cast<Mode>(mode_.load(std::memory_order_acquire));
}

bool Profiler::collecting() const { return mode() != Mode::kOff; }

bool Profiler::armed() const {
  return armed_.load(std::memory_order_acquire);
}

uint64_t Profiler::incident_activations() const {
  return incident_activations_.load(std::memory_order_relaxed);
}

namespace {

int64_t PeriodMicros(int sample_hz) {
  const int hz = std::max(1, std::min(sample_hz, 1000000));
  return std::max<int64_t>(1, 1000000 / hz);
}

size_t RingCapacity(size_t requested) {
  size_t cap = 64;
  while (cap < requested && cap < (1u << 20)) {
    cap <<= 1;
  }
  return cap;
}

}  // namespace

Status Profiler::Start(const ProfileConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  if (mode() != Mode::kOff) {
    return Status::FailedPrecondition("profiler already collecting");
  }
  if (g_real_active.load(std::memory_order_acquire) != nullptr) {
    return Status::FailedPrecondition(
        "another profiler owns SIGPROF (ITIMER_PROF is process-wide)");
  }
  config_ = config;
  period_micros_ = PeriodMicros(config.sample_hz);
  start_micros_ = CurrentClock()->NowMicros();

  // Always a fresh ring: a handler delivered around a previous Stop may
  // still be finishing a write into the old one, so retired rings are
  // kept until the Profiler dies instead of being reused.
  if (real_ != nullptr) {
    dropped_offset_ -= real_->dropped.load(std::memory_order_relaxed);
    retired_.push_back(real_);
  }
  real_ = new RealState(RingCapacity(config.ring_capacity));
  real_->max_frames = std::max(1, std::min(config.max_frames, kMaxFramesCap));

  // Prime backtrace outside the handler: its first call may dlopen
  // libgcc, which allocates — fatal inside a signal.
  void* prime[4];
  backtrace(prime, 4);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = ProfSignalHandler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, &real_->old_action) != 0) {
    return Status::Internal("sigaction(SIGPROF) failed");
  }
  g_real_active.store(real_, std::memory_order_release);
  mode_.store(static_cast<int>(Mode::kReal), std::memory_order_release);

  struct itimerval tv;
  const long interval_usec =
      std::max(100l, static_cast<long>(1000000 / std::max(1, config.sample_hz)));
  tv.it_interval.tv_sec = interval_usec / 1000000;
  tv.it_interval.tv_usec = interval_usec % 1000000;
  tv.it_value = tv.it_interval;
  if (setitimer(ITIMER_PROF, &tv, &real_->old_timer) != 0) {
    g_real_active.store(nullptr, std::memory_order_release);
    sigaction(SIGPROF, &real_->old_action, nullptr);
    mode_.store(static_cast<int>(Mode::kOff), std::memory_order_release);
    return Status::Internal("setitimer(ITIMER_PROF) failed");
  }
  return Status::Ok();
}

void Profiler::StartDeterministic(const ProfileConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  if (mode() != Mode::kOff) {
    StopCollectionLocked();
  }
  config_ = config;
  period_micros_ = PeriodMicros(config.sample_hz);
  start_micros_ = CurrentClock()->NowMicros();
  mode_.store(static_cast<int>(Mode::kDeterministic),
              std::memory_order_release);
}

void Profiler::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  StopCollectionLocked();
}

void Profiler::StopCollectionLocked() {
  const Mode m = mode();
  if (m == Mode::kOff) {
    return;
  }
  if (m == Mode::kReal && real_ != nullptr) {
    // Order matters: disarm the timer (no new signals), neutralize the
    // handler (a racing delivery sees null and returns), then restore the
    // previous disposition.
    setitimer(ITIMER_PROF, &real_->old_timer, nullptr);
    g_real_active.store(nullptr, std::memory_order_release);
    sigaction(SIGPROF, &real_->old_action, nullptr);
    DrainPendingLocked();
  }
  mode_.store(static_cast<int>(Mode::kOff), std::memory_order_release);
}

void Profiler::Arm(const ProfileConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_config_ = config;
  armed_.store(true, std::memory_order_release);
}

void Profiler::EnsureIncidentCollection() {
  if (collecting() || !armed()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (mode() != Mode::kOff) {
    return;
  }
  // Incident profiles use the deterministic span-driven mode: flipping
  // SIGPROF on mid-incident would add signal load to an already-degraded
  // process, and span stacks are what the alert runbooks read anyway.
  config_ = armed_config_;
  period_micros_ = PeriodMicros(config_.sample_hz);
  start_micros_ = CurrentClock()->NowMicros();
  mode_.store(static_cast<int>(Mode::kDeterministic),
              std::memory_order_release);
  incident_activations_.fetch_add(1, std::memory_order_relaxed);
}

void Profiler::MaybeExpire() {
  if (config_.max_duration_micros <= 0 || mode() == Mode::kOff) {
    return;
  }
  if (CurrentClock()->NowMicros() - start_micros_ >=
      config_.max_duration_micros) {
    StopCollectionLocked();
  }
}

void Profiler::MarkIncidentTrace(uint64_t trace_id) {
  if (trace_id == 0 || !collecting()) {
    return;
  }
  ScopedTallySuppress suppress;
  std::lock_guard<std::mutex> lock(mu_);
  if (!collecting()) {
    return;
  }
  NoteRequestLocked(trace_id, 0, 0, /*forced=*/true);
}

void Profiler::SetTickSource(TickFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  tick_fn_ = std::move(fn);
}

void Profiler::ChargeSpan(const ProfileFrame* leaf, int64_t self_micros,
                          uint64_t alloc_bytes, uint64_t alloc_count) {
  if (leaf == nullptr || mode() != Mode::kDeterministic) {
    return;
  }
  ScopedTallySuppress suppress;
  std::lock_guard<std::mutex> lock(mu_);
  MaybeExpire();
  if (mode() != Mode::kDeterministic) {
    return;
  }
  if (self_micros < 0) {
    self_micros = 0;
  }
  const uint64_t samples =
      tick_fn_ ? tick_fn_(self_micros)
               : static_cast<uint64_t>(self_micros / period_micros_);
  if (samples == 0 && self_micros == 0 && alloc_bytes == 0 &&
      alloc_count == 0) {
    return;
  }
  profile_internal::t_cpu_samples += samples;
  // Fold the frame chain (leaf up) into a root-first stack string.
  const char* names[128];
  int depth = 0;
  for (const ProfileFrame* f = leaf; f != nullptr && depth < 128;
       f = f->parent) {
    names[depth++] = f->name;
  }
  std::string stack;
  for (int i = depth - 1; i >= 0; --i) {
    if (!stack.empty()) {
      stack += ';';
    }
    stack += names[i];
  }
  StackCost cost;
  cost.samples = samples;
  cost.self_micros = self_micros;
  cost.alloc_bytes = alloc_bytes;
  cost.alloc_count = alloc_count;
  AddCostLocked(stack, cost);
}

void Profiler::RecordSynthetic(const std::vector<std::string>& frames,
                               uint64_t samples, int64_t self_micros,
                               uint64_t alloc_bytes, uint64_t alloc_count) {
  if (!collecting() || frames.empty()) {
    return;
  }
  ScopedTallySuppress suppress;
  std::lock_guard<std::mutex> lock(mu_);
  profile_internal::t_cpu_samples += samples;
  std::string stack;
  for (const std::string& frame : frames) {
    if (!stack.empty()) {
      stack += ';';
    }
    stack += frame;
  }
  StackCost cost;
  cost.samples = samples;
  cost.self_micros = self_micros > 0 ? self_micros : 0;
  cost.alloc_bytes = alloc_bytes;
  cost.alloc_count = alloc_count;
  AddCostLocked(stack, cost);
}

void Profiler::AddCostLocked(const std::string& stack, const StackCost& cost) {
  StackCost& entry = stacks_[stack];
  entry.samples += cost.samples;
  entry.self_micros += cost.self_micros;
  entry.alloc_bytes += cost.alloc_bytes;
  entry.alloc_count += cost.alloc_count;
  total_samples_ += cost.samples;
  total_alloc_bytes_ += cost.alloc_bytes;
  total_alloc_count_ += cost.alloc_count;
}

void Profiler::NoteRequest(uint64_t trace_id, uint64_t cpu_samples,
                           uint64_t alloc_bytes, bool forced) {
  if (!collecting()) {
    return;
  }
  ScopedTallySuppress suppress;
  std::lock_guard<std::mutex> lock(mu_);
  MaybeExpire();
  if (!collecting()) {
    return;
  }
  NoteRequestLocked(trace_id, cpu_samples, alloc_bytes, forced);
}

void Profiler::NoteRequestLocked(uint64_t trace_id, uint64_t cpu_samples,
                                 uint64_t alloc_bytes, bool forced) {
  // Merge into a recent entry with the same id: MarkIncidentTrace inserts
  // a cost-less placeholder the service's NoteRequest fills in a moment
  // later. The scan is bounded — ids recur only within a request's
  // lifetime, never thousands of entries back.
  size_t scanned = 0;
  for (auto it = requests_.rbegin(); it != requests_.rend() && scanned < 128;
       ++it, ++scanned) {
    if (it->trace_id == trace_id) {
      it->cpu_samples += cpu_samples;
      it->alloc_bytes += alloc_bytes;
      if (forced && !it->forced) {
        it->forced = true;
        ++forced_requests_;
      }
      return;
    }
  }
  const size_t cap = std::max<size_t>(1, config_.max_request_entries);
  if (requests_.size() >= cap) {
    // Retention parallels trace retention: incident (forced) entries are
    // the MarkKeep analog and outlive the sampling pool. Evict the oldest
    // non-forced entry; only when every entry is forced does the oldest
    // forced one go (a non-forced arrival is dropped instead).
    auto victim = requests_.end();
    for (auto it = requests_.begin(); it != requests_.end(); ++it) {
      if (!it->forced) {
        victim = it;
        break;
      }
    }
    if (victim != requests_.end()) {
      requests_.erase(victim);
    } else if (forced) {
      requests_.pop_front();
    } else {
      return;
    }
  }
  ProfileRequestEntry entry;
  entry.trace_id = trace_id;
  entry.cpu_samples = cpu_samples;
  entry.alloc_bytes = alloc_bytes;
  entry.forced = forced;
  requests_.push_back(entry);
  if (forced) {
    ++forced_requests_;
  }
}

size_t Profiler::DrainPending() {
  std::lock_guard<std::mutex> lock(mu_);
  return DrainPendingLocked();
}

size_t Profiler::DrainPendingLocked() {
  if (real_ == nullptr) {
    return 0;
  }
  ScopedTallySuppress suppress;
  size_t folded = 0;
  for (;;) {
    RealState::Slot& slot = real_->slots[real_->tail & real_->mask];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<int64_t>(seq) -
            static_cast<int64_t>(real_->tail + 1) < 0) {
      break;  // ring empty (or the producer has not finished this slot)
    }
    const uint64_t trace_id = slot.trace_id;
    const int depth = std::min(slot.depth, kMaxFramesCap);
    void* pc[kMaxFramesCap];
    if (depth > 0) {
      std::memcpy(pc, slot.pc, sizeof(void*) * static_cast<size_t>(depth));
    }
    slot.seq.store(real_->tail + real_->size, std::memory_order_release);
    ++real_->tail;

    std::string stack;
    for (int i = depth - 1; i >= 0; --i) {
      auto cached = real_->symbols.find(pc[i]);
      if (cached == real_->symbols.end()) {
        cached = real_->symbols.emplace(pc[i], SymbolizePc(pc[i])).first;
      }
      if (!stack.empty()) {
        stack += ';';
      }
      stack += cached->second;
    }
    if (stack.empty()) {
      stack = "??";
    }
    StackCost cost;
    cost.samples = 1;
    AddCostLocked(stack, cost);
    // Attribute the sample to its request if the request is (still)
    // retained — catches samples landing on pool workers, which the
    // serving thread's own tally window cannot see.
    if (trace_id != 0) {
      size_t scanned = 0;
      for (auto it = requests_.rbegin();
           it != requests_.rend() && scanned < 128; ++it, ++scanned) {
        if (it->trace_id == trace_id) {
          it->cpu_samples += 1;
          break;
        }
      }
    }
    ++folded;
  }
  return folded;
}

uint64_t Profiler::total_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_samples_;
}

uint64_t Profiler::dropped_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t raw =
      real_ != nullptr
          ? static_cast<int64_t>(real_->dropped.load(std::memory_order_relaxed))
          : 0;
  return static_cast<uint64_t>(raw + dropped_offset_);
}

uint64_t Profiler::total_alloc_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_alloc_bytes_;
}

uint64_t Profiler::total_alloc_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_alloc_count_;
}

uint64_t Profiler::forced_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return forced_requests_;
}

std::vector<ProfileStackEntry> Profiler::StackEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ProfileStackEntry> out;
  out.reserve(stacks_.size());
  for (const auto& [stack, cost] : stacks_) {
    ProfileStackEntry entry;
    entry.stack = stack;
    entry.samples = cost.samples;
    entry.self_micros = cost.self_micros;
    entry.alloc_bytes = cost.alloc_bytes;
    entry.alloc_count = cost.alloc_count;
    out.push_back(std::move(entry));
  }
  return out;  // std::map iterates sorted
}

std::vector<ProfileRequestEntry> Profiler::RequestEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<ProfileRequestEntry>(requests_.begin(), requests_.end());
}

void Profiler::WriteFolded(std::ostream& os) const {
  for (const ProfileStackEntry& e : StackEntries()) {
    if (e.samples == 0) {
      continue;  // folded output is the CPU flamegraph; alloc-only
                 // stacks live in the text profile
    }
    os << e.stack << ' ' << e.samples << '\n';
  }
}

Status Profiler::WriteFolded(const std::string& path) const {
  std::ostringstream os;
  WriteFolded(os);
  return WriteWholeFile(path, os.str());
}

void Profiler::WriteText(std::ostream& os) const {
  std::vector<ProfileStackEntry> stacks = StackEntries();
  std::vector<ProfileRequestEntry> requests = RequestEntries();
  std::lock_guard<std::mutex> lock(mu_);
  os << "# evrec profile v1\n";
  os << "# mode "
     << (mode() == Mode::kReal
             ? "real"
             : (mode() == Mode::kDeterministic ? "deterministic" : "off"))
     << '\n';
  os << "# period_micros " << period_micros_ << '\n';
  os << "# total_samples " << total_samples_ << '\n';
  const int64_t raw_dropped =
      real_ != nullptr
          ? static_cast<int64_t>(real_->dropped.load(std::memory_order_relaxed))
          : 0;
  os << "# dropped_samples "
     << static_cast<uint64_t>(raw_dropped + dropped_offset_) << '\n';
  os << "# total_alloc_bytes " << total_alloc_bytes_ << '\n';
  os << "# total_alloc_count " << total_alloc_count_ << '\n';
  for (const ProfileStackEntry& e : stacks) {
    os << "stack " << e.samples << ' ' << e.self_micros << ' '
       << e.alloc_bytes << ' ' << e.alloc_count << ' ' << e.stack << '\n';
  }
  for (const ProfileRequestEntry& r : requests) {
    os << "request " << HexId(r.trace_id) << ' ' << r.cpu_samples << ' '
       << r.alloc_bytes << ' ' << (r.forced ? 1 : 0) << '\n';
  }
}

Status Profiler::WriteText(const std::string& path) const {
  std::ostringstream os;
  WriteText(os);
  return WriteWholeFile(path, os.str());
}

void Profiler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  DrainPendingLocked();
  stacks_.clear();
  requests_.clear();
  forced_requests_ = 0;
  total_samples_ = 0;
  total_alloc_bytes_ = 0;
  total_alloc_count_ = 0;
  incident_activations_.store(0, std::memory_order_relaxed);
  if (real_ != nullptr) {
    dropped_offset_ = -static_cast<int64_t>(
        real_->dropped.load(std::memory_order_relaxed));
  } else {
    dropped_offset_ = 0;
  }
}

Profiler* Profiler::Global() {
  static Profiler* profiler = new Profiler();
  return profiler;
}

// ---------------------------------------------------------------------------
// Offline analysis

StatusOr<ParsedProfile> ParseProfileText(const std::string& text) {
  ParsedProfile out;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream hs(line.substr(1));
      std::string key;
      hs >> key;
      if (key == "mode") {
        hs >> out.mode;
      } else if (key == "period_micros") {
        hs >> out.period_micros;
      } else if (key == "total_samples") {
        hs >> out.total_samples;
      } else if (key == "dropped_samples") {
        hs >> out.dropped_samples;
      } else if (key == "total_alloc_bytes") {
        hs >> out.total_alloc_bytes;
      } else if (key == "total_alloc_count") {
        hs >> out.total_alloc_count;
      }
      continue;  // unknown headers are forward-compatible noise
    }
    std::istringstream rs(line);
    std::string kind;
    rs >> kind;
    if (kind == "stack") {
      ProfileStackEntry e;
      rs >> e.samples >> e.self_micros >> e.alloc_bytes >> e.alloc_count;
      if (!rs) {
        return Status::Corruption(
            StrFormat("profile line %d: malformed stack record", line_no));
      }
      // The stack is the rest of the line (symbols may contain spaces).
      std::getline(rs, e.stack);
      if (!e.stack.empty() && e.stack[0] == ' ') {
        e.stack.erase(0, 1);
      }
      if (e.stack.empty()) {
        return Status::Corruption(
            StrFormat("profile line %d: empty stack", line_no));
      }
      out.stacks.push_back(std::move(e));
    } else if (kind == "request") {
      std::string hex;
      int forced = 0;
      ProfileRequestEntry r;
      rs >> hex >> r.cpu_samples >> r.alloc_bytes >> forced;
      if (!rs || hex.empty()) {
        return Status::Corruption(
            StrFormat("profile line %d: malformed request record", line_no));
      }
      r.trace_id = std::strtoull(hex.c_str(), nullptr, 16);
      r.forced = forced != 0;
      out.requests.push_back(r);
    } else {
      return Status::Corruption(
          StrFormat("profile line %d: unknown record '%s'", line_no,
                    kind.c_str()));
    }
  }
  return out;
}

namespace {

struct FrameCost {
  uint64_t self_samples = 0;
  int64_t self_micros = 0;
  uint64_t total_samples = 0;
  int64_t total_micros = 0;
  uint64_t alloc_bytes = 0;
  uint64_t alloc_count = 0;
};

std::vector<std::string_view> SplitStack(const std::string& stack) {
  std::vector<std::string_view> frames;
  size_t start = 0;
  while (start <= stack.size()) {
    size_t semi = stack.find(';', start);
    if (semi == std::string::npos) {
      semi = stack.size();
    }
    if (semi > start) {
      frames.push_back(std::string_view(stack).substr(start, semi - start));
    }
    start = semi + 1;
  }
  return frames;
}

}  // namespace

void WriteProfileReport(const ParsedProfile& profile,
                        const ProfileReportOptions& options,
                        std::ostream& os) {
  std::map<std::string, FrameCost> frames;
  for (const ProfileStackEntry& e : profile.stacks) {
    const std::vector<std::string_view> parts = SplitStack(e.stack);
    if (parts.empty()) {
      continue;
    }
    FrameCost& leaf = frames[std::string(parts.back())];
    leaf.self_samples += e.samples;
    leaf.self_micros += e.self_micros;
    leaf.alloc_bytes += e.alloc_bytes;
    leaf.alloc_count += e.alloc_count;
    // Inclusive cost: each distinct frame on the stack gets the full
    // sample weight once (a recursive frame must not be double-counted).
    std::vector<std::string_view> seen;
    for (const std::string_view part : parts) {
      if (std::find(seen.begin(), seen.end(), part) != seen.end()) {
        continue;
      }
      seen.push_back(part);
      FrameCost& f = frames[std::string(part)];
      f.total_samples += e.samples;
      f.total_micros += e.self_micros;
    }
  }

  const int top_n = std::max(1, options.top_n);
  os << StrFormat("profile: mode=%s period=%lldus samples=%llu dropped=%llu "
                  "alloc=%lluB/%llu\n",
                  profile.mode.c_str(),
                  static_cast<long long>(profile.period_micros),
                  static_cast<unsigned long long>(profile.total_samples),
                  static_cast<unsigned long long>(profile.dropped_samples),
                  static_cast<unsigned long long>(profile.total_alloc_bytes),
                  static_cast<unsigned long long>(profile.total_alloc_count));

  using Row = std::pair<std::string, FrameCost>;
  std::vector<Row> rows(frames.begin(), frames.end());

  // samples_fn/micros_fn select the self or inclusive view of a frame;
  // ties break on the frame name so the table never depends on map or
  // arrival order.
  const auto print_top = [&](const std::string& title, auto samples_fn,
                             auto micros_fn) {
    std::vector<Row> sorted = rows;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](const Row& a, const Row& b) {
                       if (samples_fn(a.second) != samples_fn(b.second)) {
                         return samples_fn(a.second) > samples_fn(b.second);
                       }
                       if (micros_fn(a.second) != micros_fn(b.second)) {
                         return micros_fn(a.second) > micros_fn(b.second);
                       }
                       return a.first < b.first;
                     });
    os << '\n' << title << '\n';
    os << StrFormat("%4s %10s %12s  %s\n", "rank", "samples", "micros",
                    "frame");
    int rank = 0;
    for (const Row& row : sorted) {
      if (rank >= top_n ||
          (samples_fn(row.second) == 0 && micros_fn(row.second) == 0)) {
        break;
      }
      ++rank;
      os << StrFormat("%4d %10llu %12lld  %s\n", rank,
                      static_cast<unsigned long long>(samples_fn(row.second)),
                      static_cast<long long>(micros_fn(row.second)),
                      row.first.c_str());
    }
    if (rank == 0) {
      os << "  (no samples)\n";
    }
  };

  print_top(StrFormat("Top %d frames by self time", top_n),
            [](const FrameCost& f) { return f.self_samples; },
            [](const FrameCost& f) { return f.self_micros; });
  print_top(StrFormat("Top %d frames by total time", top_n),
            [](const FrameCost& f) { return f.total_samples; },
            [](const FrameCost& f) { return f.total_micros; });

  os << StrFormat("\nTop %d frames by self allocation\n", top_n);
  os << StrFormat("%4s %14s %10s  %s\n", "rank", "bytes", "count", "frame");
  {
    std::vector<Row> sorted = rows;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Row& a, const Row& b) {
                       if (a.second.alloc_bytes != b.second.alloc_bytes) {
                         return a.second.alloc_bytes > b.second.alloc_bytes;
                       }
                       return a.first < b.first;
                     });
    int rank = 0;
    for (const Row& row : sorted) {
      if (rank >= top_n || row.second.alloc_bytes == 0) {
        break;
      }
      ++rank;
      os << StrFormat(
          "%4d %14llu %10llu  %s\n", rank,
          static_cast<unsigned long long>(row.second.alloc_bytes),
          static_cast<unsigned long long>(row.second.alloc_count),
          row.first.c_str());
    }
    if (rank == 0) {
      os << "  (no allocations)\n";
    }
  }

  if (!profile.requests.empty()) {
    uint64_t forced = 0;
    for (const ProfileRequestEntry& r : profile.requests) {
      if (r.forced) {
        ++forced;
      }
    }
    os << StrFormat("\nRequests: %zu retained, %llu incident-forced\n",
                    profile.requests.size(),
                    static_cast<unsigned long long>(forced));
    std::vector<ProfileRequestEntry> sorted = profile.requests;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const ProfileRequestEntry& a,
                        const ProfileRequestEntry& b) {
                       if (a.cpu_samples != b.cpu_samples) {
                         return a.cpu_samples > b.cpu_samples;
                       }
                       return a.trace_id < b.trace_id;
                     });
    os << StrFormat("%4s %18s %10s %14s %s\n", "rank", "trace", "samples",
                    "alloc_bytes", "forced");
    int rank = 0;
    for (const ProfileRequestEntry& r : sorted) {
      if (rank >= top_n) {
        break;
      }
      ++rank;
      os << StrFormat("%4d %18s %10llu %14llu %s\n", rank,
                      HexId(r.trace_id).c_str(),
                      static_cast<unsigned long long>(r.cpu_samples),
                      static_cast<unsigned long long>(r.alloc_bytes),
                      r.forced ? "yes" : "no");
    }
  }
}

void WriteFoldedFromParsed(const ParsedProfile& profile, std::ostream& os) {
  std::vector<ProfileStackEntry> sorted = profile.stacks;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ProfileStackEntry& a, const ProfileStackEntry& b) {
                     return a.stack < b.stack;
                   });
  for (const ProfileStackEntry& e : sorted) {
    if (e.samples == 0) {
      continue;
    }
    os << e.stack << ' ' << e.samples << '\n';
  }
}

}  // namespace obs
}  // namespace evrec

// ---------------------------------------------------------------------------
// Global allocation accounting. Linking evrec_obs replaces the global
// operator new/delete set with versions that bump the thread-local tallies
// and delegate to malloc/free. The hooks never allocate, never lock, and
// never recurse (the tallies are trivially-constructible TLS), so they are
// safe from static initializers, thread bootstrap, and under sanitizers —
// ASan/TSan intercept the underlying malloc/free and see a consistent
// malloc-family allocation for every new/delete pair. Frees are not
// tracked: the profiler reports cumulative heap traffic, not live bytes.

namespace {

inline void TallyAlloc(std::size_t size) noexcept {
  if (evrec::obs::profile_internal::t_suppress == 0) {
    evrec::obs::profile_internal::t_alloc_bytes += size;
    evrec::obs::profile_internal::t_alloc_count += 1;
  }
}

void* AllocateOrHandle(std::size_t size) {
  if (size == 0) {
    size = 1;
  }
  for (;;) {
    void* ptr = std::malloc(size);
    if (ptr != nullptr) {
      return ptr;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) {
      throw std::bad_alloc();
    }
    handler();
  }
}

void* AllocateAligned(std::size_t size, std::size_t alignment) noexcept {
  if (size == 0) {
    size = 1;
  }
  if (alignment < sizeof(void*)) {
    alignment = sizeof(void*);
  }
  void* ptr = nullptr;
  if (posix_memalign(&ptr, alignment, size) != 0) {
    return nullptr;
  }
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) {
  TallyAlloc(size);
  return AllocateOrHandle(size);
}

void* operator new[](std::size_t size) {
  TallyAlloc(size);
  return AllocateOrHandle(size);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  TallyAlloc(size);
  return std::malloc(size != 0 ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  TallyAlloc(size);
  return std::malloc(size != 0 ? size : 1);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  TallyAlloc(size);
  void* ptr = AllocateAligned(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  TallyAlloc(size);
  void* ptr = AllocateAligned(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  TallyAlloc(size);
  return AllocateAligned(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  TallyAlloc(size);
  return AllocateAligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(ptr);
}
