// Scoped trace spans over the injectable clock.
//
//   void TrainRepresentation() {
//     EVREC_SPAN("pipeline.rep_train");
//     ...
//   }
//
// A span measures the wall time between construction and destruction on
// the process-wide observability clock (SetClock; defaults to the real
// SystemClock — inject a FakeClock to make replays produce exact,
// reproducible latencies). Spans nest: each thread keeps a depth counter,
// so a span opened inside another span records depth parent+1.
//
// On close a span does two things:
//   1. appends a SpanEvent to a TraceLog (close-ordered: children appear
//      before their parent), which can flush to a JSON-lines event log or
//      a human text table;
//   2. records its duration into the histogram "span.<name>" of the
//      MetricRegistry, so every traced phase gets p50/p95/p99 for free.

#ifndef EVREC_OBS_TRACE_H_
#define EVREC_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "evrec/obs/metrics.h"
#include "evrec/util/clock.h"

namespace evrec {
namespace obs {

// The clock all spans (and any other obs timing) read. Never null;
// defaults to SystemClock::Instance(). Passing nullptr restores the
// default. Set once at startup (or per replay) before spawning threads.
void SetClock(Clock* clock);
Clock* CurrentClock();

struct SpanEvent {
  std::string name;
  int depth = 0;               // 0 = top-level span on its thread
  int64_t start_micros = 0;    // CurrentClock() time at open
  int64_t duration_micros = 0;
};

// Append-only, thread-safe log of closed spans.
class TraceLog {
 public:
  void Record(SpanEvent event);
  std::vector<SpanEvent> Snapshot() const;
  size_t size() const;
  void Clear();

  // One JSON object per line: {"name": ..., "depth": N, "start_us": N,
  // "dur_us": N}. Deterministic given deterministic clock readings.
  void DumpJsonLines(std::ostream& os) const;
  Status DumpJsonLines(const std::string& path) const;

  // Human table: close-ordered rows, indented two spaces per depth.
  void DumpText(std::ostream& os) const;

  static TraceLog* Global();

 private:
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
};

// RAII span. `name` must outlive the span (string literals in practice).
// Registry/log default to the process-wide globals; tests inject their
// own.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, MetricRegistry* registry = nullptr,
                      TraceLog* log = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  MetricRegistry* registry_;
  TraceLog* log_;
  int64_t start_micros_;
  int depth_;
};

}  // namespace obs
}  // namespace evrec

#define EVREC_SPAN_CONCAT_INNER(a, b) a##b
#define EVREC_SPAN_CONCAT(a, b) EVREC_SPAN_CONCAT_INNER(a, b)
#define EVREC_SPAN(name) \
  ::evrec::obs::ScopedSpan EVREC_SPAN_CONCAT(evrec_span_, __LINE__)(name)

#endif  // EVREC_OBS_TRACE_H_
