// Request-scoped trace spans over the injectable clock.
//
//   void Recommend() {
//     EVREC_SPAN("serve.request");
//     ...
//   }
//
// A span measures the wall time between construction and destruction on
// the process-wide observability clock (SetClock; defaults to the real
// SystemClock — inject a FakeClock to make replays produce exact,
// reproducible latencies). Every span carries a trace identity: the
// TraceId of the request (or training run) it belongs to, its own SpanId,
// and its parent's SpanId — all deterministic (util/trace_context.h), so a
// FakeClock replay emits byte-identical dumps. Opening a span with no
// active trace starts a new trace as its root; nested spans become
// children; ThreadPool::ParallelFor re-installs the caller's context in
// every shard, so spans opened on worker threads attach to their true
// parent instead of starting fresh at depth 0. Spans also carry key:value
// tags (tier, candidate count, cache hit/miss, retry attempt, ...).
//
// On close a span does two things:
//   1. appends a SpanEvent to a TraceLog (close-ordered: children appear
//      before their parent);
//   2. records its duration into the histogram "span.<name>" of the
//      MetricRegistry with its trace id as the bucket exemplar, so a p99
//      bucket links back to a concrete trace.
//
// The TraceLog buffers each trace until its root closes, then makes the
// tail-sampling decision: traces marked MarkKeep (errors, degraded or
// over-deadline requests) are always retained; the rest are kept with a
// seeded probability that is a pure function of (seed, trace id), so the
// retained set is identical across runs and thread counts. Retained spans
// live in a bounded ring buffer (evictions counted in `trace.dropped` with
// a rate-limited warning — long training runs no longer accumulate spans
// forever) and export as JSON lines (back-compatible), a human text table,
// or Chrome trace-event JSON loadable in Perfetto / chrome://tracing.

#ifndef EVREC_OBS_TRACE_H_
#define EVREC_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "evrec/obs/metrics.h"
#include "evrec/util/clock.h"
#include "evrec/util/trace_context.h"

namespace evrec {
namespace obs {

// The clock all spans (and any other obs timing) read. Never null;
// defaults to SystemClock::Instance(). Passing nullptr restores the
// default. Set once at startup (or per replay) before spawning threads.
void SetClock(Clock* clock);
Clock* CurrentClock();

struct SpanEvent {
  std::string name;
  uint64_t trace_id = 0;   // trace this span belongs to
  uint64_t span_id = 0;    // this span
  uint64_t parent_id = 0;  // 0 = trace root
  int depth = 0;           // 0 = trace root
  int thread = 0;          // TraceThreadOrdinal() of the closing thread
  int64_t start_micros = 0;    // CurrentClock() time at open
  int64_t duration_micros = 0;
  // Key:value annotations, in attach order.
  std::vector<std::pair<std::string, std::string>> tags;
};

// Tail-sampling policy applied when a trace's root span closes. Traces
// marked MarkKeep bypass the coin entirely; everything else is kept iff
// a seeded hash of the trace id falls under keep_fraction — the decision
// depends only on (seed, trace id), never on arrival order or threads.
struct TailSamplerConfig {
  double keep_fraction = 1.0;
  uint64_t seed = 1;
};

// Thread-safe log of closed spans: per-trace pending buffers until the
// root closes, then a tail-sampled bounded ring of retained spans.
class TraceLog {
 public:
  static constexpr size_t kDefaultCapacity = 65536;

  explicit TraceLog(size_t capacity = kDefaultCapacity);

  // Applies to future appends; an over-full ring evicts oldest first.
  void set_capacity(size_t capacity);
  void SetSampler(const TailSamplerConfig& sampler);
  TailSamplerConfig sampler() const;

  // Forces retention of `trace_id` when its root closes (errors, degraded
  // tiers, deadline overruns). Call while the trace is still open — i.e.
  // before its root span closes.
  void MarkKeep(uint64_t trace_id);

  // Pure sampling predicate (exposed for tests and replays).
  static bool SamplerKeeps(const TailSamplerConfig& sampler,
                           uint64_t trace_id);

  void Record(SpanEvent event);
  // Retained spans, flush order (within a trace: close order, children
  // before parents). Pending (unfinished) traces are not included.
  std::vector<SpanEvent> Snapshot() const;
  size_t size() const;
  // Spans lost to ring eviction or per-trace pending overflow. Mirrored
  // into the global counter "trace.dropped".
  uint64_t dropped() const;
  // Whole traces discarded by the tail sampler (also "trace.sampled_out").
  uint64_t sampled_out() const;
  void Clear();

  // One JSON object per line: {"name": ..., "depth": N, "start_us": N,
  // "dur_us": N, ...} — the original four keys first (back compatible),
  // then trace/span/parent ids (16-digit hex), thread, and tags.
  // Deterministic given deterministic clock readings.
  void DumpJsonLines(std::ostream& os) const;
  Status DumpJsonLines(const std::string& path) const;

  // Human table: close-ordered rows, indented two spaces per depth.
  void DumpText(std::ostream& os) const;

  // Chrome trace-event JSON (one "X" complete event per span, per-thread
  // tracks via tid) — loadable in Perfetto / chrome://tracing. Events are
  // sorted by (start, trace, span) so identical replays dump identical
  // bytes. Ids and tags ride in "args".
  void DumpChromeTrace(std::ostream& os) const;
  Status DumpChromeTrace(const std::string& path) const;

  static TraceLog* Global();

 private:
  struct PendingTrace {
    std::deque<SpanEvent> spans;
    bool keep = false;
  };

  // Both called with mu_ held.
  void AppendRetainedLocked(SpanEvent event);
  void FinalizeTraceLocked(uint64_t trace_id);

  mutable std::mutex mu_;
  size_t capacity_;
  TailSamplerConfig sampler_;
  std::deque<SpanEvent> events_;  // retained ring, oldest first
  std::unordered_map<uint64_t, PendingTrace> pending_;
  uint64_t dropped_ = 0;
  uint64_t sampled_out_ = 0;
};

// RAII span. `name` must outlive the span (string literals in practice).
// Registry/log default to the process-wide globals; tests inject their
// own.
//
// Every span is also a profiler cost scope: it owns a ProfileFrame (the
// symbolic stack link ParallelFor propagates to shards), accumulates its
// children's durations and allocation windows in atomics, and on close
// charges its *self* cost — duration minus children, allocation window
// minus same-thread children — to the global Profiler when deterministic
// collection is live (obs/profile.h). Both subtractions are sums of
// commutative atomic adds, so self costs are identical for any thread
// count under a FakeClock.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, MetricRegistry* registry = nullptr,
                      TraceLog* log = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches a tag recorded when the span closes (last write per key wins
  // at export time; duplicates are kept in order).
  void AddTag(const std::string& key, std::string value);
  // Tail sampling: always retain this span's trace.
  void KeepTrace();

  uint64_t trace_id() const { return trace_id_; }
  uint64_t span_id() const { return span_id_; }
  uint64_t parent_id() const { return parent_id_; }

 private:
  friend void AddSpanTag(const std::string& key, std::string value);
  friend uint64_t ActiveTraceId();

  const char* name_;
  MetricRegistry* registry_;
  TraceLog* log_;
  TraceContext saved_;
  uint64_t trace_id_;
  uint64_t span_id_;
  uint64_t parent_id_;
  int depth_;
  int64_t start_micros_;
  std::vector<std::pair<std::string, std::string>> tags_;
  ScopedSpan* prev_active_;
  // Profiler cost scope (see class comment). The frame is pushed into the
  // thread's TraceContext so children — including cross-thread shards —
  // can find their parent's accumulators.
  ProfileFrame frame_;
  std::atomic<int64_t> child_micros_{0};
  std::atomic<uint64_t> child_alloc_bytes_{0};
  std::atomic<uint64_t> child_alloc_count_{0};
  uint64_t open_alloc_bytes_ = 0;
  uint64_t open_alloc_count_ = 0;
};

// Tags the innermost open span on this thread; silently dropped when no
// span is open. Lets leaf code (retry loops, circuit breaker) annotate the
// request span without plumbing a span pointer through every signature.
void AddSpanTag(const std::string& key, std::string value);

// Trace id of the innermost open span on this thread (0 when none).
uint64_t ActiveTraceId();

}  // namespace obs
}  // namespace evrec

#define EVREC_SPAN_CONCAT_INNER(a, b) a##b
#define EVREC_SPAN_CONCAT(a, b) EVREC_SPAN_CONCAT_INNER(a, b)
#define EVREC_SPAN(name) \
  ::evrec::obs::ScopedSpan EVREC_SPAN_CONCAT(evrec_span_, __LINE__)(name)

#endif  // EVREC_OBS_TRACE_H_
