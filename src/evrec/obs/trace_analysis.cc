#include "evrec/obs/trace_analysis.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "evrec/util/json.h"
#include "evrec/util/string_util.h"

namespace evrec {
namespace obs {

namespace {

std::string HexId(uint64_t id) {
  return StrFormat("%016llx", static_cast<unsigned long long>(id));
}

// Parses the 16-digit hex ids the exporter writes into "args".
bool ParseHexId(const JsonValue& v, uint64_t* out) {
  if (!v.IsString() || v.string_value.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(v.string_value.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

int64_t EndMicros(const ParsedSpan& s) {
  return s.start_micros + s.duration_micros;
}

// Canonical analysis order: by trace, then chronological, then span id —
// independent of thread interleavings and tid assignment.
bool CanonicalLess(const ParsedSpan& a, const ParsedSpan& b) {
  if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
  if (a.start_micros != b.start_micros) return a.start_micros < b.start_micros;
  return a.span_id < b.span_id;
}

}  // namespace

StatusOr<std::vector<ParsedSpan>> ParseChromeTrace(const std::string& text) {
  StatusOr<JsonValue> doc = ParseJson(text);
  if (!doc.ok()) return doc.status();
  const JsonValue* events = &doc.value();
  if (doc.value().IsObject()) {
    events = doc.value().Find("traceEvents");
    if (events == nullptr) {
      return Status::Corruption("chrome trace: no \"traceEvents\" array");
    }
  }
  if (!events->IsArray()) {
    return Status::Corruption("chrome trace: \"traceEvents\" is not an array");
  }
  std::vector<ParsedSpan> spans;
  spans.reserve(events->array.size());
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    if (!ev.IsObject()) {
      return Status::Corruption(
          StrFormat("chrome trace: event %zu is not an object", i));
    }
    const JsonValue* ph = ev.Find("ph");
    if (ph == nullptr || !ph->IsString()) {
      return Status::Corruption(
          StrFormat("chrome trace: event %zu has no \"ph\"", i));
    }
    if (ph->string_value != "X") continue;  // metadata / counter events
    ParsedSpan span;
    const JsonValue* name = ev.Find("name");
    const JsonValue* ts = ev.Find("ts");
    const JsonValue* dur = ev.Find("dur");
    if (name == nullptr || !name->IsString() || ts == nullptr ||
        !ts->IsNumber() || dur == nullptr || !dur->IsNumber()) {
      return Status::Corruption(
          StrFormat("chrome trace: event %zu missing name/ts/dur", i));
    }
    span.name = name->string_value;
    span.start_micros = static_cast<int64_t>(ts->number_value);
    span.duration_micros = static_cast<int64_t>(dur->number_value);
    const JsonValue* tid = ev.Find("tid");
    if (tid != nullptr && tid->IsNumber()) {
      span.tid = static_cast<int>(tid->number_value);
    }
    const JsonValue* args = ev.Find("args");
    if (args == nullptr || !args->IsObject()) {
      return Status::Corruption(
          StrFormat("chrome trace: event %zu has no \"args\"", i));
    }
    bool have_trace = false, have_span = false, have_parent = false;
    for (const auto& [key, value] : args->object) {
      if (key == "trace") {
        have_trace = ParseHexId(value, &span.trace_id);
      } else if (key == "span") {
        have_span = ParseHexId(value, &span.span_id);
      } else if (key == "parent") {
        have_parent = ParseHexId(value, &span.parent_id);
      } else if (key == "depth") {
        // structural, not a tag
      } else if (value.IsString()) {
        span.tags.emplace_back(key, value.string_value);
      }
    }
    if (!have_trace || !have_span || !have_parent) {
      return Status::Corruption(StrFormat(
          "chrome trace: event %zu (\"%s\") lacks trace/span/parent ids", i,
          span.name.c_str()));
    }
    spans.push_back(std::move(span));
  }
  return spans;
}

Status ValidateSpans(const std::vector<ParsedSpan>& spans) {
  // Pass 1: ordering, duration sanity, and the per-trace span-id directory.
  std::unordered_map<uint64_t, std::unordered_map<uint64_t, size_t>> by_trace;
  std::unordered_map<uint64_t, size_t> roots;
  int64_t prev_ts = INT64_MIN;
  for (size_t i = 0; i < spans.size(); ++i) {
    const ParsedSpan& s = spans[i];
    if (s.start_micros < prev_ts) {
      return Status::Corruption(StrFormat(
          "span %zu (\"%s\"): timestamps not monotone (%lld after %lld)", i,
          s.name.c_str(), static_cast<long long>(s.start_micros),
          static_cast<long long>(prev_ts)));
    }
    prev_ts = s.start_micros;
    if (s.duration_micros < 0) {
      return Status::Corruption(StrFormat(
          "span %zu (\"%s\"): negative duration %lld", i, s.name.c_str(),
          static_cast<long long>(s.duration_micros)));
    }
    if (s.trace_id == 0 || s.span_id == 0) {
      return Status::Corruption(
          StrFormat("span %zu (\"%s\"): zero trace or span id", i,
                    s.name.c_str()));
    }
    auto [it, inserted] = by_trace[s.trace_id].emplace(s.span_id, i);
    if (!inserted) {
      return Status::Corruption(
          StrFormat("span %zu (\"%s\"): duplicate span id %s in trace %s", i,
                    s.name.c_str(), HexId(s.span_id).c_str(),
                    HexId(s.trace_id).c_str()));
    }
    if (s.parent_id == 0) {
      auto [root_it, root_inserted] = roots.emplace(s.trace_id, i);
      (void)root_it;
      if (!root_inserted) {
        return Status::Corruption(
            StrFormat("span %zu (\"%s\"): second root in trace %s", i,
                      s.name.c_str(), HexId(s.trace_id).c_str()));
      }
    }
  }
  // Pass 2: parent links resolve and children nest inside their parent.
  for (size_t i = 0; i < spans.size(); ++i) {
    const ParsedSpan& s = spans[i];
    if (s.parent_id == 0) continue;
    const auto& directory = by_trace[s.trace_id];
    auto parent_it = directory.find(s.parent_id);
    if (parent_it == directory.end()) {
      return Status::Corruption(StrFormat(
          "span %zu (\"%s\"): parent %s missing from trace %s", i,
          s.name.c_str(), HexId(s.parent_id).c_str(),
          HexId(s.trace_id).c_str()));
    }
    const ParsedSpan& parent = spans[parent_it->second];
    if (s.start_micros < parent.start_micros ||
        EndMicros(s) > EndMicros(parent)) {
      return Status::Corruption(StrFormat(
          "span %zu (\"%s\"): [%lld, %lld] escapes parent \"%s\" "
          "[%lld, %lld]",
          i, s.name.c_str(), static_cast<long long>(s.start_micros),
          static_cast<long long>(EndMicros(s)), parent.name.c_str(),
          static_cast<long long>(parent.start_micros),
          static_cast<long long>(EndMicros(parent))));
    }
  }
  for (const auto& [trace_id, directory] : by_trace) {
    if (roots.count(trace_id) == 0) {
      return Status::Corruption(
          StrFormat("trace %s has no root span", HexId(trace_id).c_str()));
    }
  }
  return Status::Ok();
}

void AnalyzeSpans(const std::vector<ParsedSpan>& spans,
                  const TraceAnalysisOptions& options, std::ostream& os) {
  if (spans.empty()) {
    os << "no spans\n";
    return;
  }
  std::vector<ParsedSpan> sorted = spans;
  std::sort(sorted.begin(), sorted.end(), CanonicalLess);

  // Per-trace bookkeeping: root index, span count, child lists.
  std::map<uint64_t, std::vector<size_t>> trace_members;  // sorted traces
  std::unordered_map<uint64_t, std::vector<size_t>> children;  // by span id
  std::unordered_map<uint64_t, size_t> trace_root;
  for (size_t i = 0; i < sorted.size(); ++i) {
    trace_members[sorted[i].trace_id].push_back(i);
    if (sorted[i].parent_id == 0) {
      trace_root.emplace(sorted[i].trace_id, i);
    } else {
      children[sorted[i].parent_id].push_back(i);
    }
  }

  os << StrFormat("%zu spans across %zu traces\n\n", sorted.size(),
                  trace_members.size());
  os << "traces (root duration):\n";
  uint64_t slowest_trace = 0;
  int64_t slowest_dur = -1;
  constexpr size_t kMaxTraceRows = 20;
  size_t rows = 0;
  for (const auto& [trace_id, members] : trace_members) {
    auto root_it = trace_root.find(trace_id);
    if (root_it == trace_root.end()) {
      if (rows++ < kMaxTraceRows) {
        os << StrFormat("  %s  (no root)  %zu spans\n",
                        HexId(trace_id).c_str(), members.size());
      }
      continue;
    }
    const ParsedSpan& root = sorted[root_it->second];
    if (rows++ < kMaxTraceRows) {
      os << StrFormat("  %s  %-24s %8lld us  %zu spans\n",
                      HexId(trace_id).c_str(), root.name.c_str(),
                      static_cast<long long>(root.duration_micros),
                      members.size());
    }
    if (root.duration_micros > slowest_dur) {
      slowest_dur = root.duration_micros;
      slowest_trace = trace_id;
    }
  }
  if (rows > kMaxTraceRows) {
    os << StrFormat("  ... %zu more traces\n", rows - kMaxTraceRows);
  }

  // Critical path of the slowest trace: from the root, repeatedly descend
  // into the child that finishes last (ties -> smallest span id, which is
  // deterministic because span ids are pure hashes).
  auto slowest_root = trace_root.find(slowest_trace);
  if (slowest_root != trace_root.end()) {
    os << StrFormat("\ncritical path (trace %s, %lld us):\n",
                    HexId(slowest_trace).c_str(),
                    static_cast<long long>(slowest_dur));
    size_t cur = slowest_root->second;
    int indent = 0;
    while (true) {
      const ParsedSpan& s = sorted[cur];
      os << StrFormat("  %*s%-*s %8lld us\n", indent * 2, "",
                      32 - indent * 2, s.name.c_str(),
                      static_cast<long long>(s.duration_micros));
      auto kids = children.find(s.span_id);
      if (kids == children.end()) break;
      size_t next = kids->second[0];
      for (size_t idx : kids->second) {
        int64_t end = EndMicros(sorted[idx]);
        int64_t best = EndMicros(sorted[next]);
        if (end > best ||
            (end == best && sorted[idx].span_id < sorted[next].span_id)) {
          next = idx;
        }
      }
      cur = next;
      ++indent;
    }
  }

  // Top-N slowest individual spans.
  std::vector<size_t> by_dur(sorted.size());
  for (size_t i = 0; i < by_dur.size(); ++i) by_dur[i] = i;
  std::sort(by_dur.begin(), by_dur.end(), [&](size_t a, size_t b) {
    if (sorted[a].duration_micros != sorted[b].duration_micros) {
      return sorted[a].duration_micros > sorted[b].duration_micros;
    }
    return CanonicalLess(sorted[a], sorted[b]);
  });
  size_t top = std::min<size_t>(by_dur.size(),
                                options.top_n > 0
                                    ? static_cast<size_t>(options.top_n)
                                    : 0);
  if (top > 0) {
    os << StrFormat("\ntop %zu slowest spans:\n", top);
    for (size_t r = 0; r < top; ++r) {
      const ParsedSpan& s = sorted[by_dur[r]];
      std::string tag_note;
      for (const auto& [key, value] : s.tags) {
        tag_note +=
            StrFormat("%s%s=%s", tag_note.empty() ? "  [" : " ",
                      key.c_str(), value.c_str());
      }
      if (!tag_note.empty()) tag_note += "]";
      os << StrFormat("  %-28s %8lld us  trace %s%s\n", s.name.c_str(),
                      static_cast<long long>(s.duration_micros),
                      HexId(s.trace_id).c_str(), tag_note.c_str());
    }
  }

  // Self-time flat profile: a span's self time is its duration minus the
  // summed durations of its direct children, clamped at zero (children
  // running in parallel on pool workers can overlap-sum past the parent).
  struct Flat {
    int64_t self_micros = 0;
    uint64_t count = 0;
  };
  std::map<std::string, Flat> flat;  // sorted by name for determinism
  for (const ParsedSpan& s : sorted) {
    int64_t child_total = 0;
    auto kids = children.find(s.span_id);
    if (kids != children.end()) {
      for (size_t idx : kids->second) {
        child_total += sorted[idx].duration_micros;
      }
    }
    Flat& slot = flat[s.name];
    slot.self_micros += std::max<int64_t>(0, s.duration_micros - child_total);
    slot.count += 1;
  }
  std::vector<std::pair<std::string, Flat>> flat_rows(flat.begin(),
                                                      flat.end());
  std::sort(flat_rows.begin(), flat_rows.end(),
            [](const auto& a, const auto& b) {
              if (a.second.self_micros != b.second.self_micros) {
                return a.second.self_micros > b.second.self_micros;
              }
              return a.first < b.first;
            });
  os << "\nself-time profile:\n";
  os << StrFormat("  %-28s %10s %8s\n", "name", "self_us", "count");
  for (const auto& [name, row] : flat_rows) {
    os << StrFormat("  %-28s %10lld %8llu\n", name.c_str(),
                    static_cast<long long>(row.self_micros),
                    static_cast<unsigned long long>(row.count));
  }
}

}  // namespace obs
}  // namespace evrec
