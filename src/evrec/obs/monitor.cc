#include "evrec/obs/monitor.h"

#include <algorithm>

#include "evrec/util/check.h"

namespace evrec {
namespace obs {

namespace {

// Bucket number for a clock reading. Clock readings are non-negative in
// practice (SystemClock since boot, FakeClock from its start value), but a
// floor division keeps boundary behaviour sane either way: a timestamp
// exactly on a bucket boundary belongs to the bucket it opens.
int64_t BucketIndexFor(int64_t now_micros, int64_t width) {
  int64_t q = now_micros / width;
  if (now_micros % width < 0) --q;
  return q;
}

int ClampWindowBuckets(int64_t window_micros, int64_t width,
                       int num_buckets) {
  if (window_micros <= 0) return 1;
  int64_t nb = (window_micros + width - 1) / width;
  if (nb < 1) nb = 1;
  if (nb > num_buckets) nb = num_buckets;
  return static_cast<int>(nb);
}

}  // namespace

// ---------- RollingCounter ----------

RollingCounter::RollingCounter(Clock* clock, const WindowOptions& options)
    : clock_(clock), options_(options) {
  EVREC_CHECK(clock != nullptr);
  EVREC_CHECK_GT(options.bucket_width_micros, 0);
  EVREC_CHECK_GT(options.num_buckets, 0);
  ring_.resize(static_cast<size_t>(options.num_buckets));
}

int64_t RollingCounter::CurrentIndexLocked() const {
  return BucketIndexFor(clock_->NowMicros(), options_.bucket_width_micros);
}

int RollingCounter::WindowBucketsLocked(int64_t window_micros) const {
  return ClampWindowBuckets(window_micros, options_.bucket_width_micros,
                            options_.num_buckets);
}

void RollingCounter::Add(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t idx = CurrentIndexLocked();
  Bucket& b = ring_[static_cast<size_t>(idx % options_.num_buckets)];
  if (b.index != idx) {
    // Slot last held an older (or never any) bucket: recycle it.
    b.index = idx;
    b.count = 0;
  }
  b.count += n;
}

uint64_t RollingCounter::Sum(int64_t window_micros) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t cur = CurrentIndexLocked();
  int nb = WindowBucketsLocked(window_micros);
  uint64_t sum = 0;
  for (const Bucket& b : ring_) {
    if (b.index < 0) continue;
    if (b.index > cur || cur - b.index >= nb) continue;  // stale or future
    sum += b.count;
  }
  return sum;
}

double RollingCounter::Rate(int64_t window_micros) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t cur = CurrentIndexLocked();
  int nb = WindowBucketsLocked(window_micros);
  uint64_t sum = 0;
  for (const Bucket& b : ring_) {
    if (b.index < 0) continue;
    if (b.index > cur || cur - b.index >= nb) continue;
    sum += b.count;
  }
  double seconds = static_cast<double>(nb) *
                   static_cast<double>(options_.bucket_width_micros) / 1e6;
  return static_cast<double>(sum) / seconds;
}

// ---------- RollingHistogram ----------

RollingHistogram::RollingHistogram(Clock* clock, const WindowOptions& window,
                                   const HistogramOptions& histogram)
    : clock_(clock), window_(window), histogram_(histogram) {
  EVREC_CHECK(clock != nullptr);
  EVREC_CHECK_GT(window.bucket_width_micros, 0);
  EVREC_CHECK_GT(window.num_buckets, 0);
  ring_.resize(static_cast<size_t>(window.num_buckets));
}

int64_t RollingHistogram::CurrentIndexLocked() const {
  return BucketIndexFor(clock_->NowMicros(), window_.bucket_width_micros);
}

int RollingHistogram::WindowBucketsLocked(int64_t window_micros) const {
  return ClampWindowBuckets(window_micros, window_.bucket_width_micros,
                            window_.num_buckets);
}

void RollingHistogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t idx = CurrentIndexLocked();
  Bucket& b = ring_[static_cast<size_t>(idx % window_.num_buckets)];
  if (b.index != idx || b.hist == nullptr) {
    b.index = idx;
    b.hist = std::make_unique<Histogram>(histogram_);
  }
  b.hist->Record(value);
}

void RollingHistogram::MergeWindowLocked(int64_t window_micros,
                                         Histogram* out) const {
  int64_t cur = CurrentIndexLocked();
  int nb = WindowBucketsLocked(window_micros);
  for (const Bucket& b : ring_) {
    if (b.index < 0 || b.hist == nullptr) continue;
    if (b.index > cur || cur - b.index >= nb) continue;
    out->Merge(*b.hist);
  }
}

uint64_t RollingHistogram::Count(int64_t window_micros) const {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram merged(histogram_);
  MergeWindowLocked(window_micros, &merged);
  return merged.count();
}

HistogramSnapshot RollingHistogram::Snapshot(int64_t window_micros) const {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram merged(histogram_);
  MergeWindowLocked(window_micros, &merged);
  HistogramSnapshot snap;
  snap.count = merged.count();
  snap.sum = merged.sum();
  snap.min = merged.min();
  snap.max = merged.max();
  snap.p50 = merged.Quantile(0.50);
  snap.p95 = merged.Quantile(0.95);
  snap.p99 = merged.Quantile(0.99);
  return snap;
}

double RollingHistogram::Quantile(int64_t window_micros, double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram merged(histogram_);
  MergeWindowLocked(window_micros, &merged);
  return merged.Quantile(q);
}

// ---------- Monitor ----------

Monitor::Monitor(Clock* clock, const WindowOptions& defaults)
    : clock_(clock), defaults_(defaults),
      report_windows_{10 * 1000000LL, 60 * 1000000LL} {
  EVREC_CHECK(clock != nullptr);
}

RollingCounter* Monitor::GetCounter(const std::string& name) {
  return GetCounter(name, defaults_);
}

RollingCounter* Monitor::GetCounter(const std::string& name,
                                    const WindowOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    EVREC_CHECK(histograms_.count(name) == 0)
        << "rolling metric '" << name
        << "' already exists with a different kind";
    it = counters_
             .emplace(name,
                      std::make_unique<RollingCounter>(clock_, options))
             .first;
  }
  return it->second.get();
}

RollingHistogram* Monitor::GetHistogram(const std::string& name,
                                        const HistogramOptions& histogram) {
  return GetHistogram(name, defaults_, histogram);
}

RollingHistogram* Monitor::GetHistogram(const std::string& name,
                                        const WindowOptions& window,
                                        const HistogramOptions& histogram) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    EVREC_CHECK(counters_.count(name) == 0)
        << "rolling metric '" << name
        << "' already exists with a different kind";
    it = histograms_
             .emplace(name, std::make_unique<RollingHistogram>(
                                clock_, window, histogram))
             .first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, const RollingCounter*>>
Monitor::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const RollingCounter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, const RollingHistogram*>>
Monitor::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const RollingHistogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

void Monitor::set_report_windows(std::vector<int64_t> windows_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  report_windows_ = std::move(windows_micros);
}

std::vector<int64_t> Monitor::report_windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_windows_;
}

}  // namespace obs
}  // namespace evrec
