// Component health probes and the aggregate serving verdict.
//
// A probe is a named closure that inspects one component RIGHT NOW and
// returns a verdict plus a short human detail string:
//
//   kServing    the component is fully functional
//   kDegraded   usable but impaired (breaker half-open, store flaky) —
//               the service answers, possibly with fallbacks
//   kUnhealthy  the component cannot do its job (breaker open, no
//               checkpoint, store unreachable)
//
// The HealthRegistry is a directory of probes; CheckAll() runs every probe
// and Aggregate() folds their verdicts into the service-level answer a
// load balancer would consume (worst verdict wins; no probes = serving).
// Probes are registered by the component owners — RecommendationService
// registers its circuit breaker and vector store, TwoStagePipeline
// registers checkpoint freshness and thread-pool liveness — and MUST be
// unregistered before the captured component dies (owners do this in their
// destructors).
//
// Determinism: probes read component state, never wall time, so a CheckAll
// at a given FakeClock instant is reproducible.

#ifndef EVREC_OBS_HEALTH_H_
#define EVREC_OBS_HEALTH_H_

#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace evrec {

class ThreadPool;
struct CheckpointOptions;

namespace obs {

enum class HealthStatus { kServing, kDegraded, kUnhealthy };
const char* HealthStatusName(HealthStatus status);

struct HealthReport {
  HealthStatus status = HealthStatus::kServing;
  std::string detail;
};

using HealthProbe = std::function<HealthReport()>;

class HealthRegistry {
 public:
  HealthRegistry() = default;
  HealthRegistry(const HealthRegistry&) = delete;
  HealthRegistry& operator=(const HealthRegistry&) = delete;

  // Registering an existing name replaces the probe (a restarted component
  // re-registers itself).
  void Register(const std::string& name, HealthProbe probe);
  void Unregister(const std::string& name);

  size_t probe_count() const;

  // Runs one probe; unknown names report kUnhealthy.
  HealthReport Check(const std::string& name) const;

  struct ProbeResult {
    std::string name;
    HealthReport report;
  };
  // Runs every probe, name-sorted. Probes run outside the registry lock so
  // a probe may (un)register other probes without deadlocking.
  std::vector<ProbeResult> CheckAll() const;

  // Worst verdict across all probes; an empty registry is serving.
  HealthStatus Aggregate() const;

  // Operator table: one line per probe plus the aggregate verdict.
  void DumpStatus(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, HealthProbe> probes_;
};

// ---- Probe factories for components that don't know about obs ----

// Liveness by construction: reports serving with the worker count while
// the pool exists (the pool joins its workers in its destructor, so a
// registered probe outliving the pool is the bug Unregister prevents).
HealthProbe MakeThreadPoolProbe(const ThreadPool* pool);

// Freshness of the newest valid checkpoint under `options`: unhealthy when
// the directory is unusable or empty, serving otherwise with the latest
// step in the detail. Deterministic — reads the manifest, never mtimes.
HealthProbe MakeCheckpointProbe(const CheckpointOptions& options);

}  // namespace obs
}  // namespace evrec

#endif  // EVREC_OBS_HEALTH_H_
