#include "evrec/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <tuple>

#include "evrec/util/check.h"
#include "evrec/util/logging.h"
#include "evrec/util/string_util.h"

namespace evrec {
namespace obs {

std::string FormatMetricValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.9g", v);
}

namespace {

// Local alias for the historical name used throughout this file.
std::string FormatDouble(double v) { return FormatMetricValue(v); }

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

void AtomicMin(std::atomic<double>* slot, double v) {
  double cur = slot->load(std::memory_order_relaxed);
  while (v < cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* slot, double v) {
  double cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------- Histogram ----------

Histogram::Histogram(const HistogramOptions& options) {
  EVREC_CHECK_GT(options.num_buckets, 0);
  EVREC_CHECK_GT(options.first_upper, 0.0);
  EVREC_CHECK_GT(options.growth, 1.0);
  bounds_.reserve(static_cast<size_t>(options.num_buckets));
  double upper = options.first_upper;
  for (int i = 0; i < options.num_buckets; ++i) {
    bounds_.push_back(upper);
    upper *= options.growth;
  }
  buckets_ = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  exemplars_ = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  exemplar_values_ = std::vector<std::atomic<double>>(bounds_.size() + 1);
}

void Histogram::RecordWithExemplar(double value, uint64_t exemplar_trace_id) {
  if (!std::isfinite(value)) {
    // Dropping a sample silently would hide a numerical fault upstream;
    // make the loss visible in both the registry and the log.
    MetricRegistry::Global()
        ->GetCounter("metrics.dropped_nonfinite")
        ->Increment();
    EVREC_LOG_EVERY_N(WARN, 100)
        << "histogram dropped non-finite sample (value=" << value << ")";
    return;
  }
  if (value < 0.0) value = 0.0;
  // First sample publishes min/max directly; later samples CAS-fold in.
  // The count_ increment is last so concurrent readers never see count > 0
  // with uninitialized extrema... readers may still race a fresh min/max,
  // which is acceptable for telemetry.
  if (count_.load(std::memory_order_relaxed) == 0) {
    double zero = 0.0;
    min_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
  }
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                           value) -
                          bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  if (exemplar_trace_id != 0) {
    // Value first, id second: a reader keying off a non-zero id may see a
    // stale value for one sample, never a torn pair — fine for telemetry.
    exemplar_values_[bucket].store(value, std::memory_order_relaxed);
    exemplars_[bucket].store(exemplar_trace_id, std::memory_order_relaxed);
  }
  sum_.fetch_add(value, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::bucket_upper(int i) const {
  if (i < static_cast<int>(bounds_.size())) {
    return bounds_[static_cast<size_t>(i)];
  }
  return max();  // overflow bucket: report the observed ceiling
}

double Histogram::Quantile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target the ceil(q*n)-th sample (1-based) so q=1 is the last sample.
  uint64_t target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= target) {
      double lower = b == 0 ? 0.0 : bounds_[b - 1];
      double upper =
          b < bounds_.size() ? bounds_[b] : max_.load(std::memory_order_relaxed);
      double frac = static_cast<double>(target - seen) /
                    static_cast<double>(in_bucket);
      double est = lower + (upper - lower) * frac;
      // Clamping to the observed range keeps single-sample histograms
      // exact and never lets interpolation escape the data.
      return std::clamp(est, min(), max());
    }
    seen += in_bucket;
  }
  return max();
}

void Histogram::Merge(const Histogram& other) {
  EVREC_CHECK_EQ(bounds_.size(), other.bounds_.size())
      << "histogram bucket layouts differ";
  uint64_t other_count = other.count();
  if (other_count == 0) return;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    uint64_t c = other.buckets_[b].load(std::memory_order_relaxed);
    if (c != 0) buckets_[b].fetch_add(c, std::memory_order_relaxed);
    uint64_t ex = other.exemplars_[b].load(std::memory_order_relaxed);
    if (ex != 0) {
      exemplar_values_[b].store(
          other.exemplar_values_[b].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      exemplars_[b].store(ex, std::memory_order_relaxed);
    }
  }
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  if (count_.load(std::memory_order_relaxed) == 0) {
    double zero = 0.0;
    min_.compare_exchange_strong(zero, other.min(),
                                 std::memory_order_relaxed);
  }
  AtomicMin(&min_, other.min());
  AtomicMax(&max_, other.max());
  count_.fetch_add(other_count, std::memory_order_relaxed);
}

// ---------- Series ----------

void Series::Append(double x, double y) {
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    points_.emplace_back(x, y);
    while (points_.size() - start_ > max_points_) {
      ++start_;
      ++dropped_;
      ++evicted;
    }
    // Amortized O(1): compact the evicted prefix once it matches the live
    // span, so the vector never holds more than 2x the cap.
    if (start_ > 0 && start_ >= points_.size() - start_) {
      points_.erase(points_.begin(),
                    points_.begin() + static_cast<ptrdiff_t>(start_));
      start_ = 0;
    }
  }
  if (evicted != 0) {
    // Outside mu_: the global registry's lock is taken while iterating
    // series (DumpText and friends), so incrementing under mu_ would
    // invert that order.
    MetricRegistry::Global()
        ->GetCounter("metrics.series_dropped")
        ->Increment(evicted);
    EVREC_LOG_EVERY_N(WARN, 1000)
        << "series at retention cap; evicting oldest points "
        << "(see metrics.series_dropped)";
  }
}

std::vector<std::pair<double, double>> Series::Points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::pair<double, double>>(
      points_.begin() + static_cast<ptrdiff_t>(start_), points_.end());
}

size_t Series::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_.size() - start_;
}

uint64_t Series::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Series::set_max_points(size_t max_points) {
  std::lock_guard<std::mutex> lock(mu_);
  max_points_ = max_points < 1 ? 1 : max_points;
}

size_t Series::max_points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_points_;
}

// ---------- MetricRegistry ----------

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    EVREC_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0 &&
                series_.count(name) == 0)
        << "metric '" << name << "' already exists with a different kind";
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    EVREC_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0 &&
                series_.count(name) == 0)
        << "metric '" << name << "' already exists with a different kind";
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    EVREC_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0 &&
                series_.count(name) == 0)
        << "metric '" << name << "' already exists with a different kind";
    it = histograms_.emplace(name, std::make_unique<Histogram>(options)).first;
    histogram_options_[name] = options;
  }
  return it->second.get();
}

Series* MetricRegistry::GetSeries(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) {
    EVREC_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0 &&
                histograms_.count(name) == 0)
        << "metric '" << name << "' already exists with a different kind";
    it = series_.emplace(name, std::make_unique<Series>()).first;
    it->second->set_max_points(series_max_points_);
  }
  return it->second.get();
}

void MetricRegistry::set_series_max_points(size_t max_points) {
  std::lock_guard<std::mutex> lock(mu_);
  series_max_points_ = max_points < 1 ? 1 : max_points;
  for (auto& [name, s] : series_) s->set_max_points(series_max_points_);
}

void MetricRegistry::Merge(const MetricRegistry& other) {
  // Snapshot the shard's directory under its lock, then fold metric by
  // metric without holding either registry lock (metric pointers are
  // stable, and the per-metric operations are themselves thread-safe).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::tuple<std::string, const Histogram*, HistogramOptions>>
      histograms;
  std::vector<std::pair<std::string, const Series*>> series;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    for (const auto& [name, c] : other.counters_) {
      counters.emplace_back(name, c.get());
    }
    for (const auto& [name, g] : other.gauges_) {
      gauges.emplace_back(name, g.get());
    }
    for (const auto& [name, h] : other.histograms_) {
      histograms.emplace_back(name, h.get(),
                              other.histogram_options_.at(name));
    }
    for (const auto& [name, s] : other.series_) {
      series.emplace_back(name, s.get());
    }
  }
  for (const auto& [name, src] : counters) {
    GetCounter(name)->Increment(src->value());
  }
  for (const auto& [name, src] : gauges) GetGauge(name)->Set(src->value());
  for (const auto& [name, src, options] : histograms) {
    GetHistogram(name, options)->Merge(*src);
  }
  for (const auto& [name, src] : series) {
    Series* dst = GetSeries(name);
    for (const auto& [x, y] : src->Points()) dst->Append(x, y);
  }
}

std::map<std::string, uint64_t> MetricRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, double> MetricRegistry::GaugeValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricRegistry::HistogramEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::map<std::string, HistogramSnapshot> MetricRegistry::HistogramValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.count = h->count();
    snap.sum = h->sum();
    snap.min = h->min();
    snap.max = h->max();
    snap.p50 = h->Quantile(0.50);
    snap.p95 = h->Quantile(0.95);
    snap.p99 = h->Quantile(0.99);
    out[name] = snap;
  }
  return out;
}

void MetricRegistry::DumpText(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!counters_.empty()) {
    os << "counters:\n";
    for (const auto& [name, c] : counters_) {
      os << "  " << name << " = " << c->value() << "\n";
    }
  }
  if (!gauges_.empty()) {
    os << "gauges:\n";
    for (const auto& [name, g] : gauges_) {
      os << "  " << name << " = " << FormatDouble(g->value()) << "\n";
    }
  }
  if (!histograms_.empty()) {
    os << "histograms:\n";
    for (const auto& [name, h] : histograms_) {
      os << "  " << name << ": count=" << h->count()
         << " sum=" << FormatDouble(h->sum())
         << " min=" << FormatDouble(h->min())
         << " p50=" << FormatDouble(h->Quantile(0.50))
         << " p95=" << FormatDouble(h->Quantile(0.95))
         << " p99=" << FormatDouble(h->Quantile(0.99))
         << " max=" << FormatDouble(h->max()) << "\n";
    }
  }
  if (!series_.empty()) {
    os << "series:\n";
    for (const auto& [name, s] : series_) {
      auto points = s->Points();
      os << "  " << name << " (" << points.size() << " points):";
      // Long series elide the middle; the JSON dump keeps everything.
      for (size_t i = 0; i < points.size(); ++i) {
        if (points.size() > 8 && i == 4) {
          os << " ...";
          i = points.size() - 4;
        }
        os << " (" << FormatDouble(points[i].first) << ", "
           << FormatDouble(points[i].second) << ")";
      }
      os << "\n";
    }
  }
}

std::string MetricRegistry::ToJsonString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("%s\n    \"%s\": %llu", first ? "" : ",",
                     JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(c->value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("%s\n    \"%s\": %s", first ? "" : ",",
                     JsonEscape(name).c_str(),
                     FormatDouble(g->value()).c_str());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    std::string buckets;
    std::string exemplars;
    for (int b = 0; b < h->num_buckets() + 1; ++b) {
      uint64_t c = h->bucket_count(b);
      if (c == 0) continue;
      buckets += StrFormat("%s[%s, %llu]", buckets.empty() ? "" : ", ",
                           FormatDouble(h->bucket_upper(b)).c_str(),
                           static_cast<unsigned long long>(c));
      uint64_t ex = h->bucket_exemplar(b);
      if (ex != 0) {
        exemplars += StrFormat("%s[%s, \"%016llx\"]",
                               exemplars.empty() ? "" : ", ",
                               FormatDouble(h->bucket_upper(b)).c_str(),
                               static_cast<unsigned long long>(ex));
      }
    }
    std::string exemplar_field =
        exemplars.empty() ? std::string()
                          : ", \"exemplars\": [" + exemplars + "]";
    out += StrFormat(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %s, \"min\": %s, "
        "\"p50\": %s, \"p95\": %s, \"p99\": %s, \"max\": %s, "
        "\"buckets\": [%s]%s}",
        first ? "" : ",", JsonEscape(name).c_str(),
        static_cast<unsigned long long>(h->count()),
        FormatDouble(h->sum()).c_str(), FormatDouble(h->min()).c_str(),
        FormatDouble(h->Quantile(0.50)).c_str(),
        FormatDouble(h->Quantile(0.95)).c_str(),
        FormatDouble(h->Quantile(0.99)).c_str(),
        FormatDouble(h->max()).c_str(), buckets.c_str(),
        exemplar_field.c_str());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"series\": {";
  first = true;
  for (const auto& [name, s] : series_) {
    std::string points;
    for (const auto& [x, y] : s->Points()) {
      points += StrFormat("%s[%s, %s]", points.empty() ? "" : ", ",
                          FormatDouble(x).c_str(), FormatDouble(y).c_str());
    }
    out += StrFormat("%s\n    \"%s\": [%s]", first ? "" : ",",
                     JsonEscape(name).c_str(), points.c_str());
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

Status MetricRegistry::DumpJson(const std::string& path) const {
  std::string json = ToJsonString();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  histogram_options_.clear();
  series_.clear();
}

MetricRegistry* MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return registry;
}

}  // namespace obs
}  // namespace evrec
