// Prometheus / OpenMetrics text exposition for the observability surface.
//
// Writes every metric of a MetricRegistry — counters (`_total` samples),
// gauges, histograms (cumulative `_bucket{le="..."}` ladder with OpenMetrics
// exemplars linking hot buckets to trace ids, plus `_sum`/`_count`) — and,
// when a Monitor is supplied, the live windowed view: per-window rates for
// every rolling counter and per-window quantiles for every rolling
// histogram, labelled `{window="10s"}` etc. for each configured report
// window. Output ends with the mandatory `# EOF` terminator.
//
// Names are sanitized to the Prometheus charset ([a-zA-Z0-9_:]); the
// registry's dotted names map dots to underscores.
//
// Determinism: metrics emit in sorted-name order with the registry's fixed
// float formatting and no timestamps, so a FakeClock run produces
// byte-identical exposition for any thread count. To keep that property,
// metrics under the `env.*` prefix (machine/run environment such as the
// worker count) are EXCLUDED by default — in a real deployment those are
// target labels applied by the scraper, not samples.

#ifndef EVREC_OBS_OPENMETRICS_H_
#define EVREC_OBS_OPENMETRICS_H_

#include <ostream>
#include <string>

#include "evrec/obs/metrics.h"
#include "evrec/obs/monitor.h"

namespace evrec {
namespace obs {

struct OpenMetricsOptions {
  // Include `env.*` metrics (breaks cross-environment byte-identity).
  bool include_env = false;
};

// `monitor` may be null (registry-only exposition).
void WriteOpenMetrics(const MetricRegistry& registry, const Monitor* monitor,
                      std::ostream& os,
                      const OpenMetricsOptions& options = OpenMetricsOptions());

std::string ToOpenMetricsString(
    const MetricRegistry& registry, const Monitor* monitor = nullptr,
    const OpenMetricsOptions& options = OpenMetricsOptions());

// Maps an arbitrary metric name onto the Prometheus charset: every
// character outside [a-zA-Z0-9_:] becomes '_', and a leading digit gains a
// '_' prefix. Exposed for tests.
std::string SanitizeMetricName(const std::string& name);

}  // namespace obs
}  // namespace evrec

#endif  // EVREC_OBS_OPENMETRICS_H_
