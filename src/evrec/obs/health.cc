#include "evrec/obs/health.h"

#include <algorithm>

#include "evrec/util/checkpoint.h"
#include "evrec/util/string_util.h"
#include "evrec/util/thread_pool.h"

namespace evrec {
namespace obs {

const char* HealthStatusName(HealthStatus status) {
  switch (status) {
    case HealthStatus::kServing: return "serving";
    case HealthStatus::kDegraded: return "degraded";
    case HealthStatus::kUnhealthy: return "unhealthy";
  }
  return "unknown";
}

void HealthRegistry::Register(const std::string& name, HealthProbe probe) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_[name] = std::move(probe);
}

void HealthRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_.erase(name);
}

size_t HealthRegistry::probe_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probes_.size();
}

HealthReport HealthRegistry::Check(const std::string& name) const {
  HealthProbe probe;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = probes_.find(name);
    if (it == probes_.end()) {
      return {HealthStatus::kUnhealthy, "unknown probe '" + name + "'"};
    }
    probe = it->second;
  }
  return probe();
}

std::vector<HealthRegistry::ProbeResult> HealthRegistry::CheckAll() const {
  // Copy the directory under the lock, probe outside it: a probe is free
  // to touch the registry (or block briefly) without holding mu_.
  std::vector<std::pair<std::string, HealthProbe>> probes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    probes.reserve(probes_.size());
    for (const auto& [name, p] : probes_) probes.emplace_back(name, p);
  }
  std::vector<ProbeResult> out;
  out.reserve(probes.size());
  for (auto& [name, probe] : probes) {
    out.push_back(ProbeResult{name, probe()});
  }
  return out;
}

HealthStatus HealthRegistry::Aggregate() const {
  HealthStatus worst = HealthStatus::kServing;
  for (const ProbeResult& r : CheckAll()) {
    if (static_cast<int>(r.report.status) > static_cast<int>(worst)) {
      worst = r.report.status;
    }
  }
  return worst;
}

void HealthRegistry::DumpStatus(std::ostream& os) const {
  std::vector<ProbeResult> results = CheckAll();
  HealthStatus worst = HealthStatus::kServing;
  for (const ProbeResult& r : results) {
    if (static_cast<int>(r.report.status) > static_cast<int>(worst)) {
      worst = r.report.status;
    }
  }
  for (const ProbeResult& r : results) {
    os << StrFormat("  %-22s %-10s %s\n", r.name.c_str(),
                    HealthStatusName(r.report.status),
                    r.report.detail.c_str());
  }
  os << "  aggregate: " << HealthStatusName(worst) << "\n";
}

HealthProbe MakeThreadPoolProbe(const ThreadPool* pool) {
  return [pool]() -> HealthReport {
    // The worker count is environment shape, not health — leaving it out
    // keeps health reports byte-identical across machine configurations
    // (the same convention that excludes env.* metrics from exposition).
    return {pool->num_threads() >= 1 ? HealthStatus::kServing
                                     : HealthStatus::kUnhealthy,
            "worker pool alive"};
  };
}

HealthProbe MakeCheckpointProbe(const CheckpointOptions& options) {
  // Capture by value; each probe call opens the manifest fresh so a
  // checkpoint written after registration is visible.
  CheckpointOptions opts = options;
  return [opts]() -> HealthReport {
    CheckpointManager manager(opts);
    if (!manager.init_status().ok()) {
      return {HealthStatus::kUnhealthy,
              "checkpoint dir unusable: " + manager.init_status().message()};
    }
    std::vector<CheckpointInfo> checkpoints = manager.ListCheckpoints();
    if (checkpoints.empty()) {
      return {HealthStatus::kUnhealthy,
              "no checkpoint under " + opts.dir};
    }
    return {HealthStatus::kServing,
            StrFormat("latest checkpoint step=%lld",
                      static_cast<long long>(checkpoints.front().step))};
  };
}

}  // namespace obs
}  // namespace evrec
