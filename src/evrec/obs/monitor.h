// Windowed ("live") telemetry over the injectable clock. The MetricRegistry
// answers "what happened since process start"; a Monitor answers "what is
// happening NOW": current QPS, the error rate over the last minute, a
// sliding p99. Both are needed to operate the serving layer — the SLO
// burn-rate engine (obs/slo.h) and the health probes (obs/health.h) are
// built on these windows.
//
// Each rolling metric is a ring of fixed-width time buckets. Bucket k
// covers [k*width, (k+1)*width) on the monitor's clock; slot k % n holds
// the most recent bucket with that residue and carries its bucket index as
// a tag, so a long idle gap that wraps the ring simply leaves stale tags
// behind — queries skip any slot whose tag falls outside the asked-for
// window, and writes reset a stale slot before accumulating into it. No
// background thread ever advances the ring; time moves only when a reader
// or writer observes the clock, which keeps every operation a pure
// function of (clock reading, prior operations) and therefore bit-
// reproducible under FakeClock for any thread count.
//
//   RollingCounter    windowed event count: Sum(window) and Rate(window)
//   RollingHistogram  windowed distribution: the last-N bucket histograms
//                     are merged on demand for sliding-window percentiles
//
// Thread safety: each rolling metric serializes updates and queries behind
// its own mutex (the hot path is one clock read + one bucket update — far
// cheaper than the serve work it measures; bench_table1 records the
// measured ns/op). The Monitor directory itself locks like MetricRegistry:
// lookup once, then update through the stable pointer.

#ifndef EVREC_OBS_MONITOR_H_
#define EVREC_OBS_MONITOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "evrec/obs/metrics.h"
#include "evrec/util/clock.h"

namespace evrec {
namespace obs {

struct WindowOptions {
  // Width of one ring bucket. Queries are quantized to whole buckets.
  int64_t bucket_width_micros = 1000000;  // 1s
  // Ring capacity: the longest usable lookback is
  // bucket_width_micros * num_buckets (longer windows are clamped).
  int num_buckets = 64;
};

// Windowed monotone counter.
class RollingCounter {
 public:
  RollingCounter(Clock* clock, const WindowOptions& options);

  void Add(uint64_t n = 1);

  // Total increments inside the last `window_micros`, including the
  // current (possibly partial) bucket. The window is rounded up to whole
  // buckets and clamped to the ring capacity.
  uint64_t Sum(int64_t window_micros) const;

  // Sum(window) / covered-window-seconds (the rounded, clamped span). The
  // current bucket is usually partial, so a rate over a short window reads
  // slightly low until the bucket fills — deterministic either way.
  double Rate(int64_t window_micros) const;

  const WindowOptions& options() const { return options_; }

 private:
  struct Bucket {
    int64_t index = -1;  // bucket number, -1 = never used
    uint64_t count = 0;
  };

  // Both called with mu_ held.
  int64_t CurrentIndexLocked() const;
  int WindowBucketsLocked(int64_t window_micros) const;

  Clock* clock_;
  WindowOptions options_;
  mutable std::mutex mu_;
  std::vector<Bucket> ring_;
};

// Windowed distribution: one fixed-bucket Histogram per time bucket;
// sliding-window statistics merge the live histograms on demand.
class RollingHistogram {
 public:
  RollingHistogram(Clock* clock, const WindowOptions& window,
                   const HistogramOptions& histogram = HistogramOptions());

  void Record(double value);

  // Count of samples inside the window.
  uint64_t Count(int64_t window_micros) const;

  // Merged snapshot (count/sum/min/max/p50/p95/p99) of the last
  // `window_micros`; all-zero when the window holds no samples.
  HistogramSnapshot Snapshot(int64_t window_micros) const;

  // Convenience: Snapshot-equivalent single quantile.
  double Quantile(int64_t window_micros, double q) const;

  const WindowOptions& options() const { return window_; }

 private:
  struct Bucket {
    int64_t index = -1;
    std::unique_ptr<Histogram> hist;
  };

  int64_t CurrentIndexLocked() const;
  int WindowBucketsLocked(int64_t window_micros) const;
  // Merges the in-window bucket histograms into `out` (same options).
  void MergeWindowLocked(int64_t window_micros, Histogram* out) const;

  Clock* clock_;
  WindowOptions window_;
  HistogramOptions histogram_;
  mutable std::mutex mu_;
  std::vector<Bucket> ring_;
};

// Directory of named rolling metrics, sharing one clock and default window
// shape. Same contract as MetricRegistry: find-or-create returns stable
// pointers, a name never changes kind, metrics are never deleted.
class Monitor {
 public:
  explicit Monitor(Clock* clock,
                   const WindowOptions& defaults = WindowOptions());
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  RollingCounter* GetCounter(const std::string& name);
  RollingCounter* GetCounter(const std::string& name,
                             const WindowOptions& options);
  RollingHistogram* GetHistogram(
      const std::string& name,
      const HistogramOptions& histogram = HistogramOptions());
  RollingHistogram* GetHistogram(const std::string& name,
                                 const WindowOptions& window,
                                 const HistogramOptions& histogram);

  // Stable pointers, name-sorted — the exposition writer iterates these.
  std::vector<std::pair<std::string, const RollingCounter*>> Counters() const;
  std::vector<std::pair<std::string, const RollingHistogram*>> Histograms()
      const;

  // Windows the OpenMetrics exposition and status reports evaluate each
  // rolling metric over (default: 10s and 60s).
  void set_report_windows(std::vector<int64_t> windows_micros);
  std::vector<int64_t> report_windows() const;

  Clock* clock() const { return clock_; }
  const WindowOptions& defaults() const { return defaults_; }

 private:
  Clock* clock_;
  WindowOptions defaults_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<RollingCounter>> counters_;
  std::map<std::string, std::unique_ptr<RollingHistogram>> histograms_;
  std::vector<int64_t> report_windows_;
};

}  // namespace obs
}  // namespace evrec

#endif  // EVREC_OBS_MONITOR_H_
