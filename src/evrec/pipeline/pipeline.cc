#include "evrec/pipeline/pipeline.h"

#include <algorithm>

#include "evrec/obs/trace.h"
#include "evrec/util/binary_io.h"
#include "evrec/util/checkpoint.h"
#include "evrec/util/logging.h"
#include "evrec/util/string_util.h"
#include "evrec/util/timer.h"

namespace evrec {
namespace pipeline {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

TwoStagePipeline::TwoStagePipeline(const PipelineConfig& config)
    : config_(config), cache_(/*num_shards=*/16,
                              /*capacity_per_shard=*/1u << 16) {}

ThreadPool* TwoStagePipeline::pool() {
  if (pool_ == nullptr) {
    // Pool infrastructure (worker vector, thread stacks) scales with the
    // thread count; keep it out of the allocation tallies so profiler
    // attribution stays byte-identical across --threads values.
    obs::ScopedTallySuppress suppress;
    pool_ = std::make_unique<ThreadPool>(config_.threads);
  }
  return pool_.get();
}

void TwoStagePipeline::RegisterHealthProbes(obs::HealthRegistry* health) {
  health->Register("pipeline.thread_pool",
                   obs::MakeThreadPoolProbe(pool()));
  if (!config_.checkpoint_dir.empty()) {
    CheckpointOptions ckpt;
    ckpt.dir = config_.checkpoint_dir;
    ckpt.prefix = "rep";
    health->Register("pipeline.checkpoint", obs::MakeCheckpointProbe(ckpt));
  }
}

void TwoStagePipeline::UnregisterHealthProbes(obs::HealthRegistry* health) {
  health->Unregister("pipeline.thread_pool");
  health->Unregister("pipeline.checkpoint");
}

void TwoStagePipeline::Prepare() {
  EVREC_SPAN("pipeline.prepare");
  Timer timer;
  {
    EVREC_SPAN("pipeline.generate");
    data_ = simnet::GenerateDataset(config_.simnet);
  }
  {
    EVREC_SPAN("pipeline.vocab_build");
    encoders_ = BuildEncoders(data_, config_.simnet.rep_train_days,
                              config_.rep.min_document_frequency,
                              config_.rep.max_vocabulary_size,
                              config_.rep.max_df_fraction);
  }
  EVREC_LOG(INFO) << "vocabularies: user_text=" << encoders_.UserTextVocab()
                  << " user_cat=" << encoders_.UserCategoricalVocab()
                  << " event_text=" << encoders_.EventTextVocab();

  // Encode every user and event once; training pairs reference by id.
  {
    EVREC_SPAN("pipeline.tokenize");
    rep_data_.user_inputs.reserve(data_.world.users.size());
    for (const auto& user : data_.world.users) {
      rep_data_.user_inputs.push_back(encoders_.EncodeUser(
          user, data_.world.pages, config_.max_user_tokens));
    }
    rep_data_.event_inputs.reserve(data_.events.size());
    for (const auto& event : data_.events) {
      rep_data_.event_inputs.push_back(
          encoders_.EncodeEvent(event, config_.max_event_tokens));
    }
    rep_data_.pairs.reserve(data_.rep_train.size());
    for (const auto& imp : data_.rep_train) {
      rep_data_.pairs.push_back({imp.user, imp.event, imp.label, 1.0f});
    }
  }
  if (config_.interested_pair_weight > 0.0f) {
    int added = 0;
    for (size_t u = 0; u < data_.feedback.user_interested.size(); ++u) {
      for (const auto& edge : data_.feedback.user_interested[u]) {
        if (edge.day >= config_.simnet.rep_train_days) break;
        rep_data_.pairs.push_back({static_cast<int>(u), edge.counterpart,
                                   1.0f, config_.interested_pair_weight});
        ++added;
      }
    }
    EVREC_LOG(INFO) << "multi-feedback: added " << added
                    << " weak positive pairs (weight="
                    << config_.interested_pair_weight << ")";
  }

  index_ = std::make_unique<baseline::FeatureIndex>(data_);
  prepared_ = true;
  EVREC_LOG(INFO) << "pipeline prepared in " << timer.ElapsedSeconds()
                  << "s (" << rep_data_.pairs.size() << " training pairs)";
}

uint64_t TwoStagePipeline::RepModelFingerprint() const {
  const auto& s = config_.simnet;
  const auto& r = config_.rep;
  std::string windows = "w";
  for (int w : r.text_windows) windows += StrFormat("%d,", w);
  windows += "c";
  for (int w : r.categorical_windows) windows += StrFormat("%d,", w);
  // v7: the SIMD kernel layer's fixed 8-lane reductions and the shared
  // polynomial tanh changed the trained bits relative to v6's 4-lane
  // kernels. The dispatched ISA tier (EVREC_SIMD) deliberately does NOT
  // join the key: every tier produces bit-identical results, which
  // tools/check.sh kernels enforces. grad_shards joins the key because it
  // fixes the gradient-reduction association (threads does not — it never
  // affects results).
  std::string key = windows + StrFormat(
      "v7|shards=%d|seed=%llu|users=%d|events=%d|pages=%d|topics=%d|"
      "days=%d|"
      "emb=%d|mod=%d|hid=%d|rep=%d|pool=%d|bypass=%d|theta=%g|lr=%g|"
      "epochs=%d|batch=%d|mindf=%d|maxdf=%g|siamese=%d|caps=%d,%d|"
      "embs=%g|ada=%d|ifw=%g",
      std::max(1, config_.grad_shards),
      static_cast<unsigned long long>(s.seed), s.num_users, s.num_events,
      s.num_pages, s.num_topics, s.num_days, r.embedding_dim,
      r.module_out_dim, r.hidden_dim, r.rep_dim, static_cast<int>(r.pool),
      r.residual_bypass ? 1 : 0, static_cast<double>(r.theta_r),
      static_cast<double>(r.learning_rate), r.max_epochs, r.batch_size,
      r.min_document_frequency, r.max_df_fraction,
      config_.use_siamese_init ? 1 : 0,
      config_.max_user_tokens, config_.max_event_tokens,
      static_cast<double>(r.embedding_init_scale), r.use_adagrad ? 1 : 0,
      static_cast<double>(config_.interested_pair_weight));
  return Fnv1a(key);
}

std::string TwoStagePipeline::CacheFilePath() const {
  return StrFormat("%s/evrec_repmodel_%016llx.bin",
                   config_.cache_dir.c_str(),
                   static_cast<unsigned long long>(RepModelFingerprint()));
}

bool TwoStagePipeline::TryLoadCachedModel() {
  if (config_.cache_dir.empty()) return false;
  std::string path = CacheFilePath();
  if (!FileExists(path)) return false;
  // Checksummed container: a bit flip or truncation anywhere in the cache
  // surfaces here as Corruption and the model retrains instead of serving
  // garbage weights. Pre-checksum caches fail the header check the same
  // way.
  CheckpointReader reader(path);
  reader.EnterSection("model");
  model::JointModel loaded = model::JointModel::Deserialize(reader.raw());
  reader.LeaveSection();
  Status verify = reader.ok() ? reader.Finish() : reader.status();
  if (!verify.ok()) {
    EVREC_LOG(WARN) << "rep-model cache unreadable, retraining: "
                    << verify.ToString();
    return false;
  }
  // Guard against stale caches: table sizes must match the encoders.
  if (loaded.user_tower().bank(0).table().vocab_size() !=
          encoders_.UserTextVocab() ||
      loaded.user_tower().bank(1).table().vocab_size() !=
          encoders_.UserCategoricalVocab() ||
      loaded.event_tower().bank(0).table().vocab_size() !=
          encoders_.EventTextVocab()) {
    EVREC_LOG(WARN) << "rep-model cache vocab mismatch, retraining";
    return false;
  }
  model_ = std::make_unique<model::JointModel>(std::move(loaded));
  EVREC_LOG(INFO) << "loaded cached rep model from " << path;
  return true;
}

void TwoStagePipeline::SaveCachedModel() const {
  if (config_.cache_dir.empty()) return;
  std::string path = CacheFilePath();
  // Crash-safe, checksummed write: serialize into a CRC-sectioned sidecar,
  // fsync it, rename into place, fsync the directory (WriteFileAtomic).
  // A crash at any instant leaves either no cache or a fully durable one —
  // never a half-written file at the real path, and never a renamed file
  // whose data blocks were lost by an unsynced page cache.
  Status status = WriteFileAtomic(path, [this](CheckpointWriter& w) {
    w.BeginSection("model");
    model_->Serialize(w.raw());
    w.EndSection();
  });
  if (!status.ok()) {
    EVREC_LOG(WARN) << "failed to cache rep model: " << status.ToString();
    return;
  }
  EVREC_LOG(INFO) << "cached rep model to " << path;
}

model::TrainStats TwoStagePipeline::TrainRepresentation() {
  EVREC_CHECK(prepared_) << "call Prepare() first";
  model::TrainStats stats;
  if (TryLoadCachedModel()) {
    trained_ = true;
    return stats;
  }

  EVREC_SPAN("pipeline.rep_train");
  Timer timer;
  model_ = std::make_unique<model::JointModel>(
      config_.rep, encoders_.UserTextVocab(),
      encoders_.UserCategoricalVocab(), encoders_.EventTextVocab());
  Rng rng(config_.rep.seed, /*stream=*/5);
  model_->RandomInit(rng);
  model_->CalibrateNormalizers(rep_data_);

  // Per-trainer checkpoint managers share the directory under distinct
  // prefixes, so rep epochs and Siamese epochs never collide on step ids.
  std::unique_ptr<CheckpointManager> rep_ckpt, siamese_ckpt;
  if (!config_.checkpoint_dir.empty()) {
    CheckpointOptions opt;
    opt.dir = config_.checkpoint_dir;
    opt.prefix = "rep";
    rep_ckpt = std::make_unique<CheckpointManager>(opt);
    opt.prefix = "siamese";
    siamese_ckpt = std::make_unique<CheckpointManager>(opt);
  }

  if (config_.use_siamese_init) {
    EVREC_SPAN("pipeline.siamese_init");
    // Paper §3.2.1: initialize the event tower with title/body pairs from
    // training-period events — no user feedback involved.
    std::vector<text::EncodedText> titles, bodies;
    for (const auto& event : data_.events) {
      if (event.create_day >=
          static_cast<double>(config_.simnet.rep_train_days)) {
        continue;
      }
      titles.push_back(
          encoders_.EncodeEventTitle(event, config_.max_event_tokens));
      bodies.push_back(
          encoders_.EncodeEventBody(event, config_.max_event_tokens));
    }
    Rng siamese_rng = rng.Fork(17);
    model::SiameseConfig siamese_cfg = config_.siamese;
    siamese_cfg.threads = config_.threads;
    siamese_cfg.grad_shards = config_.grad_shards;
    siamese_cfg.pool = pool();
    siamese_cfg.checkpoints = siamese_ckpt.get();
    siamese_cfg.checkpoint_every = config_.checkpoint_every;
    siamese_cfg.resume = config_.resume;
    model::SiameseStats siamese_stats =
        model::SiamesePretrain(&model_->mutable_event_tower(), titles,
                               bodies, siamese_cfg, siamese_rng);
    EVREC_LOG(INFO) << "siamese init: " << siamese_stats.epochs_run
                    << " epochs, final loss="
                    << (siamese_stats.train_loss.empty()
                            ? 0.0
                            : siamese_stats.train_loss.back());
  }

  model::TrainerConfig trainer_cfg;
  trainer_cfg.threads = config_.threads;
  trainer_cfg.grad_shards = config_.grad_shards;
  trainer_cfg.pool = pool();
  trainer_cfg.checkpoints = rep_ckpt.get();
  trainer_cfg.checkpoint_every = config_.checkpoint_every;
  trainer_cfg.resume = config_.resume;
  model::RepTrainer trainer(model_.get(), trainer_cfg);
  Rng train_rng = rng.Fork(29);
  stats = trainer.Train(rep_data_, train_rng);
  trained_ = true;
  EVREC_LOG(INFO) << "representation model trained in "
                  << timer.ElapsedSeconds() << "s (" << stats.epochs_run
                  << " epochs)";
  // Never publish a half-trained model to the cross-run cache; an
  // interrupted run resumes from its checkpoints instead.
  if (!stats.interrupted && !stats.diverged) SaveCachedModel();
  return stats;
}

void TwoStagePipeline::ComputeRepVectors() {
  EVREC_CHECK(trained_) << "call TrainRepresentation() first";
  EVREC_SPAN("pipeline.rep_precompute");
  Timer timer;
  // Each slot is written by exactly one shard and each vector is a pure
  // function of the frozen model, so the parallel fill is deterministic;
  // the cache itself is sharded + stampede-guarded, hence thread-safe.
  user_reps_.resize(data_.world.users.size());
  // Each fill is span-wrapped so its forward-pass allocations are charged
  // to the rep_vector frame on whichever thread runs it — profiler
  // attribution stays byte-identical across --threads values.
  pool()->ParallelFor(
      static_cast<int>(data_.world.users.size()), [&](int u) {
        obs::ScopedSpan vector_span("pipeline.rep_vector");
        user_reps_[static_cast<size_t>(u)] = cache_.GetOrCompute(
            store::EntityKind::kUser, u, [&]() {
              return model_->UserVector(
                  rep_data_.user_inputs[static_cast<size_t>(u)]);
            });
      });
  event_reps_.resize(data_.events.size());
  pool()->ParallelFor(static_cast<int>(data_.events.size()), [&](int e) {
    obs::ScopedSpan vector_span("pipeline.rep_vector");
    event_reps_[static_cast<size_t>(e)] = cache_.GetOrCompute(
        store::EntityKind::kEvent, e, [&]() {
          return model_->EventVector(
              rep_data_.event_inputs[static_cast<size_t>(e)]);
        });
  });
  // Materialize the blocked SoA copies for the batched scoring kernels.
  // Sequential: it's a strided memcpy, cheap next to the model forward
  // passes above.
  user_rep_block_.Reset(config_.rep.rep_dim);
  user_rep_block_.Resize(static_cast<int>(user_reps_.size()));
  for (size_t u = 0; u < user_reps_.size(); ++u) {
    user_rep_block_.Set(static_cast<int>(u), user_reps_[u].data());
  }
  event_rep_block_.Reset(config_.rep.rep_dim);
  event_rep_block_.Resize(static_cast<int>(event_reps_.size()));
  for (size_t e = 0; e < event_reps_.size(); ++e) {
    event_rep_block_.Set(static_cast<int>(e), event_reps_[e].data());
  }
  EVREC_LOG(INFO) << "precomputed " << user_reps_.size() << " user and "
                  << event_reps_.size() << " event vectors in "
                  << timer.ElapsedSeconds() << "s";
}

std::vector<serve::ScoredCandidate> TwoStagePipeline::RetrieveTopEvents(
    int user_id, const std::vector<int>& candidate_event_ids, int k) {
  EVREC_CHECK(!user_reps_.empty())
      << "call ComputeRepVectors() before RetrieveTopEvents()";
  EVREC_CHECK_GE(user_id, 0);
  EVREC_CHECK_LT(user_id, static_cast<int>(user_reps_.size()));
  serve::RepCacheVectorStore store(&cache_);
  return serve::TopK(
      serve::ScoreCandidates(&store, store::EntityKind::kEvent,
                             user_reps_[static_cast<size_t>(user_id)],
                             candidate_event_ids, pool()),
      k);
}

EvalResult TwoStagePipeline::EvaluateFeatureConfig(
    const baseline::FeatureConfig& features,
    gbdt::GbdtModel* trained_combiner) {
  EVREC_CHECK(prepared_);
  if (features.rep_vectors || features.rep_score) {
    EVREC_CHECK(!user_reps_.empty())
        << "rep features requested before ComputeRepVectors()";
  }
  baseline::FeatureAssembler assembler(
      *index_, user_reps_.empty() ? nullptr : &user_reps_,
      event_reps_.empty() ? nullptr : &event_reps_);

  gbdt::DataMatrix train_x;
  std::vector<float> train_y;
  assembler.Assemble(data_.combiner_train, features, &train_x, &train_y);

  gbdt::GbdtModel combiner;
  {
    EVREC_SPAN("pipeline.gbdt_fit");
    combiner.Train(train_x, train_y, config_.gbdt);
  }

  gbdt::DataMatrix eval_x;
  std::vector<float> eval_y;
  assembler.Assemble(data_.eval, features, &eval_x, &eval_y);
  std::vector<double> probs = combiner.PredictProbabilities(eval_x);

  EvalResult result;
  result.name = features.Name();
  result.auc = eval::RocAuc(probs, eval_y);
  result.curve = eval::PrecisionRecallCurve(probs, eval_y);
  result.pr60 = eval::PrecisionAtRecall(result.curve, 0.60);
  result.pr80 = eval::PrecisionAtRecall(result.curve, 0.80);
  result.logloss = eval::MeanLogLoss(probs, eval_y);
  EVREC_LOG(INFO) << "config " << result.name << ": AUC=" << result.auc
                  << " PR60=" << result.pr60 << " PR80=" << result.pr80;
  if (trained_combiner != nullptr) *trained_combiner = std::move(combiner);
  return result;
}

}  // namespace pipeline
}  // namespace evrec
