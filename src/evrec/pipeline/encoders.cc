#include "evrec/pipeline/encoders.h"

namespace evrec {
namespace pipeline {

text::EncodedText Truncate(text::EncodedText encoded, int max_tokens) {
  if (max_tokens > 0 &&
      static_cast<int>(encoded.token_ids.size()) > max_tokens) {
    encoded.token_ids.resize(static_cast<size_t>(max_tokens));
    encoded.word_index.resize(static_cast<size_t>(max_tokens));
  }
  return encoded;
}

std::vector<text::EncodedText> EncoderSet::EncodeUser(
    const simnet::User& user, const std::vector<simnet::Page>& pages,
    int max_tokens) const {
  std::vector<text::EncodedText> out;
  out.reserve(2);
  out.push_back(Truncate(
      user_text->Encode(simnet::UserTextWords(user, pages)), max_tokens));
  out.push_back(Truncate(
      user_categorical->Encode(simnet::UserCategoricalIds(user)),
      max_tokens));
  return out;
}

std::vector<text::EncodedText> EncoderSet::EncodeEvent(
    const simnet::Event& event, int max_tokens) const {
  std::vector<text::EncodedText> out;
  out.push_back(Truncate(event_text->Encode(simnet::EventTextWords(event)),
                         max_tokens));
  return out;
}

text::EncodedText EncoderSet::EncodeEventTitle(const simnet::Event& event,
                                               int max_tokens) const {
  return Truncate(event_text->Encode(simnet::EventTitleWords(event)),
                  max_tokens);
}

text::EncodedText EncoderSet::EncodeEventBody(const simnet::Event& event,
                                              int max_tokens) const {
  return Truncate(event_text->Encode(simnet::EventBodyWords(event)),
                  max_tokens);
}

EncoderSet BuildEncoders(const simnet::SimnetDataset& dataset,
                         int event_knowledge_day, int min_df,
                         size_t max_vocab, double max_df_fraction) {
  std::vector<std::vector<std::string>> user_docs;
  std::vector<std::vector<std::string>> user_cat_docs;
  user_docs.reserve(dataset.world.users.size());
  user_cat_docs.reserve(dataset.world.users.size());
  for (const auto& user : dataset.world.users) {
    user_docs.push_back(simnet::UserTextWords(user, dataset.world.pages));
    user_cat_docs.push_back(simnet::UserCategoricalIds(user));
  }

  std::vector<std::vector<std::string>> event_docs;
  for (const auto& event : dataset.events) {
    if (event.create_day < static_cast<double>(event_knowledge_day)) {
      event_docs.push_back(simnet::EventTextWords(event));
    }
  }

  EncoderSet set;
  {
    text::LetterTrigramTokenizer trigram;
    set.user_text = std::make_unique<text::TextEncoder>(
        std::make_unique<text::LetterTrigramTokenizer>(),
        text::BuildVocabulary(trigram, user_docs, min_df, max_vocab,
                              max_df_fraction));
    set.event_text = std::make_unique<text::TextEncoder>(
        std::make_unique<text::LetterTrigramTokenizer>(),
        text::BuildVocabulary(trigram, event_docs, min_df, max_vocab,
                              max_df_fraction));
  }
  {
    text::WordUnigramTokenizer unigram;
    // Categorical ids are not DF-filtered as aggressively: an id feature
    // seen once is still a legitimate signal, so min_df = 1.
    set.user_categorical = std::make_unique<text::TextEncoder>(
        std::make_unique<text::WordUnigramTokenizer>(),
        text::BuildVocabulary(unigram, user_cat_docs, /*min_df=*/1,
                              max_vocab));
  }
  return set;
}

}  // namespace pipeline
}  // namespace evrec
