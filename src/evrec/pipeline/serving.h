// Serving-layer construction from a trained TwoStagePipeline: trains the
// primary (full-feature) and fallback (baseline-only) GBDT combiners,
// wraps the pipeline's representation cache as a serve::VectorStore, and
// wires the tier-2 recompute and tier-4 prior callbacks.

#ifndef EVREC_PIPELINE_SERVING_H_
#define EVREC_PIPELINE_SERVING_H_

#include <memory>

#include "evrec/pipeline/pipeline.h"
#include "evrec/serve/service.h"

namespace evrec {
namespace pipeline {

// Owns everything a RecommendationService points at. Must outlive any
// service built from it, and must not outlive the pipeline it was built
// from (the recompute/prior callbacks capture pipeline internals).
struct ServingBundle {
  baseline::FeatureConfig primary_features;
  baseline::FeatureConfig fallback_features;
  gbdt::GbdtModel primary;
  gbdt::GbdtModel fallback;
  std::unique_ptr<baseline::FeatureAssembler> assembler;
  std::unique_ptr<serve::VectorStore> store;
  serve::VectorComputeFn recompute;
  std::function<double(int, int, int)> prior;

  // Backends pointing into this bundle. `store_override` substitutes a
  // different store (e.g. a FaultyVectorStore decorating `store.get()`).
  serve::RecommendationService::Backends MakeBackends(
      serve::Clock* clock, serve::VectorStore* store_override = nullptr)
      const;
};

// Requires Prepare(), TrainRepresentation(), and ComputeRepVectors() to
// have run. Trains both combiners via EvaluateFeatureConfig, so a service
// built from the bundle scores tier-1 candidates bit-identically to the
// offline evaluation path.
ServingBundle BuildServingBundle(
    TwoStagePipeline& pipeline,
    const baseline::FeatureConfig& primary_features);

}  // namespace pipeline
}  // namespace evrec

#endif  // EVREC_PIPELINE_SERVING_H_
