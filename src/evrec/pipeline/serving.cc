#include "evrec/pipeline/serving.h"

#include <cmath>

#include "evrec/util/string_util.h"

namespace evrec {
namespace pipeline {

serve::RecommendationService::Backends ServingBundle::MakeBackends(
    serve::Clock* clock, serve::VectorStore* store_override) const {
  serve::RecommendationService::Backends backends;
  backends.store = store_override != nullptr ? store_override : store.get();
  backends.recompute = recompute;
  backends.assembler = assembler.get();
  backends.primary = &primary;
  backends.primary_features = primary_features;
  backends.fallback = &fallback;
  backends.fallback_features = fallback_features;
  backends.prior = prior;
  backends.clock = clock;
  return backends;
}

ServingBundle BuildServingBundle(
    TwoStagePipeline& pipeline,
    const baseline::FeatureConfig& primary_features) {
  ServingBundle bundle;
  bundle.primary_features = primary_features;
  bundle.fallback_features = baseline::FeatureConfig{};
  bundle.fallback_features.base = true;
  bundle.fallback_features.cf = true;
  bundle.fallback_features.rep_vectors = false;
  bundle.fallback_features.rep_score = false;

  pipeline.EvaluateFeatureConfig(primary_features, &bundle.primary);
  pipeline.EvaluateFeatureConfig(bundle.fallback_features, &bundle.fallback);

  bundle.assembler = std::make_unique<baseline::FeatureAssembler>(
      pipeline.feature_index(),
      pipeline.user_reps().empty() ? nullptr : &pipeline.user_reps(),
      pipeline.event_reps().empty() ? nullptr : &pipeline.event_reps());
  bundle.store = std::make_unique<serve::RepCacheVectorStore>(
      &pipeline.mutable_rep_cache());

  TwoStagePipeline* pipe = &pipeline;
  bundle.recompute = [pipe](store::EntityKind kind,
                            int id) -> StatusOr<std::vector<float>> {
    const model::RepDataset& data = pipe->rep_data();
    if (kind == store::EntityKind::kUser) {
      if (id < 0 || static_cast<size_t>(id) >= data.user_inputs.size()) {
        return Status::NotFound(StrFormat("unknown user %d", id));
      }
      return pipe->rep_model().UserVector(
          data.user_inputs[static_cast<size_t>(id)]);
    }
    if (id < 0 || static_cast<size_t>(id) >= data.event_inputs.size()) {
      return Status::NotFound(StrFormat("unknown event %d", id));
    }
    return pipe->rep_model().EventVector(
        data.event_inputs[static_cast<size_t>(id)]);
  };

  const baseline::FeatureIndex* index = &pipeline.feature_index();
  bundle.prior = [index](int user, int event, int day) {
    // Popularity plus a friends-attending CF nudge: the always-available
    // floor of the degradation ladder.
    return std::log1p(index->AttendeesBefore(event, day)) +
           0.5 * std::log1p(index->FriendsAttendingBefore(user, event, day));
  };
  return bundle;
}

}  // namespace pipeline
}  // namespace evrec
