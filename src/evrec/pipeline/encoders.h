// EncoderSet: the three trained encoders of the joint model — user text
// (letter trigram), user categorical ids (word unigram), event text
// (letter trigram) — with DF-filtered vocabularies built from the
// representation-training period only (paper §5.1: "all model knowledge
// comes from the data before evaluation period"). Evaluation-week events
// are encoded with the frozen vocabularies; unseen trigrams drop out, and
// letter-trigram coverage is what keeps cold events representable.

#ifndef EVREC_PIPELINE_ENCODERS_H_
#define EVREC_PIPELINE_ENCODERS_H_

#include <memory>
#include <vector>

#include "evrec/simnet/docs.h"
#include "evrec/simnet/generator.h"
#include "evrec/text/encoder.h"

namespace evrec {
namespace pipeline {

struct EncoderSet {
  std::unique_ptr<text::TextEncoder> user_text;
  std::unique_ptr<text::TextEncoder> user_categorical;
  std::unique_ptr<text::TextEncoder> event_text;

  // Vocabulary sizes, in the order the user/event towers expect banks.
  int UserTextVocab() const { return user_text->vocabulary().size(); }
  int UserCategoricalVocab() const {
    return user_categorical->vocabulary().size();
  }
  int EventTextVocab() const { return event_text->vocabulary().size(); }

  // Encodes a user's two documents; token streams optionally truncated.
  std::vector<text::EncodedText> EncodeUser(
      const simnet::User& user, const std::vector<simnet::Page>& pages,
      int max_tokens) const;

  // Encodes an event's text document.
  std::vector<text::EncodedText> EncodeEvent(const simnet::Event& event,
                                             int max_tokens) const;

  // Title-only / body-only encodings for Siamese pre-training.
  text::EncodedText EncodeEventTitle(const simnet::Event& event,
                                     int max_tokens) const;
  text::EncodedText EncodeEventBody(const simnet::Event& event,
                                    int max_tokens) const;
};

// Truncates an encoded document to its first `max_tokens` tokens
// (0 = unlimited). Production systems cap document length for latency;
// the bench profile uses this to bound convolution cost.
text::EncodedText Truncate(text::EncodedText encoded, int max_tokens);

// Builds the three encoders. Vocabularies: user documents from every user
// (profiles are long-lived), event documents from events created before
// `event_knowledge_day` only (transiency: future events are unknown).
EncoderSet BuildEncoders(const simnet::SimnetDataset& dataset,
                         int event_knowledge_day, int min_df,
                         size_t max_vocab, double max_df_fraction = 1.0);

}  // namespace pipeline
}  // namespace evrec

#endif  // EVREC_PIPELINE_ENCODERS_H_
