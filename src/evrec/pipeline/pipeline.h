// TwoStagePipeline: the full system of the paper, end to end.
//
//   stage 0  simnet        generate the 6-week world and impression log
//   stage 1  model         train the joint representation model on the
//                          first 4 weeks (optionally Siamese-initialized),
//                          then precompute every user/event vector through
//                          the serving cache (store/)
//   stage 2  baseline+gbdt assemble combiner features for any of the
//                          paper's feature-set configurations, train the
//                          200x12 GBDT on week 5, evaluate on week 6
//
// Bench binaries share one pipeline: the expensive representation model is
// fingerprinted by its configuration and cached on disk, so bench_table1,
// bench_fig5, etc. train it once and reuse it.

#ifndef EVREC_PIPELINE_PIPELINE_H_
#define EVREC_PIPELINE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "evrec/baseline/assembler.h"
#include "evrec/eval/metrics.h"
#include "evrec/gbdt/gbdt.h"
#include "evrec/la/flat_block.h"
#include "evrec/model/joint_model.h"
#include "evrec/model/siamese.h"
#include "evrec/model/trainer.h"
#include "evrec/obs/health.h"
#include "evrec/obs/profile.h"
#include "evrec/pipeline/encoders.h"
#include "evrec/serve/vector_store.h"
#include "evrec/store/rep_cache.h"

namespace evrec {
namespace pipeline {

struct PipelineConfig {
  simnet::SimnetConfig simnet;
  model::JointModelConfig rep;
  model::SiameseConfig siamese;
  gbdt::GbdtConfig gbdt;

  bool use_siamese_init = false;
  // Multi-feedback training (paper's future-work direction): add the
  // "interested" feedback edges from the representation-training period as
  // weak positive pairs with this weight (0 disables).
  float interested_pair_weight = 0.0f;
  // Token caps applied when encoding documents (0 = unlimited). The bench
  // profile bounds convolution cost with these.
  int max_user_tokens = 0;
  int max_event_tokens = 0;
  // Directory for the representation-model disk cache ("" disables).
  std::string cache_dir;
  // Directory for mid-run training checkpoints ("" disables). Stage-1
  // trainers commit their full state there (joint model under prefix
  // "rep", Siamese pre-training under "siamese") every `checkpoint_every`
  // epochs; with `resume`, an interrupted run continues from the newest
  // valid checkpoint with bit-identical results (see model/trainer.h).
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  bool resume = false;
  // Data-parallel execution. `threads` sizes the shared worker pool used
  // by stage-1 training (joint + Siamese) and vector precompute; it never
  // changes results. `grad_shards` fixes the gradient-reduction layout and
  // therefore the trained bits (it participates in the model fingerprint).
  int threads = 1;
  int grad_shards = 8;
  // In-process profiler settings (sampling rate, bounds, output path).
  // The pipeline itself never starts the profiler — callers (evrec_cli
  // serve-demo, tests) decide when; this carries the knobs end to end.
  obs::ProfileConfig profile;
};

struct EvalResult {
  std::string name;
  double auc = 0.0;
  double pr60 = 0.0;  // precision at recall 0.60
  double pr80 = 0.0;  // precision at recall 0.80
  double logloss = 0.0;
  std::vector<eval::PrPoint> curve;
};

class TwoStagePipeline {
 public:
  explicit TwoStagePipeline(const PipelineConfig& config);

  // Stage 0 + encoders + encodings. Must be called first.
  void Prepare();

  // Stage 1. Returns training stats; loads from the disk cache when a
  // model with the same fingerprint exists. Requires Prepare().
  model::TrainStats TrainRepresentation();

  // Precomputes all user/event vectors through the serving cache.
  // Requires TrainRepresentation().
  void ComputeRepVectors();

  // Stage 2 for one feature-set configuration: trains the combiner on the
  // week-5 split and evaluates on the week-6 split. If `trained_combiner`
  // is non-null the GBDT is copied out for inspection.
  EvalResult EvaluateFeatureConfig(const baseline::FeatureConfig& features,
                                   gbdt::GbdtModel* trained_combiner = nullptr);

  // --- accessors for benches/examples ---
  const PipelineConfig& config() const { return config_; }
  const simnet::SimnetDataset& dataset() const { return data_; }
  const EncoderSet& encoders() const { return encoders_; }
  const model::JointModel& rep_model() const { return *model_; }
  const model::RepDataset& rep_data() const { return rep_data_; }
  const baseline::FeatureIndex& feature_index() const { return *index_; }
  const std::vector<std::vector<float>>& user_reps() const {
    return user_reps_;
  }
  const std::vector<std::vector<float>>& event_reps() const {
    return event_reps_;
  }
  // The same vectors materialized into the 64-byte-aligned blocked SoA
  // layout the batched scoring kernels want (la/flat_block.h): slot i is
  // user/event i. Filled by ComputeRepVectors alongside the row vectors;
  // feed these to ann::IvfIndex::Build or score them directly.
  const la::FlatVectorBlock& user_rep_block() const {
    return user_rep_block_;
  }
  const la::FlatVectorBlock& event_rep_block() const {
    return event_rep_block_;
  }

  // Stage-1 retrieval, the serving path of the paper's §4: scores the
  // user's cached representation vector against the candidate events'
  // cached vectors (batched cosine kernel over the shared worker pool) and
  // returns the top k by heap partial selection. Requires
  // ComputeRepVectors().
  std::vector<serve::ScoredCandidate> RetrieveTopEvents(
      int user_id, const std::vector<int>& candidate_event_ids, int k);
  store::CacheStats cache_stats() const { return cache_.Stats(); }
  // Serving-layer access to the vector cache (see pipeline/serving.h).
  store::RepVectorCache& mutable_rep_cache() { return cache_; }

  // Deterministic fingerprint of everything stage 1 depends on.
  uint64_t RepModelFingerprint() const;

  // Shared worker pool, created on first use (one pool for the whole
  // pipeline, so nested phases don't over-subscribe the machine).
  ThreadPool* pool();

  // Registers this pipeline's component probes (thread-pool liveness and,
  // when checkpointing is configured, checkpoint freshness) under
  // "pipeline.*". The probes capture pipeline internals: unregister them
  // (UnregisterHealthProbes) before the pipeline dies if the registry
  // outlives it.
  void RegisterHealthProbes(obs::HealthRegistry* health);
  void UnregisterHealthProbes(obs::HealthRegistry* health);

 private:
  std::string CacheFilePath() const;
  bool TryLoadCachedModel();
  void SaveCachedModel() const;

  PipelineConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  simnet::SimnetDataset data_;
  EncoderSet encoders_;
  model::RepDataset rep_data_;
  std::unique_ptr<model::JointModel> model_;
  std::unique_ptr<baseline::FeatureIndex> index_;
  store::RepVectorCache cache_;
  std::vector<std::vector<float>> user_reps_;
  std::vector<std::vector<float>> event_reps_;
  la::FlatVectorBlock user_rep_block_;
  la::FlatVectorBlock event_rep_block_;
  bool prepared_ = false;
  bool trained_ = false;
};

}  // namespace pipeline
}  // namespace evrec

#endif  // EVREC_PIPELINE_PIPELINE_H_
