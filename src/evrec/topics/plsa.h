// Probabilistic Latent Semantic Analysis trained with EM — the second
// bag-of-words prior-art model the paper cites ([1], used by [3] for event
// matching). Kept alongside LDA for the semantic-baseline ablation.

#ifndef EVREC_TOPICS_PLSA_H_
#define EVREC_TOPICS_PLSA_H_

#include <vector>

#include "evrec/util/rng.h"

namespace evrec {
namespace topics {

struct PlsaConfig {
  int num_topics = 16;
  int train_iterations = 60;
  int fold_in_iterations = 30;
  double smoothing = 1e-3;  // additive smoothing on p(w|z) updates
  uint64_t seed = 9;
};

class PlsaModel {
 public:
  void Train(const std::vector<std::vector<int>>& docs, int vocab_size,
             const PlsaConfig& config);

  int num_topics() const { return config_.num_topics; }
  bool trained() const { return !word_given_topic_.empty(); }

  // p(z | d) for training document d.
  std::vector<double> DocTopics(int d) const {
    return topic_given_doc_[static_cast<size_t>(d)];
  }

  // Folds in a new document: EM on p(z|d_new) with p(w|z) frozen.
  std::vector<double> InferTopics(const std::vector<int>& doc) const;

  double WordGivenTopic(int topic, int word) const {
    return word_given_topic_[static_cast<size_t>(topic)]
                            [static_cast<size_t>(word)];
  }

 private:
  PlsaConfig config_;
  int vocab_size_ = 0;
  std::vector<std::vector<double>> word_given_topic_;  // [k][w]
  std::vector<std::vector<double>> topic_given_doc_;   // [d][k]
};

}  // namespace topics
}  // namespace evrec

#endif  // EVREC_TOPICS_PLSA_H_
