#include "evrec/topics/plsa.h"

#include <unordered_map>

#include "evrec/util/check.h"

namespace evrec {
namespace topics {

namespace {

// Per-document word counts (PLSA works on the count matrix).
std::unordered_map<int, int> CountWords(const std::vector<int>& doc,
                                        int vocab_size) {
  std::unordered_map<int, int> counts;
  for (int w : doc) {
    if (w >= 0 && w < vocab_size) ++counts[w];
  }
  return counts;
}

}  // namespace

void PlsaModel::Train(const std::vector<std::vector<int>>& docs,
                      int vocab_size, const PlsaConfig& config) {
  EVREC_CHECK_GT(vocab_size, 0);
  config_ = config;
  vocab_size_ = vocab_size;
  const int k = config.num_topics;
  const int d = static_cast<int>(docs.size());
  Rng rng(config.seed, /*stream=*/23);

  std::vector<std::unordered_map<int, int>> counts(static_cast<size_t>(d));
  for (int di = 0; di < d; ++di) {
    counts[static_cast<size_t>(di)] =
        CountWords(docs[static_cast<size_t>(di)], vocab_size);
  }

  // Random init, normalized.
  word_given_topic_.assign(
      static_cast<size_t>(k),
      std::vector<double>(static_cast<size_t>(vocab_size), 0.0));
  for (auto& row : word_given_topic_) {
    double sum = 0.0;
    for (auto& v : row) {
      v = rng.Uniform(0.5, 1.5);
      sum += v;
    }
    for (auto& v : row) v /= sum;
  }
  topic_given_doc_.assign(static_cast<size_t>(d),
                          std::vector<double>(static_cast<size_t>(k), 0.0));
  for (auto& row : topic_given_doc_) {
    double sum = 0.0;
    for (auto& v : row) {
      v = rng.Uniform(0.5, 1.5);
      sum += v;
    }
    for (auto& v : row) v /= sum;
  }

  std::vector<double> posterior(static_cast<size_t>(k));
  std::vector<std::vector<double>> new_wz(
      static_cast<size_t>(k),
      std::vector<double>(static_cast<size_t>(vocab_size), 0.0));

  for (int iter = 0; iter < config.train_iterations; ++iter) {
    for (auto& row : new_wz) {
      std::fill(row.begin(), row.end(), config.smoothing);
    }
    for (int di = 0; di < d; ++di) {
      auto& pzd = topic_given_doc_[static_cast<size_t>(di)];
      std::vector<double> new_zd(static_cast<size_t>(k), 1e-12);
      for (const auto& [w, c] : counts[static_cast<size_t>(di)]) {
        // E-step: p(z | d, w) ~ p(w|z) p(z|d).
        double norm = 0.0;
        for (int kk = 0; kk < k; ++kk) {
          posterior[static_cast<size_t>(kk)] =
              word_given_topic_[static_cast<size_t>(kk)]
                               [static_cast<size_t>(w)] *
              pzd[static_cast<size_t>(kk)];
          norm += posterior[static_cast<size_t>(kk)];
        }
        if (norm <= 0.0) continue;
        for (int kk = 0; kk < k; ++kk) {
          double r = c * posterior[static_cast<size_t>(kk)] / norm;
          new_wz[static_cast<size_t>(kk)][static_cast<size_t>(w)] += r;
          new_zd[static_cast<size_t>(kk)] += r;
        }
      }
      // M-step for p(z|d).
      double zsum = 0.0;
      for (double v : new_zd) zsum += v;
      for (int kk = 0; kk < k; ++kk) {
        pzd[static_cast<size_t>(kk)] = new_zd[static_cast<size_t>(kk)] / zsum;
      }
    }
    // M-step for p(w|z).
    for (int kk = 0; kk < k; ++kk) {
      double sum = 0.0;
      for (double v : new_wz[static_cast<size_t>(kk)]) sum += v;
      for (int w = 0; w < vocab_size; ++w) {
        word_given_topic_[static_cast<size_t>(kk)][static_cast<size_t>(w)] =
            new_wz[static_cast<size_t>(kk)][static_cast<size_t>(w)] / sum;
      }
    }
  }
}

std::vector<double> PlsaModel::InferTopics(const std::vector<int>& doc) const {
  EVREC_CHECK(trained());
  const int k = config_.num_topics;
  std::vector<double> pzd(static_cast<size_t>(k), 1.0 / k);
  auto counts = CountWords(doc, vocab_size_);
  if (counts.empty()) return pzd;

  std::vector<double> posterior(static_cast<size_t>(k));
  for (int iter = 0; iter < config_.fold_in_iterations; ++iter) {
    std::vector<double> new_zd(static_cast<size_t>(k), 1e-12);
    for (const auto& [w, c] : counts) {
      double norm = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        posterior[static_cast<size_t>(kk)] =
            word_given_topic_[static_cast<size_t>(kk)][static_cast<size_t>(w)] *
            pzd[static_cast<size_t>(kk)];
        norm += posterior[static_cast<size_t>(kk)];
      }
      if (norm <= 0.0) continue;
      for (int kk = 0; kk < k; ++kk) {
        new_zd[static_cast<size_t>(kk)] +=
            c * posterior[static_cast<size_t>(kk)] / norm;
      }
    }
    double zsum = 0.0;
    for (double v : new_zd) zsum += v;
    for (int kk = 0; kk < k; ++kk) {
      pzd[static_cast<size_t>(kk)] = new_zd[static_cast<size_t>(kk)] / zsum;
    }
  }
  return pzd;
}

}  // namespace topics
}  // namespace evrec
