#include "evrec/topics/lda.h"

#include <cmath>

#include "evrec/util/check.h"

namespace evrec {
namespace topics {

void LdaModel::Train(const std::vector<std::vector<int>>& docs,
                     int vocab_size, const LdaConfig& config) {
  EVREC_CHECK_GT(vocab_size, 0);
  EVREC_CHECK_GT(config.num_topics, 0);
  config_ = config;
  vocab_size_ = vocab_size;
  const int k = config.num_topics;
  const int d = static_cast<int>(docs.size());

  doc_topic_.assign(static_cast<size_t>(d), std::vector<int>(k, 0));
  doc_len_.assign(static_cast<size_t>(d), 0);
  topic_word_.assign(static_cast<size_t>(k),
                     std::vector<int>(static_cast<size_t>(vocab_size), 0));
  topic_total_.assign(static_cast<size_t>(k), 0);

  Rng rng(config.seed, /*stream=*/11);

  // Topic assignment per token position.
  std::vector<std::vector<int>> assignments(static_cast<size_t>(d));
  for (int di = 0; di < d; ++di) {
    const auto& doc = docs[static_cast<size_t>(di)];
    assignments[static_cast<size_t>(di)].resize(doc.size());
    for (size_t t = 0; t < doc.size(); ++t) {
      int w = doc[t];
      if (w < 0 || w >= vocab_size) {
        assignments[static_cast<size_t>(di)][t] = -1;
        continue;
      }
      int z = rng.UniformInt(0, k - 1);
      assignments[static_cast<size_t>(di)][t] = z;
      ++doc_topic_[static_cast<size_t>(di)][static_cast<size_t>(z)];
      ++doc_len_[static_cast<size_t>(di)];
      ++topic_word_[static_cast<size_t>(z)][static_cast<size_t>(w)];
      ++topic_total_[static_cast<size_t>(z)];
    }
  }

  std::vector<double> probs(static_cast<size_t>(k));
  const double vbeta = vocab_size * config.beta;
  for (int iter = 0; iter < config.train_iterations; ++iter) {
    for (int di = 0; di < d; ++di) {
      const auto& doc = docs[static_cast<size_t>(di)];
      auto& assign = assignments[static_cast<size_t>(di)];
      auto& ndk = doc_topic_[static_cast<size_t>(di)];
      for (size_t t = 0; t < doc.size(); ++t) {
        int z = assign[t];
        if (z < 0) continue;
        int w = doc[t];
        // Remove the token, resample, add back.
        --ndk[static_cast<size_t>(z)];
        --topic_word_[static_cast<size_t>(z)][static_cast<size_t>(w)];
        --topic_total_[static_cast<size_t>(z)];
        for (int kk = 0; kk < k; ++kk) {
          probs[static_cast<size_t>(kk)] =
              (ndk[static_cast<size_t>(kk)] + config.alpha) *
              (topic_word_[static_cast<size_t>(kk)][static_cast<size_t>(w)] +
               config.beta) /
              (topic_total_[static_cast<size_t>(kk)] + vbeta);
        }
        z = rng.Categorical(probs);
        assign[t] = z;
        ++ndk[static_cast<size_t>(z)];
        ++topic_word_[static_cast<size_t>(z)][static_cast<size_t>(w)];
        ++topic_total_[static_cast<size_t>(z)];
      }
    }
  }
}

std::vector<double> LdaModel::DocTopics(int d) const {
  const auto& ndk = doc_topic_[static_cast<size_t>(d)];
  const int k = config_.num_topics;
  std::vector<double> out(static_cast<size_t>(k));
  double denom = doc_len_[static_cast<size_t>(d)] + k * config_.alpha;
  for (int kk = 0; kk < k; ++kk) {
    out[static_cast<size_t>(kk)] =
        (ndk[static_cast<size_t>(kk)] + config_.alpha) / denom;
  }
  return out;
}

std::vector<double> LdaModel::InferTopics(const std::vector<int>& doc,
                                          Rng& rng) const {
  EVREC_CHECK(trained());
  const int k = config_.num_topics;
  std::vector<double> uniform(static_cast<size_t>(k), 1.0 / k);

  std::vector<int> valid;
  for (int w : doc) {
    if (w >= 0 && w < vocab_size_) valid.push_back(w);
  }
  if (valid.empty()) return uniform;

  std::vector<int> ndk(static_cast<size_t>(k), 0);
  std::vector<int> assign(valid.size());
  for (size_t t = 0; t < valid.size(); ++t) {
    int z = rng.UniformInt(0, k - 1);
    assign[t] = z;
    ++ndk[static_cast<size_t>(z)];
  }
  std::vector<double> probs(static_cast<size_t>(k));
  const double vbeta = vocab_size_ * config_.beta;
  for (int iter = 0; iter < config_.infer_iterations; ++iter) {
    for (size_t t = 0; t < valid.size(); ++t) {
      int z = assign[t];
      int w = valid[t];
      --ndk[static_cast<size_t>(z)];
      for (int kk = 0; kk < k; ++kk) {
        probs[static_cast<size_t>(kk)] =
            (ndk[static_cast<size_t>(kk)] + config_.alpha) *
            (topic_word_[static_cast<size_t>(kk)][static_cast<size_t>(w)] +
             config_.beta) /
            (topic_total_[static_cast<size_t>(kk)] + vbeta);
      }
      z = rng.Categorical(probs);
      assign[t] = z;
      ++ndk[static_cast<size_t>(z)];
    }
  }
  std::vector<double> out(static_cast<size_t>(k));
  double denom = static_cast<double>(valid.size()) + k * config_.alpha;
  for (int kk = 0; kk < k; ++kk) {
    out[static_cast<size_t>(kk)] =
        (ndk[static_cast<size_t>(kk)] + config_.alpha) / denom;
  }
  return out;
}

double LdaModel::TopicWordProb(int topic, int word) const {
  EVREC_CHECK(trained());
  return (topic_word_[static_cast<size_t>(topic)][static_cast<size_t>(word)] +
          config_.beta) /
         (topic_total_[static_cast<size_t>(topic)] +
          vocab_size_ * config_.beta);
}

double LdaModel::MixtureSimilarity(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  EVREC_CHECK_EQ(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na < 1e-18 || nb < 1e-18) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace topics
}  // namespace evrec
