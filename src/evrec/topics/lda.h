// Latent Dirichlet Allocation trained by collapsed Gibbs sampling.
//
// This is the bag-of-words semantic model the paper argues against (§1-2):
// prior event recommenders project users and events into LDA topic space
// and match by topic-distribution similarity. The ablation bench uses this
// implementation to reproduce that comparison: because the synthetic user
// and event vocabularies are word-disjoint (DESIGN.md §2), LDA trained on
// event text cannot represent users except through their (sparse) attended
// events — exactly the homogeneity bottleneck the paper describes.

#ifndef EVREC_TOPICS_LDA_H_
#define EVREC_TOPICS_LDA_H_

#include <vector>

#include "evrec/util/rng.h"

namespace evrec {
namespace topics {

struct LdaConfig {
  int num_topics = 16;
  double alpha = 0.1;   // doc-topic prior
  double beta = 0.01;   // topic-word prior
  int train_iterations = 150;
  int infer_iterations = 30;
  uint64_t seed = 7;
};

class LdaModel {
 public:
  // `docs` are token-id sequences over a vocabulary of `vocab_size`.
  void Train(const std::vector<std::vector<int>>& docs, int vocab_size,
             const LdaConfig& config);

  int num_topics() const { return config_.num_topics; }
  int vocab_size() const { return vocab_size_; }
  bool trained() const { return !topic_word_.empty(); }

  // Topic mixture of training document `d`.
  std::vector<double> DocTopics(int d) const;

  // Folds in an unseen document by Gibbs sampling with topic-word counts
  // frozen. Unknown / out-of-range token ids are skipped; an empty
  // (or fully unknown) document returns the uniform mixture.
  std::vector<double> InferTopics(const std::vector<int>& doc,
                                  Rng& rng) const;

  // p(w | z = k), smoothed.
  double TopicWordProb(int topic, int word) const;

  // Cosine similarity between two topic mixtures.
  static double MixtureSimilarity(const std::vector<double>& a,
                                  const std::vector<double>& b);

 private:
  LdaConfig config_;
  int vocab_size_ = 0;
  std::vector<std::vector<int>> doc_topic_;   // n_dk
  std::vector<int> doc_len_;
  std::vector<std::vector<int>> topic_word_;  // n_kw
  std::vector<int> topic_total_;              // n_k
};

}  // namespace topics
}  // namespace evrec

#endif  // EVREC_TOPICS_LDA_H_
