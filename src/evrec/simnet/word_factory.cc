#include "evrec/simnet/word_factory.h"

#include <unordered_set>

#include "evrec/util/check.h"

namespace evrec {
namespace simnet {

namespace {

const char* const kConsonants[] = {"b", "d", "f", "g", "j",  "k", "l",
                                   "m", "n", "p", "r", "s",  "t", "v",
                                   "z", "ch", "sh", "th", "st", "br"};
const char* const kVowels[] = {"a", "e", "i", "o", "u", "ai", "ou", "ea"};

std::string RandomSyllable(Rng& rng) {
  std::string s = kConsonants[rng.UniformInt(0, 19)];
  s += kVowels[rng.UniformInt(0, 7)];
  if (rng.Bernoulli(0.35)) s += kConsonants[rng.UniformInt(0, 19)];
  return s;
}

}  // namespace

TopicLanguage::TopicLanguage(const SimnetConfig& config, Rng& rng) {
  const int t = config.num_topics;
  EVREC_CHECK_GT(t, 0);

  // Disjoint syllable pools: topic syllables are unique across topics and
  // distinct from the common pool, so topic identity is carried by
  // sub-word units.
  std::unordered_set<std::string> used;
  auto fresh_syllable = [&]() {
    for (int attempt = 0; attempt < 1000; ++attempt) {
      std::string s = RandomSyllable(rng);
      if (used.insert(s).second) return s;
    }
    // Syllable space nearly exhausted; extend with a numbered suffix.
    std::string s = RandomSyllable(rng) + "x";
    while (!used.insert(s).second) s += "x";
    return s;
  };

  topic_syllables_.resize(static_cast<size_t>(t));
  for (int k = 0; k < t; ++k) {
    for (int i = 0; i < config.syllables_per_topic; ++i) {
      topic_syllables_[static_cast<size_t>(k)].push_back(fresh_syllable());
    }
  }
  for (int i = 0; i < config.common_syllables; ++i) {
    common_syllables_.push_back(fresh_syllable());
  }

  // Word inventories. A topical word is 2-3 syllables, mostly from the
  // topic pool with occasional common syllables mixed in.
  auto make_topic_word = [&](int topic) {
    const auto& pool = topic_syllables_[static_cast<size_t>(topic)];
    std::string w;
    int syllables = rng.UniformInt(2, 3);
    for (int i = 0; i < syllables; ++i) {
      if (rng.Bernoulli(0.2) && !common_syllables_.empty()) {
        w += common_syllables_[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int>(common_syllables_.size()) - 1))];
      } else {
        w += pool[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int>(pool.size()) - 1))];
      }
    }
    return w;
  };

  std::unordered_set<std::string> used_words;
  auto unique_word = [&](auto&& make) {
    for (int attempt = 0; attempt < 1000; ++attempt) {
      std::string w = make();
      if (used_words.insert(w).second) return w;
    }
    std::string w = make() + "q";
    while (!used_words.insert(w).second) w += "q";
    return w;
  };

  event_words_.resize(static_cast<size_t>(t));
  user_words_.resize(static_cast<size_t>(t));
  topic_names_.reserve(static_cast<size_t>(t));
  for (int k = 0; k < t; ++k) {
    for (int i = 0; i < config.event_words_per_topic; ++i) {
      event_words_[static_cast<size_t>(k)].push_back(
          unique_word([&]() { return make_topic_word(k); }));
    }
    for (int i = 0; i < config.user_words_per_topic; ++i) {
      user_words_[static_cast<size_t>(k)].push_back(
          unique_word([&]() { return make_topic_word(k); }));
    }
    // Category label: the topic's first event word with a marker suffix.
    topic_names_.push_back(event_words_[static_cast<size_t>(k)][0] + "fest");
  }
  for (int i = 0; i < config.num_common_words; ++i) {
    common_words_.push_back(unique_word([&]() {
      std::string w;
      int syllables = rng.UniformInt(1, 2);
      for (int s = 0; s < syllables; ++s) {
        w += common_syllables_[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int>(common_syllables_.size()) - 1))];
      }
      return w;
    }));
  }
}

std::vector<std::string> TopicLanguage::SampleDocument(
    const std::vector<double>& mixture, int length, bool event_side,
    double common_word_fraction, Rng& rng) const {
  EVREC_CHECK_EQ(static_cast<int>(mixture.size()), num_topics());
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    if (rng.Bernoulli(common_word_fraction) && !common_words_.empty()) {
      out.push_back(common_words_[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int>(common_words_.size()) - 1))]);
      continue;
    }
    int topic = rng.Categorical(mixture);
    const auto& words = event_side ? event_words_[static_cast<size_t>(topic)]
                                   : user_words_[static_cast<size_t>(topic)];
    out.push_back(words[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(words.size()) - 1))]);
  }
  return out;
}

}  // namespace simnet
}  // namespace evrec
