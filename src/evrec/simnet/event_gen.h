// Event generation: short-lifespan events hosted by users, with topic
// mixtures biased toward the host's interests, located near the host's
// city, and carrying topic-conditioned title/body text from the EVENT-side
// word inventory.

#ifndef EVREC_SIMNET_EVENT_GEN_H_
#define EVREC_SIMNET_EVENT_GEN_H_

#include <vector>

#include "evrec/simnet/config.h"
#include "evrec/simnet/social_graph.h"

namespace evrec {
namespace simnet {

std::vector<Event> GenerateEvents(const SimnetConfig& config,
                                  const TopicLanguage& language,
                                  const SocialWorld& world, Rng& rng);

// Event ids active (visible for recommendation) on `day`, i.e. with
// create_day <= day <= start_day.
std::vector<std::vector<int>> ActiveEventsByDay(
    const std::vector<Event>& events, int num_days);

}  // namespace simnet
}  // namespace evrec

#endif  // EVREC_SIMNET_EVENT_GEN_H_
