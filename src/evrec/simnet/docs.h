// Document assembly (paper §3): "For both user and event, we combine text
// features into a single text document. An event is then represented simply
// by a text document ... A user is represented by a text document and an
// unordered list of id features."

#ifndef EVREC_SIMNET_DOCS_H_
#define EVREC_SIMNET_DOCS_H_

#include <string>
#include <vector>

#include "evrec/simnet/entities.h"

namespace evrec {
namespace simnet {

// Event text document: title + body + category label.
std::vector<std::string> EventTextWords(const Event& event);

// Title-only and body-only halves, for Siamese pre-training.
std::vector<std::string> EventTitleWords(const Event& event);
std::vector<std::string> EventBodyWords(const Event& event);

// User text document: profile keywords + titles of subscribed pages.
std::vector<std::string> UserTextWords(const User& user,
                                       const std::vector<Page>& pages);

// User categorical id features: demographics, geography, and page
// subscriptions as feature-value ids ("city:3", "page:17", ...).
std::vector<std::string> UserCategoricalIds(const User& user);

}  // namespace simnet
}  // namespace evrec

#endif  // EVREC_SIMNET_DOCS_H_
