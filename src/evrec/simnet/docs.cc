#include "evrec/simnet/docs.h"

#include "evrec/util/check.h"
#include "evrec/util/string_util.h"

namespace evrec {
namespace simnet {

std::vector<std::string> EventTextWords(const Event& event) {
  std::vector<std::string> words;
  words.reserve(event.title_words.size() + event.body_words.size() + 1);
  words.insert(words.end(), event.title_words.begin(),
               event.title_words.end());
  words.insert(words.end(), event.body_words.begin(), event.body_words.end());
  if (!event.category_name.empty()) words.push_back(event.category_name);
  return words;
}

std::vector<std::string> EventTitleWords(const Event& event) {
  return event.title_words;
}

std::vector<std::string> EventBodyWords(const Event& event) {
  return event.body_words;
}

std::vector<std::string> UserTextWords(const User& user,
                                       const std::vector<Page>& pages) {
  std::vector<std::string> words = user.profile_words;
  for (int pid : user.pages) {
    EVREC_CHECK_GE(pid, 0);
    EVREC_CHECK_LT(pid, static_cast<int>(pages.size()));
    const Page& page = pages[static_cast<size_t>(pid)];
    words.insert(words.end(), page.title_words.begin(),
                 page.title_words.end());
  }
  return words;
}

std::vector<std::string> UserCategoricalIds(const User& user) {
  std::vector<std::string> ids;
  ids.reserve(user.pages.size() + 3);
  ids.push_back(StrFormat("city:%d", user.city));
  ids.push_back(StrFormat("age:%d", user.age_bucket));
  ids.push_back(StrFormat("gender:%d", user.gender));
  for (int pid : user.pages) ids.push_back(StrFormat("page:%d", pid));
  return ids;
}

}  // namespace simnet
}  // namespace evrec
