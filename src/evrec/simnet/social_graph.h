// Generation of the static social world: pages, users (demographics,
// geography, interests, profile text), page subscriptions, and the
// friendship graph. Friendships are homophilous — probability increases
// with shared city and interest similarity — which is what makes
// friend-based collaborative signals informative.

#ifndef EVREC_SIMNET_SOCIAL_GRAPH_H_
#define EVREC_SIMNET_SOCIAL_GRAPH_H_

#include <vector>

#include "evrec/simnet/config.h"
#include "evrec/simnet/entities.h"
#include "evrec/simnet/word_factory.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace simnet {

struct SocialWorld {
  std::vector<Page> pages;
  std::vector<User> users;
};

// City grid layout: city c sits at (c % grid, c / grid) with unit spacing.
void CityCenter(int city, int num_cities, double* x, double* y);

// Cosine similarity of two topic mixtures.
double InterestSimilarity(const std::vector<double>& a,
                          const std::vector<double>& b);

SocialWorld GenerateSocialWorld(const SimnetConfig& config,
                                const TopicLanguage& language, Rng& rng);

}  // namespace simnet
}  // namespace evrec

#endif  // EVREC_SIMNET_SOCIAL_GRAPH_H_
