#include "evrec/simnet/dataset_io.h"

#include <cstdio>
#include <algorithm>
#include <fstream>
#include <sstream>

#include "evrec/util/string_util.h"

namespace evrec {
namespace simnet {

namespace {

std::string JoinInts(const std::vector<int>& v) {
  std::string out;
  for (int x : v) {
    if (!out.empty()) out += ' ';
    out += std::to_string(x);
  }
  return out;
}

std::string JoinDoubles(const std::vector<double>& v) {
  std::string out;
  for (double x : v) {
    if (!out.empty()) out += ' ';
    out += StrFormat("%.9g", x);
  }
  return out;
}

std::string JoinWords(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& w : v) {
    if (!out.empty()) out += ' ';
    out += w;
  }
  return out;
}

std::vector<int> ParseInts(std::string_view field) {
  std::vector<int> out;
  for (auto piece : SplitAndTrim(field, " ")) {
    out.push_back(std::atoi(std::string(piece).c_str()));
  }
  return out;
}

std::vector<double> ParseDoubles(std::string_view field) {
  std::vector<double> out;
  for (auto piece : SplitAndTrim(field, " ")) {
    out.push_back(std::atof(std::string(piece).c_str()));
  }
  return out;
}

std::vector<std::string> ParseWords(std::string_view field) {
  std::vector<std::string> out;
  for (auto piece : SplitAndTrim(field, " ")) {
    out.emplace_back(piece);
  }
  return out;
}

class TsvWriter {
 public:
  explicit TsvWriter(const std::string& path) : out_(path) {}
  bool ok() const { return out_.good(); }

  void Row(const std::vector<std::string>& fields) {
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out_ << '\t';
      out_ << fields[i];
    }
    out_ << '\n';
  }

 private:
  std::ofstream out_;
};

// Reads a TSV file; returns rows of fields (empty fields preserved).
StatusOr<std::vector<std::vector<std::string>>> ReadTsv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::IoError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
      size_t tab = line.find('\t', start);
      if (tab == std::string::npos) {
        fields.push_back(line.substr(start));
        break;
      }
      fields.push_back(line.substr(start, tab - start));
      start = tab + 1;
    }
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace

Status ExportDataset(const SimnetDataset& dataset, const std::string& dir) {
  {
    TsvWriter w(dir + "/users.tsv");
    if (!w.ok()) return Status::IoError("cannot write users.tsv");
    for (const User& u : dataset.world.users) {
      w.Row({std::to_string(u.id), std::to_string(u.city),
             std::to_string(u.age_bucket), std::to_string(u.gender),
             StrFormat("%.9g", u.activity_bias), JoinDoubles(u.interests),
             JoinInts(u.friends), JoinInts(u.pages),
             JoinWords(u.profile_words)});
    }
  }
  {
    TsvWriter w(dir + "/pages.tsv");
    if (!w.ok()) return Status::IoError("cannot write pages.tsv");
    for (const Page& p : dataset.world.pages) {
      w.Row({std::to_string(p.id), std::to_string(p.topic),
             JoinWords(p.title_words)});
    }
  }
  {
    TsvWriter w(dir + "/events.tsv");
    if (!w.ok()) return Status::IoError("cannot write events.tsv");
    for (const Event& e : dataset.events) {
      w.Row({std::to_string(e.id), std::to_string(e.host_user),
             std::to_string(e.city), StrFormat("%.9g", e.x),
             StrFormat("%.9g", e.y), std::to_string(e.category),
             e.category_name, StrFormat("%.9g", e.create_day),
             StrFormat("%.9g", e.start_day), JoinDoubles(e.topics),
             JoinWords(e.title_words), JoinWords(e.body_words)});
    }
  }
  {
    TsvWriter w(dir + "/impressions.tsv");
    if (!w.ok()) return Status::IoError("cannot write impressions.tsv");
    auto dump = [&](const char* split, const std::vector<Impression>& v) {
      for (const Impression& i : v) {
        w.Row({split, std::to_string(i.user), std::to_string(i.event),
               std::to_string(i.day), i.label > 0.5f ? "1" : "0"});
      }
    };
    dump("rep_train", dataset.rep_train);
    dump("combiner_train", dataset.combiner_train);
    dump("eval", dataset.eval);
  }
  {
    TsvWriter w(dir + "/feedback.tsv");
    if (!w.ok()) return Status::IoError("cannot write feedback.tsv");
    for (size_t u = 0; u < dataset.feedback.user_joins.size(); ++u) {
      for (const FeedbackEdge& e : dataset.feedback.user_joins[u]) {
        w.Row({"join", std::to_string(u), std::to_string(e.counterpart),
               std::to_string(e.day)});
      }
    }
    for (size_t u = 0; u < dataset.feedback.user_interested.size(); ++u) {
      for (const FeedbackEdge& e : dataset.feedback.user_interested[u]) {
        w.Row({"interested", std::to_string(u),
               std::to_string(e.counterpart), std::to_string(e.day)});
      }
    }
  }
  return Status::Ok();
}

StatusOr<SimnetDataset> ImportDataset(const std::string& dir) {
  SimnetDataset dataset;

  auto users = ReadTsv(dir + "/users.tsv");
  if (!users.ok()) return users.status();
  for (const auto& row : *users) {
    if (row.size() != 9) return Status::Corruption("users.tsv field count");
    User u;
    u.id = std::atoi(row[0].c_str());
    u.city = std::atoi(row[1].c_str());
    u.age_bucket = std::atoi(row[2].c_str());
    u.gender = std::atoi(row[3].c_str());
    u.activity_bias = std::atof(row[4].c_str());
    u.interests = ParseDoubles(row[5]);
    u.friends = ParseInts(row[6]);
    u.pages = ParseInts(row[7]);
    u.profile_words = ParseWords(row[8]);
    dataset.world.users.push_back(std::move(u));
  }

  auto pages = ReadTsv(dir + "/pages.tsv");
  if (!pages.ok()) return pages.status();
  for (const auto& row : *pages) {
    if (row.size() != 3) return Status::Corruption("pages.tsv field count");
    Page p;
    p.id = std::atoi(row[0].c_str());
    p.topic = std::atoi(row[1].c_str());
    p.title_words = ParseWords(row[2]);
    dataset.world.pages.push_back(std::move(p));
  }

  auto events = ReadTsv(dir + "/events.tsv");
  if (!events.ok()) return events.status();
  for (const auto& row : *events) {
    if (row.size() != 12) {
      return Status::Corruption("events.tsv field count");
    }
    Event e;
    e.id = std::atoi(row[0].c_str());
    e.host_user = std::atoi(row[1].c_str());
    e.city = std::atoi(row[2].c_str());
    e.x = std::atof(row[3].c_str());
    e.y = std::atof(row[4].c_str());
    e.category = std::atoi(row[5].c_str());
    e.category_name = row[6];
    e.create_day = std::atof(row[7].c_str());
    e.start_day = std::atof(row[8].c_str());
    e.topics = ParseDoubles(row[9]);
    e.title_words = ParseWords(row[10]);
    e.body_words = ParseWords(row[11]);
    dataset.events.push_back(std::move(e));
  }

  auto impressions = ReadTsv(dir + "/impressions.tsv");
  if (!impressions.ok()) return impressions.status();
  for (const auto& row : *impressions) {
    if (row.size() != 5) {
      return Status::Corruption("impressions.tsv field count");
    }
    Impression imp;
    imp.user = std::atoi(row[1].c_str());
    imp.event = std::atoi(row[2].c_str());
    imp.day = std::atoi(row[3].c_str());
    imp.label = row[4] == "1" ? 1.0f : 0.0f;
    if (row[0] == "rep_train") {
      dataset.rep_train.push_back(imp);
    } else if (row[0] == "combiner_train") {
      dataset.combiner_train.push_back(imp);
    } else if (row[0] == "eval") {
      dataset.eval.push_back(imp);
    } else {
      return Status::Corruption("impressions.tsv unknown split " + row[0]);
    }
  }

  dataset.feedback.user_joins.resize(dataset.world.users.size());
  dataset.feedback.user_interested.resize(dataset.world.users.size());
  dataset.feedback.event_attendees.resize(dataset.events.size());
  dataset.feedback.event_interested.resize(dataset.events.size());
  auto feedback = ReadTsv(dir + "/feedback.tsv");
  if (!feedback.ok()) return feedback.status();
  for (const auto& row : *feedback) {
    if (row.size() != 4) {
      return Status::Corruption("feedback.tsv field count");
    }
    int user = std::atoi(row[1].c_str());
    int event = std::atoi(row[2].c_str());
    int day = std::atoi(row[3].c_str());
    if (user < 0 || user >= static_cast<int>(dataset.world.users.size()) ||
        event < 0 || event >= static_cast<int>(dataset.events.size())) {
      return Status::Corruption("feedback.tsv id out of range");
    }
    if (row[0] == "join") {
      dataset.feedback.user_joins[static_cast<size_t>(user)].push_back(
          {event, day});
      dataset.feedback.event_attendees[static_cast<size_t>(event)].push_back(
          {user, day});
    } else if (row[0] == "interested") {
      dataset.feedback.user_interested[static_cast<size_t>(user)].push_back(
          {event, day});
      dataset.feedback.event_interested[static_cast<size_t>(event)]
          .push_back({user, day});
    } else {
      return Status::Corruption("feedback.tsv unknown kind " + row[0]);
    }
  }

  // The export groups feedback by user; FeatureIndex requires each edge
  // list day-ascending. Restore the invariant.
  auto sort_edges = [](std::vector<std::vector<FeedbackEdge>>& lists) {
    for (auto& edges : lists) {
      std::stable_sort(edges.begin(), edges.end(),
                       [](const FeedbackEdge& a, const FeedbackEdge& b) {
                         return a.day < b.day;
                       });
    }
  };
  sort_edges(dataset.feedback.user_joins);
  sort_edges(dataset.feedback.user_interested);
  sort_edges(dataset.feedback.event_attendees);
  sort_edges(dataset.feedback.event_interested);

  // Recover derivable config fields.
  if (!dataset.world.users.empty()) {
    dataset.config.num_topics =
        static_cast<int>(dataset.world.users[0].interests.size());
  }
  dataset.config.num_users = static_cast<int>(dataset.world.users.size());
  dataset.config.num_events = static_cast<int>(dataset.events.size());
  dataset.config.num_pages = static_cast<int>(dataset.world.pages.size());
  int max_city = 0;
  for (const auto& u : dataset.world.users) {
    max_city = std::max(max_city, u.city);
  }
  dataset.config.num_cities = max_city + 1;
  int rep_end = 0, comb_end = 0, eval_end = 0;
  for (const auto& i : dataset.rep_train) rep_end = std::max(rep_end, i.day);
  for (const auto& i : dataset.combiner_train) {
    comb_end = std::max(comb_end, i.day);
  }
  for (const auto& i : dataset.eval) eval_end = std::max(eval_end, i.day);
  dataset.config.rep_train_days = rep_end + 1;
  dataset.config.combiner_train_days = comb_end + 1;
  dataset.config.num_days = eval_end + 1;

  // Topic names from event categories.
  dataset.topic_names.assign(static_cast<size_t>(dataset.config.num_topics),
                             "");
  for (const auto& e : dataset.events) {
    if (e.category >= 0 && e.category < dataset.config.num_topics) {
      dataset.topic_names[static_cast<size_t>(e.category)] = e.category_name;
    }
  }
  return dataset;
}

}  // namespace simnet
}  // namespace evrec
