// Chronological impression simulation. For each day, active users hold
// sessions in which candidate events (active that day, exposure biased
// toward the user's city) are shown; the ground-truth utility model decides
// participation. Friend-attendance and popularity terms are CAUSAL: they
// read the attendee sets as of the impression day, which the simulation
// itself populates as it advances.
//
// Besides joins, the simulation emits a weaker "interested" feedback type,
// giving the collaborative-filtering features the multi-signal structure
// the paper describes (§5.1).

#ifndef EVREC_SIMNET_IMPRESSION_GEN_H_
#define EVREC_SIMNET_IMPRESSION_GEN_H_

#include <vector>

#include "evrec/simnet/config.h"
#include "evrec/simnet/event_gen.h"
#include "evrec/simnet/social_graph.h"

namespace evrec {
namespace simnet {

struct FeedbackLogs {
  // Day-ascending edge lists (the generator runs chronologically).
  std::vector<std::vector<FeedbackEdge>> event_attendees;   // by event id
  std::vector<std::vector<FeedbackEdge>> user_joins;        // by user id
  std::vector<std::vector<FeedbackEdge>> user_interested;   // by user id
  std::vector<std::vector<FeedbackEdge>> event_interested;  // by event id
};

struct ImpressionLog {
  std::vector<Impression> impressions;  // chronological, NOT downsampled
  FeedbackLogs feedback;
  int raw_positives = 0;
};

ImpressionLog GenerateImpressions(const SimnetConfig& config,
                                  const SocialWorld& world,
                                  const std::vector<Event>& events, Rng& rng);

// Ground-truth participation probability for (user, event) given the
// current feedback state; exposed so tests can validate the label model
// and so oracle benches can compare against the learned models.
double ParticipationProbability(const SimnetConfig& config, const User& user,
                                const Event& event, int friends_attending,
                                int attendees_so_far, bool host_is_friend,
                                double noise);

// Keeps all positives and a random subset of negatives so that
// negatives ~= target_neg_per_pos * positives (paper §5.1: "approximately
// 1:4 positive to negative ratio").
std::vector<Impression> DownsampleNegatives(
    const std::vector<Impression>& impressions, double target_neg_per_pos,
    Rng& rng);

}  // namespace simnet
}  // namespace evrec

#endif  // EVREC_SIMNET_IMPRESSION_GEN_H_
