// Dataset interchange: exports the synthetic world and impression log to
// TSV files (one per entity type) and re-imports them. This is the seam a
// downstream user replaces to run the pipeline on their OWN event data:
// produce the same four files and load them with ImportDataset.
//
// Files written under <dir>/:
//   users.tsv        id, city, age, gender, activity, interests,
//                    friends, pages, profile_words
//   pages.tsv        id, topic, title_words
//   events.tsv       id, host, city, x, y, category, category_name,
//                    create_day, start_day, topics, title_words, body_words
//   impressions.tsv  split, user, event, day, label
//   feedback.tsv     kind(join|interested), user, event, day
//
// List-valued fields are space-separated inside one tab-separated column
// (words never contain whitespace after normalization).

#ifndef EVREC_SIMNET_DATASET_IO_H_
#define EVREC_SIMNET_DATASET_IO_H_

#include <string>

#include "evrec/simnet/generator.h"
#include "evrec/util/status.h"

namespace evrec {
namespace simnet {

// Writes all five files; `dir` must exist.
Status ExportDataset(const SimnetDataset& dataset, const std::string& dir);

// Reads them back. The returned dataset's `config` holds only the fields
// recoverable from the files (num_topics from topic vectors, the split
// days from the impression stream); generator-only knobs keep defaults.
StatusOr<SimnetDataset> ImportDataset(const std::string& dir);

}  // namespace simnet
}  // namespace evrec

#endif  // EVREC_SIMNET_DATASET_IO_H_
