#include "evrec/simnet/impression_gen.h"

#include <algorithm>
#include <cmath>

#include "evrec/util/check.h"
#include "evrec/util/math_util.h"

namespace evrec {
namespace simnet {

double ParticipationProbability(const SimnetConfig& config, const User& user,
                                const Event& event, int friends_attending,
                                int attendees_so_far, bool host_is_friend,
                                double noise) {
  double topic = InterestSimilarity(user.interests, event.topics);
  double dist = EuclideanDistance2D(user.x, user.y, event.x, event.y);
  double u = config.w_topic * topic +
             config.w_friend * std::log1p(friends_attending) -
             config.w_dist * std::min(dist, config.dist_cap) +
             config.w_pop * std::log1p(attendees_so_far) +
             (host_is_friend ? config.w_host : 0.0) + user.activity_bias +
             noise;
  return Sigmoid(config.utility_scale * u + config.bias);
}

ImpressionLog GenerateImpressions(const SimnetConfig& config,
                                  const SocialWorld& world,
                                  const std::vector<Event>& events,
                                  Rng& rng) {
  ImpressionLog log;
  log.feedback.event_attendees.resize(events.size());
  log.feedback.event_interested.resize(events.size());
  log.feedback.user_joins.resize(world.users.size());
  log.feedback.user_interested.resize(world.users.size());

  std::vector<std::vector<int>> active =
      ActiveEventsByDay(events, config.num_days);

  // Friendship lists are sorted, so membership is a binary search.
  auto friends_with = [&](const User& u, int other) {
    return std::binary_search(u.friends.begin(), u.friends.end(), other);
  };

  std::vector<double> weights;
  for (int day = 0; day < config.num_days; ++day) {
    const std::vector<int>& todays = active[static_cast<size_t>(day)];
    if (todays.empty()) continue;

    // Exposure weights per event are user-city dependent; precompute the
    // city-independent part (popularity).
    for (const User& user : world.users) {
      double session_p =
          config.session_prob * Sigmoid(user.activity_bias + 0.5) * 2.0;
      if (!rng.Bernoulli(std::min(session_p, 0.95))) continue;

      weights.clear();
      weights.reserve(todays.size());
      for (int eid : todays) {
        const Event& e = events[static_cast<size_t>(eid)];
        double w = 1.0;
        if (e.city == user.city) w += config.same_city_exposure_boost;
        w += 0.2 * std::log1p(static_cast<double>(
                 log.feedback.event_attendees[static_cast<size_t>(eid)]
                     .size()));
        weights.push_back(w);
      }

      for (int k = 0; k < config.impressions_per_session; ++k) {
        int pick = rng.Categorical(weights);
        int eid = todays[static_cast<size_t>(pick)];
        const Event& event = events[static_cast<size_t>(eid)];

        // Skip if the user already joined this event.
        bool already = false;
        for (const FeedbackEdge& fe :
             log.feedback.user_joins[static_cast<size_t>(user.id)]) {
          if (fe.counterpart == eid) {
            already = true;
            break;
          }
        }
        if (already) continue;

        const auto& attendees =
            log.feedback.event_attendees[static_cast<size_t>(eid)];
        int friends_attending = 0;
        for (const FeedbackEdge& fe : attendees) {
          if (friends_with(user, fe.counterpart)) ++friends_attending;
        }
        bool host_is_friend = friends_with(user, event.host_user);

        double p = ParticipationProbability(
            config, user, event, friends_attending,
            static_cast<int>(attendees.size()), host_is_friend,
            rng.Normal(0.0, config.noise_std));
        bool join = rng.Bernoulli(p);

        Impression imp;
        imp.user = user.id;
        imp.event = eid;
        imp.day = day;
        imp.label = join ? 1.0f : 0.0f;
        log.impressions.push_back(imp);

        if (join) {
          ++log.raw_positives;
          log.feedback.event_attendees[static_cast<size_t>(eid)].push_back(
              {user.id, day});
          log.feedback.user_joins[static_cast<size_t>(user.id)].push_back(
              {eid, day});
        } else if (rng.Bernoulli(config.interested_scale * p)) {
          log.feedback.event_interested[static_cast<size_t>(eid)].push_back(
              {user.id, day});
          log.feedback.user_interested[static_cast<size_t>(user.id)]
              .push_back({eid, day});
        }
      }
    }
  }
  return log;
}

std::vector<Impression> DownsampleNegatives(
    const std::vector<Impression>& impressions, double target_neg_per_pos,
    Rng& rng) {
  size_t positives = 0;
  for (const Impression& i : impressions) {
    if (i.label > 0.5f) ++positives;
  }
  size_t negatives = impressions.size() - positives;
  double keep = 1.0;
  if (negatives > 0 && positives > 0) {
    keep = std::min(1.0, target_neg_per_pos * static_cast<double>(positives) /
                             static_cast<double>(negatives));
  }
  std::vector<Impression> out;
  out.reserve(impressions.size());
  for (const Impression& i : impressions) {
    if (i.label > 0.5f || rng.Bernoulli(keep)) out.push_back(i);
  }
  return out;
}

}  // namespace simnet
}  // namespace evrec
