// Synthetic language with topic-specific morphology.
//
// Words are built from consonant-vowel syllables. Each topic owns a pool of
// characteristic syllables; a shared common pool provides stop-word-like
// noise. Event-side and user-side word inventories are drawn INDEPENDENTLY
// from the same per-topic syllable pools: "jarestor" (event side) and
// "torjari" (user side) share topic morphemes without sharing word ids.
// This reproduces the paper's observation that user text "has very
// different text distribution than that of events", which defeats
// word-level topic models but is bridgeable by letter-trigram CNNs.

#ifndef EVREC_SIMNET_WORD_FACTORY_H_
#define EVREC_SIMNET_WORD_FACTORY_H_

#include <string>
#include <vector>

#include "evrec/simnet/config.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace simnet {

class TopicLanguage {
 public:
  // Builds the full word inventory deterministically from `rng`.
  TopicLanguage(const SimnetConfig& config, Rng& rng);

  int num_topics() const {
    return static_cast<int>(event_words_.size());
  }

  const std::vector<std::string>& EventWords(int topic) const {
    return event_words_[static_cast<size_t>(topic)];
  }
  const std::vector<std::string>& UserWords(int topic) const {
    return user_words_[static_cast<size_t>(topic)];
  }
  const std::vector<std::string>& CommonWords() const {
    return common_words_;
  }

  // Human-readable topic label (doubles as the event "category" string).
  const std::string& TopicName(int topic) const {
    return topic_names_[static_cast<size_t>(topic)];
  }

  // Samples a document of `length` words from a topic mixture. Each word:
  // with probability common_word_fraction a common word, otherwise a word
  // of a topic drawn from `mixture`, from the event or user inventory.
  std::vector<std::string> SampleDocument(const std::vector<double>& mixture,
                                          int length, bool event_side,
                                          double common_word_fraction,
                                          Rng& rng) const;

 private:
  std::string MakeWord(const std::vector<std::string>& syllable_pool,
                       Rng& rng) const;

  std::vector<std::vector<std::string>> topic_syllables_;
  std::vector<std::string> common_syllables_;
  std::vector<std::vector<std::string>> event_words_;  // [topic][i]
  std::vector<std::vector<std::string>> user_words_;   // [topic][i]
  std::vector<std::string> common_words_;
  std::vector<std::string> topic_names_;
};

}  // namespace simnet
}  // namespace evrec

#endif  // EVREC_SIMNET_WORD_FACTORY_H_
