#include "evrec/simnet/generator.h"

#include <unordered_set>

#include "evrec/simnet/docs.h"
#include "evrec/util/logging.h"

namespace evrec {
namespace simnet {

SimnetDataset GenerateDataset(const SimnetConfig& config) {
  Rng master(config.seed, /*stream=*/3);
  Rng lang_rng = master.Fork(1);
  Rng world_rng = master.Fork(2);
  Rng event_rng = master.Fork(3);
  Rng impression_rng = master.Fork(4);
  Rng sample_rng = master.Fork(5);

  SimnetDataset dataset;
  dataset.config = config;

  TopicLanguage language(config, lang_rng);
  dataset.topic_names.reserve(static_cast<size_t>(config.num_topics));
  for (int k = 0; k < config.num_topics; ++k) {
    dataset.topic_names.push_back(language.TopicName(k));
  }

  dataset.world = GenerateSocialWorld(config, language, world_rng);
  dataset.events =
      GenerateEvents(config, language, dataset.world, event_rng);

  ImpressionLog log =
      GenerateImpressions(config, dataset.world, dataset.events,
                          impression_rng);
  dataset.raw_impressions = static_cast<int>(log.impressions.size());
  dataset.raw_positives = log.raw_positives;
  dataset.feedback = std::move(log.feedback);

  std::vector<Impression> sampled = DownsampleNegatives(
      log.impressions, config.target_neg_per_pos, sample_rng);

  for (const Impression& imp : sampled) {
    if (imp.day < config.rep_train_days) {
      dataset.rep_train.push_back(imp);
    } else if (imp.day < config.combiner_train_days) {
      dataset.combiner_train.push_back(imp);
    } else {
      dataset.eval.push_back(imp);
    }
  }

  EVREC_LOG(INFO) << "simnet: " << dataset.raw_impressions
                  << " raw impressions, " << dataset.raw_positives
                  << " positives; splits rep=" << dataset.rep_train.size()
                  << " combiner=" << dataset.combiner_train.size()
                  << " eval=" << dataset.eval.size()
                  << " cold_start_frac=" << ColdStartEventFraction(dataset);
  return dataset;
}

double ColdStartEventFraction(const SimnetDataset& dataset) {
  std::unordered_set<int> train_events;
  for (const Impression& i : dataset.rep_train) train_events.insert(i.event);
  std::unordered_set<int> eval_events;
  for (const Impression& i : dataset.eval) eval_events.insert(i.event);
  if (eval_events.empty()) return 0.0;
  int cold = 0;
  for (int e : eval_events) {
    if (train_events.count(e) == 0) ++cold;
  }
  return static_cast<double>(cold) /
         static_cast<double>(eval_events.size());
}

}  // namespace simnet
}  // namespace evrec
