#include "evrec/simnet/social_graph.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "evrec/util/check.h"
#include "evrec/util/math_util.h"

namespace evrec {
namespace simnet {

void CityCenter(int city, int num_cities, double* x, double* y) {
  int grid = static_cast<int>(std::ceil(std::sqrt(
      static_cast<double>(num_cities))));
  if (grid < 1) grid = 1;
  *x = static_cast<double>(city % grid) * 2.0;
  *y = static_cast<double>(city / grid) * 2.0;
}

double InterestSimilarity(const std::vector<double>& a,
                          const std::vector<double>& b) {
  EVREC_CHECK_EQ(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na < 1e-18 || nb < 1e-18) return 0.0;
  return dot / std::sqrt(na * nb);
}

SocialWorld GenerateSocialWorld(const SimnetConfig& config,
                                const TopicLanguage& language, Rng& rng) {
  SocialWorld world;

  // Pages: each page promotes one topic; its title uses USER-side words
  // (pages are long-lived profile products, not events).
  world.pages.reserve(static_cast<size_t>(config.num_pages));
  for (int p = 0; p < config.num_pages; ++p) {
    Page page;
    page.id = p;
    page.topic = p % config.num_topics;
    std::vector<double> mixture(static_cast<size_t>(config.num_topics), 0.0);
    mixture[static_cast<size_t>(page.topic)] = 1.0;
    int len = rng.UniformInt(config.page_title_words_min,
                             config.page_title_words_max);
    page.title_words = language.SampleDocument(mixture, len,
                                               /*event_side=*/false,
                                               /*common=*/0.1, rng);
    world.pages.push_back(std::move(page));
  }

  // Group pages by topic for preference-driven subscription sampling.
  std::vector<std::vector<int>> pages_by_topic(
      static_cast<size_t>(config.num_topics));
  for (const Page& p : world.pages) {
    pages_by_topic[static_cast<size_t>(p.topic)].push_back(p.id);
  }

  // Users.
  world.users.reserve(static_cast<size_t>(config.num_users));
  for (int u = 0; u < config.num_users; ++u) {
    User user;
    user.id = u;
    user.city = rng.UniformInt(0, config.num_cities - 1);
    CityCenter(user.city, config.num_cities, &user.x, &user.y);
    user.x += rng.Normal(0.0, 0.3);
    user.y += rng.Normal(0.0, 0.3);
    user.age_bucket = rng.UniformInt(0, 5);
    user.gender = rng.UniformInt(0, 2);
    user.interests = rng.Dirichlet(config.interest_alpha, config.num_topics);
    user.activity_bias = rng.Normal(0.0, config.activity_std);

    // Page subscriptions follow interests.
    int num_pages = rng.UniformInt(config.min_pages, config.max_pages);
    std::unordered_set<int> chosen;
    for (int i = 0; i < num_pages; ++i) {
      int topic = rng.Categorical(user.interests);
      const auto& pool = pages_by_topic[static_cast<size_t>(topic)];
      if (pool.empty()) continue;
      int page = pool[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(pool.size()) - 1))];
      if (chosen.insert(page).second) user.pages.push_back(page);
    }

    // Profile keywords from the user-side vocabulary.
    int len =
        rng.UniformInt(config.profile_words_min, config.profile_words_max);
    user.profile_words = language.SampleDocument(
        user.interests, len, /*event_side=*/false,
        config.common_word_fraction, rng);

    world.users.push_back(std::move(user));
  }

  // Friendship: homophily on city and interests. For each user draw
  // candidate partners and accept with probability increasing in
  // similarity; edges are symmetric and deduplicated.
  const int n = config.num_users;
  std::vector<std::unordered_set<int>> adjacency(static_cast<size_t>(n));
  int target_edges =
      static_cast<int>(config.mean_friends * n / 2.0);
  int attempts = 0;
  int max_attempts = target_edges * 30;
  int edges = 0;
  while (edges < target_edges && attempts < max_attempts) {
    ++attempts;
    int a = rng.UniformInt(0, n - 1);
    int b = rng.UniformInt(0, n - 1);
    if (a == b) continue;
    if (adjacency[static_cast<size_t>(a)].count(b) != 0) continue;
    const User& ua = world.users[static_cast<size_t>(a)];
    const User& ub = world.users[static_cast<size_t>(b)];
    double p = 0.05;
    if (ua.city == ub.city) p += 0.45;
    p += 0.5 * InterestSimilarity(ua.interests, ub.interests);
    if (!rng.Bernoulli(std::min(p, 0.95))) continue;
    adjacency[static_cast<size_t>(a)].insert(b);
    adjacency[static_cast<size_t>(b)].insert(a);
    ++edges;
  }
  for (int u = 0; u < n; ++u) {
    auto& user = world.users[static_cast<size_t>(u)];
    user.friends.assign(adjacency[static_cast<size_t>(u)].begin(),
                        adjacency[static_cast<size_t>(u)].end());
    std::sort(user.friends.begin(), user.friends.end());
  }
  return world;
}

}  // namespace simnet
}  // namespace evrec
