// Configuration of the synthetic social-network substrate.
//
// The generator manufactures the four structural properties the paper's
// production data exhibits (DESIGN.md §2):
//   1. event transiency — events live [creation, start] with 1-14 day
//      lifespans, so the evaluation week is dominated by events unseen
//      during representation training (the cold-start condition);
//   2. sparse per-user history — participation is a low-rate event;
//   3. heterogeneous user data — the participation signal is expressed
//      through profile text, page subscriptions (categorical ids + titles),
//      demographics, and geography, not through event feedback;
//   4. user-text/event-text distribution mismatch — user and event
//      documents draw from DISJOINT word inventories that share topic-
//      specific morphology (syllables), so letter-trigram models can bridge
//      the domains while word-level bag-of-words models cannot.

#ifndef EVREC_SIMNET_CONFIG_H_
#define EVREC_SIMNET_CONFIG_H_

#include <cstdint>

namespace evrec {
namespace simnet {

struct SimnetConfig {
  uint64_t seed = 42;

  // World size.
  int num_topics = 16;
  int num_cities = 12;
  int num_users = 3000;
  int num_pages = 400;
  int num_events = 2400;

  // Timeline (paper §5.1: 6 weeks = 4 rep-train + 1 combiner + 1 eval).
  int num_days = 42;
  int rep_train_days = 28;      // impressions with day < this
  int combiner_train_days = 35; // day in [rep_train_days, this)

  // Synthetic language morphology.
  int syllables_per_topic = 7;
  int common_syllables = 24;
  int event_words_per_topic = 30;
  int user_words_per_topic = 30;
  int num_common_words = 48;

  // Users.
  double interest_alpha = 0.25;   // Dirichlet sparsity of topic interests
  double mean_friends = 14.0;
  int min_pages = 6, max_pages = 14;
  int profile_words_min = 20, profile_words_max = 40;
  double activity_std = 0.5;     // spread of per-user activity bias

  // Pages.
  int page_title_words_min = 2, page_title_words_max = 5;

  // Events.
  double lifespan_min_days = 1.0, lifespan_max_days = 14.0;
  // Event topic mixture: dominant_topic_weight * onehot(topic drawn from
  // the host's interests) + remainder * Dirichlet(event_topic_alpha).
  double dominant_topic_weight = 0.7;
  double event_topic_alpha = 0.15;
  int title_words_min = 3, title_words_max = 7;
  int body_words_min = 15, body_words_max = 60;
  double common_word_fraction = 0.15;  // stop-word noise in documents

  // Impression process.
  double session_prob = 0.35;        // per user-day, scaled by activity
  int impressions_per_session = 2;
  double same_city_exposure_boost = 3.0;

  // Ground-truth participation utility:
  //   u = w_topic*cos(interests, event_topics) + w_friend*log1p(#friends
  //       attending) + w_dist*(-min(city_distance, dist_cap)) +
  //       w_pop*log1p(#attendees) + w_host*[host is friend] +
  //       activity_bias + N(0, noise_std)
  //   P(join) = sigmoid(utility_scale * u + bias)
  double w_topic = 8.0;
  double w_friend = 1.2;
  double w_dist = 0.8;
  double w_pop = 0.25;
  double w_host = 0.8;
  double dist_cap = 3.0;
  double utility_scale = 1.0;
  double bias = -5.2;
  double noise_std = 0.6;

  // Secondary feedback: P(interested | not joined) = this * P(join).
  double interested_scale = 0.6;

  // Negative downsampling (paper: ~1:4 positives to negatives).
  double target_neg_per_pos = 4.0;
};

// A reduced world for unit tests (fast to generate).
inline SimnetConfig TinySimnetConfig() {
  SimnetConfig c;
  c.num_topics = 6;
  c.num_cities = 4;
  c.num_users = 200;
  c.num_pages = 40;
  c.num_events = 160;
  c.event_words_per_topic = 20;
  c.user_words_per_topic = 20;
  c.num_common_words = 16;
  return c;
}

}  // namespace simnet
}  // namespace evrec

#endif  // EVREC_SIMNET_CONFIG_H_
