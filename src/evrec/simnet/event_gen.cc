#include "evrec/simnet/event_gen.h"

#include <algorithm>
#include <cmath>

#include "evrec/util/check.h"

namespace evrec {
namespace simnet {

std::vector<Event> GenerateEvents(const SimnetConfig& config,
                                  const TopicLanguage& language,
                                  const SocialWorld& world, Rng& rng) {
  EVREC_CHECK(!world.users.empty());
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(config.num_events));

  for (int e = 0; e < config.num_events; ++e) {
    Event ev;
    ev.id = e;
    ev.host_user = rng.UniformInt(
        0, static_cast<int>(world.users.size()) - 1);
    const User& host = world.users[static_cast<size_t>(ev.host_user)];
    ev.city = host.city;
    CityCenter(ev.city, config.num_cities, &ev.x, &ev.y);
    ev.x += rng.Normal(0.0, 0.3);
    ev.y += rng.Normal(0.0, 0.3);

    // Topic mixture: one dominant topic drawn from the host's interests
    // (hosts organize what they care about) plus a sparse Dirichlet tail.
    int dominant = rng.Categorical(host.interests);
    std::vector<double> tail =
        rng.Dirichlet(config.event_topic_alpha, config.num_topics);
    ev.topics.resize(static_cast<size_t>(config.num_topics));
    for (int k = 0; k < config.num_topics; ++k) {
      ev.topics[static_cast<size_t>(k)] =
          (1.0 - config.dominant_topic_weight) *
          tail[static_cast<size_t>(k)];
    }
    ev.topics[static_cast<size_t>(dominant)] +=
        config.dominant_topic_weight;
    ev.category = static_cast<int>(
        std::max_element(ev.topics.begin(), ev.topics.end()) -
        ev.topics.begin());
    ev.category_name = language.TopicName(ev.category);

    // Transient lifespan: creation uniform over the horizon, start a short
    // lifespan later. Events may start past the horizon's end (still
    // active/visible during the tail of the evaluation week).
    ev.create_day = rng.Uniform(0.0, static_cast<double>(config.num_days));
    ev.start_day = ev.create_day + rng.Uniform(config.lifespan_min_days,
                                               config.lifespan_max_days);

    int title_len =
        rng.UniformInt(config.title_words_min, config.title_words_max);
    int body_len =
        rng.UniformInt(config.body_words_min, config.body_words_max);
    // Titles carry less noise than bodies.
    ev.title_words = language.SampleDocument(ev.topics, title_len,
                                             /*event_side=*/true,
                                             /*common=*/0.1, rng);
    ev.body_words = language.SampleDocument(ev.topics, body_len,
                                            /*event_side=*/true,
                                            config.common_word_fraction, rng);
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<std::vector<int>> ActiveEventsByDay(
    const std::vector<Event>& events, int num_days) {
  std::vector<std::vector<int>> active(static_cast<size_t>(num_days));
  for (const Event& e : events) {
    int first = std::max(0, static_cast<int>(std::ceil(e.create_day)));
    int last = std::min(num_days - 1,
                        static_cast<int>(std::floor(e.start_day)));
    for (int d = first; d <= last; ++d) {
      active[static_cast<size_t>(d)].push_back(e.id);
    }
  }
  return active;
}

}  // namespace simnet
}  // namespace evrec
