// Top-level dataset generation: builds the synthetic world, runs the
// impression simulation, downsamples negatives, and produces the paper's
// date-based three-way split (§5.1): 4 weeks of impressions for
// representation model training, 1 week for combiner training, 1 week for
// evaluation — "disjoint in time ... consistent with the actual production
// system deployment behavior".

#ifndef EVREC_SIMNET_GENERATOR_H_
#define EVREC_SIMNET_GENERATOR_H_

#include <string>
#include <vector>

#include "evrec/simnet/config.h"
#include "evrec/simnet/impression_gen.h"

namespace evrec {
namespace simnet {

struct SimnetDataset {
  SimnetConfig config;
  SocialWorld world;
  std::vector<Event> events;
  std::vector<std::string> topic_names;
  FeedbackLogs feedback;  // full (pre-downsampling) behavioral logs

  // Downsampled, chronological, time-disjoint impression splits.
  std::vector<Impression> rep_train;
  std::vector<Impression> combiner_train;
  std::vector<Impression> eval;

  // Generation statistics.
  int raw_impressions = 0;
  int raw_positives = 0;

  int num_users() const { return static_cast<int>(world.users.size()); }
  int num_events() const { return static_cast<int>(events.size()); }
};

SimnetDataset GenerateDataset(const SimnetConfig& config);

// Fraction of events appearing in `eval` that never appear in `rep_train`
// (the transiency/cold-start measure motivating the paper).
double ColdStartEventFraction(const SimnetDataset& dataset);

}  // namespace simnet
}  // namespace evrec

#endif  // EVREC_SIMNET_GENERATOR_H_
