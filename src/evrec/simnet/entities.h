// Entity records produced by the synthetic social-network generator.

#ifndef EVREC_SIMNET_ENTITIES_H_
#define EVREC_SIMNET_ENTITIES_H_

#include <string>
#include <vector>

namespace evrec {
namespace simnet {

struct Page {
  int id = 0;
  int topic = 0;
  std::vector<std::string> title_words;
};

struct User {
  int id = 0;
  int city = 0;
  double x = 0.0, y = 0.0;            // location (city grid + jitter)
  int age_bucket = 0;                 // 0..5
  int gender = 0;                     // 0..2
  std::vector<double> interests;      // topic mixture (sums to 1)
  double activity_bias = 0.0;         // per-user participation propensity
  std::vector<int> friends;           // user ids (symmetric)
  std::vector<int> pages;             // subscribed page ids
  std::vector<std::string> profile_words;  // self/auto keywords & topics
};

struct Event {
  int id = 0;
  int host_user = 0;
  int city = 0;
  double x = 0.0, y = 0.0;
  std::vector<double> topics;         // topic mixture
  int category = 0;                   // argmax topic
  std::string category_name;         // topic label used as category text
  double create_day = 0.0;            // fractional day since t0
  double start_day = 0.0;             // event time; active while
                                      // create_day <= d <= start_day
  std::vector<std::string> title_words;
  std::vector<std::string> body_words;
};

// One event shown to one user (paper §5.1: "Each data instance ... is an
// impression of an event shown to a user").
struct Impression {
  int user = 0;
  int event = 0;
  int day = 0;
  float label = 0.0f;  // 1 = participation achieved from the impression
};

// Timestamped feedback edge used by the CF features.
struct FeedbackEdge {
  int counterpart;  // event id (from a user) or user id (from an event)
  int day;
};

}  // namespace simnet
}  // namespace evrec

#endif  // EVREC_SIMNET_ENTITIES_H_
