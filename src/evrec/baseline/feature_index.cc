#include "evrec/baseline/feature_index.h"

#include <algorithm>

#include "evrec/util/check.h"

namespace evrec {
namespace baseline {

namespace {

// Edges are stored day-ascending; count the prefix with day < before_day.
int CountBefore(const std::vector<simnet::FeedbackEdge>& edges,
                int before_day) {
  auto it = std::lower_bound(
      edges.begin(), edges.end(), before_day,
      [](const simnet::FeedbackEdge& e, int day) { return e.day < day; });
  return static_cast<int>(it - edges.begin());
}

std::vector<int> CounterpartsBefore(
    const std::vector<simnet::FeedbackEdge>& edges, int before_day) {
  std::vector<int> out;
  for (const auto& e : edges) {
    if (e.day >= before_day) break;
    out.push_back(e.counterpart);
  }
  return out;
}

}  // namespace

FeatureIndex::FeatureIndex(const simnet::SimnetDataset& dataset)
    : dataset_(&dataset) {
  hosted_events_.resize(dataset.world.users.size());
  for (const simnet::Event& e : dataset.events) {
    hosted_events_[static_cast<size_t>(e.host_user)].push_back(e.id);
  }
}

bool FeatureIndex::AreFriends(int user_a, int user_b) const {
  const auto& friends =
      dataset_->world.users[static_cast<size_t>(user_a)].friends;
  return std::binary_search(friends.begin(), friends.end(), user_b);
}

int FeatureIndex::AttendeesBefore(int event, int before_day) const {
  return CountBefore(
      dataset_->feedback.event_attendees[static_cast<size_t>(event)],
      before_day);
}

int FeatureIndex::InterestedBefore(int event, int before_day) const {
  return CountBefore(
      dataset_->feedback.event_interested[static_cast<size_t>(event)],
      before_day);
}

int FeatureIndex::FriendsAttendingBefore(int user, int event,
                                         int before_day) const {
  const auto& attendees =
      dataset_->feedback.event_attendees[static_cast<size_t>(event)];
  int count = 0;
  for (const auto& e : attendees) {
    if (e.day >= before_day) break;
    if (AreFriends(user, e.counterpart)) ++count;
  }
  return count;
}

int FeatureIndex::UserJoinCountBefore(int user, int before_day) const {
  return CountBefore(
      dataset_->feedback.user_joins[static_cast<size_t>(user)], before_day);
}

int FeatureIndex::UserInterestedCountBefore(int user, int before_day) const {
  return CountBefore(
      dataset_->feedback.user_interested[static_cast<size_t>(user)],
      before_day);
}

std::vector<int> FeatureIndex::UserJoinedEventsBefore(int user,
                                                      int before_day) const {
  return CounterpartsBefore(
      dataset_->feedback.user_joins[static_cast<size_t>(user)], before_day);
}

std::vector<int> FeatureIndex::UserInterestedEventsBefore(
    int user, int before_day) const {
  return CounterpartsBefore(
      dataset_->feedback.user_interested[static_cast<size_t>(user)],
      before_day);
}

std::vector<int> FeatureIndex::EventAttendeesBefore(int event,
                                                    int before_day) const {
  return CounterpartsBefore(
      dataset_->feedback.event_attendees[static_cast<size_t>(event)],
      before_day);
}

double FeatureIndex::CategoryAffinityBefore(int user, int category,
                                            int before_day) const {
  std::vector<int> joined = UserJoinedEventsBefore(user, before_day);
  if (joined.empty()) return 0.0;
  int matches = 0;
  for (int e : joined) {
    if (dataset_->events[static_cast<size_t>(e)].category == category) {
      ++matches;
    }
  }
  return static_cast<double>(matches) / static_cast<double>(joined.size());
}

int FeatureIndex::HostPriorAttendanceBefore(int host, int before_day) const {
  int total = 0;
  for (int e : hosted_events_[static_cast<size_t>(host)]) {
    total += AttendeesBefore(e, before_day);
  }
  return total;
}

}  // namespace baseline
}  // namespace evrec
