// Collaborative-filtering feature set (the "CF Features" of Table 2):
// similarity propagation over multiple feedback types (join, interested)
// and social/page connections, as described in §5.1 ("multiple
// collaborative filtering features based on different types of user
// feedback ... and social connections").
//
// All scores are causal (day cutoff) and — by construction — collapse to
// zero for cold events with no prior feedback, which is the paper's core
// argument for why CF underperforms representation features under event
// transiency.

#ifndef EVREC_BASELINE_CF_FEATURES_H_
#define EVREC_BASELINE_CF_FEATURES_H_

#include <string>
#include <vector>

#include "evrec/baseline/feature_index.h"

namespace evrec {
namespace baseline {

class CfFeatureExtractor {
 public:
  explicit CfFeatureExtractor(const FeatureIndex& index) : index_(&index) {}

  static const std::vector<std::string>& FeatureNames();
  static int NumFeatures();

  void Extract(int user, int event, int day, std::vector<float>* out) const;

 private:
  const FeatureIndex* index_;
};

// Jaccard similarity of two id sets given as sorted vectors.
double JaccardSorted(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace baseline
}  // namespace evrec

#endif  // EVREC_BASELINE_CF_FEATURES_H_
