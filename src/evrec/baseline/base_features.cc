#include "evrec/baseline/base_features.h"

#include <cmath>

#include "evrec/util/math_util.h"

namespace evrec {
namespace baseline {

const std::vector<std::string>& BaseFeatureExtractor::FeatureNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "distance",
      "same_city",
      "friends_attending_log",
      "host_is_friend",
      "event_popularity_log",
      "event_interested_log",
      "event_age_days",
      "days_until_start",
      "event_dow",
      "impression_dow",
      "title_length",
      "body_length",
      "user_join_count_log",
      "user_interested_count_log",
      "user_age_bucket",
      "user_gender",
      "user_num_pages",
      "user_num_friends_log",
      "category_affinity",
      "category_seen_before",
      "host_prior_attendance_log",
  };
  return *names;
}

int BaseFeatureExtractor::NumFeatures() {
  return static_cast<int>(FeatureNames().size());
}

void BaseFeatureExtractor::Extract(int user, int event, int day,
                                   std::vector<float>* out) const {
  const auto& ds = index_->dataset();
  const simnet::User& u = ds.world.users[static_cast<size_t>(user)];
  const simnet::Event& e = ds.events[static_cast<size_t>(event)];

  double dist = EuclideanDistance2D(u.x, u.y, e.x, e.y);
  double affinity = index_->CategoryAffinityBefore(user, e.category, day);

  out->push_back(static_cast<float>(dist));
  out->push_back(u.city == e.city ? 1.0f : 0.0f);
  out->push_back(static_cast<float>(
      std::log1p(index_->FriendsAttendingBefore(user, event, day))));
  out->push_back(index_->AreFriends(user, e.host_user) ? 1.0f : 0.0f);
  out->push_back(static_cast<float>(
      std::log1p(index_->AttendeesBefore(event, day))));
  out->push_back(static_cast<float>(
      std::log1p(index_->InterestedBefore(event, day))));
  out->push_back(static_cast<float>(day - e.create_day));
  out->push_back(static_cast<float>(e.start_day - day));
  out->push_back(static_cast<float>(
      static_cast<int>(e.start_day) % 7));
  out->push_back(static_cast<float>(day % 7));
  out->push_back(static_cast<float>(e.title_words.size()));
  out->push_back(static_cast<float>(e.body_words.size()));
  out->push_back(static_cast<float>(
      std::log1p(index_->UserJoinCountBefore(user, day))));
  out->push_back(static_cast<float>(
      std::log1p(index_->UserInterestedCountBefore(user, day))));
  out->push_back(static_cast<float>(u.age_bucket));
  out->push_back(static_cast<float>(u.gender));
  out->push_back(static_cast<float>(u.pages.size()));
  out->push_back(static_cast<float>(std::log1p(u.friends.size())));
  out->push_back(static_cast<float>(affinity));
  out->push_back(affinity > 0.0 ? 1.0f : 0.0f);
  out->push_back(static_cast<float>(
      std::log1p(index_->HostPriorAttendanceBefore(e.host_user, day))));
}

}  // namespace baseline
}  // namespace evrec
