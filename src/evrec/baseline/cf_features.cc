#include "evrec/baseline/cf_features.h"

#include <algorithm>
#include <cmath>

namespace evrec {
namespace baseline {

double JaccardSorted(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.empty() || b.empty()) return 0.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

const std::vector<std::string>& CfFeatureExtractor::FeatureNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "uucf_join_score",       // sum over attendees of join-set Jaccard
      "uucf_interested_score", // same over interested-sets
      "iicf_max_sim",          // max attendee-overlap with past joins
      "iicf_mean_sim",
      "social_second_degree",  // friends-of-friends attending (log)
      "page_overlap_attendees",// attendees sharing a subscribed page
      "cf_support",            // log1p(#attendees): how much CF evidence
  };
  return *names;
}

int CfFeatureExtractor::NumFeatures() {
  return static_cast<int>(FeatureNames().size());
}

void CfFeatureExtractor::Extract(int user, int event, int day,
                                 std::vector<float>* out) const {
  const auto& ds = index_->dataset();
  const simnet::User& u = ds.world.users[static_cast<size_t>(user)];

  std::vector<int> my_joins = index_->UserJoinedEventsBefore(user, day);
  std::vector<int> my_interested =
      index_->UserInterestedEventsBefore(user, day);
  std::sort(my_joins.begin(), my_joins.end());
  std::sort(my_interested.begin(), my_interested.end());

  std::vector<int> attendees = index_->EventAttendeesBefore(event, day);

  // User-user CF: accumulate similarity between this user and each user
  // who already joined the event, over two feedback types.
  double uu_join = 0.0, uu_interested = 0.0;
  for (int v : attendees) {
    std::vector<int> their_joins = index_->UserJoinedEventsBefore(v, day);
    std::sort(their_joins.begin(), their_joins.end());
    uu_join += JaccardSorted(my_joins, their_joins);
    std::vector<int> their_interested =
        index_->UserInterestedEventsBefore(v, day);
    std::sort(their_interested.begin(), their_interested.end());
    uu_interested += JaccardSorted(my_interested, their_interested);
  }

  // Item-item CF: similarity between this event and events the user
  // joined, measured by attendee overlap.
  std::vector<int> this_attendees = attendees;
  std::sort(this_attendees.begin(), this_attendees.end());
  double ii_max = 0.0, ii_sum = 0.0;
  for (int e : my_joins) {
    std::vector<int> other = index_->EventAttendeesBefore(e, day);
    std::sort(other.begin(), other.end());
    double s = JaccardSorted(this_attendees, other);
    ii_max = std::max(ii_max, s);
    ii_sum += s;
  }
  double ii_mean =
      my_joins.empty() ? 0.0 : ii_sum / static_cast<double>(my_joins.size());

  // Social propagation: second-degree friends among attendees.
  int second_degree = 0;
  for (int v : attendees) {
    if (index_->AreFriends(user, v)) continue;  // first degree is a base feat
    const auto& vf = ds.world.users[static_cast<size_t>(v)].friends;
    // Does v share a friend with u? (sorted intersection, early exit)
    size_t i = 0, j = 0;
    const auto& uf = u.friends;
    bool shared = false;
    while (i < uf.size() && j < vf.size()) {
      if (uf[i] == vf[j]) {
        shared = true;
        break;
      }
      if (uf[i] < vf[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    if (shared) ++second_degree;
  }

  // Page-connection CF: attendees subscribed to a page the user follows.
  std::vector<int> my_pages = u.pages;
  std::sort(my_pages.begin(), my_pages.end());
  int page_overlap = 0;
  for (int v : attendees) {
    std::vector<int> their_pages =
        ds.world.users[static_cast<size_t>(v)].pages;
    std::sort(their_pages.begin(), their_pages.end());
    if (JaccardSorted(my_pages, their_pages) > 0.0) ++page_overlap;
  }

  out->push_back(static_cast<float>(uu_join));
  out->push_back(static_cast<float>(uu_interested));
  out->push_back(static_cast<float>(ii_max));
  out->push_back(static_cast<float>(ii_mean));
  out->push_back(static_cast<float>(std::log1p(second_degree)));
  out->push_back(static_cast<float>(std::log1p(page_overlap)));
  out->push_back(static_cast<float>(std::log1p(attendees.size())));
}

}  // namespace baseline
}  // namespace evrec
