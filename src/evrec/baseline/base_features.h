// Base feature set ("Base Features (No-CF)" in Table 2): standard user and
// event attributes plus engineered attribute-matching statistics — the
// non-collaborative part of the production baseline the paper describes in
// §4/§5.1 (location, date & time, friends' participation, popularity,
// demographics, crude category matching from sparse history).

#ifndef EVREC_BASELINE_BASE_FEATURES_H_
#define EVREC_BASELINE_BASE_FEATURES_H_

#include <string>
#include <vector>

#include "evrec/baseline/feature_index.h"

namespace evrec {
namespace baseline {

class BaseFeatureExtractor {
 public:
  explicit BaseFeatureExtractor(const FeatureIndex& index)
      : index_(&index) {}

  static const std::vector<std::string>& FeatureNames();
  static int NumFeatures();

  // Features for showing `event` to `user` on `day` (appended to `out`).
  void Extract(int user, int event, int day,
               std::vector<float>* out) const;

 private:
  const FeatureIndex* index_;
};

}  // namespace baseline
}  // namespace evrec

#endif  // EVREC_BASELINE_BASE_FEATURES_H_
