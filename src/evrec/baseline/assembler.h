// FeatureAssembler: builds the combiner model's design matrix for any of
// the paper's feature-set configurations (Tables 1 & 2):
//
//   base features | CF features | representation vectors v_u, v_e |
//   similarity score s(u,e) | optional extension features (e.g. LDA
//   topic-similarity for the ablation bench)
//
// Representation vectors are supplied precomputed (the serving path caches
// them; see store/), so assembly never runs the neural network.

#ifndef EVREC_BASELINE_ASSEMBLER_H_
#define EVREC_BASELINE_ASSEMBLER_H_

#include <functional>
#include <string>
#include <vector>

#include "evrec/baseline/base_features.h"
#include "evrec/baseline/cf_features.h"
#include "evrec/gbdt/data_matrix.h"

namespace evrec {
namespace baseline {

struct FeatureConfig {
  bool base = true;
  bool cf = true;
  bool rep_vectors = false;
  bool rep_score = false;

  std::string Name() const;
};

class FeatureAssembler {
 public:
  // `user_reps` / `event_reps` may be nullptr when no configuration with
  // rep features will be requested. Vectors are indexed by user/event id.
  FeatureAssembler(const FeatureIndex& index,
                   const std::vector<std::vector<float>>* user_reps,
                   const std::vector<std::vector<float>>* event_reps);

  // Optional extra per-pair feature block (appended last).
  using ExtraFeatureFn =
      std::function<void(int user, int event, int day, std::vector<float>*)>;
  void SetExtraFeatures(std::vector<std::string> names, ExtraFeatureFn fn);

  std::vector<std::string> FeatureNames(const FeatureConfig& config) const;
  int NumFeatures(const FeatureConfig& config) const;

  // Fills one row (asserts the resulting size).
  void ExtractRow(int user, int event, int day, const FeatureConfig& config,
                  std::vector<float>* out) const;

  // Same row layout, but representation features come from the supplied
  // vectors instead of the indexed arrays — the serving path passes the
  // vectors it fetched (or recomputed) so offline and online rows are
  // bit-identical. Required non-null when config requests rep features.
  void ExtractRowWithReps(int user, int event, int day,
                          const FeatureConfig& config,
                          const std::vector<float>* user_rep,
                          const std::vector<float>* event_rep,
                          std::vector<float>* out) const;

  // Builds the design matrix and label vector for an impression list.
  void Assemble(const std::vector<simnet::Impression>& impressions,
                const FeatureConfig& config, gbdt::DataMatrix* features,
                std::vector<float>* labels) const;

 private:
  const FeatureIndex* index_;
  BaseFeatureExtractor base_;
  CfFeatureExtractor cf_;
  const std::vector<std::vector<float>>* user_reps_;
  const std::vector<std::vector<float>>* event_reps_;
  std::vector<std::string> extra_names_;
  ExtraFeatureFn extra_fn_;
};

}  // namespace baseline
}  // namespace evrec

#endif  // EVREC_BASELINE_ASSEMBLER_H_
