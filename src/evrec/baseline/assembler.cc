#include "evrec/baseline/assembler.h"

#include <algorithm>

#include "evrec/util/math_util.h"
#include "evrec/util/string_util.h"

namespace evrec {
namespace baseline {

std::string FeatureConfig::Name() const {
  std::string name;
  if (base) name += "base";
  if (cf) name += name.empty() ? "cf" : "+cf";
  if (rep_vectors) name += name.empty() ? "rep" : "+rep";
  if (rep_score) name += name.empty() ? "score" : "+score";
  return name.empty() ? "none" : name;
}

FeatureAssembler::FeatureAssembler(
    const FeatureIndex& index,
    const std::vector<std::vector<float>>* user_reps,
    const std::vector<std::vector<float>>* event_reps)
    : index_(&index), base_(index), cf_(index), user_reps_(user_reps),
      event_reps_(event_reps) {}

void FeatureAssembler::SetExtraFeatures(std::vector<std::string> names,
                                        ExtraFeatureFn fn) {
  extra_names_ = std::move(names);
  extra_fn_ = std::move(fn);
}

std::vector<std::string> FeatureAssembler::FeatureNames(
    const FeatureConfig& config) const {
  std::vector<std::string> names;
  if (config.base) {
    const auto& b = BaseFeatureExtractor::FeatureNames();
    names.insert(names.end(), b.begin(), b.end());
  }
  if (config.cf) {
    const auto& c = CfFeatureExtractor::FeatureNames();
    names.insert(names.end(), c.begin(), c.end());
  }
  if (config.rep_score) names.push_back("rep_similarity");
  if (config.rep_vectors) {
    EVREC_CHECK(user_reps_ != nullptr && event_reps_ != nullptr);
    EVREC_CHECK(!user_reps_->empty() && !event_reps_->empty());
    int ud = static_cast<int>((*user_reps_)[0].size());
    int ed = static_cast<int>((*event_reps_)[0].size());
    for (int i = 0; i < ud; ++i) names.push_back(StrFormat("vu_%d", i));
    for (int i = 0; i < ed; ++i) names.push_back(StrFormat("ve_%d", i));
    // Per-latent-dimension interaction features vu_k * ve_k. The paper's
    // production GBDT discovers these interactions from the raw vectors
    // given ~6M combiner rows; at bench scale we materialize them so the
    // same information is reachable by axis-aligned splits.
    for (int i = 0; i < std::min(ud, ed); ++i) {
      names.push_back(StrFormat("vprod_%d", i));
    }
  }
  names.insert(names.end(), extra_names_.begin(), extra_names_.end());
  return names;
}

int FeatureAssembler::NumFeatures(const FeatureConfig& config) const {
  return static_cast<int>(FeatureNames(config).size());
}

void FeatureAssembler::ExtractRow(int user, int event, int day,
                                  const FeatureConfig& config,
                                  std::vector<float>* out) const {
  const std::vector<float>* vu = nullptr;
  const std::vector<float>* ve = nullptr;
  if (config.rep_score || config.rep_vectors) {
    EVREC_CHECK(user_reps_ != nullptr && event_reps_ != nullptr);
    vu = &(*user_reps_)[static_cast<size_t>(user)];
    ve = &(*event_reps_)[static_cast<size_t>(event)];
  }
  ExtractRowWithReps(user, event, day, config, vu, ve, out);
}

void FeatureAssembler::ExtractRowWithReps(int user, int event, int day,
                                          const FeatureConfig& config,
                                          const std::vector<float>* user_rep,
                                          const std::vector<float>* event_rep,
                                          std::vector<float>* out) const {
  if (config.base) base_.Extract(user, event, day, out);
  if (config.cf) cf_.Extract(user, event, day, out);
  if (config.rep_score || config.rep_vectors) {
    EVREC_CHECK(user_rep != nullptr && event_rep != nullptr);
    const auto& vu = *user_rep;
    const auto& ve = *event_rep;
    if (config.rep_score) {
      out->push_back(static_cast<float>(CosineSimilarity(
          vu.data(), ve.data(), static_cast<int>(vu.size()))));
    }
    if (config.rep_vectors) {
      out->insert(out->end(), vu.begin(), vu.end());
      out->insert(out->end(), ve.begin(), ve.end());
      size_t d = std::min(vu.size(), ve.size());
      for (size_t i = 0; i < d; ++i) out->push_back(vu[i] * ve[i]);
    }
  }
  if (extra_fn_) extra_fn_(user, event, day, out);
}

void FeatureAssembler::Assemble(
    const std::vector<simnet::Impression>& impressions,
    const FeatureConfig& config, gbdt::DataMatrix* features,
    std::vector<float>* labels) const {
  const int cols = NumFeatures(config);
  *features = gbdt::DataMatrix(static_cast<int>(impressions.size()), cols);
  labels->clear();
  labels->reserve(impressions.size());
  std::vector<float> row;
  for (size_t i = 0; i < impressions.size(); ++i) {
    const simnet::Impression& imp = impressions[i];
    row.clear();
    ExtractRow(imp.user, imp.event, imp.day, config, &row);
    EVREC_CHECK_EQ(static_cast<int>(row.size()), cols);
    float* dst = features->MutableRow(static_cast<int>(i));
    std::copy(row.begin(), row.end(), dst);
    labels->push_back(imp.label);
  }
}

}  // namespace baseline
}  // namespace evrec
