// FeatureIndex: query layer over the synthetic world's behavioral logs.
// Every behavioral query takes a `before_day` cutoff and only counts
// feedback that happened strictly earlier, so features are causal at
// impression time — the production setting the paper's date-based split is
// designed to respect.

#ifndef EVREC_BASELINE_FEATURE_INDEX_H_
#define EVREC_BASELINE_FEATURE_INDEX_H_

#include <vector>

#include "evrec/simnet/generator.h"

namespace evrec {
namespace baseline {

class FeatureIndex {
 public:
  explicit FeatureIndex(const simnet::SimnetDataset& dataset);

  const simnet::SimnetDataset& dataset() const { return *dataset_; }

  // --- social graph (static) ---
  bool AreFriends(int user_a, int user_b) const;

  // --- behavioral, causal in `before_day` ---
  int AttendeesBefore(int event, int before_day) const;
  int InterestedBefore(int event, int before_day) const;
  int FriendsAttendingBefore(int user, int event, int before_day) const;
  int UserJoinCountBefore(int user, int before_day) const;
  int UserInterestedCountBefore(int user, int before_day) const;

  // Event ids the user joined before `before_day`.
  std::vector<int> UserJoinedEventsBefore(int user, int before_day) const;
  std::vector<int> UserInterestedEventsBefore(int user,
                                              int before_day) const;
  // User ids attending the event before `before_day`.
  std::vector<int> EventAttendeesBefore(int event, int before_day) const;

  // Fraction of the user's past joins whose event category matches
  // `category` (0 when the user has no history — the sparse case).
  double CategoryAffinityBefore(int user, int category,
                                int before_day) const;

  // Number of events the host had previously hosted that drew at least one
  // attendee (host reputation proxy).
  int HostPriorAttendanceBefore(int host, int before_day) const;

 private:
  const simnet::SimnetDataset* dataset_;
  // events hosted by each user, for the host-reputation feature
  std::vector<std::vector<int>> hosted_events_;
};

}  // namespace baseline
}  // namespace evrec

#endif  // EVREC_BASELINE_FEATURE_INDEX_H_
