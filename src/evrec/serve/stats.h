// ServeStats: per-request (and aggregated) counters for the fault-tolerant
// serving path. The tier counters account for every candidate exactly once
// (tier1 + tier2 + tier3 + tier4 == candidates), which is the invariant
// serve_test pins down.

#ifndef EVREC_SERVE_STATS_H_
#define EVREC_SERVE_STATS_H_

#include <cstdint>
#include <string>

#include "evrec/util/string_util.h"

namespace evrec {
namespace serve {

struct ServeStats {
  uint64_t requests = 0;
  uint64_t candidates = 0;

  // Store lookup path.
  uint64_t store_attempts = 0;
  uint64_t store_retries = 0;
  uint64_t store_transient_errors = 0;
  uint64_t store_corruptions = 0;
  uint64_t store_misses = 0;

  // Recompute path.
  uint64_t recompute_attempts = 0;
  uint64_t recompute_failures = 0;
  uint64_t breaker_rejections = 0;
  uint64_t breaker_transitions = 0;

  // Candidates degraded because the deadline budget ran out.
  uint64_t deadline_degradations = 0;

  // Which degradation tier served each candidate:
  //   [0] tier 1: cached rep + full combiner
  //   [1] tier 2: recomputed rep + full combiner
  //   [2] tier 3: baseline-features-only combiner
  //   [3] tier 4: popularity / CF prior
  uint64_t tier_served[4] = {0, 0, 0, 0};

  uint64_t TotalServed() const {
    return tier_served[0] + tier_served[1] + tier_served[2] + tier_served[3];
  }

  void Merge(const ServeStats& other) {
    requests += other.requests;
    candidates += other.candidates;
    store_attempts += other.store_attempts;
    store_retries += other.store_retries;
    store_transient_errors += other.store_transient_errors;
    store_corruptions += other.store_corruptions;
    store_misses += other.store_misses;
    recompute_attempts += other.recompute_attempts;
    recompute_failures += other.recompute_failures;
    breaker_rejections += other.breaker_rejections;
    breaker_transitions += other.breaker_transitions;
    deadline_degradations += other.deadline_degradations;
    for (int i = 0; i < 4; ++i) tier_served[i] += other.tier_served[i];
  }

  std::string ToString() const {
    return StrFormat(
        "requests=%llu candidates=%llu tiers=[%llu,%llu,%llu,%llu] "
        "store{attempts=%llu retries=%llu transient=%llu corrupt=%llu "
        "miss=%llu} recompute{attempts=%llu failures=%llu rejected=%llu} "
        "breaker_transitions=%llu deadline_degradations=%llu",
        static_cast<unsigned long long>(requests),
        static_cast<unsigned long long>(candidates),
        static_cast<unsigned long long>(tier_served[0]),
        static_cast<unsigned long long>(tier_served[1]),
        static_cast<unsigned long long>(tier_served[2]),
        static_cast<unsigned long long>(tier_served[3]),
        static_cast<unsigned long long>(store_attempts),
        static_cast<unsigned long long>(store_retries),
        static_cast<unsigned long long>(store_transient_errors),
        static_cast<unsigned long long>(store_corruptions),
        static_cast<unsigned long long>(store_misses),
        static_cast<unsigned long long>(recompute_attempts),
        static_cast<unsigned long long>(recompute_failures),
        static_cast<unsigned long long>(breaker_rejections),
        static_cast<unsigned long long>(breaker_transitions),
        static_cast<unsigned long long>(deadline_degradations));
  }
};

}  // namespace serve
}  // namespace evrec

#endif  // EVREC_SERVE_STATS_H_
