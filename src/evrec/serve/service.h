// RecommendationService: fault-tolerant answer to "rank these candidate
// events for user u" (paper §4's serving path, hardened). Each request
// carries a deadline budget; vector lookups run through a retry policy
// with exponential backoff + deterministic jitter; the expensive recompute
// path (model forward) sits behind a circuit breaker; and a four-tier
// graceful-degradation chain guarantees a complete ranking:
//
//   tier 1  cached representation vectors + full-feature GBDT combiner
//   tier 2  representation recomputed on cache miss (budget permitting)
//   tier 3  baseline-features-only GBDT score (no vectors needed)
//   tier 4  popularity / CF prior (always available, never blocks)

#ifndef EVREC_SERVE_SERVICE_H_
#define EVREC_SERVE_SERVICE_H_

#include <functional>
#include <vector>

#include "evrec/baseline/assembler.h"
#include "evrec/gbdt/gbdt.h"
#include "evrec/obs/health.h"
#include "evrec/obs/metrics.h"
#include "evrec/obs/monitor.h"
#include "evrec/obs/profile.h"
#include "evrec/obs/slo.h"
#include "evrec/serve/circuit_breaker.h"
#include "evrec/serve/clock.h"
#include "evrec/serve/fault_injector.h"
#include "evrec/serve/retry.h"
#include "evrec/serve/stats.h"
#include "evrec/serve/vector_store.h"

namespace evrec {
namespace serve {

struct ServiceConfig {
  RetryPolicy retry;
  CircuitBreakerConfig breaker;
  int64_t default_budget_micros = 50000;
  uint64_t jitter_seed = 97;  // seeds the deterministic backoff jitter
};

struct RankedCandidate {
  int event = 0;
  double score = 0.0;
  int tier = 0;  // 1..4, the degradation tier that produced `score`
};

struct RankResponse {
  // Complete ranking over the requested candidates, best first
  // (ties broken by ascending event id for determinism).
  std::vector<RankedCandidate> ranking;
  ServeStats stats;  // this request only
  int64_t elapsed_micros = 0;
};

class RecommendationService {
 public:
  // Non-owning backends; everything must outlive the service.
  struct Backends {
    VectorStore* store = nullptr;              // tier 1 lookups
    VectorComputeFn recompute;                 // tier 2 (may be empty)
    const baseline::FeatureAssembler* assembler = nullptr;
    const gbdt::GbdtModel* primary = nullptr;  // full-feature combiner
    baseline::FeatureConfig primary_features;
    const gbdt::GbdtModel* fallback = nullptr;  // baseline-only combiner
    baseline::FeatureConfig fallback_features;
    // Tier 4: cheap local prior, (user, event, day) -> score.
    std::function<double(int, int, int)> prior;
    Clock* clock = nullptr;
    // Destination for serve.* counters and latency histograms; nullptr
    // means the process-wide obs::MetricRegistry::Global().
    obs::MetricRegistry* metrics = nullptr;
    // Optional live telemetry: rolling-window serve.* metrics (QPS, error
    // rate, sliding latency percentiles) are fed per request when set.
    obs::Monitor* monitor = nullptr;
    // Optional SLO engine: every request is reported (error flag + latency)
    // before its root span closes, so episodes firing an alert retain their
    // traces.
    obs::SloEngine* slo = nullptr;
    // Optional health registry: the service registers its circuit-breaker
    // and vector-store probes on construction and unregisters them on
    // destruction.
    obs::HealthRegistry* health = nullptr;
    // Cost attribution: when the profiler is collecting, every request is
    // tagged with the CPU samples and heap bytes tallied on the serving
    // thread and filed in the profiler's per-request table under its
    // trace id (forced-retained while an SLO alert is firing). nullptr
    // means obs::Profiler::Global().
    obs::Profiler* profiler = nullptr;
  };

  RecommendationService(const Backends& backends,
                        const ServiceConfig& config);
  ~RecommendationService();

  RankResponse Rank(int user, const std::vector<int>& candidates, int day) {
    return Rank(user, candidates, day, config_.default_budget_micros);
  }
  RankResponse Rank(int user, const std::vector<int>& candidates, int day,
                    int64_t budget_micros);

  // Counters aggregated over every request served so far.
  const ServeStats& lifetime_stats() const { return lifetime_; }
  const CircuitBreaker& breaker() const { return breaker_; }

 private:
  struct ResolvedVector {
    StatusOr<std::vector<float>> vec;
    bool recomputed = false;
    ResolvedVector(StatusOr<std::vector<float>> v, bool r)
        : vec(std::move(v)), recomputed(r) {}
  };

  // Store fetch with bounded retries; backoff sleeps are capped to the
  // remaining budget so a deadline is never overshot by more than one
  // in-flight operation.
  StatusOr<std::vector<float>> FetchVector(store::EntityKind kind, int id,
                                           const DeadlineBudget& budget,
                                           ServeStats* stats);

  // Fetch, then fall back to breaker-guarded recompute (budget permitting).
  ResolvedVector ResolveVector(store::EntityKind kind, int id,
                               const DeadlineBudget& budget,
                               ServeStats* stats);

  double ScoreFull(int user, int event, int day,
                   const std::vector<float>& user_vec,
                   const std::vector<float>& event_vec) const;
  double ScoreFallback(int user, int event, int day) const;

  // Registry metrics mirroring ServeStats, resolved once at construction
  // so the hot path touches only atomics. The ServeStats struct remains
  // the per-request return channel; these carry the same totals for
  // export (the serve_test pins them equal bit-for-bit).
  struct RegistryMetrics {
    obs::Counter* requests = nullptr;
    obs::Counter* candidates = nullptr;
    obs::Counter* store_attempts = nullptr;
    obs::Counter* store_retries = nullptr;
    obs::Counter* store_transient_errors = nullptr;
    obs::Counter* store_corruptions = nullptr;
    obs::Counter* store_misses = nullptr;
    obs::Counter* recompute_attempts = nullptr;
    obs::Counter* recompute_failures = nullptr;
    obs::Counter* breaker_rejections = nullptr;
    obs::Counter* breaker_transitions = nullptr;
    obs::Counter* deadline_degradations = nullptr;
    obs::Counter* tier_served[4] = {nullptr, nullptr, nullptr, nullptr};
    obs::Histogram* request_micros = nullptr;
    obs::Histogram* tier_micros[4] = {nullptr, nullptr, nullptr, nullptr};
  };

  // Rolling-window mirrors of the hot serve metrics, resolved once when a
  // Monitor is supplied (all null otherwise).
  struct LiveMetrics {
    obs::RollingCounter* requests = nullptr;
    obs::RollingCounter* errors = nullptr;
    obs::RollingCounter* store_attempts = nullptr;
    obs::RollingCounter* store_errors = nullptr;
    obs::RollingHistogram* request_micros = nullptr;
  };

  Backends backends_;
  ServiceConfig config_;
  CircuitBreaker breaker_;
  Rng jitter_rng_;
  ServeStats lifetime_;
  RegistryMetrics metrics_;
  LiveMetrics live_;
};

}  // namespace serve
}  // namespace evrec

#endif  // EVREC_SERVE_SERVICE_H_
