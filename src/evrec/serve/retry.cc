#include "evrec/serve/retry.h"

#include <algorithm>

namespace evrec {
namespace serve {

int64_t BackoffMicros(const RetryPolicy& policy, int retry, Rng& rng) {
  double backoff = static_cast<double>(policy.initial_backoff_micros);
  for (int i = 0; i < retry; ++i) backoff *= policy.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(policy.max_backoff_micros));
  if (policy.jitter_fraction > 0.0) {
    double lo = 1.0 - policy.jitter_fraction;
    double hi = 1.0 + policy.jitter_fraction;
    backoff *= rng.Uniform(lo, hi);
  }
  return std::max<int64_t>(0, static_cast<int64_t>(backoff));
}

bool IsRetriableError(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

}  // namespace serve
}  // namespace evrec
