// VectorStore: the serving layer's fault-prone view of the distributed
// representation store (TAO in the paper, store::RepVectorCache here).
// Unlike the raw cache API, Get returns a Status so lookups can fail the
// way a remote store fails: miss (NotFound), bad stored bytes
// (Corruption), or transient outage (Unavailable, injected by decorators).

#ifndef EVREC_SERVE_VECTOR_STORE_H_
#define EVREC_SERVE_VECTOR_STORE_H_

#include <vector>

#include "evrec/store/rep_cache.h"
#include "evrec/util/status.h"
#include "evrec/util/thread_pool.h"

namespace evrec {
namespace serve {

class VectorStore {
 public:
  virtual ~VectorStore() = default;

  virtual StatusOr<std::vector<float>> Get(store::EntityKind kind,
                                           int id) = 0;
  virtual void Put(store::EntityKind kind, int id,
                   std::vector<float> vector) = 0;
};

// One candidate's result from batch scoring.
struct ScoredCandidate {
  int id = 0;
  double score = 0.0;  // cosine similarity to the query
  bool found = false;  // false when the store had no usable vector
};

// Full-corpus candidate scoring: fetches every candidate's vector and
// scores it against `query` by cosine similarity. Fetches run sequentially
// (store decorators — retries, fault injectors — are not required to be
// thread-safe), then the O(n * dim) similarity math is sharded across
// `pool` (candidate i on shard i % num_threads). Every output slot is
// written by exactly one shard with a value that depends only on its own
// candidate, so the result is identical for any thread count.
std::vector<ScoredCandidate> ScoreCandidates(
    VectorStore* store, store::EntityKind kind,
    const std::vector<float>& query, const std::vector<int>& candidate_ids,
    ThreadPool* pool);

// Keeps the k best found candidates, descending score, ties broken by
// ascending id (deterministic total order).
std::vector<ScoredCandidate> TopK(std::vector<ScoredCandidate> scored,
                                  int k);

// Adapter over the in-process RepVectorCache; a miss surfaces as NotFound.
class RepCacheVectorStore : public VectorStore {
 public:
  explicit RepCacheVectorStore(store::RepVectorCache* cache)
      : cache_(cache) {}

  StatusOr<std::vector<float>> Get(store::EntityKind kind, int id) override;
  void Put(store::EntityKind kind, int id,
           std::vector<float> vector) override;

 private:
  store::RepVectorCache* cache_;
};

}  // namespace serve
}  // namespace evrec

#endif  // EVREC_SERVE_VECTOR_STORE_H_
