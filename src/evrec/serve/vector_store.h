// VectorStore: the serving layer's fault-prone view of the distributed
// representation store (TAO in the paper, store::RepVectorCache here).
// Unlike the raw cache API, Get returns a Status so lookups can fail the
// way a remote store fails: miss (NotFound), bad stored bytes
// (Corruption), or transient outage (Unavailable, injected by decorators).

#ifndef EVREC_SERVE_VECTOR_STORE_H_
#define EVREC_SERVE_VECTOR_STORE_H_

#include <vector>

#include "evrec/store/rep_cache.h"
#include "evrec/util/status.h"
#include "evrec/util/thread_pool.h"

namespace evrec {
namespace serve {

class VectorStore {
 public:
  virtual ~VectorStore() = default;

  virtual StatusOr<std::vector<float>> Get(store::EntityKind kind,
                                           int id) = 0;
  virtual void Put(store::EntityKind kind, int id,
                   std::vector<float> vector) = 0;
};

// One candidate's result from batch scoring. Scores are float end to end:
// the representation vectors are float, the kernels accumulate in float,
// and keeping the struct at 12 bytes doubles how many candidates fit in a
// cache line during selection.
struct ScoredCandidate {
  int id = 0;
  float score = 0.0f;  // cosine similarity to the query
  bool found = false;  // false when the store had no usable vector
};

// Full-corpus candidate scoring: fetches every candidate's vector and
// scores it against `query` by cosine similarity. Fetches run sequentially
// (store decorators — retries, fault injectors — are not required to be
// thread-safe) into a 64-byte-aligned la::FlatVectorBlock scratch, then
// the similarity math runs as a cache-blocked batched kernel: one sweep of
// the query vector scores 8 candidates (la::FlatVectorBlock::CosineBlock).
// The per-block work is sharded across `pool`; every block's scores depend
// only on that block's candidates, so the result is identical for any
// thread count — and for any SIMD tier (see la/simd/dispatch.h).
std::vector<ScoredCandidate> ScoreCandidates(
    VectorStore* store, store::EntityKind kind,
    const std::vector<float>& query, const std::vector<int>& candidate_ids,
    ThreadPool* pool);

// Keeps the k best found candidates, descending score, ties broken by
// ascending id (deterministic total order). Heap-based partial selection
// over a bounded k-element heap — O(n log k), never a full sort — and the
// argument is consumed (pass std::move or a temporary; copy explicitly if
// the full score list is still needed).
std::vector<ScoredCandidate> TopK(std::vector<ScoredCandidate>&& scored,
                                  int k);

// Same selection over a raw span (no ownership taken); the batched-scoring
// callers that keep `scored` alive use this to avoid the copy.
std::vector<ScoredCandidate> TopKSpan(const ScoredCandidate* scored,
                                      size_t n, int k);

// Adapter over the in-process RepVectorCache; a miss surfaces as NotFound.
class RepCacheVectorStore : public VectorStore {
 public:
  explicit RepCacheVectorStore(store::RepVectorCache* cache)
      : cache_(cache) {}

  StatusOr<std::vector<float>> Get(store::EntityKind kind, int id) override;
  void Put(store::EntityKind kind, int id,
           std::vector<float> vector) override;

 private:
  store::RepVectorCache* cache_;
};

}  // namespace serve
}  // namespace evrec

#endif  // EVREC_SERVE_VECTOR_STORE_H_
