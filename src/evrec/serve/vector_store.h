// VectorStore: the serving layer's fault-prone view of the distributed
// representation store (TAO in the paper, store::RepVectorCache here).
// Unlike the raw cache API, Get returns a Status so lookups can fail the
// way a remote store fails: miss (NotFound), bad stored bytes
// (Corruption), or transient outage (Unavailable, injected by decorators).

#ifndef EVREC_SERVE_VECTOR_STORE_H_
#define EVREC_SERVE_VECTOR_STORE_H_

#include <vector>

#include "evrec/store/rep_cache.h"
#include "evrec/util/status.h"

namespace evrec {
namespace serve {

class VectorStore {
 public:
  virtual ~VectorStore() = default;

  virtual StatusOr<std::vector<float>> Get(store::EntityKind kind,
                                           int id) = 0;
  virtual void Put(store::EntityKind kind, int id,
                   std::vector<float> vector) = 0;
};

// Adapter over the in-process RepVectorCache; a miss surfaces as NotFound.
class RepCacheVectorStore : public VectorStore {
 public:
  explicit RepCacheVectorStore(store::RepVectorCache* cache)
      : cache_(cache) {}

  StatusOr<std::vector<float>> Get(store::EntityKind kind, int id) override;
  void Put(store::EntityKind kind, int id,
           std::vector<float> vector) override;

 private:
  store::RepVectorCache* cache_;
};

}  // namespace serve
}  // namespace evrec

#endif  // EVREC_SERVE_VECTOR_STORE_H_
