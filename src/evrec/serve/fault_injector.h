// Seeded, deterministic fault injection for the serving layer. A
// FaultInjector draws one decision tuple per operation from its own Rng
// stream — latency spike, transient error, corrupted payload — so a replay
// with the same seed injects the identical fault sequence. Decorators
// apply those decisions to a VectorStore or a recompute function.

#ifndef EVREC_SERVE_FAULT_INJECTOR_H_
#define EVREC_SERVE_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "evrec/serve/clock.h"
#include "evrec/serve/vector_store.h"
#include "evrec/util/rng.h"
#include "evrec/util/status.h"

namespace evrec {
namespace serve {

struct FaultConfig {
  double transient_error_rate = 0.0;  // P(Unavailable) per operation
  double corruption_rate = 0.0;       // P(Corruption) per operation
  double latency_spike_rate = 0.0;    // P(extra latency) per operation
  int64_t latency_spike_micros = 0;   // size of one spike
  int64_t base_latency_micros = 0;    // charged to every operation
  uint64_t seed = 2017;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config)
      : config_(config), rng_(config.seed, /*stream=*/71) {}

  struct Fault {
    int64_t latency_micros = 0;
    Status status;  // OK = operation proceeds against the real backend
  };

  // Draws the fault decision for the next operation. Always consumes the
  // same number of Rng draws regardless of outcome, keeping the sequence
  // aligned across configuration tweaks.
  Fault Next();

  uint64_t decisions() const { return decisions_; }
  const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  Rng rng_;
  uint64_t decisions_ = 0;
};

// VectorStore decorator: charges injected latency to `clock` and replaces
// the result with the injected error when one fires. Puts pass through
// unfaulted (writes are asynchronous in the paper's serving design).
class FaultyVectorStore : public VectorStore {
 public:
  FaultyVectorStore(VectorStore* inner, FaultInjector* injector,
                    Clock* clock)
      : inner_(inner), injector_(injector), clock_(clock) {}

  StatusOr<std::vector<float>> Get(store::EntityKind kind, int id) override {
    FaultInjector::Fault fault = injector_->Next();
    if (fault.latency_micros > 0) clock_->SleepMicros(fault.latency_micros);
    if (!fault.status.ok()) return fault.status;
    return inner_->Get(kind, id);
  }

  void Put(store::EntityKind kind, int id,
           std::vector<float> vector) override {
    inner_->Put(kind, id, std::move(vector));
  }

 private:
  VectorStore* inner_;
  FaultInjector* injector_;
  Clock* clock_;
};

// Recompute-path decorator: same idea for an arbitrary compute function.
using VectorComputeFn =
    std::function<StatusOr<std::vector<float>>(store::EntityKind, int)>;

VectorComputeFn MakeFaultyCompute(VectorComputeFn inner,
                                  FaultInjector* injector, Clock* clock);

}  // namespace serve
}  // namespace evrec

#endif  // EVREC_SERVE_FAULT_INJECTOR_H_
