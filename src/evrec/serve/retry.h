// Retry policy for transient store failures: bounded attempts with
// exponential backoff and deterministic jitter (seeded Rng, no wall-clock
// randomness), so a replayed request makes the same retry decisions every
// run.

#ifndef EVREC_SERVE_RETRY_H_
#define EVREC_SERVE_RETRY_H_

#include <cstdint>

#include "evrec/util/rng.h"
#include "evrec/util/status.h"

namespace evrec {
namespace serve {

struct RetryPolicy {
  int max_attempts = 3;                 // total attempts, not retries
  int64_t initial_backoff_micros = 1000;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_micros = 8000;
  double jitter_fraction = 0.25;        // backoff scaled by [1-f, 1+f)
};

// Backoff before retry number `retry` (0 = first retry). Exponential in
// `retry`, clamped to max_backoff_micros, then jittered with a draw from
// `rng`: deterministic for a fixed seed and call sequence.
int64_t BackoffMicros(const RetryPolicy& policy, int retry, Rng& rng);

// True for failures worth retrying against the same backend: transient
// unavailability. NotFound (cache miss) and Corruption (bad stored bytes)
// are deterministic — retrying cannot help, degrade instead.
bool IsRetriableError(const Status& status);

}  // namespace serve
}  // namespace evrec

#endif  // EVREC_SERVE_RETRY_H_
