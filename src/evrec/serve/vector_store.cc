#include "evrec/serve/vector_store.h"

#include "evrec/util/string_util.h"

namespace evrec {
namespace serve {

StatusOr<std::vector<float>> RepCacheVectorStore::Get(store::EntityKind kind,
                                                      int id) {
  std::vector<float> out;
  if (cache_->TryGet(kind, id, &out)) return out;
  return Status::NotFound(StrFormat(
      "no cached vector for %s %d",
      kind == store::EntityKind::kUser ? "user" : "event", id));
}

void RepCacheVectorStore::Put(store::EntityKind kind, int id,
                              std::vector<float> vector) {
  cache_->Precompute(kind, id, std::move(vector));
}

}  // namespace serve
}  // namespace evrec
