#include "evrec/serve/vector_store.h"

#include <algorithm>

#include "evrec/la/flat_block.h"
#include "evrec/la/vec_ops.h"
#include "evrec/obs/trace.h"
#include "evrec/util/string_util.h"

namespace evrec {
namespace serve {

namespace {

// Descending score, ties broken by ascending id: a deterministic total
// order over found candidates.
inline bool Better(const ScoredCandidate& a, const ScoredCandidate& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

}  // namespace

std::vector<ScoredCandidate> ScoreCandidates(
    VectorStore* store, store::EntityKind kind,
    const std::vector<float>& query, const std::vector<int>& candidate_ids,
    ThreadPool* pool) {
  obs::ScopedSpan span("serve.score_candidates");
  span.AddTag("candidates",
              StrFormat("%zu", candidate_ids.size()));
  const int n = static_cast<int>(candidate_ids.size());
  const int dim = static_cast<int>(query.size());
  std::vector<ScoredCandidate> scored(static_cast<size_t>(n));

  // Sequential fetch into the flat scratch: slot i holds candidate i's
  // vector (missing candidates stay zero, which the cosine guard maps to
  // score 0 — and found=false marks them for TopK anyway).
  la::FlatVectorBlock block(dim);
  block.Resize(n);
  for (int i = 0; i < n; ++i) {
    scored[static_cast<size_t>(i)].id = candidate_ids[static_cast<size_t>(i)];
    StatusOr<std::vector<float>> got =
        store->Get(kind, candidate_ids[static_cast<size_t>(i)]);
    if (got.ok() && got.value().size() == query.size()) {
      block.Set(i, got.value().data());
      scored[static_cast<size_t>(i)].found = true;
    }
  }

  // Batched scoring, 8 candidates per sweep of the query vector. Each
  // shard scores whole blocks; block b writes exactly the slots
  // [b*8, b*8+8) and reads nothing outside its block, so any thread count
  // (and any SIMD tier) produces identical bytes.
  const float q_sqnorm = la::DotF(query.data(), query.data(), dim);
  const int lane = la::FlatVectorBlock::kLane;
  auto score_block = [&](int b) {
    float scores[la::FlatVectorBlock::kLane];
    block.CosineBlock(b, query.data(), q_sqnorm, scores);
    const int begin = b * lane;
    const int count = std::min(lane, n - begin);
    for (int l = 0; l < count; ++l) {
      scored[static_cast<size_t>(begin + l)].score = scores[l];
    }
  };
  if (pool == nullptr) {
    for (int b = 0; b < block.num_blocks(); ++b) score_block(b);
  } else {
    pool->ParallelFor(block.num_blocks(), score_block);
  }
  return scored;
}

std::vector<ScoredCandidate> TopKSpan(const ScoredCandidate* scored,
                                      size_t n, int k) {
  std::vector<ScoredCandidate> heap;
  if (k <= 0) return heap;
  heap.reserve(static_cast<size_t>(k));
  // Min-heap under Better-as-less: the heap top is the WORST kept
  // candidate, so each new candidate compares against the bar in O(1) and
  // replaces it in O(log k).
  for (size_t i = 0; i < n; ++i) {
    const ScoredCandidate& c = scored[i];
    if (!c.found) continue;
    if (heap.size() < static_cast<size_t>(k)) {
      heap.push_back(c);
      std::push_heap(heap.begin(), heap.end(), Better);
    } else if (Better(c, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), Better);
      heap.back() = c;
      std::push_heap(heap.begin(), heap.end(), Better);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), Better);
  return heap;
}

std::vector<ScoredCandidate> TopK(std::vector<ScoredCandidate>&& scored,
                                  int k) {
  std::vector<ScoredCandidate> result =
      TopKSpan(scored.data(), scored.size(), k);
  scored.clear();
  return result;
}

StatusOr<std::vector<float>> RepCacheVectorStore::Get(store::EntityKind kind,
                                                      int id) {
  std::vector<float> out;
  if (cache_->TryGet(kind, id, &out)) return out;
  return Status::NotFound(StrFormat(
      "no cached vector for %s %d",
      kind == store::EntityKind::kUser ? "user" : "event", id));
}

void RepCacheVectorStore::Put(store::EntityKind kind, int id,
                              std::vector<float> vector) {
  cache_->Precompute(kind, id, std::move(vector));
}

}  // namespace serve
}  // namespace evrec
