#include "evrec/serve/vector_store.h"

#include <algorithm>

#include "evrec/obs/trace.h"
#include "evrec/util/math_util.h"
#include "evrec/util/string_util.h"

namespace evrec {
namespace serve {

std::vector<ScoredCandidate> ScoreCandidates(
    VectorStore* store, store::EntityKind kind,
    const std::vector<float>& query, const std::vector<int>& candidate_ids,
    ThreadPool* pool) {
  obs::ScopedSpan span("serve.score_candidates");
  span.AddTag("candidates",
              StrFormat("%zu", candidate_ids.size()));
  const int n = static_cast<int>(candidate_ids.size());
  std::vector<ScoredCandidate> scored(static_cast<size_t>(n));
  std::vector<std::vector<float>> vectors(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    scored[static_cast<size_t>(i)].id = candidate_ids[static_cast<size_t>(i)];
    StatusOr<std::vector<float>> got =
        store->Get(kind, candidate_ids[static_cast<size_t>(i)]);
    if (got.ok() && got.value().size() == query.size()) {
      vectors[static_cast<size_t>(i)] = std::move(got.value());
      scored[static_cast<size_t>(i)].found = true;
    }
  }
  auto score_one = [&](int i) {
    ScoredCandidate& sc = scored[static_cast<size_t>(i)];
    if (sc.found) {
      sc.score = CosineSimilarity(query.data(),
                                  vectors[static_cast<size_t>(i)].data(),
                                  static_cast<int>(query.size()));
    }
  };
  if (pool == nullptr) {
    for (int i = 0; i < n; ++i) score_one(i);
  } else {
    pool->ParallelFor(n, score_one);
  }
  return scored;
}

std::vector<ScoredCandidate> TopK(std::vector<ScoredCandidate> scored,
                                  int k) {
  scored.erase(std::remove_if(scored.begin(), scored.end(),
                              [](const ScoredCandidate& s) {
                                return !s.found;
                              }),
               scored.end());
  auto better = [](const ScoredCandidate& a, const ScoredCandidate& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  const size_t keep =
      std::min(scored.size(), static_cast<size_t>(std::max(0, k)));
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<long>(keep), scored.end(),
                    better);
  scored.resize(keep);
  return scored;
}

StatusOr<std::vector<float>> RepCacheVectorStore::Get(store::EntityKind kind,
                                                      int id) {
  std::vector<float> out;
  if (cache_->TryGet(kind, id, &out)) return out;
  return Status::NotFound(StrFormat(
      "no cached vector for %s %d",
      kind == store::EntityKind::kUser ? "user" : "event", id));
}

void RepCacheVectorStore::Put(store::EntityKind kind, int id,
                              std::vector<float> vector) {
  cache_->Precompute(kind, id, std::move(vector));
}

}  // namespace serve
}  // namespace evrec
