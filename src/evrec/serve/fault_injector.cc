#include "evrec/serve/fault_injector.h"

namespace evrec {
namespace serve {

FaultInjector::Fault FaultInjector::Next() {
  ++decisions_;
  Fault fault;
  fault.latency_micros = config_.base_latency_micros;
  // Fixed draw order keeps the stream aligned across outcomes.
  bool spike = rng_.Bernoulli(config_.latency_spike_rate);
  bool transient = rng_.Bernoulli(config_.transient_error_rate);
  bool corrupt = rng_.Bernoulli(config_.corruption_rate);
  if (spike) fault.latency_micros += config_.latency_spike_micros;
  if (transient) {
    fault.status = Status::Unavailable("injected transient store error");
  } else if (corrupt) {
    fault.status = Status::Corruption("injected vector corruption");
  }
  return fault;
}

VectorComputeFn MakeFaultyCompute(VectorComputeFn inner,
                                  FaultInjector* injector, Clock* clock) {
  return [inner = std::move(inner), injector, clock](
             store::EntityKind kind,
             int id) -> StatusOr<std::vector<float>> {
    FaultInjector::Fault fault = injector->Next();
    if (fault.latency_micros > 0) clock->SleepMicros(fault.latency_micros);
    if (!fault.status.ok()) return fault.status;
    return inner(kind, id);
  };
}

}  // namespace serve
}  // namespace evrec
