#include "evrec/serve/circuit_breaker.h"

#include "evrec/obs/trace.h"

namespace evrec {
namespace serve {

void CircuitBreaker::TransitionTo(State next) {
  if (state_ == next) return;
  state_ = next;
  ++transitions_;
  // Surfaces the flip on whichever request span triggered it.
  obs::AddSpanTag("breaker", CircuitStateName(next));
  if (next == State::kOpen) {
    opened_at_micros_ = clock_->NowMicros();
  } else if (next == State::kHalfOpen) {
    half_open_successes_ = 0;
  } else {
    consecutive_failures_ = 0;
  }
}

bool CircuitBreaker::AllowRequest() {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (clock_->NowMicros() - opened_at_micros_ >=
          config_.open_duration_micros) {
        TransitionTo(State::kHalfOpen);
        return true;
      }
      return false;
    case State::kHalfOpen:
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  if (state_ == State::kHalfOpen) {
    if (++half_open_successes_ >= config_.half_open_successes) {
      TransitionTo(State::kClosed);
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::RecordFailure() {
  if (state_ == State::kHalfOpen) {
    TransitionTo(State::kOpen);
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= config_.failure_threshold) {
    TransitionTo(State::kOpen);
  }
}

const char* CircuitStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace serve
}  // namespace evrec
