// Clock names re-exported into evrec::serve. The implementation moved to
// util/clock.h so the observability layer (evrec/obs) can share the same
// injectable clock without depending on the serving stack; serve code and
// tests keep spelling serve::Clock / serve::FakeClock / serve::DeadlineBudget.

#ifndef EVREC_SERVE_CLOCK_H_
#define EVREC_SERVE_CLOCK_H_

#include "evrec/util/clock.h"

namespace evrec {
namespace serve {

using Clock = ::evrec::Clock;
using SystemClock = ::evrec::SystemClock;
using FakeClock = ::evrec::FakeClock;
using DeadlineBudget = ::evrec::DeadlineBudget;

}  // namespace serve
}  // namespace evrec

#endif  // EVREC_SERVE_CLOCK_H_
