// Circuit breaker guarding the expensive representation-recompute path
// (JointModel forward). Classic three-state machine:
//
//   closed    requests flow; consecutive failures >= threshold opens it
//   open      requests are rejected until `open_duration_micros` elapses
//   half-open a limited probe is let through; success closes the breaker,
//             failure re-opens it (and restarts the cool-down)
//
// Time is read through the injectable serve::Clock, so tests drive the
// cool-down deterministically.

#ifndef EVREC_SERVE_CIRCUIT_BREAKER_H_
#define EVREC_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>

#include "evrec/serve/clock.h"

namespace evrec {
namespace serve {

struct CircuitBreakerConfig {
  int failure_threshold = 3;             // consecutive failures to open
  int64_t open_duration_micros = 50000;  // cool-down before half-open
  int half_open_successes = 1;           // probe successes needed to close
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(const CircuitBreakerConfig& config, Clock* clock)
      : config_(config), clock_(clock) {}

  // True if a request may proceed. Transitions open -> half-open once the
  // cool-down has elapsed.
  bool AllowRequest();

  void RecordSuccess();
  void RecordFailure();

  State state() const { return state_; }
  // Total state transitions since construction (for ServeStats).
  uint64_t transitions() const { return transitions_; }

 private:
  void TransitionTo(State next);

  CircuitBreakerConfig config_;
  Clock* clock_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  int64_t opened_at_micros_ = 0;
  uint64_t transitions_ = 0;
};

// Stable name for logging / stats ("closed", "open", "half-open").
const char* CircuitStateName(CircuitBreaker::State state);

}  // namespace serve
}  // namespace evrec

#endif  // EVREC_SERVE_CIRCUIT_BREAKER_H_
