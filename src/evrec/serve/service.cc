#include "evrec/serve/service.h"

#include <algorithm>
#include <string>

#include "evrec/obs/trace.h"
#include "evrec/util/check.h"
#include "evrec/util/logging.h"
#include "evrec/util/string_util.h"

namespace evrec {
namespace serve {

RecommendationService::RecommendationService(const Backends& backends,
                                             const ServiceConfig& config)
    : backends_(backends), config_(config),
      breaker_(config.breaker, backends.clock),
      jitter_rng_(config.jitter_seed, /*stream=*/83) {
  EVREC_CHECK(backends_.store != nullptr);
  EVREC_CHECK(backends_.assembler != nullptr);
  EVREC_CHECK(backends_.primary != nullptr);
  EVREC_CHECK(backends_.fallback != nullptr);
  EVREC_CHECK(backends_.clock != nullptr);

  obs::MetricRegistry* reg = backends_.metrics != nullptr
                                 ? backends_.metrics
                                 : obs::MetricRegistry::Global();
  backends_.metrics = reg;
  metrics_.requests = reg->GetCounter("serve.requests");
  metrics_.candidates = reg->GetCounter("serve.candidates");
  metrics_.store_attempts = reg->GetCounter("serve.store.attempts");
  metrics_.store_retries = reg->GetCounter("serve.store.retries");
  metrics_.store_transient_errors =
      reg->GetCounter("serve.store.transient_errors");
  metrics_.store_corruptions = reg->GetCounter("serve.store.corruptions");
  metrics_.store_misses = reg->GetCounter("serve.store.misses");
  metrics_.recompute_attempts = reg->GetCounter("serve.recompute.attempts");
  metrics_.recompute_failures = reg->GetCounter("serve.recompute.failures");
  metrics_.breaker_rejections = reg->GetCounter("serve.breaker.rejections");
  metrics_.breaker_transitions = reg->GetCounter("serve.breaker.transitions");
  metrics_.deadline_degradations =
      reg->GetCounter("serve.deadline_degradations");
  metrics_.request_micros = reg->GetHistogram("serve.request.micros");
  for (int t = 0; t < 4; ++t) {
    metrics_.tier_served[t] =
        reg->GetCounter(StrFormat("serve.tier_served.%d", t + 1));
    metrics_.tier_micros[t] =
        reg->GetHistogram(StrFormat("serve.tier.%d.micros", t + 1));
  }

  if (backends_.monitor != nullptr) {
    obs::Monitor* mon = backends_.monitor;
    live_.requests = mon->GetCounter("serve.requests");
    live_.errors = mon->GetCounter("serve.errors");
    live_.store_attempts = mon->GetCounter("serve.store.attempts");
    live_.store_errors = mon->GetCounter("serve.store.errors");
    live_.request_micros = mon->GetHistogram("serve.request.micros");
  }

  if (backends_.health != nullptr) {
    backends_.health->Register(
        "serve.circuit_breaker", [this]() -> obs::HealthReport {
          CircuitBreaker::State s = breaker_.state();
          obs::HealthStatus verdict =
              s == CircuitBreaker::State::kClosed
                  ? obs::HealthStatus::kServing
                  : (s == CircuitBreaker::State::kHalfOpen
                         ? obs::HealthStatus::kDegraded
                         : obs::HealthStatus::kUnhealthy);
          return {verdict, StrFormat("breaker %s after %llu transition(s)",
                                     CircuitStateName(s),
                                     static_cast<unsigned long long>(
                                         breaker_.transitions()))};
        });
    backends_.health->Register(
        "serve.vector_store", [this]() -> obs::HealthReport {
          if (live_.store_attempts == nullptr) {
            return {obs::HealthStatus::kServing, "no live telemetry"};
          }
          // Reachability from the last 10s of real traffic: flaky above
          // 10% failed lookups, unreachable above 50%.
          const int64_t window = 10 * 1000000LL;
          uint64_t attempts = live_.store_attempts->Sum(window);
          if (attempts == 0) {
            return {obs::HealthStatus::kServing, "idle (no recent lookups)"};
          }
          double error_rate =
              static_cast<double>(live_.store_errors->Sum(window)) /
              static_cast<double>(attempts);
          obs::HealthStatus verdict =
              error_rate > 0.5 ? obs::HealthStatus::kUnhealthy
                               : (error_rate > 0.1
                                      ? obs::HealthStatus::kDegraded
                                      : obs::HealthStatus::kServing);
          return {verdict,
                  StrFormat("error rate %s over %llu lookup(s)",
                            obs::FormatMetricValue(error_rate).c_str(),
                            static_cast<unsigned long long>(attempts))};
        });
  }
}

RecommendationService::~RecommendationService() {
  // The probes capture `this`; they must not outlive the service.
  if (backends_.health != nullptr) {
    backends_.health->Unregister("serve.circuit_breaker");
    backends_.health->Unregister("serve.vector_store");
  }
}

StatusOr<std::vector<float>> RecommendationService::FetchVector(
    store::EntityKind kind, int id, const DeadlineBudget& budget,
    ServeStats* stats) {
  obs::ScopedSpan span("serve.fetch_vector");
  span.AddTag("kind", kind == store::EntityKind::kUser ? "user" : "event");
  Status last = Status::Unavailable("vector fetch never attempted");
  int attempts_made = 0;
  for (int attempt = 0; attempt < config_.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      int64_t remaining = budget.RemainingMicros();
      if (remaining <= 0) break;
      int64_t backoff = BackoffMicros(config_.retry, attempt - 1,
                                      jitter_rng_);
      // Cap the wait at the remaining budget: we may still overshoot by
      // the duration of the attempt itself, but never by a full backoff.
      backends_.clock->SleepMicros(std::min(backoff, remaining));
      ++stats->store_retries;
    }
    if (budget.Exhausted()) break;
    ++stats->store_attempts;
    ++attempts_made;
    StatusOr<std::vector<float>> result = backends_.store->Get(kind, id);
    if (result.ok()) {
      span.AddTag("attempts", StrFormat("%d", attempts_made));
      span.AddTag("outcome", "hit");
      return result;
    }
    last = std::move(result).status();
    if (last.code() == StatusCode::kNotFound) {
      ++stats->store_misses;
      span.AddTag("attempts", StrFormat("%d", attempts_made));
      span.AddTag("outcome", "miss");
      return last;  // deterministic: retrying a miss cannot help
    }
    if (last.code() == StatusCode::kCorruption) {
      ++stats->store_corruptions;
      span.AddTag("attempts", StrFormat("%d", attempts_made));
      span.AddTag("outcome", "corrupt");
      return last;  // stored bytes are bad; recompute instead
    }
    ++stats->store_transient_errors;
    if (!IsRetriableError(last)) {
      span.AddTag("attempts", StrFormat("%d", attempts_made));
      span.AddTag("outcome", "error");
      return last;
    }
  }
  span.AddTag("attempts", StrFormat("%d", attempts_made));
  if (budget.Exhausted()) {
    span.AddTag("outcome", "deadline");
    return Status::DeadlineExceeded("vector fetch budget exhausted");
  }
  span.AddTag("outcome", "error");
  return last;
}

RecommendationService::ResolvedVector RecommendationService::ResolveVector(
    store::EntityKind kind, int id, const DeadlineBudget& budget,
    ServeStats* stats) {
  StatusOr<std::vector<float>> fetched =
      FetchVector(kind, id, budget, stats);
  if (fetched.ok()) return ResolvedVector(std::move(fetched), false);
  if (!backends_.recompute || budget.Exhausted()) {
    return ResolvedVector(std::move(fetched), false);
  }
  if (!breaker_.AllowRequest()) {
    ++stats->breaker_rejections;
    return ResolvedVector(std::move(fetched), false);
  }
  ++stats->recompute_attempts;
  obs::ScopedSpan span("serve.recompute");
  span.AddTag("kind", kind == store::EntityKind::kUser ? "user" : "event");
  StatusOr<std::vector<float>> computed = backends_.recompute(kind, id);
  if (computed.ok()) {
    breaker_.RecordSuccess();
    backends_.store->Put(kind, id, *computed);
    span.AddTag("outcome", "ok");
    return ResolvedVector(std::move(computed), true);
  }
  breaker_.RecordFailure();
  ++stats->recompute_failures;
  span.AddTag("outcome", "failed");
  span.KeepTrace();
  return ResolvedVector(std::move(computed), false);
}

double RecommendationService::ScoreFull(
    int user, int event, int day, const std::vector<float>& user_vec,
    const std::vector<float>& event_vec) const {
  std::vector<float> row;
  backends_.assembler->ExtractRowWithReps(user, event, day,
                                          backends_.primary_features,
                                          &user_vec, &event_vec, &row);
  return backends_.primary->PredictProbability(row.data());
}

double RecommendationService::ScoreFallback(int user, int event,
                                            int day) const {
  std::vector<float> row;
  backends_.assembler->ExtractRow(user, event, day,
                                  backends_.fallback_features, &row);
  return backends_.fallback->PredictProbability(row.data());
}

RankResponse RecommendationService::Rank(int user,
                                         const std::vector<int>& candidates,
                                         int day, int64_t budget_micros) {
  RankResponse response;
  ServeStats& st = response.stats;
  st.requests = 1;
  st.candidates = candidates.size();
  uint64_t breaker_transitions_before = breaker_.transitions();
  // Root span of this request's trace; every nested span (fetch, retry,
  // recompute, per-candidate scoring — including work ParallelFor moves to
  // pool threads) shares its trace id.
  obs::ScopedSpan request_span("serve.request");
  request_span.AddTag("user", StrFormat("%d", user));
  request_span.AddTag("candidates",
                      StrFormat("%zu", candidates.size()));
  request_span.AddTag("budget_us",
                      StrFormat("%lld",
                                static_cast<long long>(budget_micros)));
  int64_t start = backends_.clock->NowMicros();
  // Cost attribution window: CPU samples and heap bytes this thread
  // tallies between here and the end of the request (the Rank path runs
  // entirely on the serving thread, so the delta is the request's cost).
  const obs::ThreadCostSnapshot request_cost_open = obs::ThreadCost();
  DeadlineBudget budget(backends_.clock, budget_micros);

  // The user vector is shared by every candidate: resolve it once.
  ResolvedVector user_vec = ResolveVector(store::EntityKind::kUser, user,
                                          budget, &st);

  response.ranking.reserve(candidates.size());
  for (int event : candidates) {
    int64_t candidate_start = backends_.clock->NowMicros();
    obs::ScopedSpan candidate_span("serve.candidate");
    candidate_span.AddTag("event", StrFormat("%d", event));
    RankedCandidate rc;
    rc.event = event;
    if (!budget.Exhausted() && user_vec.vec.ok()) {
      ResolvedVector event_vec = ResolveVector(store::EntityKind::kEvent,
                                               event, budget, &st);
      if (event_vec.vec.ok()) {
        rc.score = ScoreFull(user, event, day, *user_vec.vec,
                             *event_vec.vec);
        rc.tier = (user_vec.recomputed || event_vec.recomputed) ? 2 : 1;
      }
    }
    if (rc.tier == 0) {
      // Vectors unavailable (or budget gone): baseline-only score needs no
      // store, only local feature extraction — but it still costs compute,
      // so it too is gated on the budget.
      if (!budget.Exhausted()) {
        rc.score = ScoreFallback(user, event, day);
        rc.tier = 3;
      } else {
        ++st.deadline_degradations;
        rc.score = backends_.prior ? backends_.prior(user, event, day) : 0.0;
        rc.tier = 4;
      }
    }
    if (rc.tier >= 3) {
      EVREC_LOG_EVERY_N(WARN, 100)
          << "degraded candidate: user=" << user << " event=" << event
          << " served at tier " << rc.tier;
    }
    candidate_span.AddTag("tier", StrFormat("%d", rc.tier));
    ++st.tier_served[rc.tier - 1];
    metrics_.tier_micros[rc.tier - 1]->RecordWithExemplar(
        static_cast<double>(backends_.clock->NowMicros() - candidate_start),
        candidate_span.trace_id());
    response.ranking.push_back(rc);
  }

  std::sort(response.ranking.begin(), response.ranking.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.event < b.event;
            });

  st.breaker_transitions = breaker_.transitions() -
                           breaker_transitions_before;
  response.elapsed_micros = backends_.clock->NowMicros() - start;
  lifetime_.Merge(st);

  // Tail-sampling: interesting requests are always retained regardless of
  // the sampler's keep fraction.
  const bool degraded = st.tier_served[2] + st.tier_served[3] > 0;
  const bool over_deadline =
      budget_micros > 0 && response.elapsed_micros > budget_micros;
  const bool had_errors = st.store_corruptions + st.store_transient_errors +
                              st.recompute_failures + st.breaker_rejections >
                          0;
  request_span.AddTag("elapsed_us",
                      StrFormat("%lld", static_cast<long long>(
                                            response.elapsed_micros)));
  if (degraded) request_span.AddTag("degraded", "1");
  if (over_deadline) request_span.AddTag("over_deadline", "1");
  if (had_errors) request_span.AddTag("errors", "1");
  if (degraded || over_deadline || had_errors) request_span.KeepTrace();

  // Mirror this request's deltas into the registry so the exported totals
  // track lifetime_stats() exactly (serve_test pins them bit-for-bit).
  metrics_.requests->Increment(st.requests);
  metrics_.candidates->Increment(st.candidates);
  metrics_.store_attempts->Increment(st.store_attempts);
  metrics_.store_retries->Increment(st.store_retries);
  metrics_.store_transient_errors->Increment(st.store_transient_errors);
  metrics_.store_corruptions->Increment(st.store_corruptions);
  metrics_.store_misses->Increment(st.store_misses);
  metrics_.recompute_attempts->Increment(st.recompute_attempts);
  metrics_.recompute_failures->Increment(st.recompute_failures);
  metrics_.breaker_rejections->Increment(st.breaker_rejections);
  metrics_.breaker_transitions->Increment(st.breaker_transitions);
  metrics_.deadline_degradations->Increment(st.deadline_degradations);
  for (int t = 0; t < 4; ++t) {
    metrics_.tier_served[t]->Increment(st.tier_served[t]);
  }
  metrics_.request_micros->RecordWithExemplar(
      static_cast<double>(response.elapsed_micros),
      request_span.trace_id());

  // Live telemetry + SLO accounting. RecordRequest runs before the root
  // span closes so a firing alert can still MarkKeep this trace.
  if (live_.requests != nullptr) {
    live_.requests->Add(1);
    if (had_errors) live_.errors->Add(1);
    live_.store_attempts->Add(st.store_attempts);
    live_.store_errors->Add(st.store_transient_errors +
                            st.store_corruptions);
    live_.request_micros->Record(
        static_cast<double>(response.elapsed_micros));
  }
  if (backends_.slo != nullptr) {
    backends_.slo->RecordRequest(had_errors, response.elapsed_micros,
                                 request_span.trace_id());
  }
  // Per-request profiler attribution, after RecordRequest: a firing alert
  // has already force-enabled an armed profiler and marked this trace, so
  // the cost entry merges into the incident placeholder.
  obs::Profiler* profiler = backends_.profiler != nullptr
                                ? backends_.profiler
                                : obs::Profiler::Global();
  if (profiler->collecting()) {
    const obs::ThreadCostSnapshot request_cost_close = obs::ThreadCost();
    const uint64_t cpu_samples =
        request_cost_close.cpu_samples - request_cost_open.cpu_samples;
    const uint64_t alloc_bytes =
        request_cost_close.alloc_bytes - request_cost_open.alloc_bytes;
    request_span.AddTag("cpu_samples",
                        StrFormat("%llu",
                                  static_cast<unsigned long long>(
                                      cpu_samples)));
    request_span.AddTag("alloc_bytes",
                        StrFormat("%llu",
                                  static_cast<unsigned long long>(
                                      alloc_bytes)));
    const bool slo_firing =
        backends_.slo != nullptr && backends_.slo->AnyFiring();
    profiler->NoteRequest(request_span.trace_id(), cpu_samples, alloc_bytes,
                          slo_firing);
  }
  return response;
}

}  // namespace serve
}  // namespace evrec
