#include "evrec/model/extraction_bank.h"

#include <algorithm>

namespace evrec {
namespace model {

ExtractionBank::ExtractionBank(int vocab_size, int embedding_dim,
                               const std::vector<int>& windows,
                               int module_out_dim, nn::PoolType pool)
    : table_(std::make_shared<nn::EmbeddingTable>(std::max(vocab_size, 1),
                                                  embedding_dim)),
      module_out_dim_(module_out_dim) {
  EVREC_CHECK(!windows.empty());
  modules_.reserve(windows.size());
  for (int w : windows) {
    modules_.emplace_back(table_, w, module_out_dim, pool);
  }
}

void ExtractionBank::RandomInit(Rng& rng, float embedding_scale) {
  table_->RandomInit(rng, embedding_scale);
  for (auto& m : modules_) m.XavierInit(rng);
}

void ExtractionBank::Forward(const text::EncodedText& input,
                             Context* ctx) const {
  ctx->modules.resize(modules_.size());
  ctx->output.assign(static_cast<size_t>(output_dim()), 0.0f);
  for (size_t i = 0; i < modules_.size(); ++i) {
    modules_[i].Forward(input, &ctx->modules[i]);
    std::copy(ctx->modules[i].output.begin(), ctx->modules[i].output.end(),
              ctx->output.begin() + static_cast<long>(i) * module_out_dim_);
  }
}

void ExtractionBank::Backward(const float* dout, const Context& ctx) {
  EVREC_CHECK_EQ(ctx.modules.size(), modules_.size());
  for (size_t i = 0; i < modules_.size(); ++i) {
    modules_[i].Backward(dout + static_cast<long>(i) * module_out_dim_,
                         ctx.modules[i]);
  }
}

void ExtractionBank::Backward(const float* dout, const Context& ctx,
                              GradBuffer* grads) const {
  EVREC_CHECK_EQ(ctx.modules.size(), modules_.size());
  EVREC_CHECK_EQ(grads->convs.size(), modules_.size());
  for (size_t i = 0; i < modules_.size(); ++i) {
    modules_[i].Backward(dout + static_cast<long>(i) * module_out_dim_,
                         ctx.modules[i], &grads->convs[i], &grads->table);
  }
}

ExtractionBank::GradBuffer ExtractionBank::MakeGradBuffer() const {
  GradBuffer g;
  g.convs.reserve(modules_.size());
  for (const auto& m : modules_) g.convs.push_back(m.MakeConvGradients());
  g.table = table_->MakeGradients();
  return g;
}

void ExtractionBank::AccumulateGradients(GradBuffer* grads) {
  for (size_t i = 0; i < modules_.size(); ++i) {
    modules_[i].AccumulateConvGradients(&grads->convs[i]);
  }
  table_->AccumulateGradients(&grads->table);
}

void ExtractionBank::EnableAdagrad() {
  table_->EnableAdagrad();
  for (auto& m : modules_) m.EnableAdagrad();
}

void ExtractionBank::Step(float lr) {
  for (auto& m : modules_) m.Step(lr);
  table_->Step(lr);
}

void ExtractionBank::ZeroGrad() {
  for (auto& m : modules_) m.ZeroGrad();
  table_->ZeroGrad();
}

void ExtractionBank::Serialize(BinaryWriter& w) const {
  w.WriteMagic("BANK");
  w.WriteI32(module_out_dim_);
  table_->Serialize(w);
  w.WriteI32(static_cast<int>(modules_.size()));
  for (const auto& m : modules_) m.Serialize(w);
}

void ExtractionBank::SerializeOptimizer(BinaryWriter& w) const {
  table_->SerializeOptimizer(w);
  for (const auto& m : modules_) m.conv().SerializeOptimizer(w);
}

void ExtractionBank::DeserializeOptimizer(BinaryReader& r) {
  table_->DeserializeOptimizer(r);
  for (auto& m : modules_) m.mutable_conv().DeserializeOptimizer(r);
}

ExtractionBank ExtractionBank::Deserialize(BinaryReader& r) {
  ExtractionBank bank;
  r.ExpectMagic("BANK");
  bank.module_out_dim_ = r.ReadI32();
  bank.table_ = std::make_shared<nn::EmbeddingTable>(
      nn::EmbeddingTable::Deserialize(r));
  int n = r.ReadI32();
  if (!r.ok() || n < 0) return bank;
  bank.modules_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n && r.ok(); ++i) {
    bank.modules_.push_back(
        nn::ConvTextModule::Deserialize(r, bank.table_));
  }
  return bank;
}

}  // namespace model
}  // namespace evrec
