// ExtractionBank: several ConvTextModules with different window sizes
// applied to the SAME input document, sharing ONE lookup table, with their
// outputs concatenated (paper §3.1.1-3.1.2: three text modules with windows
// 1/3/5 share the text lookup table; the categorical module has its own
// table and window 1).

#ifndef EVREC_MODEL_EXTRACTION_BANK_H_
#define EVREC_MODEL_EXTRACTION_BANK_H_

#include <memory>
#include <vector>

#include "evrec/nn/conv_text_module.h"

namespace evrec {
namespace model {

class ExtractionBank {
 public:
  // Creates the shared table (vocab_size x embedding_dim) and one module
  // per entry of `windows`.
  ExtractionBank(int vocab_size, int embedding_dim,
                 const std::vector<int>& windows, int module_out_dim,
                 nn::PoolType pool);

  struct Context {
    std::vector<nn::ConvContext> modules;
    std::vector<float> output;  // concatenated module outputs
  };

  // Detached gradients: one buffer per convolution plus one sparse buffer
  // for the shared table (see nn/linear_layer.h for the shard contract).
  struct GradBuffer {
    std::vector<nn::LinearLayer::Gradients> convs;
    nn::EmbeddingTable::Gradients table;
  };

  int output_dim() const {
    return static_cast<int>(modules_.size()) * module_out_dim_;
  }
  int num_modules() const { return static_cast<int>(modules_.size()); }
  const nn::ConvTextModule& module(int i) const { return modules_[i]; }
  nn::ConvTextModule& mutable_module(int i) { return modules_[i]; }
  const nn::EmbeddingTable& table() const { return *table_; }
  std::shared_ptr<nn::EmbeddingTable> shared_table() { return table_; }

  void RandomInit(Rng& rng, float embedding_scale = 0.1f);

  void Forward(const text::EncodedText& input, Context* ctx) const;

  // `dout` has output_dim() entries (the concatenation layout of Forward).
  void Backward(const float* dout, const Context& ctx);

  // Same math into an external buffer; const, concurrency-safe on
  // disjoint buffers.
  void Backward(const float* dout, const Context& ctx,
                GradBuffer* grads) const;

  GradBuffer MakeGradBuffer() const;

  // Folds `grads` into the internal accumulators (modules first, then the
  // shared table — mirroring Step's order) and clears it.
  void AccumulateGradients(GradBuffer* grads);

  void EnableAdagrad();

  // Steps every convolution and the shared table exactly once.
  void Step(float lr);
  void ZeroGrad();

  void Serialize(BinaryWriter& w) const;
  static ExtractionBank Deserialize(BinaryReader& r);

  // Adagrad accumulators of the shared table and every convolution, in
  // Serialize order. Checkpoint-only state (see nn/linear_layer.h).
  void SerializeOptimizer(BinaryWriter& w) const;
  void DeserializeOptimizer(BinaryReader& r);

 private:
  ExtractionBank() : module_out_dim_(0) {}

  std::shared_ptr<nn::EmbeddingTable> table_;
  std::vector<nn::ConvTextModule> modules_;
  int module_out_dim_;
};

}  // namespace model
}  // namespace evrec

#endif  // EVREC_MODEL_EXTRACTION_BANK_H_
