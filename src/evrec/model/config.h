// Hyper-parameters of the joint user-event representation model.
// Defaults follow the paper (§3.1-3.2.1): 64-d token vectors, 64-d module
// outputs, text windows {1,3,5}, categorical window {1}, 256-node hidden
// layer, 128-node representation layer, residual bypass, log-sum-exp
// pooling, theta_r = 0, lr decayed to 90% per epoch, <= 20 epochs.

#ifndef EVREC_MODEL_CONFIG_H_
#define EVREC_MODEL_CONFIG_H_

#include <vector>

#include "evrec/nn/conv_text_module.h"

namespace evrec {
namespace model {

struct JointModelConfig {
  // Shared dimensions.
  int embedding_dim = 64;       // token lookup vector length
  int module_out_dim = 64;      // each extraction module's output length
  int hidden_dim = 256;         // affine hidden layer
  int rep_dim = 128;            // representation layer (per side)

  // Extraction module windows.
  std::vector<int> text_windows = {1, 3, 5};
  std::vector<int> categorical_windows = {1};

  // Architecture switches (ablations).
  nn::PoolType pool = nn::PoolType::kLogSumExp;
  bool residual_bypass = true;

  // Embedding-table init scale: U(-s, s). Larger scales sharpen the
  // log-sum-exp pooling toward max pooling at init, which differentiates
  // long documents (a flat pooling softmax averages every document to the
  // same vector and stalls training).
  float embedding_init_scale = 1.0f;

  // Loss (Eq. 1).
  float theta_r = 0.0f;  // desired dissimilarity margin for negatives

  // Optimization. Adagrad gives per-coordinate adaptive rates, without
  // which the sparse lookup tables need far more than the paper's 20
  // epochs at our data scale.
  bool use_adagrad = true;
  float learning_rate = 0.05f;
  float lr_decay_per_epoch = 0.9f;  // "adjust learning rate to 90%"
  int max_epochs = 20;              // "converges well in under 20 epochs"
  int batch_size = 32;
  // Early stopping: stop when validation loss fails to improve by at least
  // `early_stop_tolerance` for `early_stop_patience` consecutive epochs.
  int early_stop_patience = 3;
  double early_stop_tolerance = 1e-4;
  // Fraction of training pairs held out for the early-stopping signal.
  double validation_fraction = 0.1;

  // Vocabulary building (DF filter; paper keeps total tables under 500k).
  int min_document_frequency = 2;
  size_t max_vocabulary_size = 500000;
  // Stop-token removal: drop tokens present in more than this fraction of
  // documents. Ubiquitous trigrams make every long document look alike,
  // which stalls the cosine loss (see nn/conv_text_module.h).
  double max_df_fraction = 0.25;

  uint64_t seed = 2017;

  // Derived sizes.
  int UserConcatDim() const {
    return module_out_dim * static_cast<int>(text_windows.size() +
                                             categorical_windows.size());
  }
  int EventConcatDim() const {
    return module_out_dim * static_cast<int>(text_windows.size());
  }
};

}  // namespace model
}  // namespace evrec

#endif  // EVREC_MODEL_CONFIG_H_
