// Tower: one sub-model of the joint network (left or right half of the
// paper's Figure 4). A tower is a list of extraction banks — each consuming
// its own input document — whose concatenated outputs feed a TowerHead.
//
// The user tower instantiates two banks (letter-trigram text with windows
// {1,3,5}; word-unigram categorical ids with window {1}); the event tower
// instantiates one (text, windows {1,3,5}).

#ifndef EVREC_MODEL_TOWER_H_
#define EVREC_MODEL_TOWER_H_

#include <vector>

#include "evrec/model/extraction_bank.h"
#include "evrec/nn/feature_norm.h"
#include "evrec/model/tower_head.h"

namespace evrec {
namespace model {

class Tower {
 public:
  // vocab_sizes[i] / windows[i] describe bank i.
  Tower(const std::vector<int>& vocab_sizes,
        const std::vector<std::vector<int>>& windows, int embedding_dim,
        int module_out_dim, int hidden_dim, int rep_dim, nn::PoolType pool,
        bool residual_bypass);

  struct Context {
    std::vector<ExtractionBank::Context> banks;
    std::vector<float> concat;   // standardized concatenated bank outputs
    TowerHead::Context head;

    // Backward workspace (see ConvContext for the mutable-scratch idiom).
    mutable std::vector<float> dconcat;
  };

  // Detached gradients for the whole tower: one buffer per bank plus the
  // head's three layers (the frozen FeatureNorm has no parameters).
  struct GradBuffer {
    std::vector<ExtractionBank::GradBuffer> banks;
    TowerHead::GradBuffer head;
  };

  int num_banks() const { return static_cast<int>(banks_.size()); }
  int concat_dim() const;
  int rep_dim() const { return head_.rep_dim(); }
  const ExtractionBank& bank(int i) const { return banks_[i]; }
  ExtractionBank& mutable_bank(int i) { return banks_[i]; }
  const TowerHead& head() const { return head_; }

  void RandomInit(Rng& rng, float embedding_scale = 0.1f);

  // Calibrates the frozen feature standardization (nn::FeatureNorm) from a
  // sample of encoded documents. Must run before training; see
  // nn/feature_norm.h for why pooled features need corpus centering.
  void CalibrateNormalizer(
      const std::vector<std::vector<text::EncodedText>>& sample_inputs,
      size_t max_samples = 4096);

  const nn::FeatureNorm& normalizer() const { return norm_; }

  // `inputs` supplies one encoded document per bank. The representation
  // vector is ctx->head.rep after the call.
  void Forward(const std::vector<text::EncodedText>& inputs,
               Context* ctx) const;

  // Convenience: forward and return the representation vector.
  std::vector<float> Represent(
      const std::vector<text::EncodedText>& inputs) const;

  void Backward(const float* drep, const Context& ctx);

  // Same math into an external buffer; const, concurrency-safe on
  // disjoint buffers (the parameters stay read-only).
  void Backward(const float* drep, const Context& ctx,
                GradBuffer* grads) const;

  GradBuffer MakeGradBuffer() const;

  // Folds `grads` into the internal accumulators and clears it. Must be
  // called from one thread, in fixed shard order, so the reduction is
  // deterministic (see model/trainer.h).
  void AccumulateGradients(GradBuffer* grads);

  void EnableAdagrad();
  void Step(float lr);
  void ZeroGrad();

  void Serialize(BinaryWriter& w) const;
  static Tower Deserialize(BinaryReader& r);

  // Adagrad accumulators of every bank and the head (checkpoint-only
  // state; see nn/linear_layer.h).
  void SerializeOptimizer(BinaryWriter& w) const;
  void DeserializeOptimizer(BinaryReader& r);

 private:
  Tower() : head_(1, 1, 1, false) {}

  std::vector<ExtractionBank> banks_;
  nn::FeatureNorm norm_;
  TowerHead head_;
};

}  // namespace model
}  // namespace evrec

#endif  // EVREC_MODEL_TOWER_H_
