#include "evrec/model/joint_model.h"

#include <cmath>

#include "evrec/util/math_util.h"

namespace evrec {
namespace model {

void CosineBackward(const std::vector<float>& a, const std::vector<float>& b,
                    double sim, double dsim, std::vector<float>* da,
                    std::vector<float>* db) {
  EVREC_CHECK_EQ(a.size(), b.size());
  const int n = static_cast<int>(a.size());
  double na2 = SquaredNorm(a.data(), n);
  double nb2 = SquaredNorm(b.data(), n);
  if (na2 < 1e-24 || nb2 < 1e-24) return;
  double inv_prod = 1.0 / std::sqrt(na2 * nb2);
  for (int i = 0; i < n; ++i) {
    (*da)[static_cast<size_t>(i)] += static_cast<float>(
        dsim * (b[static_cast<size_t>(i)] * inv_prod -
                sim * a[static_cast<size_t>(i)] / na2));
    (*db)[static_cast<size_t>(i)] += static_cast<float>(
        dsim * (a[static_cast<size_t>(i)] * inv_prod -
                sim * b[static_cast<size_t>(i)] / nb2));
  }
}

LossGrad Eq1Loss(double sim, float label, float theta_r) {
  if (label > 0.5f) {
    return {1.0 - sim, -1.0};
  }
  double margin = sim - theta_r;
  if (margin > 0.0) return {margin, 1.0};
  return {0.0, 0.0};
}

JointModel::JointModel()
    : user_tower_({1}, {{1}}, 1, 1, 1, 1, nn::PoolType::kLogSumExp, false),
      event_tower_({1}, {{1}}, 1, 1, 1, 1, nn::PoolType::kLogSumExp, false) {}

JointModel::JointModel(const JointModelConfig& config, int user_text_vocab,
                       int user_categorical_vocab, int event_text_vocab)
    : config_(config),
      user_tower_({user_text_vocab, user_categorical_vocab},
                  {config.text_windows, config.categorical_windows},
                  config.embedding_dim, config.module_out_dim,
                  config.hidden_dim, config.rep_dim, config.pool,
                  config.residual_bypass),
      event_tower_({event_text_vocab}, {config.text_windows},
                   config.embedding_dim, config.module_out_dim,
                   config.hidden_dim, config.rep_dim, config.pool,
                   config.residual_bypass) {}

void JointModel::RandomInit(Rng& rng) {
  user_tower_.RandomInit(rng, config_.embedding_init_scale);
  event_tower_.RandomInit(rng, config_.embedding_init_scale);
  if (config_.use_adagrad) {
    user_tower_.EnableAdagrad();
    event_tower_.EnableAdagrad();
  }
}

double JointModel::Similarity(
    const std::vector<text::EncodedText>& user_inputs,
    const std::vector<text::EncodedText>& event_inputs,
    PairContext* ctx) const {
  user_tower_.Forward(user_inputs, &ctx->user);
  event_tower_.Forward(event_inputs, &ctx->event);
  ctx->similarity = CosineSimilarity(
      ctx->user.head.rep.data(), ctx->event.head.rep.data(),
      static_cast<int>(ctx->user.head.rep.size()));
  return ctx->similarity;
}

double JointModel::Score(const std::vector<text::EncodedText>& user_inputs,
                         const std::vector<text::EncodedText>& event_inputs)
    const {
  PairContext ctx;
  return Similarity(user_inputs, event_inputs, &ctx);
}

double JointModel::AccumulatePairGradient(const PairContext& ctx,
                                          float label, float weight) {
  LossGrad lg = Eq1Loss(ctx.similarity, label, config_.theta_r);
  if (lg.dloss_dsim != 0.0 && weight != 0.0f) {
    std::vector<float> du(ctx.user.head.rep.size(), 0.0f);
    std::vector<float> de(ctx.event.head.rep.size(), 0.0f);
    CosineBackward(ctx.user.head.rep, ctx.event.head.rep, ctx.similarity,
                   lg.dloss_dsim * weight, &du, &de);
    user_tower_.Backward(du.data(), ctx.user);
    event_tower_.Backward(de.data(), ctx.event);
  }
  return weight * lg.loss;
}

double JointModel::AccumulatePairGradient(const PairContext& ctx, float label,
                                          float weight,
                                          GradBuffer* grads) const {
  LossGrad lg = Eq1Loss(ctx.similarity, label, config_.theta_r);
  if (lg.dloss_dsim != 0.0 && weight != 0.0f) {
    grads->du.assign(ctx.user.head.rep.size(), 0.0f);
    grads->de.assign(ctx.event.head.rep.size(), 0.0f);
    CosineBackward(ctx.user.head.rep, ctx.event.head.rep, ctx.similarity,
                   lg.dloss_dsim * weight, &grads->du, &grads->de);
    user_tower_.Backward(grads->du.data(), ctx.user, &grads->user);
    event_tower_.Backward(grads->de.data(), ctx.event, &grads->event);
  }
  return weight * lg.loss;
}

JointModel::GradBuffer JointModel::MakeGradBuffer() const {
  GradBuffer g;
  g.user = user_tower_.MakeGradBuffer();
  g.event = event_tower_.MakeGradBuffer();
  return g;
}

void JointModel::AccumulateGradients(GradBuffer* grads) {
  user_tower_.AccumulateGradients(&grads->user);
  event_tower_.AccumulateGradients(&grads->event);
}

void JointModel::Step(float lr) {
  user_tower_.Step(lr);
  event_tower_.Step(lr);
}

void JointModel::ZeroGrad() {
  user_tower_.ZeroGrad();
  event_tower_.ZeroGrad();
}

void JointModel::Serialize(BinaryWriter& w) const {
  w.WriteMagic("JNTM");
  // Config scalars that affect the serialized topology or inference.
  w.WriteI32(config_.embedding_dim);
  w.WriteI32(config_.module_out_dim);
  w.WriteI32(config_.hidden_dim);
  w.WriteI32(config_.rep_dim);
  w.WriteF32(config_.theta_r);
  w.WriteI32(static_cast<int>(config_.pool));
  w.WriteI32(config_.residual_bypass ? 1 : 0);
  w.WriteI32Vector(std::vector<int32_t>(config_.text_windows.begin(),
                                        config_.text_windows.end()));
  w.WriteI32Vector(std::vector<int32_t>(config_.categorical_windows.begin(),
                                        config_.categorical_windows.end()));
  user_tower_.Serialize(w);
  event_tower_.Serialize(w);
}

void JointModel::SerializeOptimizer(BinaryWriter& w) const {
  w.WriteMagic("JOPT");
  user_tower_.SerializeOptimizer(w);
  event_tower_.SerializeOptimizer(w);
}

void JointModel::DeserializeOptimizer(BinaryReader& r) {
  r.ExpectMagic("JOPT");
  user_tower_.DeserializeOptimizer(r);
  event_tower_.DeserializeOptimizer(r);
}

JointModel JointModel::Deserialize(BinaryReader& r) {
  JointModel m;
  r.ExpectMagic("JNTM");
  m.config_.embedding_dim = r.ReadI32();
  m.config_.module_out_dim = r.ReadI32();
  m.config_.hidden_dim = r.ReadI32();
  m.config_.rep_dim = r.ReadI32();
  m.config_.theta_r = r.ReadF32();
  m.config_.pool = static_cast<nn::PoolType>(r.ReadI32());
  m.config_.residual_bypass = r.ReadI32() != 0;
  std::vector<int32_t> tw = r.ReadI32Vector();
  std::vector<int32_t> cw = r.ReadI32Vector();
  m.config_.text_windows.assign(tw.begin(), tw.end());
  m.config_.categorical_windows.assign(cw.begin(), cw.end());
  m.user_tower_ = Tower::Deserialize(r);
  m.event_tower_ = Tower::Deserialize(r);
  return m;
}

}  // namespace model
}  // namespace evrec
