#include "evrec/model/trainer.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "evrec/obs/metrics.h"
#include "evrec/obs/profile.h"
#include "evrec/obs/trace.h"
#include "evrec/util/fault_injection.h"
#include "evrec/util/logging.h"
#include "evrec/util/math_util.h"

namespace evrec {
namespace model {

namespace {

// Everything one logical shard touches while working through its slice of
// a minibatch. Contexts and buffers persist across batches/epochs, so the
// steady-state hot loop performs no heap allocation.
struct ShardState {
  JointModel::PairContext ctx;
  JointModel::GradBuffer grads;
  double loss = 0.0;
  double grad_sq = 0.0;
};

std::vector<ShardState> MakeShardStates(const JointModel& model,
                                        int num_shards) {
  std::vector<ShardState> shards(static_cast<size_t>(num_shards));
  for (auto& s : shards) s.grads = model.MakeGradBuffer();
  return shards;
}

// Full mid-run trainer state as stored in one checkpoint. Deserialized
// into this temporary and installed into the live model only after the
// file's footer CRC has been verified.
struct TrainerCheckpoint {
  uint32_t grad_shards = 0;
  uint32_t next_epoch = 0;  // epochs completed == first epoch to run
  float lr = 0.0f;
  double best_val = 0.0;
  int32_t epochs_since_improvement = 0;
  int32_t rollbacks = 0;
  uint64_t train_pairs = 0;
  uint64_t val_pairs = 0;
  RngState post_split;  // rng right after the train/validation split
  RngState current;     // rng after the last completed epoch's shuffle
  std::optional<Tower> user_tower;
  std::optional<Tower> event_tower;
  std::vector<double> train_loss, validation_loss, grad_norms, epoch_micros;
};

void WriteRngState(BinaryWriter& w, const RngState& s) {
  w.WriteU64(s.state);
  w.WriteU64(s.inc);
}

RngState ReadRngState(BinaryReader& r) {
  RngState s;
  s.state = r.ReadU64();
  s.inc = r.ReadU64();
  return s;
}

Status ReadTrainerCheckpoint(CheckpointReader& r, TrainerCheckpoint* ck) {
  r.EnterSection("meta");
  ck->grad_shards = r.raw().ReadU32();
  ck->next_epoch = r.raw().ReadU32();
  ck->lr = r.raw().ReadF32();
  ck->best_val = r.raw().ReadF64();
  ck->epochs_since_improvement = r.raw().ReadI32();
  ck->rollbacks = r.raw().ReadI32();
  ck->train_pairs = r.raw().ReadU64();
  ck->val_pairs = r.raw().ReadU64();
  ck->post_split = ReadRngState(r.raw());
  ck->current = ReadRngState(r.raw());
  r.LeaveSection();

  r.EnterSection("model");
  ck->user_tower = Tower::Deserialize(r.raw());
  ck->event_tower = Tower::Deserialize(r.raw());
  r.LeaveSection();

  r.EnterSection("optimizer");
  ck->user_tower->DeserializeOptimizer(r.raw());
  ck->event_tower->DeserializeOptimizer(r.raw());
  r.LeaveSection();

  r.EnterSection("stats");
  ck->train_loss = r.raw().ReadDoubleVector();
  ck->validation_loss = r.raw().ReadDoubleVector();
  ck->grad_norms = r.raw().ReadDoubleVector();
  ck->epoch_micros = r.raw().ReadDoubleVector();
  r.LeaveSection();
  return r.status();
}

// Advances a probe generator by the draws `epochs` in-place shuffles of an
// `n`-element vector would consume. The Fisher-Yates swap pattern depends
// only on the drawn numbers, never the element values, so this replays the
// exact draw sequence without touching real data.
RngState ReplayShuffleDraws(const RngState& from, size_t n, uint32_t epochs) {
  Rng probe = Rng::FromState(from);
  std::vector<int> dummy(n);
  for (uint32_t e = 0; e < epochs; ++e) probe.Shuffle(dummy);
  return probe.SaveState();
}

}  // namespace

ThreadPool* RepTrainer::pool() const {
  if (config_.pool != nullptr) return config_.pool;
  if (owned_pool_ == nullptr) {
    // Thread-count-scaled infrastructure: excluded from allocation
    // tallies (see TwoStagePipeline::pool()).
    obs::ScopedTallySuppress suppress;
    owned_pool_ = std::make_unique<ThreadPool>(config_.threads);
  }
  return owned_pool_.get();
}

double RepTrainer::EvaluateLoss(const RepDataset& data,
                                const std::vector<RepPair>& pairs) const {
  if (pairs.empty()) return 0.0;
  const int num_shards = std::max(1, config_.grad_shards);
  std::vector<JointModel::PairContext> ctxs(
      static_cast<size_t>(num_shards));
  std::vector<double> shard_loss(static_cast<size_t>(num_shards), 0.0);
  const float theta_r = model_->config().theta_r;
  pool()->ParallelFor(num_shards, [&](int s) {
    // Span-wrapped so the shard's heap traffic is charged to this frame on
    // whichever thread runs it: allocation attribution stays byte-identical
    // across --threads values (a bare lambda would fold its allocations
    // into the caller's window only when run inline).
    obs::ScopedSpan shard_span("trainer.eval_shard");
    double loss = 0.0;
    for (size_t i = static_cast<size_t>(s); i < pairs.size();
         i += static_cast<size_t>(num_shards)) {
      const RepPair& p = pairs[i];
      double sim = model_->Similarity(data.user_inputs[p.user],
                                      data.event_inputs[p.event],
                                      &ctxs[static_cast<size_t>(s)]);
      loss += p.weight * Eq1Loss(sim, p.label, theta_r).loss;
    }
    shard_loss[static_cast<size_t>(s)] = loss;
  });
  double total = 0.0;
  for (double l : shard_loss) total += l;
  return total / static_cast<double>(pairs.size());
}

TrainStats RepTrainer::Train(const RepDataset& data, Rng& rng) const {
  EVREC_SPAN("trainer.train");
  const JointModelConfig& cfg = model_->config();
  TrainStats stats;

  // Deterministic train/validation split for the early-stopping signal.
  std::vector<RepPair> pairs = data.pairs;
  rng.Shuffle(pairs);
  size_t val_count = static_cast<size_t>(
      static_cast<double>(pairs.size()) * cfg.validation_fraction);
  val_count = std::min(val_count, pairs.size());
  std::vector<RepPair> val(pairs.end() - static_cast<long>(val_count),
                           pairs.end());
  pairs.resize(pairs.size() - val_count);
  EVREC_CHECK(!pairs.empty()) << "no training pairs";

  float lr = cfg.learning_rate;
  double best_val = 1e300;
  int epochs_since_improvement = 0;
  int start_epoch = 0;

  // Rollback anchor: the post-split pair order and rng state. A resumed or
  // rolled-back run reconstructs the exact stochastic trajectory by
  // replaying epoch shuffles from here.
  const RngState post_split_state = rng.SaveState();
  std::vector<RepPair> base_pairs;
  if (config_.checkpoints != nullptr) base_pairs = pairs;

  // Installs a verified checkpoint into the live model and trainer state.
  // Returns false (leaving everything untouched) when the checkpoint is
  // incompatible with this run's seed, shard count, or dataset split.
  auto install = [&](TrainerCheckpoint& ck, const char* what) {
    if (ck.grad_shards != static_cast<uint32_t>(config_.grad_shards) ||
        ck.train_pairs != pairs.size() || ck.val_pairs != val.size()) {
      EVREC_LOG(WARN) << what << " refused: grad_shards/pair counts differ "
                      << "(checkpoint " << ck.grad_shards << "/"
                      << ck.train_pairs << "/" << ck.val_pairs << ", run "
                      << config_.grad_shards << "/" << pairs.size() << "/"
                      << val.size() << ")";
      return false;
    }
    if (ck.post_split != post_split_state ||
        ReplayShuffleDraws(post_split_state, base_pairs.size(),
                           ck.next_epoch) != ck.current) {
      EVREC_LOG(WARN) << what << " refused: rng trajectory mismatch "
                      << "(different seed or dataset)";
      return false;
    }
    pairs = base_pairs;
    rng.RestoreState(post_split_state);
    for (uint32_t e = 0; e < ck.next_epoch; ++e) rng.Shuffle(pairs);
    model_->mutable_user_tower() = std::move(*ck.user_tower);
    model_->mutable_event_tower() = std::move(*ck.event_tower);
    if (cfg.use_adagrad) {
      // No-op when the optimizer section already enabled it (accumulators
      // are preserved); covers checkpoints written without optimizer state.
      model_->mutable_user_tower().EnableAdagrad();
      model_->mutable_event_tower().EnableAdagrad();
    }
    lr = ck.lr;
    best_val = ck.best_val;
    epochs_since_improvement = ck.epochs_since_improvement;
    start_epoch = static_cast<int>(ck.next_epoch);
    stats.train_loss = ck.train_loss;
    stats.validation_loss = ck.validation_loss;
    stats.grad_norms = ck.grad_norms;
    stats.epoch_micros = ck.epoch_micros;
    stats.epochs_run = static_cast<int>(ck.next_epoch);
    return true;
  };

  if (config_.checkpoints != nullptr && config_.resume) {
    TrainerCheckpoint ck;
    auto loaded = config_.checkpoints->LoadLatestValid(
        [&ck](CheckpointReader& r) { return ReadTrainerCheckpoint(r, &ck); });
    if (config_.checkpoints->corrupt_skipped() > 0) {
      obs::MetricRegistry::Global()
          ->GetCounter("checkpoint.corrupt_skipped")
          ->Increment(
              static_cast<uint64_t>(config_.checkpoints->corrupt_skipped()));
    }
    if (loaded.ok() && install(ck, "resume")) {
      stats.resumed_from_epoch = start_epoch;
      EVREC_LOG(INFO) << "resumed from checkpoint step " << loaded->step
                      << " (" << loaded->path << "), continuing at epoch "
                      << start_epoch;
    } else if (!loaded.ok()) {
      EVREC_LOG(INFO) << "no valid checkpoint to resume from ("
                      << loaded.status().ToString() << "); training fresh";
    }
  }

  ThreadPool* tp = pool();
  const int num_shards = std::max(1, config_.grad_shards);
  std::vector<ShardState> shards = MakeShardStates(*model_, num_shards);

  // Per-epoch telemetry lands in the global registry as time series keyed
  // by epoch index, so loss/lr curves survive the training run.
  obs::MetricRegistry* registry = obs::MetricRegistry::Global();
  obs::Series* loss_series = registry->GetSeries("trainer.train_loss");
  obs::Series* val_series = registry->GetSeries("trainer.val_loss");
  obs::Series* lr_series = registry->GetSeries("trainer.lr");
  obs::Series* grad_series = registry->GetSeries("trainer.grad_norm");
  obs::Series* time_series = registry->GetSeries("trainer.epoch_micros");
  obs::Histogram* epoch_hist =
      registry->GetHistogram("trainer.epoch.micros");
  // env.* = run environment, not workload: exporters that must be
  // byte-identical across machine shapes (OpenMetrics) exclude the family.
  registry->GetGauge("env.trainer.threads")
      ->Set(static_cast<double>(tp->num_threads()));
  // Per-shard timings (prefetched: the registry map must not be grown from
  // inside ParallelFor). Keyed by shard — part of the gradient layout and
  // thus thread-count-independent — not by worker.
  std::vector<obs::Histogram*> shard_hists;
  shard_hists.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shard_hists.push_back(registry->GetHistogram(
        "trainer.shard.micros.s" + std::to_string(s)));
  }
  // Profiler-backed cost series: per-epoch self time (epoch wall time
  // minus training-shard work) and heap traffic, plus per-shard
  // allocation histograms (prefetched for the same no-growth-in-
  // ParallelFor rule as the timing histograms above).
  obs::Series* self_series =
      registry->GetSeries("trainer.epoch.self_micros");
  obs::Series* alloc_series =
      registry->GetSeries("trainer.epoch.alloc_bytes");
  std::vector<obs::Histogram*> shard_alloc_hists;
  shard_alloc_hists.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shard_alloc_hists.push_back(registry->GetHistogram(
        "trainer.shard.alloc_bytes.s" + std::to_string(s)));
  }

  const size_t batch_size =
      static_cast<size_t>(std::max(1, cfg.batch_size));
  const float theta_r = cfg.theta_r;

  obs::Counter* nonfinite_counter =
      registry->GetCounter("trainer.nonfinite_epochs");
  obs::Counter* rollback_counter = registry->GetCounter("trainer.rollbacks");
  obs::Counter* ckpt_writes = registry->GetCounter("checkpoint.writes");
  obs::Counter* ckpt_failures =
      registry->GetCounter("checkpoint.write_failures");

  // Best finite train loss seen — the divergence baseline.
  double best_train = 1e300;
  for (double l : stats.train_loss) {
    if (std::isfinite(l) && l < best_train) best_train = l;
  }

  auto write_checkpoint = [&](int completed_epochs, double metric) {
    Status st = config_.checkpoints->Write(
        completed_epochs, metric, [&](CheckpointWriter& w) {
          w.BeginSection("meta");
          BinaryWriter& bw = w.raw();
          bw.WriteU32(static_cast<uint32_t>(config_.grad_shards));
          bw.WriteU32(static_cast<uint32_t>(completed_epochs));
          bw.WriteF32(lr);
          bw.WriteF64(best_val);
          bw.WriteI32(epochs_since_improvement);
          bw.WriteI32(stats.rollbacks);
          bw.WriteU64(pairs.size());
          bw.WriteU64(val.size());
          WriteRngState(bw, post_split_state);
          WriteRngState(bw, rng.SaveState());
          w.EndSection();
          // Towers only — not JointModel::Serialize — so installing a
          // checkpoint can never clobber the live training
          // hyper-parameters with serialized topology defaults.
          w.BeginSection("model");
          model_->user_tower().Serialize(w.raw());
          model_->event_tower().Serialize(w.raw());
          w.EndSection();
          w.BeginSection("optimizer");
          model_->user_tower().SerializeOptimizer(w.raw());
          model_->event_tower().SerializeOptimizer(w.raw());
          w.EndSection();
          w.BeginSection("stats");
          w.raw().WriteDoubleVector(stats.train_loss);
          w.raw().WriteDoubleVector(stats.validation_loss);
          w.raw().WriteDoubleVector(stats.grad_norms);
          w.raw().WriteDoubleVector(stats.epoch_micros);
          w.EndSection();
        });
    if (st.ok()) {
      ckpt_writes->Increment();
    } else {
      // A failed commit publishes nothing usable; training carries on and
      // the next interval tries again.
      ckpt_failures->Increment();
      EVREC_LOG(WARN) << "checkpoint write failed at epoch "
                      << completed_epochs << ": " << st.ToString();
    }
  };

  for (int epoch = start_epoch; epoch < cfg.max_epochs; ++epoch) {
    obs::ScopedSpan epoch_span("trainer.epoch");
    epoch_span.AddTag("epoch", std::to_string(epoch));
    int64_t epoch_start = obs::CurrentClock()->NowMicros();
    const obs::ThreadCostSnapshot epoch_cost_open = obs::ThreadCost();
    // Per-shard cost accumulators for this epoch. Slot s is only written
    // by whichever thread runs shard s in the current batch (batches are
    // sequential, ParallelFor is a barrier), so plain slots suffice and
    // the sums are thread-count-independent.
    std::vector<int64_t> shard_micros(static_cast<size_t>(num_shards), 0);
    std::vector<uint64_t> shard_alloc(static_cast<size_t>(num_shards), 0);
    rng.Shuffle(pairs);
    double epoch_loss = 0.0;
    double grad_sq = 0.0;
    for (size_t start = 0; start < pairs.size(); start += batch_size) {
      const size_t end = std::min(start + batch_size, pairs.size());
      // Shards backprop concurrently into private buffers; parameters
      // stay read-only until the reduction below.
      tp->ParallelFor(num_shards, [&](int s) {
        // Runs under the caller's re-installed trace context: this span's
        // parent is trainer.epoch even on a pool worker thread, and its id
        // depends only on the shard index, not the worker that ran it.
        obs::ScopedSpan shard_span("trainer.shard");
        shard_span.AddTag("shard", std::to_string(s));
        int64_t shard_start = obs::CurrentClock()->NowMicros();
        const obs::ThreadCostSnapshot shard_cost_open = obs::ThreadCost();
        ShardState& st = shards[static_cast<size_t>(s)];
        for (size_t i = start + static_cast<size_t>(s); i < end;
             i += static_cast<size_t>(num_shards)) {
          const RepPair& p = pairs[i];
          double sim = model_->Similarity(data.user_inputs[p.user],
                                          data.event_inputs[p.event],
                                          &st.ctx);
          st.loss += model_->AccumulatePairGradient(st.ctx, p.label,
                                                    p.weight, &st.grads);
          // Representation-layer gradient norm, read straight off the
          // du/de scratch AccumulatePairGradient just filled (only pairs
          // with a live gradient wrote it).
          LossGrad lg = Eq1Loss(sim, p.label, theta_r);
          if (lg.dloss_dsim != 0.0 && p.weight != 0.0f) {
            st.grad_sq +=
                SquaredNorm(st.grads.du.data(),
                            static_cast<int>(st.grads.du.size())) +
                SquaredNorm(st.grads.de.data(),
                            static_cast<int>(st.grads.de.size()));
          }
        }
        const int64_t shard_elapsed =
            obs::CurrentClock()->NowMicros() - shard_start;
        const uint64_t shard_bytes =
            obs::ThreadCost().alloc_bytes - shard_cost_open.alloc_bytes;
        shard_micros[static_cast<size_t>(s)] += shard_elapsed;
        shard_alloc[static_cast<size_t>(s)] += shard_bytes;
        shard_hists[static_cast<size_t>(s)]->Record(
            static_cast<double>(shard_elapsed));
        shard_alloc_hists[static_cast<size_t>(s)]->Record(
            static_cast<double>(shard_bytes));
      });
      // Fixed shard-order reduction: the one place gradients from
      // different shards meet, so results cannot depend on thread count.
      for (int s = 0; s < num_shards; ++s) {
        ShardState& st = shards[static_cast<size_t>(s)];
        model_->AccumulateGradients(&st.grads);
        epoch_loss += st.loss;
        grad_sq += st.grad_sq;
        st.loss = 0.0;
        st.grad_sq = 0.0;
      }
      // The final (possibly partial) batch steps at lr / leftover-count,
      // keeping the per-pair step size constant across the epoch.
      model_->Step(lr / static_cast<float>(end - start));
    }
    // Close the training allocation window before validation/checkpoint
    // work: the epoch series report training-phase heap traffic. Each
    // shard window is counted exactly once — windows of shards the caller
    // executed (s % num_threads == 0, caller is worker 0) are already
    // inside the caller's window, so subtract them before adding all
    // shard windows back.
    const uint64_t caller_window =
        obs::ThreadCost().alloc_bytes - epoch_cost_open.alloc_bytes;
    uint64_t caller_shard_bytes = 0;
    uint64_t all_shard_bytes = 0;
    for (int s = 0; s < num_shards; ++s) {
      all_shard_bytes += shard_alloc[static_cast<size_t>(s)];
      if (s % tp->num_threads() == 0) {
        caller_shard_bytes += shard_alloc[static_cast<size_t>(s)];
      }
    }
    const uint64_t epoch_alloc_bytes =
        caller_window - std::min(caller_shard_bytes, caller_window) +
        all_shard_bytes;

    epoch_loss /= static_cast<double>(pairs.size());
    stats.train_loss.push_back(epoch_loss);
    stats.epochs_run = epoch + 1;

    double val_loss = val.empty() ? epoch_loss : EvaluateLoss(data, val);
    stats.validation_loss.push_back(val_loss);
    double grad_norm = std::sqrt(grad_sq);
    stats.grad_norms.push_back(grad_norm);
    int64_t epoch_elapsed = obs::CurrentClock()->NowMicros() - epoch_start;
    stats.epoch_micros.push_back(static_cast<double>(epoch_elapsed));

    double x = static_cast<double>(epoch);
    loss_series->Append(x, epoch_loss);
    val_series->Append(x, val_loss);
    lr_series->Append(x, static_cast<double>(lr));
    grad_series->Append(x, grad_norm);
    time_series->Append(x, static_cast<double>(epoch_elapsed));
    epoch_hist->Record(static_cast<double>(epoch_elapsed));
    int64_t shard_micros_total = 0;
    for (int s = 0; s < num_shards; ++s) {
      shard_micros_total += shard_micros[static_cast<size_t>(s)];
    }
    self_series->Append(
        x, static_cast<double>(
               std::max<int64_t>(0, epoch_elapsed - shard_micros_total)));
    alloc_series->Append(x, static_cast<double>(epoch_alloc_bytes));
    EVREC_LOG(INFO) << "rep epoch " << epoch << " train_loss=" << epoch_loss
                    << " val_loss=" << val_loss << " lr=" << lr
                    << " grad_norm=" << grad_norm;

    // ---- numerical guardrails ----
    const bool nonfinite = !std::isfinite(epoch_loss) ||
                           !std::isfinite(val_loss) ||
                           !std::isfinite(grad_norm);
    if (nonfinite) nonfinite_counter->Increment();
    const bool exploded =
        config_.checkpoints != nullptr && best_train < 1e300 &&
        epoch_loss > config_.divergence_factor * best_train + 1e-12;
    if (nonfinite || exploded) {
      EVREC_LOG(WARN) << "rep epoch " << epoch << " diverged ("
                      << (nonfinite ? "non-finite loss/grad" : "loss explosion")
                      << ")";
      bool rolled_back = false;
      if (config_.checkpoints != nullptr &&
          stats.rollbacks < config_.max_rollbacks) {
        // Checkpoints are only written for epochs that passed these
        // checks, so the newest valid one is by construction "good".
        TrainerCheckpoint ck;
        auto good = config_.checkpoints->LoadLatestValid(
            [&ck](CheckpointReader& r) {
              return ReadTrainerCheckpoint(r, &ck);
            });
        if (good.ok() && install(ck, "rollback")) {
          ++stats.rollbacks;
          rollback_counter->Increment();
          // Cumulative cut: each retry of the same stretch steps smaller.
          lr = ck.lr * std::pow(config_.rollback_lr_cut, stats.rollbacks);
          best_train = 1e300;
          for (double l : stats.train_loss) {
            if (std::isfinite(l) && l < best_train) best_train = l;
          }
          EVREC_LOG(WARN) << "rolled back to epoch " << start_epoch
                          << " with lr=" << lr << " (rollback "
                          << stats.rollbacks << "/" << config_.max_rollbacks
                          << ")";
          epoch = start_epoch - 1;  // loop increment lands on start_epoch
          rolled_back = true;
        }
      }
      if (!rolled_back) {
        stats.diverged = true;
        EVREC_LOG(ERROR) << "training diverged with no rollback available "
                         << "(rollbacks used: " << stats.rollbacks << ")";
        break;
      }
      continue;
    }
    if (epoch_loss < best_train) best_train = epoch_loss;

    if (val_loss < best_val - cfg.early_stop_tolerance) {
      best_val = val_loss;
      epochs_since_improvement = 0;
    } else {
      ++epochs_since_improvement;
      if (epochs_since_improvement >= cfg.early_stop_patience) {
        stats.early_stopped = true;
        break;
      }
    }
    lr *= cfg.lr_decay_per_epoch;

    if (config_.checkpoints != nullptr &&
        (epoch + 1) % std::max(1, config_.checkpoint_every) == 0) {
      write_checkpoint(epoch + 1, val_loss);
    }
    // Test-armed preemption: stop exactly as a killed process would, with
    // whatever checkpoints are already durably committed.
    if (CrashPoints::Global()->Fire("trainer.epoch_end")) {
      stats.interrupted = true;
      EVREC_LOG(WARN) << "crash point 'trainer.epoch_end' fired after epoch "
                      << epoch << "; aborting run";
      break;
    }
  }
  stats.final_learning_rate = lr;
  return stats;
}

}  // namespace model
}  // namespace evrec
