#include "evrec/model/trainer.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "evrec/obs/metrics.h"
#include "evrec/obs/trace.h"
#include "evrec/util/logging.h"
#include "evrec/util/math_util.h"

namespace evrec {
namespace model {

namespace {

// Everything one logical shard touches while working through its slice of
// a minibatch. Contexts and buffers persist across batches/epochs, so the
// steady-state hot loop performs no heap allocation.
struct ShardState {
  JointModel::PairContext ctx;
  JointModel::GradBuffer grads;
  double loss = 0.0;
  double grad_sq = 0.0;
};

std::vector<ShardState> MakeShardStates(const JointModel& model,
                                        int num_shards) {
  std::vector<ShardState> shards(static_cast<size_t>(num_shards));
  for (auto& s : shards) s.grads = model.MakeGradBuffer();
  return shards;
}

}  // namespace

ThreadPool* RepTrainer::pool() const {
  if (config_.pool != nullptr) return config_.pool;
  if (owned_pool_ == nullptr) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.threads);
  }
  return owned_pool_.get();
}

double RepTrainer::EvaluateLoss(const RepDataset& data,
                                const std::vector<RepPair>& pairs) const {
  if (pairs.empty()) return 0.0;
  const int num_shards = std::max(1, config_.grad_shards);
  std::vector<JointModel::PairContext> ctxs(
      static_cast<size_t>(num_shards));
  std::vector<double> shard_loss(static_cast<size_t>(num_shards), 0.0);
  const float theta_r = model_->config().theta_r;
  pool()->ParallelFor(num_shards, [&](int s) {
    double loss = 0.0;
    for (size_t i = static_cast<size_t>(s); i < pairs.size();
         i += static_cast<size_t>(num_shards)) {
      const RepPair& p = pairs[i];
      double sim = model_->Similarity(data.user_inputs[p.user],
                                      data.event_inputs[p.event],
                                      &ctxs[static_cast<size_t>(s)]);
      loss += p.weight * Eq1Loss(sim, p.label, theta_r).loss;
    }
    shard_loss[static_cast<size_t>(s)] = loss;
  });
  double total = 0.0;
  for (double l : shard_loss) total += l;
  return total / static_cast<double>(pairs.size());
}

TrainStats RepTrainer::Train(const RepDataset& data, Rng& rng) const {
  EVREC_SPAN("trainer.train");
  const JointModelConfig& cfg = model_->config();
  TrainStats stats;

  // Deterministic train/validation split for the early-stopping signal.
  std::vector<RepPair> pairs = data.pairs;
  rng.Shuffle(pairs);
  size_t val_count = static_cast<size_t>(
      static_cast<double>(pairs.size()) * cfg.validation_fraction);
  val_count = std::min(val_count, pairs.size());
  std::vector<RepPair> val(pairs.end() - static_cast<long>(val_count),
                           pairs.end());
  pairs.resize(pairs.size() - val_count);
  EVREC_CHECK(!pairs.empty()) << "no training pairs";

  float lr = cfg.learning_rate;
  double best_val = 1e300;
  int epochs_since_improvement = 0;

  ThreadPool* tp = pool();
  const int num_shards = std::max(1, config_.grad_shards);
  std::vector<ShardState> shards = MakeShardStates(*model_, num_shards);

  // Per-epoch telemetry lands in the global registry as time series keyed
  // by epoch index, so loss/lr curves survive the training run.
  obs::MetricRegistry* registry = obs::MetricRegistry::Global();
  obs::Series* loss_series = registry->GetSeries("trainer.train_loss");
  obs::Series* val_series = registry->GetSeries("trainer.val_loss");
  obs::Series* lr_series = registry->GetSeries("trainer.lr");
  obs::Series* grad_series = registry->GetSeries("trainer.grad_norm");
  obs::Series* time_series = registry->GetSeries("trainer.epoch_micros");
  obs::Histogram* epoch_hist =
      registry->GetHistogram("trainer.epoch.micros");
  registry->GetGauge("trainer.threads")
      ->Set(static_cast<double>(tp->num_threads()));
  // Per-worker shard timings (prefetched: the registry map must not be
  // grown from inside ParallelFor).
  std::vector<obs::Histogram*> shard_hists;
  shard_hists.reserve(static_cast<size_t>(tp->num_threads()));
  for (int w = 0; w < tp->num_threads(); ++w) {
    shard_hists.push_back(registry->GetHistogram(
        "trainer.shard.micros.w" + std::to_string(w)));
  }

  const size_t batch_size =
      static_cast<size_t>(std::max(1, cfg.batch_size));
  const float theta_r = cfg.theta_r;

  for (int epoch = 0; epoch < cfg.max_epochs; ++epoch) {
    int64_t epoch_start = obs::CurrentClock()->NowMicros();
    rng.Shuffle(pairs);
    double epoch_loss = 0.0;
    double grad_sq = 0.0;
    for (size_t start = 0; start < pairs.size(); start += batch_size) {
      const size_t end = std::min(start + batch_size, pairs.size());
      // Shards backprop concurrently into private buffers; parameters
      // stay read-only until the reduction below.
      tp->ParallelFor(num_shards, [&](int s) {
        int64_t shard_start = obs::CurrentClock()->NowMicros();
        ShardState& st = shards[static_cast<size_t>(s)];
        for (size_t i = start + static_cast<size_t>(s); i < end;
             i += static_cast<size_t>(num_shards)) {
          const RepPair& p = pairs[i];
          double sim = model_->Similarity(data.user_inputs[p.user],
                                          data.event_inputs[p.event],
                                          &st.ctx);
          st.loss += model_->AccumulatePairGradient(st.ctx, p.label,
                                                    p.weight, &st.grads);
          // Representation-layer gradient norm, read straight off the
          // du/de scratch AccumulatePairGradient just filled (only pairs
          // with a live gradient wrote it).
          LossGrad lg = Eq1Loss(sim, p.label, theta_r);
          if (lg.dloss_dsim != 0.0 && p.weight != 0.0f) {
            st.grad_sq +=
                SquaredNorm(st.grads.du.data(),
                            static_cast<int>(st.grads.du.size())) +
                SquaredNorm(st.grads.de.data(),
                            static_cast<int>(st.grads.de.size()));
          }
        }
        shard_hists[static_cast<size_t>(s % tp->num_threads())]->Record(
            static_cast<double>(obs::CurrentClock()->NowMicros() -
                                shard_start));
      });
      // Fixed shard-order reduction: the one place gradients from
      // different shards meet, so results cannot depend on thread count.
      for (int s = 0; s < num_shards; ++s) {
        ShardState& st = shards[static_cast<size_t>(s)];
        model_->AccumulateGradients(&st.grads);
        epoch_loss += st.loss;
        grad_sq += st.grad_sq;
        st.loss = 0.0;
        st.grad_sq = 0.0;
      }
      // The final (possibly partial) batch steps at lr / leftover-count,
      // keeping the per-pair step size constant across the epoch.
      model_->Step(lr / static_cast<float>(end - start));
    }
    epoch_loss /= static_cast<double>(pairs.size());
    stats.train_loss.push_back(epoch_loss);
    stats.epochs_run = epoch + 1;

    double val_loss = val.empty() ? epoch_loss : EvaluateLoss(data, val);
    stats.validation_loss.push_back(val_loss);
    double grad_norm = std::sqrt(grad_sq);
    stats.grad_norms.push_back(grad_norm);
    int64_t epoch_elapsed = obs::CurrentClock()->NowMicros() - epoch_start;
    stats.epoch_micros.push_back(static_cast<double>(epoch_elapsed));

    double x = static_cast<double>(epoch);
    loss_series->Append(x, epoch_loss);
    val_series->Append(x, val_loss);
    lr_series->Append(x, static_cast<double>(lr));
    grad_series->Append(x, grad_norm);
    time_series->Append(x, static_cast<double>(epoch_elapsed));
    epoch_hist->Record(static_cast<double>(epoch_elapsed));
    EVREC_LOG(INFO) << "rep epoch " << epoch << " train_loss=" << epoch_loss
                    << " val_loss=" << val_loss << " lr=" << lr
                    << " grad_norm=" << grad_norm;

    if (val_loss < best_val - cfg.early_stop_tolerance) {
      best_val = val_loss;
      epochs_since_improvement = 0;
    } else {
      ++epochs_since_improvement;
      if (epochs_since_improvement >= cfg.early_stop_patience) {
        stats.early_stopped = true;
        break;
      }
    }
    lr *= cfg.lr_decay_per_epoch;
  }
  stats.final_learning_rate = lr;
  return stats;
}

}  // namespace model
}  // namespace evrec
