#include "evrec/model/trainer.h"

#include <algorithm>
#include <cmath>

#include "evrec/obs/metrics.h"
#include "evrec/obs/trace.h"
#include "evrec/util/logging.h"

namespace evrec {
namespace model {

double RepTrainer::EvaluateLoss(const RepDataset& data,
                                const std::vector<RepPair>& pairs) const {
  if (pairs.empty()) return 0.0;
  double total = 0.0;
  JointModel::PairContext ctx;
  for (const RepPair& p : pairs) {
    double sim = model_->Similarity(data.user_inputs[p.user],
                                    data.event_inputs[p.event], &ctx);
    total += p.weight * Eq1Loss(sim, p.label, model_->config().theta_r).loss;
  }
  return total / static_cast<double>(pairs.size());
}

TrainStats RepTrainer::Train(const RepDataset& data, Rng& rng) const {
  EVREC_SPAN("trainer.train");
  const JointModelConfig& cfg = model_->config();
  TrainStats stats;

  // Deterministic train/validation split for the early-stopping signal.
  std::vector<RepPair> pairs = data.pairs;
  rng.Shuffle(pairs);
  size_t val_count = static_cast<size_t>(
      static_cast<double>(pairs.size()) * cfg.validation_fraction);
  val_count = std::min(val_count, pairs.size());
  std::vector<RepPair> val(pairs.end() - static_cast<long>(val_count),
                           pairs.end());
  pairs.resize(pairs.size() - val_count);
  EVREC_CHECK(!pairs.empty()) << "no training pairs";

  float lr = cfg.learning_rate;
  double best_val = 1e300;
  int epochs_since_improvement = 0;
  JointModel::PairContext ctx;

  // Per-epoch telemetry lands in the global registry as time series keyed
  // by epoch index, so loss/lr curves survive the training run.
  obs::MetricRegistry* registry = obs::MetricRegistry::Global();
  obs::Series* loss_series = registry->GetSeries("trainer.train_loss");
  obs::Series* val_series = registry->GetSeries("trainer.val_loss");
  obs::Series* lr_series = registry->GetSeries("trainer.lr");
  obs::Series* grad_series = registry->GetSeries("trainer.grad_norm");
  obs::Series* time_series = registry->GetSeries("trainer.epoch_micros");
  obs::Histogram* epoch_hist =
      registry->GetHistogram("trainer.epoch.micros");

  // Rep-layer gradient scratch, reused across pairs.
  std::vector<float> du, de;

  for (int epoch = 0; epoch < cfg.max_epochs; ++epoch) {
    int64_t epoch_start = obs::CurrentClock()->NowMicros();
    rng.Shuffle(pairs);
    double epoch_loss = 0.0;
    double grad_sq = 0.0;
    size_t batch_count = 0;
    for (size_t i = 0; i < pairs.size(); ++i) {
      const RepPair& p = pairs[i];
      double sim = model_->Similarity(data.user_inputs[p.user],
                                      data.event_inputs[p.event], &ctx);
      // Representation-layer gradient norm: redo only the O(rep_dim)
      // cosine backward here (the tower backward inside
      // AccumulatePairGradient dominates the cost by orders of magnitude).
      LossGrad lg = Eq1Loss(sim, p.label, cfg.theta_r);
      du.assign(ctx.user.head.rep.size(), 0.0f);
      de.assign(ctx.event.head.rep.size(), 0.0f);
      CosineBackward(ctx.user.head.rep, ctx.event.head.rep, sim,
                     lg.dloss_dsim * p.weight, &du, &de);
      for (float g : du) grad_sq += static_cast<double>(g) * g;
      for (float g : de) grad_sq += static_cast<double>(g) * g;

      epoch_loss += model_->AccumulatePairGradient(ctx, p.label, p.weight);
      ++batch_count;
      if (batch_count == static_cast<size_t>(cfg.batch_size) ||
          i + 1 == pairs.size()) {
        model_->Step(lr / static_cast<float>(batch_count));
        batch_count = 0;
      }
    }
    epoch_loss /= static_cast<double>(pairs.size());
    stats.train_loss.push_back(epoch_loss);
    stats.epochs_run = epoch + 1;

    double val_loss = val.empty() ? epoch_loss : EvaluateLoss(data, val);
    stats.validation_loss.push_back(val_loss);
    double grad_norm = std::sqrt(grad_sq);
    stats.grad_norms.push_back(grad_norm);
    int64_t epoch_elapsed = obs::CurrentClock()->NowMicros() - epoch_start;
    stats.epoch_micros.push_back(static_cast<double>(epoch_elapsed));

    double x = static_cast<double>(epoch);
    loss_series->Append(x, epoch_loss);
    val_series->Append(x, val_loss);
    lr_series->Append(x, static_cast<double>(lr));
    grad_series->Append(x, grad_norm);
    time_series->Append(x, static_cast<double>(epoch_elapsed));
    epoch_hist->Record(static_cast<double>(epoch_elapsed));
    EVREC_LOG(INFO) << "rep epoch " << epoch << " train_loss=" << epoch_loss
                    << " val_loss=" << val_loss << " lr=" << lr
                    << " grad_norm=" << grad_norm;

    if (val_loss < best_val - cfg.early_stop_tolerance) {
      best_val = val_loss;
      epochs_since_improvement = 0;
    } else {
      ++epochs_since_improvement;
      if (epochs_since_improvement >= cfg.early_stop_patience) {
        stats.early_stopped = true;
        break;
      }
    }
    lr *= cfg.lr_decay_per_epoch;
  }
  stats.final_learning_rate = lr;
  return stats;
}

}  // namespace model
}  // namespace evrec
