// RepTrainer: minibatch SGD training loop for the joint model
// (paper §3.2.1): shuffled epochs, learning rate decayed to 90% per epoch,
// early stopping on a held-out validation slice, at most `max_epochs`
// (paper: converges in under 20).
//
// The dataset stores each user's and event's encoded documents once;
// training pairs reference them by index so a user appearing in thousands
// of impressions is encoded a single time.

#ifndef EVREC_MODEL_TRAINER_H_
#define EVREC_MODEL_TRAINER_H_

#include <vector>

#include "evrec/model/joint_model.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace model {

struct RepPair {
  int user;     // index into RepDataset::user_inputs
  int event;    // index into RepDataset::event_inputs
  float label;  // 1 = participated, 0 = not
  // Gradient weight; the paper's future-work extension ("clicks and views
  // information could be integrated into the training process") enters as
  // weak positive pairs with weight < 1.
  float weight = 1.0f;
};

struct RepDataset {
  // user_inputs[u] = {text document, categorical id document}.
  std::vector<std::vector<text::EncodedText>> user_inputs;
  // event_inputs[e] = {text document}.
  std::vector<std::vector<text::EncodedText>> event_inputs;
  std::vector<RepPair> pairs;

  int num_users() const { return static_cast<int>(user_inputs.size()); }
  int num_events() const { return static_cast<int>(event_inputs.size()); }
};

struct TrainStats {
  std::vector<double> train_loss;       // mean Eq. 1 loss per epoch
  std::vector<double> validation_loss;  // per epoch
  // L2 norm of the representation-layer gradient accumulated over the
  // epoch (the pair-level d loss / d v_u, d loss / d v_e flows) — the
  // cheapest faithful convergence/explosion signal.
  std::vector<double> grad_norms;
  std::vector<double> epoch_micros;  // wall time per epoch (obs clock)
  int epochs_run = 0;
  bool early_stopped = false;
  double final_learning_rate = 0.0;
};

class RepTrainer {
 public:
  explicit RepTrainer(JointModel* model) : model_(model) {
    EVREC_CHECK(model != nullptr);
  }

  // Trains in place. Uses model->config() for all hyper-parameters.
  TrainStats Train(const RepDataset& data, Rng& rng) const;

  // Mean Eq. 1 loss of `pairs` under the current parameters.
  double EvaluateLoss(const RepDataset& data,
                      const std::vector<RepPair>& pairs) const;

 private:
  JointModel* model_;
};

}  // namespace model
}  // namespace evrec

#endif  // EVREC_MODEL_TRAINER_H_
