// RepTrainer: minibatch SGD training loop for the joint model
// (paper §3.2.1): shuffled epochs, learning rate decayed to 90% per epoch,
// early stopping on a held-out validation slice, at most `max_epochs`
// (paper: converges in under 20).
//
// The dataset stores each user's and event's encoded documents once;
// training pairs reference them by index so a user appearing in thousands
// of impressions is encoded a single time.
//
// Data parallelism. Each minibatch is split into `grad_shards` logical
// shards (pair i of the batch goes to shard i % grad_shards). Shards run
// forward/backward against the shared, read-only model parameters and
// accumulate into shard-private JointModel::GradBuffers; the buffers are
// then folded into the model in shard order 0..S-1 and a single Step is
// taken. Because the shard count — not the thread count — fixes how the
// per-pair float gradients associate, training is bit-identical for a
// given seed whatever `threads` is; threads only decide how the shards
// are spread over workers (shard s runs on worker s % threads).

#ifndef EVREC_MODEL_TRAINER_H_
#define EVREC_MODEL_TRAINER_H_

#include <memory>
#include <vector>

#include "evrec/model/joint_model.h"
#include "evrec/util/checkpoint.h"
#include "evrec/util/rng.h"
#include "evrec/util/thread_pool.h"

namespace evrec {
namespace model {

struct RepPair {
  int user;     // index into RepDataset::user_inputs
  int event;    // index into RepDataset::event_inputs
  float label;  // 1 = participated, 0 = not
  // Gradient weight; the paper's future-work extension ("clicks and views
  // information could be integrated into the training process") enters as
  // weak positive pairs with weight < 1.
  float weight = 1.0f;
};

struct RepDataset {
  // user_inputs[u] = {text document, categorical id document}.
  std::vector<std::vector<text::EncodedText>> user_inputs;
  // event_inputs[e] = {text document}.
  std::vector<std::vector<text::EncodedText>> event_inputs;
  std::vector<RepPair> pairs;

  int num_users() const { return static_cast<int>(user_inputs.size()); }
  int num_events() const { return static_cast<int>(event_inputs.size()); }
};

struct TrainStats {
  std::vector<double> train_loss;       // mean Eq. 1 loss per epoch
  std::vector<double> validation_loss;  // per epoch
  // L2 norm of the representation-layer gradient accumulated over the
  // epoch (the pair-level d loss / d v_u, d loss / d v_e flows) — the
  // cheapest faithful convergence/explosion signal.
  std::vector<double> grad_norms;
  std::vector<double> epoch_micros;  // wall time per epoch (obs clock)
  int epochs_run = 0;
  bool early_stopped = false;
  double final_learning_rate = 0.0;

  // Crash-safety bookkeeping. `interrupted` means a crash point fired and
  // the run stopped mid-training (test harness for preemption);
  // `resumed_from_epoch` is the first epoch this call actually ran (-1 for
  // a fresh run); `rollbacks` counts divergence recoveries; `diverged`
  // means the run gave up after exhausting them.
  bool interrupted = false;
  int resumed_from_epoch = -1;
  int rollbacks = 0;
  bool diverged = false;
};

// Execution knobs for the data-parallel engine (the model's
// JointModelConfig keeps owning the learning hyper-parameters).
struct TrainerConfig {
  // Worker threads for the minibatch shards; <= 1 runs inline on the
  // caller. Affects wall-clock only, never results.
  int threads = 1;
  // Logical gradient shards per minibatch. This — not `threads` — fixes
  // the floating-point association of the batch gradient, so changing it
  // changes the trained bits (deterministically).
  int grad_shards = 8;
  // Optional shared pool (not owned). When null the trainer lazily makes
  // its own `threads`-wide pool.
  ThreadPool* pool = nullptr;

  // ---- crash safety (all inert when `checkpoints` is null) ----

  // Checkpoint manager (not owned). When set, the trainer commits its full
  // mid-run state (towers, optimizer accumulators, lr, early-stop
  // bookkeeping, rng state) every `checkpoint_every` epochs.
  CheckpointManager* checkpoints = nullptr;
  int checkpoint_every = 1;
  // Resume from the newest valid checkpoint before training. A resumed run
  // replays the epoch shuffles it skipped, verifies the replayed rng state
  // against the checkpointed one, and then continues — producing final
  // model bytes identical to the uninterrupted run at any thread count.
  // Incompatible checkpoints (different grad_shards / seed / dataset
  // split) are refused and training starts fresh.
  bool resume = false;

  // ---- numerical guardrails ----

  // An epoch whose train loss is non-finite, or exceeds
  // divergence_factor x the best train loss seen so far, is declared
  // divergent: the trainer rolls back to the last good checkpoint, cuts
  // the learning rate by rollback_lr_cut, and retries — at most
  // max_rollbacks times before giving up (stats.diverged). Non-finite
  // epochs without a checkpoint to roll back to end the run immediately.
  double divergence_factor = 3.0;
  int max_rollbacks = 3;
  float rollback_lr_cut = 0.5f;
};

class RepTrainer {
 public:
  explicit RepTrainer(JointModel* model, TrainerConfig config = {})
      : model_(model), config_(config) {
    EVREC_CHECK(model != nullptr);
  }

  const TrainerConfig& config() const { return config_; }

  // Trains in place. Uses model->config() for all hyper-parameters.
  TrainStats Train(const RepDataset& data, Rng& rng) const;

  // Mean Eq. 1 loss of `pairs` under the current parameters; sharded over
  // the pool, reduced in shard order (deterministic for any thread count).
  double EvaluateLoss(const RepDataset& data,
                      const std::vector<RepPair>& pairs) const;

 private:
  ThreadPool* pool() const;

  JointModel* model_;
  TrainerConfig config_;
  mutable std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace model
}  // namespace evrec

#endif  // EVREC_MODEL_TRAINER_H_
