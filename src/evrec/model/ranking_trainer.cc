#include "evrec/model/ranking_trainer.h"

#include <cmath>
#include <unordered_map>

#include "evrec/obs/metrics.h"
#include "evrec/obs/trace.h"
#include "evrec/util/logging.h"

namespace evrec {
namespace model {

namespace {

struct Contrast {
  int user;
  int pos_event;
  int neg_event;
};

// Per-user positive / negative event pools.
struct UserPools {
  std::vector<int> positives;
  std::vector<int> negatives;
};

std::vector<UserPools> BuildPools(const RepDataset& data) {
  std::vector<UserPools> pools(static_cast<size_t>(data.num_users()));
  for (const RepPair& p : data.pairs) {
    auto& pool = pools[static_cast<size_t>(p.user)];
    if (p.label > 0.5f) {
      pool.positives.push_back(p.event);
    } else {
      pool.negatives.push_back(p.event);
    }
  }
  return pools;
}

std::vector<Contrast> SampleContrasts(const std::vector<UserPools>& pools,
                                      int contrasts_per_positive,
                                      Rng& rng) {
  std::vector<Contrast> contrasts;
  for (size_t u = 0; u < pools.size(); ++u) {
    const UserPools& pool = pools[u];
    if (pool.positives.empty() || pool.negatives.empty()) continue;
    for (int pos : pool.positives) {
      for (int k = 0; k < contrasts_per_positive; ++k) {
        int neg = pool.negatives[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int>(pool.negatives.size()) - 1))];
        contrasts.push_back({static_cast<int>(u), pos, neg});
      }
    }
  }
  return contrasts;
}

}  // namespace

double RankingTrainer::EvaluateLoss(const RepDataset& data,
                                    const RankingConfig& config,
                                    Rng& rng) const {
  auto pools = BuildPools(data);
  auto contrasts = SampleContrasts(pools, config.contrasts_per_positive, rng);
  if (contrasts.empty()) return 0.0;
  double total = 0.0;
  JointModel::PairContext pos_ctx, neg_ctx;
  for (const Contrast& c : contrasts) {
    double sp = model_->Similarity(data.user_inputs[c.user],
                                   data.event_inputs[c.pos_event], &pos_ctx);
    double sn = model_->Similarity(data.user_inputs[c.user],
                                   data.event_inputs[c.neg_event], &neg_ctx);
    total += std::max(0.0, config.margin - (sp - sn));
  }
  return total / static_cast<double>(contrasts.size());
}

RankingStats RankingTrainer::Train(const RepDataset& data,
                                   const RankingConfig& config,
                                   Rng& rng) const {
  EVREC_SPAN("ranking.train");
  RankingStats stats;
  auto pools = BuildPools(data);
  float lr = config.learning_rate;
  JointModel::PairContext pos_ctx, neg_ctx;

  obs::MetricRegistry* registry = obs::MetricRegistry::Global();
  obs::Series* loss_series = registry->GetSeries("ranking.train_loss");
  obs::Series* lr_series = registry->GetSeries("ranking.lr");
  obs::Series* grad_series = registry->GetSeries("ranking.grad_norm");
  obs::Series* time_series = registry->GetSeries("ranking.epoch_micros");

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    obs::ScopedSpan epoch_span("ranking.epoch");
    epoch_span.AddTag("epoch", std::to_string(epoch));
    int64_t epoch_start = obs::CurrentClock()->NowMicros();
    auto contrasts =
        SampleContrasts(pools, config.contrasts_per_positive, rng);
    if (contrasts.empty()) break;
    rng.Shuffle(contrasts);

    double epoch_loss = 0.0;
    double grad_sq = 0.0;
    size_t batch_count = 0;
    for (size_t i = 0; i < contrasts.size(); ++i) {
      const Contrast& c = contrasts[i];
      double sp = model_->Similarity(data.user_inputs[c.user],
                                     data.event_inputs[c.pos_event],
                                     &pos_ctx);
      double sn = model_->Similarity(data.user_inputs[c.user],
                                     data.event_inputs[c.neg_event],
                                     &neg_ctx);
      double hinge = config.margin - (sp - sn);
      if (hinge > 0.0) {
        epoch_loss += hinge;
        // dL/dsp = -1, dL/dsn = +1; propagate through both contexts.
        // Both forwards share the user tower's weights, and each context
        // carries its own activations, so two backward passes accumulate
        // correctly.
        {
          std::vector<float> du(pos_ctx.user.head.rep.size(), 0.0f);
          std::vector<float> de(pos_ctx.event.head.rep.size(), 0.0f);
          CosineBackward(pos_ctx.user.head.rep, pos_ctx.event.head.rep, sp,
                         -1.0, &du, &de);
          for (float g : du) grad_sq += static_cast<double>(g) * g;
          for (float g : de) grad_sq += static_cast<double>(g) * g;
          model_->mutable_user_tower().Backward(du.data(), pos_ctx.user);
          model_->mutable_event_tower().Backward(de.data(), pos_ctx.event);
        }
        {
          std::vector<float> du(neg_ctx.user.head.rep.size(), 0.0f);
          std::vector<float> de(neg_ctx.event.head.rep.size(), 0.0f);
          CosineBackward(neg_ctx.user.head.rep, neg_ctx.event.head.rep, sn,
                         1.0, &du, &de);
          for (float g : du) grad_sq += static_cast<double>(g) * g;
          for (float g : de) grad_sq += static_cast<double>(g) * g;
          model_->mutable_user_tower().Backward(du.data(), neg_ctx.user);
          model_->mutable_event_tower().Backward(de.data(), neg_ctx.event);
        }
      }
      ++batch_count;
      if (batch_count == static_cast<size_t>(config.batch_size) ||
          i + 1 == contrasts.size()) {
        model_->Step(lr / static_cast<float>(batch_count));
        batch_count = 0;
      }
    }
    epoch_loss /= static_cast<double>(contrasts.size());
    stats.train_loss.push_back(epoch_loss);
    stats.epochs_run = epoch + 1;
    double x = static_cast<double>(epoch);
    loss_series->Append(x, epoch_loss);
    lr_series->Append(x, static_cast<double>(lr));
    grad_series->Append(x, std::sqrt(grad_sq));
    time_series->Append(
        x, static_cast<double>(obs::CurrentClock()->NowMicros() -
                               epoch_start));
    EVREC_LOG(INFO) << "ranking epoch " << epoch << " loss=" << epoch_loss
                    << " contrasts=" << contrasts.size();
    lr *= config.lr_decay_per_epoch;
  }
  return stats;
}

}  // namespace model
}  // namespace evrec
