// JointModel: the paper's joint user-event representation network
// (Figure 4). Two parallel towers connected by cosine similarity, trained
// with the pointwise contrastive loss of Eq. 1:
//
//   L(u,e) = 1 - s(u,e)              if y = 1 (participated)
//          = max(0, s(u,e) - theta_r) if y = 0
//
// Backward propagates d s / d v_u and d s / d v_e through both towers.

#ifndef EVREC_MODEL_JOINT_MODEL_H_
#define EVREC_MODEL_JOINT_MODEL_H_

#include <vector>

#include "evrec/model/config.h"
#include "evrec/model/tower.h"

namespace evrec {
namespace model {

// Gradient of cosine(a, b) w.r.t. both arguments, scaled by `dsim` and
// accumulated into da/db. No-op when either norm is ~0 (our zero-vector
// convention for empty documents). Exposed for unit testing.
void CosineBackward(const std::vector<float>& a, const std::vector<float>& b,
                    double sim, double dsim, std::vector<float>* da,
                    std::vector<float>* db);

// Eq. 1 loss value and its derivative w.r.t. the similarity.
struct LossGrad {
  double loss;
  double dloss_dsim;
};
LossGrad Eq1Loss(double sim, float label, float theta_r);

class JointModel {
 public:
  // Vocabulary sizes are fixed at construction (they size the lookup
  // tables); the config fixes everything else.
  JointModel(const JointModelConfig& config, int user_text_vocab,
             int user_categorical_vocab, int event_text_vocab);

  struct PairContext {
    Tower::Context user;
    Tower::Context event;
    double similarity = 0.0;
  };

  // Detached whole-model gradient state plus the per-pair cosine scratch.
  // The data-parallel trainer owns one buffer per logical shard; pairs of
  // a shard backprop into its buffer concurrently with other shards while
  // the model parameters stay read-only, then the buffers are folded in
  // fixed shard order (AccumulateGradients) for a deterministic reduction.
  struct GradBuffer {
    Tower::GradBuffer user;
    Tower::GradBuffer event;
    std::vector<float> du, de;  // d(loss)/d(rep) scratch, rep_dim each
  };

  const JointModelConfig& config() const { return config_; }
  const Tower& user_tower() const { return user_tower_; }
  const Tower& event_tower() const { return event_tower_; }
  Tower& mutable_user_tower() { return user_tower_; }
  Tower& mutable_event_tower() { return event_tower_; }

  void RandomInit(Rng& rng);

  // Calibrates both towers' feature standardization from the dataset's
  // encoded documents (run once after RandomInit, before training).
  template <typename RepDatasetT>
  void CalibrateNormalizers(const RepDatasetT& data) {
    user_tower_.CalibrateNormalizer(data.user_inputs);
    event_tower_.CalibrateNormalizer(data.event_inputs);
  }

  // Forward both towers; returns the cosine similarity.
  // user_inputs = {text, categorical ids}; event_inputs = {text}.
  double Similarity(const std::vector<text::EncodedText>& user_inputs,
                    const std::vector<text::EncodedText>& event_inputs,
                    PairContext* ctx) const;

  // Forward-only convenience (no reusable context).
  double Score(const std::vector<text::EncodedText>& user_inputs,
               const std::vector<text::EncodedText>& event_inputs) const;

  // Representation vectors for caching / combiner features.
  std::vector<float> UserVector(
      const std::vector<text::EncodedText>& user_inputs) const {
    return user_tower_.Represent(user_inputs);
  }
  std::vector<float> EventVector(
      const std::vector<text::EncodedText>& event_inputs) const {
    return event_tower_.Represent(event_inputs);
  }

  // Accumulates gradients for one labelled pair whose Similarity() context
  // is `ctx`; returns the (weighted) Eq. 1 loss. `weight` scales both the
  // loss and its gradient (multi-feedback training uses weights < 1 for
  // weak signals such as clicks/"interested").
  double AccumulatePairGradient(const PairContext& ctx, float label,
                                float weight = 1.0f);

  // Same pair gradient into an external buffer; const, so any number of
  // shards may run it concurrently on disjoint buffers.
  double AccumulatePairGradient(const PairContext& ctx, float label,
                                float weight, GradBuffer* grads) const;

  GradBuffer MakeGradBuffer() const;

  // Folds one shard buffer into the internal accumulators and clears it.
  void AccumulateGradients(GradBuffer* grads);

  // SGD update on every parameter; `lr` already includes batch scaling.
  void Step(float lr);
  void ZeroGrad();

  void Serialize(BinaryWriter& w) const;
  static JointModel Deserialize(BinaryReader& r);

  // Adagrad accumulators of both towers. Checkpoint-only state: model
  // artifacts (Serialize) carry parameters, checkpoints additionally
  // carry this so a resumed run continues with the exact per-coordinate
  // learning rates of the uninterrupted one.
  void SerializeOptimizer(BinaryWriter& w) const;
  void DeserializeOptimizer(BinaryReader& r);

 private:
  JointModel();

  JointModelConfig config_;
  Tower user_tower_;
  Tower event_tower_;
};

}  // namespace model
}  // namespace evrec

#endif  // EVREC_MODEL_JOINT_MODEL_H_
