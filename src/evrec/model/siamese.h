// Siamese event-tower pre-training (paper §3.2.1): "We take the event
// sub-net and construct a Siamese Network. We then sample a large number of
// events and feed the title and body text into the network as positive
// training instances. We also randomly pair title and body text from
// different events and use these as negative training instances."
//
// The resulting tower is an event-only semantic model usable for
// related-event search with zero user feedback, and its lookup table
// initializes the event side of the joint model.

#ifndef EVREC_MODEL_SIAMESE_H_
#define EVREC_MODEL_SIAMESE_H_

#include <vector>

#include "evrec/model/tower.h"
#include "evrec/util/checkpoint.h"
#include "evrec/util/rng.h"
#include "evrec/util/thread_pool.h"

namespace evrec {
namespace model {

// Defaults are conservative: a cosine Siamese net has a collapse saddle
// (all inputs mapped to one point, where the cosine gradient vanishes), so
// the learning rate is kept low and each positive is countered by two
// negatives.
struct SiameseConfig {
  float learning_rate = 0.02f;
  float lr_decay_per_epoch = 0.9f;
  int max_epochs = 10;
  int batch_size = 8;
  int negatives_per_positive = 2;
  float theta_r = 0.0f;
  // Data-parallel execution: same sharded-minibatch scheme as RepTrainer
  // (see model/trainer.h) — `grad_shards` fixes the arithmetic, `threads`
  // only the wall-clock. `pool` optionally shares a pool (not owned).
  int threads = 1;
  int grad_shards = 8;
  ThreadPool* pool = nullptr;

  // Crash safety (inert when `checkpoints` is null): commit the tower,
  // optimizer accumulators, lr and rng state every `checkpoint_every`
  // epochs; with `resume`, continue from the newest valid checkpoint with
  // bit-identical results to an uninterrupted run (see model/trainer.h).
  // Give the manager its own prefix (e.g. "siamese") when it shares a
  // directory with the rep trainer.
  CheckpointManager* checkpoints = nullptr;
  int checkpoint_every = 1;
  bool resume = false;
};

struct SiameseStats {
  std::vector<double> train_loss;  // per epoch
  int epochs_run = 0;
  bool interrupted = false;     // crash point fired mid-run
  int resumed_from_epoch = -1;  // -1 = fresh run
  bool diverged = false;        // non-finite epoch loss; run stopped
};

// Trains `tower` (a single-text-bank event tower) so that an event's title
// and body map to nearby representations. `titles[i]` / `bodies[i]` are the
// encoded halves of event i; both sides pass through the SAME weights.
SiameseStats SiamesePretrain(Tower* tower,
                             const std::vector<text::EncodedText>& titles,
                             const std::vector<text::EncodedText>& bodies,
                             const SiameseConfig& config, Rng& rng);

}  // namespace model
}  // namespace evrec

#endif  // EVREC_MODEL_SIAMESE_H_
