// Pairwise ranking objective — the alternative loss the paper sketches in
// §3.2.1: "Another possible way of defining the loss function is to
// consider a user's relative preference over a set of events (ranking
// loss). Though more flexible, it adds training complexity."
//
// For a user u with a participated event e+ and an unparticipated event
// e-, the hinge ranking loss is
//
//   L(u, e+, e-) = max(0, margin - (s(u, e+) - s(u, e-)))
//
// Each epoch samples `contrasts_per_positive` (e+, e-) pairs per positive;
// both event towers and the (shared) user tower receive gradients.

#ifndef EVREC_MODEL_RANKING_TRAINER_H_
#define EVREC_MODEL_RANKING_TRAINER_H_

#include <vector>

#include "evrec/model/trainer.h"

namespace evrec {
namespace model {

struct RankingConfig {
  float margin = 0.5f;
  int contrasts_per_positive = 2;
  float learning_rate = 0.05f;
  float lr_decay_per_epoch = 0.9f;
  int max_epochs = 10;
  int batch_size = 32;
};

struct RankingStats {
  std::vector<double> train_loss;  // mean hinge per epoch
  int epochs_run = 0;
};

class RankingTrainer {
 public:
  explicit RankingTrainer(JointModel* model) : model_(model) {
    EVREC_CHECK(model != nullptr);
  }

  // Trains on the same RepDataset as the pointwise trainer; pairs with
  // label 1 are positives, label 0 negatives. Users lacking either class
  // contribute nothing.
  RankingStats Train(const RepDataset& data, const RankingConfig& config,
                     Rng& rng) const;

  // Mean hinge loss over sampled contrasts (diagnostic).
  double EvaluateLoss(const RepDataset& data, const RankingConfig& config,
                      Rng& rng) const;

 private:
  JointModel* model_;
};

}  // namespace model
}  // namespace evrec

#endif  // EVREC_MODEL_RANKING_TRAINER_H_
