// Pooling-layer attribution (paper §5.3 / Figure 7): for each convolution
// window size, trace every output dimension's max-value window back to the
// input words it covers and accumulate per-word credit; the top-ranked
// words are the ones "spotted" by the representation model.
//
// Paper protocol: each of the 64 max-value windows credits the words it
// overlaps with 1/d each (d = window size in words). Our token stream is
// letter trigrams, so a window of d tokens covers between 1 and d distinct
// words; we credit each distinct covered word with 1/(#distinct covered
// words), which reduces to the paper's rule when tokens are words.

#ifndef EVREC_MODEL_ATTRIBUTION_H_
#define EVREC_MODEL_ATTRIBUTION_H_

#include <string>
#include <vector>

#include "evrec/model/extraction_bank.h"

namespace evrec {
namespace model {

struct WordCredit {
  int word_index;   // into the caller's word sequence
  double credit;    // accumulated max-pool contribution
};

struct ModuleAttribution {
  int window_size;
  std::vector<WordCredit> ranked_words;  // descending credit
};

// Runs `bank` on `input` and returns, for every module, the words ranked by
// their contribution to the pooling-layer maxima.
std::vector<ModuleAttribution> AttributeTopWords(
    const ExtractionBank& bank, const text::EncodedText& input);

// Convenience for reports: the top-k word strings per module, given the
// original word sequence the input was encoded from.
std::vector<std::vector<std::string>> TopWordStrings(
    const std::vector<ModuleAttribution>& attributions,
    const std::vector<std::string>& words, int k);

}  // namespace model
}  // namespace evrec

#endif  // EVREC_MODEL_ATTRIBUTION_H_
