#include "evrec/model/attribution.h"

#include <algorithm>
#include <map>
#include <set>

namespace evrec {
namespace model {

std::vector<ModuleAttribution> AttributeTopWords(
    const ExtractionBank& bank, const text::EncodedText& input) {
  ExtractionBank::Context ctx;
  bank.Forward(input, &ctx);

  std::vector<ModuleAttribution> out;
  out.reserve(static_cast<size_t>(bank.num_modules()));
  for (int m = 0; m < bank.num_modules(); ++m) {
    const nn::ConvContext& mc = ctx.modules[static_cast<size_t>(m)];
    const int d = bank.module(m).window_size();
    ModuleAttribution attr;
    attr.window_size = d;
    if (mc.empty) {
      out.push_back(std::move(attr));
      continue;
    }
    const int n = static_cast<int>(mc.token_ids.size());
    std::map<int, double> credit;  // word_index -> credit
    for (int k = 0; k < bank.module(m).out_dim(); ++k) {
      int win = mc.argmax_window[static_cast<size_t>(k)];
      std::set<int> covered;
      for (int p = 0; p < d; ++p) {
        int tok = win + p;
        if (tok >= n) break;
        covered.insert(mc.word_index[static_cast<size_t>(tok)]);
      }
      if (covered.empty()) continue;
      double share = 1.0 / static_cast<double>(covered.size());
      for (int w : covered) credit[w] += share;
    }
    attr.ranked_words.reserve(credit.size());
    for (const auto& [w, c] : credit) {
      attr.ranked_words.push_back({w, c});
    }
    std::sort(attr.ranked_words.begin(), attr.ranked_words.end(),
              [](const WordCredit& a, const WordCredit& b) {
                if (a.credit != b.credit) return a.credit > b.credit;
                return a.word_index < b.word_index;
              });
    out.push_back(std::move(attr));
  }
  return out;
}

std::vector<std::vector<std::string>> TopWordStrings(
    const std::vector<ModuleAttribution>& attributions,
    const std::vector<std::string>& words, int k) {
  std::vector<std::vector<std::string>> out;
  out.reserve(attributions.size());
  for (const auto& attr : attributions) {
    std::vector<std::string> top;
    for (const auto& wc : attr.ranked_words) {
      if (static_cast<int>(top.size()) >= k) break;
      if (wc.word_index >= 0 &&
          wc.word_index < static_cast<int>(words.size())) {
        top.push_back(words[static_cast<size_t>(wc.word_index)]);
      }
    }
    out.push_back(std::move(top));
  }
  return out;
}

}  // namespace model
}  // namespace evrec
