#include "evrec/model/siamese.h"

#include "evrec/model/joint_model.h"
#include "evrec/util/logging.h"
#include "evrec/util/math_util.h"

namespace evrec {
namespace model {

namespace {

struct SiamesePair {
  int title_event;
  int body_event;
  float label;
};

}  // namespace

SiameseStats SiamesePretrain(Tower* tower,
                             const std::vector<text::EncodedText>& titles,
                             const std::vector<text::EncodedText>& bodies,
                             const SiameseConfig& config, Rng& rng) {
  EVREC_CHECK(tower != nullptr);
  EVREC_CHECK_EQ(tower->num_banks(), 1);
  EVREC_CHECK_EQ(titles.size(), bodies.size());
  EVREC_CHECK(!titles.empty());
  const int n = static_cast<int>(titles.size());

  // Positive: (title_i, body_i). Negative: (title_i, body_j), j != i.
  std::vector<SiamesePair> pairs;
  pairs.reserve(static_cast<size_t>(n) *
                (1 + config.negatives_per_positive));
  for (int i = 0; i < n; ++i) {
    pairs.push_back({i, i, 1.0f});
    for (int k = 0; k < config.negatives_per_positive; ++k) {
      int j = rng.UniformInt(0, n - 1);
      if (j == i) j = (j + 1) % n;
      pairs.push_back({i, j, 0.0f});
    }
  }

  SiameseStats stats;
  float lr = config.learning_rate;
  Tower::Context title_ctx, body_ctx;
  std::vector<text::EncodedText> one_input(1);

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    rng.Shuffle(pairs);
    double epoch_loss = 0.0;
    size_t batch_count = 0;
    for (size_t idx = 0; idx < pairs.size(); ++idx) {
      const SiamesePair& p = pairs[idx];
      one_input[0] = titles[static_cast<size_t>(p.title_event)];
      tower->Forward(one_input, &title_ctx);
      one_input[0] = bodies[static_cast<size_t>(p.body_event)];
      tower->Forward(one_input, &body_ctx);

      double sim = CosineSimilarity(
          title_ctx.head.rep.data(), body_ctx.head.rep.data(),
          static_cast<int>(title_ctx.head.rep.size()));
      LossGrad lg = Eq1Loss(sim, p.label, config.theta_r);
      epoch_loss += lg.loss;
      if (lg.dloss_dsim != 0.0) {
        std::vector<float> da(title_ctx.head.rep.size(), 0.0f);
        std::vector<float> db(body_ctx.head.rep.size(), 0.0f);
        CosineBackward(title_ctx.head.rep, body_ctx.head.rep, sim,
                       lg.dloss_dsim, &da, &db);
        // Both halves share the tower's parameters: two backward passes
        // accumulate into the same gradient buffers.
        tower->Backward(da.data(), title_ctx);
        tower->Backward(db.data(), body_ctx);
      }
      ++batch_count;
      if (batch_count == static_cast<size_t>(config.batch_size) ||
          idx + 1 == pairs.size()) {
        tower->Step(lr / static_cast<float>(batch_count));
        batch_count = 0;
      }
    }
    epoch_loss /= static_cast<double>(pairs.size());
    stats.train_loss.push_back(epoch_loss);
    stats.epochs_run = epoch + 1;
    EVREC_LOG(INFO) << "siamese epoch " << epoch << " loss=" << epoch_loss;
    lr *= config.lr_decay_per_epoch;
  }
  return stats;
}

}  // namespace model
}  // namespace evrec
