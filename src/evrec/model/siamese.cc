#include "evrec/model/siamese.h"

#include <algorithm>
#include <memory>

#include "evrec/model/joint_model.h"
#include "evrec/util/logging.h"
#include "evrec/util/math_util.h"

namespace evrec {
namespace model {

namespace {

struct SiamesePair {
  int title_event;
  int body_event;
  float label;
};

// Shard-private state for the data-parallel loop (see model/trainer.cc for
// the scheme; here a single tower is shared by both halves of each pair).
struct SiameseShard {
  Tower::Context title_ctx, body_ctx;
  Tower::GradBuffer grads;
  std::vector<text::EncodedText> one_input =
      std::vector<text::EncodedText>(1);
  std::vector<float> da, db;
  double loss = 0.0;
};

}  // namespace

SiameseStats SiamesePretrain(Tower* tower,
                             const std::vector<text::EncodedText>& titles,
                             const std::vector<text::EncodedText>& bodies,
                             const SiameseConfig& config, Rng& rng) {
  EVREC_CHECK(tower != nullptr);
  EVREC_CHECK_EQ(tower->num_banks(), 1);
  EVREC_CHECK_EQ(titles.size(), bodies.size());
  EVREC_CHECK(!titles.empty());
  const int n = static_cast<int>(titles.size());

  // Positive: (title_i, body_i). Negative: (title_i, body_j), j != i.
  std::vector<SiamesePair> pairs;
  pairs.reserve(static_cast<size_t>(n) *
                (1 + config.negatives_per_positive));
  for (int i = 0; i < n; ++i) {
    pairs.push_back({i, i, 1.0f});
    for (int k = 0; k < config.negatives_per_positive; ++k) {
      int j = rng.UniformInt(0, n - 1);
      if (j == i) j = (j + 1) % n;
      pairs.push_back({i, j, 0.0f});
    }
  }

  SiameseStats stats;
  float lr = config.learning_rate;

  ThreadPool* tp = config.pool;
  std::unique_ptr<ThreadPool> owned_pool;
  if (tp == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(config.threads);
    tp = owned_pool.get();
  }
  const int num_shards = std::max(1, config.grad_shards);
  std::vector<SiameseShard> shards(static_cast<size_t>(num_shards));
  for (auto& s : shards) s.grads = tower->MakeGradBuffer();

  const size_t batch_size =
      static_cast<size_t>(std::max(1, config.batch_size));

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    rng.Shuffle(pairs);
    double epoch_loss = 0.0;
    for (size_t start = 0; start < pairs.size(); start += batch_size) {
      const size_t end = std::min(start + batch_size, pairs.size());
      tp->ParallelFor(num_shards, [&](int s) {
        SiameseShard& st = shards[static_cast<size_t>(s)];
        for (size_t idx = start + static_cast<size_t>(s); idx < end;
             idx += static_cast<size_t>(num_shards)) {
          const SiamesePair& p = pairs[idx];
          st.one_input[0] = titles[static_cast<size_t>(p.title_event)];
          tower->Forward(st.one_input, &st.title_ctx);
          st.one_input[0] = bodies[static_cast<size_t>(p.body_event)];
          tower->Forward(st.one_input, &st.body_ctx);

          double sim = CosineSimilarity(
              st.title_ctx.head.rep.data(), st.body_ctx.head.rep.data(),
              static_cast<int>(st.title_ctx.head.rep.size()));
          LossGrad lg = Eq1Loss(sim, p.label, config.theta_r);
          st.loss += lg.loss;
          if (lg.dloss_dsim != 0.0) {
            st.da.assign(st.title_ctx.head.rep.size(), 0.0f);
            st.db.assign(st.body_ctx.head.rep.size(), 0.0f);
            CosineBackward(st.title_ctx.head.rep, st.body_ctx.head.rep,
                           sim, lg.dloss_dsim, &st.da, &st.db);
            // Both halves share the tower's parameters: two backward
            // passes accumulate into the same shard buffer.
            tower->Backward(st.da.data(), st.title_ctx, &st.grads);
            tower->Backward(st.db.data(), st.body_ctx, &st.grads);
          }
        }
      });
      // Deterministic fixed-order reduction, then one step at the batch's
      // true size (the trailing partial batch uses its leftover count).
      for (int s = 0; s < num_shards; ++s) {
        SiameseShard& st = shards[static_cast<size_t>(s)];
        tower->AccumulateGradients(&st.grads);
        epoch_loss += st.loss;
        st.loss = 0.0;
      }
      tower->Step(lr / static_cast<float>(end - start));
    }
    epoch_loss /= static_cast<double>(pairs.size());
    stats.train_loss.push_back(epoch_loss);
    stats.epochs_run = epoch + 1;
    EVREC_LOG(INFO) << "siamese epoch " << epoch << " loss=" << epoch_loss;
    lr *= config.lr_decay_per_epoch;
  }
  return stats;
}

}  // namespace model
}  // namespace evrec
