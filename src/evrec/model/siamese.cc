#include "evrec/model/siamese.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "evrec/model/joint_model.h"
#include "evrec/obs/metrics.h"
#include "evrec/obs/profile.h"
#include "evrec/obs/trace.h"
#include "evrec/util/fault_injection.h"
#include "evrec/util/logging.h"
#include "evrec/util/math_util.h"

namespace evrec {
namespace model {

namespace {

struct SiamesePair {
  int title_event;
  int body_event;
  float label;
};

// Shard-private state for the data-parallel loop (see model/trainer.cc for
// the scheme; here a single tower is shared by both halves of each pair).
struct SiameseShard {
  Tower::Context title_ctx, body_ctx;
  Tower::GradBuffer grads;
  std::vector<text::EncodedText> one_input =
      std::vector<text::EncodedText>(1);
  std::vector<float> da, db;
  double loss = 0.0;
};

}  // namespace

SiameseStats SiamesePretrain(Tower* tower,
                             const std::vector<text::EncodedText>& titles,
                             const std::vector<text::EncodedText>& bodies,
                             const SiameseConfig& config, Rng& rng) {
  EVREC_CHECK(tower != nullptr);
  EVREC_CHECK_EQ(tower->num_banks(), 1);
  EVREC_CHECK_EQ(titles.size(), bodies.size());
  EVREC_CHECK(!titles.empty());
  const int n = static_cast<int>(titles.size());

  // Positive: (title_i, body_i). Negative: (title_i, body_j), j != i.
  std::vector<SiamesePair> pairs;
  pairs.reserve(static_cast<size_t>(n) *
                (1 + config.negatives_per_positive));
  for (int i = 0; i < n; ++i) {
    pairs.push_back({i, i, 1.0f});
    for (int k = 0; k < config.negatives_per_positive; ++k) {
      int j = rng.UniformInt(0, n - 1);
      if (j == i) j = (j + 1) % n;
      pairs.push_back({i, j, 0.0f});
    }
  }

  SiameseStats stats;
  float lr = config.learning_rate;
  int start_epoch = 0;

  // Resume anchor: rng state right after the deterministic pair build.
  // The build consumes rng draws, so an identically-seeded restart lands
  // on the same state with the same pairs; resuming then only needs the
  // skipped epoch shuffles replayed (the swap pattern of a Fisher-Yates
  // shuffle depends on the drawn numbers alone — see model/trainer.cc).
  const RngState post_build_state = rng.SaveState();

  if (config.checkpoints != nullptr && config.resume) {
    uint32_t next_epoch = 0;
    float ck_lr = 0.0f;
    uint64_t ck_pairs = 0;
    RngState ck_post_build, ck_current;
    std::optional<Tower> ck_tower;
    std::vector<double> ck_loss;
    auto loaded = config.checkpoints->LoadLatestValid(
        [&](CheckpointReader& r) {
          r.EnterSection("meta");
          next_epoch = r.raw().ReadU32();
          ck_lr = r.raw().ReadF32();
          ck_pairs = r.raw().ReadU64();
          ck_post_build.state = r.raw().ReadU64();
          ck_post_build.inc = r.raw().ReadU64();
          ck_current.state = r.raw().ReadU64();
          ck_current.inc = r.raw().ReadU64();
          r.LeaveSection();
          r.EnterSection("model");
          ck_tower = Tower::Deserialize(r.raw());
          r.LeaveSection();
          r.EnterSection("optimizer");
          ck_tower->DeserializeOptimizer(r.raw());
          r.LeaveSection();
          r.EnterSection("stats");
          ck_loss = r.raw().ReadDoubleVector();
          r.LeaveSection();
          return r.status();
        });
    bool compatible = loaded.ok() && ck_post_build == post_build_state &&
                      ck_pairs == pairs.size();
    if (compatible) {
      // Verify the replayed shuffle trajectory before touching anything.
      Rng probe = Rng::FromState(post_build_state);
      std::vector<int> dummy(pairs.size());
      for (uint32_t e = 0; e < next_epoch; ++e) probe.Shuffle(dummy);
      compatible = probe.SaveState() == ck_current;
    }
    if (compatible) {
      for (uint32_t e = 0; e < next_epoch; ++e) rng.Shuffle(pairs);
      *tower = std::move(*ck_tower);
      lr = ck_lr;
      stats.train_loss = ck_loss;
      stats.epochs_run = static_cast<int>(next_epoch);
      start_epoch = static_cast<int>(next_epoch);
      stats.resumed_from_epoch = start_epoch;
      EVREC_LOG(INFO) << "siamese resumed at epoch " << start_epoch
                      << " from " << loaded->path;
    } else if (loaded.ok()) {
      EVREC_LOG(WARN) << "siamese checkpoint incompatible with this run "
                      << "(seed/pair mismatch); training fresh";
    } else {
      EVREC_LOG(INFO) << "no valid siamese checkpoint ("
                      << loaded.status().ToString() << "); training fresh";
    }
  }

  ThreadPool* tp = config.pool;
  std::unique_ptr<ThreadPool> owned_pool;
  if (tp == nullptr) {
    // Thread-count-scaled infrastructure: excluded from allocation
    // tallies (see TwoStagePipeline::pool()).
    obs::ScopedTallySuppress suppress;
    owned_pool = std::make_unique<ThreadPool>(config.threads);
    tp = owned_pool.get();
  }
  const int num_shards = std::max(1, config.grad_shards);
  std::vector<SiameseShard> shards(static_cast<size_t>(num_shards));
  for (auto& s : shards) s.grads = tower->MakeGradBuffer();

  const size_t batch_size =
      static_cast<size_t>(std::max(1, config.batch_size));

  // Cost series (same layout as the rep trainer's): per-epoch self time
  // and heap traffic, per-shard timing/allocation histograms prefetched
  // so the registry map never grows inside ParallelFor.
  obs::MetricRegistry* registry = obs::MetricRegistry::Global();
  obs::Series* self_series =
      registry->GetSeries("siamese.epoch.self_micros");
  obs::Series* alloc_series =
      registry->GetSeries("siamese.epoch.alloc_bytes");
  std::vector<obs::Histogram*> shard_micros_hists;
  std::vector<obs::Histogram*> shard_alloc_hists;
  shard_micros_hists.reserve(static_cast<size_t>(num_shards));
  shard_alloc_hists.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shard_micros_hists.push_back(registry->GetHistogram(
        "siamese.shard.micros.s" + std::to_string(s)));
    shard_alloc_hists.push_back(registry->GetHistogram(
        "siamese.shard.alloc_bytes.s" + std::to_string(s)));
  }

  for (int epoch = start_epoch; epoch < config.max_epochs; ++epoch) {
    obs::ScopedSpan epoch_span("siamese.epoch");
    epoch_span.AddTag("epoch", std::to_string(epoch));
    const int64_t epoch_start = obs::CurrentClock()->NowMicros();
    const obs::ThreadCostSnapshot epoch_cost_open = obs::ThreadCost();
    // Slot s is only written by the thread running shard s in the current
    // batch (ParallelFor is a barrier), so plain slots are race-free and
    // the sums are thread-count-independent.
    std::vector<int64_t> shard_micros(static_cast<size_t>(num_shards), 0);
    std::vector<uint64_t> shard_alloc(static_cast<size_t>(num_shards), 0);
    rng.Shuffle(pairs);
    double epoch_loss = 0.0;
    for (size_t start = 0; start < pairs.size(); start += batch_size) {
      const size_t end = std::min(start + batch_size, pairs.size());
      tp->ParallelFor(num_shards, [&](int s) {
        obs::ScopedSpan shard_span("siamese.shard");
        shard_span.AddTag("shard", std::to_string(s));
        const int64_t shard_start = obs::CurrentClock()->NowMicros();
        const obs::ThreadCostSnapshot shard_cost_open = obs::ThreadCost();
        SiameseShard& st = shards[static_cast<size_t>(s)];
        for (size_t idx = start + static_cast<size_t>(s); idx < end;
             idx += static_cast<size_t>(num_shards)) {
          const SiamesePair& p = pairs[idx];
          st.one_input[0] = titles[static_cast<size_t>(p.title_event)];
          tower->Forward(st.one_input, &st.title_ctx);
          st.one_input[0] = bodies[static_cast<size_t>(p.body_event)];
          tower->Forward(st.one_input, &st.body_ctx);

          double sim = CosineSimilarity(
              st.title_ctx.head.rep.data(), st.body_ctx.head.rep.data(),
              static_cast<int>(st.title_ctx.head.rep.size()));
          LossGrad lg = Eq1Loss(sim, p.label, config.theta_r);
          st.loss += lg.loss;
          if (lg.dloss_dsim != 0.0) {
            st.da.assign(st.title_ctx.head.rep.size(), 0.0f);
            st.db.assign(st.body_ctx.head.rep.size(), 0.0f);
            CosineBackward(st.title_ctx.head.rep, st.body_ctx.head.rep,
                           sim, lg.dloss_dsim, &st.da, &st.db);
            // Both halves share the tower's parameters: two backward
            // passes accumulate into the same shard buffer.
            tower->Backward(st.da.data(), st.title_ctx, &st.grads);
            tower->Backward(st.db.data(), st.body_ctx, &st.grads);
          }
        }
        const int64_t shard_elapsed =
            obs::CurrentClock()->NowMicros() - shard_start;
        const uint64_t shard_bytes =
            obs::ThreadCost().alloc_bytes - shard_cost_open.alloc_bytes;
        shard_micros[static_cast<size_t>(s)] += shard_elapsed;
        shard_alloc[static_cast<size_t>(s)] += shard_bytes;
        shard_micros_hists[static_cast<size_t>(s)]->Record(
            static_cast<double>(shard_elapsed));
        shard_alloc_hists[static_cast<size_t>(s)]->Record(
            static_cast<double>(shard_bytes));
      });
      // Deterministic fixed-order reduction, then one step at the batch's
      // true size (the trailing partial batch uses its leftover count).
      for (int s = 0; s < num_shards; ++s) {
        SiameseShard& st = shards[static_cast<size_t>(s)];
        tower->AccumulateGradients(&st.grads);
        epoch_loss += st.loss;
        st.loss = 0.0;
      }
      tower->Step(lr / static_cast<float>(end - start));
    }
    // Epoch cost: caller-window bytes minus the caller-run shards (shard s
    // runs on worker s % num_threads, and the caller is worker 0), plus all
    // shard windows — thread-count-independent like trainer.cc's formula.
    const int64_t epoch_elapsed =
        obs::CurrentClock()->NowMicros() - epoch_start;
    const uint64_t caller_window =
        obs::ThreadCost().alloc_bytes - epoch_cost_open.alloc_bytes;
    uint64_t caller_shard_bytes = 0;
    uint64_t all_shard_bytes = 0;
    int64_t shard_micros_total = 0;
    for (int s = 0; s < num_shards; ++s) {
      all_shard_bytes += shard_alloc[static_cast<size_t>(s)];
      if (s % tp->num_threads() == 0) {
        caller_shard_bytes += shard_alloc[static_cast<size_t>(s)];
      }
      shard_micros_total += shard_micros[static_cast<size_t>(s)];
    }
    const uint64_t epoch_alloc_bytes =
        caller_window - std::min(caller_shard_bytes, caller_window) +
        all_shard_bytes;
    self_series->Append(
        static_cast<double>(epoch),
        static_cast<double>(
            std::max<int64_t>(0, epoch_elapsed - shard_micros_total)));
    alloc_series->Append(static_cast<double>(epoch),
                         static_cast<double>(epoch_alloc_bytes));

    epoch_loss /= static_cast<double>(pairs.size());
    stats.train_loss.push_back(epoch_loss);
    stats.epochs_run = epoch + 1;
    EVREC_LOG(INFO) << "siamese epoch " << epoch << " loss=" << epoch_loss;

    if (!std::isfinite(epoch_loss)) {
      obs::MetricRegistry::Global()
          ->GetCounter("trainer.nonfinite_epochs")
          ->Increment();
      stats.diverged = true;
      EVREC_LOG(ERROR) << "siamese epoch " << epoch
                       << " produced non-finite loss; stopping";
      break;
    }
    lr *= config.lr_decay_per_epoch;

    if (config.checkpoints != nullptr &&
        (epoch + 1) % std::max(1, config.checkpoint_every) == 0) {
      Status st = config.checkpoints->Write(
          epoch + 1, epoch_loss, [&](CheckpointWriter& w) {
            w.BeginSection("meta");
            w.raw().WriteU32(static_cast<uint32_t>(epoch + 1));
            w.raw().WriteF32(lr);
            w.raw().WriteU64(pairs.size());
            w.raw().WriteU64(post_build_state.state);
            w.raw().WriteU64(post_build_state.inc);
            RngState now = rng.SaveState();
            w.raw().WriteU64(now.state);
            w.raw().WriteU64(now.inc);
            w.EndSection();
            w.BeginSection("model");
            tower->Serialize(w.raw());
            w.EndSection();
            w.BeginSection("optimizer");
            tower->SerializeOptimizer(w.raw());
            w.EndSection();
            w.BeginSection("stats");
            w.raw().WriteDoubleVector(stats.train_loss);
            w.EndSection();
          });
      obs::MetricRegistry::Global()
          ->GetCounter(st.ok() ? "checkpoint.writes"
                               : "checkpoint.write_failures")
          ->Increment();
      if (!st.ok()) {
        EVREC_LOG(WARN) << "siamese checkpoint write failed: "
                        << st.ToString();
      }
    }
    if (CrashPoints::Global()->Fire("siamese.epoch_end")) {
      stats.interrupted = true;
      EVREC_LOG(WARN) << "crash point 'siamese.epoch_end' fired after epoch "
                      << epoch << "; aborting run";
      break;
    }
  }
  return stats;
}

}  // namespace model
}  // namespace evrec
