#include "evrec/model/tower_head.h"

#include "evrec/la/vec_ops.h"

namespace evrec {
namespace model {

TowerHead::TowerHead(int in_dim, int hidden_dim, int rep_dim,
                     bool residual_bypass)
    : hidden_layer_(in_dim, hidden_dim, /*has_bias=*/true),
      projection_(hidden_dim, rep_dim, /*has_bias=*/true),
      bypass_(in_dim, rep_dim, /*has_bias=*/false),
      residual_bypass_(residual_bypass) {}

void TowerHead::XavierInit(Rng& rng) {
  hidden_layer_.XavierInit(rng);
  projection_.XavierInit(rng);
  if (residual_bypass_) bypass_.XavierInit(rng);
}

void TowerHead::Forward(const float* x, Context* ctx) const {
  const int in = in_dim();
  const int hid = hidden_dim();
  const int rep = rep_dim();
  ctx->x.assign(x, x + in);
  ctx->h.resize(static_cast<size_t>(hid));
  ctx->rep.resize(static_cast<size_t>(rep));

  ctx->pre_h.resize(static_cast<size_t>(hid));
  hidden_layer_.Forward(x, ctx->pre_h.data());
  la::TanhForward(ctx->pre_h.data(), ctx->h.data(), hid);

  ctx->pre_r.resize(static_cast<size_t>(rep));
  projection_.Forward(ctx->h.data(), ctx->pre_r.data());
  if (residual_bypass_) {
    ctx->bypass_out.resize(static_cast<size_t>(rep));
    bypass_.Forward(x, ctx->bypass_out.data());
    la::Axpy(1.0f, ctx->bypass_out.data(), ctx->pre_r.data(), rep);
  }
  la::TanhForward(ctx->pre_r.data(), ctx->rep.data(), rep);
}

namespace {

// Backward temporaries live in the context so repeated calls stop
// allocating; this prepares them for one pass.
void PrepareBackwardScratch(const TowerHead::Context& ctx, int hid, int rep) {
  ctx.dpre_r.resize(static_cast<size_t>(rep));
  ctx.dh.assign(static_cast<size_t>(hid), 0.0f);
  ctx.dpre_h.resize(static_cast<size_t>(hid));
}

}  // namespace

void TowerHead::Backward(const float* drep, const Context& ctx, float* dx) {
  const int hid = hidden_dim();
  const int rep = rep_dim();
  PrepareBackwardScratch(ctx, hid, rep);

  // Through the representation tanh.
  la::TanhBackward(ctx.rep.data(), drep, ctx.dpre_r.data(), rep);

  // Through the projection (and bypass) into dh / dx.
  projection_.Backward(ctx.h.data(), ctx.dpre_r.data(), ctx.dh.data());
  if (residual_bypass_) {
    bypass_.Backward(ctx.x.data(), ctx.dpre_r.data(), dx);
  }

  // Through the hidden tanh and the affine layer.
  la::TanhBackward(ctx.h.data(), ctx.dh.data(), ctx.dpre_h.data(), hid);
  hidden_layer_.Backward(ctx.x.data(), ctx.dpre_h.data(), dx);
}

void TowerHead::Backward(const float* drep, const Context& ctx, float* dx,
                         GradBuffer* grads) const {
  const int hid = hidden_dim();
  const int rep = rep_dim();
  PrepareBackwardScratch(ctx, hid, rep);

  la::TanhBackward(ctx.rep.data(), drep, ctx.dpre_r.data(), rep);

  projection_.Backward(ctx.h.data(), ctx.dpre_r.data(), ctx.dh.data(),
                       &grads->projection);
  if (residual_bypass_) {
    bypass_.Backward(ctx.x.data(), ctx.dpre_r.data(), dx, &grads->bypass);
  }

  la::TanhBackward(ctx.h.data(), ctx.dh.data(), ctx.dpre_h.data(), hid);
  hidden_layer_.Backward(ctx.x.data(), ctx.dpre_h.data(), dx,
                         &grads->hidden);
}

TowerHead::GradBuffer TowerHead::MakeGradBuffer() const {
  GradBuffer g;
  g.hidden = hidden_layer_.MakeGradients();
  g.projection = projection_.MakeGradients();
  if (residual_bypass_) g.bypass = bypass_.MakeGradients();
  return g;
}

void TowerHead::AccumulateGradients(GradBuffer* grads) {
  hidden_layer_.AccumulateGradients(&grads->hidden);
  projection_.AccumulateGradients(&grads->projection);
  if (residual_bypass_) bypass_.AccumulateGradients(&grads->bypass);
}

void TowerHead::EnableAdagrad() {
  hidden_layer_.EnableAdagrad();
  projection_.EnableAdagrad();
  if (residual_bypass_) bypass_.EnableAdagrad();
}

void TowerHead::Step(float lr) {
  hidden_layer_.Step(lr);
  projection_.Step(lr);
  if (residual_bypass_) bypass_.Step(lr);
}

void TowerHead::ZeroGrad() {
  hidden_layer_.ZeroGrad();
  projection_.ZeroGrad();
  bypass_.ZeroGrad();
}

void TowerHead::Serialize(BinaryWriter& w) const {
  w.WriteMagic("HEAD");
  w.WriteI32(residual_bypass_ ? 1 : 0);
  hidden_layer_.Serialize(w);
  projection_.Serialize(w);
  bypass_.Serialize(w);
}

void TowerHead::SerializeOptimizer(BinaryWriter& w) const {
  hidden_layer_.SerializeOptimizer(w);
  projection_.SerializeOptimizer(w);
  bypass_.SerializeOptimizer(w);
}

void TowerHead::DeserializeOptimizer(BinaryReader& r) {
  hidden_layer_.DeserializeOptimizer(r);
  projection_.DeserializeOptimizer(r);
  bypass_.DeserializeOptimizer(r);
}

TowerHead TowerHead::Deserialize(BinaryReader& r) {
  r.ExpectMagic("HEAD");
  int bypass = r.ReadI32();
  nn::LinearLayer hidden = nn::LinearLayer::Deserialize(r);
  nn::LinearLayer projection = nn::LinearLayer::Deserialize(r);
  nn::LinearLayer bypass_layer = nn::LinearLayer::Deserialize(r);
  TowerHead head(hidden.in_dim(), hidden.out_dim(), projection.out_dim(),
                 bypass != 0);
  if (r.ok()) {
    head.hidden_layer_ = std::move(hidden);
    head.projection_ = std::move(projection);
    head.bypass_ = std::move(bypass_layer);
  }
  return head;
}

}  // namespace model
}  // namespace evrec
