#include "evrec/model/tower_head.h"

#include "evrec/la/vec_ops.h"

namespace evrec {
namespace model {

TowerHead::TowerHead(int in_dim, int hidden_dim, int rep_dim,
                     bool residual_bypass)
    : hidden_layer_(in_dim, hidden_dim, /*has_bias=*/true),
      projection_(hidden_dim, rep_dim, /*has_bias=*/true),
      bypass_(in_dim, rep_dim, /*has_bias=*/false),
      residual_bypass_(residual_bypass) {}

void TowerHead::XavierInit(Rng& rng) {
  hidden_layer_.XavierInit(rng);
  projection_.XavierInit(rng);
  if (residual_bypass_) bypass_.XavierInit(rng);
}

void TowerHead::Forward(const float* x, Context* ctx) const {
  const int in = in_dim();
  const int hid = hidden_dim();
  const int rep = rep_dim();
  ctx->x.assign(x, x + in);
  ctx->h.resize(static_cast<size_t>(hid));
  ctx->rep.resize(static_cast<size_t>(rep));

  std::vector<float> pre_h(static_cast<size_t>(hid));
  hidden_layer_.Forward(x, pre_h.data());
  la::TanhForward(pre_h.data(), ctx->h.data(), hid);

  std::vector<float> pre_r(static_cast<size_t>(rep));
  projection_.Forward(ctx->h.data(), pre_r.data());
  if (residual_bypass_) {
    std::vector<float> bypass_out(static_cast<size_t>(rep));
    bypass_.Forward(x, bypass_out.data());
    la::Axpy(1.0f, bypass_out.data(), pre_r.data(), rep);
  }
  la::TanhForward(pre_r.data(), ctx->rep.data(), rep);
}

void TowerHead::Backward(const float* drep, const Context& ctx, float* dx) {
  const int hid = hidden_dim();
  const int rep = rep_dim();

  // Through the representation tanh.
  std::vector<float> dpre_r(static_cast<size_t>(rep));
  la::TanhBackward(ctx.rep.data(), drep, dpre_r.data(), rep);

  // Through the projection (and bypass) into dh / dx.
  std::vector<float> dh(static_cast<size_t>(hid), 0.0f);
  projection_.Backward(ctx.h.data(), dpre_r.data(), dh.data());
  if (residual_bypass_) {
    bypass_.Backward(ctx.x.data(), dpre_r.data(), dx);
  }

  // Through the hidden tanh and the affine layer.
  std::vector<float> dpre_h(static_cast<size_t>(hid));
  la::TanhBackward(ctx.h.data(), dh.data(), dpre_h.data(), hid);
  hidden_layer_.Backward(ctx.x.data(), dpre_h.data(), dx);
}

void TowerHead::EnableAdagrad() {
  hidden_layer_.EnableAdagrad();
  projection_.EnableAdagrad();
  if (residual_bypass_) bypass_.EnableAdagrad();
}

void TowerHead::Step(float lr) {
  hidden_layer_.Step(lr);
  projection_.Step(lr);
  if (residual_bypass_) bypass_.Step(lr);
}

void TowerHead::ZeroGrad() {
  hidden_layer_.ZeroGrad();
  projection_.ZeroGrad();
  bypass_.ZeroGrad();
}

void TowerHead::Serialize(BinaryWriter& w) const {
  w.WriteMagic("HEAD");
  w.WriteI32(residual_bypass_ ? 1 : 0);
  hidden_layer_.Serialize(w);
  projection_.Serialize(w);
  bypass_.Serialize(w);
}

TowerHead TowerHead::Deserialize(BinaryReader& r) {
  r.ExpectMagic("HEAD");
  int bypass = r.ReadI32();
  nn::LinearLayer hidden = nn::LinearLayer::Deserialize(r);
  nn::LinearLayer projection = nn::LinearLayer::Deserialize(r);
  nn::LinearLayer bypass_layer = nn::LinearLayer::Deserialize(r);
  TowerHead head(hidden.in_dim(), hidden.out_dim(), projection.out_dim(),
                 bypass != 0);
  if (r.ok()) {
    head.hidden_layer_ = std::move(hidden);
    head.projection_ = std::move(projection);
    head.bypass_ = std::move(bypass_layer);
  }
  return head;
}

}  // namespace model
}  // namespace evrec
