// TowerHead: the shared head of both sub-models (paper §3.2 / Figure 4).
//
//   h   = tanh(W1 x + b1)                 affine hidden layer
//   pre = W2 h + b2 [+ W3 x]              linear projection to the
//                                         representation layer, plus the
//                                         residual-style bypass of the
//                                         feature vector ("we also feed the
//                                         feature vector directly into the
//                                         representation layer")
//   rep = tanh(pre)
//
// The bypass can be disabled for the ablation bench.

#ifndef EVREC_MODEL_TOWER_HEAD_H_
#define EVREC_MODEL_TOWER_HEAD_H_

#include <vector>

#include "evrec/nn/linear_layer.h"

namespace evrec {
namespace model {

class TowerHead {
 public:
  TowerHead(int in_dim, int hidden_dim, int rep_dim, bool residual_bypass);

  struct Context {
    std::vector<float> x;       // input copy (needed by Backward)
    std::vector<float> h;       // hidden activation
    std::vector<float> rep;     // representation activation

    // Reusable workspace (pre-activations, backward temporaries). Mutable
    // for the same reason as ConvContext's scratch: Backward reads the
    // logical state through a const reference but must not allocate.
    mutable std::vector<float> pre_h, pre_r, bypass_out;
    mutable std::vector<float> dpre_r, dh, dpre_h;
  };

  // Detached gradient buffers for the three layers; one per shard in the
  // data-parallel trainer (see nn/linear_layer.h for the contract).
  struct GradBuffer {
    nn::LinearLayer::Gradients hidden;
    nn::LinearLayer::Gradients projection;
    nn::LinearLayer::Gradients bypass;
  };

  int in_dim() const { return hidden_layer_.in_dim(); }
  int hidden_dim() const { return hidden_layer_.out_dim(); }
  int rep_dim() const { return projection_.out_dim(); }
  bool residual_bypass() const { return residual_bypass_; }

  void XavierInit(Rng& rng);

  void Forward(const float* x, Context* ctx) const;

  // Accumulates parameter gradients; if dx != nullptr, accumulates the
  // gradient w.r.t. the input (dx must hold in_dim() zeroed-or-accumulating
  // floats).
  void Backward(const float* drep, const Context& ctx, float* dx);

  // Same math into an external buffer; const, safe to run concurrently on
  // disjoint buffers.
  void Backward(const float* drep, const Context& ctx, float* dx,
                GradBuffer* grads) const;

  GradBuffer MakeGradBuffer() const;

  // Folds `grads` into the internal accumulators and clears it (call from
  // one thread, in fixed shard order).
  void AccumulateGradients(GradBuffer* grads);

  void EnableAdagrad();
  void Step(float lr);
  void ZeroGrad();

  const nn::LinearLayer& hidden_layer() const { return hidden_layer_; }
  const nn::LinearLayer& projection() const { return projection_; }
  const nn::LinearLayer& bypass() const { return bypass_; }

  void Serialize(BinaryWriter& w) const;
  static TowerHead Deserialize(BinaryReader& r);

  // Adagrad accumulators of the three layers (checkpoint-only state).
  void SerializeOptimizer(BinaryWriter& w) const;
  void DeserializeOptimizer(BinaryReader& r);

 private:
  nn::LinearLayer hidden_layer_;  // W1, b1: hidden x in
  nn::LinearLayer projection_;    // W2, b2: rep x hidden
  nn::LinearLayer bypass_;        // W3 (no bias): rep x in
  bool residual_bypass_;
};

}  // namespace model
}  // namespace evrec

#endif  // EVREC_MODEL_TOWER_HEAD_H_
