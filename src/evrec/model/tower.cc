#include "evrec/model/tower.h"

#include <algorithm>

namespace evrec {
namespace model {

Tower::Tower(const std::vector<int>& vocab_sizes,
             const std::vector<std::vector<int>>& windows, int embedding_dim,
             int module_out_dim, int hidden_dim, int rep_dim,
             nn::PoolType pool, bool residual_bypass)
    : head_(1, 1, 1, false) {
  EVREC_CHECK_EQ(vocab_sizes.size(), windows.size());
  EVREC_CHECK(!vocab_sizes.empty());
  int concat = 0;
  banks_.reserve(vocab_sizes.size());
  for (size_t i = 0; i < vocab_sizes.size(); ++i) {
    banks_.emplace_back(vocab_sizes[i], embedding_dim, windows[i],
                        module_out_dim, pool);
    concat += banks_.back().output_dim();
  }
  norm_ = nn::FeatureNorm(concat);
  head_ = TowerHead(concat, hidden_dim, rep_dim, residual_bypass);
}

int Tower::concat_dim() const {
  int d = 0;
  for (const auto& b : banks_) d += b.output_dim();
  return d;
}

void Tower::RandomInit(Rng& rng, float embedding_scale) {
  for (auto& b : banks_) b.RandomInit(rng, embedding_scale);
  head_.XavierInit(rng);
}

void Tower::Forward(const std::vector<text::EncodedText>& inputs,
                    Context* ctx) const {
  EVREC_CHECK_EQ(inputs.size(), banks_.size());
  ctx->banks.resize(banks_.size());
  ctx->concat.assign(static_cast<size_t>(concat_dim()), 0.0f);
  int offset = 0;
  for (size_t i = 0; i < banks_.size(); ++i) {
    banks_[i].Forward(inputs[i], &ctx->banks[i]);
    std::copy(ctx->banks[i].output.begin(), ctx->banks[i].output.end(),
              ctx->concat.begin() + offset);
    offset += banks_[i].output_dim();
  }
  norm_.Forward(ctx->concat.data(), ctx->concat.data());
  head_.Forward(ctx->concat.data(), &ctx->head);
}

void Tower::CalibrateNormalizer(
    const std::vector<std::vector<text::EncodedText>>& sample_inputs,
    size_t max_samples) {
  EVREC_CHECK(!sample_inputs.empty());
  std::vector<std::vector<float>> rows;
  size_t stride =
      std::max<size_t>(1, sample_inputs.size() / max_samples);
  std::vector<ExtractionBank::Context> bctx(banks_.size());
  for (size_t s = 0; s < sample_inputs.size(); s += stride) {
    const auto& inputs = sample_inputs[s];
    EVREC_CHECK_EQ(inputs.size(), banks_.size());
    std::vector<float> row(static_cast<size_t>(concat_dim()), 0.0f);
    int offset = 0;
    for (size_t i = 0; i < banks_.size(); ++i) {
      banks_[i].Forward(inputs[i], &bctx[i]);
      std::copy(bctx[i].output.begin(), bctx[i].output.end(),
                row.begin() + offset);
      offset += banks_[i].output_dim();
    }
    rows.push_back(std::move(row));
  }
  norm_.Calibrate(rows);
}

std::vector<float> Tower::Represent(
    const std::vector<text::EncodedText>& inputs) const {
  Context ctx;
  Forward(inputs, &ctx);
  return ctx.head.rep;
}

void Tower::Backward(const float* drep, const Context& ctx) {
  ctx.dconcat.assign(static_cast<size_t>(concat_dim()), 0.0f);
  head_.Backward(drep, ctx.head, ctx.dconcat.data());
  norm_.Backward(ctx.dconcat.data(), ctx.dconcat.data());
  int offset = 0;
  for (size_t i = 0; i < banks_.size(); ++i) {
    banks_[i].Backward(ctx.dconcat.data() + offset, ctx.banks[i]);
    offset += banks_[i].output_dim();
  }
}

void Tower::Backward(const float* drep, const Context& ctx,
                     GradBuffer* grads) const {
  EVREC_CHECK_EQ(grads->banks.size(), banks_.size());
  ctx.dconcat.assign(static_cast<size_t>(concat_dim()), 0.0f);
  head_.Backward(drep, ctx.head, ctx.dconcat.data(), &grads->head);
  norm_.Backward(ctx.dconcat.data(), ctx.dconcat.data());
  int offset = 0;
  for (size_t i = 0; i < banks_.size(); ++i) {
    banks_[i].Backward(ctx.dconcat.data() + offset, ctx.banks[i],
                       &grads->banks[i]);
    offset += banks_[i].output_dim();
  }
}

Tower::GradBuffer Tower::MakeGradBuffer() const {
  GradBuffer g;
  g.banks.reserve(banks_.size());
  for (const auto& b : banks_) g.banks.push_back(b.MakeGradBuffer());
  g.head = head_.MakeGradBuffer();
  return g;
}

void Tower::AccumulateGradients(GradBuffer* grads) {
  for (size_t i = 0; i < banks_.size(); ++i) {
    banks_[i].AccumulateGradients(&grads->banks[i]);
  }
  head_.AccumulateGradients(&grads->head);
}

void Tower::EnableAdagrad() {
  for (auto& b : banks_) b.EnableAdagrad();
  head_.EnableAdagrad();
}

void Tower::Step(float lr) {
  for (auto& b : banks_) b.Step(lr);
  head_.Step(lr);
}

void Tower::ZeroGrad() {
  for (auto& b : banks_) b.ZeroGrad();
  head_.ZeroGrad();
}

void Tower::Serialize(BinaryWriter& w) const {
  w.WriteMagic("TOWR");
  w.WriteI32(static_cast<int>(banks_.size()));
  for (const auto& b : banks_) b.Serialize(w);
  norm_.Serialize(w);
  head_.Serialize(w);
}

void Tower::SerializeOptimizer(BinaryWriter& w) const {
  for (const auto& b : banks_) b.SerializeOptimizer(w);
  head_.SerializeOptimizer(w);
}

void Tower::DeserializeOptimizer(BinaryReader& r) {
  for (auto& b : banks_) b.DeserializeOptimizer(r);
  head_.DeserializeOptimizer(r);
}

Tower Tower::Deserialize(BinaryReader& r) {
  Tower t;
  r.ExpectMagic("TOWR");
  int n = r.ReadI32();
  if (!r.ok() || n <= 0) return t;
  t.banks_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n && r.ok(); ++i) {
    t.banks_.push_back(ExtractionBank::Deserialize(r));
  }
  t.norm_ = nn::FeatureNorm::Deserialize(r);
  t.head_ = TowerHead::Deserialize(r);
  return t;
}

}  // namespace model
}  // namespace evrec
