// Text normalization applied before tokenization (paper §3.1: "general
// ordered text (with punctuations replaced or removed)").
//
// Normalize lowercases ASCII, maps punctuation to spaces, and collapses
// whitespace; NormalizeToWords additionally splits into the word sequence
// the convolutional modules consume.

#ifndef EVREC_TEXT_NORMALIZER_H_
#define EVREC_TEXT_NORMALIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace evrec {
namespace text {

// Returns lowercase text with every non-alphanumeric byte replaced by a
// single space (runs collapse).
std::string Normalize(std::string_view raw);

// Normalizes and splits into words; empty input yields an empty vector.
std::vector<std::string> NormalizeToWords(std::string_view raw);

}  // namespace text
}  // namespace evrec

#endif  // EVREC_TEXT_NORMALIZER_H_
