// Tokenizers (paper §3.1): a tokenizer turns a word sequence into a token
// sequence that the convolutional extraction module embeds and convolves.
//
// Two concrete tokenizers are used:
//  - LetterTrigramTokenizer for natural-language text: each word is wrapped
//    in '#' boundary markers and emitted as its letter 3-grams
//    ("cream" -> #cr, cre, rea, eam, am#). This is the DSSM trick [20] that
//    bounds the vocabulary and generalizes across rare/misspelled words.
//  - WordUnigramTokenizer for unordered categorical id features: each id is
//    one token, preserving feature values in their original form.
//
// Every emitted token remembers the index of the word it came from; the
// Figure 7 attribution analysis traces pooling-layer max windows back to
// words through this link.

#ifndef EVREC_TEXT_TOKENIZER_H_
#define EVREC_TEXT_TOKENIZER_H_

#include <memory>
#include <string>
#include <vector>

namespace evrec {
namespace text {

struct Token {
  std::string value;
  int word_index;  // index into the input word sequence
};

class Tokenizer {
 public:
  virtual ~Tokenizer() = default;

  // Appends tokens for `words` to `out` (does not clear it).
  virtual void Tokenize(const std::vector<std::string>& words,
                        std::vector<Token>* out) const = 0;

  // Stable name used in model serialization.
  virtual std::string Name() const = 0;
};

// Emits each word's letter trigrams, with '#' boundary padding. Words
// shorter than the n-gram width still produce one boundary-padded token
// ("ab" -> #ab, ab#; "a" -> #a#).
class LetterTrigramTokenizer : public Tokenizer {
 public:
  void Tokenize(const std::vector<std::string>& words,
                std::vector<Token>* out) const override;
  std::string Name() const override { return "letter_trigram"; }
};

// Emits each word as exactly one token. Used with convolution window 1 for
// categorical id features.
class WordUnigramTokenizer : public Tokenizer {
 public:
  void Tokenize(const std::vector<std::string>& words,
                std::vector<Token>* out) const override;
  std::string Name() const override { return "word_unigram"; }
};

// Factory by name; returns nullptr for unknown names.
std::unique_ptr<Tokenizer> MakeTokenizer(const std::string& name);

}  // namespace text
}  // namespace evrec

#endif  // EVREC_TEXT_TOKENIZER_H_
