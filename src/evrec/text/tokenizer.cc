#include "evrec/text/tokenizer.h"

namespace evrec {
namespace text {

void LetterTrigramTokenizer::Tokenize(const std::vector<std::string>& words,
                                      std::vector<Token>* out) const {
  for (size_t w = 0; w < words.size(); ++w) {
    const std::string& word = words[w];
    if (word.empty()) continue;
    std::string padded;
    padded.reserve(word.size() + 2);
    padded.push_back('#');
    padded.append(word);
    padded.push_back('#');
    if (padded.size() < 3) continue;  // unreachable: "#x#" is 3 bytes
    for (size_t i = 0; i + 3 <= padded.size(); ++i) {
      out->push_back(Token{padded.substr(i, 3), static_cast<int>(w)});
    }
  }
}

void WordUnigramTokenizer::Tokenize(const std::vector<std::string>& words,
                                    std::vector<Token>* out) const {
  for (size_t w = 0; w < words.size(); ++w) {
    if (words[w].empty()) continue;
    out->push_back(Token{words[w], static_cast<int>(w)});
  }
}

std::unique_ptr<Tokenizer> MakeTokenizer(const std::string& name) {
  if (name == "letter_trigram") {
    return std::make_unique<LetterTrigramTokenizer>();
  }
  if (name == "word_unigram") {
    return std::make_unique<WordUnigramTokenizer>();
  }
  return nullptr;
}

}  // namespace text
}  // namespace evrec
