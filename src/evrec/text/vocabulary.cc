#include "evrec/text/vocabulary.h"

#include <algorithm>
#include <unordered_set>

namespace evrec {
namespace text {

void Vocabulary::AddDocument(const std::vector<Token>& tokens) {
  EVREC_CHECK(!finalized_) << "AddDocument after Finalize";
  ++num_documents_;
  std::unordered_set<std::string_view> seen;
  seen.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (seen.insert(t.value).second) {
      ++df_counts_[t.value];
    }
  }
}

void Vocabulary::Finalize(int min_df, size_t max_size,
                          double max_df_fraction) {
  EVREC_CHECK(!finalized_) << "Finalize called twice";
  EVREC_CHECK_GE(min_df, 1);
  EVREC_CHECK_GT(max_df_fraction, 0.0);
  const int max_df = static_cast<int>(max_df_fraction * num_documents_);
  std::vector<std::pair<std::string, int>> kept;
  kept.reserve(df_counts_.size());
  for (auto& [token, df] : df_counts_) {
    if (df >= min_df && (max_df_fraction >= 1.0 || df <= max_df)) {
      kept.emplace_back(token, df);
    }
  }
  std::sort(kept.begin(), kept.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (kept.size() > max_size) kept.resize(max_size);

  id_to_token_.reserve(kept.size());
  df_of_id_.reserve(kept.size());
  token_to_id_.reserve(kept.size());
  for (auto& [token, df] : kept) {
    token_to_id_.emplace(token, static_cast<int>(id_to_token_.size()));
    id_to_token_.push_back(token);
    df_of_id_.push_back(df);
  }
  df_counts_.clear();
  finalized_ = true;
}

int Vocabulary::Lookup(const std::string& token) const {
  EVREC_CHECK(finalized_) << "Lookup before Finalize";
  auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? kUnknownId : it->second;
}

void Vocabulary::Serialize(BinaryWriter& w) const {
  EVREC_CHECK(finalized_);
  w.WriteMagic("VOCB");
  w.WriteI32(num_documents_);
  w.WriteU32(static_cast<uint32_t>(id_to_token_.size()));
  for (size_t i = 0; i < id_to_token_.size(); ++i) {
    w.WriteString(id_to_token_[i]);
    w.WriteI32(df_of_id_[i]);
  }
}

Vocabulary Vocabulary::Deserialize(BinaryReader& r) {
  Vocabulary v;
  r.ExpectMagic("VOCB");
  v.num_documents_ = r.ReadI32();
  uint32_t n = r.ReadU32();
  if (!r.ok()) return v;
  v.id_to_token_.reserve(n);
  v.df_of_id_.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string tok = r.ReadString();
    int df = r.ReadI32();
    v.token_to_id_.emplace(tok, static_cast<int>(v.id_to_token_.size()));
    v.id_to_token_.push_back(std::move(tok));
    v.df_of_id_.push_back(df);
  }
  v.finalized_ = true;
  return v;
}

}  // namespace text
}  // namespace evrec
