// TextEncoder: tokenizer + vocabulary glue producing the integer token
// sequence a convolutional extraction module consumes. Unknown (DF-filtered)
// tokens are dropped; each surviving token keeps the index of its source
// word for attribution analysis.

#ifndef EVREC_TEXT_ENCODER_H_
#define EVREC_TEXT_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "evrec/text/tokenizer.h"
#include "evrec/text/vocabulary.h"

namespace evrec {
namespace text {

// A document after tokenization + vocabulary lookup.
struct EncodedText {
  std::vector<int> token_ids;    // ids into the module's lookup table
  std::vector<int> word_index;   // parallel: source word of each token

  int size() const { return static_cast<int>(token_ids.size()); }
  bool empty() const { return token_ids.empty(); }
};

class TextEncoder {
 public:
  TextEncoder(std::unique_ptr<Tokenizer> tokenizer, Vocabulary vocabulary)
      : tokenizer_(std::move(tokenizer)),
        vocabulary_(std::move(vocabulary)) {
    EVREC_CHECK(tokenizer_ != nullptr);
    EVREC_CHECK(vocabulary_.finalized());
  }

  // Encodes a word sequence (already normalized).
  EncodedText Encode(const std::vector<std::string>& words) const;

  const Vocabulary& vocabulary() const { return vocabulary_; }
  const Tokenizer& tokenizer() const { return *tokenizer_; }

  void Serialize(BinaryWriter& w) const;
  static std::unique_ptr<TextEncoder> Deserialize(BinaryReader& r);

 private:
  std::unique_ptr<Tokenizer> tokenizer_;
  Vocabulary vocabulary_;
};

// Builds a DF-filtered vocabulary by running `tokenizer` over every word
// sequence in `documents`.
Vocabulary BuildVocabulary(const Tokenizer& tokenizer,
                           const std::vector<std::vector<std::string>>& documents,
                           int min_df, size_t max_size,
                           double max_df_fraction = 1.0);

}  // namespace text
}  // namespace evrec

#endif  // EVREC_TEXT_ENCODER_H_
