// Document-frequency-filtered token vocabulary (paper §3.1: "we apply
// document frequency based filtering to remove rare tokens" to bound the
// lookup-table size; §3.2.1 keeps the total under 500k entries).
//
// Build protocol: AddDocument once per training document with that
// document's token multiset, then Finalize(min_df, max_size). Finalize
// keeps tokens with df >= min_df, truncating to the `max_size` most
// frequent (ties broken lexicographically for determinism), and freezes
// the token -> id mapping.

#ifndef EVREC_TEXT_VOCABULARY_H_
#define EVREC_TEXT_VOCABULARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "evrec/text/tokenizer.h"
#include "evrec/util/binary_io.h"
#include "evrec/util/check.h"

namespace evrec {
namespace text {

class Vocabulary {
 public:
  static constexpr int kUnknownId = -1;

  Vocabulary() = default;

  // Counts each distinct token in `tokens` once toward document frequency.
  void AddDocument(const std::vector<Token>& tokens);

  // Freezes the vocabulary. May be called exactly once. Tokens with
  // df < min_df are dropped (the paper's rare-token filter), as are tokens
  // appearing in more than max_df_fraction of documents (stop-token
  // removal: such tokens carry no discriminative content and make long
  // documents look alike).
  void Finalize(int min_df, size_t max_size, double max_df_fraction = 1.0);

  bool finalized() const { return finalized_; }

  // Token id, or kUnknownId if filtered/unseen. Only valid after Finalize.
  int Lookup(const std::string& token) const;

  // Number of retained tokens.
  int size() const {
    return static_cast<int>(id_to_token_.size());
  }

  // Document frequency of a retained token id.
  int DocumentFrequency(int id) const {
    EVREC_CHECK_GE(id, 0);
    EVREC_CHECK_LT(id, size());
    return df_of_id_[static_cast<size_t>(id)];
  }

  const std::string& TokenOf(int id) const {
    EVREC_CHECK_GE(id, 0);
    EVREC_CHECK_LT(id, size());
    return id_to_token_[static_cast<size_t>(id)];
  }

  // Number of documents seen during the build phase.
  int num_documents() const { return num_documents_; }

  void Serialize(BinaryWriter& w) const;
  static Vocabulary Deserialize(BinaryReader& r);

 private:
  bool finalized_ = false;
  int num_documents_ = 0;
  std::unordered_map<std::string, int> df_counts_;  // build phase
  std::unordered_map<std::string, int> token_to_id_;
  std::vector<std::string> id_to_token_;
  std::vector<int> df_of_id_;
};

}  // namespace text
}  // namespace evrec

#endif  // EVREC_TEXT_VOCABULARY_H_
