#include "evrec/text/encoder.h"

namespace evrec {
namespace text {

EncodedText TextEncoder::Encode(const std::vector<std::string>& words) const {
  std::vector<Token> tokens;
  tokenizer_->Tokenize(words, &tokens);
  EncodedText out;
  out.token_ids.reserve(tokens.size());
  out.word_index.reserve(tokens.size());
  for (const Token& t : tokens) {
    int id = vocabulary_.Lookup(t.value);
    if (id == Vocabulary::kUnknownId) continue;
    out.token_ids.push_back(id);
    out.word_index.push_back(t.word_index);
  }
  return out;
}

void TextEncoder::Serialize(BinaryWriter& w) const {
  w.WriteMagic("TENC");
  w.WriteString(tokenizer_->Name());
  vocabulary_.Serialize(w);
}

std::unique_ptr<TextEncoder> TextEncoder::Deserialize(BinaryReader& r) {
  r.ExpectMagic("TENC");
  std::string name = r.ReadString();
  auto tokenizer = MakeTokenizer(name);
  if (tokenizer == nullptr) return nullptr;
  Vocabulary vocab = Vocabulary::Deserialize(r);
  if (!r.ok()) return nullptr;
  return std::make_unique<TextEncoder>(std::move(tokenizer),
                                       std::move(vocab));
}

Vocabulary BuildVocabulary(
    const Tokenizer& tokenizer,
    const std::vector<std::vector<std::string>>& documents, int min_df,
    size_t max_size, double max_df_fraction) {
  Vocabulary vocab;
  std::vector<Token> tokens;
  for (const auto& words : documents) {
    tokens.clear();
    tokenizer.Tokenize(words, &tokens);
    vocab.AddDocument(tokens);
  }
  vocab.Finalize(min_df, max_size, max_df_fraction);
  return vocab;
}

}  // namespace text
}  // namespace evrec
