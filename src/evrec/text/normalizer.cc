#include "evrec/text/normalizer.h"

#include <cctype>

namespace evrec {
namespace text {

std::string Normalize(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  bool last_space = true;  // suppress leading spaces
  for (char c : raw) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      out.push_back(static_cast<char>(std::tolower(uc)));
      last_space = false;
    } else if (!last_space) {
      out.push_back(' ');
      last_space = true;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> NormalizeToWords(std::string_view raw) {
  std::vector<std::string> words;
  std::string current;
  for (char c : raw) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      current.push_back(static_cast<char>(std::tolower(uc)));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

}  // namespace text
}  // namespace evrec
