#include "evrec/eval/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "evrec/util/check.h"
#include "evrec/util/string_util.h"

namespace evrec {
namespace eval {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  EVREC_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += '|';
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const {
  std::string s = Render();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

std::string Metric3(double v) { return StrFormat("%.3f", v); }

}  // namespace eval
}  // namespace evrec
