// Fixed-width table printer for the bench harness reports (reproducing the
// paper's Tables 1-3 side by side with the measured values).

#ifndef EVREC_EVAL_TABLE_PRINTER_H_
#define EVREC_EVAL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace evrec {
namespace eval {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders with column alignment and a header separator.
  std::string Render() const;

  // Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a metric as "0.xxx".
std::string Metric3(double v);

}  // namespace eval
}  // namespace evrec

#endif  // EVREC_EVAL_TABLE_PRINTER_H_
