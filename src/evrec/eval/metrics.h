// Binary classification metrics used in the paper's evaluation (§5.1):
// area under the ROC curve, precision/recall curves, and precision at a
// fixed recall level (PR60 = precision at recall 0.60, PR80 at 0.80).

#ifndef EVREC_EVAL_METRICS_H_
#define EVREC_EVAL_METRICS_H_

#include <vector>

namespace evrec {
namespace eval {

// Rank-based ROC AUC (equals the Mann-Whitney U statistic); ties receive
// average rank. Returns 0.5 when either class is absent.
double RocAuc(const std::vector<double>& scores,
              const std::vector<float>& labels);

struct PrPoint {
  double threshold;  // score cut: predict positive when score >= threshold
  double precision;
  double recall;
};

// Full precision/recall curve, one point per distinct threshold, ordered by
// increasing recall (decreasing threshold). Returns an empty vector when
// there are no positives.
std::vector<PrPoint> PrecisionRecallCurve(const std::vector<double>& scores,
                                          const std::vector<float>& labels);

// Precision where the curve first reaches `target_recall` (reading the
// paper's P/R plots at a fixed recall). Returns 0 if the recall level is
// never reached.
double PrecisionAtRecall(const std::vector<PrPoint>& curve,
                         double target_recall);

// Samples the curve at evenly spaced recall grid points (for CSV series);
// each grid point gets the precision at the first curve point with
// recall >= grid value.
std::vector<PrPoint> SampleCurve(const std::vector<PrPoint>& curve,
                                 int grid_points);

// Mean binary cross-entropy of probability predictions.
double MeanLogLoss(const std::vector<double>& probabilities,
                   const std::vector<float>& labels);

// Classification accuracy at a fixed probability threshold.
double Accuracy(const std::vector<double>& scores,
                const std::vector<float>& labels, double threshold);

}  // namespace eval
}  // namespace evrec

#endif  // EVREC_EVAL_METRICS_H_
