#include "evrec/eval/metrics.h"

#include <algorithm>
#include <numeric>

#include "evrec/util/check.h"
#include "evrec/util/math_util.h"

namespace evrec {
namespace eval {

double RocAuc(const std::vector<double>& scores,
              const std::vector<float>& labels) {
  EVREC_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  size_t num_pos = 0;
  for (float y : labels) num_pos += (y > 0.5f) ? 1 : 0;
  size_t num_neg = n - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Sum of positive ranks with average ranks for ties.
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                      1.0;  // 1-based
    for (size_t k = i; k <= j; ++k) {
      if (labels[order[k]] > 0.5f) rank_sum_pos += avg_rank;
    }
    i = j + 1;
  }
  double u = rank_sum_pos - static_cast<double>(num_pos) *
                                (static_cast<double>(num_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

std::vector<PrPoint> PrecisionRecallCurve(const std::vector<double>& scores,
                                          const std::vector<float>& labels) {
  EVREC_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  size_t num_pos = 0;
  for (float y : labels) num_pos += (y > 0.5f) ? 1 : 0;
  std::vector<PrPoint> curve;
  if (num_pos == 0 || n == 0) return curve;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });

  size_t tp = 0;
  size_t predicted = 0;
  for (size_t i = 0; i < n;) {
    // Consume a tie group atomically: a threshold either admits all equal
    // scores or none.
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    for (size_t k = i; k <= j; ++k) {
      ++predicted;
      if (labels[order[k]] > 0.5f) ++tp;
    }
    curve.push_back(PrPoint{scores[order[i]],
                            static_cast<double>(tp) / predicted,
                            static_cast<double>(tp) / num_pos});
    i = j + 1;
  }
  return curve;
}

double PrecisionAtRecall(const std::vector<PrPoint>& curve,
                         double target_recall) {
  for (const PrPoint& p : curve) {
    if (p.recall >= target_recall) return p.precision;
  }
  return 0.0;
}

std::vector<PrPoint> SampleCurve(const std::vector<PrPoint>& curve,
                                 int grid_points) {
  std::vector<PrPoint> out;
  if (curve.empty() || grid_points <= 1) return out;
  out.reserve(static_cast<size_t>(grid_points));
  for (int g = 1; g <= grid_points; ++g) {
    double recall = static_cast<double>(g) / grid_points;
    double precision = PrecisionAtRecall(curve, recall);
    out.push_back(PrPoint{0.0, precision, recall});
  }
  return out;
}

double MeanLogLoss(const std::vector<double>& probabilities,
                   const std::vector<float>& labels) {
  EVREC_CHECK_EQ(probabilities.size(), labels.size());
  if (probabilities.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    total += CrossEntropy(labels[i], probabilities[i]);
  }
  return total / static_cast<double>(probabilities.size());
}

double Accuracy(const std::vector<double>& scores,
                const std::vector<float>& labels, double threshold) {
  EVREC_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    bool predicted = scores[i] >= threshold;
    bool actual = labels[i] > 0.5f;
    if (predicted == actual) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

}  // namespace eval
}  // namespace evrec
