# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;evrec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(la_test "/root/repo/build/tests/la_test")
set_tests_properties(la_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;evrec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(text_test "/root/repo/build/tests/text_test")
set_tests_properties(text_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;evrec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;evrec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(model_test "/root/repo/build/tests/model_test")
set_tests_properties(model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;evrec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gbdt_test "/root/repo/build/tests/gbdt_test")
set_tests_properties(gbdt_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;evrec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_test "/root/repo/build/tests/eval_test")
set_tests_properties(eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;evrec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(topics_test "/root/repo/build/tests/topics_test")
set_tests_properties(topics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;evrec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(simnet_test "/root/repo/build/tests/simnet_test")
set_tests_properties(simnet_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;evrec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baseline_test "/root/repo/build/tests/baseline_test")
set_tests_properties(baseline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;evrec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(store_test "/root/repo/build/tests/store_test")
set_tests_properties(store_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;evrec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pipeline_test "/root/repo/build/tests/pipeline_test")
set_tests_properties(pipeline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;evrec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;22;evrec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dataset_io_test "/root/repo/build/tests/dataset_io_test")
set_tests_properties(dataset_io_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;23;evrec_test;/root/repo/tests/CMakeLists.txt;0;")
