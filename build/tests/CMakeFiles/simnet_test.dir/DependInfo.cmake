
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simnet_test.cc" "tests/CMakeFiles/simnet_test.dir/simnet_test.cc.o" "gcc" "tests/CMakeFiles/simnet_test.dir/simnet_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/evrec/pipeline/CMakeFiles/evrec_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/model/CMakeFiles/evrec_model.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/baseline/CMakeFiles/evrec_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/topics/CMakeFiles/evrec_topics.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/simnet/CMakeFiles/evrec_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/ann/CMakeFiles/evrec_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/gbdt/CMakeFiles/evrec_gbdt.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/eval/CMakeFiles/evrec_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/store/CMakeFiles/evrec_store.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/nn/CMakeFiles/evrec_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/text/CMakeFiles/evrec_text.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/la/CMakeFiles/evrec_la.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/util/CMakeFiles/evrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
