file(REMOVE_RECURSE
  "CMakeFiles/evrec_cli.dir/evrec_cli.cc.o"
  "CMakeFiles/evrec_cli.dir/evrec_cli.cc.o.d"
  "evrec_cli"
  "evrec_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
