# Empty compiler generated dependencies file for evrec_cli.
# This may be replaced when dependencies are built.
