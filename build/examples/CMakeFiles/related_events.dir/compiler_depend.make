# Empty compiler generated dependencies file for related_events.
# This may be replaced when dependencies are built.
