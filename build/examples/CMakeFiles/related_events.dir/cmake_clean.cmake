file(REMOVE_RECURSE
  "CMakeFiles/related_events.dir/related_events.cpp.o"
  "CMakeFiles/related_events.dir/related_events.cpp.o.d"
  "related_events"
  "related_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
