# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("evrec/util")
subdirs("evrec/la")
subdirs("evrec/text")
subdirs("evrec/nn")
subdirs("evrec/model")
subdirs("evrec/gbdt")
subdirs("evrec/eval")
subdirs("evrec/simnet")
subdirs("evrec/baseline")
subdirs("evrec/topics")
subdirs("evrec/store")
subdirs("evrec/ann")
subdirs("evrec/pipeline")
