file(REMOVE_RECURSE
  "CMakeFiles/evrec_eval.dir/metrics.cc.o"
  "CMakeFiles/evrec_eval.dir/metrics.cc.o.d"
  "CMakeFiles/evrec_eval.dir/table_printer.cc.o"
  "CMakeFiles/evrec_eval.dir/table_printer.cc.o.d"
  "libevrec_eval.a"
  "libevrec_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
