file(REMOVE_RECURSE
  "libevrec_eval.a"
)
