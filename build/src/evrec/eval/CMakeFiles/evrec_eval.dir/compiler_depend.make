# Empty compiler generated dependencies file for evrec_eval.
# This may be replaced when dependencies are built.
