
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evrec/eval/metrics.cc" "src/evrec/eval/CMakeFiles/evrec_eval.dir/metrics.cc.o" "gcc" "src/evrec/eval/CMakeFiles/evrec_eval.dir/metrics.cc.o.d"
  "/root/repo/src/evrec/eval/table_printer.cc" "src/evrec/eval/CMakeFiles/evrec_eval.dir/table_printer.cc.o" "gcc" "src/evrec/eval/CMakeFiles/evrec_eval.dir/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/evrec/util/CMakeFiles/evrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
