file(REMOVE_RECURSE
  "libevrec_util.a"
)
