
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evrec/util/binary_io.cc" "src/evrec/util/CMakeFiles/evrec_util.dir/binary_io.cc.o" "gcc" "src/evrec/util/CMakeFiles/evrec_util.dir/binary_io.cc.o.d"
  "/root/repo/src/evrec/util/csv_writer.cc" "src/evrec/util/CMakeFiles/evrec_util.dir/csv_writer.cc.o" "gcc" "src/evrec/util/CMakeFiles/evrec_util.dir/csv_writer.cc.o.d"
  "/root/repo/src/evrec/util/logging.cc" "src/evrec/util/CMakeFiles/evrec_util.dir/logging.cc.o" "gcc" "src/evrec/util/CMakeFiles/evrec_util.dir/logging.cc.o.d"
  "/root/repo/src/evrec/util/status.cc" "src/evrec/util/CMakeFiles/evrec_util.dir/status.cc.o" "gcc" "src/evrec/util/CMakeFiles/evrec_util.dir/status.cc.o.d"
  "/root/repo/src/evrec/util/string_util.cc" "src/evrec/util/CMakeFiles/evrec_util.dir/string_util.cc.o" "gcc" "src/evrec/util/CMakeFiles/evrec_util.dir/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
