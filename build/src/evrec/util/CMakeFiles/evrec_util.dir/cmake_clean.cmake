file(REMOVE_RECURSE
  "CMakeFiles/evrec_util.dir/binary_io.cc.o"
  "CMakeFiles/evrec_util.dir/binary_io.cc.o.d"
  "CMakeFiles/evrec_util.dir/csv_writer.cc.o"
  "CMakeFiles/evrec_util.dir/csv_writer.cc.o.d"
  "CMakeFiles/evrec_util.dir/logging.cc.o"
  "CMakeFiles/evrec_util.dir/logging.cc.o.d"
  "CMakeFiles/evrec_util.dir/status.cc.o"
  "CMakeFiles/evrec_util.dir/status.cc.o.d"
  "CMakeFiles/evrec_util.dir/string_util.cc.o"
  "CMakeFiles/evrec_util.dir/string_util.cc.o.d"
  "libevrec_util.a"
  "libevrec_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
