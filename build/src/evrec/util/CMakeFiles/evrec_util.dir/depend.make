# Empty dependencies file for evrec_util.
# This may be replaced when dependencies are built.
