file(REMOVE_RECURSE
  "libevrec_store.a"
)
