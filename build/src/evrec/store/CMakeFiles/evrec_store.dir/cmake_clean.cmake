file(REMOVE_RECURSE
  "CMakeFiles/evrec_store.dir/kv_cache.cc.o"
  "CMakeFiles/evrec_store.dir/kv_cache.cc.o.d"
  "CMakeFiles/evrec_store.dir/rep_cache.cc.o"
  "CMakeFiles/evrec_store.dir/rep_cache.cc.o.d"
  "libevrec_store.a"
  "libevrec_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
