# Empty compiler generated dependencies file for evrec_store.
# This may be replaced when dependencies are built.
