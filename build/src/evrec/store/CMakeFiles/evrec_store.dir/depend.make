# Empty dependencies file for evrec_store.
# This may be replaced when dependencies are built.
