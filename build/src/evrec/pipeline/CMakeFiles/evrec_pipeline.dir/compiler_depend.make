# Empty compiler generated dependencies file for evrec_pipeline.
# This may be replaced when dependencies are built.
