file(REMOVE_RECURSE
  "CMakeFiles/evrec_pipeline.dir/encoders.cc.o"
  "CMakeFiles/evrec_pipeline.dir/encoders.cc.o.d"
  "CMakeFiles/evrec_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/evrec_pipeline.dir/pipeline.cc.o.d"
  "libevrec_pipeline.a"
  "libevrec_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
