file(REMOVE_RECURSE
  "libevrec_pipeline.a"
)
