
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evrec/gbdt/binner.cc" "src/evrec/gbdt/CMakeFiles/evrec_gbdt.dir/binner.cc.o" "gcc" "src/evrec/gbdt/CMakeFiles/evrec_gbdt.dir/binner.cc.o.d"
  "/root/repo/src/evrec/gbdt/gbdt.cc" "src/evrec/gbdt/CMakeFiles/evrec_gbdt.dir/gbdt.cc.o" "gcc" "src/evrec/gbdt/CMakeFiles/evrec_gbdt.dir/gbdt.cc.o.d"
  "/root/repo/src/evrec/gbdt/logistic_regression.cc" "src/evrec/gbdt/CMakeFiles/evrec_gbdt.dir/logistic_regression.cc.o" "gcc" "src/evrec/gbdt/CMakeFiles/evrec_gbdt.dir/logistic_regression.cc.o.d"
  "/root/repo/src/evrec/gbdt/tree.cc" "src/evrec/gbdt/CMakeFiles/evrec_gbdt.dir/tree.cc.o" "gcc" "src/evrec/gbdt/CMakeFiles/evrec_gbdt.dir/tree.cc.o.d"
  "/root/repo/src/evrec/gbdt/tree_builder.cc" "src/evrec/gbdt/CMakeFiles/evrec_gbdt.dir/tree_builder.cc.o" "gcc" "src/evrec/gbdt/CMakeFiles/evrec_gbdt.dir/tree_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/evrec/util/CMakeFiles/evrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
