file(REMOVE_RECURSE
  "libevrec_gbdt.a"
)
