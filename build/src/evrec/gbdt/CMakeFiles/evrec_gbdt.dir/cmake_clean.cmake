file(REMOVE_RECURSE
  "CMakeFiles/evrec_gbdt.dir/binner.cc.o"
  "CMakeFiles/evrec_gbdt.dir/binner.cc.o.d"
  "CMakeFiles/evrec_gbdt.dir/gbdt.cc.o"
  "CMakeFiles/evrec_gbdt.dir/gbdt.cc.o.d"
  "CMakeFiles/evrec_gbdt.dir/logistic_regression.cc.o"
  "CMakeFiles/evrec_gbdt.dir/logistic_regression.cc.o.d"
  "CMakeFiles/evrec_gbdt.dir/tree.cc.o"
  "CMakeFiles/evrec_gbdt.dir/tree.cc.o.d"
  "CMakeFiles/evrec_gbdt.dir/tree_builder.cc.o"
  "CMakeFiles/evrec_gbdt.dir/tree_builder.cc.o.d"
  "libevrec_gbdt.a"
  "libevrec_gbdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
