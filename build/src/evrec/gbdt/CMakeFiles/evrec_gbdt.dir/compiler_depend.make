# Empty compiler generated dependencies file for evrec_gbdt.
# This may be replaced when dependencies are built.
