file(REMOVE_RECURSE
  "CMakeFiles/evrec_model.dir/attribution.cc.o"
  "CMakeFiles/evrec_model.dir/attribution.cc.o.d"
  "CMakeFiles/evrec_model.dir/extraction_bank.cc.o"
  "CMakeFiles/evrec_model.dir/extraction_bank.cc.o.d"
  "CMakeFiles/evrec_model.dir/joint_model.cc.o"
  "CMakeFiles/evrec_model.dir/joint_model.cc.o.d"
  "CMakeFiles/evrec_model.dir/ranking_trainer.cc.o"
  "CMakeFiles/evrec_model.dir/ranking_trainer.cc.o.d"
  "CMakeFiles/evrec_model.dir/siamese.cc.o"
  "CMakeFiles/evrec_model.dir/siamese.cc.o.d"
  "CMakeFiles/evrec_model.dir/tower.cc.o"
  "CMakeFiles/evrec_model.dir/tower.cc.o.d"
  "CMakeFiles/evrec_model.dir/tower_head.cc.o"
  "CMakeFiles/evrec_model.dir/tower_head.cc.o.d"
  "CMakeFiles/evrec_model.dir/trainer.cc.o"
  "CMakeFiles/evrec_model.dir/trainer.cc.o.d"
  "libevrec_model.a"
  "libevrec_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
