file(REMOVE_RECURSE
  "libevrec_model.a"
)
