# Empty dependencies file for evrec_model.
# This may be replaced when dependencies are built.
