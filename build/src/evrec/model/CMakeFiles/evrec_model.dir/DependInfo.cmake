
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evrec/model/attribution.cc" "src/evrec/model/CMakeFiles/evrec_model.dir/attribution.cc.o" "gcc" "src/evrec/model/CMakeFiles/evrec_model.dir/attribution.cc.o.d"
  "/root/repo/src/evrec/model/extraction_bank.cc" "src/evrec/model/CMakeFiles/evrec_model.dir/extraction_bank.cc.o" "gcc" "src/evrec/model/CMakeFiles/evrec_model.dir/extraction_bank.cc.o.d"
  "/root/repo/src/evrec/model/joint_model.cc" "src/evrec/model/CMakeFiles/evrec_model.dir/joint_model.cc.o" "gcc" "src/evrec/model/CMakeFiles/evrec_model.dir/joint_model.cc.o.d"
  "/root/repo/src/evrec/model/ranking_trainer.cc" "src/evrec/model/CMakeFiles/evrec_model.dir/ranking_trainer.cc.o" "gcc" "src/evrec/model/CMakeFiles/evrec_model.dir/ranking_trainer.cc.o.d"
  "/root/repo/src/evrec/model/siamese.cc" "src/evrec/model/CMakeFiles/evrec_model.dir/siamese.cc.o" "gcc" "src/evrec/model/CMakeFiles/evrec_model.dir/siamese.cc.o.d"
  "/root/repo/src/evrec/model/tower.cc" "src/evrec/model/CMakeFiles/evrec_model.dir/tower.cc.o" "gcc" "src/evrec/model/CMakeFiles/evrec_model.dir/tower.cc.o.d"
  "/root/repo/src/evrec/model/tower_head.cc" "src/evrec/model/CMakeFiles/evrec_model.dir/tower_head.cc.o" "gcc" "src/evrec/model/CMakeFiles/evrec_model.dir/tower_head.cc.o.d"
  "/root/repo/src/evrec/model/trainer.cc" "src/evrec/model/CMakeFiles/evrec_model.dir/trainer.cc.o" "gcc" "src/evrec/model/CMakeFiles/evrec_model.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/evrec/nn/CMakeFiles/evrec_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/text/CMakeFiles/evrec_text.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/la/CMakeFiles/evrec_la.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/util/CMakeFiles/evrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
