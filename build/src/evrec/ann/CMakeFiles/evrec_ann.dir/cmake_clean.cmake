file(REMOVE_RECURSE
  "CMakeFiles/evrec_ann.dir/ivf_index.cc.o"
  "CMakeFiles/evrec_ann.dir/ivf_index.cc.o.d"
  "libevrec_ann.a"
  "libevrec_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
