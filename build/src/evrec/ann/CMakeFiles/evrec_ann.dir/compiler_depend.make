# Empty compiler generated dependencies file for evrec_ann.
# This may be replaced when dependencies are built.
