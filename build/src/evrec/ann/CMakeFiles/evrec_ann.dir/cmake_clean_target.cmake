file(REMOVE_RECURSE
  "libevrec_ann.a"
)
