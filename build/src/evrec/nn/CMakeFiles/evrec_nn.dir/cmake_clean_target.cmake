file(REMOVE_RECURSE
  "libevrec_nn.a"
)
