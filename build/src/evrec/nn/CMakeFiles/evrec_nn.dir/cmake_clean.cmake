file(REMOVE_RECURSE
  "CMakeFiles/evrec_nn.dir/conv_text_module.cc.o"
  "CMakeFiles/evrec_nn.dir/conv_text_module.cc.o.d"
  "CMakeFiles/evrec_nn.dir/embedding_table.cc.o"
  "CMakeFiles/evrec_nn.dir/embedding_table.cc.o.d"
  "CMakeFiles/evrec_nn.dir/feature_norm.cc.o"
  "CMakeFiles/evrec_nn.dir/feature_norm.cc.o.d"
  "CMakeFiles/evrec_nn.dir/grad_check.cc.o"
  "CMakeFiles/evrec_nn.dir/grad_check.cc.o.d"
  "CMakeFiles/evrec_nn.dir/linear_layer.cc.o"
  "CMakeFiles/evrec_nn.dir/linear_layer.cc.o.d"
  "CMakeFiles/evrec_nn.dir/sgns.cc.o"
  "CMakeFiles/evrec_nn.dir/sgns.cc.o.d"
  "libevrec_nn.a"
  "libevrec_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
