
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evrec/nn/conv_text_module.cc" "src/evrec/nn/CMakeFiles/evrec_nn.dir/conv_text_module.cc.o" "gcc" "src/evrec/nn/CMakeFiles/evrec_nn.dir/conv_text_module.cc.o.d"
  "/root/repo/src/evrec/nn/embedding_table.cc" "src/evrec/nn/CMakeFiles/evrec_nn.dir/embedding_table.cc.o" "gcc" "src/evrec/nn/CMakeFiles/evrec_nn.dir/embedding_table.cc.o.d"
  "/root/repo/src/evrec/nn/feature_norm.cc" "src/evrec/nn/CMakeFiles/evrec_nn.dir/feature_norm.cc.o" "gcc" "src/evrec/nn/CMakeFiles/evrec_nn.dir/feature_norm.cc.o.d"
  "/root/repo/src/evrec/nn/grad_check.cc" "src/evrec/nn/CMakeFiles/evrec_nn.dir/grad_check.cc.o" "gcc" "src/evrec/nn/CMakeFiles/evrec_nn.dir/grad_check.cc.o.d"
  "/root/repo/src/evrec/nn/linear_layer.cc" "src/evrec/nn/CMakeFiles/evrec_nn.dir/linear_layer.cc.o" "gcc" "src/evrec/nn/CMakeFiles/evrec_nn.dir/linear_layer.cc.o.d"
  "/root/repo/src/evrec/nn/sgns.cc" "src/evrec/nn/CMakeFiles/evrec_nn.dir/sgns.cc.o" "gcc" "src/evrec/nn/CMakeFiles/evrec_nn.dir/sgns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/evrec/la/CMakeFiles/evrec_la.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/text/CMakeFiles/evrec_text.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/util/CMakeFiles/evrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
