# Empty compiler generated dependencies file for evrec_nn.
# This may be replaced when dependencies are built.
