file(REMOVE_RECURSE
  "libevrec_text.a"
)
