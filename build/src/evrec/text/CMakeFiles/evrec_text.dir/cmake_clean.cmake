file(REMOVE_RECURSE
  "CMakeFiles/evrec_text.dir/encoder.cc.o"
  "CMakeFiles/evrec_text.dir/encoder.cc.o.d"
  "CMakeFiles/evrec_text.dir/normalizer.cc.o"
  "CMakeFiles/evrec_text.dir/normalizer.cc.o.d"
  "CMakeFiles/evrec_text.dir/tokenizer.cc.o"
  "CMakeFiles/evrec_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/evrec_text.dir/vocabulary.cc.o"
  "CMakeFiles/evrec_text.dir/vocabulary.cc.o.d"
  "libevrec_text.a"
  "libevrec_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
