# Empty compiler generated dependencies file for evrec_text.
# This may be replaced when dependencies are built.
