file(REMOVE_RECURSE
  "libevrec_simnet.a"
)
