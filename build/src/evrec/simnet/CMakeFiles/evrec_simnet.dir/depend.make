# Empty dependencies file for evrec_simnet.
# This may be replaced when dependencies are built.
