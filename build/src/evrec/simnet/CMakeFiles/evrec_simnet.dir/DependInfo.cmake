
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evrec/simnet/dataset_io.cc" "src/evrec/simnet/CMakeFiles/evrec_simnet.dir/dataset_io.cc.o" "gcc" "src/evrec/simnet/CMakeFiles/evrec_simnet.dir/dataset_io.cc.o.d"
  "/root/repo/src/evrec/simnet/docs.cc" "src/evrec/simnet/CMakeFiles/evrec_simnet.dir/docs.cc.o" "gcc" "src/evrec/simnet/CMakeFiles/evrec_simnet.dir/docs.cc.o.d"
  "/root/repo/src/evrec/simnet/event_gen.cc" "src/evrec/simnet/CMakeFiles/evrec_simnet.dir/event_gen.cc.o" "gcc" "src/evrec/simnet/CMakeFiles/evrec_simnet.dir/event_gen.cc.o.d"
  "/root/repo/src/evrec/simnet/generator.cc" "src/evrec/simnet/CMakeFiles/evrec_simnet.dir/generator.cc.o" "gcc" "src/evrec/simnet/CMakeFiles/evrec_simnet.dir/generator.cc.o.d"
  "/root/repo/src/evrec/simnet/impression_gen.cc" "src/evrec/simnet/CMakeFiles/evrec_simnet.dir/impression_gen.cc.o" "gcc" "src/evrec/simnet/CMakeFiles/evrec_simnet.dir/impression_gen.cc.o.d"
  "/root/repo/src/evrec/simnet/social_graph.cc" "src/evrec/simnet/CMakeFiles/evrec_simnet.dir/social_graph.cc.o" "gcc" "src/evrec/simnet/CMakeFiles/evrec_simnet.dir/social_graph.cc.o.d"
  "/root/repo/src/evrec/simnet/word_factory.cc" "src/evrec/simnet/CMakeFiles/evrec_simnet.dir/word_factory.cc.o" "gcc" "src/evrec/simnet/CMakeFiles/evrec_simnet.dir/word_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/evrec/util/CMakeFiles/evrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
