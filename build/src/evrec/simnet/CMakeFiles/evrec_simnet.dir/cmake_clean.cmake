file(REMOVE_RECURSE
  "CMakeFiles/evrec_simnet.dir/dataset_io.cc.o"
  "CMakeFiles/evrec_simnet.dir/dataset_io.cc.o.d"
  "CMakeFiles/evrec_simnet.dir/docs.cc.o"
  "CMakeFiles/evrec_simnet.dir/docs.cc.o.d"
  "CMakeFiles/evrec_simnet.dir/event_gen.cc.o"
  "CMakeFiles/evrec_simnet.dir/event_gen.cc.o.d"
  "CMakeFiles/evrec_simnet.dir/generator.cc.o"
  "CMakeFiles/evrec_simnet.dir/generator.cc.o.d"
  "CMakeFiles/evrec_simnet.dir/impression_gen.cc.o"
  "CMakeFiles/evrec_simnet.dir/impression_gen.cc.o.d"
  "CMakeFiles/evrec_simnet.dir/social_graph.cc.o"
  "CMakeFiles/evrec_simnet.dir/social_graph.cc.o.d"
  "CMakeFiles/evrec_simnet.dir/word_factory.cc.o"
  "CMakeFiles/evrec_simnet.dir/word_factory.cc.o.d"
  "libevrec_simnet.a"
  "libevrec_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
