# Empty compiler generated dependencies file for evrec_baseline.
# This may be replaced when dependencies are built.
