file(REMOVE_RECURSE
  "CMakeFiles/evrec_baseline.dir/assembler.cc.o"
  "CMakeFiles/evrec_baseline.dir/assembler.cc.o.d"
  "CMakeFiles/evrec_baseline.dir/base_features.cc.o"
  "CMakeFiles/evrec_baseline.dir/base_features.cc.o.d"
  "CMakeFiles/evrec_baseline.dir/cf_features.cc.o"
  "CMakeFiles/evrec_baseline.dir/cf_features.cc.o.d"
  "CMakeFiles/evrec_baseline.dir/feature_index.cc.o"
  "CMakeFiles/evrec_baseline.dir/feature_index.cc.o.d"
  "libevrec_baseline.a"
  "libevrec_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
