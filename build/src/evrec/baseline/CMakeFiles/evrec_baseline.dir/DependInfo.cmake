
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evrec/baseline/assembler.cc" "src/evrec/baseline/CMakeFiles/evrec_baseline.dir/assembler.cc.o" "gcc" "src/evrec/baseline/CMakeFiles/evrec_baseline.dir/assembler.cc.o.d"
  "/root/repo/src/evrec/baseline/base_features.cc" "src/evrec/baseline/CMakeFiles/evrec_baseline.dir/base_features.cc.o" "gcc" "src/evrec/baseline/CMakeFiles/evrec_baseline.dir/base_features.cc.o.d"
  "/root/repo/src/evrec/baseline/cf_features.cc" "src/evrec/baseline/CMakeFiles/evrec_baseline.dir/cf_features.cc.o" "gcc" "src/evrec/baseline/CMakeFiles/evrec_baseline.dir/cf_features.cc.o.d"
  "/root/repo/src/evrec/baseline/feature_index.cc" "src/evrec/baseline/CMakeFiles/evrec_baseline.dir/feature_index.cc.o" "gcc" "src/evrec/baseline/CMakeFiles/evrec_baseline.dir/feature_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/evrec/simnet/CMakeFiles/evrec_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/gbdt/CMakeFiles/evrec_gbdt.dir/DependInfo.cmake"
  "/root/repo/build/src/evrec/util/CMakeFiles/evrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
