file(REMOVE_RECURSE
  "libevrec_baseline.a"
)
