
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evrec/topics/lda.cc" "src/evrec/topics/CMakeFiles/evrec_topics.dir/lda.cc.o" "gcc" "src/evrec/topics/CMakeFiles/evrec_topics.dir/lda.cc.o.d"
  "/root/repo/src/evrec/topics/plsa.cc" "src/evrec/topics/CMakeFiles/evrec_topics.dir/plsa.cc.o" "gcc" "src/evrec/topics/CMakeFiles/evrec_topics.dir/plsa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/evrec/util/CMakeFiles/evrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
