file(REMOVE_RECURSE
  "libevrec_topics.a"
)
