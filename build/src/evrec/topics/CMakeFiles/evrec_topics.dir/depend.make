# Empty dependencies file for evrec_topics.
# This may be replaced when dependencies are built.
