file(REMOVE_RECURSE
  "CMakeFiles/evrec_topics.dir/lda.cc.o"
  "CMakeFiles/evrec_topics.dir/lda.cc.o.d"
  "CMakeFiles/evrec_topics.dir/plsa.cc.o"
  "CMakeFiles/evrec_topics.dir/plsa.cc.o.d"
  "libevrec_topics.a"
  "libevrec_topics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_topics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
