# Empty dependencies file for evrec_la.
# This may be replaced when dependencies are built.
