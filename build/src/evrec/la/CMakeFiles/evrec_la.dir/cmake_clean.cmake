file(REMOVE_RECURSE
  "CMakeFiles/evrec_la.dir/matrix.cc.o"
  "CMakeFiles/evrec_la.dir/matrix.cc.o.d"
  "CMakeFiles/evrec_la.dir/vec_ops.cc.o"
  "CMakeFiles/evrec_la.dir/vec_ops.cc.o.d"
  "libevrec_la.a"
  "libevrec_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
