file(REMOVE_RECURSE
  "libevrec_la.a"
)
