file(REMOVE_RECURSE
  "libevrec_bench_common.a"
)
