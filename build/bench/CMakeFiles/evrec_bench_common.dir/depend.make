# Empty dependencies file for evrec_bench_common.
# This may be replaced when dependencies are built.
