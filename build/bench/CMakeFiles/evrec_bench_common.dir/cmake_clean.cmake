file(REMOVE_RECURSE
  "CMakeFiles/evrec_bench_common.dir/common/bench_profile.cc.o"
  "CMakeFiles/evrec_bench_common.dir/common/bench_profile.cc.o.d"
  "libevrec_bench_common.a"
  "libevrec_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrec_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
