file(REMOVE_RECURSE
  "CMakeFiles/bench_siamese_init.dir/bench_siamese_init.cc.o"
  "CMakeFiles/bench_siamese_init.dir/bench_siamese_init.cc.o.d"
  "bench_siamese_init"
  "bench_siamese_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_siamese_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
