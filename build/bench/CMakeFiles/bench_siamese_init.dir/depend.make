# Empty dependencies file for bench_siamese_init.
# This may be replaced when dependencies are built.
