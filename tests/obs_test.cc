// Tests for evrec/obs: metric registry (counters, gauges, histograms,
// series), scoped trace spans on an injectable clock, and the
// thread-safety contracts the observability layer documents — concurrent
// counter increments sum exactly, and per-thread registry shards fold
// losslessly via Merge. Run these under EVREC_SANITIZE=thread to verify
// the lock-free paths (tools/check.sh does).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "evrec/obs/metrics.h"
#include "evrec/obs/trace.h"
#include "evrec/obs/trace_analysis.h"
#include "evrec/util/clock.h"
#include "evrec/util/rng.h"
#include "evrec/util/thread_pool.h"
#include "evrec/util/trace_context.h"

namespace evrec {
namespace obs {
namespace {

// ---------- counters & gauges ----------

TEST(CounterTest, IncrementsAndReads) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("c");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(CounterTest, SameNameReturnsSamePointer) {
  MetricRegistry registry;
  EXPECT_EQ(registry.GetCounter("x"), registry.GetCounter("x"));
  EXPECT_NE(registry.GetCounter("x"), registry.GetCounter("y"));
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetOverwrites) {
  MetricRegistry registry;
  Gauge* g = registry.GetGauge("g");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_EQ(g->value(), -2.25);
}

// ---------- histograms ----------

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->sum(), 0.0);
  EXPECT_EQ(h->min(), 0.0);
  EXPECT_EQ(h->max(), 0.0);
  EXPECT_EQ(h->Quantile(0.5), 0.0);
  EXPECT_EQ(h->Quantile(0.99), 0.0);
}

TEST(HistogramTest, SingleSampleIsExactAtEveryQuantile) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  h->Record(1234.5);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->min(), 1234.5);
  EXPECT_EQ(h->max(), 1234.5);
  // Interpolation clamps to the observed range, so a single sample is
  // reported exactly — not as some point inside its covering bucket.
  EXPECT_EQ(h->Quantile(0.0), 1234.5);
  EXPECT_EQ(h->Quantile(0.5), 1234.5);
  EXPECT_EQ(h->Quantile(1.0), 1234.5);
}

TEST(HistogramTest, NonFiniteSamplesAreDroppedAndCounted) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  Counter* dropped =
      MetricRegistry::Global()->GetCounter("metrics.dropped_nonfinite");
  uint64_t before = dropped->value();
  h->Record(std::numeric_limits<double>::quiet_NaN());
  h->Record(std::numeric_limits<double>::infinity());
  h->Record(-std::numeric_limits<double>::infinity());
  // The samples never enter the distribution, but their loss is visible:
  // silently swallowing a NaN would hide a numerical fault upstream.
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->sum(), 0.0);
  EXPECT_EQ(dropped->value(), before + 3);
  h->Record(5.0);
  EXPECT_EQ(h->count(), 1u);
}

TEST(HistogramTest, OverflowBucketCatchesHugeValues) {
  HistogramOptions opts;
  opts.first_upper = 1.0;
  opts.growth = 2.0;
  opts.num_buckets = 4;  // bounds 1, 2, 4, 8 + overflow
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h", opts);
  h->Record(1e12);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->max(), 1e12);
  // The overflow bucket sits one past the finite buckets.
  EXPECT_EQ(h->bucket_count(h->num_buckets()), 1u);
  for (int b = 0; b < h->num_buckets(); ++b) {
    EXPECT_EQ(h->bucket_count(b), 0u) << "bucket " << b;
  }
  // Quantiles stay within observed bounds even from the unbounded bucket.
  EXPECT_EQ(h->Quantile(0.99), 1e12);
}

TEST(HistogramTest, NegativeClampsToZeroAndNanIgnored) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  h->Record(-5.0);                // clamped into the first bucket
  h->Record(std::nan(""));        // dropped
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->min(), 0.0);
}

TEST(HistogramTest, QuantilesAreMonotoneInQ) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  Rng rng(123);
  for (int i = 0; i < 5000; ++i) {
    h->Record(rng.UniformDouble() * 1e6);
  }
  double prev = 0.0;
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    double v = h->Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_GE(v, h->min());
    EXPECT_LE(v, h->max());
    prev = v;
  }
}

TEST(HistogramTest, QuantileApproximatesUniformDistribution) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  // 100k uniform samples on [0, 1e6): p50 must land in the right bucket
  // neighbourhood (exponential buckets are coarse at the top end, so the
  // tolerance is one bucket's relative width, x2).
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    h->Record(rng.UniformDouble() * 1e6);
  }
  EXPECT_NEAR(h->Quantile(0.5), 5e5, 2.6e5);
  EXPECT_GT(h->Quantile(0.95), 8e5);
}

TEST(HistogramTest, MergeAddsCountsAndKeepsExtremes) {
  MetricRegistry a, b;
  Histogram* ha = a.GetHistogram("h");
  Histogram* hb = b.GetHistogram("h");
  ha->Record(10.0);
  ha->Record(20.0);
  hb->Record(5.0);
  hb->Record(40000.0);
  ha->Merge(*hb);
  EXPECT_EQ(ha->count(), 4u);
  EXPECT_EQ(ha->sum(), 40035.0);
  EXPECT_EQ(ha->min(), 5.0);
  EXPECT_EQ(ha->max(), 40000.0);
}

TEST(HistogramTest, ConcurrentRecordsCountExactly) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(static_cast<double>(t * 1000 + i % 977));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------- series ----------

TEST(SeriesTest, PreservesAppendOrder) {
  MetricRegistry registry;
  Series* s = registry.GetSeries("loss");
  s->Append(0, 0.9);
  s->Append(1, 0.5);
  s->Append(2, 0.3);
  auto points = s->Points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0], std::make_pair(0.0, 0.9));
  EXPECT_EQ(points[2], std::make_pair(2.0, 0.3));
}

// ---------- registry ----------

TEST(MetricRegistryTest, SnapshotsExposeAllKinds) {
  MetricRegistry registry;
  registry.GetCounter("c")->Increment(3);
  registry.GetGauge("g")->Set(1.25);
  registry.GetHistogram("h")->Record(100.0);
  EXPECT_EQ(registry.CounterValues().at("c"), 3u);
  EXPECT_EQ(registry.GaugeValues().at("g"), 1.25);
  EXPECT_EQ(registry.HistogramValues().at("h").count, 1u);
}

TEST(MetricRegistryTest, ResetClearsEverything) {
  MetricRegistry registry;
  registry.GetCounter("c")->Increment();
  registry.GetHistogram("h")->Record(1.0);
  registry.Reset();
  EXPECT_TRUE(registry.CounterValues().empty());
  EXPECT_TRUE(registry.HistogramValues().empty());
}

TEST(MetricRegistryTest, JsonIsDeterministicAcrossIdenticalRuns) {
  auto build = [] {
    MetricRegistry registry;
    // Deliberately create in non-sorted order: export must still sort.
    registry.GetCounter("z.count")->Increment(7);
    registry.GetCounter("a.count")->Increment(1);
    registry.GetGauge("lr")->Set(0.05);
    Histogram* h = registry.GetHistogram("lat");
    for (int i = 1; i <= 100; ++i) h->Record(i * 3.5);
    Series* s = registry.GetSeries("loss");
    for (int i = 0; i < 5; ++i) s->Append(i, 1.0 / (i + 1));
    return registry.ToJsonString();
  };
  std::string first = build();
  std::string second = build();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // byte-identical
  // Sorted name order in the output.
  EXPECT_LT(first.find("\"a.count\""), first.find("\"z.count\""));
}

TEST(MetricRegistryTest, DumpJsonRoundTripsThroughFile) {
  MetricRegistry registry;
  registry.GetCounter("c")->Increment(9);
  std::string path = ::testing::TempDir() + "/obs_registry.json";
  ASSERT_TRUE(registry.DumpJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 12, '\0');
  size_t n = std::fread(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  contents.resize(n);
  EXPECT_EQ(contents, registry.ToJsonString());
  std::remove(path.c_str());
}

TEST(MetricRegistryTest, MergeFoldsPerThreadShards) {
  // The sharded-aggregation pattern from the file comment: each worker
  // owns a private registry, the owner folds them in afterwards.
  MetricRegistry total;
  constexpr int kShards = 4;
  constexpr int kPerShard = 5000;
  std::vector<MetricRegistry> shards(kShards);
  std::vector<std::thread> threads;
  for (int t = 0; t < kShards; ++t) {
    threads.emplace_back([&shards, t] {
      Counter* c = shards[t].GetCounter("work.items");
      Histogram* h = shards[t].GetHistogram("work.micros");
      for (int i = 0; i < kPerShard; ++i) {
        c->Increment();
        h->Record(static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& shard : shards) total.Merge(shard);
  EXPECT_EQ(total.CounterValues().at("work.items"),
            static_cast<uint64_t>(kShards) * kPerShard);
  EXPECT_EQ(total.HistogramValues().at("work.micros").count,
            static_cast<uint64_t>(kShards) * kPerShard);
}

// ---------- trace spans ----------

class SpanTest : public ::testing::Test {
 protected:
  void TearDown() override { SetClock(nullptr); }
};

TEST_F(SpanTest, RecordsDurationFromInjectedClock) {
  FakeClock clock(1000);
  SetClock(&clock);
  MetricRegistry registry;
  TraceLog log;
  {
    ScopedSpan span("unit.work", &registry, &log);
    clock.Advance(250);
  }
  std::vector<SpanEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.work");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[0].start_micros, 1000);
  EXPECT_EQ(events[0].duration_micros, 250);
  // The span also lands in the registry as a latency histogram.
  EXPECT_EQ(registry.HistogramValues().at("span.unit.work").count, 1u);
  EXPECT_EQ(registry.HistogramValues().at("span.unit.work").sum, 250.0);
}

TEST_F(SpanTest, NestedSpansTrackDepthAndCloseChildFirst) {
  FakeClock clock;
  SetClock(&clock);
  MetricRegistry registry;
  TraceLog log;
  {
    ScopedSpan outer("outer", &registry, &log);
    clock.Advance(10);
    {
      ScopedSpan inner("inner", &registry, &log);
      clock.Advance(5);
    }
    clock.Advance(10);
  }
  std::vector<SpanEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Close-ordered: the child is recorded before the parent.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[0].duration_micros, 5);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[1].duration_micros, 25);
}

TEST_F(SpanTest, MacroExpandsToBlockScopedSpan) {
  FakeClock clock;
  SetClock(&clock);
  TraceLog::Global()->Clear();
  {
    EVREC_SPAN("macro.test");
    clock.Advance(7);
  }
  std::vector<SpanEvent> events = TraceLog::Global()->Snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().name, "macro.test");
  EXPECT_EQ(events.back().duration_micros, 7);
  TraceLog::Global()->Clear();
}

TEST_F(SpanTest, JsonLinesHaveOneObjectPerSpan) {
  FakeClock clock;
  SetClock(&clock);
  MetricRegistry registry;
  TraceLog log;
  {
    ScopedSpan a("a", &registry, &log);
    clock.Advance(1);
  }
  {
    ScopedSpan b("b", &registry, &log);
    clock.Advance(2);
  }
  std::ostringstream os;
  log.DumpJsonLines(os);
  std::string text = os.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("{\"name\": \"a\""), std::string::npos);
  // The four original keys still lead each line (back compatibility);
  // trace identity follows.
  EXPECT_NE(text.find("\"dur_us\": 2,"), std::string::npos);
  EXPECT_NE(text.find("\"trace\": "), std::string::npos);
  EXPECT_NE(text.find("\"tags\": {}"), std::string::npos);
}

// ---------- trace identity, propagation, sampling ----------

TEST_F(SpanTest, NestedSpansShareTraceAndLinkParents) {
  FakeClock clock;
  SetClock(&clock);
  MetricRegistry registry;
  TraceLog log;
  {
    ScopedSpan outer("outer", &registry, &log);
    clock.Advance(1);
    {
      ScopedSpan inner("inner", &registry, &log);
      clock.Advance(1);
    }
  }
  std::vector<SpanEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  const SpanEvent& inner = events[0];
  const SpanEvent& outer = events[1];
  EXPECT_NE(outer.trace_id, 0u);
  EXPECT_EQ(inner.trace_id, outer.trace_id);
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_NE(inner.span_id, outer.span_id);
}

TEST_F(SpanTest, SiblingSpansWithSameNameGetDistinctIds) {
  FakeClock clock;
  SetClock(&clock);
  MetricRegistry registry;
  TraceLog log;
  {
    ScopedSpan root("root", &registry, &log);
    {
      ScopedSpan a("step", &registry, &log);
    }
    {
      ScopedSpan b("step", &registry, &log);
    }
  }
  std::vector<SpanEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_NE(events[0].span_id, events[1].span_id);
  EXPECT_EQ(events[0].parent_id, events[1].parent_id);
}

TEST_F(SpanTest, TagsAreExportedInAttachOrder) {
  FakeClock clock;
  SetClock(&clock);
  MetricRegistry registry;
  TraceLog log;
  {
    ScopedSpan span("tagged", &registry, &log);
    span.AddTag("tier", "2");
    AddSpanTag("cache", "miss");  // free function: innermost open span
  }
  AddSpanTag("orphan", "dropped");  // no open span: silently ignored
  std::vector<SpanEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].tags.size(), 2u);
  EXPECT_EQ(events[0].tags[0],
            std::make_pair(std::string("tier"), std::string("2")));
  EXPECT_EQ(events[0].tags[1],
            std::make_pair(std::string("cache"), std::string("miss")));
}

TEST(TailSamplerTest, KeepDecisionIsPureAndSeeded) {
  TailSamplerConfig half;
  half.keep_fraction = 0.5;
  half.seed = 42;
  int kept = 0;
  for (uint64_t id = 1; id <= 2000; ++id) {
    bool first = TraceLog::SamplerKeeps(half, id);
    bool second = TraceLog::SamplerKeeps(half, id);
    EXPECT_EQ(first, second);  // pure function of (seed, trace id)
    if (first) ++kept;
  }
  // Roughly half kept (hash uniformity, wide tolerance).
  EXPECT_GT(kept, 800);
  EXPECT_LT(kept, 1200);
  // A different seed picks a different subset.
  TailSamplerConfig other = half;
  other.seed = 43;
  int disagreements = 0;
  for (uint64_t id = 1; id <= 2000; ++id) {
    if (TraceLog::SamplerKeeps(half, id) !=
        TraceLog::SamplerKeeps(other, id)) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);
  // Edges: 1.0 keeps everything, 0.0 keeps nothing.
  TailSamplerConfig all, none;
  all.keep_fraction = 1.0;
  none.keep_fraction = 0.0;
  EXPECT_TRUE(TraceLog::SamplerKeeps(all, 7));
  EXPECT_FALSE(TraceLog::SamplerKeeps(none, 7));
}

TEST_F(SpanTest, SampledOutTracesAreDiscardedWholesale) {
  FakeClock clock;
  SetClock(&clock);
  MetricRegistry registry;
  TraceLog log;
  TailSamplerConfig none;
  none.keep_fraction = 0.0;
  log.SetSampler(none);
  {
    ScopedSpan root("req", &registry, &log);
    ScopedSpan child("work", &registry, &log);
  }
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.sampled_out(), 1u);  // one whole trace, not per span
}

TEST_F(SpanTest, KeepTraceOverridesSamplerForInterestingRequests) {
  FakeClock clock;
  SetClock(&clock);
  MetricRegistry registry;
  TraceLog log;
  TailSamplerConfig none;
  none.keep_fraction = 0.0;
  log.SetSampler(none);
  {
    ScopedSpan root("req.degraded", &registry, &log);
    root.KeepTrace();  // error / degraded / over-deadline path
    ScopedSpan child("work", &registry, &log);
  }
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.sampled_out(), 0u);
}

TEST_F(SpanTest, RingBufferEvictsOldestAndCountsDrops) {
  FakeClock clock;
  SetClock(&clock);
  MetricRegistry registry;
  TraceLog log(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("burst", &registry, &log);
    clock.Advance(1);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  // The survivors are the newest four.
  std::vector<SpanEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().start_micros, 6);
  EXPECT_EQ(events.back().start_micros, 9);
}

TEST_F(SpanTest, ExemplarLinksLatencyBucketToTrace) {
  FakeClock clock;
  SetClock(&clock);
  MetricRegistry registry;
  TraceLog log;
  uint64_t trace_id = 0;
  {
    ScopedSpan span("slow.op", &registry, &log);
    trace_id = span.trace_id();
    clock.Advance(1000);
  }
  ASSERT_NE(trace_id, 0u);
  Histogram* h = registry.GetHistogram("span.slow.op");
  ASSERT_EQ(h->count(), 1u);
  bool found = false;
  for (int b = 0; b < h->num_buckets() + 1; ++b) {
    if (h->bucket_count(b) > 0) {
      EXPECT_EQ(h->bucket_exemplar(b), trace_id);
      found = true;
    } else {
      EXPECT_EQ(h->bucket_exemplar(b), 0u);
    }
  }
  EXPECT_TRUE(found);
  // Merge carries exemplars into the destination registry.
  MetricRegistry total;
  total.Merge(registry);
  Histogram* merged = total.GetHistogram("span.slow.op");
  bool merged_found = false;
  for (int b = 0; b < merged->num_buckets() + 1; ++b) {
    if (merged->bucket_exemplar(b) == trace_id) merged_found = true;
  }
  EXPECT_TRUE(merged_found);
  // And the JSON snapshot names the trace.
  std::string json = registry.ToJsonString();
  EXPECT_NE(json.find("\"exemplars\""), std::string::npos);
}

TEST_F(SpanTest, ParallelForReinstallsContextOnWorkerShards) {
  // The regression this guards: spans opened inside ParallelFor used to
  // start fresh traces at depth 0 on worker threads. They must attach to
  // the caller's open span — with ids independent of the pool size.
  FakeClock clock;
  SetClock(&clock);
  auto run = [&](int threads) {
    ResetTraceIdsForTest();
    MetricRegistry registry;
    TraceLog log;
    ThreadPool pool(threads);
    {
      ScopedSpan root("job", &registry, &log);
      pool.ParallelFor(8, [&](int s) {
        (void)s;
        ScopedSpan shard("job.shard", &registry, &log);
      });
      // A second job under the same parent must get fresh span ids.
      pool.ParallelFor(8, [&](int s) {
        (void)s;
        ScopedSpan shard("job.shard", &registry, &log);
      });
    }
    return log.Snapshot();
  };
  std::vector<SpanEvent> single = run(1);
  std::vector<SpanEvent> pooled = run(4);
  ASSERT_EQ(single.size(), 17u);
  ASSERT_EQ(pooled.size(), 17u);

  auto check = [](std::vector<SpanEvent> events) {
    const SpanEvent* root = nullptr;
    for (const auto& e : events) {
      if (e.name == "job") root = &e;
    }
    ASSERT_NE(root, nullptr);
    std::vector<uint64_t> shard_ids;
    for (const auto& e : events) {
      EXPECT_EQ(e.trace_id, root->trace_id);  // one trace end to end
      if (e.name != "job.shard") continue;
      EXPECT_EQ(e.parent_id, root->span_id);  // true parent, not a new root
      EXPECT_EQ(e.depth, 1);
      shard_ids.push_back(e.span_id);
    }
    std::sort(shard_ids.begin(), shard_ids.end());
    EXPECT_EQ(std::adjacent_find(shard_ids.begin(), shard_ids.end()),
              shard_ids.end())
        << "duplicate shard span ids";
  };
  check(single);
  check(pooled);

  // Identical span-id sets for 1 thread and 4 threads: ids depend on the
  // shard index, never on which worker ran the shard.
  auto ids = [](const std::vector<SpanEvent>& events) {
    std::vector<uint64_t> out;
    for (const auto& e : events) out.push_back(e.span_id);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(ids(single), ids(pooled));
}

// ---------- exporters & analysis ----------

TEST_F(SpanTest, ChromeTraceReplayIsByteIdentical) {
  auto build = [&] {
    FakeClock clock(1000);
    SetClock(&clock);
    ResetTraceIdsForTest();
    MetricRegistry registry;
    TraceLog log;
    {
      ScopedSpan root("serve.request", &registry, &log);
      root.AddTag("user", "7");
      {
        ScopedSpan fetch("serve.fetch_vector", &registry, &log);
        fetch.AddTag("outcome", "hit");
        clock.Advance(5);
      }
      {
        ScopedSpan score("serve.score", &registry, &log);
        clock.Advance(3);
      }
      clock.Advance(2);
    }
    std::ostringstream os;
    log.DumpChromeTrace(os);
    return os.str();
  };
  std::string first = build();
  std::string second = build();
  EXPECT_EQ(first, second);  // byte-identical replay
  // Format spot checks: complete events, micros timestamps, ids in args.
  EXPECT_NE(first.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(first.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(first.find("\"ts\": 1000"), std::string::npos);
  EXPECT_NE(first.find("\"dur\": 10"), std::string::npos);
  EXPECT_NE(first.find("\"trace\": \"0000000000000001\""),
            std::string::npos);
  EXPECT_NE(first.find("\"outcome\": \"hit\""), std::string::npos);

  // The exported bytes round-trip through the analysis parser and pass
  // every structural invariant.
  auto spans = ParseChromeTrace(first);
  ASSERT_TRUE(spans.ok()) << spans.status().ToString();
  ASSERT_EQ(spans->size(), 3u);
  EXPECT_TRUE(ValidateSpans(*spans).ok());
  // Tag round-trip (ids and depth are structural, not tags).
  bool saw_outcome = false;
  for (const auto& s : *spans) {
    for (const auto& [k, v] : s.tags) {
      if (k == "outcome") {
        EXPECT_EQ(v, "hit");
        saw_outcome = true;
      }
      EXPECT_NE(k, "trace");
      EXPECT_NE(k, "depth");
    }
  }
  EXPECT_TRUE(saw_outcome);
}

TEST_F(SpanTest, AnalysisReportIsDeterministicAndNamesCriticalPath) {
  FakeClock clock(0);
  SetClock(&clock);
  ResetTraceIdsForTest();
  MetricRegistry registry;
  TraceLog log;
  {
    ScopedSpan root("serve.request", &registry, &log);
    {
      ScopedSpan fast("fast.child", &registry, &log);
      clock.Advance(2);
    }
    {
      ScopedSpan slow("slow.child", &registry, &log);
      clock.Advance(50);
    }
    clock.Advance(1);
  }
  std::ostringstream chrome;
  log.DumpChromeTrace(chrome);
  auto spans = ParseChromeTrace(chrome.str());
  ASSERT_TRUE(spans.ok());
  ASSERT_TRUE(ValidateSpans(*spans).ok());
  TraceAnalysisOptions options;
  options.top_n = 2;
  std::ostringstream report1, report2;
  AnalyzeSpans(*spans, options, report1);
  AnalyzeSpans(*spans, options, report2);
  EXPECT_EQ(report1.str(), report2.str());
  std::string report = report1.str();
  // The critical path descends into the child that finishes last.
  size_t critical = report.find("critical path");
  ASSERT_NE(critical, std::string::npos);
  EXPECT_NE(report.find("slow.child", critical), std::string::npos);
  EXPECT_NE(report.find("self-time profile"), std::string::npos);
  EXPECT_NE(report.find("top 2 slowest spans"), std::string::npos);
}

TEST(TraceAnalysisTest, ValidatorRejectsStructuralCorruption) {
  auto make = [](const std::string& events) {
    return "{\"traceEvents\": [" + events + "]}";
  };
  const char* good =
      "{\"name\": \"root\", \"ph\": \"X\", \"ts\": 0, \"dur\": 10, "
      "\"pid\": 1, \"tid\": 0, \"args\": {\"trace\": "
      "\"0000000000000001\", \"span\": \"000000000000000a\", "
      "\"parent\": \"0000000000000000\"}}";
  auto good_spans = ParseChromeTrace(make(good));
  ASSERT_TRUE(good_spans.ok());
  EXPECT_TRUE(ValidateSpans(*good_spans).ok());

  // Parent id that names no span in the trace.
  std::string orphan = make(std::string(good) +
      ", {\"name\": \"child\", \"ph\": \"X\", \"ts\": 1, \"dur\": 1, "
      "\"pid\": 1, \"tid\": 0, \"args\": {\"trace\": "
      "\"0000000000000001\", \"span\": \"000000000000000b\", "
      "\"parent\": \"00000000000000ff\"}}");
  auto orphan_spans = ParseChromeTrace(orphan);
  ASSERT_TRUE(orphan_spans.ok());
  EXPECT_FALSE(ValidateSpans(*orphan_spans).ok());

  // Malformed JSON is a Corruption status, not a crash.
  EXPECT_FALSE(ParseChromeTrace("{\"traceEvents\": [ nope ]}").ok());
  EXPECT_FALSE(ParseChromeTrace("").ok());
}

}  // namespace
}  // namespace obs
}  // namespace evrec
