// Tests for evrec/obs: metric registry (counters, gauges, histograms,
// series), scoped trace spans on an injectable clock, and the
// thread-safety contracts the observability layer documents — concurrent
// counter increments sum exactly, and per-thread registry shards fold
// losslessly via Merge. Run these under EVREC_SANITIZE=thread to verify
// the lock-free paths (tools/check.sh does).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "evrec/obs/metrics.h"
#include "evrec/obs/trace.h"
#include "evrec/util/clock.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace obs {
namespace {

// ---------- counters & gauges ----------

TEST(CounterTest, IncrementsAndReads) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("c");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(CounterTest, SameNameReturnsSamePointer) {
  MetricRegistry registry;
  EXPECT_EQ(registry.GetCounter("x"), registry.GetCounter("x"));
  EXPECT_NE(registry.GetCounter("x"), registry.GetCounter("y"));
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetOverwrites) {
  MetricRegistry registry;
  Gauge* g = registry.GetGauge("g");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_EQ(g->value(), -2.25);
}

// ---------- histograms ----------

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->sum(), 0.0);
  EXPECT_EQ(h->min(), 0.0);
  EXPECT_EQ(h->max(), 0.0);
  EXPECT_EQ(h->Quantile(0.5), 0.0);
  EXPECT_EQ(h->Quantile(0.99), 0.0);
}

TEST(HistogramTest, SingleSampleIsExactAtEveryQuantile) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  h->Record(1234.5);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->min(), 1234.5);
  EXPECT_EQ(h->max(), 1234.5);
  // Interpolation clamps to the observed range, so a single sample is
  // reported exactly — not as some point inside its covering bucket.
  EXPECT_EQ(h->Quantile(0.0), 1234.5);
  EXPECT_EQ(h->Quantile(0.5), 1234.5);
  EXPECT_EQ(h->Quantile(1.0), 1234.5);
}

TEST(HistogramTest, NonFiniteSamplesAreDroppedAndCounted) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  Counter* dropped =
      MetricRegistry::Global()->GetCounter("metrics.dropped_nonfinite");
  uint64_t before = dropped->value();
  h->Record(std::numeric_limits<double>::quiet_NaN());
  h->Record(std::numeric_limits<double>::infinity());
  h->Record(-std::numeric_limits<double>::infinity());
  // The samples never enter the distribution, but their loss is visible:
  // silently swallowing a NaN would hide a numerical fault upstream.
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->sum(), 0.0);
  EXPECT_EQ(dropped->value(), before + 3);
  h->Record(5.0);
  EXPECT_EQ(h->count(), 1u);
}

TEST(HistogramTest, OverflowBucketCatchesHugeValues) {
  HistogramOptions opts;
  opts.first_upper = 1.0;
  opts.growth = 2.0;
  opts.num_buckets = 4;  // bounds 1, 2, 4, 8 + overflow
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h", opts);
  h->Record(1e12);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->max(), 1e12);
  // The overflow bucket sits one past the finite buckets.
  EXPECT_EQ(h->bucket_count(h->num_buckets()), 1u);
  for (int b = 0; b < h->num_buckets(); ++b) {
    EXPECT_EQ(h->bucket_count(b), 0u) << "bucket " << b;
  }
  // Quantiles stay within observed bounds even from the unbounded bucket.
  EXPECT_EQ(h->Quantile(0.99), 1e12);
}

TEST(HistogramTest, NegativeClampsToZeroAndNanIgnored) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  h->Record(-5.0);                // clamped into the first bucket
  h->Record(std::nan(""));        // dropped
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->min(), 0.0);
}

TEST(HistogramTest, QuantilesAreMonotoneInQ) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  Rng rng(123);
  for (int i = 0; i < 5000; ++i) {
    h->Record(rng.UniformDouble() * 1e6);
  }
  double prev = 0.0;
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    double v = h->Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_GE(v, h->min());
    EXPECT_LE(v, h->max());
    prev = v;
  }
}

TEST(HistogramTest, QuantileApproximatesUniformDistribution) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  // 100k uniform samples on [0, 1e6): p50 must land in the right bucket
  // neighbourhood (exponential buckets are coarse at the top end, so the
  // tolerance is one bucket's relative width, x2).
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    h->Record(rng.UniformDouble() * 1e6);
  }
  EXPECT_NEAR(h->Quantile(0.5), 5e5, 2.6e5);
  EXPECT_GT(h->Quantile(0.95), 8e5);
}

TEST(HistogramTest, MergeAddsCountsAndKeepsExtremes) {
  MetricRegistry a, b;
  Histogram* ha = a.GetHistogram("h");
  Histogram* hb = b.GetHistogram("h");
  ha->Record(10.0);
  ha->Record(20.0);
  hb->Record(5.0);
  hb->Record(40000.0);
  ha->Merge(*hb);
  EXPECT_EQ(ha->count(), 4u);
  EXPECT_EQ(ha->sum(), 40035.0);
  EXPECT_EQ(ha->min(), 5.0);
  EXPECT_EQ(ha->max(), 40000.0);
}

TEST(HistogramTest, ConcurrentRecordsCountExactly) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(static_cast<double>(t * 1000 + i % 977));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------- series ----------

TEST(SeriesTest, PreservesAppendOrder) {
  MetricRegistry registry;
  Series* s = registry.GetSeries("loss");
  s->Append(0, 0.9);
  s->Append(1, 0.5);
  s->Append(2, 0.3);
  auto points = s->Points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0], std::make_pair(0.0, 0.9));
  EXPECT_EQ(points[2], std::make_pair(2.0, 0.3));
}

// ---------- registry ----------

TEST(MetricRegistryTest, SnapshotsExposeAllKinds) {
  MetricRegistry registry;
  registry.GetCounter("c")->Increment(3);
  registry.GetGauge("g")->Set(1.25);
  registry.GetHistogram("h")->Record(100.0);
  EXPECT_EQ(registry.CounterValues().at("c"), 3u);
  EXPECT_EQ(registry.GaugeValues().at("g"), 1.25);
  EXPECT_EQ(registry.HistogramValues().at("h").count, 1u);
}

TEST(MetricRegistryTest, ResetClearsEverything) {
  MetricRegistry registry;
  registry.GetCounter("c")->Increment();
  registry.GetHistogram("h")->Record(1.0);
  registry.Reset();
  EXPECT_TRUE(registry.CounterValues().empty());
  EXPECT_TRUE(registry.HistogramValues().empty());
}

TEST(MetricRegistryTest, JsonIsDeterministicAcrossIdenticalRuns) {
  auto build = [] {
    MetricRegistry registry;
    // Deliberately create in non-sorted order: export must still sort.
    registry.GetCounter("z.count")->Increment(7);
    registry.GetCounter("a.count")->Increment(1);
    registry.GetGauge("lr")->Set(0.05);
    Histogram* h = registry.GetHistogram("lat");
    for (int i = 1; i <= 100; ++i) h->Record(i * 3.5);
    Series* s = registry.GetSeries("loss");
    for (int i = 0; i < 5; ++i) s->Append(i, 1.0 / (i + 1));
    return registry.ToJsonString();
  };
  std::string first = build();
  std::string second = build();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // byte-identical
  // Sorted name order in the output.
  EXPECT_LT(first.find("\"a.count\""), first.find("\"z.count\""));
}

TEST(MetricRegistryTest, DumpJsonRoundTripsThroughFile) {
  MetricRegistry registry;
  registry.GetCounter("c")->Increment(9);
  std::string path = ::testing::TempDir() + "/obs_registry.json";
  ASSERT_TRUE(registry.DumpJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 12, '\0');
  size_t n = std::fread(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  contents.resize(n);
  EXPECT_EQ(contents, registry.ToJsonString());
  std::remove(path.c_str());
}

TEST(MetricRegistryTest, MergeFoldsPerThreadShards) {
  // The sharded-aggregation pattern from the file comment: each worker
  // owns a private registry, the owner folds them in afterwards.
  MetricRegistry total;
  constexpr int kShards = 4;
  constexpr int kPerShard = 5000;
  std::vector<MetricRegistry> shards(kShards);
  std::vector<std::thread> threads;
  for (int t = 0; t < kShards; ++t) {
    threads.emplace_back([&shards, t] {
      Counter* c = shards[t].GetCounter("work.items");
      Histogram* h = shards[t].GetHistogram("work.micros");
      for (int i = 0; i < kPerShard; ++i) {
        c->Increment();
        h->Record(static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& shard : shards) total.Merge(shard);
  EXPECT_EQ(total.CounterValues().at("work.items"),
            static_cast<uint64_t>(kShards) * kPerShard);
  EXPECT_EQ(total.HistogramValues().at("work.micros").count,
            static_cast<uint64_t>(kShards) * kPerShard);
}

// ---------- trace spans ----------

class SpanTest : public ::testing::Test {
 protected:
  void TearDown() override { SetClock(nullptr); }
};

TEST_F(SpanTest, RecordsDurationFromInjectedClock) {
  FakeClock clock(1000);
  SetClock(&clock);
  MetricRegistry registry;
  TraceLog log;
  {
    ScopedSpan span("unit.work", &registry, &log);
    clock.Advance(250);
  }
  std::vector<SpanEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.work");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[0].start_micros, 1000);
  EXPECT_EQ(events[0].duration_micros, 250);
  // The span also lands in the registry as a latency histogram.
  EXPECT_EQ(registry.HistogramValues().at("span.unit.work").count, 1u);
  EXPECT_EQ(registry.HistogramValues().at("span.unit.work").sum, 250.0);
}

TEST_F(SpanTest, NestedSpansTrackDepthAndCloseChildFirst) {
  FakeClock clock;
  SetClock(&clock);
  MetricRegistry registry;
  TraceLog log;
  {
    ScopedSpan outer("outer", &registry, &log);
    clock.Advance(10);
    {
      ScopedSpan inner("inner", &registry, &log);
      clock.Advance(5);
    }
    clock.Advance(10);
  }
  std::vector<SpanEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Close-ordered: the child is recorded before the parent.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[0].duration_micros, 5);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[1].duration_micros, 25);
}

TEST_F(SpanTest, MacroExpandsToBlockScopedSpan) {
  FakeClock clock;
  SetClock(&clock);
  TraceLog::Global()->Clear();
  {
    EVREC_SPAN("macro.test");
    clock.Advance(7);
  }
  std::vector<SpanEvent> events = TraceLog::Global()->Snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().name, "macro.test");
  EXPECT_EQ(events.back().duration_micros, 7);
  TraceLog::Global()->Clear();
}

TEST_F(SpanTest, JsonLinesHaveOneObjectPerSpan) {
  FakeClock clock;
  SetClock(&clock);
  MetricRegistry registry;
  TraceLog log;
  {
    ScopedSpan a("a", &registry, &log);
    clock.Advance(1);
  }
  {
    ScopedSpan b("b", &registry, &log);
    clock.Advance(2);
  }
  std::ostringstream os;
  log.DumpJsonLines(os);
  std::string text = os.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("{\"name\": \"a\""), std::string::npos);
  EXPECT_NE(text.find("\"dur_us\": 2}"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace evrec
