// Tests for evrec/simnet: the synthetic world must actually exhibit the
// structural properties the reproduction depends on (DESIGN.md §2):
// transiency, sparsity, heterogeneous user signal, causal feedback, and
// the word-disjoint user/event vocabularies.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "evrec/simnet/docs.h"
#include "evrec/simnet/generator.h"
#include "evrec/simnet/word_factory.h"
#include "evrec/util/logging.h"

namespace evrec {
namespace simnet {
namespace {

class SimnetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SetLogLevel(LogLevel::kWarn);
    dataset_ = new SimnetDataset(GenerateDataset(TinySimnetConfig()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
    SetLogLevel(LogLevel::kInfo);
  }
  static SimnetDataset* dataset_;
};

SimnetDataset* SimnetTest::dataset_ = nullptr;

// ---------- language ----------

TEST(TopicLanguageTest, EventAndUserVocabulariesAreWordDisjoint) {
  SimnetConfig cfg = TinySimnetConfig();
  Rng rng(cfg.seed, 3);
  TopicLanguage lang(cfg, rng);
  std::unordered_set<std::string> event_words;
  for (int k = 0; k < cfg.num_topics; ++k) {
    for (const auto& w : lang.EventWords(k)) event_words.insert(w);
  }
  for (int k = 0; k < cfg.num_topics; ++k) {
    for (const auto& w : lang.UserWords(k)) {
      EXPECT_EQ(event_words.count(w), 0u) << "shared word: " << w;
    }
  }
}

TEST(TopicLanguageTest, SampleDocumentRespectsMixture) {
  SimnetConfig cfg = TinySimnetConfig();
  Rng rng(cfg.seed, 3);
  TopicLanguage lang(cfg, rng);
  std::vector<double> pure(static_cast<size_t>(cfg.num_topics), 0.0);
  pure[0] = 1.0;
  Rng doc_rng(5);
  auto doc = lang.SampleDocument(pure, 200, /*event_side=*/true,
                                 /*common=*/0.0, doc_rng);
  ASSERT_EQ(doc.size(), 200u);
  std::unordered_set<std::string> topic0(lang.EventWords(0).begin(),
                                         lang.EventWords(0).end());
  for (const auto& w : doc) {
    EXPECT_EQ(topic0.count(w), 1u) << w;
  }
}

TEST(TopicLanguageTest, TopicNamesAreDistinct) {
  SimnetConfig cfg = TinySimnetConfig();
  Rng rng(cfg.seed, 3);
  TopicLanguage lang(cfg, rng);
  std::set<std::string> names;
  for (int k = 0; k < cfg.num_topics; ++k) names.insert(lang.TopicName(k));
  EXPECT_EQ(names.size(), static_cast<size_t>(cfg.num_topics));
}

// ---------- world structure ----------

TEST_F(SimnetTest, EntityCountsMatchConfig) {
  const auto& cfg = dataset_->config;
  EXPECT_EQ(dataset_->num_users(), cfg.num_users);
  EXPECT_EQ(dataset_->num_events(), cfg.num_events);
  EXPECT_EQ(static_cast<int>(dataset_->world.pages.size()), cfg.num_pages);
}

TEST_F(SimnetTest, FriendshipIsSymmetricAndSorted) {
  const auto& users = dataset_->world.users;
  for (const auto& u : users) {
    EXPECT_TRUE(std::is_sorted(u.friends.begin(), u.friends.end()));
    for (int f : u.friends) {
      ASSERT_GE(f, 0);
      ASSERT_LT(f, static_cast<int>(users.size()));
      EXPECT_NE(f, u.id);
      const auto& fv = users[static_cast<size_t>(f)].friends;
      EXPECT_TRUE(std::binary_search(fv.begin(), fv.end(), u.id))
          << "asymmetric edge " << u.id << "<->" << f;
    }
  }
}

TEST_F(SimnetTest, InterestsAreDistributions) {
  for (const auto& u : dataset_->world.users) {
    ASSERT_EQ(static_cast<int>(u.interests.size()),
              dataset_->config.num_topics);
    double sum = 0.0;
    for (double v : u.interests) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST_F(SimnetTest, EventsHaveShortLifespans) {
  const auto& cfg = dataset_->config;
  for (const auto& e : dataset_->events) {
    double lifespan = e.start_day - e.create_day;
    EXPECT_GE(lifespan, cfg.lifespan_min_days - 1e-9);
    EXPECT_LE(lifespan, cfg.lifespan_max_days + 1e-9);
    EXPECT_EQ(e.category_name, dataset_->topic_names[static_cast<size_t>(
                                   e.category)]);
  }
}

TEST_F(SimnetTest, EventCategoryIsArgmaxTopic) {
  for (const auto& e : dataset_->events) {
    for (double t : e.topics) {
      EXPECT_LE(t, e.topics[static_cast<size_t>(e.category)] + 1e-12);
    }
  }
}

// ---------- impression log ----------

TEST_F(SimnetTest, SplitsAreTimeDisjointAndOrdered) {
  const auto& cfg = dataset_->config;
  for (const auto& i : dataset_->rep_train) {
    EXPECT_LT(i.day, cfg.rep_train_days);
  }
  for (const auto& i : dataset_->combiner_train) {
    EXPECT_GE(i.day, cfg.rep_train_days);
    EXPECT_LT(i.day, cfg.combiner_train_days);
  }
  for (const auto& i : dataset_->eval) {
    EXPECT_GE(i.day, cfg.combiner_train_days);
    EXPECT_LT(i.day, cfg.num_days);
  }
  EXPECT_FALSE(dataset_->rep_train.empty());
  EXPECT_FALSE(dataset_->combiner_train.empty());
  EXPECT_FALSE(dataset_->eval.empty());
}

TEST_F(SimnetTest, ImpressionsReferenceActiveEvents) {
  for (const auto& i : dataset_->eval) {
    const Event& e = dataset_->events[static_cast<size_t>(i.event)];
    EXPECT_GE(static_cast<double>(i.day) + 1.0, e.create_day);
    EXPECT_LE(static_cast<double>(i.day), e.start_day + 1e-9);
  }
}

TEST_F(SimnetTest, DownsamplingAchievesTargetRatio) {
  int pos = 0, neg = 0;
  auto count = [&](const std::vector<Impression>& v) {
    for (const auto& i : v) {
      (i.label > 0.5f ? pos : neg) += 1;
    }
  };
  count(dataset_->rep_train);
  count(dataset_->combiner_train);
  count(dataset_->eval);
  ASSERT_GT(pos, 0);
  double ratio = static_cast<double>(neg) / pos;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 7.0);  // target 4, with sampling noise
}

TEST_F(SimnetTest, FeedbackLogsAreCausalAndChronological) {
  for (const auto& edges : dataset_->feedback.event_attendees) {
    for (size_t i = 1; i < edges.size(); ++i) {
      EXPECT_GE(edges[i].day, edges[i - 1].day);
    }
  }
  // Every attendee edge corresponds to a user; user_joins mirrors it.
  int total_joins = 0, total_attendees = 0;
  for (const auto& edges : dataset_->feedback.user_joins) {
    total_joins += static_cast<int>(edges.size());
  }
  for (const auto& edges : dataset_->feedback.event_attendees) {
    total_attendees += static_cast<int>(edges.size());
  }
  EXPECT_EQ(total_joins, total_attendees);
  EXPECT_GT(total_joins, 0);
}

TEST_F(SimnetTest, PerUserHistoryIsSparse) {
  // Median user has few joins - the sparsity property (paper §1).
  std::vector<int> counts;
  for (const auto& edges : dataset_->feedback.user_joins) {
    counts.push_back(static_cast<int>(edges.size()));
  }
  std::sort(counts.begin(), counts.end());
  int median = counts[counts.size() / 2];
  EXPECT_LT(median, 15);
}

TEST_F(SimnetTest, EvalWeekIsMostlyColdStartEvents) {
  // The transiency property: most eval-week events never appeared in the
  // representation-training period.
  EXPECT_GT(ColdStartEventFraction(*dataset_), 0.5);
}

TEST_F(SimnetTest, GroundTruthUtilityOrdersProbabilities) {
  const auto& cfg = dataset_->config;
  const User& u = dataset_->world.users[0];
  const Event& e = dataset_->events[0];
  double base = ParticipationProbability(cfg, u, e, 0, 0, false, 0.0);
  double with_friends = ParticipationProbability(cfg, u, e, 5, 5, false, 0.0);
  double with_host = ParticipationProbability(cfg, u, e, 0, 0, true, 0.0);
  EXPECT_GT(with_friends, base);
  EXPECT_GT(with_host, base);
  EXPECT_GT(base, 0.0);
  EXPECT_LT(with_friends, 1.0);
}

TEST_F(SimnetTest, GenerationIsDeterministic) {
  SimnetDataset again = GenerateDataset(TinySimnetConfig());
  ASSERT_EQ(again.rep_train.size(), dataset_->rep_train.size());
  ASSERT_EQ(again.eval.size(), dataset_->eval.size());
  for (size_t i = 0; i < again.eval.size(); ++i) {
    EXPECT_EQ(again.eval[i].user, dataset_->eval[i].user);
    EXPECT_EQ(again.eval[i].event, dataset_->eval[i].event);
    EXPECT_EQ(again.eval[i].label, dataset_->eval[i].label);
  }
  EXPECT_EQ(again.world.users[7].profile_words,
            dataset_->world.users[7].profile_words);
  EXPECT_EQ(again.events[3].title_words, dataset_->events[3].title_words);
}

TEST_F(SimnetTest, DifferentSeedsDiffer) {
  SimnetConfig cfg = TinySimnetConfig();
  cfg.seed = 777;
  SimnetDataset other = GenerateDataset(cfg);
  EXPECT_NE(other.events[0].title_words, dataset_->events[0].title_words);
}

// ---------- documents ----------

TEST_F(SimnetTest, EventTextIncludesTitleBodyCategory) {
  const Event& e = dataset_->events[0];
  auto words = EventTextWords(e);
  EXPECT_EQ(words.size(),
            e.title_words.size() + e.body_words.size() + 1);
  EXPECT_EQ(words.back(), e.category_name);
}

TEST_F(SimnetTest, UserTextCombinesProfileAndPageTitles) {
  const User* user_with_pages = nullptr;
  for (const auto& u : dataset_->world.users) {
    if (!u.pages.empty()) {
      user_with_pages = &u;
      break;
    }
  }
  ASSERT_NE(user_with_pages, nullptr);
  auto words = UserTextWords(*user_with_pages, dataset_->world.pages);
  EXPECT_GT(words.size(), user_with_pages->profile_words.size());
}

TEST_F(SimnetTest, CategoricalIdsWellFormed) {
  const User& u = dataset_->world.users[1];
  auto ids = UserCategoricalIds(u);
  ASSERT_GE(ids.size(), 3u);
  EXPECT_EQ(ids[0].rfind("city:", 0), 0u);
  EXPECT_EQ(ids[1].rfind("age:", 0), 0u);
  EXPECT_EQ(ids[2].rfind("gender:", 0), 0u);
  EXPECT_EQ(ids.size(), 3 + u.pages.size());
}

TEST(DownsampleTest, KeepsAllPositives) {
  std::vector<Impression> imps;
  for (int i = 0; i < 100; ++i) {
    imps.push_back({0, 0, 0, i < 10 ? 1.0f : 0.0f});
  }
  Rng rng(5);
  auto out = DownsampleNegatives(imps, 2.0, rng);
  int pos = 0, neg = 0;
  for (const auto& i : out) {
    (i.label > 0.5f ? pos : neg) += 1;
  }
  EXPECT_EQ(pos, 10);
  EXPECT_LT(neg, 40);
  EXPECT_GT(neg, 5);
}

TEST(DownsampleTest, NoOpWhenAlreadyBelowTarget) {
  std::vector<Impression> imps;
  for (int i = 0; i < 10; ++i) {
    imps.push_back({0, 0, 0, i < 5 ? 1.0f : 0.0f});
  }
  Rng rng(6);
  auto out = DownsampleNegatives(imps, 4.0, rng);
  EXPECT_EQ(out.size(), 10u);
}

TEST(ActiveEventsTest, WindowsMatchLifespans) {
  std::vector<Event> events(1);
  events[0].id = 0;
  events[0].create_day = 2.5;
  events[0].start_day = 5.5;
  auto active = ActiveEventsByDay(events, 10);
  EXPECT_TRUE(active[2].empty());
  EXPECT_EQ(active[3].size(), 1u);
  EXPECT_EQ(active[5].size(), 1u);
  EXPECT_TRUE(active[6].empty());
}

}  // namespace
}  // namespace simnet
}  // namespace evrec
