// Tests for evrec/store: sharded LRU KV cache and the representation
// vector cache (compute-through semantics, invalidation, stats).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "evrec/store/kv_cache.h"
#include "evrec/store/rep_cache.h"

namespace evrec {
namespace store {
namespace {

TEST(KvCacheTest, PutGetRoundTrip) {
  ShardedKvCache cache(4, 8);
  cache.Put(1, {1.0f, 2.0f});
  std::vector<float> out;
  ASSERT_TRUE(cache.Get(1, &out));
  EXPECT_EQ(out, (std::vector<float>{1.0f, 2.0f}));
  EXPECT_FALSE(cache.Get(2, &out));
}

TEST(KvCacheTest, OverwriteReplacesValue) {
  ShardedKvCache cache(1, 4);
  cache.Put(5, {1.0f});
  cache.Put(5, {2.0f});
  std::vector<float> out;
  ASSERT_TRUE(cache.Get(5, &out));
  EXPECT_EQ(out, std::vector<float>{2.0f});
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(KvCacheTest, LruEvictsLeastRecentlyUsed) {
  ShardedKvCache cache(1, 2);  // single shard, capacity 2
  cache.Put(1, {1.0f});
  cache.Put(2, {2.0f});
  // Touch 1 so 2 becomes LRU.
  std::vector<float> out;
  ASSERT_TRUE(cache.Get(1, &out));
  cache.Put(3, {3.0f});  // evicts 2
  EXPECT_TRUE(cache.Get(1, &out));
  EXPECT_FALSE(cache.Get(2, &out));
  EXPECT_TRUE(cache.Get(3, &out));
  EXPECT_EQ(cache.Stats().evictions, 1u);
}

TEST(KvCacheTest, InvalidateRemovesEntry) {
  ShardedKvCache cache(2, 4);
  cache.Put(7, {7.0f});
  EXPECT_TRUE(cache.Invalidate(7));
  EXPECT_FALSE(cache.Invalidate(7));
  std::vector<float> out;
  EXPECT_FALSE(cache.Get(7, &out));
}

TEST(KvCacheTest, ClearDropsEverything) {
  ShardedKvCache cache(4, 4);
  for (uint64_t k = 0; k < 10; ++k) cache.Put(k, {1.0f});
  cache.Clear();
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(KvCacheTest, StatsTrackHitsAndMisses) {
  ShardedKvCache cache(2, 4);
  cache.Put(1, {1.0f});
  std::vector<float> out;
  cache.Get(1, &out);
  cache.Get(1, &out);
  cache.Get(99, &out);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_NEAR(stats.HitRate(), 2.0 / 3.0, 1e-12);
}

TEST(KvCacheTest, ManyKeysAcrossShards) {
  ShardedKvCache cache(8, 100);
  for (uint64_t k = 0; k < 500; ++k) cache.Put(k, {static_cast<float>(k)});
  // Capacity 8*100 = 800 >= 500: everything retained.
  std::vector<float> out;
  int found = 0;
  for (uint64_t k = 0; k < 500; ++k) {
    if (cache.Get(k, &out)) ++found;
  }
  EXPECT_EQ(found, 500);
}

TEST(RepCacheTest, EntityKeysAreDistinct) {
  EXPECT_NE(EntityKey(EntityKind::kUser, 5),
            EntityKey(EntityKind::kEvent, 5));
  EXPECT_NE(EntityKey(EntityKind::kUser, 5),
            EntityKey(EntityKind::kUser, 6));
}

TEST(RepCacheTest, GetOrComputeComputesOnce) {
  RepVectorCache cache(2, 16);
  int computations = 0;
  auto compute = [&]() {
    ++computations;
    return std::vector<float>{1.0f, 2.0f};
  };
  auto v1 = cache.GetOrCompute(EntityKind::kUser, 1, compute);
  auto v2 = cache.GetOrCompute(EntityKind::kUser, 1, compute);
  EXPECT_EQ(computations, 1);
  EXPECT_EQ(v1, v2);
}

TEST(RepCacheTest, InvalidateForcesRecompute) {
  RepVectorCache cache(2, 16);
  int computations = 0;
  auto compute = [&]() {
    ++computations;
    return std::vector<float>{static_cast<float>(computations)};
  };
  cache.GetOrCompute(EntityKind::kEvent, 3, compute);
  EXPECT_TRUE(cache.Invalidate(EntityKind::kEvent, 3));
  auto v = cache.GetOrCompute(EntityKind::kEvent, 3, compute);
  EXPECT_EQ(computations, 2);
  EXPECT_FLOAT_EQ(v[0], 2.0f);
}

TEST(RepCacheTest, TryGetDoesNotCompute) {
  RepVectorCache cache(2, 16);
  std::vector<float> out;
  EXPECT_FALSE(cache.TryGet(EntityKind::kUser, 4, &out));
  cache.Precompute(EntityKind::kUser, 4, {1.0f, 2.0f});
  ASSERT_TRUE(cache.TryGet(EntityKind::kUser, 4, &out));
  EXPECT_EQ(out, (std::vector<float>{1.0f, 2.0f}));
}

TEST(RepCacheTest, StampedeGuardComputesOnceUnderContention) {
  RepVectorCache cache(4, 64);
  std::atomic<int> computations{0};
  auto slow_compute = [&]() {
    computations.fetch_add(1);
    // Hold the in-flight window open long enough that every thread
    // arrives while the first compute is still running.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return std::vector<float>{1.0f, 2.0f, 3.0f};
  };
  const int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::vector<float>> results(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      results[static_cast<size_t>(t)] =
          cache.GetOrCompute(EntityKind::kEvent, 42, slow_compute);
    });
  }
  for (auto& th : threads) th.join();
  // Exactly one thread ran the expensive compute; everyone else joined
  // the in-flight latch and got the same vector.
  EXPECT_EQ(computations.load(), 1);
  for (const auto& r : results) {
    EXPECT_EQ(r, (std::vector<float>{1.0f, 2.0f, 3.0f}));
  }
}

TEST(RepCacheTest, StampedeGuardDistinctKeysComputeIndependently) {
  RepVectorCache cache(4, 64);
  std::atomic<int> computations{0};
  const int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      cache.GetOrCompute(EntityKind::kUser, t, [&]() {
        computations.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return std::vector<float>{static_cast<float>(t)};
      });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(computations.load(), kThreads);
}

TEST(RepCacheTest, PrecomputeSkipsComputation) {
  RepVectorCache cache(2, 16);
  cache.Precompute(EntityKind::kUser, 9, {4.0f});
  auto v = cache.GetOrCompute(EntityKind::kUser, 9, []() {
    ADD_FAILURE() << "compute should not run";
    return std::vector<float>{};
  });
  EXPECT_FLOAT_EQ(v[0], 4.0f);
}

}  // namespace
}  // namespace store
}  // namespace evrec
