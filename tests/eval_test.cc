// Tests for evrec/eval: ROC AUC, P/R curves, precision@recall, sampling,
// log loss, accuracy, and the table printer.

#include <gtest/gtest.h>

#include "evrec/eval/metrics.h"
#include "evrec/eval/table_printer.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace eval {
namespace {

TEST(RocAucTest, PerfectRanking) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  std::vector<float> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 1.0);
}

TEST(RocAucTest, InvertedRanking) {
  std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  std::vector<float> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.0);
}

TEST(RocAucTest, AllTiedIsHalf) {
  std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  std::vector<float> labels = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.5);
}

TEST(RocAucTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {0, 0}), 0.5);
}

TEST(RocAucTest, KnownMixedCase) {
  // 1 positive ranked above 1 of 2 negatives: AUC = 0.5.
  std::vector<double> scores = {0.6, 0.7, 0.5};
  std::vector<float> labels = {1, 0, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.5);
}

TEST(RocAucTest, AgreesWithBruteForce) {
  Rng rng(17);
  std::vector<double> scores;
  std::vector<float> labels;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(rng.Uniform(0, 1));
    // induce correlation and ties
    double s = scores.back();
    scores.back() = std::round(s * 20) / 20.0;
    labels.push_back(rng.Bernoulli(s) ? 1.0f : 0.0f);
  }
  // Brute force: P(score_pos > score_neg) + 0.5 P(equal).
  double wins = 0.0;
  long pairs = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] < 0.5f) continue;
    for (size_t j = 0; j < scores.size(); ++j) {
      if (labels[j] > 0.5f) continue;
      ++pairs;
      if (scores[i] > scores[j]) {
        wins += 1.0;
      } else if (scores[i] == scores[j]) {
        wins += 0.5;
      }
    }
  }
  EXPECT_NEAR(RocAuc(scores, labels), wins / pairs, 1e-12);
}

TEST(PrCurveTest, KnownSmallCase) {
  // Scores descending: labels 1, 0, 1, 0.
  std::vector<double> scores = {0.9, 0.8, 0.7, 0.6};
  std::vector<float> labels = {1, 0, 1, 0};
  auto curve = PrecisionRecallCurve(scores, labels);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].precision, 0.5);
  EXPECT_DOUBLE_EQ(curve[2].recall, 1.0);
  EXPECT_NEAR(curve[2].precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(curve[3].recall, 1.0);
  EXPECT_DOUBLE_EQ(curve[3].precision, 0.5);
}

TEST(PrCurveTest, RecallIsNonDecreasing) {
  Rng rng(18);
  std::vector<double> scores;
  std::vector<float> labels;
  for (int i = 0; i < 300; ++i) {
    scores.push_back(rng.Uniform(0, 1));
    labels.push_back(rng.Bernoulli(0.3) ? 1.0f : 0.0f);
  }
  auto curve = PrecisionRecallCurve(scores, labels);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
    EXPECT_LE(curve[i - 1].threshold, 1.0);
  }
  EXPECT_NEAR(curve.back().recall, 1.0, 1e-12);
}

TEST(PrCurveTest, TieGroupsConsumedAtomically) {
  std::vector<double> scores = {0.5, 0.5, 0.5, 0.1};
  std::vector<float> labels = {1, 0, 1, 0};
  auto curve = PrecisionRecallCurve(scores, labels);
  // Only two distinct thresholds.
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].recall, 1.0);
  EXPECT_NEAR(curve[0].precision, 2.0 / 3.0, 1e-12);
}

TEST(PrCurveTest, NoPositivesYieldsEmptyCurve) {
  EXPECT_TRUE(PrecisionRecallCurve({0.5, 0.4}, {0, 0}).empty());
}

TEST(PrecisionAtRecallTest, FirstCrossing) {
  std::vector<PrPoint> curve = {
      {0.9, 1.0, 0.2}, {0.8, 0.8, 0.5}, {0.7, 0.6, 0.8}, {0.6, 0.4, 1.0}};
  EXPECT_DOUBLE_EQ(PrecisionAtRecall(curve, 0.6), 0.6);
  EXPECT_DOUBLE_EQ(PrecisionAtRecall(curve, 0.8), 0.6);
  EXPECT_DOUBLE_EQ(PrecisionAtRecall(curve, 0.9), 0.4);
  EXPECT_DOUBLE_EQ(PrecisionAtRecall(curve, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtRecall({}, 0.5), 0.0);
}

TEST(SampleCurveTest, EvenRecallGrid) {
  std::vector<PrPoint> curve = {{0.9, 1.0, 0.5}, {0.1, 0.5, 1.0}};
  auto grid = SampleCurve(curve, 4);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_DOUBLE_EQ(grid[0].recall, 0.25);
  EXPECT_DOUBLE_EQ(grid[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(grid[3].recall, 1.0);
  EXPECT_DOUBLE_EQ(grid[3].precision, 0.5);
}

TEST(LogLossTest, PerfectAndWorst) {
  EXPECT_NEAR(MeanLogLoss({1.0, 0.0}, {1, 0}), 0.0, 1e-9);
  EXPECT_GT(MeanLogLoss({0.0, 1.0}, {1, 0}), 10.0);
  EXPECT_NEAR(MeanLogLoss({0.5}, {1}), std::log(2.0), 1e-12);
}

TEST(AccuracyTest, ThresholdBehaviour) {
  std::vector<double> scores = {0.9, 0.4, 0.6, 0.1};
  std::vector<float> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(Accuracy(scores, labels, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(Accuracy(scores, labels, 0.95), 0.5);
}

TEST(RocAucProperty, InvariantUnderMonotoneTransform) {
  // AUC is a rank statistic: any strictly increasing transform of the
  // scores leaves it unchanged.
  Rng rng(31);
  std::vector<double> scores;
  std::vector<float> labels;
  for (int i = 0; i < 250; ++i) {
    scores.push_back(rng.Uniform(-3, 3));
    labels.push_back(rng.Bernoulli(0.25) ? 1.0f : 0.0f);
  }
  double base = RocAuc(scores, labels);
  std::vector<double> transformed;
  for (double s : scores) transformed.push_back(std::exp(0.5 * s) + 7.0);
  EXPECT_DOUBLE_EQ(RocAuc(transformed, labels), base);
}

TEST(RocAucProperty, FlippingScoresFlipsAuc) {
  Rng rng(32);
  std::vector<double> scores;
  std::vector<float> labels;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(rng.Uniform(0, 1));
    labels.push_back(rng.Bernoulli(0.4) ? 1.0f : 0.0f);
  }
  double base = RocAuc(scores, labels);
  std::vector<double> flipped;
  for (double s : scores) flipped.push_back(-s);
  EXPECT_NEAR(RocAuc(flipped, labels), 1.0 - base, 1e-12);
}

TEST(PrCurveProperty, PrecisionBoundedByPositiveRate) {
  // The curve's final point (threshold -> -inf) has precision equal to
  // the base positive rate, and every precision lies in [0, 1] (0 occurs
  // while only negatives have been admitted).
  Rng rng(33);
  std::vector<double> scores;
  std::vector<float> labels;
  int pos = 0;
  for (int i = 0; i < 300; ++i) {
    scores.push_back(rng.Uniform(0, 1));
    bool y = rng.Bernoulli(0.3);
    pos += y ? 1 : 0;
    labels.push_back(y ? 1.0f : 0.0f);
  }
  auto curve = PrecisionRecallCurve(scores, labels);
  ASSERT_FALSE(curve.empty());
  for (const auto& p : curve) {
    EXPECT_GE(p.precision, 0.0);
    EXPECT_LE(p.precision, 1.0);
  }
  EXPECT_NEAR(curve.back().precision,
              static_cast<double>(pos) / 300.0, 1e-12);
}

TEST(PrCurveProperty, PerfectScorerHasUnitPrecisionEverywhere) {
  std::vector<double> scores;
  std::vector<float> labels;
  for (int i = 0; i < 50; ++i) {
    bool y = i < 20;
    scores.push_back(y ? 1.0 + i : -1.0 - i);
    labels.push_back(y ? 1.0f : 0.0f);
  }
  auto curve = PrecisionRecallCurve(scores, labels);
  EXPECT_DOUBLE_EQ(PrecisionAtRecall(curve, 1.0), 1.0);
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter t({"name", "AUC"});
  t.AddRow({"baseline", "0.810"});
  t.AddRow({"x", "0.861"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| name     | AUC   |"), std::string::npos);
  EXPECT_NE(out.find("| baseline | 0.810 |"), std::string::npos);
  EXPECT_NE(out.find("|----------|-------|"), std::string::npos);
}

TEST(TablePrinterTest, Metric3Formats) {
  EXPECT_EQ(Metric3(0.8114), "0.811");
  EXPECT_EQ(Metric3(1.0), "1.000");
}

}  // namespace
}  // namespace eval
}  // namespace evrec
