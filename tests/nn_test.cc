// Tests for evrec/nn: embedding table, linear layer, and the convolutional
// text module. Every backward pass is validated against central-difference
// numeric gradients (the correctness evidence a from-scratch NN needs).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "evrec/nn/conv_text_module.h"
#include "evrec/nn/embedding_table.h"
#include "evrec/nn/feature_norm.h"
#include "evrec/nn/grad_check.h"
#include "evrec/nn/linear_layer.h"

namespace evrec {
namespace nn {
namespace {

text::EncodedText MakeInput(std::vector<int> ids) {
  text::EncodedText e;
  e.word_index.resize(ids.size(), 0);
  for (size_t i = 0; i < ids.size(); ++i) {
    e.word_index[i] = static_cast<int>(i / 2);  // two tokens per "word"
  }
  e.token_ids = std::move(ids);
  return e;
}

// Weighted-sum loss over a module output: L = sum_k w_k out_k.
std::vector<float> FixedLossWeights(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> w(static_cast<size_t>(n));
  for (auto& v : w) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return w;
}

double WeightedLoss(const std::vector<float>& out,
                    const std::vector<float>& w) {
  double l = 0.0;
  for (size_t i = 0; i < out.size(); ++i) l += out[i] * w[i];
  return l;
}

// ---------- EmbeddingTable ----------

TEST(EmbeddingTableTest, AccumulateAndStep) {
  EmbeddingTable t(4, 3);
  float g[3] = {1.0f, 2.0f, 3.0f};
  t.AccumulateGrad(2, g);
  t.AccumulateGrad(2, g, 0.5f);
  EXPECT_EQ(t.num_touched(), 1);
  float before = t.Vector(2)[1];
  t.Step(0.1f);
  // row2 -= 0.1 * 1.5*g
  EXPECT_NEAR(t.Vector(2)[1], before - 0.1f * 3.0f, 1e-6);
  EXPECT_EQ(t.num_touched(), 0);
  // Untouched row unchanged.
  EXPECT_FLOAT_EQ(t.Vector(0)[0], 0.0f);
}

TEST(EmbeddingTableTest, ZeroGradClearsWithoutUpdating) {
  EmbeddingTable t(4, 2);
  Rng rng(1);
  t.RandomInit(rng);
  float before = t.Vector(1)[0];
  float g[2] = {5.0f, 5.0f};
  t.AccumulateGrad(1, g);
  t.ZeroGrad();
  t.Step(1.0f);  // nothing pending
  EXPECT_FLOAT_EQ(t.Vector(1)[0], before);
}

TEST(EmbeddingTableTest, StepAfterZeroGradStartsFresh) {
  EmbeddingTable t(4, 2);
  float g[2] = {1.0f, 0.0f};
  t.AccumulateGrad(0, g);
  t.ZeroGrad();
  t.AccumulateGrad(0, g);
  t.Step(1.0f);
  EXPECT_FLOAT_EQ(t.Vector(0)[0], -1.0f);  // single accumulation applied
}

TEST(EmbeddingTableTest, SerializeRoundTrip) {
  std::string path = testing::TempDir() + "/evrec_embt_test.bin";
  EmbeddingTable t(5, 4);
  Rng rng(2);
  t.RandomInit(rng);
  {
    BinaryWriter w(path);
    t.Serialize(w);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  EmbeddingTable loaded = EmbeddingTable::Deserialize(r);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(loaded.vocab_size(), 5);
  ASSERT_EQ(loaded.dim(), 4);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(loaded.Vector(i)[j], t.Vector(i)[j]);
    }
  }
  std::remove(path.c_str());
}

// ---------- LinearLayer ----------

TEST(LinearLayerTest, ForwardKnownValues) {
  LinearLayer l(2, 2);
  l.mutable_weight().At(0, 0) = 1.0f;
  l.mutable_weight().At(0, 1) = 2.0f;
  l.mutable_weight().At(1, 0) = -1.0f;
  l.mutable_weight().At(1, 1) = 0.5f;
  l.mutable_bias()[0] = 0.25f;
  float x[2] = {2.0f, 3.0f};
  float y[2];
  l.Forward(x, y);
  EXPECT_FLOAT_EQ(y[0], 8.25f);
  EXPECT_FLOAT_EQ(y[1], -0.5f);
}

TEST(LinearLayerTest, GradCheckWeightsBiasInput) {
  Rng rng(3);
  LinearLayer l(4, 3);
  l.XavierInit(rng);
  std::vector<float> x = {0.3f, -0.7f, 1.1f, 0.2f};
  std::vector<float> w = FixedLossWeights(3, 99);

  auto loss = [&]() {
    float y[3];
    l.Forward(x.data(), y);
    return WeightedLoss({y[0], y[1], y[2]}, w);
  };

  // Analytic gradients.
  l.ZeroGrad();
  std::vector<float> dx(4, 0.0f);
  float y[3];
  l.Forward(x.data(), y);
  l.Backward(x.data(), w.data(), dx.data());

  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) {
      double num = NumericGradient(loss, &l.mutable_weight().At(r, c));
      EXPECT_LT(RelativeError(num, l.weight_grad().At(r, c)), 2e-3)
          << "W(" << r << "," << c << ")";
    }
    double num_b = NumericGradient(loss, &l.mutable_bias()[r]);
    EXPECT_LT(RelativeError(num_b, l.bias_grad()[r]), 2e-3);
  }
  for (int i = 0; i < 4; ++i) {
    double num = NumericGradient(loss, &x[static_cast<size_t>(i)]);
    EXPECT_LT(RelativeError(num, dx[static_cast<size_t>(i)]), 2e-3);
  }
}

TEST(LinearLayerTest, StepAppliesAndClears) {
  LinearLayer l(1, 1);
  l.mutable_weight().At(0, 0) = 1.0f;
  float x[1] = {2.0f};
  float dy[1] = {3.0f};
  l.Backward(x, dy, nullptr);
  l.Step(0.1f);
  EXPECT_NEAR(l.weight().At(0, 0), 1.0f - 0.1f * 6.0f, 1e-6);
  // Second step without new grads: no change.
  l.Step(0.1f);
  EXPECT_NEAR(l.weight().At(0, 0), 0.4f, 1e-6);
}

TEST(LinearLayerTest, NoBiasVariant) {
  LinearLayer l(2, 1, /*has_bias=*/false);
  l.mutable_weight().At(0, 0) = 1.0f;
  l.mutable_weight().At(0, 1) = 1.0f;
  float x[2] = {1.0f, 1.0f};
  float y[1];
  l.Forward(x, y);
  EXPECT_FLOAT_EQ(y[0], 2.0f);
}

TEST(LinearLayerTest, SerializeRoundTrip) {
  std::string path = testing::TempDir() + "/evrec_lin_test.bin";
  Rng rng(4);
  LinearLayer l(3, 2);
  l.XavierInit(rng);
  l.mutable_bias()[1] = 0.5f;
  {
    BinaryWriter w(path);
    l.Serialize(w);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  LinearLayer loaded = LinearLayer::Deserialize(r);
  ASSERT_TRUE(r.ok());
  float x[3] = {1.0f, -1.0f, 2.0f};
  float y1[2], y2[2];
  l.Forward(x, y1);
  loaded.Forward(x, y2);
  EXPECT_FLOAT_EQ(y1[0], y2[0]);
  EXPECT_FLOAT_EQ(y1[1], y2[1]);
  std::remove(path.c_str());
}

// ---------- ConvTextModule ----------

TEST(ConvTextModuleTest, EmptyInputYieldsZeroOutput) {
  auto table = std::make_shared<EmbeddingTable>(10, 4);
  ConvTextModule m(table, 3, 5);
  ConvContext ctx;
  m.Forward(text::EncodedText{}, &ctx);
  EXPECT_TRUE(ctx.empty);
  ASSERT_EQ(ctx.output.size(), 5u);
  for (float v : ctx.output) EXPECT_FLOAT_EQ(v, 0.0f);
  // Backward on empty input is a no-op (no crash, no grads).
  std::vector<float> dout(5, 1.0f);
  m.Backward(dout.data(), ctx);
  EXPECT_EQ(table->num_touched(), 0);
}

TEST(ConvTextModuleTest, ShortInputPaddedToOneWindow) {
  auto table = std::make_shared<EmbeddingTable>(10, 4);
  Rng rng(5);
  table->RandomInit(rng);
  ConvTextModule m(table, 5, 3);
  m.XavierInit(rng);
  ConvContext ctx;
  m.Forward(MakeInput({1, 2}), &ctx);  // 2 tokens < window 5
  EXPECT_FALSE(ctx.empty);
  EXPECT_EQ(ctx.num_windows, 1);
}

TEST(ConvTextModuleTest, WindowCountMatchesTokens) {
  auto table = std::make_shared<EmbeddingTable>(10, 4);
  ConvTextModule m(table, 3, 2);
  ConvContext ctx;
  m.Forward(MakeInput({1, 2, 3, 4, 5, 6}), &ctx);
  EXPECT_EQ(ctx.num_windows, 4);  // 6 - 3 + 1
}

TEST(ConvTextModuleTest, PoolingRelationsHold) {
  auto table = std::make_shared<EmbeddingTable>(10, 4);
  Rng rng(6);
  table->RandomInit(rng, 0.5f);
  auto input = MakeInput({1, 2, 3, 4, 5});

  ConvTextModule base(table, 2, 3, PoolType::kLogSumExp);
  base.XavierInit(rng);

  ConvContext lse_ctx;
  base.Forward(input, &lse_ctx);

  // Re-interpret the same pre-pool values under max and mean by hand.
  for (int c = 0; c < 3; ++c) {
    float mx = lse_ctx.pre_pool.At(0, c);
    float mean = 0.0f;
    for (int i = 0; i < lse_ctx.num_windows; ++i) {
      mx = std::max(mx, lse_ctx.pre_pool.At(i, c));
      mean += lse_ctx.pre_pool.At(i, c);
    }
    mean /= static_cast<float>(lse_ctx.num_windows);
    // log-mean-exp lies between the mean and the max.
    EXPECT_GE(lse_ctx.output[static_cast<size_t>(c)], mean - 1e-5f);
    EXPECT_LE(lse_ctx.output[static_cast<size_t>(c)], mx + 1e-5f);
  }
}

TEST(ConvTextModuleTest, ArgmaxWindowIsCorrect) {
  auto table = std::make_shared<EmbeddingTable>(10, 3);
  Rng rng(7);
  table->RandomInit(rng, 0.5f);
  ConvTextModule m(table, 1, 2);
  m.XavierInit(rng);
  ConvContext ctx;
  m.Forward(MakeInput({1, 2, 3}), &ctx);
  for (int c = 0; c < 2; ++c) {
    int arg = ctx.argmax_window[static_cast<size_t>(c)];
    for (int i = 0; i < ctx.num_windows; ++i) {
      EXPECT_LE(ctx.pre_pool.At(i, c), ctx.pre_pool.At(arg, c) + 1e-7f);
    }
  }
}

class ConvGradCheckTest
    : public ::testing::TestWithParam<std::tuple<PoolType, int>> {};

TEST_P(ConvGradCheckTest, BackwardMatchesNumeric) {
  const PoolType pool = std::get<0>(GetParam());
  const int window = std::get<1>(GetParam());

  auto table = std::make_shared<EmbeddingTable>(8, 3);
  Rng rng(100 + window);
  table->RandomInit(rng, 0.5f);
  ConvTextModule m(table, window, 4, pool);
  m.XavierInit(rng);

  auto input = MakeInput({1, 3, 5, 2, 6});
  std::vector<float> w = FixedLossWeights(4, 42);

  auto loss = [&]() {
    ConvContext c;
    m.Forward(input, &c);
    return WeightedLoss(c.output, w);
  };

  ConvContext ctx;
  m.Forward(input, &ctx);
  m.ZeroGrad();
  table->ZeroGrad();
  m.Backward(w.data(), ctx);

  // Convolution weights (sample a few entries).
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < m.conv().in_dim(); c += 2) {
      double num =
          NumericGradient(loss, &m.mutable_conv().mutable_weight().At(r, c));
      EXPECT_LT(RelativeError(num, m.conv().weight_grad().At(r, c)), 5e-3)
          << "pool=" << PoolTypeName(pool) << " window=" << window << " ("
          << r << "," << c << ")";
    }
    double numb = NumericGradient(loss, &m.mutable_conv().mutable_bias()[r]);
    EXPECT_LT(RelativeError(numb, m.conv().bias_grad()[r]), 5e-3);
  }
  // Embedding rows used by the input.
  for (int id : {1, 3, 5}) {
    for (int d = 0; d < 3; ++d) {
      double num = NumericGradient(loss, &table->MutableVector(id)[d]);
      EXPECT_LT(RelativeError(num, table->GradRow(id)[d]), 5e-3)
          << "emb id=" << id << " d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoolingAndWindows, ConvGradCheckTest,
    ::testing::Combine(::testing::Values(PoolType::kLogSumExp,
                                         PoolType::kMax, PoolType::kMean),
                       ::testing::Values(1, 2, 3, 5)));

TEST(ConvTextModuleTest, RepeatedTokenAccumulatesEmbeddingGrad) {
  auto table = std::make_shared<EmbeddingTable>(4, 2);
  Rng rng(9);
  table->RandomInit(rng, 0.5f);
  ConvTextModule m(table, 1, 2);
  m.XavierInit(rng);
  auto input = MakeInput({1, 1, 1});
  std::vector<float> w = FixedLossWeights(2, 7);

  auto loss = [&]() {
    ConvContext c;
    m.Forward(input, &c);
    return WeightedLoss(c.output, w);
  };
  ConvContext ctx;
  m.Forward(input, &ctx);
  table->ZeroGrad();
  m.ZeroGrad();
  m.Backward(w.data(), ctx);
  for (int d = 0; d < 2; ++d) {
    double num = NumericGradient(loss, &table->MutableVector(1)[d]);
    EXPECT_LT(RelativeError(num, table->GradRow(1)[d]), 5e-3);
  }
}

TEST(ConvTextModuleTest, SerializeRoundTripPreservesOutput) {
  std::string path = testing::TempDir() + "/evrec_conv_test.bin";
  auto table = std::make_shared<EmbeddingTable>(8, 3);
  Rng rng(10);
  table->RandomInit(rng);
  ConvTextModule m(table, 3, 4);
  m.XavierInit(rng);
  {
    BinaryWriter w(path);
    m.Serialize(w);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  ConvTextModule loaded = ConvTextModule::Deserialize(r, table);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(loaded.window_size(), 3);
  auto input = MakeInput({1, 2, 3, 4});
  ConvContext a, b;
  m.Forward(input, &a);
  loaded.Forward(input, &b);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(a.output[static_cast<size_t>(i)],
                    b.output[static_cast<size_t>(i)]);
  }
  std::remove(path.c_str());
}

// ---------- FeatureNorm ----------

TEST(FeatureNormTest, IdentityUntilCalibrated) {
  FeatureNorm norm(3);
  EXPECT_FALSE(norm.calibrated());
  float x[3] = {1.0f, -2.0f, 0.5f};
  float y[3];
  norm.Forward(x, y);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], -2.0f);
  EXPECT_FLOAT_EQ(y[2], 0.5f);
}

TEST(FeatureNormTest, CalibratedOutputIsStandardized) {
  FeatureNorm norm(2);
  std::vector<std::vector<float>> samples;
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    samples.push_back({static_cast<float>(rng.Normal(5.0, 2.0)),
                       static_cast<float>(rng.Normal(-1.0, 0.5))});
  }
  norm.Calibrate(samples);
  EXPECT_TRUE(norm.calibrated());
  // Transform the sample and verify ~N(0,1) per dim.
  double sum0 = 0.0, sq0 = 0.0;
  for (const auto& s : samples) {
    float y[2];
    norm.Forward(s.data(), y);
    sum0 += y[0];
    sq0 += static_cast<double>(y[0]) * y[0];
  }
  double n = static_cast<double>(samples.size());
  EXPECT_NEAR(sum0 / n, 0.0, 1e-3);
  EXPECT_NEAR(sq0 / n, 1.0, 1e-2);
}

TEST(FeatureNormTest, ConstantDimensionPassesThrough) {
  FeatureNorm norm(1);
  std::vector<std::vector<float>> samples(100, std::vector<float>{3.0f});
  norm.Calibrate(samples);
  float x[1] = {7.0f};
  float y[1];
  norm.Forward(x, y);
  EXPECT_FLOAT_EQ(y[0], 4.0f);  // (7 - 3) * 1 (inv_std clamped to 1)
}

TEST(FeatureNormTest, BackwardScalesByInvStd) {
  FeatureNorm norm(1);
  std::vector<std::vector<float>> samples;
  Rng rng(18);
  for (int i = 0; i < 500; ++i) {
    samples.push_back({static_cast<float>(rng.Normal(0.0, 4.0))});
  }
  norm.Calibrate(samples);
  float dy[1] = {1.0f};
  float dx[1];
  norm.Backward(dy, dx);
  EXPECT_NEAR(dx[0], norm.inv_std()[0], 1e-7);
  EXPECT_NEAR(dx[0], 0.25f, 0.03f);  // 1/std, std ~ 4
}

TEST(FeatureNormTest, SerializeRoundTrip) {
  std::string path = testing::TempDir() + "/evrec_fnorm_test.bin";
  FeatureNorm norm(2);
  std::vector<std::vector<float>> samples;
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    samples.push_back({static_cast<float>(rng.Normal(1.0, 2.0)),
                       static_cast<float>(rng.Normal(-3.0, 1.0))});
  }
  norm.Calibrate(samples);
  {
    BinaryWriter w(path);
    norm.Serialize(w);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  FeatureNorm loaded = FeatureNorm::Deserialize(r);
  ASSERT_TRUE(r.ok());
  float x[2] = {0.5f, 0.5f};
  float y1[2], y2[2];
  norm.Forward(x, y1);
  loaded.Forward(x, y2);
  EXPECT_FLOAT_EQ(y1[0], y2[0]);
  EXPECT_FLOAT_EQ(y1[1], y2[1]);
  std::remove(path.c_str());
}

// ---------- Adagrad ----------

TEST(AdagradTest, EmbeddingStepScalesByAccumulator) {
  EmbeddingTable t(2, 1);
  t.EnableAdagrad();
  float g[1] = {2.0f};
  t.AccumulateGrad(0, g);
  t.Step(0.1f);
  // First step: accum = 4, update = 0.1 * 2 / sqrt(4) = 0.1.
  EXPECT_NEAR(t.Vector(0)[0], -0.1f, 1e-6);
  t.AccumulateGrad(0, g);
  t.Step(0.1f);
  // Second step: accum = 8, update = 0.1 * 2 / sqrt(8).
  EXPECT_NEAR(t.Vector(0)[0], -0.1f - 0.2f / std::sqrt(8.0f), 1e-6);
}

TEST(AdagradTest, LinearLayerAdagradShrinksRepeatedUpdates) {
  LinearLayer l(1, 1, /*has_bias=*/false);
  l.mutable_weight().At(0, 0) = 0.0f;
  l.EnableAdagrad();
  float x[1] = {1.0f};
  float dy[1] = {1.0f};
  l.Backward(x, dy, nullptr);
  l.Step(1.0f);
  float first_step = -l.weight().At(0, 0);
  l.Backward(x, dy, nullptr);
  l.Step(1.0f);
  float second_step = -l.weight().At(0, 0) - first_step;
  EXPECT_GT(first_step, second_step);  // adaptive rate decays
  EXPECT_NEAR(first_step, 1.0f, 1e-4);
}

TEST(AdagradTest, SgdPathUnchangedWhenDisabled) {
  EmbeddingTable t(1, 1);
  float g[1] = {2.0f};
  t.AccumulateGrad(0, g);
  t.Step(0.1f);
  EXPECT_NEAR(t.Vector(0)[0], -0.2f, 1e-7);
}

// ---------- grad_check itself ----------

TEST(GradCheckTest, NumericGradientOfQuadratic) {
  float x = 3.0f;
  auto loss = [&]() { return static_cast<double>(x) * x; };
  EXPECT_NEAR(NumericGradient(loss, &x), 6.0, 1e-3);
  EXPECT_FLOAT_EQ(x, 3.0f);  // restored
}

TEST(GradCheckTest, RelativeError) {
  EXPECT_NEAR(RelativeError(1.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(RelativeError(0.0, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(RelativeError(2.0, 1.0), 0.5, 1e-12);
}

}  // namespace
}  // namespace nn
}  // namespace evrec
