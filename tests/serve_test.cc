// Tests for evrec/serve: deadline budgets, retry backoff with
// deterministic jitter, the circuit breaker, the fault injector, and the
// RecommendationService degradation chain end to end.
//
// Acceptance invariants pinned here:
//   * with a 30% transient-error rate plus latency spikes, every replayed
//     week-6 request gets a complete ranking, deadlines are never overshot
//     by more than one backoff quantum, and the per-tier counters exactly
//     account for every candidate;
//   * with faults disabled, tier-1 scores are bit-identical to the offline
//     EvaluateFeatureConfig scoring path.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "evrec/obs/metrics.h"
#include "evrec/obs/trace.h"
#include "evrec/pipeline/pipeline.h"
#include "evrec/pipeline/serving.h"
#include "evrec/serve/circuit_breaker.h"
#include "evrec/serve/clock.h"
#include "evrec/serve/fault_injector.h"
#include "evrec/serve/retry.h"
#include "evrec/serve/service.h"
#include "evrec/serve/vector_store.h"
#include "evrec/util/logging.h"
#include "evrec/util/string_util.h"

namespace evrec {
namespace serve {
namespace {

// ---------- clock & deadline ----------

TEST(FakeClockTest, SleepAdvancesSimulatedTime) {
  FakeClock clock(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.SleepMicros(500);
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.SleepMicros(-5);  // no-op
  EXPECT_EQ(clock.NowMicros(), 1500);
}

TEST(DeadlineBudgetTest, TracksRemainingAndExhaustion) {
  FakeClock clock;
  DeadlineBudget budget(&clock, 100);
  EXPECT_EQ(budget.RemainingMicros(), 100);
  EXPECT_FALSE(budget.Exhausted());
  clock.Advance(99);
  EXPECT_FALSE(budget.Exhausted());
  clock.Advance(1);
  EXPECT_TRUE(budget.Exhausted());
  clock.Advance(50);
  EXPECT_EQ(budget.RemainingMicros(), -50);
}

// ---------- retry backoff ----------

TEST(RetryTest, BackoffGrowsExponentiallyAndClamps) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 1000;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_micros = 3000;
  policy.jitter_fraction = 0.0;
  Rng rng(1);
  EXPECT_EQ(BackoffMicros(policy, 0, rng), 1000);
  EXPECT_EQ(BackoffMicros(policy, 1, rng), 2000);
  EXPECT_EQ(BackoffMicros(policy, 2, rng), 3000);  // clamped
  EXPECT_EQ(BackoffMicros(policy, 9, rng), 3000);
}

TEST(RetryTest, JitterIsBoundedAndDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 10000;
  policy.jitter_fraction = 0.25;
  policy.max_backoff_micros = 10000;
  Rng a(7, 3), b(7, 3);
  for (int i = 0; i < 100; ++i) {
    int64_t va = BackoffMicros(policy, 0, a);
    int64_t vb = BackoffMicros(policy, 0, b);
    EXPECT_EQ(va, vb);  // same seed -> same jitter
    EXPECT_GE(va, 7500);
    EXPECT_LE(va, 12500);
  }
}

TEST(RetryTest, OnlyUnavailableIsRetriable) {
  EXPECT_TRUE(IsRetriableError(Status::Unavailable("x")));
  EXPECT_FALSE(IsRetriableError(Status::NotFound("x")));
  EXPECT_FALSE(IsRetriableError(Status::Corruption("x")));
  EXPECT_FALSE(IsRetriableError(Status::Internal("x")));
}

// ---------- circuit breaker ----------

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  FakeClock clock;
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.open_duration_micros = 1000;
  CircuitBreaker breaker(cfg, &clock);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.transitions(), 1u);
}

TEST(CircuitBreakerTest, SuccessResetsFailureStreak) {
  FakeClock clock;
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 2;
  CircuitBreaker breaker(cfg, &clock);
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOrReopens) {
  FakeClock clock;
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_duration_micros = 1000;
  CircuitBreaker breaker(cfg, &clock);
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  clock.Advance(1000);
  EXPECT_TRUE(breaker.AllowRequest());  // open -> half-open probe
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordFailure();  // probe failed
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  clock.Advance(1000);
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();  // probe succeeded
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.transitions(), 5u);
}

// ---------- fault injector ----------

TEST(FaultInjectorTest, SameSeedSameFaultSequence) {
  FaultConfig cfg;
  cfg.transient_error_rate = 0.3;
  cfg.corruption_rate = 0.1;
  cfg.latency_spike_rate = 0.2;
  cfg.latency_spike_micros = 500;
  FaultInjector a(cfg), b(cfg);
  for (int i = 0; i < 500; ++i) {
    FaultInjector::Fault fa = a.Next();
    FaultInjector::Fault fb = b.Next();
    EXPECT_EQ(fa.latency_micros, fb.latency_micros);
    EXPECT_EQ(fa.status.code(), fb.status.code());
  }
}

TEST(FaultInjectorTest, RatesApproximatelyRespected) {
  FaultConfig cfg;
  cfg.transient_error_rate = 0.3;
  cfg.latency_spike_rate = 0.2;
  cfg.latency_spike_micros = 100;
  FaultInjector injector(cfg);
  int errors = 0, spikes = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    FaultInjector::Fault f = injector.Next();
    if (!f.status.ok()) ++errors;
    if (f.latency_micros > 0) ++spikes;
  }
  EXPECT_NEAR(errors / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(spikes / static_cast<double>(n), 0.2, 0.02);
  EXPECT_EQ(injector.decisions(), static_cast<uint64_t>(n));
}

TEST(FaultyVectorStoreTest, InjectsErrorsAndChargesLatency) {
  store::RepVectorCache cache(2, 16);
  cache.Precompute(store::EntityKind::kUser, 1, {1.0f});
  RepCacheVectorStore inner(&cache);
  FakeClock clock;
  FaultConfig cfg;
  cfg.transient_error_rate = 1.0;
  cfg.base_latency_micros = 50;
  FaultInjector injector(cfg);
  FaultyVectorStore faulty(&inner, &injector, &clock);
  auto r = faulty.Get(store::EntityKind::kUser, 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(clock.NowMicros(), 50);
}

TEST(RepCacheVectorStoreTest, MissIsNotFoundAndPutRoundTrips) {
  store::RepVectorCache cache(2, 16);
  RepCacheVectorStore vstore(&cache);
  auto miss = vstore.Get(store::EntityKind::kEvent, 7);
  EXPECT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
  vstore.Put(store::EntityKind::kEvent, 7, {3.0f, 4.0f});
  auto hit = vstore.Get(store::EntityKind::kEvent, 7);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, (std::vector<float>{3.0f, 4.0f}));
}

// ---------- service-level stubs ----------

// Scripted store: fails the first `failures` Gets with Unavailable, then
// delegates to the wrapped cache.
class FlakyVectorStore : public VectorStore {
 public:
  FlakyVectorStore(VectorStore* inner, int failures)
      : inner_(inner), failures_left_(failures) {}

  StatusOr<std::vector<float>> Get(store::EntityKind kind, int id) override {
    if (failures_left_ > 0) {
      --failures_left_;
      return Status::Unavailable("scripted transient failure");
    }
    return inner_->Get(kind, id);
  }
  void Put(store::EntityKind kind, int id,
           std::vector<float> vector) override {
    inner_->Put(kind, id, std::move(vector));
  }

 private:
  VectorStore* inner_;
  int failures_left_;
};

// ---------- end-to-end fixture ----------

pipeline::PipelineConfig TinyServePipelineConfig() {
  pipeline::PipelineConfig cfg;
  cfg.simnet = simnet::TinySimnetConfig();
  cfg.simnet.seed = 4242;  // distinct fingerprint from other suites
  cfg.rep.embedding_dim = 8;
  cfg.rep.module_out_dim = 8;
  cfg.rep.hidden_dim = 16;
  cfg.rep.rep_dim = 8;
  cfg.rep.text_windows = {1, 3};
  cfg.rep.max_epochs = 2;
  cfg.rep.batch_size = 16;
  cfg.rep.min_document_frequency = 2;
  cfg.gbdt.num_trees = 30;
  cfg.gbdt.max_leaves = 8;
  cfg.gbdt.min_samples_leaf = 10;
  cfg.max_user_tokens = 64;
  cfg.max_event_tokens = 64;
  return cfg;
}

baseline::FeatureConfig PrimaryFeatures() {
  baseline::FeatureConfig features;
  features.base = true;
  features.cf = true;
  features.rep_score = true;
  return features;
}

// Week-6 impressions grouped into one request per (user, day).
using RequestMap = std::map<std::pair<int, int>, std::vector<int>>;

RequestMap GroupEvalRequests(const simnet::SimnetDataset& data) {
  RequestMap requests;
  for (const auto& imp : data.eval) {
    requests[{imp.user, imp.day}].push_back(imp.event);
  }
  return requests;
}

class ServeEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SetLogLevel(LogLevel::kWarn);
    pipeline_ = new pipeline::TwoStagePipeline(TinyServePipelineConfig());
    pipeline_->Prepare();
    pipeline_->TrainRepresentation();
    pipeline_->ComputeRepVectors();
    bundle_ = new pipeline::ServingBundle(
        pipeline::BuildServingBundle(*pipeline_, PrimaryFeatures()));
  }
  static void TearDownTestSuite() {
    delete bundle_;
    delete pipeline_;
    bundle_ = nullptr;
    pipeline_ = nullptr;
    SetLogLevel(LogLevel::kInfo);
  }

  static pipeline::TwoStagePipeline* pipeline_;
  static pipeline::ServingBundle* bundle_;
};

pipeline::TwoStagePipeline* ServeEndToEndTest::pipeline_ = nullptr;
pipeline::ServingBundle* ServeEndToEndTest::bundle_ = nullptr;

TEST_F(ServeEndToEndTest, NoFaultsMatchesOfflineScoringBitIdentically) {
  // Offline path: assemble the eval design matrix and score it with the
  // same combiner the bundle holds.
  gbdt::DataMatrix eval_x;
  std::vector<float> eval_y;
  bundle_->assembler->Assemble(pipeline_->dataset().eval, PrimaryFeatures(),
                               &eval_x, &eval_y);
  std::vector<double> offline =
      bundle_->primary.PredictProbabilities(eval_x);

  // Map each (user, event, day) impression to its offline probability.
  std::map<std::tuple<int, int, int>, double> expected;
  const auto& eval = pipeline_->dataset().eval;
  for (size_t i = 0; i < eval.size(); ++i) {
    expected[{eval[i].user, eval[i].event, eval[i].day}] = offline[i];
  }

  FakeClock clock;
  RecommendationService service(bundle_->MakeBackends(&clock),
                                ServiceConfig{});
  size_t checked = 0;
  for (const auto& [key, candidates] : GroupEvalRequests(
           pipeline_->dataset())) {
    RankResponse resp = service.Rank(key.first, candidates, key.second,
                                     /*budget_micros=*/1000000);
    ASSERT_EQ(resp.ranking.size(), candidates.size());
    for (const auto& rc : resp.ranking) {
      EXPECT_EQ(rc.tier, 1);  // healthy store: everything tier 1
      auto it = expected.find({key.first, rc.event, key.second});
      ASSERT_NE(it, expected.end());
      EXPECT_EQ(rc.score, it->second);  // bit-identical, not just close
      ++checked;
    }
    // The ranking must be the offline scores sorted descending.
    for (size_t i = 1; i < resp.ranking.size(); ++i) {
      EXPECT_GE(resp.ranking[i - 1].score, resp.ranking[i].score);
    }
  }
  EXPECT_EQ(checked, eval.size());
  const ServeStats& stats = service.lifetime_stats();
  EXPECT_EQ(stats.TotalServed(), stats.candidates);
  EXPECT_EQ(stats.tier_served[0], stats.candidates);
  EXPECT_EQ(stats.store_retries, 0u);
  EXPECT_EQ(stats.recompute_attempts, 0u);
}

TEST_F(ServeEndToEndTest, FaultStormStillServesEveryCandidate) {
  FakeClock clock;
  FaultConfig fault_cfg;
  fault_cfg.transient_error_rate = 0.30;  // acceptance: 30% transient
  fault_cfg.latency_spike_rate = 0.10;
  fault_cfg.latency_spike_micros = 2000;
  fault_cfg.corruption_rate = 0.05;
  fault_cfg.base_latency_micros = 100;
  fault_cfg.seed = 99;
  FaultInjector store_injector(fault_cfg);
  FaultyVectorStore faulty_store(bundle_->store.get(), &store_injector,
                                 &clock);

  // The recompute path is flaky too, so the breaker and tiers 3/4 get
  // exercised: model-serving outages and store outages often correlate.
  FaultConfig compute_fault_cfg;
  compute_fault_cfg.transient_error_rate = 0.5;
  compute_fault_cfg.base_latency_micros = 500;
  compute_fault_cfg.seed = 7;
  FaultInjector compute_injector(compute_fault_cfg);

  ServiceConfig service_cfg;
  service_cfg.retry.max_attempts = 3;
  service_cfg.retry.initial_backoff_micros = 500;
  service_cfg.retry.max_backoff_micros = 4000;
  service_cfg.breaker.failure_threshold = 3;
  service_cfg.breaker.open_duration_micros = 20000;

  RecommendationService::Backends backends =
      bundle_->MakeBackends(&clock, &faulty_store);
  backends.recompute = MakeFaultyCompute(bundle_->recompute,
                                         &compute_injector, &clock);
  RecommendationService service(backends, service_cfg);

  const int64_t budget_us = 15000;
  // One backoff quantum: the largest single wait the retry loop can incur
  // past the deadline — one in-flight store op (base + spike latency).
  const int64_t quantum_us =
      fault_cfg.base_latency_micros + fault_cfg.latency_spike_micros;

  RequestMap requests = GroupEvalRequests(pipeline_->dataset());
  ASSERT_FALSE(requests.empty());
  for (const auto& [key, candidates] : requests) {
    RankResponse resp = service.Rank(key.first, candidates, key.second,
                                     budget_us);
    // 100% of requests get a complete ranking.
    ASSERT_EQ(resp.ranking.size(), candidates.size());
    for (const auto& rc : resp.ranking) {
      EXPECT_GE(rc.tier, 1);
      EXPECT_LE(rc.tier, 4);
    }
    // Tier counters exactly account for every served candidate.
    ASSERT_EQ(resp.stats.TotalServed(), resp.stats.candidates);
    ASSERT_EQ(resp.stats.candidates, candidates.size());
    // No deadline exceeded by more than one backoff quantum. (Recompute
    // latency is charged to the clock too, so allow the larger of the
    // two in-flight operation costs.)
    int64_t max_overshoot =
        std::max<int64_t>(quantum_us,
                          compute_fault_cfg.base_latency_micros);
    EXPECT_LE(resp.elapsed_micros, budget_us + max_overshoot)
        << "user=" << key.first << " day=" << key.second;
  }

  const ServeStats& stats = service.lifetime_stats();
  EXPECT_EQ(stats.TotalServed(), stats.candidates);
  // The storm actually exercised the ladder: retries happened, some
  // candidates were served from cache, and some had to degrade.
  EXPECT_GT(stats.store_retries, 0u);
  EXPECT_GT(stats.store_transient_errors, 0u);
  EXPECT_GT(stats.tier_served[0], 0u);
  EXPECT_GT(stats.tier_served[2] + stats.tier_served[3], 0u);
}

TEST_F(ServeEndToEndTest, RegistryCountersMatchServeStatsExactly) {
  // Same storm profile as FaultStormStillServesEveryCandidate, but routed
  // into a dedicated registry: every exported serve.* counter must equal
  // the corresponding lifetime ServeStats field bit-for-bit, and the
  // registry's tier counters must preserve the accounting invariant
  // (tier1 + tier2 + tier3 + tier4 == candidates).
  FakeClock clock;
  FaultConfig fault_cfg;
  fault_cfg.transient_error_rate = 0.30;
  fault_cfg.latency_spike_rate = 0.10;
  fault_cfg.latency_spike_micros = 2000;
  fault_cfg.corruption_rate = 0.05;
  fault_cfg.base_latency_micros = 100;
  fault_cfg.seed = 99;
  FaultInjector store_injector(fault_cfg);
  FaultyVectorStore faulty_store(bundle_->store.get(), &store_injector,
                                 &clock);

  ServiceConfig service_cfg;
  service_cfg.retry.max_attempts = 3;
  service_cfg.retry.initial_backoff_micros = 500;
  service_cfg.retry.max_backoff_micros = 4000;

  obs::MetricRegistry registry;
  RecommendationService::Backends backends =
      bundle_->MakeBackends(&clock, &faulty_store);
  backends.metrics = &registry;
  RecommendationService service(backends, service_cfg);

  for (const auto& [key, candidates] : GroupEvalRequests(
           pipeline_->dataset())) {
    service.Rank(key.first, candidates, key.second,
                 /*budget_micros=*/15000);
  }

  const ServeStats& stats = service.lifetime_stats();
  std::map<std::string, uint64_t> counters = registry.CounterValues();
  EXPECT_EQ(counters.at("serve.requests"), stats.requests);
  EXPECT_EQ(counters.at("serve.candidates"), stats.candidates);
  EXPECT_EQ(counters.at("serve.store.attempts"), stats.store_attempts);
  EXPECT_EQ(counters.at("serve.store.retries"), stats.store_retries);
  EXPECT_EQ(counters.at("serve.store.transient_errors"),
            stats.store_transient_errors);
  EXPECT_EQ(counters.at("serve.store.corruptions"), stats.store_corruptions);
  EXPECT_EQ(counters.at("serve.store.misses"), stats.store_misses);
  EXPECT_EQ(counters.at("serve.recompute.attempts"),
            stats.recompute_attempts);
  EXPECT_EQ(counters.at("serve.recompute.failures"),
            stats.recompute_failures);
  EXPECT_EQ(counters.at("serve.breaker.rejections"),
            stats.breaker_rejections);
  EXPECT_EQ(counters.at("serve.breaker.transitions"),
            stats.breaker_transitions);
  EXPECT_EQ(counters.at("serve.deadline_degradations"),
            stats.deadline_degradations);
  uint64_t tier_total = 0;
  for (int t = 0; t < 4; ++t) {
    uint64_t tier = counters.at(StrFormat("serve.tier_served.%d", t + 1));
    EXPECT_EQ(tier, stats.tier_served[t]) << "tier " << (t + 1);
    tier_total += tier;
  }
  EXPECT_EQ(tier_total, counters.at("serve.candidates"));

  // Per-tier latency histogram counts mirror the tier counters, and every
  // candidate's latency landed in exactly one tier histogram.
  std::map<std::string, obs::HistogramSnapshot> hists =
      registry.HistogramValues();
  uint64_t hist_total = 0;
  for (int t = 0; t < 4; ++t) {
    const obs::HistogramSnapshot& snap =
        hists.at(StrFormat("serve.tier.%d.micros", t + 1));
    EXPECT_EQ(snap.count, stats.tier_served[t]) << "tier " << (t + 1);
    hist_total += snap.count;
  }
  EXPECT_EQ(hist_total, stats.candidates);
  EXPECT_EQ(hists.at("serve.request.micros").count, stats.requests);
}

TEST_F(ServeEndToEndTest, RetryRecoversFromScriptedTransientFailures) {
  FakeClock clock;
  FlakyVectorStore flaky(bundle_->store.get(), /*failures=*/2);
  RecommendationService service(bundle_->MakeBackends(&clock, &flaky),
                                ServiceConfig{});
  const auto& eval = pipeline_->dataset().eval;
  ASSERT_FALSE(eval.empty());
  RankResponse resp = service.Rank(eval[0].user, {eval[0].event},
                                   eval[0].day, /*budget_micros=*/1000000);
  ASSERT_EQ(resp.ranking.size(), 1u);
  // Two failures burned two attempts on the user vector; the third
  // attempt succeeded, and the event fetch was clean: still tier 1.
  EXPECT_EQ(resp.ranking[0].tier, 1);
  EXPECT_EQ(resp.stats.store_retries, 2u);
  EXPECT_GT(resp.elapsed_micros, 0);  // backoff was charged to the clock
}

TEST_F(ServeEndToEndTest, ZeroBudgetDegradesToPriorButStillRanks) {
  FakeClock clock;
  RecommendationService service(bundle_->MakeBackends(&clock),
                                ServiceConfig{});
  const auto& eval = pipeline_->dataset().eval;
  std::vector<int> candidates;
  for (size_t i = 0; i < eval.size() && candidates.size() < 5; ++i) {
    if (eval[i].user == eval[0].user) candidates.push_back(eval[i].event);
  }
  RankResponse resp = service.Rank(eval[0].user, candidates, eval[0].day,
                                   /*budget_micros=*/0);
  ASSERT_EQ(resp.ranking.size(), candidates.size());
  for (const auto& rc : resp.ranking) EXPECT_EQ(rc.tier, 4);
  EXPECT_EQ(resp.stats.tier_served[3], candidates.size());
  EXPECT_EQ(resp.stats.deadline_degradations, candidates.size());
}

TEST_F(ServeEndToEndTest, BreakerOpensOnRecomputeFailuresThenRecovers) {
  FakeClock clock;
  const auto& eval = pipeline_->dataset().eval;
  // The store knows the user but no events: every candidate lookup misses
  // and drives the recompute path. (If the user vector itself failed, the
  // service would skip event fetches entirely and record only one
  // failure.)
  store::RepVectorCache sparse_cache(2, 1024);
  sparse_cache.Precompute(
      store::EntityKind::kUser, eval[0].user,
      pipeline_->user_reps()[static_cast<size_t>(eval[0].user)]);
  RepCacheVectorStore empty_store(&sparse_cache);

  ServiceConfig service_cfg;
  service_cfg.breaker.failure_threshold = 2;
  service_cfg.breaker.open_duration_micros = 5000;

  bool recompute_healthy = false;
  RecommendationService::Backends backends =
      bundle_->MakeBackends(&clock, &empty_store);
  VectorComputeFn real = bundle_->recompute;
  backends.recompute =
      [&recompute_healthy, real](store::EntityKind kind,
                                 int id) -> StatusOr<std::vector<float>> {
    if (!recompute_healthy) {
      return Status::Unavailable("model service down");
    }
    return real(kind, id);
  };
  RecommendationService service(backends, service_cfg);

  std::vector<int> candidates;
  for (size_t i = 0; i < eval.size() && candidates.size() < 8; ++i) {
    candidates.push_back(eval[i].event);
  }

  RankResponse down = service.Rank(eval[0].user, candidates, eval[0].day,
                                   /*budget_micros=*/1000000);
  ASSERT_EQ(down.ranking.size(), candidates.size());
  // Everything degraded to the baseline-only tier, the breaker opened,
  // and later recompute attempts were rejected without being tried.
  EXPECT_EQ(down.stats.tier_served[2], candidates.size());
  EXPECT_EQ(service.breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_GT(down.stats.breaker_rejections, 0u);
  EXPECT_GT(down.stats.breaker_transitions, 0u);

  // Model service recovers; after the cool-down the half-open probe
  // succeeds and recomputed vectors serve tier 2.
  recompute_healthy = true;
  clock.Advance(service_cfg.breaker.open_duration_micros);
  RankResponse up = service.Rank(eval[0].user, candidates, eval[0].day,
                                 /*budget_micros=*/1000000);
  ASSERT_EQ(up.ranking.size(), candidates.size());
  EXPECT_EQ(service.breaker().state(), CircuitBreaker::State::kClosed);
  EXPECT_GT(up.stats.tier_served[1], 0u);
  // Recomputed vectors were written back: nothing fell past tier 2.
  EXPECT_EQ(up.stats.tier_served[2] + up.stats.tier_served[3], 0u);
}

TEST_F(ServeEndToEndTest, TailSamplerAlwaysKeepsDegradedRequests) {
  // A keep-nothing sampler still retains requests the service marked
  // interesting (degraded tiers, blown deadlines): MarkKeep at the root
  // overrides the sampling decision wholesale.
  obs::TraceLog* log = obs::TraceLog::Global();
  log->Clear();
  obs::TailSamplerConfig drop_all;
  drop_all.keep_fraction = 0.0;
  drop_all.seed = 17;
  log->SetSampler(drop_all);

  FakeClock clock;
  obs::MetricRegistry registry;
  RecommendationService::Backends backends = bundle_->MakeBackends(&clock);
  backends.metrics = &registry;
  RecommendationService service(backends, ServiceConfig{});

  const auto& eval = pipeline_->dataset().eval;
  std::vector<int> candidates;
  for (size_t i = 0; i < eval.size() && candidates.size() < 5; ++i) {
    if (eval[i].user == eval[0].user) candidates.push_back(eval[i].event);
  }
  ASSERT_FALSE(candidates.empty());

  // Healthy request under a generous budget: nothing interesting happens,
  // so the sampler discards the whole trace.
  service.Rank(eval[0].user, candidates, eval[0].day,
               /*budget_micros=*/1000000);
  EXPECT_EQ(log->size(), 0u);
  EXPECT_EQ(log->sampled_out(), 1u);

  // Zero budget: every candidate degrades to tier 4, the root is marked
  // degraded, and the trace survives despite keep_fraction = 0.
  service.Rank(eval[0].user, candidates, eval[0].day, /*budget_micros=*/0);
  std::vector<obs::SpanEvent> spans = log->Snapshot();
  ASSERT_FALSE(spans.empty());
  const obs::SpanEvent* root = nullptr;
  for (const auto& s : spans) {
    if (s.parent_id == 0) {
      ASSERT_EQ(root, nullptr) << "exactly one root per retained trace";
      root = &s;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "serve.request");
  std::map<std::string, std::string> tags(root->tags.begin(),
                                          root->tags.end());
  EXPECT_EQ(tags.at("degraded"), "1");
  EXPECT_EQ(tags.at("candidates"), StrFormat("%zu", candidates.size()));
  // Budget 0 means "no deadline", so the request is degraded, not late.
  EXPECT_EQ(tags.count("over_deadline"), 0u);

  // Every retained span belongs to the degraded request's trace, and the
  // per-candidate children link straight to the root.
  size_t candidate_spans = 0;
  for (const auto& s : spans) {
    EXPECT_EQ(s.trace_id, root->trace_id);
    if (s.name == "serve.candidate") {
      EXPECT_EQ(s.parent_id, root->span_id);
      ++candidate_spans;
    }
  }
  EXPECT_EQ(candidate_spans, candidates.size());

  // The request-latency histogram carries the retained trace as a bucket
  // exemplar, so a metrics reader can jump from a suspicious bucket to a
  // concrete trace in the log.
  obs::Histogram* request_micros =
      registry.GetHistogram("serve.request.micros");
  bool exemplar_links_trace = false;
  for (int i = 0; i <= request_micros->num_buckets(); ++i) {
    if (request_micros->bucket_exemplar(i) == root->trace_id) {
      exemplar_links_trace = true;
    }
  }
  EXPECT_TRUE(exemplar_links_trace);

  log->Clear();
  log->SetSampler(obs::TailSamplerConfig{});  // keep-everything default
}

TEST_F(ServeEndToEndTest, TailSamplerAlwaysKeepsDeadlineExceededRequests) {
  obs::TraceLog* log = obs::TraceLog::Global();
  log->Clear();
  obs::TailSamplerConfig drop_all;
  drop_all.keep_fraction = 0.0;
  drop_all.seed = 17;
  log->SetSampler(drop_all);

  // A slow store blows a tight budget: the first fetch alone costs more
  // than the whole deadline, so elapsed > budget and the root is marked
  // over_deadline — which must force retention.
  FakeClock clock;
  FaultConfig slow_cfg;
  slow_cfg.base_latency_micros = 400;
  slow_cfg.seed = 5;
  FaultInjector slow_injector(slow_cfg);
  FaultyVectorStore slow_store(bundle_->store.get(), &slow_injector,
                               &clock);
  RecommendationService service(
      bundle_->MakeBackends(&clock, &slow_store), ServiceConfig{});

  const auto& eval = pipeline_->dataset().eval;
  std::vector<int> candidates;
  for (size_t i = 0; i < eval.size() && candidates.size() < 5; ++i) {
    if (eval[i].user == eval[0].user) candidates.push_back(eval[i].event);
  }
  RankResponse resp = service.Rank(eval[0].user, candidates, eval[0].day,
                                   /*budget_micros=*/300);
  EXPECT_GT(resp.elapsed_micros, 300);

  std::vector<obs::SpanEvent> spans = log->Snapshot();
  const obs::SpanEvent* root = nullptr;
  for (const auto& s : spans) {
    if (s.parent_id == 0) root = &s;
  }
  ASSERT_NE(root, nullptr) << "deadline-exceeded trace must be retained";
  std::map<std::string, std::string> tags(root->tags.begin(),
                                          root->tags.end());
  EXPECT_EQ(tags.at("over_deadline"), "1");

  log->Clear();
  log->SetSampler(obs::TailSamplerConfig{});
}

}  // namespace
}  // namespace serve
}  // namespace evrec
