// Tests for evrec/baseline: the feature index (with brute-force
// cross-checks and causality), base/CF extractors, and the assembler.

#include <gtest/gtest.h>

#include "evrec/baseline/assembler.h"
#include "evrec/simnet/generator.h"
#include "evrec/util/logging.h"

namespace evrec {
namespace baseline {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SetLogLevel(LogLevel::kWarn);
    dataset_ = new simnet::SimnetDataset(
        simnet::GenerateDataset(simnet::TinySimnetConfig()));
    index_ = new FeatureIndex(*dataset_);
  }
  static void TearDownTestSuite() {
    delete index_;
    delete dataset_;
    SetLogLevel(LogLevel::kInfo);
  }
  static simnet::SimnetDataset* dataset_;
  static FeatureIndex* index_;
};

simnet::SimnetDataset* BaselineTest::dataset_ = nullptr;
FeatureIndex* BaselineTest::index_ = nullptr;

TEST_F(BaselineTest, AttendeesBeforeMatchesBruteForce) {
  for (int e = 0; e < 20; ++e) {
    for (int day : {0, 10, 25, 40}) {
      int brute = 0;
      for (const auto& edge :
           dataset_->feedback.event_attendees[static_cast<size_t>(e)]) {
        if (edge.day < day) ++brute;
      }
      EXPECT_EQ(index_->AttendeesBefore(e, day), brute);
    }
  }
}

TEST_F(BaselineTest, CausalityCutoffIsStrict) {
  // Find an attendance edge and verify it is excluded at its own day.
  for (size_t e = 0; e < dataset_->feedback.event_attendees.size(); ++e) {
    const auto& edges = dataset_->feedback.event_attendees[e];
    if (edges.empty()) continue;
    int day = edges[0].day;
    int before = index_->AttendeesBefore(static_cast<int>(e), day);
    int after = index_->AttendeesBefore(static_cast<int>(e), day + 1);
    EXPECT_LT(before, after);
    return;
  }
  FAIL() << "no attendance edges in tiny dataset";
}

TEST_F(BaselineTest, FriendsAttendingMatchesBruteForce) {
  const auto& users = dataset_->world.users;
  int checked = 0;
  for (int u = 0; u < 30 && checked < 10; ++u) {
    for (int e = 0; e < 30; ++e) {
      int day = 35;
      int brute = 0;
      for (const auto& edge :
           dataset_->feedback.event_attendees[static_cast<size_t>(e)]) {
        if (edge.day >= day) continue;
        const auto& f = users[static_cast<size_t>(u)].friends;
        if (std::binary_search(f.begin(), f.end(), edge.counterpart)) {
          ++brute;
        }
      }
      EXPECT_EQ(index_->FriendsAttendingBefore(u, e, day), brute);
      if (brute > 0) ++checked;
    }
  }
}

TEST_F(BaselineTest, AreFriendsMatchesAdjacency) {
  const auto& users = dataset_->world.users;
  const auto& u = users[3];
  for (int v = 0; v < static_cast<int>(users.size()); v += 7) {
    bool expected =
        std::find(u.friends.begin(), u.friends.end(), v) != u.friends.end();
    EXPECT_EQ(index_->AreFriends(3, v), expected);
  }
}

TEST_F(BaselineTest, CategoryAffinityInUnitRange) {
  for (int u = 0; u < 40; ++u) {
    for (int c = 0; c < dataset_->config.num_topics; ++c) {
      double a = index_->CategoryAffinityBefore(u, c, 40);
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0);
    }
  }
}

TEST_F(BaselineTest, NoHistoryMeansZeroAffinity) {
  // Day 0: nobody has joined anything yet.
  EXPECT_EQ(index_->CategoryAffinityBefore(0, 0, 0), 0.0);
  EXPECT_EQ(index_->UserJoinCountBefore(0, 0), 0);
  EXPECT_EQ(index_->AttendeesBefore(0, 0), 0);
}

// ---------- extractors ----------

TEST_F(BaselineTest, BaseFeatureCountMatchesNames) {
  BaseFeatureExtractor base(*index_);
  std::vector<float> out;
  base.Extract(0, 0, 20, &out);
  EXPECT_EQ(out.size(), BaseFeatureExtractor::FeatureNames().size());
  EXPECT_EQ(static_cast<int>(out.size()), BaseFeatureExtractor::NumFeatures());
  for (float v : out) EXPECT_TRUE(std::isfinite(v));
}

TEST_F(BaselineTest, CfFeatureCountMatchesNames) {
  CfFeatureExtractor cf(*index_);
  std::vector<float> out;
  cf.Extract(0, 0, 20, &out);
  EXPECT_EQ(out.size(), CfFeatureExtractor::FeatureNames().size());
  for (float v : out) EXPECT_TRUE(std::isfinite(v));
}

TEST_F(BaselineTest, CfFeaturesVanishForColdEvents) {
  // An event with zero prior attendees yields all-zero CF features
  // (the transiency failure mode of collaborative filtering).
  int cold_event = -1;
  for (int e = 0; e < dataset_->num_events(); ++e) {
    if (dataset_->feedback.event_attendees[static_cast<size_t>(e)].empty()) {
      cold_event = e;
      break;
    }
  }
  ASSERT_NE(cold_event, -1);
  CfFeatureExtractor cf(*index_);
  std::vector<float> out;
  cf.Extract(0, cold_event, 41, &out);
  for (float v : out) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(JaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSorted({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSorted({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSorted({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSorted({}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSorted({}, {}), 0.0);
}

// ---------- assembler ----------

TEST_F(BaselineTest, FeatureConfigNames) {
  EXPECT_EQ((FeatureConfig{true, true, false, false}).Name(), "base+cf");
  EXPECT_EQ((FeatureConfig{false, false, true, false}).Name(), "rep");
  EXPECT_EQ((FeatureConfig{true, true, true, true}).Name(),
            "base+cf+rep+score");
  EXPECT_EQ((FeatureConfig{false, false, false, false}).Name(), "none");
}

TEST_F(BaselineTest, AssemblerShapesAndLabels) {
  std::vector<std::vector<float>> ureps(
      static_cast<size_t>(dataset_->num_users()),
      std::vector<float>{1.0f, 0.0f});
  std::vector<std::vector<float>> ereps(
      static_cast<size_t>(dataset_->num_events()),
      std::vector<float>{0.0f, 1.0f});
  FeatureAssembler assembler(*index_, &ureps, &ereps);

  FeatureConfig cfg;
  cfg.base = true;
  cfg.cf = true;
  cfg.rep_vectors = true;
  cfg.rep_score = true;

  auto names = assembler.FeatureNames(cfg);
  gbdt::DataMatrix x;
  std::vector<float> y;
  assembler.Assemble(dataset_->combiner_train, cfg, &x, &y);
  EXPECT_EQ(x.num_rows(), static_cast<int>(dataset_->combiner_train.size()));
  EXPECT_EQ(x.num_cols(), static_cast<int>(names.size()));
  EXPECT_EQ(y.size(), dataset_->combiner_train.size());
  // rep_score column exists and is the fixed cosine of the dummy vectors.
  int score_col = -1;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "rep_similarity") score_col = static_cast<int>(i);
  }
  ASSERT_NE(score_col, -1);
  EXPECT_NEAR(x.At(0, score_col), 0.0f, 1e-6);  // orthogonal dummies
}

TEST_F(BaselineTest, AssemblerRepOnlyConfig) {
  std::vector<std::vector<float>> ureps(
      static_cast<size_t>(dataset_->num_users()),
      std::vector<float>{0.5f, 0.5f});
  std::vector<std::vector<float>> ereps(
      static_cast<size_t>(dataset_->num_events()),
      std::vector<float>{0.5f, 0.5f});
  FeatureAssembler assembler(*index_, &ureps, &ereps);
  FeatureConfig cfg;
  cfg.base = false;
  cfg.cf = false;
  cfg.rep_vectors = true;
  gbdt::DataMatrix x;
  std::vector<float> y;
  assembler.Assemble(dataset_->eval, cfg, &x, &y);
  EXPECT_EQ(x.num_cols(), 6);  // vu(2) + ve(2) + products(2)
}

TEST_F(BaselineTest, ExtraFeatureBlockAppended) {
  FeatureAssembler assembler(*index_, nullptr, nullptr);
  assembler.SetExtraFeatures(
      {"lda_sim"}, [](int user, int event, int day, std::vector<float>* out) {
        out->push_back(static_cast<float>(user + event + day));
      });
  FeatureConfig cfg;
  cfg.base = true;
  cfg.cf = false;
  auto names = assembler.FeatureNames(cfg);
  EXPECT_EQ(names.back(), "lda_sim");
  std::vector<float> row;
  assembler.ExtractRow(2, 3, 4, cfg, &row);
  EXPECT_EQ(row.size(), names.size());
  EXPECT_FLOAT_EQ(row.back(), 9.0f);
}

}  // namespace
}  // namespace baseline
}  // namespace evrec
