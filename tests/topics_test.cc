// Tests for evrec/topics: LDA (collapsed Gibbs) and PLSA (EM) recover
// planted topic structure, fold-in inference works on unseen documents,
// and the word-disjoint user/event vocabulary defeats word-level matching
// (the failure mode the paper attributes to bag-of-words models).

#include <gtest/gtest.h>

#include "evrec/topics/lda.h"
#include "evrec/topics/plsa.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace topics {
namespace {

// Corpus with two planted topics: words 0..9 vs 10..19.
std::vector<std::vector<int>> PlantedCorpus(int docs_per_topic,
                                            int words_per_doc,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> docs;
  for (int topic = 0; topic < 2; ++topic) {
    for (int d = 0; d < docs_per_topic; ++d) {
      std::vector<int> doc;
      for (int w = 0; w < words_per_doc; ++w) {
        doc.push_back(topic * 10 + rng.UniformInt(0, 9));
      }
      docs.push_back(std::move(doc));
    }
  }
  return docs;
}

int ArgMax(const std::vector<double>& v) {
  int best = 0;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[static_cast<size_t>(best)]) best = static_cast<int>(i);
  }
  return best;
}

TEST(LdaTest, RecoversPlantedTopics) {
  auto docs = PlantedCorpus(20, 30, 100);
  LdaConfig cfg;
  cfg.num_topics = 2;
  cfg.train_iterations = 120;
  LdaModel lda;
  lda.Train(docs, 20, cfg);

  int topic_a = ArgMax(lda.DocTopics(0));
  int agree_a = 0, agree_b = 0;
  for (int d = 0; d < 20; ++d) {
    if (ArgMax(lda.DocTopics(d)) == topic_a) ++agree_a;
  }
  for (int d = 20; d < 40; ++d) {
    if (ArgMax(lda.DocTopics(d)) != topic_a) ++agree_b;
  }
  EXPECT_GE(agree_a, 19);
  EXPECT_GE(agree_b, 19);

  // Topic-word distributions concentrate on the right word halves.
  int topic_b = 1 - topic_a;
  double mass_a = 0.0, mass_b = 0.0;
  for (int w = 0; w < 10; ++w) mass_a += lda.TopicWordProb(topic_a, w);
  for (int w = 10; w < 20; ++w) mass_b += lda.TopicWordProb(topic_b, w);
  EXPECT_GT(mass_a, 0.9);
  EXPECT_GT(mass_b, 0.9);
}

TEST(LdaTest, FoldInMatchesTrainingTopics) {
  auto docs = PlantedCorpus(20, 30, 101);
  LdaConfig cfg;
  cfg.num_topics = 2;
  LdaModel lda;
  lda.Train(docs, 20, cfg);
  Rng rng(7);
  std::vector<int> new_doc = {0, 3, 5, 7, 2, 8, 1};  // pure topic A words
  auto mix = lda.InferTopics(new_doc, rng);
  EXPECT_EQ(ArgMax(mix), ArgMax(lda.DocTopics(0)));
  EXPECT_GT(mix[static_cast<size_t>(ArgMax(mix))], 0.8);
}

TEST(LdaTest, UnknownWordsFallBackToUniform) {
  auto docs = PlantedCorpus(10, 20, 102);
  LdaConfig cfg;
  cfg.num_topics = 2;
  LdaModel lda;
  lda.Train(docs, 20, cfg);
  Rng rng(8);
  // All out-of-vocabulary ids.
  auto mix = lda.InferTopics({99, 100, -5}, rng);
  EXPECT_NEAR(mix[0], 0.5, 1e-9);
  EXPECT_NEAR(mix[1], 0.5, 1e-9);
}

TEST(LdaTest, WordDisjointDocumentsCannotBeMatched) {
  // The paper's core argument: if user docs use words 20..39 and event
  // docs use words 0..19, an LDA trained on event text sees user words as
  // OOV and returns the uninformative uniform mixture.
  auto event_docs = PlantedCorpus(20, 30, 103);
  LdaConfig cfg;
  cfg.num_topics = 2;
  LdaModel lda;
  lda.Train(event_docs, 20, cfg);
  Rng rng(9);
  std::vector<int> user_doc = {25, 31, 22, 38};  // disjoint vocabulary
  auto mix = lda.InferTopics(user_doc, rng);
  EXPECT_NEAR(mix[0], 0.5, 1e-9);  // no signal
}

TEST(LdaTest, MixtureSimilarity) {
  EXPECT_NEAR(LdaModel::MixtureSimilarity({1.0, 0.0}, {1.0, 0.0}), 1.0,
              1e-12);
  EXPECT_NEAR(LdaModel::MixtureSimilarity({1.0, 0.0}, {0.0, 1.0}), 0.0,
              1e-12);
}

TEST(LdaTest, DeterministicForSameSeed) {
  auto docs = PlantedCorpus(10, 20, 104);
  LdaConfig cfg;
  cfg.num_topics = 2;
  cfg.train_iterations = 30;
  LdaModel a, b;
  a.Train(docs, 20, cfg);
  b.Train(docs, 20, cfg);
  for (int d = 0; d < 20; ++d) {
    auto ma = a.DocTopics(d);
    auto mb = b.DocTopics(d);
    for (size_t k = 0; k < ma.size(); ++k) {
      EXPECT_DOUBLE_EQ(ma[k], mb[k]);
    }
  }
}

TEST(PlsaTest, RecoversPlantedTopics) {
  auto docs = PlantedCorpus(20, 30, 105);
  PlsaConfig cfg;
  cfg.num_topics = 2;
  PlsaModel plsa;
  plsa.Train(docs, 20, cfg);

  int topic_a = ArgMax(plsa.DocTopics(0));
  int agree = 0;
  for (int d = 0; d < 20; ++d) {
    if (ArgMax(plsa.DocTopics(d)) == topic_a) ++agree;
  }
  for (int d = 20; d < 40; ++d) {
    if (ArgMax(plsa.DocTopics(d)) != topic_a) ++agree;
  }
  EXPECT_GE(agree, 38);
}

TEST(PlsaTest, FoldInOnUnseenDocument) {
  auto docs = PlantedCorpus(20, 30, 106);
  PlsaConfig cfg;
  cfg.num_topics = 2;
  PlsaModel plsa;
  plsa.Train(docs, 20, cfg);
  auto mix = plsa.InferTopics({12, 15, 18, 11, 13});
  EXPECT_EQ(ArgMax(mix), ArgMax(plsa.DocTopics(20)));
  EXPECT_GT(mix[static_cast<size_t>(ArgMax(mix))], 0.8);
}

TEST(PlsaTest, EmptyDocUniform) {
  auto docs = PlantedCorpus(10, 20, 107);
  PlsaConfig cfg;
  cfg.num_topics = 2;
  PlsaModel plsa;
  plsa.Train(docs, 20, cfg);
  auto mix = plsa.InferTopics({});
  EXPECT_NEAR(mix[0], 0.5, 1e-9);
}

TEST(PlsaTest, WordGivenTopicIsDistribution) {
  auto docs = PlantedCorpus(10, 20, 108);
  PlsaConfig cfg;
  cfg.num_topics = 2;
  PlsaModel plsa;
  plsa.Train(docs, 20, cfg);
  for (int k = 0; k < 2; ++k) {
    double sum = 0.0;
    for (int w = 0; w < 20; ++w) {
      double p = plsa.WordGivenTopic(k, w);
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

}  // namespace
}  // namespace topics
}  // namespace evrec
