// Tests for the live-telemetry stack: rolling windows (obs/monitor.h), the
// SLO burn-rate engine (obs/slo.h), health probes (obs/health.h), bounded
// Series retention, and the OpenMetrics exposition (obs/openmetrics.h).
// Everything runs on a FakeClock so window arithmetic, alert timelines,
// and exposition bytes are exact, not approximate.

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "evrec/obs/health.h"
#include "evrec/obs/metrics.h"
#include "evrec/obs/monitor.h"
#include "evrec/obs/openmetrics.h"
#include "evrec/obs/profile.h"
#include "evrec/obs/slo.h"
#include "evrec/obs/trace.h"
#include "evrec/util/clock.h"
#include "evrec/util/thread_pool.h"
#include "gtest/gtest.h"

namespace evrec {
namespace obs {
namespace {

WindowOptions SmallWindow(int64_t width_micros, int num_buckets) {
  WindowOptions w;
  w.bucket_width_micros = width_micros;
  w.num_buckets = num_buckets;
  return w;
}

// ---------------------------------------------------------------- windows

TEST(RollingCounterTest, BucketBoundaryTimestamps) {
  FakeClock clock(0);
  RollingCounter c(&clock, SmallWindow(1000, 8));

  c.Add(2);          // t=0, bucket 0
  clock.Advance(999);
  c.Add(3);          // t=999, still bucket 0
  EXPECT_EQ(c.Sum(1000), 5u);

  clock.Advance(1);  // t=1000: exactly on the boundary opens bucket 1
  c.Add(7);
  // A one-bucket window sees only the current bucket.
  EXPECT_EQ(c.Sum(1000), 7u);
  // A two-bucket window sees both.
  EXPECT_EQ(c.Sum(2000), 12u);
  // Sub-bucket windows round up to one whole bucket.
  EXPECT_EQ(c.Sum(1), 7u);
}

TEST(RollingCounterTest, ClockStallIsStable) {
  FakeClock clock(5000);
  RollingCounter c(&clock, SmallWindow(1000, 8));
  for (int i = 0; i < 100; ++i) c.Add();
  // Repeated reads at a stalled clock answer identically.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(c.Sum(1000), 100u);
    EXPECT_DOUBLE_EQ(c.Rate(1000), 100.0 / 0.001);
  }
  c.Add(0);  // zero-increment write at the same tick changes nothing
  EXPECT_EQ(c.Sum(8000), 100u);
}

TEST(RollingCounterTest, IdleGapWrapsRing) {
  FakeClock clock(0);
  RollingCounter c(&clock, SmallWindow(1000, 4));
  c.Add(5);
  EXPECT_EQ(c.Sum(4000), 5u);

  // An idle gap of exactly the ring capacity leaves only stale tags:
  // bucket 0's slot is reused by bucket 4, and queries must skip it.
  clock.Advance(4000);
  EXPECT_EQ(c.Sum(4000), 0u);
  EXPECT_DOUBLE_EQ(c.Rate(4000), 0.0);

  // Writes recycle the stale slot before accumulating.
  c.Add(1);
  EXPECT_EQ(c.Sum(4000), 1u);

  // A gap of many ring lengths behaves the same.
  clock.Advance(4000 * 1000);
  EXPECT_EQ(c.Sum(4000), 0u);
  c.Add(9);
  EXPECT_EQ(c.Sum(1000), 9u);
}

TEST(RollingCounterTest, WindowClampedToRingCapacity) {
  FakeClock clock(0);
  RollingCounter c(&clock, SmallWindow(1000, 4));
  c.Add(8);
  // Asking for more than the ring covers clamps to 4 buckets = 4ms.
  EXPECT_EQ(c.Sum(1000000), 8u);
  EXPECT_DOUBLE_EQ(c.Rate(1000000), 8.0 / 0.004);
}

TEST(RollingHistogramTest, WindowedQuantilesAndIdleGap) {
  FakeClock clock(0);
  RollingHistogram h(&clock, SmallWindow(1000, 4));
  h.Record(10.0);
  clock.Advance(1000);
  h.Record(1000.0);
  EXPECT_EQ(h.Count(2000), 2u);
  // One-bucket window only covers the newer sample.
  EXPECT_EQ(h.Count(1000), 1u);
  HistogramSnapshot snap = h.Snapshot(2000);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.min, 10.0);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_GT(h.Quantile(2000, 0.99), h.Quantile(2000, 0.01));

  // Idle gap wrapping the ring: the window is empty again.
  clock.Advance(8000);
  EXPECT_EQ(h.Count(4000), 0u);
  HistogramSnapshot empty = h.Snapshot(4000);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p99, 0.0);
}

TEST(MonitorTest, DirectoryFindOrCreate) {
  FakeClock clock(0);
  Monitor monitor(&clock, SmallWindow(1000, 8));
  RollingCounter* a = monitor.GetCounter("serve.requests");
  RollingCounter* b = monitor.GetCounter("serve.requests");
  EXPECT_EQ(a, b);  // stable pointer
  monitor.GetCounter("serve.errors");
  monitor.GetHistogram("serve.request.micros");
  auto counters = monitor.Counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "serve.errors");  // name-sorted
  EXPECT_EQ(counters[1].first, "serve.requests");
  EXPECT_EQ(monitor.Histograms().size(), 1u);
  // Default report windows are 10s and 60s.
  std::vector<int64_t> windows = monitor.report_windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0], 10 * 1000000LL);
  EXPECT_EQ(windows[1], 60 * 1000000LL);
}

TEST(MonitorTest, ConcurrentUpdatesSumExactly) {
  // TSan coverage for the hot path: many threads hammer one counter and
  // one histogram while the clock is stalled; totals must be exact.
  FakeClock clock(123456);
  Monitor monitor(&clock, SmallWindow(1000000, 8));
  RollingCounter* c = monitor.GetCounter("hammer");
  RollingHistogram* h = monitor.GetHistogram("hammer.micros");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add();
        h->Record(static_cast<double>((t * kPerThread + i) % 100));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c->Sum(1000000), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h->Count(1000000), static_cast<uint64_t>(kThreads * kPerThread));
}

// -------------------------------------------------------------------- SLO

SloConfig TestAvailabilitySlo() {
  SloConfig config;
  config.name = "availability";
  config.kind = SloKind::kAvailability;
  config.objective = 0.9;  // error budget 0.1
  config.window = SmallWindow(1000000, 32);
  BurnRateRule rule;
  rule.name = "fast";
  rule.short_window_micros = 2 * 1000000LL;
  rule.long_window_micros = 8 * 1000000LL;
  rule.threshold = 1.0;
  rule.pending_micros = 2 * 1000000LL;
  rule.resolve_micros = 3 * 1000000LL;
  config.rules = {rule};
  return config;
}

TEST(SloTest, BurnRateMath) {
  FakeClock clock(0);
  MetricRegistry registry;
  Slo slo(TestAvailabilitySlo(), &clock, &registry);
  // Idle service: no requests, no budget spent.
  EXPECT_DOUBLE_EQ(slo.BurnRate(2000000), 0.0);
  for (int i = 0; i < 9; ++i) slo.Record(true);
  slo.Record(false);
  // 1 bad / 10 total = 0.1 error rate = exactly on a 0.1 budget.
  EXPECT_DOUBLE_EQ(slo.ErrorRate(2000000), 0.1);
  EXPECT_DOUBLE_EQ(slo.BurnRate(2000000), 1.0);
}

TEST(SloTest, AlertLifecycle) {
  FakeClock clock(0);
  MetricRegistry registry;
  Slo slo(TestAvailabilitySlo(), &clock, &registry);
  std::vector<AlertEvent> timeline;

  auto state = [&]() { return slo.Status()[0].state; };

  // Healthy traffic: stays inactive.
  for (int t = 0; t < 10; ++t) {
    slo.Record(true);
    slo.Tick(&timeline);
    clock.Advance(1000000);
  }
  EXPECT_EQ(state(), AlertState::kInactive);

  // All-bad traffic: burn 10x on both windows -> pending, held 2s, firing.
  slo.Record(false);
  slo.Tick(&timeline);
  EXPECT_EQ(state(), AlertState::kPending);
  clock.Advance(1000000);
  slo.Record(false);
  slo.Tick(&timeline);
  EXPECT_EQ(state(), AlertState::kPending);  // 1s held, needs 2s
  clock.Advance(1000000);
  slo.Record(false);
  slo.Tick(&timeline);
  EXPECT_EQ(state(), AlertState::kFiring);
  EXPECT_TRUE(slo.AnyFiring());

  // Recovery: good traffic clears the short window first; once both
  // windows drop below threshold the alert resolves.
  for (int t = 0; t < 10; ++t) {
    clock.Advance(1000000);
    slo.Record(true);
    slo.Tick(&timeline);
    if (state() != AlertState::kFiring) break;
  }
  EXPECT_EQ(state(), AlertState::kResolved);
  EXPECT_FALSE(slo.AnyFiring());

  // Quiet for resolve_micros -> back to inactive.
  clock.Advance(3000000);
  slo.Tick(&timeline);
  EXPECT_EQ(state(), AlertState::kInactive);

  EXPECT_EQ(slo.Status()[0].fired, 1u);
  EXPECT_EQ(slo.Status()[0].resolved, 1u);
  // Transition counters are mirrored into the registry.
  std::map<std::string, uint64_t> counters = registry.CounterValues();
  EXPECT_EQ(counters["slo.availability.fast.fired"], 1u);
  EXPECT_EQ(counters["slo.availability.fast.resolved"], 1u);
}

TEST(SloTest, PendingResetsWhenConditionClears) {
  FakeClock clock(0);
  MetricRegistry registry;
  Slo slo(TestAvailabilitySlo(), &clock, &registry);
  for (int t = 0; t < 10; ++t) {
    slo.Record(true);
    clock.Advance(1000000);
  }
  slo.Record(false);
  slo.Tick(nullptr);
  EXPECT_EQ(slo.Status()[0].state, AlertState::kPending);
  // A burst that clears before pending_micros never fires.
  clock.Advance(1000000);
  for (int i = 0; i < 50; ++i) slo.Record(true);
  slo.Tick(nullptr);
  EXPECT_EQ(slo.Status()[0].state, AlertState::kInactive);
  EXPECT_EQ(slo.Status()[0].fired, 0u);
}

TEST(SloTest, ResolvedRefiresWithoutRePending) {
  SloConfig config = TestAvailabilitySlo();
  config.rules[0].pending_micros = 0;  // fire immediately for this test
  FakeClock clock(0);
  MetricRegistry registry;
  Slo slo(config, &clock, &registry);
  for (int t = 0; t < 10; ++t) {
    slo.Record(true);
    clock.Advance(1000000);
  }
  slo.Record(false);
  slo.Tick(nullptr);
  EXPECT_EQ(slo.Status()[0].state, AlertState::kFiring);
  // Clear the short window: firing -> resolved.
  for (int t = 0; t < 10; ++t) {
    clock.Advance(1000000);
    for (int i = 0; i < 20; ++i) slo.Record(true);
    slo.Tick(nullptr);
    if (!slo.AnyFiring()) break;
  }
  EXPECT_EQ(slo.Status()[0].state, AlertState::kResolved);
  // Flap inside the quiet period: resolved -> firing directly.
  slo.Record(false);
  slo.Record(false);
  slo.Record(false);
  slo.Tick(nullptr);
  EXPECT_EQ(slo.Status()[0].state, AlertState::kFiring);
  EXPECT_EQ(slo.Status()[0].fired, 2u);
}

TEST(SloTest, DefaultRulesScaleAndFitRing) {
  std::vector<BurnRateRule> rules = DefaultBurnRateRules(60);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].short_window_micros, 5 * 60 * 1000000LL / 60);
  EXPECT_EQ(rules[1].long_window_micros, 72 * 3600 * 1000000LL / 60);
  EXPECT_DOUBLE_EQ(rules[0].threshold, 14.4);
  EXPECT_DOUBLE_EQ(rules[1].threshold, 1.0);
}

// Replays one scripted fault-injected episode through a fresh engine and
// returns the full operator report. The fault pattern is a seeded LCG, so
// two replays must agree byte-for-byte.
std::string ReplayFaultEpisode() {
  FakeClock clock(0);
  MetricRegistry registry;
  TraceLog trace_log(4096);
  SloEngine engine(&clock, &registry, &trace_log);
  engine.AddObjective(TestAvailabilitySlo());

  uint64_t lcg = 42;
  auto next_fault = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return (lcg >> 33) % 100 < 60;  // 60% bad during the storm
  };

  uint64_t trace_id = 0;
  auto serve = [&](bool bad) {
    engine.RecordRequest(bad, /*latency_micros=*/bad ? 9000 : 800,
                         ++trace_id);
  };
  for (int t = 0; t < 12; ++t) {  // healthy
    serve(false);
    clock.Advance(1000000);
  }
  for (int t = 0; t < 10; ++t) {  // storm: seeded fault injection
    serve(next_fault());
    clock.Advance(1000000);
  }
  for (int t = 0; t < 20; ++t) {  // recovery
    serve(false);
    clock.Advance(1000000);
    engine.Tick();
    if (!engine.AnyFiring()) break;
  }
  // Drain the quiet period so resolved alerts return to inactive.
  for (int t = 0; t < 10; ++t) {
    clock.Advance(1000000);
    engine.Tick();
  }

  std::ostringstream report;
  engine.DumpStatus(report);
  engine.DumpTimeline(report);
  report << "traces_marked=" << engine.traces_marked() << "\n";
  return report.str();
}

TEST(SloEngineTest, FaultInjectedEpisodeIsDeterministic) {
  std::string first = ReplayFaultEpisode();
  std::string second = ReplayFaultEpisode();
  EXPECT_EQ(first, second);
  // The episode must walk the whole lifecycle and retain storm traces.
  EXPECT_NE(first.find("pending"), std::string::npos) << first;
  EXPECT_NE(first.find("firing"), std::string::npos) << first;
  EXPECT_NE(first.find("resolved"), std::string::npos) << first;
  EXPECT_EQ(first.find("traces_marked=0"), std::string::npos) << first;
}

TEST(SloEngineTest, FiringGaugeAndLatencyObjective) {
  FakeClock clock(0);
  MetricRegistry registry;
  TraceLog trace_log(1024);
  SloEngine engine(&clock, &registry, &trace_log);

  SloConfig latency;
  latency.name = "latency";
  latency.kind = SloKind::kLatency;
  latency.objective = 0.9;
  latency.latency_threshold_micros = 5000;
  latency.window = SmallWindow(1000000, 32);
  latency.rules = TestAvailabilitySlo().rules;
  latency.rules[0].pending_micros = 0;
  engine.AddObjective(latency);

  for (int t = 0; t < 10; ++t) {
    engine.RecordRequest(false, 1000);  // fast requests are good
    clock.Advance(1000000);
  }
  EXPECT_FALSE(engine.AnyFiring());
  EXPECT_DOUBLE_EQ(registry.GaugeValues()["slo.alerts.firing"], 0.0);

  // Error-free but slow: only the latency objective trips.
  engine.RecordRequest(false, 50000, /*trace_id=*/7);
  engine.RecordRequest(false, 50000, /*trace_id=*/8);
  EXPECT_TRUE(engine.AnyFiring());
  EXPECT_DOUBLE_EQ(registry.GaugeValues()["slo.alerts.firing"], 1.0);
  // Requests observed while firing are force-retained.
  EXPECT_GE(engine.traces_marked(), 1u);
}

// ----------------------------------------------------------------- health

TEST(HealthTest, AggregateWorstWins) {
  HealthRegistry health;
  EXPECT_EQ(health.Aggregate(), HealthStatus::kServing);  // empty = serving
  health.Register("a", [] { return HealthReport{HealthStatus::kServing, "ok"}; });
  health.Register("b", [] {
    return HealthReport{HealthStatus::kDegraded, "flaky"};
  });
  EXPECT_EQ(health.Aggregate(), HealthStatus::kDegraded);
  health.Register("c", [] {
    return HealthReport{HealthStatus::kUnhealthy, "down"};
  });
  EXPECT_EQ(health.Aggregate(), HealthStatus::kUnhealthy);
  EXPECT_EQ(health.probe_count(), 3u);

  // Unknown probes are unhealthy; re-registering replaces; CheckAll sorts.
  EXPECT_EQ(health.Check("nope").status, HealthStatus::kUnhealthy);
  health.Register("c", [] { return HealthReport{HealthStatus::kServing, "up"}; });
  EXPECT_EQ(health.Aggregate(), HealthStatus::kDegraded);
  std::vector<HealthRegistry::ProbeResult> all = health.CheckAll();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "a");
  EXPECT_EQ(all[2].name, "c");
  health.Unregister("b");
  EXPECT_EQ(health.Aggregate(), HealthStatus::kServing);

  std::ostringstream os;
  health.DumpStatus(os);
  EXPECT_NE(os.str().find("aggregate: serving"), std::string::npos);
}

TEST(HealthTest, ThreadPoolProbeIsEnvironmentNeutral) {
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  HealthProbe p1 = MakeThreadPoolProbe(&pool1);
  HealthProbe p4 = MakeThreadPoolProbe(&pool4);
  EXPECT_EQ(p1().status, HealthStatus::kServing);
  // The detail must not leak the worker count: health reports stay
  // byte-identical across --threads settings.
  EXPECT_EQ(p1().detail, p4().detail);
}

// ----------------------------------------------------- bounded Series cap

TEST(SeriesTest, BoundedRetentionEvictsOldest) {
  uint64_t dropped_before =
      MetricRegistry::Global()->GetCounter("metrics.series_dropped")->value();
  MetricRegistry registry;
  registry.set_series_max_points(4);
  Series* s = registry.GetSeries("train.loss");
  for (int i = 0; i < 10; ++i) s->Append(i, 100.0 - i);
  EXPECT_EQ(s->size(), 4u);
  EXPECT_EQ(s->dropped(), 6u);
  std::vector<std::pair<double, double>> points = s->Points();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_DOUBLE_EQ(points.front().first, 6.0);  // oldest surviving
  EXPECT_DOUBLE_EQ(points.back().first, 9.0);   // newest
  // Evictions feed the process-wide counter.
  uint64_t dropped_after =
      MetricRegistry::Global()->GetCounter("metrics.series_dropped")->value();
  EXPECT_EQ(dropped_after - dropped_before, 6u);

  // Shrinking the cap evicts down on the next append.
  s->set_max_points(2);
  s->Append(10, 90.0);
  EXPECT_EQ(s->size(), 2u);
  EXPECT_DOUBLE_EQ(s->Points().back().first, 10.0);
}

// ------------------------------------------------------------ OpenMetrics

TEST(OpenMetricsTest, SanitizeMetricName) {
  EXPECT_EQ(SanitizeMetricName("serve.request.micros"),
            "serve_request_micros");
  EXPECT_EQ(SanitizeMetricName("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(SanitizeMetricName("already_fine:ok"), "already_fine:ok");
}

TEST(OpenMetricsTest, ExpositionShape) {
  MetricRegistry registry;
  registry.GetCounter("serve.requests")->Increment(17);
  registry.GetGauge("model.loss")->Set(0.25);
  Histogram* h = registry.GetHistogram("serve.request.micros");
  h->RecordWithExemplar(3.0, 0xabcdef);
  h->Record(100.0);
  registry.GetGauge("env.trainer.threads")->Set(8);

  std::string text = ToOpenMetricsString(registry);
  // Counters get the _total suffix and a TYPE line.
  EXPECT_NE(text.find("# TYPE serve_requests counter"), std::string::npos);
  EXPECT_NE(text.find("serve_requests_total 17"), std::string::npos);
  EXPECT_NE(text.find("model_loss 0.25"), std::string::npos);
  // Histograms expose the cumulative ladder, +Inf, _sum and _count.
  EXPECT_NE(text.find("serve_request_micros_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("serve_request_micros_count 2"), std::string::npos);
  // The exemplar links its bucket to the trace id.
  EXPECT_NE(text.find("trace_id=\"0000000000abcdef\""), std::string::npos);
  // env.* metrics are environment shape, excluded by default...
  EXPECT_EQ(text.find("env_trainer_threads"), std::string::npos);
  // ...but opt-in for single-machine debugging.
  OpenMetricsOptions with_env;
  with_env.include_env = true;
  EXPECT_NE(ToOpenMetricsString(registry, nullptr, with_env)
                .find("env_trainer_threads"),
            std::string::npos);
  // Mandatory terminator.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetricsTest, MonitorWindowsAndDeterminism) {
  auto render = [] {
    FakeClock clock(0);
    MetricRegistry registry;
    Monitor monitor(&clock, SmallWindow(1000000, 64));
    registry.GetCounter("serve.requests")->Increment(5);
    RollingCounter* rc = monitor.GetCounter("serve.requests");
    RollingHistogram* rh = monitor.GetHistogram("serve.request.micros");
    for (int t = 0; t < 5; ++t) {
      rc->Add(2);
      rh->Record(1000.0 + 100.0 * t);
      clock.Advance(1000000);
    }
    return ToOpenMetricsString(registry, &monitor);
  };
  std::string text = render();
  // Rolling counters expose per-window rates, histograms per-window
  // quantiles, labelled with the report window.
  EXPECT_NE(text.find("serve_requests_rate{window=\"10s\"}"),
            std::string::npos);
  EXPECT_NE(text.find("serve_requests_rate{window=\"60s\"}"),
            std::string::npos);
  EXPECT_NE(
      text.find("serve_request_micros_window{window=\"10s\",quantile=\"0.5\"}"),
      std::string::npos);
  EXPECT_NE(text.find("serve_request_micros_window_count{window=\"10s\"} 5"),
            std::string::npos);
  // Identical replay, identical bytes.
  EXPECT_EQ(text, render());
}

TEST(OpenMetricsTest, RollingQuantilesSurviveARingWrap) {
  // 8 one-second buckets: sixteen paced records wrap the ring once, so
  // the exposition's windowed quantiles must reflect only the surviving
  // half — pre-wrap values may not leak into the report.
  auto render = [] {
    FakeClock clock(0);
    MetricRegistry registry;
    Monitor monitor(&clock, SmallWindow(1000000, 8));
    RollingHistogram* rh = monitor.GetHistogram("serve.request.micros");
    for (int t = 0; t < 16; ++t) {
      rh->Record(t < 8 ? 9999.0 : 1111.0);
      clock.Advance(1000000);
    }
    return ToOpenMetricsString(registry, &monitor);
  };
  std::string text = render();
  // The 10s report window clamps to the 8s ring, and the trailing
  // Advance lands on a bucket boundary that rotates one more bucket out:
  // exactly 7 post-wrap records remain.
  EXPECT_NE(text.find("serve_request_micros_window_count{window=\"10s\"} 7"),
            std::string::npos)
      << text;
  const std::string p50_key =
      "serve_request_micros_window{window=\"10s\",quantile=\"0.5\"} ";
  size_t at = text.find(p50_key);
  ASSERT_NE(at, std::string::npos) << text;
  double p50 = std::strtod(text.c_str() + at + p50_key.size(), nullptr);
  EXPECT_GT(p50, 0.0);
  EXPECT_LT(p50, 9000.0);  // every pre-wrap (9999.0) record has aged out
  // Identical replay, identical bytes — wraps included.
  EXPECT_EQ(text, render());
}

TEST(SloEngineTest, FiringForcesProfileRetentionParallelToTraces) {
  FakeClock clock(0);
  MetricRegistry registry;
  TraceLog trace_log(1024);
  Profiler profiler;
  SloEngine engine(&clock, &registry, &trace_log, &profiler);
  // Armed but not collecting: the first firing alert force-starts an
  // incident collection (deterministic mode).
  profiler.Arm(ProfileConfig());
  EXPECT_FALSE(profiler.collecting());

  SloConfig latency;
  latency.name = "latency";
  latency.kind = SloKind::kLatency;
  latency.objective = 0.9;
  latency.latency_threshold_micros = 5000;
  latency.window = SmallWindow(1000000, 32);
  latency.rules = TestAvailabilitySlo().rules;
  latency.rules[0].pending_micros = 0;
  engine.AddObjective(latency);

  for (int t = 0; t < 10; ++t) {
    engine.RecordRequest(false, 1000, /*trace_id=*/100 + t);
    clock.Advance(1000000);
  }
  EXPECT_EQ(profiler.incident_activations(), 0u);
  EXPECT_EQ(profiler.forced_requests(), 0u);

  engine.RecordRequest(false, 50000, /*trace_id=*/7);
  engine.RecordRequest(false, 50000, /*trace_id=*/8);
  EXPECT_TRUE(engine.AnyFiring());
  EXPECT_EQ(profiler.incident_activations(), 1u);
  EXPECT_TRUE(profiler.collecting());

  // Profile retention parallels trace retention: every trace the engine
  // force-kept while firing has a forced entry in the profiler's request
  // table, and nothing else was forced.
  EXPECT_GE(engine.traces_marked(), 1u);
  EXPECT_EQ(profiler.forced_requests(), engine.traces_marked());
  std::vector<ProfileRequestEntry> requests = profiler.RequestEntries();
  ASSERT_EQ(requests.size(), engine.traces_marked());
  for (const ProfileRequestEntry& r : requests) {
    EXPECT_TRUE(r.forced);
    EXPECT_TRUE(r.trace_id == 7u || r.trace_id == 8u) << r.trace_id;
  }
}

}  // namespace
}  // namespace obs
}  // namespace evrec
