// Tests for the extension modules: pairwise ranking trainer (§3.2.1's
// alternative loss), weighted multi-feedback pairs (the paper's future-work
// direction), logistic-regression combiner (§5.2 remark), IVF ANN index,
// and skip-gram embedding pre-training (§3.2.1's unsupervised init).

#include <gtest/gtest.h>

#include <cmath>

#include "evrec/ann/ivf_index.h"
#include "evrec/eval/metrics.h"
#include "evrec/gbdt/gbdt.h"
#include "evrec/gbdt/logistic_regression.h"
#include "evrec/model/ranking_trainer.h"
#include "evrec/nn/sgns.h"
#include "evrec/util/logging.h"
#include "evrec/util/math_util.h"

namespace evrec {
namespace {

text::EncodedText MakeDoc(std::vector<int> ids) {
  text::EncodedText e;
  e.word_index.resize(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    e.word_index[i] = static_cast<int>(i);
  }
  e.token_ids = std::move(ids);
  return e;
}

model::JointModelConfig TinyConfig() {
  model::JointModelConfig c;
  c.embedding_dim = 6;
  c.module_out_dim = 6;
  c.hidden_dim = 12;
  c.rep_dim = 8;
  c.text_windows = {1, 2};
  c.categorical_windows = {1};
  c.seed = 11;
  return c;
}

// Two-topic separable dataset (same construction as model_test).
model::RepDataset MakeToyDataset() {
  model::RepDataset data;
  Rng rng(51);
  for (int topic = 0; topic < 2; ++topic) {
    for (int u = 0; u < 8; ++u) {
      std::vector<int> ids;
      for (int i = 0; i < 5; ++i) {
        ids.push_back(topic * 8 + rng.UniformInt(0, 7));
      }
      data.user_inputs.push_back(
          {MakeDoc(ids), MakeDoc({topic * 2 + rng.UniformInt(0, 1)})});
    }
    for (int e = 0; e < 8; ++e) {
      std::vector<int> ids;
      for (int i = 0; i < 6; ++i) {
        ids.push_back(topic * 8 + rng.UniformInt(0, 7));
      }
      data.event_inputs.push_back({MakeDoc(ids)});
    }
  }
  for (int u = 0; u < 16; ++u) {
    for (int e = 0; e < 16; ++e) {
      data.pairs.push_back({u, e, (u / 8) == (e / 8) ? 1.0f : 0.0f, 1.0f});
    }
  }
  return data;
}

// ---------- ranking trainer ----------

TEST(RankingTrainerTest, LearnsToRankPositivesAboveNegatives) {
  SetLogLevel(LogLevel::kWarn);
  model::JointModelConfig cfg = TinyConfig();
  model::JointModel m(cfg, 16, 4, 16);
  Rng rng(52);
  m.RandomInit(rng);
  model::RepDataset data = MakeToyDataset();
  m.CalibrateNormalizers(data);

  model::RankingConfig rcfg;
  rcfg.max_epochs = 30;
  rcfg.learning_rate = 0.1f;
  model::RankingTrainer trainer(&m);
  Rng eval_rng(53);
  double before = trainer.EvaluateLoss(data, rcfg, eval_rng);
  Rng train_rng(54);
  model::RankingStats stats = trainer.Train(data, rcfg, train_rng);
  Rng eval_rng2(53);
  double after = trainer.EvaluateLoss(data, rcfg, eval_rng2);
  EXPECT_LT(after, before * 0.5);
  EXPECT_EQ(stats.epochs_run, 30);

  // AUC of the cosine over all pairs should be near-perfect in-sample.
  std::vector<double> scores;
  std::vector<float> labels;
  for (const auto& p : data.pairs) {
    scores.push_back(
        m.Score(data.user_inputs[p.user], data.event_inputs[p.event]));
    labels.push_back(p.label);
  }
  EXPECT_GT(eval::RocAuc(scores, labels), 0.95);
  SetLogLevel(LogLevel::kInfo);
}

TEST(RankingTrainerTest, NoContrastsMeansNoEpochs) {
  SetLogLevel(LogLevel::kWarn);
  model::JointModelConfig cfg = TinyConfig();
  model::JointModel m(cfg, 16, 4, 16);
  Rng rng(55);
  m.RandomInit(rng);
  model::RepDataset data = MakeToyDataset();
  // All labels positive: no negatives -> no contrasts.
  for (auto& p : data.pairs) p.label = 1.0f;
  model::RankingConfig rcfg;
  model::RankingTrainer trainer(&m);
  Rng train_rng(56);
  model::RankingStats stats = trainer.Train(data, rcfg, train_rng);
  EXPECT_EQ(stats.epochs_run, 0);
  SetLogLevel(LogLevel::kInfo);
}

// ---------- weighted pairs ----------

TEST(WeightedPairTest, ZeroWeightProducesNoGradientOrLoss) {
  model::JointModelConfig cfg = TinyConfig();
  model::JointModel m(cfg, 16, 4, 16);
  Rng rng(57);
  m.RandomInit(rng);
  std::vector<text::EncodedText> user = {MakeDoc({1, 2}), MakeDoc({0})};
  std::vector<text::EncodedText> event = {MakeDoc({3, 4})};
  model::JointModel::PairContext ctx;
  double before = m.Similarity(user, event, &ctx);
  double loss = m.AccumulatePairGradient(ctx, 1.0f, 0.0f);
  EXPECT_EQ(loss, 0.0);
  m.Step(1.0f);  // nothing pending
  EXPECT_NEAR(m.Score(user, event), before, 1e-7);
}

TEST(WeightedPairTest, WeightScalesLossLinearly) {
  model::JointModelConfig cfg = TinyConfig();
  model::JointModel m(cfg, 16, 4, 16);
  Rng rng(58);
  m.RandomInit(rng);
  std::vector<text::EncodedText> user = {MakeDoc({1, 2}), MakeDoc({0})};
  std::vector<text::EncodedText> event = {MakeDoc({3, 4})};
  model::JointModel::PairContext ctx;
  m.Similarity(user, event, &ctx);
  double full = m.AccumulatePairGradient(ctx, 1.0f, 1.0f);
  m.ZeroGrad();
  double half = m.AccumulatePairGradient(ctx, 1.0f, 0.5f);
  m.ZeroGrad();
  EXPECT_NEAR(half, full * 0.5, 1e-12);
}

// ---------- logistic regression ----------

TEST(LogisticRegressionTest, LearnsLinearlySeparableData) {
  Rng rng(59);
  const int n = 600;
  gbdt::DataMatrix x(n, 3);
  std::vector<float> y(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    float a = static_cast<float>(rng.Normal());
    float b = static_cast<float>(rng.Normal());
    x.Set(r, 0, a);
    x.Set(r, 1, b);
    x.Set(r, 2, static_cast<float>(rng.Normal()));
    y[static_cast<size_t>(r)] = (a - b > 0) ? 1.0f : 0.0f;
  }
  gbdt::LogisticRegression lr;
  gbdt::LogisticRegressionConfig cfg;
  auto losses = lr.Train(x, y, cfg);
  EXPECT_LT(losses.back(), losses.front() * 0.5);
  EXPECT_GT(eval::RocAuc(lr.PredictProbabilities(x), y), 0.97);
  // Weight signs reflect the generating rule.
  EXPECT_GT(lr.weights()[0], 0.0);
  EXPECT_LT(lr.weights()[1], 0.0);
}

TEST(LogisticRegressionTest, CannotLearnXorButGbdtCan) {
  // The structural point behind the paper's §5.2 remark: a linear
  // combiner cannot discover feature interactions.
  SetLogLevel(LogLevel::kWarn);
  Rng rng(60);
  const int n = 800;
  gbdt::DataMatrix x(n, 2);
  std::vector<float> y(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    float a = static_cast<float>(rng.Uniform(-1, 1));
    float b = static_cast<float>(rng.Uniform(-1, 1));
    x.Set(r, 0, a);
    x.Set(r, 1, b);
    y[static_cast<size_t>(r)] = (a * b > 0) ? 1.0f : 0.0f;
  }
  gbdt::LogisticRegression lr;
  lr.Train(x, y, gbdt::LogisticRegressionConfig{});
  double lr_auc = eval::RocAuc(lr.PredictProbabilities(x), y);
  EXPECT_LT(lr_auc, 0.6);

  gbdt::GbdtModel gbdt_model;
  gbdt::GbdtConfig gcfg;
  gcfg.num_trees = 40;
  gcfg.max_leaves = 8;
  gcfg.learning_rate = 0.2;
  gcfg.min_samples_leaf = 10;
  gbdt_model.Train(x, y, gcfg);
  EXPECT_GT(eval::RocAuc(gbdt_model.PredictProbabilities(x), y), 0.9);
  SetLogLevel(LogLevel::kInfo);
}

TEST(LogisticRegressionTest, PriorOnlyForConstantFeatures) {
  gbdt::DataMatrix x(100, 1);
  std::vector<float> y(100);
  for (int r = 0; r < 100; ++r) {
    x.Set(r, 0, 1.0f);
    y[static_cast<size_t>(r)] = r < 30 ? 1.0f : 0.0f;
  }
  gbdt::LogisticRegression lr;
  lr.Train(x, y, gbdt::LogisticRegressionConfig{});
  float row[1] = {1.0f};
  EXPECT_NEAR(lr.PredictProbability(row), 0.3, 0.03);
}

// ---------- IVF index ----------

std::vector<std::vector<float>> ClusteredVectors(int clusters,
                                                 int per_cluster, int dim,
                                                 Rng& rng) {
  std::vector<std::vector<float>> out;
  std::vector<std::vector<float>> centers;
  for (int c = 0; c < clusters; ++c) {
    std::vector<float> center(static_cast<size_t>(dim));
    for (auto& v : center) v = static_cast<float>(rng.Normal());
    centers.push_back(center);
  }
  for (int c = 0; c < clusters; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      std::vector<float> v = centers[static_cast<size_t>(c)];
      for (auto& x : v) x += static_cast<float>(rng.Normal(0.0, 0.1));
      out.push_back(std::move(v));
    }
  }
  return out;
}

TEST(IvfIndexTest, ExactSearchReturnsSelfCluster) {
  Rng rng(61);
  auto vectors = ClusteredVectors(5, 40, 16, rng);
  ann::IvfIndex index;
  ann::IvfConfig cfg;
  cfg.num_lists = 5;
  index.Build(vectors, cfg);
  EXPECT_EQ(index.size(), 200);
  // Query with a vector from cluster 2: exact top-10 should be cluster 2.
  auto results = index.SearchExact(vectors[2 * 40 + 3], 10, 2 * 40 + 3);
  ASSERT_EQ(results.size(), 10u);
  for (const auto& r : results) {
    EXPECT_GE(r.id, 2 * 40);
    EXPECT_LT(r.id, 3 * 40);
    EXPECT_GT(r.score, 0.8);
  }
  // Scores sorted descending.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].score, results[i].score);
  }
}

TEST(IvfIndexTest, ApproxRecallHighOnClusteredData) {
  Rng rng(62);
  auto vectors = ClusteredVectors(8, 50, 16, rng);
  ann::IvfIndex index;
  ann::IvfConfig cfg;
  cfg.num_lists = 8;
  index.Build(vectors, cfg);
  double recall = 0.0;
  for (int q = 0; q < 40; ++q) {
    recall += index.RecallAtK(vectors[static_cast<size_t>(q * 10)], 10,
                              /*nprobe=*/2);
  }
  EXPECT_GT(recall / 40.0, 0.9);
}

TEST(IvfIndexTest, MoreProbesNeverHurtRecall) {
  Rng rng(63);
  auto vectors = ClusteredVectors(6, 30, 8, rng);
  ann::IvfIndex index;
  ann::IvfConfig cfg;
  cfg.num_lists = 6;
  index.Build(vectors, cfg);
  const auto& q = vectors[7];
  double r1 = index.RecallAtK(q, 10, 1);
  double r_all = index.RecallAtK(q, 10, 6);
  EXPECT_LE(r1, r_all + 1e-12);
  EXPECT_NEAR(r_all, 1.0, 1e-12);  // probing every list == exact
}

TEST(IvfIndexTest, ExcludeFiltersSelf) {
  Rng rng(64);
  auto vectors = ClusteredVectors(2, 20, 8, rng);
  ann::IvfIndex index;
  index.Build(vectors, ann::IvfConfig{});
  auto results = index.Search(vectors[5], 5, 16, /*exclude=*/5);
  for (const auto& r : results) EXPECT_NE(r.id, 5);
}

// ---------- SGNS ----------

TEST(SgnsTest, CoOccurringTokensBecomeSimilar) {
  // Two disjoint "topics" of tokens that only co-occur within topic.
  Rng rng(65);
  std::vector<std::vector<int>> corpus;
  for (int d = 0; d < 300; ++d) {
    int topic = d % 2;
    std::vector<int> doc;
    for (int i = 0; i < 12; ++i) doc.push_back(topic * 8 + rng.UniformInt(0, 7));
    corpus.push_back(std::move(doc));
  }
  nn::EmbeddingTable table(16, 12);
  Rng init(66);
  table.RandomInit(init, 0.1f);
  nn::SgnsConfig cfg;
  cfg.epochs = 3;
  Rng train(67);
  nn::SgnsStats stats = nn::PretrainEmbeddings(&table, corpus, cfg, train);
  EXPECT_GT(stats.pairs_trained, 0);
  EXPECT_LT(stats.train_loss.back(), stats.train_loss.front());

  double same = 0.0, cross = 0.0;
  int ns = 0, nc = 0;
  for (int a = 0; a < 16; ++a) {
    for (int b = a + 1; b < 16; ++b) {
      double c = CosineSimilarity(table.Vector(a), table.Vector(b), 12);
      if ((a / 8) == (b / 8)) {
        same += c;
        ++ns;
      } else {
        cross += c;
        ++nc;
      }
    }
  }
  EXPECT_GT(same / ns, cross / nc + 0.3);
}

TEST(SgnsTest, EmptyCorpusIsHarmless) {
  nn::EmbeddingTable table(4, 4);
  Rng rng(68);
  nn::SgnsStats stats =
      nn::PretrainEmbeddings(&table, {}, nn::SgnsConfig{}, rng);
  EXPECT_EQ(stats.pairs_trained, 0);
}

}  // namespace
}  // namespace evrec
