// Tests for the data-parallel training engine: ThreadPool/ParallelFor
// semantics, the trainer's thread-count determinism contract (bit-identical
// parameters and losses for any worker count), the partial-batch step-size
// regression, and parallel candidate scoring in the serving layer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "evrec/model/joint_model.h"
#include "evrec/model/trainer.h"
#include "evrec/serve/vector_store.h"
#include "evrec/store/rep_cache.h"
#include "evrec/util/binary_io.h"
#include "evrec/util/logging.h"
#include "evrec/util/rng.h"
#include "evrec/util/thread_pool.h"

namespace evrec {
namespace {

// ---------- ParallelFor semantics ----------

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](int) { calls.fetch_add(1); });
  pool.ParallelFor(-3, [&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, RunsEveryShardExactlyOnce) {
  ThreadPool pool(4);
  const int n = 23;
  std::vector<std::atomic<int>> counts(n);
  for (auto& c : counts) c.store(0);
  pool.ParallelFor(n, [&](int s) { counts[static_cast<size_t>(s)]++; });
  for (int s = 0; s < n; ++s) {
    EXPECT_EQ(counts[static_cast<size_t>(s)].load(), 1) << "shard " << s;
  }
}

TEST(ThreadPoolTest, FewerShardsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> counts(3);
  for (auto& c : counts) c.store(0);
  pool.ParallelFor(3, [&](int s) { counts[static_cast<size_t>(s)]++; });
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(counts[static_cast<size_t>(s)].load(), 1);
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelFor(5, [&](int) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;  // no atomics needed: inline means sequential
  });
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPoolTest, LowestFailingShardExceptionPropagates) {
  ThreadPool pool(4);
  // Every shard throws; the contract is that the exception from the
  // lowest-numbered failing shard is the one rethrown.
  try {
    pool.ParallelFor(8, [&](int s) {
      throw std::runtime_error("shard " + std::to_string(s));
    });
    FAIL() << "ParallelFor should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 0");
  }
}

TEST(ThreadPoolTest, InlineWorkerAbandonsShardsAfterThrow) {
  ThreadPool pool(1);
  std::vector<int> ran;
  try {
    pool.ParallelFor(6, [&](int s) {
      ran.push_back(s);
      if (s == 2) throw std::runtime_error("boom");
    });
    FAIL() << "ParallelFor should have thrown";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2}));
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(4, [](int) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> calls{0};
  pool.ParallelFor(10, [&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

// ---------- trainer determinism across thread counts ----------

text::EncodedText MakeDoc(std::vector<int> ids) {
  text::EncodedText e;
  e.word_index.resize(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    e.word_index[i] = static_cast<int>(i);
  }
  e.token_ids = std::move(ids);
  return e;
}

model::JointModelConfig TinyConfig() {
  model::JointModelConfig c;
  c.embedding_dim = 6;
  c.module_out_dim = 6;
  c.hidden_dim = 12;
  c.rep_dim = 8;
  c.text_windows = {1, 2};
  c.categorical_windows = {1};
  c.learning_rate = 0.1f;
  c.batch_size = 4;
  c.max_epochs = 3;
  c.early_stop_patience = 40;
  c.validation_fraction = 0.15;
  c.seed = 11;
  return c;
}

// Two latent topics, same construction as model_test's toy dataset.
model::RepDataset MakeToyDataset() {
  model::RepDataset data;
  Rng rng(51);
  for (int topic = 0; topic < 2; ++topic) {
    for (int u = 0; u < 8; ++u) {
      std::vector<int> ids;
      for (int i = 0; i < 5; ++i) {
        ids.push_back(topic * 8 + rng.UniformInt(0, 7));
      }
      data.user_inputs.push_back(
          {MakeDoc(ids), MakeDoc({topic * 2 + rng.UniformInt(0, 1)})});
    }
    for (int e = 0; e < 8; ++e) {
      std::vector<int> ids;
      for (int i = 0; i < 6; ++i) {
        ids.push_back(topic * 8 + rng.UniformInt(0, 7));
      }
      data.event_inputs.push_back({MakeDoc(ids)});
    }
  }
  for (int u = 0; u < 16; ++u) {
    for (int e = 0; e < 16; ++e) {
      data.pairs.push_back({u, e, (u / 8) == (e / 8) ? 1.0f : 0.0f});
    }
  }
  return data;
}

std::string SerializedBytes(const model::JointModel& m,
                            const std::string& tag) {
  std::string path = testing::TempDir() + "/evrec_parallel_" + tag + ".bin";
  BinaryWriter w(path);
  m.Serialize(w);
  EXPECT_TRUE(w.Close().ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  std::remove(path.c_str());
  return bytes.str();
}

// Trains a fresh model with the given thread count; everything else —
// seeds, shard count, hyper-parameters — held fixed.
std::pair<model::TrainStats, std::string> TrainWithThreads(int threads) {
  model::JointModelConfig cfg = TinyConfig();
  model::JointModel m(cfg, 16, 4, 16);
  Rng rng(52);
  m.RandomInit(rng);
  model::RepDataset data = MakeToyDataset();
  model::TrainerConfig tcfg;
  tcfg.threads = threads;
  tcfg.grad_shards = 4;
  model::RepTrainer trainer(&m, tcfg);
  Rng train_rng(53);
  model::TrainStats stats = trainer.Train(data, train_rng);
  return {std::move(stats),
          SerializedBytes(m, "t" + std::to_string(threads))};
}

TEST(TrainerDeterminismTest, ThreadCountNeverChangesResults) {
  SetLogLevel(LogLevel::kWarn);
  auto [stats1, bytes1] = TrainWithThreads(1);
  auto [stats8, bytes8] = TrainWithThreads(8);
  // Bit-identical epoch losses — EXPECT_EQ on doubles, not EXPECT_NEAR:
  // the contract is exact equality, not closeness.
  EXPECT_EQ(stats1.train_loss, stats8.train_loss);
  EXPECT_EQ(stats1.validation_loss, stats8.validation_loss);
  EXPECT_EQ(stats1.grad_norms, stats8.grad_norms);
  // Bit-identical parameters.
  ASSERT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, bytes8);
  SetLogLevel(LogLevel::kInfo);
}

TEST(TrainerDeterminismTest, EvaluateLossMatchesAcrossThreadCounts) {
  SetLogLevel(LogLevel::kWarn);
  model::JointModelConfig cfg = TinyConfig();
  model::JointModel m(cfg, 16, 4, 16);
  Rng rng(52);
  m.RandomInit(rng);
  model::RepDataset data = MakeToyDataset();
  model::TrainerConfig one, eight;
  one.threads = 1;
  eight.threads = 8;
  double l1 = model::RepTrainer(&m, one).EvaluateLoss(data, data.pairs);
  double l8 = model::RepTrainer(&m, eight).EvaluateLoss(data, data.pairs);
  EXPECT_EQ(l1, l8);
  SetLogLevel(LogLevel::kInfo);
}

// ---------- partial-batch step-size regression ----------

// The final (possibly partial) batch must step at lr / leftover-count, not
// lr / batch_size. Pins the semantics by replaying the trainer's exact rng
// draws and reducing by hand with the correct divisor, then showing the
// wrong divisor produces different parameters.
TEST(TrainerPartialBatchTest, FinalBatchStepsAtLeftoverCount) {
  SetLogLevel(LogLevel::kWarn);
  model::JointModelConfig cfg = TinyConfig();
  cfg.max_epochs = 1;
  cfg.validation_fraction = 0.0;  // keep the rng replay exact: no split
  cfg.batch_size = 4;

  model::RepDataset data = MakeToyDataset();
  data.pairs.resize(10);  // 4 + 4 + 2: final batch is partial

  auto train_by_hand = [&](bool correct_final_divisor) {
    model::JointModel m(cfg, 16, 4, 16);
    Rng init(52);
    m.RandomInit(init);
    std::vector<model::RepPair> pairs = data.pairs;
    Rng rng(53);
    rng.Shuffle(pairs);  // trainer's split shuffle (val_count = 0)
    rng.Shuffle(pairs);  // trainer's epoch shuffle
    model::JointModel::PairContext ctx;
    model::JointModel::GradBuffer grads = m.MakeGradBuffer();
    const size_t batch = static_cast<size_t>(cfg.batch_size);
    for (size_t start = 0; start < pairs.size(); start += batch) {
      const size_t end = std::min(start + batch, pairs.size());
      for (size_t i = start; i < end; ++i) {
        const model::RepPair& p = pairs[i];
        m.Similarity(data.user_inputs[static_cast<size_t>(p.user)],
                     data.event_inputs[static_cast<size_t>(p.event)], &ctx);
        m.AccumulatePairGradient(ctx, p.label, p.weight, &grads);
      }
      m.AccumulateGradients(&grads);
      float divisor = correct_final_divisor
                          ? static_cast<float>(end - start)
                          : static_cast<float>(batch);
      m.Step(cfg.learning_rate / divisor);
    }
    return SerializedBytes(m, correct_final_divisor ? "hand" : "wrong");
  };

  model::JointModel trained(cfg, 16, 4, 16);
  Rng init(52);
  trained.RandomInit(init);
  model::TrainerConfig tcfg;
  tcfg.threads = 1;
  tcfg.grad_shards = 1;
  model::RepTrainer trainer(&trained, tcfg);
  Rng train_rng(53);
  trainer.Train(data, train_rng);

  std::string trainer_bytes = SerializedBytes(trained, "trainer");
  ASSERT_FALSE(trainer_bytes.empty());
  EXPECT_EQ(trainer_bytes, train_by_hand(true));
  // The wrong divisor (lr / batch_size on the 2-pair leftover) must be
  // detectable, otherwise this test has no teeth.
  EXPECT_NE(trainer_bytes, train_by_hand(false));
  SetLogLevel(LogLevel::kInfo);
}

// ---------- parallel candidate scoring ----------

TEST(ScoreCandidatesTest, ParallelMatchesSequential) {
  store::RepVectorCache cache(4, 64);
  serve::RepCacheVectorStore vstore(&cache);
  Rng rng(71);
  std::vector<int> ids;
  for (int i = 0; i < 33; ++i) {
    ids.push_back(i);
    if (i % 7 == 3) continue;  // leave some ids missing from the store
    std::vector<float> v(8);
    for (auto& x : v) x = static_cast<float>(rng.Uniform(-1, 1));
    vstore.Put(store::EntityKind::kEvent, i, std::move(v));
  }
  std::vector<float> query(8);
  for (auto& x : query) x = static_cast<float>(rng.Uniform(-1, 1));

  std::vector<serve::ScoredCandidate> seq = serve::ScoreCandidates(
      &vstore, store::EntityKind::kEvent, query, ids, /*pool=*/nullptr);
  ThreadPool pool(4);
  std::vector<serve::ScoredCandidate> par = serve::ScoreCandidates(
      &vstore, store::EntityKind::kEvent, query, ids, &pool);

  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].id, par[i].id);
    EXPECT_EQ(seq[i].found, par[i].found);
    EXPECT_EQ(seq[i].score, par[i].score);  // exact, not approximate
    EXPECT_EQ(seq[i].found, (ids[i] % 7 != 3));
  }
}

TEST(ScoreCandidatesTest, TopKOrdersAndBreaksTies) {
  std::vector<serve::ScoredCandidate> scored = {
      {5, 0.2f, true},  {9, 0.9f, true}, {1, 0.5f, true},
      {7, 0.5f, true},  {3, 0.0f, false},  // missing: never ranked
      {2, -0.1f, true},
  };
  // TopKSpan selects without consuming, so `scored` survives all queries.
  std::vector<serve::ScoredCandidate> top =
      serve::TopKSpan(scored.data(), scored.size(), 4);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].id, 9);
  EXPECT_EQ(top[1].id, 1);  // 0.5 tie broken by ascending id
  EXPECT_EQ(top[2].id, 7);
  EXPECT_EQ(top[3].id, 5);
  // k larger than the found set returns only found candidates.
  EXPECT_EQ(serve::TopKSpan(scored.data(), scored.size(), 10).size(), 5u);
  // k = 0 and the consuming rvalue overload.
  EXPECT_TRUE(serve::TopKSpan(scored.data(), scored.size(), 0).empty());
  std::vector<serve::ScoredCandidate> consumed =
      serve::TopK(std::move(scored), 2);
  ASSERT_EQ(consumed.size(), 2u);
  EXPECT_EQ(consumed[0].id, 9);
  EXPECT_EQ(consumed[1].id, 1);
}

}  // namespace
}  // namespace evrec
